(* Multicore determinism smoke, run by `dune build @par-smoke` with
   HUBHARD_JOBS=2 in the environment: the resolved default pool must
   pick the env var up, and the three pinned artifacts — labeling,
   stats line, span JSON — must hash identically across jobs 1, 2 and
   4 plus a repeated same-seed run. Exits nonzero on any mismatch. *)

open Repro_graph
open Repro_hub
open Repro_core
module Pool = Repro_par.Pool
module Checksum = Repro_par.Checksum
module Span = Repro_obs.Span
module Clock = Repro_obs.Clock

let failures = ref 0

let check name ok =
  if ok then Printf.printf "par-smoke ok: %s\n%!" name
  else (
    incr failures;
    Printf.printf "par-smoke FAIL: %s\n%!" name)

let rng seed = Random.State.make [| seed |]

let digest jobs =
  Pool.with_pool ~jobs (fun pool ->
      let g = Generators.random_bounded_degree (rng 17) ~n:27 ~d:3 in
      let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
      let (labels, stats), span =
        Span.profile ~clock ~name:"par-smoke" (fun () ->
            Rs_hub.build ~rng:(rng 18) ~d:3 ~pool g)
      in
      let stats_repr =
        Printf.sprintf "%d %d %d %d %d %d %d %d %d" stats.Rs_hub.d
          stats.Rs_hub.n stats.Rs_hub.global_size stats.Rs_hub.q_total
          stats.Rs_hub.r_total stats.Rs_hub.f_total stats.Rs_hub.bucket_count
          stats.Rs_hub.matching_edge_total stats.Rs_hub.total_hubs
      in
      ( Checksum.sha256_hex (Hub_io.to_string labels),
        Checksum.sha256_hex stats_repr,
        Checksum.sha256_hex (Span.to_json span) ))

let () =
  (match Sys.getenv_opt "HUBHARD_JOBS" with
  | Some s ->
      check
        (Printf.sprintf "HUBHARD_JOBS=%s resolves default_jobs" s)
        (Pool.default_jobs () = int_of_string s)
  | None -> check "no HUBHARD_JOBS: default is recommended count" true);
  let reference = digest 1 in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "rs_hub artifacts identical at jobs=%d" jobs)
        (digest jobs = reference))
    [ 2; 4 ];
  check "repeated same-seed run identical" (digest 2 = digest 2);
  (* batch fan-out over the resolved default pool *)
  let g = Generators.random_connected (rng 4) ~n:48 ~m:100 in
  let flat = Flat_hub.of_labels (Pll.build g) in
  let pairs =
    let r = rng 5 in
    Array.init 64 (fun _ -> (Random.State.int r 48, Random.State.int r 48))
  in
  let point = Array.map (fun (u, v) -> Flat_hub.query flat u v) pairs in
  check "query_many over default pool = point queries"
    (Flat_hub.query_many ~pool:(Pool.default ()) flat pairs = point);
  if !failures > 0 then exit 1
