(* Unit suite for the zero-copy Mmap_hub store: golden byte-stability
   pin of the packed HUBFLAT1 encoding, store/flat equivalence, the
   direct-mapped cache, batch queries and the Backend surface. The
   adversarial file battery lives in test_io_adversarial.ml; the
   oracle-equality chain in test_differential.ml. *)

open Repro_hub
module Checksum = Repro_par.Checksum

(* Fixed-seed fixture: every byte of the packed file is a pure function
   of these parameters, which the golden pin below freezes in-tree. *)
let fixture =
  lazy
    (let g = Gen.build_connected (24, 40, 4242) in
     let labels = Pll.build g in
     let flat = Flat_hub.of_labels labels in
     (flat, Hub_io.flat_to_bytes flat))

(* sha256 of the fixture's packed bytes. If this pin moves, the
   HUBFLAT1 byte layout changed: every previously written label file —
   and every mmap view of one — just became unreadable. That is a
   format break and must be deliberate, not accidental. *)
let golden_sha256 =
  "4c0a9f91f427c4ea857cd23ea661ed1438624eb7140f6df618cb2d9c499caffa"

let test_golden_pin () =
  let _, bytes = Lazy.force fixture in
  let got = Checksum.sha256_hex bytes in
  if got <> golden_sha256 then
    Alcotest.failf
      "packed HUBFLAT1 bytes drifted: sha256 %s, pinned %s — this breaks \
       every existing packed label file and mmap consumer"
      got golden_sha256

let test_save_map_save_stable () =
  let flat, bytes = Lazy.force fixture in
  let store = Test_util.mmap_of_flat ~deep:true flat in
  let again = Hub_io.flat_to_bytes (Mmap_hub.to_flat store) in
  Test_util.check_bool "map -> thaw -> save is byte-identical" true
    (String.equal bytes again)

let test_store_matches_flat () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat ~deep:true flat in
  let n = Flat_hub.n flat in
  Test_util.check_int "n" n (Mmap_hub.n store);
  Test_util.check_int "total" (Flat_hub.total_size flat)
    (Mmap_hub.total_size store);
  Test_util.check_int "space_words" (Flat_hub.space_words flat)
    (Mmap_hub.space_words store);
  for v = 0 to n - 1 do
    Test_util.check_int "size" (Flat_hub.size flat v) (Mmap_hub.size store v);
    if Flat_hub.hubs flat v <> Mmap_hub.hubs store v then
      Alcotest.failf "hubset of %d differs" v
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      Test_util.check_int
        (Printf.sprintf "d(%d,%d)" u v)
        (Flat_hub.query flat u v) (Mmap_hub.query store u v)
    done
  done;
  Test_util.check_bool "to_flat round trip" true
    (Flat_hub.equal flat (Mmap_hub.to_flat store))

let test_validate_entries_ok () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat flat in
  match Mmap_hub.validate_entries store with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pristine: %s" (Mmap_hub.error_to_string e)

let test_cache () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat ~cache_slots:8 flat in
  let d1 = Mmap_hub.query store 1 2 in
  let d2 = Mmap_hub.query store 1 2 in
  let d3 = Mmap_hub.query store 2 1 in
  Test_util.check_int "repeat" d1 d2;
  Test_util.check_int "unordered pair key" d1 d3;
  (match Mmap_hub.cache_stats store with
  | Some (hits, misses) ->
      Test_util.check_int "hits" 2 hits;
      Test_util.check_int "misses" 1 misses
  | None -> Alcotest.fail "expected cache stats");
  Test_util.check_bool "uncached has no stats" true
    (Mmap_hub.cache_stats (Mmap_hub.with_cache ~cache_slots:0 store) = None);
  Alcotest.check_raises "negative slots"
    (Invalid_argument "Mmap_hub: cache_slots must be non-negative") (fun () ->
      ignore (Mmap_hub.with_cache ~cache_slots:(-1) store))

let test_query_validation () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat flat in
  Alcotest.check_raises "query range" (Invalid_argument "Mmap_hub.query")
    (fun () -> ignore (Mmap_hub.query store 0 (Mmap_hub.n store)));
  Alcotest.check_raises "negative endpoint" (Invalid_argument "Mmap_hub.query")
    (fun () -> ignore (Mmap_hub.query store (-1) 0))

let test_query_many () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat flat in
  let cached = Test_util.mmap_of_flat ~cache_slots:16 flat in
  let n = Mmap_hub.n store in
  let pairs = Gen.query_pairs ~seed:99 ~n 64 in
  let want = Array.map (fun (u, v) -> Mmap_hub.query store u v) pairs in
  Test_util.check_bool "batch = loop (pool fan-out)" true
    (Mmap_hub.query_many store pairs = want);
  Test_util.check_bool "batch = loop (cached, sequential)" true
    (Mmap_hub.query_many cached pairs = want);
  (match Mmap_hub.cache_stats cached with
  | Some (hits, misses) -> Test_util.check_int "stats cover batch" 64 (hits + misses)
  | None -> Alcotest.fail "expected cache stats");
  Alcotest.check_raises "batch validates endpoints"
    (Invalid_argument "Mmap_hub.query_many") (fun () ->
      ignore (Mmap_hub.query_many store [| (0, n) |]))

let test_backend () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.mmap_of_flat flat in
  let b = Mmap_hub.backend store in
  Alcotest.(check string) "name" "mmap-hub-labeling" (Repro_obs.Backend.name b);
  Test_util.check_int "space" (Mmap_hub.space_words store)
    (Repro_obs.Backend.space_words b);
  let d, tr = Repro_obs.Backend.query_detailed b 3 4 in
  Test_util.check_int "dist" (Mmap_hub.query store 3 4) d;
  Test_util.check_int "entries scanned"
    (Mmap_hub.size store 3 + Mmap_hub.size store 4)
    tr.Repro_obs.Trace.entries_scanned;
  (* a cached backend reports Hit with zero scanned entries *)
  let cb = Mmap_hub.backend (Test_util.mmap_of_flat ~cache_slots:4 flat) in
  ignore (Repro_obs.Backend.query b 5 6);
  ignore (Repro_obs.Backend.query cb 5 6);
  let _, tr2 = Repro_obs.Backend.query_detailed cb 5 6 in
  Test_util.check_bool "cache hit" true
    (tr2.Repro_obs.Trace.cache = Repro_obs.Trace.Hit);
  Test_util.check_int "hit scans nothing" 0 tr2.Repro_obs.Trace.entries_scanned

let suite =
  [
    Alcotest.test_case "golden sha256 pin of packed bytes" `Quick
      test_golden_pin;
    Alcotest.test_case "save -> map -> save is stable" `Quick
      test_save_map_save_stable;
    Alcotest.test_case "mmap view = flat store everywhere" `Quick
      test_store_matches_flat;
    Alcotest.test_case "validate_entries accepts pristine" `Quick
      test_validate_entries_ok;
    Alcotest.test_case "direct-mapped cache" `Quick test_cache;
    Alcotest.test_case "query endpoint validation" `Quick test_query_validation;
    Alcotest.test_case "query_many batch = loop" `Quick test_query_many;
    Alcotest.test_case "backend surface and traces" `Quick test_backend;
  ]
