(* Tests for graph generators, subdivision reductions and text I/O. *)

open Repro_graph

let test_basic_shapes () =
  Test_util.check_int "path m" 4 (Graph.m (Generators.path 5));
  Test_util.check_int "cycle m" 5 (Graph.m (Generators.cycle 5));
  Test_util.check_int "complete m" 10 (Graph.m (Generators.complete 5));
  Test_util.check_int "star max degree" 6 (Graph.max_degree (Generators.star 7));
  let g = Generators.grid ~rows:3 ~cols:4 in
  Test_util.check_int "grid n" 12 (Graph.n g);
  Test_util.check_int "grid m" 17 (Graph.m g);
  Test_util.check_bool "grid connected" true (Traversal.is_connected g);
  let t = Generators.torus ~rows:3 ~cols:3 in
  Test_util.check_int "torus degree" 4 (Graph.max_degree t);
  Test_util.check_int "torus m" 18 (Graph.m t)

let test_balanced_tree () =
  let g = Generators.balanced_binary_tree ~depth:3 in
  Test_util.check_int "n" 15 (Graph.n g);
  Test_util.check_int "m" 14 (Graph.m g);
  Test_util.check_bool "connected" true (Traversal.is_connected g);
  Test_util.check_int "depth = ecc of root" 3 (Traversal.eccentricity g 0)

let random_tree_is_tree =
  Test_util.qcheck "random_tree is a tree"
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      Graph.m g = n - 1 && Traversal.is_connected g)

let gnm_has_m_edges =
  Test_util.qcheck "gnm has exactly m edges" Gen.small_graph_gen
    (fun params ->
      let g = Gen.build_graph params in
      let _, m, _ = params in
      Graph.m g = m)

let random_connected_is_connected =
  Test_util.qcheck "random_connected is connected with m edges"
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let _, m, _ = params in
      Traversal.is_connected g && Graph.m g = m)

let bounded_degree_respects_bound =
  Test_util.qcheck "random_bounded_degree stays within the bound"
    QCheck2.Gen.(
      let* n = int_range 2 80 in
      let* d = int_range 2 5 in
      let* seed = int_range 0 1_000_000 in
      return (n, d, seed))
    (fun (n, d, seed) ->
      let g =
        Generators.random_bounded_degree (Random.State.make [| seed |]) ~n ~d
      in
      Graph.max_degree g <= d)

let test_grid_with_shortcuts () =
  let rng = Test_util.rng () in
  let g = Generators.grid_with_shortcuts rng ~rows:5 ~cols:5 ~shortcuts:10 in
  Test_util.check_int "m" (40 + 10) (Graph.m g);
  Test_util.check_bool "connected" true (Traversal.is_connected g)

let test_split_high_degree_distances () =
  let rng = Test_util.rng () in
  let g = Generators.gnm rng ~n:30 ~m:90 in
  let w = Wgraph.of_unweighted g in
  let split = Subdivide.split_high_degree w ~k:3 in
  (* max degree of the split graph is at most 2 + k *)
  Test_util.check_bool "degree bound" true
    (Wgraph.max_degree split.Subdivide.graph <= 2 + 3);
  (* distances between representatives match the original graph *)
  let ok = ref true in
  for u = 0 to 29 do
    let du = Dijkstra.distances w u in
    let du' =
      Dijkstra.distances split.Subdivide.graph split.Subdivide.representative.(u)
    in
    for v = 0 to 29 do
      if du.(v) <> du'.(split.Subdivide.representative.(v)) then ok := false
    done
  done;
  Test_util.check_bool "distance preservation" true !ok

let test_split_origin_map () =
  let g = Generators.star 10 in
  let split = Subdivide.split_unweighted g ~k:2 in
  (* center has degree 9 -> ceil(9/2) = 5 copies *)
  let copies =
    Array.to_list split.Subdivide.origin
    |> List.filter (fun o -> o = 0)
    |> List.length
  in
  Test_util.check_int "center copies" 5 copies;
  Array.iteri
    (fun orig rep ->
      Test_util.check_int "representative originates correctly" orig
        split.Subdivide.origin.(rep))
    split.Subdivide.representative

let test_subdivide_edge_paths () =
  let g, origin = Subdivide.subdivide_edge_paths ~n:2 [ (0, 1, 5) ] in
  Test_util.check_int "n" 6 (Graph.n g);
  Test_util.check_int "m" 5 (Graph.m g);
  Test_util.check_int "distance preserved" 5 (Traversal.bfs g 0).(1);
  Test_util.check_int "origin of endpoint" 1 origin.(1);
  Test_util.check_int "aux origin" (-1) origin.(2)

let subdivide_preserves_distances =
  Test_util.qcheck "edge-path subdivision preserves distances" ~count:50
    QCheck2.Gen.(
      let* n = int_range 2 15 in
      let* seed = int_range 0 1_000_000 in
      return (n, seed))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let tree = Generators.random_tree rng n in
      let weighted =
        List.map
          (fun (u, v) -> (u, v, 1 + Random.State.int rng 4))
          (Graph.edges tree)
      in
      let w = Wgraph.of_edges ~n weighted in
      let g, _ = Subdivide.subdivide_edge_paths ~n weighted in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dw = Dijkstra.distances w u in
        let dg = Traversal.bfs g u in
        for v = 0 to n - 1 do
          if dw.(v) <> dg.(v) then ok := false
        done
      done;
      !ok)

let test_io_roundtrip () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:20 ~m:35 in
  let g' = Result.get_ok (Graph_io.of_string_res (Graph_io.to_string g)) in
  Alcotest.(check (list (pair int int))) "edges equal" (Graph.edges g)
    (Graph.edges g');
  let w = Wgraph.of_edges ~n:3 [ (0, 1, 7); (1, 2, 0) ] in
  let w' =
    Result.get_ok (Graph_io.wgraph_of_string_res (Graph_io.wgraph_to_string w))
  in
  Test_util.check_bool "wedges equal" true (Wgraph.edges w = Wgraph.edges w')

(* rejection goes through the result-returning parser; the deprecated
   raising shim's exception contract is covered in
   test_io_adversarial.ml *)
let test_io_rejects () =
  let expect_error name input msg =
    match Graph_io.of_string_res input with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" name
    | Error e -> Alcotest.(check string) name msg e.Graph_io.msg
  in
  expect_error "bad header" "1 2 3\n" "Graph_io.of_string: bad header";
  expect_error "edge count" "3 2\n0 1\n"
    "Graph_io.of_string: edge count mismatch"

let test_dot_output () =
  let g = Generators.path 3 in
  let dot = Graph_io.to_dot g in
  Test_util.check_bool "mentions edge" true
    (String.length dot > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains dot "0 -- 1")

let suite =
  [
    Alcotest.test_case "basic shapes" `Quick test_basic_shapes;
    Alcotest.test_case "balanced binary tree" `Quick test_balanced_tree;
    random_tree_is_tree;
    gnm_has_m_edges;
    random_connected_is_connected;
    bounded_degree_respects_bound;
    Alcotest.test_case "grid with shortcuts" `Quick test_grid_with_shortcuts;
    Alcotest.test_case "split_high_degree distances" `Quick
      test_split_high_degree_distances;
    Alcotest.test_case "split origin map" `Quick test_split_origin_map;
    Alcotest.test_case "subdivide edge paths" `Quick test_subdivide_edge_paths;
    subdivide_preserves_distances;
    Alcotest.test_case "text io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "text io rejects garbage" `Quick test_io_rejects;
    Alcotest.test_case "dot output" `Quick test_dot_output;
  ]
