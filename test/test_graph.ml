(* Tests for the graph representations and shortest-path machinery. *)

open Repro_graph

let test_graph_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Test_util.check_int "n" 4 (Graph.n g);
  Test_util.check_int "m" 4 (Graph.m g);
  Test_util.check_int "degree" 2 (Graph.degree g 1);
  Test_util.check_int "max degree" 2 (Graph.max_degree g);
  Test_util.check_bool "edge 0-1" true (Graph.mem_edge g 0 1);
  Test_util.check_bool "edge 1-0" true (Graph.mem_edge g 1 0);
  Test_util.check_bool "edge 0-2" false (Graph.mem_edge g 0 2);
  Alcotest.(check (list (pair int int)))
    "edges sorted" [ (0, 1); (0, 3); (1, 2); (2, 3) ] (Graph.edges g)

let test_graph_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_wgraph_basic () =
  let g = Wgraph.of_edges ~n:3 [ (0, 1, 5); (1, 2, 0) ] in
  Test_util.check_int "m" 2 (Wgraph.m g);
  Alcotest.(check (option int)) "weight" (Some 5) (Wgraph.weight g 1 0);
  Alcotest.(check (option int)) "zero weight" (Some 0) (Wgraph.weight g 1 2);
  Alcotest.(check (option int)) "absent" None (Wgraph.weight g 0 2);
  Test_util.check_int "total" 5 (Wgraph.total_weight g)

let test_bfs_path_graph () =
  let g = Generators.path 5 in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check (array int)) "path dists" [| 0; 1; 2; 3; 4 |] dist;
  Test_util.check_int "eccentricity" 4 (Traversal.eccentricity g 0);
  Test_util.check_int "diameter" 4 (Traversal.diameter g)

let test_bfs_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let dist = Traversal.bfs g 0 in
  Test_util.check_bool "unreachable" false (Dist.is_finite dist.(2));
  let _, k = Traversal.components g in
  Test_util.check_int "components" 3 k;
  Test_util.check_bool "not connected" false (Traversal.is_connected g)

let test_bfs_full_counts () =
  (* 4-cycle: two shortest paths between opposite corners *)
  let g = Generators.cycle 4 in
  let r = Traversal.bfs_full g 0 in
  Test_util.check_int "two paths" 2 r.Traversal.num_paths.(2);
  Test_util.check_int "one path" 1 r.Traversal.num_paths.(1);
  (* parents give a valid shortest path *)
  match Path.extract ~parent:r.Traversal.parent ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path extracted"
  | Some p ->
      Test_util.check_bool "valid shortest" true (Path.verify_shortest g p)

let test_bfs_limited () =
  let g = Generators.path 10 in
  let ball = Traversal.bfs_limited g 5 ~radius:2 in
  Test_util.check_int "ball size" 5 (List.length ball);
  Test_util.check_bool "sorted by dist" true
    (let ds = List.map snd ball in
     List.sort compare ds = ds)

let test_dijkstra_vs_bfs () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:60 ~m:120 in
  let w = Wgraph.of_unweighted g in
  for s = 0 to 9 do
    let bfs = Traversal.bfs g s in
    let dij = Dijkstra.distances w s in
    Alcotest.(check (array int)) "bfs = dijkstra on unit weights" bfs dij
  done

let test_dijkstra_weighted () =
  (* triangle with a cheap two-hop detour *)
  let g = Wgraph.of_edges ~n:3 [ (0, 1, 10); (0, 2, 3); (2, 1, 3) ] in
  let d = Dijkstra.distances g 0 in
  Test_util.check_int "detour wins" 6 d.(1);
  let r = Dijkstra.shortest_paths g 0 in
  Test_util.check_int "parent of 1" 2 r.Dijkstra.parent.(1)

let test_dijkstra_zero_weights () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 0); (1, 2, 5); (2, 3, 0) ] in
  let d = Dijkstra.distances g 0 in
  Alcotest.(check (array int)) "zero-weight dists" [| 0; 0; 5; 5 |] d

let test_count_paths () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1) ] in
  let num = Dijkstra.count_shortest_paths g 0 in
  Test_util.check_int "two paths to 3" 2 num.(3);
  Test_util.check_bool "unique to 1" true (Dijkstra.unique_shortest_path g 0 1);
  Test_util.check_bool "not unique to 3" false
    (Dijkstra.unique_shortest_path g 0 3)

let test_count_paths_rejects_zero () =
  let g = Wgraph.of_edges ~n:2 [ (0, 1, 0) ] in
  Alcotest.check_raises "zero weight rejected"
    (Invalid_argument "Dijkstra.count_shortest_paths: zero-weight edge")
    (fun () -> ignore (Dijkstra.count_shortest_paths g 0))

let test_apsp () =
  let g = Generators.cycle 6 in
  let apsp = Apsp.of_graph g in
  Test_util.check_int "opposite" 3 (Apsp.dist apsp 0 3);
  Test_util.check_int "max finite" 3 (Apsp.max_finite apsp);
  Test_util.check_bool "triangle inequality" true
    (Apsp.check_triangle_inequality apsp)

let test_path_helpers () =
  let g = Generators.path 4 in
  Test_util.check_bool "is_path" true (Path.is_path g [ 0; 1; 2; 3 ]);
  Test_util.check_bool "not path" false (Path.is_path g [ 0; 2 ]);
  let hubs = Path.vertices_on_some_shortest_path g 0 3 in
  Alcotest.(check (list int)) "H_uv on a path graph" [ 0; 1; 2; 3 ] hubs

let test_hubset_count_cycle () =
  (* on an even cycle, antipodal pairs have every vertex of both arcs *)
  let g = Generators.cycle 6 in
  let hubs = Path.vertices_on_some_shortest_path g 0 3 in
  Test_util.check_int "both arcs" 6 (List.length hubs)

let bfs_symmetric =
  Test_util.qcheck "dist(u,v) = dist(v,u)" Gen.small_connected_gen
    (fun params ->
      let g = Gen.build_connected params in
      let n = Graph.n g in
      let u = 0 and v = n - 1 in
      (Traversal.bfs g u).(v) = (Traversal.bfs g v).(u))

let bfs_triangle =
  Test_util.qcheck "BFS metric satisfies triangle inequality"
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let apsp = Apsp.of_graph g in
      Apsp.check_triangle_inequality apsp)

let bfs_edge_lipschitz =
  Test_util.qcheck "adjacent vertices differ by at most 1 in dist"
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let dist = Traversal.bfs g 0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v ->
          if abs (dist.(u) - dist.(v)) > 1 then ok := false);
      !ok)

let dijkstra_parent_paths =
  Test_util.qcheck "dijkstra parent chains realise the distance"
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let w = Wgraph.of_unweighted g in
      let r = Dijkstra.shortest_paths w 0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        match Path.extract ~parent:r.Dijkstra.parent ~src:0 ~dst:v with
        | None -> ok := false
        | Some p -> (
            match Path.wlength w p with
            | Some len -> if len <> r.Dijkstra.dist.(v) then ok := false
            | None -> ok := false)
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basic;
    Alcotest.test_case "graph rejects bad input" `Quick test_graph_rejects;
    Alcotest.test_case "wgraph basics" `Quick test_wgraph_basic;
    Alcotest.test_case "bfs on a path" `Quick test_bfs_path_graph;
    Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
    Alcotest.test_case "bfs path counting" `Quick test_bfs_full_counts;
    Alcotest.test_case "bfs limited radius" `Quick test_bfs_limited;
    Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
      test_dijkstra_vs_bfs;
    Alcotest.test_case "dijkstra weighted detour" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra zero weights" `Quick test_dijkstra_zero_weights;
    Alcotest.test_case "shortest path counting" `Quick test_count_paths;
    Alcotest.test_case "counting rejects zero weights" `Quick
      test_count_paths_rejects_zero;
    Alcotest.test_case "apsp" `Quick test_apsp;
    Alcotest.test_case "path helpers" `Quick test_path_helpers;
    Alcotest.test_case "H_uv on even cycle" `Quick test_hubset_count_cycle;
    bfs_symmetric;
    bfs_triangle;
    bfs_edge_lipschitz;
    dijkstra_parent_paths;
  ]
