(* Tests for the route-planning substrate: bidirectional search and
   contraction hierarchies. *)

open Repro_graph
open Repro_route

let bidir_matches_dijkstra =
  Test_util.qcheck "bidirectional dijkstra = dijkstra" ~count:60
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 0 1000))
    (fun (params, wseed) ->
      let g = Gen.build_connected params in
      let rng = Random.State.make [| wseed |] in
      let w =
        Wgraph.of_edges ~n:(Graph.n g)
          (List.map
             (fun (u, v) -> (u, v, 1 + Random.State.int rng 9))
             (Graph.edges g))
      in
      let n = Graph.n g in
      let s = Random.State.int rng n and t = Random.State.int rng n in
      Bidirectional.distance w s t = (Dijkstra.distances w s).(t))

let bidir_disconnected () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 3) ] in
  Test_util.check_bool "inf across components" false
    (Dist.is_finite (Bidirectional.distance g 0 2));
  Test_util.check_int "same component" 3 (Bidirectional.distance g 0 1);
  Test_util.check_int "self" 0 (Bidirectional.distance g 2 2)

let bidir_bfs_matches =
  Test_util.qcheck "bidirectional BFS = BFS" ~count:60
    QCheck2.Gen.(pair Gen.small_graph_gen (int_range 0 1000))
    (fun (params, seed) ->
      let g = Gen.build_graph params in
      let rng = Random.State.make [| seed |] in
      let n = Graph.n g in
      let s = Random.State.int rng n and t = Random.State.int rng n in
      Bidirectional.distance_unweighted g s t = (Traversal.bfs g s).(t))

let ch_exact_unit_weights =
  Test_util.qcheck "contraction hierarchy queries = dijkstra (unit)" ~count:25
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let w = Wgraph.of_unweighted g in
      let ch = Contraction.preprocess w in
      let n = Graph.n g in
      let ok = ref true in
      for s = 0 to min (n - 1) 7 do
        let d = Dijkstra.distances w s in
        for t = 0 to n - 1 do
          if Contraction.query ch s t <> d.(t) then ok := false
        done
      done;
      !ok)

let ch_exact_random_weights =
  Test_util.qcheck "contraction hierarchy queries = dijkstra (weighted)"
    ~count:25
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 0 1000))
    (fun (params, wseed) ->
      let g = Gen.build_connected params in
      let rng = Random.State.make [| wseed |] in
      let w =
        Wgraph.of_edges ~n:(Graph.n g)
          (List.map
             (fun (u, v) -> (u, v, 1 + Random.State.int rng 9))
             (Graph.edges g))
      in
      let ch = Contraction.preprocess w in
      let d = Dijkstra.distances w 0 in
      let ok = ref true in
      for t = 0 to Graph.n g - 1 do
        if Contraction.query ch 0 t <> d.(t) then ok := false
      done;
      !ok)

let ch_small_hop_limit_still_exact =
  Test_util.qcheck "tiny witness budget stays exact" ~count:15
    Gen.small_connected_gen (fun params ->
      (* a hop limit of 1 makes nearly every witness search
         inconclusive, forcing many (safe) shortcuts; exactness must be
         unaffected. Shortcut counts are not compared across limits
         because the lazy priority order itself changes. *)
      let g = Gen.build_connected params in
      let w = Wgraph.of_unweighted g in
      let stingy = Contraction.preprocess ~hop_limit:1 w in
      let d = Dijkstra.distances w 0 in
      let ok = ref true in
      for t = 0 to Graph.n g - 1 do
        if Contraction.query stingy 0 t <> d.(t) then ok := false
      done;
      !ok)

let ch_order_is_permutation () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:40 ~m:80 in
  let ch = Contraction.preprocess (Wgraph.of_unweighted g) in
  Test_util.check_bool "order is a permutation" true
    (Repro_hub.Order.is_permutation (Contraction.order ch))

let ch_disconnected () =
  let w = Wgraph.of_edges ~n:5 [ (0, 1, 2); (2, 3, 4) ] in
  let ch = Contraction.preprocess w in
  Test_util.check_int "within" 2 (Contraction.query ch 0 1);
  Test_util.check_bool "across" false
    (Dist.is_finite (Contraction.query ch 0 3));
  Test_util.check_bool "isolated" false (Dist.is_finite (Contraction.query ch 4 0))

let suite =
  [
    bidir_matches_dijkstra;
    Alcotest.test_case "bidirectional on disconnected" `Quick bidir_disconnected;
    bidir_bfs_matches;
    ch_exact_unit_weights;
    ch_exact_random_weights;
    ch_small_hop_limit_still_exact;
    Alcotest.test_case "CH order permutation" `Quick ch_order_is_permutation;
    Alcotest.test_case "CH on disconnected" `Quick ch_disconnected;
  ]
