(* Tests for Distance_label, Hub_io, Graph_ops, and failure-injection
   checks on the verifiers. *)

open Repro_graph
open Repro_hub
open Repro_labeling

(* ----- Distance_label ---------------------------------------------- *)

let schemes_all_exact =
  Test_util.qcheck "hub-based and flat label schemes verify" ~count:20
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let schemes =
        [
          Distance_label.of_hub_labeling ~name:"pll" (Pll.build g);
          Distance_label.of_flat g;
        ]
      in
      List.for_all
        (fun (_, _, _, exact) -> exact)
        (Distance_label.compare_schemes g schemes))

let tree_scheme_exact =
  Test_util.qcheck "tree scheme verifies on random trees" ~count:20
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      Distance_label.verify g (Distance_label.of_tree g))

let test_scheme_size_accounting () =
  let g = Generators.path 50 in
  let flat = Distance_label.of_flat g in
  let hub = Distance_label.of_hub_labeling ~name:"pll" (Pll.build g) in
  Test_util.check_bool "bits positive" true (Distance_label.total_bits flat > 0);
  Test_util.check_bool "max >= avg" true
    (float_of_int (Distance_label.max_bits hub) >= Distance_label.avg_bits hub);
  Test_util.check_int "query works" 49 (Distance_label.query flat 0 49)

(* ----- Hub_io ------------------------------------------------------- *)

let hub_io_roundtrip =
  Test_util.qcheck "hub labeling text roundtrip" ~count:30
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let labels = Pll.build g in
      let back = Result.get_ok (Hub_io.of_string_res (Hub_io.to_string labels)) in
      let ok = ref (Hub_label.n back = Hub_label.n labels) in
      for v = 0 to Graph.n g - 1 do
        if Hub_label.hubs back v <> Hub_label.hubs labels v then ok := false
      done;
      !ok)

(* rejection goes through the result-returning parser; the deprecated
   raising shim's exception contract is covered in
   test_io_adversarial.ml *)
let test_hub_io_rejects () =
  let expect_error name input msg =
    match Hub_io.of_string_res input with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" name
    | Error e -> Alcotest.(check string) name msg e.Graph_io.msg
  in
  expect_error "empty" "  \n " "Hub_io.of_string: empty input";
  expect_error "count mismatch" "2 0\n0 0\n"
    "Hub_io.of_string: vertex count mismatch"

(* ----- Graph_ops ---------------------------------------------------- *)

let test_induced_subgraph () =
  let g = Generators.cycle 6 in
  let sub, old_id = Graph_ops.induced_subgraph g [ 0; 1; 2; 4 ] in
  Test_util.check_int "n" 4 (Graph.n sub);
  (* edges among {0,1,2,4} in C6: (0,1), (1,2) *)
  Test_util.check_int "m" 2 (Graph.m sub);
  Alcotest.(check (array int)) "old ids" [| 0; 1; 2; 4 |] old_id

let test_remove_vertices () =
  let g = Generators.path 5 in
  let sub, old_id = Graph_ops.remove_vertices g [ 2 ] in
  Test_util.check_int "n" 4 (Graph.n sub);
  Test_util.check_int "m (path split)" 2 (Graph.m sub);
  Test_util.check_bool "old ids skip 2" true (not (Array.mem 2 old_id))

let test_disjoint_union () =
  let g = Graph_ops.disjoint_union (Generators.path 3) (Generators.cycle 3) in
  Test_util.check_int "n" 6 (Graph.n g);
  Test_util.check_int "m" 5 (Graph.m g);
  let _, k = Traversal.components g in
  Test_util.check_int "two components" 2 k

let test_complement () =
  let g = Graph_ops.complement (Generators.path 3) in
  (* P3 complement: single edge (0,2) *)
  Test_util.check_int "m" 1 (Graph.m g);
  Test_util.check_bool "edge" true (Graph.mem_edge g 0 2)

let complement_involution =
  Test_util.qcheck "complement is an involution" ~count:30
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      Graph.edges (Graph_ops.complement (Graph_ops.complement g)) = Graph.edges g)

let test_is_subgraph () =
  let p = Generators.path 4 in
  let c = Generators.cycle 4 in
  Test_util.check_bool "path <= cycle" true (Graph_ops.is_subgraph ~sub:p c);
  Test_util.check_bool "cycle </= path" false (Graph_ops.is_subgraph ~sub:c p)

let test_map_weights () =
  let w = Wgraph.of_edges ~n:3 [ (0, 1, 2); (1, 2, 3) ] in
  let doubled = Graph_ops.map_weights (fun _ _ x -> 2 * x) w in
  Test_util.check_int "total doubled" 10 (Wgraph.total_weight doubled)

(* ----- failure injection on verifiers ------------------------------- *)

let corrupted_distance_detected =
  Test_util.qcheck "stored_distances_exact catches off-by-one corruption"
    ~count:30 Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      if Graph.n g < 2 then true
      else begin
        let labels = Pll.build g in
        (* bump the distance of the last hub of vertex 0 by one *)
        let sets =
          Array.init (Graph.n g) (fun v -> Hub_label.hub_list labels v)
        in
        match List.rev sets.(0) with
        | (h, d) :: rest_rev ->
            sets.(0) <- List.rev ((h, d + 1) :: rest_rev);
            let corrupted = Hub_label.make ~n:(Graph.n g) sets in
            not (Cover.stored_distances_exact g corrupted)
        | [] -> true
      end)

let missing_hub_detected_on_path () =
  (* dropping the middle hub of a 3-path from both endpoints breaks the
     pair (0,2); Cover.violations must report exactly it *)
  let g = Generators.path 3 in
  let labels =
    Hub_label.make ~n:3 [| [ (0, 0) ]; [ (1, 0) ]; [ (2, 0) ] |]
  in
  let v = Cover.violations g labels in
  Test_util.check_int "one missing pair plus neighbours" 3 (List.length v);
  Test_util.check_bool "0-2 among them" true
    (List.exists (fun x -> x.Cover.u = 0 && x.Cover.v = 2) v)

let encoder_rejects_unsorted () =
  Alcotest.check_raises "unsorted hubs"
    (Invalid_argument "Encoder.encode_vertex: hubs not sorted") (fun () ->
      ignore (Encoder.encode_vertex [| (3, 0); (1, 2) |]))

let suite =
  [
    schemes_all_exact;
    tree_scheme_exact;
    Alcotest.test_case "scheme size accounting" `Quick
      test_scheme_size_accounting;
    hub_io_roundtrip;
    Alcotest.test_case "hub io rejects garbage" `Quick test_hub_io_rejects;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "remove vertices" `Quick test_remove_vertices;
    Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
    Alcotest.test_case "complement" `Quick test_complement;
    complement_involution;
    Alcotest.test_case "is_subgraph" `Quick test_is_subgraph;
    Alcotest.test_case "map_weights" `Quick test_map_weights;
    corrupted_distance_detected;
    Alcotest.test_case "missing hub detected" `Quick
      missing_hub_detected_on_path;
    Alcotest.test_case "encoder rejects unsorted" `Quick
      encoder_rejects_unsorted;
  ]
