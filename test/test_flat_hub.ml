(* Tests for the packed flat-array hub store: CSR invariants, edge
   cases (empty labeling, single vertex), batched-vs-point agreement,
   the direct-mapped cache, and the binary save/load round trip. *)

open Repro_graph
open Repro_hub

let test_empty_labeling () =
  let flat = Flat_hub.of_labels (Hub_label.make ~n:0 [||]) in
  Test_util.check_int "n" 0 (Flat_hub.n flat);
  Test_util.check_int "total" 0 (Flat_hub.total_size flat);
  Alcotest.(check (array int)) "empty batch" [||] (Flat_hub.query_many flat [||]);
  let bytes = Hub_io.flat_to_bytes flat in
  (match Hub_io.flat_of_bytes_res bytes with
  | Ok flat' -> Test_util.check_bool "round trip" true (Flat_hub.equal flat flat')
  | Error e -> Alcotest.failf "empty store failed to load: %s" e.Hub_io.msg);
  Alcotest.check_raises "query on empty store"
    (Invalid_argument "Flat_hub.query") (fun () ->
      ignore (Flat_hub.query flat 0 0))

let test_single_vertex () =
  let flat = Flat_hub.of_labels (Hub_label.make ~n:1 [| [ (0, 0) ] |]) in
  Test_util.check_int "self distance" 0 (Flat_hub.query flat 0 0);
  Test_util.check_int "size" 1 (Flat_hub.size flat 0);
  Alcotest.(check (array int)) "batch" [| 0; 0 |]
    (Flat_hub.query_many flat [| (0, 0); (0, 0) |])

let test_empty_hubset_is_disconnected () =
  let flat = Flat_hub.of_labels (Hub_label.make ~n:2 [| [ (0, 0) ]; [] |]) in
  Test_util.check_bool "disjoint hubsets give inf" false
    (Dist.is_finite (Flat_hub.query flat 0 1));
  Test_util.check_int "empty side" 0 (Flat_hub.size flat 1)

let test_query_validates () =
  let flat = Flat_hub.of_labels (Hub_label.make ~n:2 [| [ (0, 0) ]; [] |]) in
  Alcotest.check_raises "negative" (Invalid_argument "Flat_hub.query")
    (fun () -> ignore (Flat_hub.query flat (-1) 0));
  Alcotest.check_raises "batched out of range"
    (Invalid_argument "Flat_hub.query_many") (fun () ->
      ignore (Flat_hub.query_many flat [| (0, 2) |]))

let test_of_raw_rejects () =
  let check name ~n ~offsets ~data =
    match Flat_hub.of_raw ~n ~offsets ~data with
    | _ -> Alcotest.failf "%s: accepted invalid CSR input" name
    | exception Invalid_argument _ -> ()
  in
  check "bad offsets length" ~n:2 ~offsets:[| 0; 1 |] ~data:[| 0; 0 |];
  check "nonzero start" ~n:1 ~offsets:[| 1; 1 |] ~data:[||];
  check "decreasing offsets" ~n:2 ~offsets:[| 0; 1; 0 |] ~data:[| 0; 0 |];
  check "wrong end" ~n:1 ~offsets:[| 0; 2 |] ~data:[| 0; 0 |];
  check "hub out of range" ~n:1 ~offsets:[| 0; 1 |] ~data:[| 1; 0 |];
  check "negative distance" ~n:1 ~offsets:[| 0; 1 |] ~data:[| 0; -1 |];
  check "unsorted hubs" ~n:3 ~offsets:[| 0; 2; 2; 2 |] ~data:[| 1; 0; 0; 1 |]

let test_binary_rejects () =
  let good = Hub_io.flat_to_bytes (Flat_hub.of_labels (Pll.build (Generators.path 4))) in
  let expect_error name s =
    match Hub_io.flat_of_bytes_res s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed bytes accepted" name
  in
  expect_error "empty" "";
  expect_error "bad magic" ("XUBFLAT1" ^ String.sub good 8 (String.length good - 8));
  expect_error "truncated" (String.sub good 0 (String.length good - 3));
  expect_error "missing words" (String.sub good 0 (String.length good - 8));
  Test_util.check_bool "is_packed detects" true (Hub_io.is_packed good);
  Test_util.check_bool "is_packed rejects text" false (Hub_io.is_packed "3 4\n")

let flat_matches_assoc =
  Test_util.qcheck "flat store answers exactly like the assoc labeling"
    ~count:50 Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let labels = Pll.build g in
      let flat = Flat_hub.of_labels labels in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Flat_hub.query flat u v <> Hub_label.query labels u v then
            ok := false
        done
      done;
      !ok && Flat_hub.total_size flat = Hub_label.total_size labels)

let batched_equals_point =
  Test_util.qcheck "query_many agrees with point queries" ~count:50
    (Gen.connected_gen ~max_n:40 ~max_deg:3 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let flat = Flat_hub.of_labels (Pll.build g) in
      let pairs = Gen.query_pairs ~seed ~n:(Graph.n g) 32 in
      Flat_hub.query_many flat pairs
      = Array.map (fun (u, v) -> Flat_hub.query flat u v) pairs)

let cached_equals_uncached =
  Test_util.qcheck "cache changes no answer and records hits" ~count:40
    (Gen.connected_gen ~max_n:30 ~max_deg:3 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let labels = Pll.build g in
      let plain = Flat_hub.of_labels labels in
      let cached = Flat_hub.of_labels ~cache_slots:8 labels in
      let pairs = Gen.query_pairs ~seed ~n:(Graph.n g) 16 in
      (* same stream twice: second pass must hit at least sometimes on
         small graphs, and answers must never change *)
      let a1 = Flat_hub.query_many cached pairs in
      let a2 = Flat_hub.query_many cached pairs in
      let truth = Flat_hub.query_many plain pairs in
      let hits, misses =
        match Flat_hub.cache_stats cached with
        | Some hm -> hm
        | None -> Alcotest.fail "cache_stats missing on cached store"
      in
      a1 = truth && a2 = truth
      && hits + misses = 2 * Array.length pairs
      && Flat_hub.cache_stats plain = None)

let roundtrip_stable =
  Test_util.qcheck "pack -> save -> load -> save is byte-for-byte stable"
    ~count:50 Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let labels = Pll.build g in
      let flat = Flat_hub.of_labels labels in
      let bytes = Hub_io.flat_to_bytes flat in
      match Hub_io.flat_of_bytes_res bytes with
      | Error e -> Alcotest.failf "load failed: %s" e.Hub_io.msg
      | Ok flat' ->
          Flat_hub.equal flat flat'
          && Hub_io.flat_to_bytes flat' = bytes
          && Flat_hub.query_many flat'
               (Gen.query_pairs ~seed:7 ~n:(max 1 (Graph.n g)) 8)
             = Flat_hub.query_many flat
                 (Gen.query_pairs ~seed:7 ~n:(max 1 (Graph.n g)) 8))

let to_labels_roundtrip =
  Test_util.qcheck "to_labels inverts of_labels" ~count:40 Gen.small_graph_gen
    (fun params ->
      let g = Gen.build_graph params in
      let labels = Pll.build g in
      let thawed = Flat_hub.to_labels (Flat_hub.of_labels labels) in
      let n = Graph.n g in
      let ok = ref (Hub_label.n thawed = n) in
      for v = 0 to n - 1 do
        if Hub_label.hubs thawed v <> Hub_label.hubs labels v then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "empty labeling" `Quick test_empty_labeling;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "empty hubset" `Quick test_empty_hubset_is_disconnected;
    Alcotest.test_case "query validation" `Quick test_query_validates;
    Alcotest.test_case "of_raw rejects bad CSR" `Quick test_of_raw_rejects;
    Alcotest.test_case "binary loader rejects garbage" `Quick
      test_binary_rejects;
    flat_matches_assoc;
    batched_equals_point;
    cached_equals_uncached;
    roundtrip_stable;
    to_labels_roundtrip;
  ]
