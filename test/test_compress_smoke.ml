(* End-to-end smoke for the compressed HUBFLAT2 label store
   (`dune build @compress-smoke`, part of @ci).

   Exercises the whole compress → load → serve path through the real
   CLI:

   1. `hubhard label --pack --compress` writes a HUBFLAT2 file +
      sidecar graph and prints a packed-size summary; the compressed
      file is strictly smaller than the HUBFLAT1 pack of the same
      labeling;
   2. the compressed bytes load in-process (deep-validated, heap and
      mmap paths) and agree with a heap Flat_hub parse of the
      uncompressed pack on every sampled pair;
   3. `hubhard serve query --compact` answers byte-for-byte what
      `--flat` answers on the same seeded pairs, and a `serve loop
      --compact` snapshot records store kind "compact";
   4. a shard router drives real `hubhard serve worker --compact`
      subprocesses (exec spawn) — every answer exact and
      primary-served, so N workers share one compressed on-disk store;
   5. malformed inputs die with the documented exit codes: a truncated
      compressed file exits 10 (parse failure), `--compact --mmap`
      exits 124 (bad arguments), `label --compress` without `--pack`
      exits 124.

   Runs as its own executable: the router may fork, so this binary
   stays strictly domain-free. The CLI path arrives as argv.(1). *)

open Repro_graph
open Repro_hub
open Repro_shard

let passed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("compress-smoke FAIL: " ^ s);
      exit 1)
    fmt

let check name b = if b then incr passed else fail "%s" name

let cli =
  if Array.length Sys.argv < 2 then
    fail "usage: %s <path-to-hubhard-cli>" Sys.argv.(0)
  else Sys.argv.(1)

(* Run the CLI with [args], return (exit code, stdout lines). stderr
   passes through so failures are diagnosable in the build log. *)
let run_cli args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> fail "CLI killed by signal %d" s
    | Unix.WSTOPPED _ -> fail "CLI stopped"
  in
  (code, List.rev !lines)

let contains sub s =
  let sn = String.length sub and n = String.length s in
  let rec go i = i + sn <= n && (String.sub s i sn = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ----- 1. compress a labeling through the CLI ------------------------ *)

let flat_file = Filename.temp_file "compress_smoke_flat" ".bin"
let packed_file = Filename.temp_file "compress_smoke" ".bin"
let graph_file = packed_file ^ ".graph"

let label_args pack =
  [ "label"; "--graph"; "sparse"; "-n"; "220"; "--seed"; "11"; "--pack"; pack ]

let () =
  let code, _ = run_cli (label_args flat_file) in
  check "pack: HUBFLAT1 reference pack exits 0" (code = 0);
  let code, lines = run_cli (label_args packed_file @ [ "--compress" ]) in
  check "pack: label --pack --compress exits 0" (code = 0);
  check "pack: summary line printed"
    (List.exists (fun l -> contains "packed" l && contains "HUBFLAT2" l) lines);
  check "pack: compressed file exists" (Sys.file_exists packed_file);
  check "pack: sidecar graph exists" (Sys.file_exists graph_file);
  let ic = open_in_bin packed_file in
  let magic = really_input_string ic 8 in
  close_in ic;
  check "pack: HUBFLAT2 magic" (String.equal magic Hub_io.compact_magic);
  let z2 = (Unix.stat packed_file).Unix.st_size in
  let z1 = (Unix.stat flat_file).Unix.st_size in
  check "pack: compressed is strictly smaller than HUBFLAT1" (z2 < z1);
  Printf.printf "scenario 1 (CLI pack --compress, %d -> %d bytes): ok\n%!" z1 z2

(* ----- 2. compact load agrees with the heap parse -------------------- *)

let graph =
  match Graph_io.of_string_res (read_file graph_file) with
  | Ok g -> g
  | Error e -> fail "graph sidecar line %d: %s" e.Graph_io.line e.Graph_io.msg

let flat =
  match Hub_io.flat_of_bytes_res (read_file flat_file) with
  | Ok f -> f
  | Error e -> fail "heap parse at byte %d: %s" e.Hub_io.line e.Hub_io.msg

let store =
  match Compact_hub.load_res ~deep:true packed_file with
  | Ok s -> s
  | Error e -> fail "compact load: %s" (Compact_hub.error_to_string e)

let () =
  let n = Graph.n graph in
  check "compact: n matches graph" (Compact_hub.n store = n);
  check "compact: totals match heap parse"
    (Compact_hub.total_size store = Flat_hub.total_size flat);
  let heap =
    match Compact_hub.of_bytes_res ~deep:true (read_file packed_file) with
    | Ok s -> s
    | Error e -> fail "compact heap load: %s" (Compact_hub.error_to_string e)
  in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 500 do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let truth = Flat_hub.query flat u v in
    if Compact_hub.query store u v <> truth then
      fail "compact(map) vs heap parse differ on d(%d,%d)" u v;
    if Compact_hub.query heap u v <> truth then
      fail "compact(heap) vs heap parse differ on d(%d,%d)" u v
  done;
  incr passed;
  Printf.printf "scenario 2 (compact = heap parse on packed file): ok\n%!"

(* ----- 3. serve query --compact = --flat through the CLI ------------- *)

(* Answer lines are "u v dist source"; the store kinds differ only in
   the source column, so compare the distance triples. *)
let answer_triples lines =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | u :: v :: d :: _ when int_of_string_opt u <> None -> Some (u, v, d)
      | _ -> None)
    lines

let serve_query ~labels extra =
  run_cli
    ([
       "serve"; "query"; "--graph-file"; graph_file; "--labels-file"; labels;
       "--num"; "40"; "--seed"; "5";
     ]
    @ extra)

let () =
  let code_f, lines_f = serve_query ~labels:flat_file [ "--flat" ] in
  let code_c, lines_c = serve_query ~labels:packed_file [ "--compact" ] in
  check "serve: --flat exits 0" (code_f = 0);
  check "serve: --compact exits 0" (code_c = 0);
  let tf = answer_triples lines_f and tc = answer_triples lines_c in
  check "serve: 40 answers each" (List.length tf = 40 && List.length tc = 40);
  check "serve: identical distances across stores" (tf = tc);
  let q_file = Filename.temp_file "compress_smoke" ".queries" in
  let snap_file = Filename.temp_file "compress_smoke" ".snap.json" in
  let oc = open_out q_file in
  output_string oc "0 1\n2 3\n";
  close_out oc;
  let code, _ =
    run_cli
      [
        "serve"; "loop"; "--graph-file"; graph_file; "--labels-file";
        packed_file; "--compact"; "--queries"; q_file; "--metrics-out";
        snap_file;
      ]
  in
  check "serve loop: --compact exits 0" (code = 0);
  check "serve loop: snapshot records the store kind"
    (contains "\"store\": \"compact\"" (read_file snap_file));
  Sys.remove q_file;
  Sys.remove snap_file;
  Printf.printf
    "scenario 3 (serve query --compact = --flat, store in snapshot): ok\n%!"

(* ----- 4. exec-mode shard workers in --compact mode ------------------ *)

let () =
  let spawn =
    Router.Exec
      (fun ~shard ->
        [|
          cli; "serve"; "worker"; "--graph-file"; graph_file; "--labels-file";
          packed_file; "--compact"; "--shards"; "3"; "--shard";
          string_of_int shard; "--partition"; "hash"; "--clock-step"; "1000";
        |])
  in
  let router =
    Router.create
      {
        (Router.default_config graph) with
        Router.shards = 3;
        partition = Partition.Hash;
        spawn;
        clock_step = Some 1000L;
        seed = 7;
      }
  in
  let n = Graph.n graph in
  let rng = Random.State.make [| 7 |] in
  let queries =
    Array.init 24 (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let answers = Router.query_batch router queries in
  Array.iteri
    (fun i (a : Router.answer) ->
      let u, v = queries.(i) in
      check "exec: exact" (a.Router.dist = Compact_hub.query store u v);
      check "exec: primary-served"
        (a.Router.source = Wire.source_primary && not a.Router.degraded))
    answers;
  Router.shutdown router;
  Printf.printf "scenario 4 (exec workers serve --compact): ok\n%!"

(* ----- 5. malformed inputs die with typed exit codes ----------------- *)

let () =
  let bytes = read_file packed_file in
  let trunc = Filename.temp_file "compress_smoke_trunc" ".bin" in
  let oc = open_out_bin trunc in
  output_string oc (String.sub bytes 0 (String.length bytes - 9));
  close_out oc;
  let code, _ =
    run_cli
      [
        "serve"; "query"; "--graph-file"; graph_file; "--labels-file"; trunc;
        "--compact"; "--num"; "2";
      ]
  in
  check "hostile: truncated compressed file exits 10 (parse failure)"
    (code = 10);
  Sys.remove trunc;
  let code, _ =
    run_cli
      [
        "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
        packed_file; "--compact"; "--mmap"; "--num"; "2";
      ]
  in
  check "hostile: --compact --mmap exits 124 (bad arguments)" (code = 124);
  let code, _ =
    run_cli [ "label"; "--graph"; "sparse"; "-n"; "20"; "--compress" ]
  in
  check "hostile: --compress without --pack exits 124 (bad arguments)"
    (code = 124);
  Printf.printf "scenario 5 (typed failure exits): ok\n%!";
  Sys.remove packed_file;
  Sys.remove flat_file;
  Sys.remove (flat_file ^ ".graph");
  Sys.remove graph_file;
  Printf.printf "compress-smoke: all scenarios passed (%d checks)\n%!" !passed
