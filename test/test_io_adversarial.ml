(* Adversarial parsing tests for the Result-typed IO entry points:
   truncated input, wrong counts, out-of-range ids, negative
   weights/distances, duplicate lines, comments/whitespace — plus
   round-trip property tests for both formats. *)

open Repro_graph
open Repro_hub

let graph_err input =
  match Graph_io.of_string_res input with
  | Ok _ -> Alcotest.failf "expected a parse error on %S" input
  | Error e -> e

let wgraph_err input =
  match Graph_io.wgraph_of_string_res input with
  | Ok _ -> Alcotest.failf "expected a parse error on %S" input
  | Error e -> e

let hub_err input =
  match Hub_io.of_string_res input with
  | Ok _ -> Alcotest.failf "expected a parse error on %S" input
  | Error e -> e

let check_err name ~line ~substr e =
  Test_util.check_int (name ^ " line") line e.Graph_io.line;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  if not (contains e.Graph_io.msg substr) then
    Alcotest.failf "%s: message %S does not mention %S" name e.Graph_io.msg
      substr

(* ----- Graph_io ------------------------------------------------------ *)

let test_graph_truncated () =
  check_err "truncated" ~line:1 ~substr:"edge count mismatch"
    (graph_err "4 3\n0 1\n1 2\n");
  check_err "extra edges" ~line:1 ~substr:"edge count mismatch"
    (graph_err "4 1\n0 1\n1 2\n")

let test_graph_comments_whitespace () =
  let g =
    match
      Graph_io.of_string_res "# header next\n\n  3 2  \n0 1\n# middle\n\n1 2\n"
    with
    | Ok g -> g
    | Error e -> Alcotest.failf "unexpected: %s" (Graph_io.string_of_parse_error e)
  in
  Test_util.check_int "n" 3 (Graph.n g);
  Test_util.check_int "m" 2 (Graph.m g)

let test_graph_bad_lines () =
  check_err "endpoint range" ~line:2 ~substr:"endpoint out of range"
    (graph_err "2 1\n0 5\n");
  check_err "negative endpoint" ~line:2 ~substr:"endpoint out of range"
    (graph_err "2 1\n0 -1\n");
  check_err "self loop" ~line:2 ~substr:"self loop" (graph_err "2 1\n1 1\n");
  check_err "duplicate" ~line:3 ~substr:"duplicate edge"
    (graph_err "2 2\n0 1\n1 0\n");
  check_err "bad token" ~line:2 ~substr:"bad token" (graph_err "2 1\nx 1\n");
  check_err "bad header" ~line:1 ~substr:"bad header" (graph_err "1 2 3\n");
  check_err "negative n" ~line:1 ~substr:"negative vertex count"
    (graph_err "-2 0\n");
  check_err "empty" ~line:0 ~substr:"empty input" (graph_err "  \n# only\n")

let test_wgraph_bad_lines () =
  check_err "negative weight" ~line:2 ~substr:"negative weight"
    (wgraph_err "2 1\n0 1 -3\n");
  check_err "short edge line" ~line:2 ~substr:"bad edge line"
    (wgraph_err "2 1\n0 1\n");
  let g =
    match Graph_io.wgraph_of_string_res "2 1\n0 1 0\n" with
    | Ok g -> g
    | Error e -> Alcotest.failf "unexpected: %s" (Graph_io.string_of_parse_error e)
  in
  Test_util.check_int "zero weight accepted" 1 (Wgraph.m g)

(* The raising shims are gone; the [_res] parsers carry the same
   message strings (the "Graph_io.of_string:" prefixes name the format,
   not a function), pinned here so error output stays stable. *)
let test_compat_raises () =
  check_err "graph edge count" ~line:1
    ~substr:"Graph_io.of_string: edge count mismatch"
    (graph_err "3 2\n0 1\n");
  check_err "hub duplicate vertex" ~line:3
    ~substr:"Hub_io.of_string: duplicate vertex line"
    (hub_err "2 2\n0 1 0 0\n0 1 0 0\n")

(* ----- Hub_io -------------------------------------------------------- *)

let test_hub_bad_lines () =
  check_err "duplicate vertex" ~line:3 ~substr:"duplicate vertex line"
    (hub_err "2 2\n0 1 0 0\n0 1 0 0\n");
  check_err "vertex range" ~line:2 ~substr:"vertex out of range"
    (hub_err "1 1\n4 1 0 0\n");
  check_err "hub range" ~line:2 ~substr:"hub out of range"
    (hub_err "1 1\n0 1 5 0\n");
  check_err "negative distance" ~line:2 ~substr:"negative distance"
    (hub_err "1 1\n0 1 0 -2\n");
  check_err "truncated" ~line:1 ~substr:"vertex count mismatch"
    (hub_err "3 3\n0 1 0 0\n");
  check_err "pair count" ~line:2 ~substr:"pair count mismatch"
    (hub_err "1 2\n0 2 0 0\n");
  check_err "total mismatch" ~line:1 ~substr:"total size mismatch"
    (hub_err "1 2\n0 1 0 0\n");
  check_err "bad header" ~line:1 ~substr:"bad header" (hub_err "1\n0 0\n")

let test_hub_comments_whitespace () =
  let l =
    match Hub_io.of_string_res "# labeling\n2 2\n\n 0 1 0 0 \n1 1 1 0\n" with
    | Ok l -> l
    | Error e -> Alcotest.failf "unexpected: %s" (Graph_io.string_of_parse_error e)
  in
  Test_util.check_int "n" 2 (Hub_label.n l);
  Test_util.check_int "total" 2 (Hub_label.total_size l)

(* ----- round-trip properties ---------------------------------------- *)

let prop_graph_roundtrip =
  Test_util.qcheck "Graph_io roundtrip through of_string_res" ~count:50
    Gen.small_graph_gen (fun param ->
      let g = Gen.build_graph param in
      match Graph_io.of_string_res (Graph_io.to_string g) with
      | Error _ -> false
      | Ok g' -> Graph.n g' = Graph.n g && Graph.edges g' = Graph.edges g)

let prop_wgraph_roundtrip =
  Test_util.qcheck "Graph_io weighted roundtrip" ~count:50
    Gen.small_connected_gen (fun param ->
      let g = Gen.build_connected param in
      let w =
        Wgraph.of_edges ~n:(Graph.n g)
          (List.mapi (fun i (u, v) -> (u, v, i mod 7)) (Graph.edges g))
      in
      match Graph_io.wgraph_of_string_res (Graph_io.wgraph_to_string w) with
      | Error _ -> false
      | Ok w' -> Wgraph.n w' = Wgraph.n w && Wgraph.edges w' = Wgraph.edges w)

let prop_hub_roundtrip =
  Test_util.qcheck "Hub_io roundtrip through of_string_res" ~count:30
    Gen.small_connected_gen (fun param ->
      let g = Gen.build_connected param in
      let labels = Pll.build g in
      match Hub_io.of_string_res (Hub_io.to_string labels) with
      | Error _ -> false
      | Ok labels' ->
          Hub_label.n labels' = Hub_label.n labels
          && Array.init (Hub_label.n labels) (fun v -> Hub_label.hubs labels' v)
             = Array.init (Hub_label.n labels) (fun v -> Hub_label.hubs labels v))

(* ----- Wire protocol (sharded tier) ---------------------------------
   Every hostile byte sequence must surface as a typed [Wire.error] —
   never an exception, never a hang. The descriptor-level entry points
   are exercised over real pipes with the writer closed, so a
   would-be hang fails fast as EOF instead. *)

module Wire = Repro_shard.Wire

let wire_err name s =
  match Wire.decode_frame s ~pos:0 with
  | Ok _ -> Alcotest.failf "%s: expected a wire error" name
  | Error e -> e

let le32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.to_string b

let test_wire_truncated_frames () =
  let full = Wire.encode_request (Wire.Query { id = 1; u = 2; v = 3 }) in
  (* cut the frame at every possible byte boundary *)
  for k = 1 to String.length full - 1 do
    match wire_err "truncated" (String.sub full 0 k) with
    | Wire.Truncated _ -> ()
    | e ->
        Alcotest.failf "cut at %d: expected Truncated, got %s" k
          (Wire.error_to_string e)
  done;
  (* a fixed-size payload with trailing bytes is also malformed *)
  match Wire.request_of_payload ("\x02" ^ String.make 9 '\x00') with
  | Error (Wire.Bad_payload _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "trailing bytes must be rejected"

let test_wire_hostile_lengths () =
  (match wire_err "negative" ("\xff\xff\xff\xff" ^ "junk") with
  | Wire.Negative_length _ -> ()
  | e -> Alcotest.failf "expected Negative_length, got %s" (Wire.error_to_string e));
  (match wire_err "oversized" (le32 (Wire.max_frame_len + 1)) with
  | Wire.Oversized l -> Test_util.check_int "length echoed" (Wire.max_frame_len + 1) l
  | e -> Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e));
  match wire_err "empty" (le32 0) with
  | Wire.Bad_payload _ -> ()
  | e -> Alcotest.failf "expected Bad_payload, got %s" (Wire.error_to_string e)

let test_wire_garbage_opcodes () =
  List.iter
    (fun p ->
      (match Wire.request_of_payload p with
      | Error (Wire.Bad_opcode _) -> ()
      | Ok _ | Error _ -> Alcotest.failf "request opcode %d" (Char.code p.[0]));
      match Wire.response_of_payload p with
      | Error (Wire.Bad_opcode _) -> ()
      | Ok _ | Error _ -> Alcotest.failf "response opcode %d" (Char.code p.[0]))
    [ "\x7f"; "\xff"; "\x0arest" ];
  (* 0x05 is Op_row now: a short body is Truncated, never Bad_opcode *)
  (match Wire.request_of_payload "\x05rest" with
  | Error (Wire.Truncated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "short Op_row body should be Truncated");
  (* 0x09 is Trace_fetch now: a short body is Truncated, never Bad_opcode *)
  (match Wire.request_of_payload "\x09rest" with
  | Error (Wire.Truncated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "short Trace_fetch body should be Truncated");
  (match Wire.response_of_payload "\x09rest" with
  | Error (Wire.Bad_opcode 0x09) -> ()
  | Ok _ | Error _ -> Alcotest.fail "Trace_fetch is not a response");
  (* request opcodes are not response opcodes and vice versa *)
  (match Wire.response_of_payload "\x02\x01\x00\x00\x00\x00\x00\x00\x00" with
  | Error (Wire.Bad_opcode 0x02) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ping is not a response");
  (match Wire.response_of_payload "\x08\x01\x00\x00\x00\x00\x00\x00\x00" with
  | Error (Wire.Bad_opcode 0x08) -> ()
  | Ok _ | Error _ -> Alcotest.fail "Op_diam is not a response");
  (match Wire.request_of_payload "\x82\x01\x00\x00\x00\x00\x00\x00\x00" with
  | Error (Wire.Bad_opcode 0x82) -> ()
  | Ok _ | Error _ -> Alcotest.fail "pong is not a request");
  match
    Wire.request_of_payload
      ("\x86" ^ String.init 33 (fun _ -> '\x00'))
  with
  | Error (Wire.Bad_opcode 0x86) -> ()
  | Ok _ | Error _ -> Alcotest.fail "Ecc_payload is not a request"

let test_wire_midframe_eof_on_pipe () =
  let check bytes expect =
    let r, w = Unix.pipe ~cloexec:false () in
    if bytes <> "" then (
      match Wire.write_frame w bytes with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup write: %s" (Wire.error_to_string e));
    Unix.close w;
    let got = Wire.read_frame r in
    Unix.close r;
    match (got, expect) with
    | Error (Wire.Truncated _), `Truncated -> ()
    | Error Wire.Eof, `Eof -> ()
    | Ok _, _ -> Alcotest.fail "expected an error from the pipe"
    | Error e, _ ->
        Alcotest.failf "wrong pipe error: %s" (Wire.error_to_string e)
  in
  check "" `Eof;
  (* die inside the header *)
  check "\x19\x00" `Truncated;
  (* die inside the body: header promises 25 bytes, deliver 5 *)
  check (le32 25 ^ "\x01abcd") `Truncated

let prop_wire_decode_total =
  Test_util.qcheck "Wire.decode_frame is total on random bytes" ~count:300
    QCheck2.Gen.(string_size ~gen:char (int_range 0 64))
    (fun s ->
      (* no exception, and on success the reported next position is sane *)
      match Wire.decode_frame s ~pos:0 with
      | Ok (payload, next) ->
          next <= String.length s && String.length payload = next - 4
          && (match Wire.request_of_payload payload with _ -> true)
          && (match Wire.response_of_payload payload with _ -> true)
      | Error _ -> true)

(* ----- Trace-context wrapper (opcode 0x0f) ---------------------------
   The optional context block must never cost totality: every hostile
   version/length/flags byte, every truncation and every misplaced
   wrapper surfaces as a typed [Wire.error] or a context-free decode —
   never an exception, never a mis-framed stream. *)

let ctx_fixture =
  Repro_obs.Trace_ctx.force
    (Repro_obs.Trace_ctx.head_sample ~every:1
       (Repro_obs.Trace_ctx.root ~seed:20190721 ~seq:5))

let test_ctx_truncated_every_byte () =
  let inner = Wire.Query { id = 7; u = 1; v = 2 } in
  let full = Wire.encode_request_ctx ~ctx:ctx_fixture inner in
  (* the wrapped frame really is the wrapper opcode *)
  (match Wire.decode_frame full ~pos:0 with
  | Ok (p, _) -> Test_util.check_int "wrapper opcode" 0x0f (Char.code p.[0])
  | Error e -> Alcotest.failf "fixture frame: %s" (Wire.error_to_string e));
  for k = 1 to String.length full - 1 do
    match Wire.decode_frame (String.sub full 0 k) ~pos:0 with
    | Error (Wire.Truncated _) -> ()
    | Error Wire.Eof -> ()
    | Ok (p, _) -> (
        (* header survived the cut: the payload itself must reject *)
        match Wire.request_of_payload_ctx p with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "cut at %d decoded" k)
    | Error e ->
        Alcotest.failf "cut at %d: unexpected %s" k (Wire.error_to_string e)
  done;
  (* untouched, it round-trips with the context intact *)
  match Wire.decode_frame full ~pos:0 with
  | Ok (p, _) -> (
      match Wire.request_of_payload_ctx p with
      | Ok (req, Some c) ->
          Test_util.check_bool "inner request intact" true (req = inner);
          Test_util.check_bool "context intact" true (c = ctx_fixture)
      | Ok (_, None) -> Alcotest.fail "context lost"
      | Error e -> Alcotest.failf "round trip: %s" (Wire.error_to_string e))
  | Error e -> Alcotest.failf "round trip frame: %s" (Wire.error_to_string e)

let test_ctx_hostile_bytes () =
  let inner = Wire.Query { id = 7; u = 1; v = 2 } in
  let full = Wire.encode_request_ctx ~ctx:ctx_fixture inner in
  let payload = String.sub full 4 (String.length full - 4) in
  let patched i c =
    let b = Bytes.of_string payload in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (* unknown version: block skipped, inner request still decodes *)
  (match Wire.request_of_payload_ctx (patched 1 '\xff') with
  | Ok (req, None) ->
      Test_util.check_bool "unknown version keeps request" true (req = inner)
  | Ok (_, Some _) -> Alcotest.fail "unknown version produced a context"
  | Error e ->
      Alcotest.failf "unknown version: %s" (Wire.error_to_string e));
  (* v1 with a wrong block length is malformed, not misframed *)
  (match Wire.request_of_payload_ctx (patched 2 '\x18') with
  | Error (Wire.Bad_payload _ | Wire.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "wrong ctx length decoded"
  | Error e ->
      Alcotest.failf "wrong ctx length: %s" (Wire.error_to_string e));
  (* hostile flag bits are reserved, ignored: still decodes *)
  (match Wire.request_of_payload_ctx (patched 27 '\xff') with
  | Ok (req, Some _) ->
      Test_util.check_bool "hostile flags keep request" true (req = inner)
  | Ok (_, None) -> Alcotest.fail "hostile flags dropped the context"
  | Error e -> Alcotest.failf "hostile flags: %s" (Wire.error_to_string e));
  (* a wrapper around garbage inner bytes fails like plain garbage *)
  (match
     Wire.request_of_payload_ctx
       (String.sub payload 0 28 ^ "\xffgarbage")
   with
  | Error (Wire.Bad_opcode 0xff) -> ()
  | Ok _ | Error _ -> Alcotest.fail "garbage inner payload accepted");
  (* a wrapper with no inner payload at all *)
  match Wire.request_of_payload_ctx (String.sub payload 0 28) with
  | Error (Wire.Bad_payload _ | Wire.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "empty inner payload accepted"
  | Error e ->
      Alcotest.failf "empty inner payload: %s" (Wire.error_to_string e)

let test_ctx_misplaced_wrappers () =
  let inner = Wire.Query { id = 7; u = 1; v = 2 } in
  let wrapped = Wire.encode_request_ctx ~ctx:ctx_fixture inner in
  let payload = String.sub wrapped 4 (String.length wrapped - 4) in
  (* nested wrapper: the inner payload must not be a 0x0f itself *)
  let nested =
    String.sub payload 0 28 ^ payload (* ctx block, then the whole
                                         wrapper again as "inner" *)
  in
  (match Wire.request_of_payload_ctx nested with
  | Error (Wire.Bad_opcode 0x0f) -> ()
  | Ok _ | Error _ -> Alcotest.fail "nested ctx wrapper accepted");
  (* responses never carry a context *)
  (match Wire.response_of_payload payload with
  | Error (Wire.Bad_opcode 0x0f) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ctx wrapper accepted as a response");
  (* the plain (ctx-unaware) request decoder also rejects it: an old
     peer stays in sync and answers with a typed error *)
  (match Wire.request_of_payload payload with
  | Error (Wire.Bad_opcode 0x0f) -> ()
  | Ok _ | Error _ -> Alcotest.fail "old peer would mis-parse the wrapper");
  (* context-free encoding is byte-identical to the historical one *)
  Test_util.check_bool "no ctx = historical bytes" true
    (Wire.encode_request_ctx inner = Wire.encode_request inner)

let prop_ctx_decode_total =
  Test_util.qcheck "request_of_payload_ctx is total on random bytes"
    ~count:300
    QCheck2.Gen.(string_size ~gen:char (int_range 0 80))
    (fun s ->
      (* force the interesting opcode half the time *)
      let s = if String.length s > 0 && Char.code s.[0] land 1 = 0 then
          "\x0f" ^ s
        else s
      in
      match Wire.request_of_payload_ctx s with
      | Ok (_, _) -> true
      | Error _ -> true)

(* ----- Mmap_hub (zero-copy packed store) -----------------------------
   Every malformed HUBFLAT1 file must decode to a typed [Mmap_hub.error]
   — never a segfault, exception or hang. The fixture labeling is built
   by hand so every word offset in the file is known exactly:
     word 0 magic | 1 n=3 | 2 total=6 | 3..6 offsets 0,1,3,6
     | 7.. data (0,0) (0,1)(1,0) (0,2)(1,1)(2,0)            (19 words) *)

let packed_fixture =
  lazy
    (let labels =
       Hub_label.make ~n:3
         (Array.of_list
            [ [ (0, 0) ]; [ (0, 1); (1, 0) ]; [ (0, 2); (1, 1); (2, 0) ] ])
     in
     Hub_io.flat_to_bytes (Flat_hub.of_labels labels))

let mmap_load ?deep bytes =
  let path = Filename.temp_file "hubhard_adv" ".bin" in
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc;
  let res = Mmap_hub.load_res ?deep path in
  Sys.remove path;
  res

let mmap_err name ?deep bytes =
  match mmap_load ?deep bytes with
  | Ok _ -> Alcotest.failf "%s: expected a load error" name
  | Error e -> e

let patch bytes ~word v =
  let b = Bytes.of_string bytes in
  Bytes.set_int64_le b (8 * word) v;
  Bytes.to_string b

let expect name got want =
  if got <> want then
    Alcotest.failf "%s: got %s, wanted %s" name
      (Mmap_hub.error_to_string got)
      (Mmap_hub.error_to_string want)

let test_mmap_pristine () =
  let bytes = Lazy.force packed_fixture in
  Test_util.check_int "fixture size" (8 * 19) (String.length bytes);
  match mmap_load ~deep:true bytes with
  | Error e -> Alcotest.failf "pristine: %s" (Mmap_hub.error_to_string e)
  | Ok store ->
      Test_util.check_int "n" 3 (Mmap_hub.n store);
      Test_util.check_int "total" 6 (Mmap_hub.total_size store);
      Test_util.check_int "d(0,2)" 2 (Mmap_hub.query store 0 2);
      Test_util.check_int "d(2,1)" 1 (Mmap_hub.query store 2 1)

(* cut the file at every possible byte boundary; the error constructor
   is fully determined by the cut length *)
let test_mmap_truncated_every_byte () =
  let bytes = Lazy.force packed_fixture in
  for k = 0 to String.length bytes - 1 do
    let e = mmap_err (Printf.sprintf "cut at %d" k) (String.sub bytes 0 k) in
    let want =
      if k < 24 then Mmap_hub.Too_short { bytes = k }
      else if k mod 8 <> 0 then Mmap_hub.Misaligned { bytes = k }
      else
        (* expected_words saturates to max_int while the header's
           n=3/total=6 still exceed the truncated word count *)
        let actual_words = k / 8 in
        let expected_words = if actual_words < 6 then max_int else 19 in
        Mmap_hub.Length_mismatch { expected_words; actual_words }
    in
    expect (Printf.sprintf "cut at %d" k) e want
  done

let test_mmap_hostile_header () =
  let bytes = Lazy.force packed_fixture in
  (match mmap_err "magic" (patch bytes ~word:0 0L) with
  | Mmap_hub.Bad_magic -> ()
  | e -> Alcotest.failf "magic: got %s" (Mmap_hub.error_to_string e));
  (match mmap_err "negative n" (patch bytes ~word:1 (-1L)) with
  | Mmap_hub.Bad_header { word = 8; _ } -> ()
  | e -> Alcotest.failf "negative n: got %s" (Mmap_hub.error_to_string e));
  (match mmap_err "overflowing n" (patch bytes ~word:1 Int64.max_int) with
  | Mmap_hub.Bad_header { word = 8; _ } -> ()
  | e -> Alcotest.failf "overflowing n: got %s" (Mmap_hub.error_to_string e));
  (match mmap_err "negative total" (patch bytes ~word:2 Int64.min_int) with
  | Mmap_hub.Bad_header { word = 16; _ } -> ()
  | e -> Alcotest.failf "negative total: got %s" (Mmap_hub.error_to_string e));
  expect "inflated n"
    (mmap_err "inflated n" (patch bytes ~word:1 4L))
    (Mmap_hub.Length_mismatch { expected_words = 20; actual_words = 19 });
  expect "inflated total"
    (mmap_err "inflated total" (patch bytes ~word:2 7L))
    (Mmap_hub.Length_mismatch { expected_words = 21; actual_words = 19 });
  (* n/total far beyond the file: the saturated length check, not an
     allocation or overflow, must reject them *)
  (match mmap_err "huge n" (patch bytes ~word:1 0x10_0000_0000L) with
  | Mmap_hub.Length_mismatch _ -> ()
  | e -> Alcotest.failf "huge n: got %s" (Mmap_hub.error_to_string e));
  (match
     mmap_err "misaligned tail" (bytes ^ "xyz")
   with
  | Mmap_hub.Misaligned _ -> ()
  | e -> Alcotest.failf "misaligned tail: got %s" (Mmap_hub.error_to_string e));
  match mmap_err "trailing word" (bytes ^ String.make 8 '\x00') with
  | Mmap_hub.Length_mismatch { expected_words = 19; actual_words = 20 } -> ()
  | e -> Alcotest.failf "trailing word: got %s" (Mmap_hub.error_to_string e)

let test_mmap_hostile_offsets () =
  let bytes = Lazy.force packed_fixture in
  let bad word v name =
    match mmap_err name (patch bytes ~word v) with
    | Mmap_hub.Bad_offsets _ -> ()
    | e -> Alcotest.failf "%s: got %s" name (Mmap_hub.error_to_string e)
  in
  bad 3 1L "offsets must start at 0";
  bad 3 (-1L) "negative first offset";
  bad 5 0L "decreasing offsets";
  bad 5 7L "offset beyond entry count";
  bad 5 Int64.max_int "offset beyond int64 range";
  bad 6 5L "final offset below total";
  bad 4 (-3L) "negative middle offset"

(* deep mode scans every entry word; shallow mode deliberately accepts
   garbage entries (memory safety only needs the offsets) and
   [validate_entries] catches the rot after the fact. *)
let test_mmap_hostile_entries () =
  let bytes = Lazy.force packed_fixture in
  let bad word v name =
    (match mmap_err ~deep:true name (patch bytes ~word v) with
    | Mmap_hub.Bad_entry _ -> ()
    | e -> Alcotest.failf "%s (deep): got %s" name (Mmap_hub.error_to_string e));
    match mmap_load (patch bytes ~word v) with
    | Error e ->
        Alcotest.failf "%s: shallow load must accept bad entry words, got %s"
          name (Mmap_hub.error_to_string e)
    | Ok store -> (
        match Mmap_hub.validate_entries store with
        | Error (Mmap_hub.Bad_entry _) -> ()
        | Error e ->
            Alcotest.failf "%s: validate_entries got %s" name
              (Mmap_hub.error_to_string e)
        | Ok () -> Alcotest.failf "%s: validate_entries accepted rot" name)
  in
  bad 7 5L "hub out of range";
  bad 7 (-1L) "negative hub";
  bad 11 0L "hubs not strictly increasing";
  bad 8 (-2L) "negative distance";
  bad 8 0x4000_0000_0000_0000L "distance overflows native int"

let test_mmap_not_a_file () =
  (match Mmap_hub.load_res "/nonexistent/hubhard/labels.bin" with
  | Error (Mmap_hub.Io _) -> ()
  | Error e -> Alcotest.failf "missing file: got %s" (Mmap_hub.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file: expected an error");
  (match Mmap_hub.load_res (Filename.get_temp_dir_name ()) with
  | Error (Mmap_hub.Not_regular _ | Mmap_hub.Io _) -> ()
  | Error e -> Alcotest.failf "directory: got %s" (Mmap_hub.error_to_string e)
  | Ok _ -> Alcotest.fail "directory: expected an error");
  if Sys.file_exists "/dev/null" then
    match Mmap_hub.load_res "/dev/null" with
    | Error (Mmap_hub.Not_regular _) -> ()
    | Error e ->
        Alcotest.failf "/dev/null: got %s" (Mmap_hub.error_to_string e)
    | Ok _ -> Alcotest.fail "/dev/null: expected Not_regular"

let prop_mmap_load_total =
  Test_util.qcheck "Mmap_hub.load_res is total on random bytes" ~count:120
    QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
    (fun s ->
      (* no exception ever; acceptance implies a coherent header *)
      match mmap_load ~deep:true s with
      | Ok store -> Mmap_hub.n store >= 0 && Mmap_hub.total_size store >= 0
      | Error _ -> true)

(* ----- Compact_hub (compressed zero-copy store) ----------------------
   The HUBFLAT2 decoder faces a strictly nastier input space than
   HUBFLAT1: variable-length varints, deltas, and a skip table full of
   byte offsets. Same contract: every malformed image surfaces as a
   typed [Compact_hub.error] under deep validation, and a shallowly
   accepted image may answer queries wrongly but never crashes, hangs
   or reads out of bounds. *)

let compact_fixture =
  lazy
    (let labels =
       Hub_label.make ~n:3
         (Array.of_list
            [ [ (0, 0) ]; [ (0, 1); (1, 0) ]; [ (0, 2); (1, 1); (2, 0) ] ])
     in
     Compact_hub.to_bytes (Flat_hub.of_labels labels))

let compact_err name ?deep bytes =
  match Compact_hub.of_bytes_res ?deep bytes with
  | Ok _ -> Alcotest.failf "%s: expected a load error" name
  | Error e -> e

let cexpect name got want =
  if got <> want then
    Alcotest.failf "%s: got %s, wanted %s" name
      (Compact_hub.error_to_string got)
      (Compact_hub.error_to_string want)

(* hand-assemble a HUBFLAT2 image so every byte is known exactly *)
let mk ?(magic = "HUBFLAT2") ~n ~total ~block ~ent_off ~byte_off blob =
  let blob_len = String.length blob in
  let words = 5 + (2 * (n + 1)) in
  let pad = (8 - (blob_len mod 8)) mod 8 in
  let out = Bytes.make ((8 * words) + blob_len + pad) '\000' in
  Bytes.blit_string magic 0 out 0 8;
  let w = ref 1 in
  let put x =
    Bytes.set_int64_le out (8 * !w) (Int64.of_int x);
    incr w
  in
  put n;
  put total;
  put block;
  put blob_len;
  Array.iter put ent_off;
  Array.iter put byte_off;
  Bytes.blit_string blob 0 out (8 * words) blob_len;
  Bytes.to_string out

let u32s x =
  String.init 4 (fun i -> Char.chr ((x lsr (8 * i)) land 0xff))

let skip_entry ~hub ~off = u32s hub ^ u32s off

(* one vertex, one entry per block: region = 8-byte skip entry, base
   varint, then (hub varint, zigzag varint) *)
let mk1 blob ~k =
  mk ~n:1 ~total:k ~block:1 ~ent_off:[| 0; k |]
    ~byte_off:[| 0; String.length blob |]
    blob

let test_compact_pristine () =
  let bytes = Lazy.force compact_fixture in
  Test_util.check_int "fixture size" 144 (String.length bytes);
  match Compact_hub.of_bytes_res ~deep:true bytes with
  | Error e -> Alcotest.failf "pristine: %s" (Compact_hub.error_to_string e)
  | Ok store ->
      Test_util.check_int "n" 3 (Compact_hub.n store);
      Test_util.check_int "total" 6 (Compact_hub.total_size store);
      Test_util.check_int "d(0,2)" 2 (Compact_hub.query store 0 2);
      Test_util.check_int "d(2,1)" 1 (Compact_hub.query store 2 1)

(* cut the image at every byte boundary; the error constructor is fully
   determined by the cut length (offsets only decode past the header) *)
let test_compact_truncated_every_byte () =
  let bytes = Lazy.force compact_fixture in
  let full_words = String.length bytes / 8 in
  for k = 0 to String.length bytes - 1 do
    let name = Printf.sprintf "cut at %d" k in
    let e = compact_err name (String.sub bytes 0 k) in
    let want =
      if k < 40 then Compact_hub.Too_short { bytes = k }
      else if k mod 8 <> 0 then Compact_hub.Misaligned { bytes = k }
      else
        Compact_hub.Length_mismatch
          { expected_words = full_words; actual_words = k / 8 }
    in
    cexpect name e want
  done

let test_compact_hostile_header () =
  let bytes = Lazy.force compact_fixture in
  (match compact_err "magic" (patch bytes ~word:0 0L) with
  | Compact_hub.Bad_magic -> ()
  | e -> Alcotest.failf "magic: got %s" (Compact_hub.error_to_string e));
  let bad_header name word v want_byte =
    match compact_err name (patch bytes ~word v) with
    | Compact_hub.Bad_header { word = b; _ } when b = want_byte -> ()
    | e -> Alcotest.failf "%s: got %s" name (Compact_hub.error_to_string e)
  in
  bad_header "negative n" 1 (-1L) 8;
  bad_header "overflowing n" 1 Int64.max_int 8;
  bad_header "n beyond 2^31" 1 0x8000_0000L 8;
  bad_header "negative total" 2 Int64.min_int 16;
  bad_header "zero block" 3 0L 24;
  bad_header "negative blob_len" 4 (-5L) 32;
  (match compact_err "inflated n" (patch bytes ~word:1 4L) with
  | Compact_hub.Length_mismatch _ -> ()
  | e -> Alcotest.failf "inflated n: got %s" (Compact_hub.error_to_string e));
  (* blob_len far beyond the file: the saturated length check rejects
     it before any allocation *)
  (match compact_err "huge blob_len" (patch bytes ~word:4 0x10_0000_0000L) with
  | Compact_hub.Length_mismatch { expected_words; _ } ->
      Test_util.check_int "saturated" max_int expected_words
  | e -> Alcotest.failf "huge blob_len: got %s" (Compact_hub.error_to_string e));
  (match compact_err "misaligned tail" (bytes ^ "xyz") with
  | Compact_hub.Misaligned _ -> ()
  | e ->
      Alcotest.failf "misaligned tail: got %s" (Compact_hub.error_to_string e));
  match compact_err "trailing word" (bytes ^ String.make 8 '\x00') with
  | Compact_hub.Length_mismatch { expected_words = 18; actual_words = 19 } -> ()
  | e -> Alcotest.failf "trailing word: got %s" (Compact_hub.error_to_string e)

(* ent_off lives at words 5..8 (0,1,3,6), byte_off at words 9..12
   (0,11,24,39) for the 3-vertex fixture *)
let test_compact_hostile_offsets () =
  let bytes = Lazy.force compact_fixture in
  let bad word v name =
    match compact_err name (patch bytes ~word v) with
    | Compact_hub.Bad_offsets _ -> ()
    | e -> Alcotest.failf "%s: got %s" name (Compact_hub.error_to_string e)
  in
  bad 5 1L "entry offsets must start at 0";
  bad 5 (-1L) "negative first entry offset";
  bad 7 0L "decreasing entry offsets";
  bad 8 7L "entry offset beyond total";
  bad 8 5L "final entry offset below total";
  bad 8 Int64.max_int "entry offset beyond int range";
  bad 9 (-3L) "negative byte offset";
  bad 11 1L "decreasing byte offsets";
  bad 12 38L "final byte offset below blob_len";
  (* monotone but leaving vertex 0 less room than its skip table: the
     shallow room check must refuse, or the query path could read the
     next vertex's bytes as skip slots *)
  bad 10 3L "region too small for its skip table"

(* deep mode strictly re-decodes every region; shallow mode accepts the
   same images and must then answer queries without crashing (possibly
   wrongly — the resilient serving layer spot-checks for that). *)
let test_compact_hostile_varints () =
  let deep_rejects name ?(k = 1) ~substr blob =
    (match compact_err name ~deep:true (mk1 blob ~k) with
    | Compact_hub.Bad_entry { msg; _ } ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        if not (contains msg substr) then
          Alcotest.failf "%s: message %S does not mention %S" name msg substr
    | e -> Alcotest.failf "%s: got %s" name (Compact_hub.error_to_string e));
    match Compact_hub.of_bytes_res (mk1 blob ~k) with
    | Error e ->
        Alcotest.failf "%s: shallow load must accept blob rot, got %s" name
          (Compact_hub.error_to_string e)
    | Ok store ->
        (* totality: a clamped decode of hostile bytes, never a crash *)
        ignore (Compact_hub.query store 0 0)
  in
  (* canonical single-entry region, for reference: skip(0,9) 00 00 00 *)
  (match
     Compact_hub.of_bytes_res ~deep:true
       (mk1 (skip_entry ~hub:0 ~off:9 ^ "\x00\x00\x00") ~k:1)
   with
  | Ok store -> Test_util.check_int "canonical d(0,0)" 0 (Compact_hub.query store 0 0)
  | Error e -> Alcotest.failf "canonical: %s" (Compact_hub.error_to_string e));
  (* a continuation bit on every byte runs off the region end *)
  deep_rejects "continuation forever" ~substr:"truncated varint"
    (skip_entry ~hub:0 ~off:9 ^ "\xff\xff\xff");
  (* non-minimal encoding of the base (0x80 0x00 = 0) *)
  deep_rejects "overlong varint" ~substr:"overlong varint"
    (skip_entry ~hub:0 ~off:10 ^ "\x80\x00\x00\x00");
  (* nine continuation bytes overflow a 63-bit native int *)
  deep_rejects "varint overflows int" ~substr:"overflows a native int"
    (skip_entry ~hub:0 ~off:17 ^ String.make 9 '\xff' ^ "\x01\x00\x00");
  (* the skip table must describe the actual layout *)
  deep_rejects "skip offset out of range" ~substr:"byte offset mismatch"
    (skip_entry ~hub:0 ~off:0xffff ^ "\x00\x00\x00");
  deep_rejects "skip first-hub mismatch" ~substr:"first hub mismatch"
    (skip_entry ~hub:5 ~off:9 ^ "\x00\x00\x00");
  (* delta pushes the hub id out of [0, n) *)
  deep_rejects "hub out of range" ~substr:"hub out of range"
    (skip_entry ~hub:5 ~off:9 ^ "\x00\x05\x00");
  (* zigzag below the base: a negative distance *)
  deep_rejects "negative distance" ~substr:"bad distance"
    (skip_entry ~hub:0 ~off:9 ^ "\x00\x00\x01");
  deep_rejects "trailing region bytes" ~substr:"trailing bytes"
    (skip_entry ~hub:0 ~off:9 ^ "\x00\x00\x00\x00");
  (* an empty hubset must own an empty region *)
  match
    compact_err "empty hubset, bytes" ~deep:true
      (mk ~n:1 ~total:0 ~block:1 ~ent_off:[| 0; 0 |] ~byte_off:[| 0; 1 |]
         "\x00")
  with
  | Compact_hub.Bad_entry { msg = "empty hubset with a non-empty region"; _ }
    -> ()
  | e ->
      Alcotest.failf "empty hubset: got %s" (Compact_hub.error_to_string e)

let test_compact_not_a_file () =
  (match Compact_hub.load_res "/nonexistent/hubhard/labels.cbin" with
  | Error (Compact_hub.Io _) -> ()
  | Error e ->
      Alcotest.failf "missing file: got %s" (Compact_hub.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file: expected an error");
  (match Compact_hub.load_res (Filename.get_temp_dir_name ()) with
  | Error (Compact_hub.Not_regular _ | Compact_hub.Io _) -> ()
  | Error e ->
      Alcotest.failf "directory: got %s" (Compact_hub.error_to_string e)
  | Ok _ -> Alcotest.fail "directory: expected an error");
  (* Hub_io's auto-detecting entry point funnels the same errors into
     its parse_error type *)
  match Hub_io.compact_of_bytes_res "HUBFLAT2 and then garbage" with
  | Error e -> Test_util.check_int "parse_error line" 0 e.Graph_io.line
  | Ok _ -> Alcotest.fail "garbage after magic accepted"

let prop_compact_load_total =
  Test_util.qcheck "Compact_hub.of_bytes_res is total on random bytes"
    ~count:150
    QCheck2.Gen.(string_size ~gen:char (int_range 0 220))
    (fun s ->
      (* force the interesting prefix half the time *)
      let s =
        if String.length s > 0 && Char.code s.[0] land 1 = 0 then
          "HUBFLAT2" ^ s
        else s
      in
      match Compact_hub.of_bytes_res ~deep:true s with
      | Ok store ->
          Compact_hub.n store >= 0 && Compact_hub.total_size store >= 0
      | Error _ -> true)

(* memory safety under single-byte corruption: whatever a flipped byte
   does to the blob, a shallowly accepted store must answer every query
   (the skip-table merge clamps and terminates) *)
let prop_compact_flipped_byte_safe =
  Test_util.qcheck "Compact_hub survives any single flipped byte" ~count:200
    QCheck2.Gen.(pair (int_range 0 143) (int_range 1 255))
    (fun (pos, delta) ->
      let bytes = Bytes.of_string (Lazy.force compact_fixture) in
      Bytes.set bytes pos
        (Char.chr ((Char.code (Bytes.get bytes pos) + delta) land 0xff));
      match Compact_hub.of_bytes_res (Bytes.to_string bytes) with
      | Error _ -> true
      | Ok store ->
          let n = Compact_hub.n store in
          (try
             for u = 0 to n - 1 do
               for v = 0 to n - 1 do
                 ignore (Compact_hub.query store u v)
               done
             done;
             true
           with
          | Invalid_argument _ -> true
          | _ -> false))

let suite =
  [
    Alcotest.test_case "graph truncated input" `Quick test_graph_truncated;
    Alcotest.test_case "graph comments and whitespace" `Quick
      test_graph_comments_whitespace;
    Alcotest.test_case "graph bad lines" `Quick test_graph_bad_lines;
    Alcotest.test_case "wgraph bad lines" `Quick test_wgraph_bad_lines;
    Alcotest.test_case "legacy raise compat" `Quick test_compat_raises;
    Alcotest.test_case "hub bad lines" `Quick test_hub_bad_lines;
    Alcotest.test_case "hub comments and whitespace" `Quick
      test_hub_comments_whitespace;
    prop_graph_roundtrip;
    prop_wgraph_roundtrip;
    prop_hub_roundtrip;
    Alcotest.test_case "wire truncated frames" `Quick test_wire_truncated_frames;
    Alcotest.test_case "wire hostile lengths" `Quick test_wire_hostile_lengths;
    Alcotest.test_case "wire garbage opcodes" `Quick test_wire_garbage_opcodes;
    Alcotest.test_case "wire mid-frame EOF on a pipe" `Quick
      test_wire_midframe_eof_on_pipe;
    prop_wire_decode_total;
    Alcotest.test_case "trace ctx truncation at every byte" `Quick
      test_ctx_truncated_every_byte;
    Alcotest.test_case "trace ctx hostile bytes" `Quick test_ctx_hostile_bytes;
    Alcotest.test_case "trace ctx misplaced wrappers" `Quick
      test_ctx_misplaced_wrappers;
    prop_ctx_decode_total;
    Alcotest.test_case "mmap pristine fixture loads" `Quick test_mmap_pristine;
    Alcotest.test_case "mmap truncation at every byte" `Quick
      test_mmap_truncated_every_byte;
    Alcotest.test_case "mmap hostile header words" `Quick
      test_mmap_hostile_header;
    Alcotest.test_case "mmap hostile offsets" `Quick test_mmap_hostile_offsets;
    Alcotest.test_case "mmap hostile entries (deep vs shallow)" `Quick
      test_mmap_hostile_entries;
    Alcotest.test_case "mmap non-regular and missing files" `Quick
      test_mmap_not_a_file;
    prop_mmap_load_total;
    Alcotest.test_case "compact pristine fixture loads" `Quick
      test_compact_pristine;
    Alcotest.test_case "compact truncation at every byte" `Quick
      test_compact_truncated_every_byte;
    Alcotest.test_case "compact hostile header words" `Quick
      test_compact_hostile_header;
    Alcotest.test_case "compact hostile offsets" `Quick
      test_compact_hostile_offsets;
    Alcotest.test_case "compact hostile varints (deep vs shallow)" `Quick
      test_compact_hostile_varints;
    Alcotest.test_case "compact non-regular and missing files" `Quick
      test_compact_not_a_file;
    prop_compact_load_total;
    prop_compact_flipped_byte_safe;
  ]
