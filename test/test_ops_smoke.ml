(* End-to-end smoke for the ops query surface
   (`dune build @ops-smoke`, part of @ci).

   Drives every aggregate operation through the real CLI, end to end:

   1. `hubhard label --pack` writes a HUBFLAT1 file + sidecar graph;
   2. `serve query --op` answers every operation in assoc, flat and
      mmap modes — the answer lines are byte-identical across all
      three stores and across --jobs values, pinned by sha256;
   3. a 3-shard `serve router --op` run (fork spawn, hash partition)
      produces the same answer bytes as the in-process stores, and two
      same-seed runs are byte-identical to each other;
   4. the shared store-kind resolver rejects the documented bad
      combinations with exit 124 on every subcommand that takes them,
      and bad --op spellings exit 124 / out-of-range operands exit 11.

   Runs as its own executable: the router forks, so this binary stays
   strictly domain-free. The CLI path arrives as argv.(1). *)

let passed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("ops-smoke FAIL: " ^ s);
      exit 1)
    fmt

let check name b = if b then incr passed else fail "%s" name

let cli =
  if Array.length Sys.argv < 2 then
    fail "usage: %s <path-to-hubhard-cli>" Sys.argv.(0)
  else Sys.argv.(1)

let run_cli args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> fail "CLI killed by signal %d" s
    | Unix.WSTOPPED _ -> fail "CLI stopped"
  in
  (code, List.rev !lines)

(* ----- 1. pack a labeling through the CLI ---------------------------- *)

let packed_file = Filename.temp_file "ops_smoke" ".bin"
let graph_file = packed_file ^ ".graph"

let () =
  let code, _ =
    run_cli
      [
        "label"; "--graph"; "sparse"; "-n"; "180"; "--seed"; "23"; "--pack";
        packed_file;
      ]
  in
  check "pack: label --pack exits 0" (code = 0);
  check "pack: packed file exists" (Sys.file_exists packed_file);
  check "pack: sidecar graph exists" (Sys.file_exists graph_file);
  Printf.printf "scenario 1 (CLI pack): ok\n%!"

(* ----- 2. every op, every store, identical bytes --------------------- *)

(* Answer lines are "req -> resp source"; stores differ only in the
   source column, so strip it before comparing. *)
let op_answers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line '>' with
      | Some _ ->
          let parts = String.split_on_char ' ' line in
          (match List.rev parts with
          | _source :: rest -> Some (String.concat " " (List.rev rest))
          | [] -> None)
      | None -> None)
    lines

let ops_args =
  [
    "--op"; "dist:0,5";
    "--op"; "batch:0,1;2,3;7,7";
    "--op"; "one-to-many:2:0,7,11,2";
    "--op"; "many-to-many:1,2:3,4,5";
    "--op"; "top-k:5,6";
    "--op"; "ecc:3";
    "--op"; "farthest:9";
    "--op"; "diam";
  ]

let serve_query extra =
  run_cli
    ([
       "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
       packed_file;
     ]
    @ ops_args @ extra)

let sha256 answers =
  Repro_par.Checksum.sha256_hex (String.concat "\n" answers)

let assoc_answers =
  let code, lines = serve_query [] in
  check "assoc: exits 0" (code = 0);
  op_answers lines

let () =
  check "assoc: 8 answers" (List.length assoc_answers = 8);
  let runs =
    [
      ("flat", [ "--flat" ]);
      ("mmap", [ "--mmap" ]);
      ("flat --jobs 1", [ "--flat"; "--jobs"; "1" ]);
      ("mmap --jobs 3", [ "--mmap"; "--jobs"; "3" ]);
    ]
  in
  let h0 = sha256 assoc_answers in
  List.iter
    (fun (name, extra) ->
      let code, lines = serve_query extra in
      check (name ^ ": exits 0") (code = 0);
      let h = sha256 (op_answers lines) in
      if h <> h0 then fail "%s: answer sha256 %s <> assoc %s" name h h0;
      incr passed)
    runs;
  Printf.printf "scenario 2 (every op, assoc = flat = mmap, any --jobs, sha256 %s): ok\n%!"
    (String.sub h0 0 12)

(* ----- 3. 3-shard router merge, byte-identical and repeatable -------- *)

let () =
  let router_run () =
    run_cli
      ([
         "serve"; "router"; "--graph-file"; graph_file; "--labels-file";
         packed_file; "--shards"; "3"; "--partition"; "hash"; "--seed"; "23";
         "--clock-step"; "1000";
       ]
      @ ops_args)
  in
  let code_a, lines_a = router_run () in
  let code_b, lines_b = router_run () in
  check "router: exits 0" (code_a = 0 && code_b = 0);
  let ha = sha256 (op_answers lines_a) and hb = sha256 (op_answers lines_b) in
  check "router: same-seed runs byte-identical" (ha = hb);
  check "router: merge = in-process stores" (ha = sha256 assoc_answers);
  Printf.printf "scenario 3 (3-shard router merge byte-identical): ok\n%!"

(* ----- 4. the shared resolver and typed failure exits ---------------- *)

let () =
  let expect name code args =
    let got, _ = run_cli args in
    check
      (Printf.sprintf "%s exits %d (got %d)" name code got)
      (got = code)
  in
  (* the one store-kind resolver guards every serve subcommand *)
  List.iter
    (fun sub ->
      expect
        (sub ^ ": --mmap without --labels-file")
        124
        [ "serve"; sub; "--graph-file"; graph_file; "--mmap" ])
    [ "query"; "stats"; "loop"; "worker"; "router" ];
  List.iter
    (fun sub ->
      expect
        (sub ^ ": --mmap --flat")
        124
        [
          "serve"; sub; "--graph-file"; graph_file; "--labels-file";
          packed_file; "--mmap"; "--flat";
        ])
    [ "query"; "stats"; "loop" ];
  expect "bad --op spelling" 124
    [
      "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
      packed_file; "--op"; "top-k:wat";
    ];
  expect "out-of-range --op operand" 11
    [
      "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
      packed_file; "--op"; "ecc:100000";
    ];
  expect "router rejects bad --op too" 124
    [
      "serve"; "router"; "--graph-file"; graph_file; "--labels-file";
      packed_file; "--op"; "nonsense";
    ];
  Printf.printf "scenario 4 (typed failure exits): ok\n%!";
  Sys.remove packed_file;
  Sys.remove graph_file;
  Printf.printf "ops-smoke: all scenarios passed (%d checks)\n%!" !passed
