(* Trace contexts, exemplars and runtime gauges: the process-local
   halves of the distributed-tracing tentpole.

   Pins: deterministic id minting and head sampling, the 25-byte wire
   block (round trip + totality), the span store bound, the canonical
   span wire form, tree reassembly (orphans, cycles, ordering), the
   exemplar path through Metrics/Obs (last-wins per bucket, wire + JSON
   round trips, thunks consulted after the timed work), the Prometheus
   exposition (golden-pinned) and the runtime gauges. *)

open Repro_obs

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool
let check_str = Alcotest.(check string)

(* ----- context minting ---------------------------------------------- *)

let test_root_deterministic () =
  let a = Trace_ctx.root ~seed:7 ~seq:3 in
  let b = Trace_ctx.root ~seed:7 ~seq:3 in
  check_bool "same (seed, seq) mints same ids" true (a = b);
  let c = Trace_ctx.root ~seed:7 ~seq:4 in
  check_bool "different seq, different trace id" true
    (a.Trace_ctx.hi <> c.Trace_ctx.hi || a.Trace_ctx.lo <> c.Trace_ctx.lo);
  let d = Trace_ctx.root ~seed:8 ~seq:3 in
  check_bool "different seed, different trace id" true
    (a.Trace_ctx.hi <> d.Trace_ctx.hi || a.Trace_ctx.lo <> d.Trace_ctx.lo);
  check_bool "span id never 0" true (a.Trace_ctx.span_id <> 0L);
  check_bool "fresh root unsampled" false
    (a.Trace_ctx.sampled || a.Trace_ctx.forced);
  check_int "id_string is 32 hex chars" 32
    (String.length (Trace_ctx.id_string a));
  String.iter
    (fun ch ->
      check_bool "id_string lowercase hex" true
        (match ch with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    (Trace_ctx.id_string a)

let test_head_sample () =
  let ctx i = Trace_ctx.root ~seed:42 ~seq:i in
  for i = 0 to 49 do
    check_bool "every=1 samples everything" true
      (Trace_ctx.head_sample ~every:1 (ctx i)).Trace_ctx.sampled
  done;
  let hits = ref 0 in
  for i = 0 to 499 do
    if (Trace_ctx.head_sample ~every:4 (ctx i)).Trace_ctx.sampled then
      incr hits
  done;
  (* a hash-based 1-in-4 head decision: not all, not none, and the
     exact count is deterministic given the seed *)
  check_bool "every=4 samples some" true (!hits > 0 && !hits < 500);
  let again = ref 0 in
  for i = 0 to 499 do
    if (Trace_ctx.head_sample ~every:4 (ctx i)).Trace_ctx.sampled then
      incr again
  done;
  check_int "head decision is a pure function" !hits !again;
  check_bool "every=0 raises" true
    (try
       ignore (Trace_ctx.head_sample ~every:0 (ctx 0));
       false
     with Invalid_argument _ -> true)

let test_child_and_force () =
  let root =
    Trace_ctx.head_sample ~every:1 (Trace_ctx.root ~seed:1 ~seq:0)
  in
  let c1 = Trace_ctx.child root ~seq:0 in
  let c2 = Trace_ctx.child root ~seq:1 in
  check_bool "child keeps trace id" true
    (c1.Trace_ctx.hi = root.Trace_ctx.hi
    && c1.Trace_ctx.lo = root.Trace_ctx.lo);
  check_bool "child keeps flags" true (c1.Trace_ctx.sampled = true);
  check_bool "child span ids fresh" true
    (c1.Trace_ctx.span_id <> root.Trace_ctx.span_id
    && c1.Trace_ctx.span_id <> c2.Trace_ctx.span_id);
  check_bool "child span id nonzero" true
    (c1.Trace_ctx.span_id <> 0L && c2.Trace_ctx.span_id <> 0L);
  let f = Trace_ctx.force (Trace_ctx.root ~seed:1 ~seq:9) in
  check_bool "force sets both flags" true
    (f.Trace_ctx.sampled && f.Trace_ctx.forced);
  check_bool "recorded = sampled || forced" true
    (Trace_ctx.recorded f
    && Trace_ctx.recorded root
    && not (Trace_ctx.recorded (Trace_ctx.root ~seed:1 ~seq:2)))

(* ----- 25-byte block ------------------------------------------------- *)

let test_encode_decode () =
  let cases =
    [
      Trace_ctx.root ~seed:0 ~seq:0;
      Trace_ctx.head_sample ~every:1 (Trace_ctx.root ~seed:3 ~seq:11);
      Trace_ctx.force (Trace_ctx.root ~seed:99 ~seq:7);
      Trace_ctx.child (Trace_ctx.root ~seed:5 ~seq:1) ~seq:4;
    ]
  in
  List.iter
    (fun c ->
      let s = Trace_ctx.encode c in
      check_int "encoded_len" Trace_ctx.encoded_len (String.length s);
      match Trace_ctx.decode s ~pos:0 with
      | Ok d -> check_bool "round trip" true (d = c)
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    cases;
  (* decode at an offset inside a larger buffer *)
  let c = Trace_ctx.force (Trace_ctx.root ~seed:2 ~seq:2) in
  let buf = "junk" ^ Trace_ctx.encode c ^ "tail" in
  (match Trace_ctx.decode buf ~pos:4 with
  | Ok d -> check_bool "offset round trip" true (d = c)
  | Error e -> Alcotest.fail ("offset decode failed: " ^ e));
  (* totality: every truncation is an Error, never an exception *)
  let s = Trace_ctx.encode c in
  for len = 0 to String.length s - 1 do
    match Trace_ctx.decode (String.sub s 0 len) ~pos:0 with
    | Ok _ -> Alcotest.fail "truncated block decoded"
    | Error _ -> ()
  done;
  (* unknown flag bits are reserved, ignored on decode *)
  let hostile = Bytes.of_string s in
  Bytes.set hostile 24 (Char.chr (Char.code (Bytes.get hostile 24) lor 0xfc));
  match Trace_ctx.decode (Bytes.to_string hostile) ~pos:0 with
  | Ok d -> check_bool "unknown flag bits ignored" true (d = c)
  | Error e -> Alcotest.fail ("hostile flags rejected: " ^ e)

(* ----- span store ---------------------------------------------------- *)

let mk_span ?(hi = 1L) ?(lo = 2L) ~id ~parent ~start name : Trace_ctx.span =
  {
    trace_hi = hi;
    trace_lo = lo;
    span_id = id;
    parent_id = parent;
    name;
    start_ns = start;
    elapsed_ns = 10L;
  }

let test_store_bound () =
  let st = Trace_ctx.store ~capacity:3 in
  for i = 1 to 5 do
    Trace_ctx.record st
      (mk_span ~id:(Int64.of_int i) ~parent:0L ~start:0L "s")
  done;
  check_int "bounded to capacity" 3 (List.length (Trace_ctx.spans st));
  check_int "seen counts drops" 5 (Trace_ctx.seen st);
  (match Trace_ctx.spans st with
  | { Trace_ctx.span_id = 3L; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest spans not dropped first");
  Trace_ctx.clear st;
  check_int "clear empties" 0 (List.length (Trace_ctx.spans st));
  check_bool "capacity 0 raises" true
    (try
       ignore (Trace_ctx.store ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ----- span wire form ------------------------------------------------ *)

let test_span_wire_round_trip () =
  let spans =
    [
      mk_span ~id:5L ~parent:0L ~start:100L "router.batch";
      mk_span ~id:6L ~parent:5L ~start:200L "rpc.shard0.w0";
      mk_span ~hi:(-1L) ~lo:Int64.min_int ~id:Int64.max_int ~parent:6L
        ~start:0L "shard0.dist";
    ]
  in
  let wire = Trace_ctx.spans_to_wire spans in
  (match Trace_ctx.spans_of_wire wire with
  | Ok back -> check_bool "wire round trip" true (back = spans)
  | Error e -> Alcotest.fail ("wire parse failed: " ^ e));
  check_str "canonical bytes" wire (Trace_ctx.spans_to_wire spans);
  check_bool "empty list round trips" true
    (Trace_ctx.spans_of_wire (Trace_ctx.spans_to_wire []) = Ok []);
  check_bool "whitespace in name raises" true
    (try
       ignore
         (Trace_ctx.spans_to_wire
            [ mk_span ~id:1L ~parent:0L ~start:0L "bad name" ]);
       false
     with Invalid_argument _ -> true)

let test_span_wire_hostile () =
  let bad =
    [
      "s 1 2 3";                               (* too few fields *)
      "z 1 2 3 0 0 0 n";                       (* unknown tag *)
      "s xx 2 3 0 0 0 n";                      (* bad hex *)
      "s 1 2 3 0 nope 0 n";                    (* bad decimal *)
      "s 1 2 3 0 0 0 a b";                     (* trailing field *)
    ]
  in
  List.iteri
    (fun i line ->
      match Trace_ctx.spans_of_wire (line ^ "\n") with
      | Ok _ -> Alcotest.fail (Printf.sprintf "hostile line %d parsed" i)
      | Error msg ->
          check_bool "error names line 1" true
            (String.length msg > 0
            && (let has_one = ref false in
                String.iter (fun c -> if c = '1' then has_one := true) msg;
                !has_one)))
    bad;
  (* totality over random garbage: never raises *)
  let rng = Random.State.make [| 20190721 |] in
  for _ = 1 to 200 do
    let s =
      String.init
        (Random.State.int rng 40)
        (fun _ -> Char.chr (Random.State.int rng 256))
    in
    match Trace_ctx.spans_of_wire s with Ok _ | Error _ -> ()
  done

(* ----- tree reassembly ----------------------------------------------- *)

let test_tree_assembly () =
  let spans =
    [
      (* trace (1,2): root + nested child + orphan *)
      mk_span ~id:10L ~parent:0L ~start:0L "router.dist";
      mk_span ~id:11L ~parent:10L ~start:5L "rpc.shard0.w0";
      mk_span ~id:12L ~parent:11L ~start:7L "shard0.dist";
      mk_span ~id:13L ~parent:99L ~start:9L "orphan";
      (* second trace *)
      mk_span ~hi:3L ~lo:4L ~id:20L ~parent:0L ~start:0L "router.ecc";
    ]
  in
  let trees = Trace_ctx.tree spans in
  check_int "one tree per trace" 2 (List.length trees);
  let ids = List.map fst trees in
  check_bool "sorted by trace id" true (ids = List.sort compare ids);
  let root =
    match
      List.find_opt
        (fun (_, n) -> n.Span.name = "router.dist")
        trees
    with
    | Some (id, n) ->
        check_int "trace id key is 32 hex" 32 (String.length id);
        n
    | None -> Alcotest.fail "router.dist tree missing"
  in
  check_int "root has rpc child + adopted orphan" 2
    (List.length root.Span.children);
  (match root.Span.children with
  | [ rpc; orphan ] ->
      check_str "children ordered by start" "rpc.shard0.w0" rpc.Span.name;
      check_str "orphan attached to root" "orphan" orphan.Span.name;
      (match rpc.Span.children with
      | [ w ] -> check_str "worker span nested under rpc" "shard0.dist"
                   w.Span.name
      | _ -> Alcotest.fail "rpc child missing")
  | _ -> Alcotest.fail "unexpected root children");
  check_bool "deterministic" true (Trace_ctx.tree spans = trees)

let test_tree_cycle_safe () =
  (* two spans claiming each other as parent: must terminate with both
     present (attached to the synthesised/earliest root) *)
  let spans =
    [
      mk_span ~id:1L ~parent:2L ~start:0L "a";
      mk_span ~id:2L ~parent:1L ~start:1L "b";
    ]
  in
  match Trace_ctx.tree spans with
  | [ (_, root) ] ->
      let rec count (n : Span.node) =
        1 + List.fold_left (fun acc c -> acc + count c) 0 n.Span.children
      in
      check_int "cycle: both spans in tree" 2 (count root)
  | l -> check_int "cycle: one trace" 1 (List.length l)

(* ----- exemplars through Metrics ------------------------------------- *)

let test_exemplar_retention () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "lat" in
  Metrics.observe h 120;
  Metrics.observe ~exemplar:"aaaa" h 130;
  Metrics.observe ~exemplar:"bbbb" h 140;  (* same bucket: last wins *)
  Metrics.observe ~exemplar:"cccc" h 2_000_000_000;  (* overflow bucket *)
  let snap = Metrics.snapshot r in
  let s = Option.get (Metrics.find_histogram snap "lat") in
  (match s.Metrics.exemplars with
  | [ (b1, "bbbb"); (b2, "cccc") ] ->
      check_bool "bucket order" true (b1 < b2)
  | other ->
      Alcotest.fail
        (Printf.sprintf "unexpected exemplars (%d)" (List.length other)));
  (* wire round trip keeps them *)
  (match Metrics.snapshot_of_wire (Metrics.snapshot_to_wire snap) with
  | Ok back -> check_bool "exemplars survive the wire" true (back = snap)
  | Error e -> Alcotest.fail ("wire parse failed: " ^ e));
  (* JSON carries them, and only histograms that have them *)
  let json = Metrics.to_json snap in
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "json has exemplars" true (contains "\"exemplars\"" json);
  check_bool "json has trace id" true (contains "\"bbbb\"" json);
  let r2 = Metrics.create () in
  Metrics.observe (Metrics.histogram r2 "lat") 120;
  check_bool "no exemplars, no key" false
    (contains "\"exemplars\"" (Metrics.to_json (Metrics.snapshot r2)))

let test_exemplar_thunk_after_work () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "lat" in
  let clock = Clock.read (Clock.manual ~auto_step:10L ()) in
  let decided = ref None in
  Metrics.observe_span ~clock ~exemplar:(fun () -> !decided) h (fun () ->
      (* the force decision lands mid-work; the thunk must see it *)
      decided := Some "feedcafe");
  let s = Option.get (Metrics.find_histogram (Metrics.snapshot r) "lat") in
  check_bool "thunk evaluated after work" true
    (List.exists (fun (_, e) -> e = "feedcafe") s.Metrics.exemplars)

let test_instrument_op_exemplar () =
  let r = Metrics.create () in
  let clock = Clock.read (Clock.manual ~auto_step:100L ()) in
  let req = Ops.Dist { u = 0; v = 1 } in
  let got =
    Obs.instrument_op ~clock ~exemplar:(fun () -> Some "0123abcd") r
      (fun _ -> 17)
      req
  in
  check_int "result passes through" 17 got;
  let snap = Metrics.snapshot r in
  match Metrics.find_histogram snap "ops.dist.latency_ns" with
  | Some s ->
      check_bool "instrument_op stores exemplar" true
        (List.exists (fun (_, e) -> e = "0123abcd") s.Metrics.exemplars)
  | None -> Alcotest.fail "ops.dist.latency_ns missing"

(* ----- Prometheus exposition (golden) -------------------------------- *)

let test_prometheus_golden () =
  let r = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter r "router.queries");
  Metrics.set_gauge (Metrics.gauge r "runtime.heap_words") 1234;
  let h = Metrics.histogram ~buckets:[| 100; 1000 |] r "lat-ns" in
  Metrics.observe h 50;
  Metrics.observe h 500;
  Metrics.observe h 5000;
  check_str "prom exposition"
    ("# TYPE lat_ns histogram\n"
   ^ "lat_ns_bucket{le=\"100\"} 1\n"
   ^ "lat_ns_bucket{le=\"1000\"} 2\n"
   ^ "lat_ns_bucket{le=\"+Inf\"} 3\n"
   ^ "lat_ns_sum 5550\n" ^ "lat_ns_count 3\n"
   ^ "# TYPE router_queries_total counter\n"
   ^ "router_queries_total 3\n"
   ^ "# TYPE runtime_heap_words gauge\n"
   ^ "runtime_heap_words 1234\n")
    (Metrics.to_prometheus r)

(* ----- runtime gauges ------------------------------------------------ *)

let test_runtime_gauges () =
  let r = Metrics.create () in
  Metrics.sample_runtime_gauges r;
  let snap = Metrics.snapshot r in
  List.iter
    (fun name ->
      match List.assoc_opt name snap.Metrics.gauges with
      | Some v -> check_bool (name ^ " sampled") true (v >= 0)
      | None -> Alcotest.fail (name ^ " missing"))
    [
      "runtime.gc.minor_collections"; "runtime.gc.major_collections";
      "runtime.heap_words"; "runtime.live_words";
    ];
  check_bool "heap holds live" true
    (List.assoc "runtime.heap_words" snap.Metrics.gauges
    >= List.assoc "runtime.live_words" snap.Metrics.gauges)

let suite =
  [
    Alcotest.test_case "root: deterministic ids" `Quick test_root_deterministic;
    Alcotest.test_case "head sampling" `Quick test_head_sample;
    Alcotest.test_case "child + force" `Quick test_child_and_force;
    Alcotest.test_case "encode/decode block" `Quick test_encode_decode;
    Alcotest.test_case "span store bound" `Quick test_store_bound;
    Alcotest.test_case "span wire round trip" `Quick test_span_wire_round_trip;
    Alcotest.test_case "span wire hostile lines" `Quick test_span_wire_hostile;
    Alcotest.test_case "tree assembly" `Quick test_tree_assembly;
    Alcotest.test_case "tree cycle safety" `Quick test_tree_cycle_safe;
    Alcotest.test_case "exemplar retention" `Quick test_exemplar_retention;
    Alcotest.test_case "exemplar thunk after work" `Quick
      test_exemplar_thunk_after_work;
    Alcotest.test_case "instrument_op exemplar" `Quick
      test_instrument_op_exemplar;
    Alcotest.test_case "golden: prometheus exposition" `Quick
      test_prometheus_golden;
    Alcotest.test_case "runtime gauges" `Quick test_runtime_gauges;
  ]
