let () =
  Alcotest.run "hubhard"
    [
      ("structures", Test_structures.suite);
      ("graph", Test_graph.suite);
      ("generators", Test_generators.suite);
      ("matching", Test_matching.suite);
      ("ruzsa-szemeredi", Test_rs.suite);
      ("hub-labeling", Test_hub.suite);
      ("bit-labeling", Test_labeling.suite);
      ("grid-lower-bound", Test_grid.suite);
      ("rs-hub-upper-bound", Test_rs_hub.suite);
      ("sum-index", Test_sumindex.suite);
      ("route-planning", Test_route.suite);
      ("extras", Test_extras.suite);
      ("hub-labeling-2", Test_hub2.suite);
      ("hhl-arcflags", Test_hhl_flags.suite);
      ("extras-2", Test_extras2.suite);
      ("coverage", Test_coverage.suite);
      ("tz-theorems", Test_tz.suite);
      ("io-adversarial", Test_io_adversarial.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
      ("flat-hub", Test_flat_hub.suite);
      ("differential", Test_differential.suite);
      ("observability", Test_obs.suite);
      ("parallel", Test_par.suite);
      ("mmap-hub", Test_mmap_hub.suite);
      ("compact-hub", Test_compact_hub.suite);
      ("ops", Test_ops.suite);
      ("trace-ctx", Test_trace_ctx.suite);
    ]
