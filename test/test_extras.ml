(* Tests for Hub_prune, Flat_label, Sparse_label and Oracle. *)

open Repro_graph
open Repro_hub
open Repro_labeling
open Repro_core

let prune_keeps_exact_and_shrinks =
  Test_util.qcheck "pruning keeps exactness and never grows" ~count:20
    (Gen.connected_gen ~max_n:30 ~max_deg:2 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let rng = Random.State.make [| seed |] in
      let labels, _ = Random_hitting.build ~rng ~d:3 g in
      let pruned = Hub_prune.prune g labels in
      Cover.verify g pruned
      && Hub_label.total_size pruned <= Hub_label.total_size labels)

let prune_weighted =
  Test_util.qcheck "weighted pruning keeps exactness" ~count:10
    (Gen.weighted_gen ~max_n:20 ~max_deg:2 ())
    (fun params ->
      let w = Gen.build_weighted ~min_w:1 ~max_w:6 params in
      let labels = Pll.build_w w in
      Cover.verify_w w (Hub_prune.prune_w w labels))

let test_prune_rejects_inexact () =
  let g = Generators.path 3 in
  let bad = Hub_label.make ~n:3 [| [ (0, 0) ]; []; [] |] in
  Alcotest.check_raises "rejects non-cover"
    (Invalid_argument "Hub_prune.prune: labeling is not exact") (fun () ->
      ignore (Hub_prune.prune g bad))

let flat_label_exact =
  Test_util.qcheck "flat labels answer exactly" ~count:30
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let labels = Flat_label.build g in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dist = Traversal.bfs g u in
        for v = 0 to n - 1 do
          if Flat_label.query labels.(u) labels.(v) <> dist.(v) then ok := false
        done
      done;
      !ok)

let test_flat_label_weighted () =
  let w = Wgraph.of_edges ~n:3 [ (0, 1, 5); (1, 2, 7) ] in
  let labels = Flat_label.build_w w in
  Test_util.check_int "weighted query" 12 (Flat_label.query labels.(0) labels.(2));
  Test_util.check_bool "bits positive" true (Flat_label.avg_bits labels > 0.0)

let sparse_label_exact =
  Test_util.qcheck "sparse binary labels are exact" ~count:15
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let scheme = Sparse_label.build ~rng:(Test_util.rng ()) ~d:3 g in
      Sparse_label.verify g scheme)

let test_sparse_label_smaller_than_flat () =
  (* on a long path, hub-based labels beat full rows *)
  let g = Generators.path 200 in
  let rng = Test_util.rng () in
  let sparse = Sparse_label.build ~rng ~d:8 g in
  let flat = Flat_label.build g in
  Test_util.check_bool "sparse < flat bits" true
    (Sparse_label.avg_bits sparse < Flat_label.avg_bits flat)

let oracles_agree =
  Test_util.qcheck "the three oracles agree on all pairs" ~count:20
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let oracles =
        [ Oracle.full g; Oracle.hub g (Pll.build g); Oracle.on_demand g ]
      in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let answers = List.map (fun o -> Oracle.query o u v) oracles in
          match answers with
          | a :: rest -> if List.exists (fun b -> b <> a) rest then ok := false
          | [] -> ()
        done
      done;
      !ok)

let test_oracle_space_ordering () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:100 ~m:200 in
  let full = Oracle.full g in
  let hub = Oracle.hub g (Pll.build g) in
  let demand = Oracle.on_demand g in
  Test_util.check_bool "full largest" true
    (Oracle.space_words full > Oracle.space_words hub);
  Test_util.check_bool "on-demand smallest" true
    (Oracle.space_words hub > Oracle.space_words demand);
  Test_util.check_bool "names distinct" true
    (Oracle.name full <> Oracle.name hub && Oracle.name hub <> Oracle.name demand)

let suite =
  [
    prune_keeps_exact_and_shrinks;
    prune_weighted;
    Alcotest.test_case "prune rejects inexact" `Quick test_prune_rejects_inexact;
    flat_label_exact;
    Alcotest.test_case "flat labels weighted" `Quick test_flat_label_weighted;
    sparse_label_exact;
    Alcotest.test_case "sparse beats flat on a path" `Quick
      test_sparse_label_smaller_than_flat;
    oracles_agree;
    Alcotest.test_case "oracle space ordering" `Quick test_oracle_space_ordering;
  ]
