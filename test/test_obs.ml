(* Observability subsystem: deterministic histograms, manual clocks,
   trace records, the uniform Backend.S surface, and the differential
   check that the instrumented counters agree with the resilient
   oracle's own stats under fault injection. *)

open Repro_graph
open Repro_hub
open Repro_core
open Repro_serve
open Repro_obs

(* ----- Metrics: counters and gauges --------------------------------- *)

let test_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Test_util.check_int "counter" 5 (Metrics.counter_value c);
  Test_util.check_int "same name, same counter" 5
    (Metrics.counter_value (Metrics.counter r "c"));
  let g = Metrics.gauge r "g" in
  Metrics.set_gauge g 42;
  Metrics.set_gauge g 7;
  Test_util.check_int "gauge keeps last" 7 (Metrics.gauge_value g);
  Alcotest.check_raises "negative incr"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c);
  (* re-registering a name as another kind is a bug, not a metric *)
  Test_util.check_bool "kind mismatch raises" true
    (try
       ignore (Metrics.gauge r "c");
       false
     with Invalid_argument _ -> true)

(* ----- Metrics: histogram edge cases -------------------------------- *)

let test_histogram_empty () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  Test_util.check_int "empty count" 0 (Metrics.hist_count h);
  Test_util.check_int "empty p50" 0 (Metrics.percentile h 0.5);
  Test_util.check_int "empty p99" 0 (Metrics.percentile h 0.99);
  Test_util.check_int "empty max" 0 (Metrics.hist_max h)

let test_histogram_single_sample () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  Metrics.observe h 137;
  (* 137 lands in the (100, 250] bucket, but a single sample must
     report itself exactly: the bound is capped at max_seen *)
  Test_util.check_int "p50 = sample" 137 (Metrics.percentile h 0.5);
  Test_util.check_int "p99 = sample" 137 (Metrics.percentile h 0.99);
  Test_util.check_int "max = sample" 137 (Metrics.hist_max h);
  Test_util.check_int "sum = sample" 137 (Metrics.hist_sum h)

let test_histogram_zero_and_negative () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  Metrics.observe h 0;
  Metrics.observe h (-25);
  (* clamped to 0 *)
  Test_util.check_int "count" 2 (Metrics.hist_count h);
  Test_util.check_int "p99 of zeros" 0 (Metrics.percentile h 0.99);
  Test_util.check_int "sum of zeros" 0 (Metrics.hist_sum h)

let test_histogram_boundary () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 10; 20; 30 |] r "h" in
  (* a value equal to a bucket's upper bound belongs to that bucket *)
  Metrics.observe h 10;
  Test_util.check_int "on-boundary p50" 10 (Metrics.percentile h 0.5);
  Metrics.observe h 11;
  (* rank ceil(0.99 * 2) = 2 -> second bucket (10, 20], capped at 11 *)
  Test_util.check_int "p99 capped at max" 11 (Metrics.percentile h 0.99)

let test_histogram_overflow () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 10; 20 |] r "h" in
  Metrics.observe h 1_000_000;
  (* overflow bucket has no upper bound: percentiles report the true max *)
  Test_util.check_int "overflow p50" 1_000_000 (Metrics.percentile h 0.5);
  Metrics.observe h 5;
  (* p50 rank now falls in the first bucket; its upper bound is 10 *)
  Test_util.check_int "p50 back in range" 10 (Metrics.percentile h 0.5);
  Test_util.check_int "p99 still overflow max" 1_000_000
    (Metrics.percentile h 0.99)

let test_histogram_percentile_ranks () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1; 2; 3; 4; 5 |] r "h" in
  for v = 1 to 5 do
    Metrics.observe h v
  done;
  (* 5 samples, one per bucket: rank ceil(q*5) picks bucket q*5 *)
  Test_util.check_int "p20" 1 (Metrics.percentile h 0.2);
  Test_util.check_int "p50" 3 (Metrics.percentile h 0.5);
  Test_util.check_int "p90" 5 (Metrics.percentile h 0.9);
  Alcotest.check_raises "q = 0 rejected"
    (Invalid_argument "Metrics.percentile: q must lie in (0, 1]") (fun () ->
      ignore (Metrics.percentile h 0.0));
  Test_util.check_bool "bad buckets raise" true
    (try
       ignore (Metrics.histogram ~buckets:[| 5; 5 |] r "h2");
       false
     with Invalid_argument _ -> true)

(* ----- Manual clock -------------------------------------------------- *)

let test_manual_clock () =
  let m = Clock.manual ~start:100L () in
  let c = Clock.read m in
  Test_util.check_bool "reads start" true (c () = 100L);
  Clock.advance m 50L;
  Test_util.check_bool "advanced" true (c () = 150L);
  let auto = Clock.manual ~auto_step:7L () in
  let ca = Clock.read auto in
  Test_util.check_bool "auto first" true (ca () = 0L);
  Test_util.check_bool "auto second" true (ca () = 7L);
  Test_util.check_bool "now does not step" true (Clock.now auto = 14L)

(* ----- Instrumented snapshots are deterministic ---------------------- *)

let run_instrumented () =
  let g = Generators.grid ~rows:5 ~cols:5 in
  let labels = Pll.build g in
  let registry = Metrics.create () in
  let clock = Clock.read (Clock.manual ~auto_step:50L ()) in
  let b = Obs.instrument ~clock registry (Hub_label.backend labels) in
  let rng = Test_util.rng () in
  for _ = 1 to 40 do
    ignore
      (Backend.query b (Random.State.int rng 25) (Random.State.int rng 25))
  done;
  Metrics.snapshot registry

let test_snapshot_deterministic () =
  let s1 = run_instrumented () in
  let s2 = run_instrumented () in
  Test_util.check_bool "snapshots bit-identical" true (s1 = s2);
  (* under auto_step 50 every query takes exactly 50 simulated ns *)
  match Metrics.find_histogram s1 "hub-labeling.latency_ns" with
  | None -> Alcotest.fail "latency histogram missing"
  | Some h ->
      Test_util.check_int "count" 40 h.Metrics.count;
      Test_util.check_int "sum = 50 per query" 2000 h.Metrics.sum;
      Test_util.check_int "p50 = 50" 50 h.Metrics.p50;
      Test_util.check_int "p99 = 50" 50 h.Metrics.p99;
      Test_util.check_int "max = 50" 50 h.Metrics.max

let test_instrument_counts_errors () =
  let registry = Metrics.create () in
  let boom =
    Backend.make ~name:"boom" ~space_words:0 (fun _ _ -> failwith "boom")
  in
  let b = Obs.instrument registry boom in
  Test_util.check_bool "exception re-raised" true
    (try
       ignore (Backend.query b 0 0);
       false
     with Failure _ -> true);
  let s = Metrics.snapshot registry in
  Test_util.check_bool "error counted" true
    (Metrics.find_counter s "boom.errors" = Some 1);
  Test_util.check_bool "query counted" true
    (Metrics.find_counter s "boom.queries" = Some 1)

(* ----- Differential: registry counters == Resilient_oracle.stats ----- *)

let test_differential_stats_vs_metrics () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:80 ~m:160 in
  let labels = Pll.build g in
  let inj = Fault_injector.create ~seed:13 ~fraction:0.3 Fault_injector.Corrupt in
  let registry = Metrics.create () in
  let primary =
    Backend.make ~name:"faulty-hub" ~space_words:0
      (Fault_injector.wrap inj (Hub_label.query labels))
  in
  let oracle =
    Resilient_oracle.create ~spot_check_every:1 ~quarantine_after:5
      ~metrics:registry ~primary g
  in
  for _ = 1 to 150 do
    ignore (Resilient_oracle.query oracle (Random.State.int rng 80)
              (Random.State.int rng 80))
  done;
  (try ignore (Resilient_oracle.query oracle (-1) 0) with Invalid_argument _ -> ());
  let s = Resilient_oracle.stats oracle in
  let snap = Metrics.snapshot registry in
  let check name field =
    Test_util.check_int ("resilient." ^ name)
      field
      (Option.value ~default:(-1)
         (Metrics.find_counter snap ("resilient." ^ name)))
  in
  Test_util.check_bool "faults actually injected" true
    (Fault_injector.injected inj > 0);
  check "queries" s.Resilient_oracle.queries;
  check "primary_answers" s.Resilient_oracle.primary_answers;
  check "fallback_answers" s.Resilient_oracle.fallback_answers;
  check "spot_checks" s.Resilient_oracle.spot_checks;
  check "disagreements" s.Resilient_oracle.disagreements;
  check "faults" s.Resilient_oracle.faults;
  check "budget_exhausted" s.Resilient_oracle.budget_exhausted;
  check "validation_failures" s.Resilient_oracle.validation_failures;
  check "quarantines" s.Resilient_oracle.quarantines

(* ----- Backend uniformity: every exact backend agrees with BFS ------- *)

let test_backend_uniformity () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:40 ~m:70 in
  let labels = Pll.build g in
  let flat = Flat_hub.of_labels ~cache_slots:64 labels in
  let backends =
    [
      Hub_label.backend labels;
      Flat_hub.backend flat;
      Resilient_oracle.backend (Resilient_oracle.create ~labels g);
      Oracle.backend (Oracle.flat g flat);
      Oracle.backend (Oracle.of_backend (Hub_label.backend labels));
    ]
  in
  List.iter
    (fun b ->
      Test_util.check_bool (Backend.name b ^ " has a name") true
        (String.length (Backend.name b) > 0);
      let truth = Traversal.bfs g 3 in
      for v = 0 to 39 do
        let d, tr = Backend.query_detailed b 3 v in
        if d <> truth.(v) then
          Alcotest.failf "%s: (3, %d) = %d, bfs %d" (Backend.name b) v d
            truth.(v);
        if tr.Trace.u <> 3 || tr.Trace.v <> v || tr.Trace.dist <> d then
          Alcotest.failf "%s: trace disagrees with answer" (Backend.name b)
      done)
    backends

(* ----- Trace records and the ring recorder --------------------------- *)

let test_trace_recorder () =
  let r = Trace.recorder ~capacity:3 in
  for i = 1 to 5 do
    Trace.record r (Trace.make ~source:"s" ~u:i ~v:i ~dist:i ())
  done;
  Test_util.check_int "seen all" 5 (Trace.seen r);
  let kept = List.map (fun t -> t.Trace.dist) (Trace.records r) in
  Test_util.check_bool "last 3, oldest first" true (kept = [ 3; 4; 5 ]);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Trace.recorder: capacity must be positive") (fun () ->
      ignore (Trace.recorder ~capacity:0))

let test_flat_cache_traces () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let flat = Flat_hub.of_labels ~cache_slots:32 (Pll.build g) in
  let b = Flat_hub.backend flat in
  let _, t1 = Backend.query_detailed b 0 15 in
  let _, t2 = Backend.query_detailed b 0 15 in
  Test_util.check_bool "first query misses" true (t1.Trace.cache = Trace.Miss);
  Test_util.check_bool "repeat hits" true (t2.Trace.cache = Trace.Hit);
  Test_util.check_int "hit scans nothing" 0 t2.Trace.entries_scanned;
  Test_util.check_bool "miss scans entries" true (t1.Trace.entries_scanned > 0)

(* ----- JSON export ---------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_export () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "a.queries");
  Metrics.observe (Metrics.histogram r "a.latency_ns") 137;
  let j = Metrics.to_json (Metrics.snapshot r) in
  List.iter
    (fun key ->
      Test_util.check_bool ("json has " ^ key) true (contains j ("\"" ^ key ^ "\"")))
    [ "counters"; "gauges"; "histograms"; "a.queries"; "p50_ns"; "p99_ns" ];
  let tr = Trace.make ~source:"bfs" ~u:1 ~v:2 ~dist:Dist.inf () in
  Test_util.check_bool "inf encoded as -1" true
    (contains (Trace.to_json tr) "\"dist\": -1")

(* ----- Oracle surface over the new backends --------------------------- *)

let test_oracle_flat_and_ext () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let labels = Pll.build g in
  let o = Oracle.flat g (Flat_hub.of_labels labels) in
  Test_util.check_bool "flat oracle named" true
    (Oracle.name o = "flat-hub-labeling");
  Test_util.check_bool "flat space positive" true (Oracle.space_words o > 0);
  let truth = Traversal.bfs g 0 in
  for v = 0 to 15 do
    Test_util.check_int "flat oracle exact" truth.(v) (Oracle.query o 0 v)
  done;
  let ext = Oracle.of_backend (Hub_label.backend labels) in
  Test_util.check_bool "ext keeps backend name" true
    (Oracle.name ext = "hub-labeling");
  Test_util.check_int "ext exact" truth.(15) (Oracle.query ext 0 15)

(* ----- Span: hierarchical timed phases -------------------------------- *)

let test_span_tree_deterministic () =
  let build () =
    let clock = Clock.read (Clock.manual ~auto_step:10L ()) in
    Span.profile ~clock ~name:"root" (fun () ->
        Span.run ~name:"child" (fun () ->
            Span.count "k" 2;
            Span.count "k" 3);
        Span.run ~name:"second" (fun () -> ()))
  in
  let (), t1 = build () in
  let (), t2 = build () in
  Test_util.check_bool "trees bit-identical" true (t1 = t2);
  (match t1.Span.children with
  | [ c1; c2 ] ->
      Alcotest.(check string) "first child" "child" c1.Span.name;
      Alcotest.(check string) "second child" "second" c2.Span.name;
      Test_util.check_bool "counter adds up" true
        (c1.Span.counters = [ ("k", 5) ]);
      Test_util.check_bool "child start offset" true (c1.Span.start_ns = 10L);
      Test_util.check_bool "child elapsed one step" true
        (c1.Span.elapsed_ns = 10L)
  | _ -> Alcotest.fail "expected exactly two children");
  (* reads: root start, 2x(child start/end), root end = 5 steps of 10 *)
  Test_util.check_bool "root elapsed covers children" true
    (Span.total_ns t1 = 50L)

let test_span_noop_outside_profile () =
  Test_util.check_bool "disabled outside profile" true (not (Span.enabled ()));
  let r =
    Span.run ~name:"free" (fun () ->
        Span.count "x" 1;
        41 + 1)
  in
  Test_util.check_int "run passes the value through" 42 r

let test_span_exception_safety () =
  let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
  let result =
    try
      let _ =
        Span.profile ~clock ~name:"root" (fun () ->
            Span.run ~name:"boom" (fun () -> failwith "boom"))
      in
      "no-raise"
    with Failure m -> m
  in
  Alcotest.(check string) "exception re-raised" "boom" result;
  Test_util.check_bool "context restored after raise" true
    (not (Span.enabled ()))

let test_span_records_raising_child () =
  let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
  let (), tree =
    Span.profile ~clock ~name:"root" (fun () ->
        try Span.run ~name:"fails" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  Test_util.check_bool "raising child still recorded" true
    (Span.find tree "fails" <> None)

let test_span_find_and_flame () =
  let clock = Clock.read (Clock.manual ~auto_step:10L ()) in
  let (), tree =
    Span.profile ~clock ~name:"a" (fun () ->
        Span.run ~name:"b" (fun () ->
            Span.run ~name:"c" (fun () -> Span.count "n" 7)))
  in
  Test_util.check_bool "find reaches depth 2" true
    (match Span.find tree "c" with
    | Some c -> c.Span.counters = [ ("n", 7) ]
    | None -> false);
  Test_util.check_bool "find misses absent name" true
    (Span.find tree "zzz" = None);
  let flame = Format.asprintf "%a" Span.pp_flame tree in
  List.iter
    (fun s ->
      Test_util.check_bool ("flame mentions " ^ String.trim s) true
        (contains flame s))
    [ "a"; "  b"; "    c"; "n=7"; "100.0%" ]

(* The instrumented pipelines expose exactly the documented phase names
   (docs/OBSERVABILITY.md); the @ci span smoke pins the same set from
   the outside. *)
let test_span_pipeline_phases () =
  let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
  let g = Generators.grid ~rows:4 ~cols:4 in
  let _, pll_tree = Span.profile ~clock ~name:"p" (fun () -> Pll.build g) in
  (match Span.find pll_tree "pll.build" with
  | None -> Alcotest.fail "pll.build span missing"
  | Some n ->
      Alcotest.(check (list string))
        "pll phases" [ "order"; "pruned-sweep" ]
        (List.map (fun c -> c.Span.name) n.Span.children));
  let rng = Test_util.rng () in
  let path = Generators.path 24 in
  let _, rs_tree =
    Span.profile ~clock ~name:"p" (fun () ->
        ignore (Rs_hub.build ~rng ~d:2 path))
  in
  match Span.find rs_tree "rs-hub.build" with
  | None -> Alcotest.fail "rs-hub.build span missing"
  | Some n ->
      Alcotest.(check (list string))
        "theorem 4.1 stages"
        [
          "distance-rows";
          "hitting-set";
          "d3-colouring";
          "conflict-sets";
          "koenig-covers";
          "hubsets";
        ]
        (List.map (fun c -> c.Span.name) n.Span.children)

(* ----- Events: structured log ----------------------------------------- *)

let test_events_ring_wraparound () =
  let clock = Clock.read (Clock.manual ~auto_step:5L ()) in
  let log = Events.create ~clock (Events.ring ~capacity:3) in
  for i = 1 to 5 do
    Events.emit log "e" [ ("i", Events.Int i) ]
  done;
  Test_util.check_int "emitted counts evicted too" 5 (Events.emitted log);
  let kept = List.map (fun e -> e.Events.fields) (Events.recent log) in
  Test_util.check_bool "last 3 oldest first" true
    (kept
    = [
        [ ("i", Events.Int 3) ]; [ ("i", Events.Int 4) ]; [ ("i", Events.Int 5) ];
      ]);
  let ts = List.map (fun e -> e.Events.ts_ns) (Events.recent log) in
  Test_util.check_bool "timestamps follow the clock" true
    (ts = [ 10L; 15L; 20L ]);
  Test_util.check_bool "capacity 0 rejected" true
    (try
       ignore (Events.ring ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_events_level_filter () =
  let clock = Clock.read (Clock.manual ~auto_step:5L ()) in
  let log =
    Events.create ~clock ~min_level:Events.Warn (Events.ring ~capacity:4)
  in
  Events.emit log ~level:Events.Debug "dropped" [];
  Events.emit log "dropped too" [];
  Events.emit log ~level:Events.Error "kept" [];
  Test_util.check_int "only the error passed the filter" 1 (Events.emitted log);
  match Events.recent log with
  | [ e ] ->
      Alcotest.(check string) "kept name" "kept" e.Events.name;
      (* dropped events never read the clock, so the survivor is at t=0 *)
      Test_util.check_bool "dropped events consume no clock" true
        (e.Events.ts_ns = 0L)
  | _ -> Alcotest.fail "expected exactly one retained event"

let test_events_ambient () =
  Events.emit_ambient "ignored" [];
  let log =
    Events.create
      ~clock:(Clock.read (Clock.manual ()))
      (Events.ring ~capacity:4)
  in
  Events.install log;
  Events.emit_ambient ~level:Events.Warn "seen" [ ("ok", Events.Bool true) ];
  Events.uninstall ();
  Events.emit_ambient "after uninstall" [];
  Test_util.check_int "exactly the installed-window emit" 1
    (Events.emitted log);
  Test_util.check_bool "uninstall clears" true (Events.installed () = None)

let test_events_from_hub_io () =
  let log = Events.create (Events.ring ~capacity:4) in
  Events.install log;
  (match Hub_io.of_string_res "2 0\n0 0\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  Events.uninstall ();
  let names = List.map (fun e -> e.Events.name) (Events.recent log) in
  Test_util.check_bool "hub_io parse failure flows to the ambient log" true
    (List.mem "hub_io.parse_failure" names)

(* ----- Trace recorder at/past capacity, reset ------------------------- *)

let test_trace_recorder_capacity_reset () =
  let r = Trace.recorder ~capacity:3 in
  for i = 1 to 3 do
    Trace.record r (Trace.make ~source:"s" ~u:i ~v:i ~dist:i ())
  done;
  Test_util.check_int "seen = capacity" 3 (Trace.seen r);
  Test_util.check_bool "exactly at capacity, in order" true
    (List.map (fun t -> t.Trace.dist) (Trace.records r) = [ 1; 2; 3 ]);
  Trace.record r (Trace.make ~source:"s" ~u:4 ~v:4 ~dist:4 ());
  Test_util.check_bool "one past capacity evicts the oldest" true
    (List.map (fun t -> t.Trace.dist) (Trace.records r) = [ 2; 3; 4 ]);
  Trace.reset r;
  Test_util.check_int "reset zeroes seen" 0 (Trace.seen r);
  Test_util.check_bool "reset drops records" true (Trace.records r = []);
  Trace.record r (Trace.make ~source:"s" ~u:9 ~v:9 ~dist:9 ());
  Test_util.check_bool "recorder usable after reset" true
    (List.map (fun t -> t.Trace.dist) (Trace.records r) = [ 9 ])

(* ----- Golden JSON: the export schema is pinned byte for byte --------- *)

let test_golden_metrics_json () =
  let r = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter r "q.queries");
  Metrics.set_gauge (Metrics.gauge r "g.depth") 2;
  let h = Metrics.histogram ~buckets:[| 100; 200; 400 |] r "q.latency_ns" in
  Metrics.observe h 100;
  Metrics.observe h 200;
  let expected =
    "{\n"
    ^ "  \"counters\": {\"q.queries\": 3},\n"
    ^ "  \"gauges\": {\"g.depth\": 2},\n"
    ^ "  \"histograms\": {\"q.latency_ns\": {\"count\": 2, \"sum_ns\": 300, \
       \"p50_ns\": 100, \"p90_ns\": 200, \"p99_ns\": 200, \"max_ns\": 200}}\n"
    ^ "}\n"
  in
  Alcotest.(check string)
    "metrics json" expected
    (Metrics.to_json (Metrics.snapshot r))

let test_golden_trace_json () =
  let tr =
    Trace.make ~entries_scanned:7 ~cache:Trace.Hit ~fallback_hops:1
      ~source:"flat" ~u:1 ~v:2 ~dist:5 ()
  in
  Alcotest.(check string)
    "trace json"
    "{\"u\": 1, \"v\": 2, \"dist\": 5, \"source\": \"flat\", \
     \"entries_scanned\": 7, \"cache\": \"hit\", \"fallback_hops\": 1}"
    (Trace.to_json tr)

let test_golden_span_json () =
  let clock = Clock.read (Clock.manual ~auto_step:10L ()) in
  let (), tree =
    Span.profile ~clock ~name:"root" (fun () ->
        Span.run ~name:"child" (fun () -> Span.count "k" 2))
  in
  Alcotest.(check string)
    "span json"
    "{\"name\": \"root\", \"start_ns\": 0, \"elapsed_ns\": 30, \"counters\": \
     {}, \"children\": [{\"name\": \"child\", \"start_ns\": 10, \
     \"elapsed_ns\": 10, \"counters\": {\"k\": 2}, \"children\": []}]}"
    (Span.to_json tree)

let test_golden_events_json () =
  let clock = Clock.read (Clock.manual ~auto_step:5L ()) in
  let log = Events.create ~clock (Events.ring ~capacity:2) in
  Events.emit log ~level:Events.Warn "ev"
    [
      ("a", Events.Int 1);
      ("b", Events.Str "x\"y");
      ("c", Events.Bool true);
      ("d", Events.Float 1.5);
    ];
  match Events.recent log with
  | [ e ] ->
      Alcotest.(check string)
        "event json"
        "{\"ts_ns\": 0, \"level\": \"warn\", \"event\": \"ev\", \"fields\": \
         {\"a\": 1, \"b\": \"x\\\"y\", \"c\": true, \"d\": 1.5}}"
        (Events.to_json e)
  | _ -> Alcotest.fail "expected one event"

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: single sample" `Quick
      test_histogram_single_sample;
    Alcotest.test_case "histogram: zero/negative" `Quick
      test_histogram_zero_and_negative;
    Alcotest.test_case "histogram: bucket boundary" `Quick
      test_histogram_boundary;
    Alcotest.test_case "histogram: overflow bucket" `Quick
      test_histogram_overflow;
    Alcotest.test_case "histogram: percentile ranks" `Quick
      test_histogram_percentile_ranks;
    Alcotest.test_case "manual clock" `Quick test_manual_clock;
    Alcotest.test_case "snapshot deterministic under fake clock" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "instrument counts errors" `Quick
      test_instrument_counts_errors;
    Alcotest.test_case "differential: metrics == stats" `Quick
      test_differential_stats_vs_metrics;
    Alcotest.test_case "backend uniformity vs BFS" `Quick
      test_backend_uniformity;
    Alcotest.test_case "trace ring recorder" `Quick test_trace_recorder;
    Alcotest.test_case "flat cache hit/miss traces" `Quick
      test_flat_cache_traces;
    Alcotest.test_case "json export" `Quick test_json_export;
    Alcotest.test_case "oracle over flat/ext backends" `Quick
      test_oracle_flat_and_ext;
    Alcotest.test_case "span: deterministic tree" `Quick
      test_span_tree_deterministic;
    Alcotest.test_case "span: no-op outside profile" `Quick
      test_span_noop_outside_profile;
    Alcotest.test_case "span: exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "span: raising child recorded" `Quick
      test_span_records_raising_child;
    Alcotest.test_case "span: find + flame report" `Quick
      test_span_find_and_flame;
    Alcotest.test_case "span: pipeline phase names" `Quick
      test_span_pipeline_phases;
    Alcotest.test_case "events: ring wraparound" `Quick
      test_events_ring_wraparound;
    Alcotest.test_case "events: level filter" `Quick test_events_level_filter;
    Alcotest.test_case "events: ambient install" `Quick test_events_ambient;
    Alcotest.test_case "events: hub_io parse failure" `Quick
      test_events_from_hub_io;
    Alcotest.test_case "trace recorder: capacity + reset" `Quick
      test_trace_recorder_capacity_reset;
    Alcotest.test_case "golden: metrics json" `Quick test_golden_metrics_json;
    Alcotest.test_case "golden: trace json" `Quick test_golden_trace_json;
    Alcotest.test_case "golden: span json" `Quick test_golden_span_json;
    Alcotest.test_case "golden: events json" `Quick test_golden_events_json;
  ]
