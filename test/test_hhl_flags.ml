(* Tests for canonical hierarchical hub labelings (cross-validating
   PLL) and arc flags. *)

open Repro_graph
open Repro_hub
open Repro_route

let canonical_equals_pll =
  Test_util.qcheck "PLL = canonical hierarchical labeling (same order)"
    ~count:40
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 0 1000))
    (fun (params, oseed) ->
      let g = Gen.build_connected params in
      let order = Order.random (Random.State.make [| oseed |]) (Graph.n g) in
      let pll = Pll.build ~order g in
      let canon = Canonical_hhl.build ~order g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Hub_label.hubs pll v <> Hub_label.hubs canon v then ok := false
      done;
      !ok)

let canonical_is_exact =
  Test_util.qcheck "canonical labeling is exact" ~count:20
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let order = Order.identity (Graph.n g) in
      Cover.verify g (Canonical_hhl.build ~order g))

let canonical_respects_hierarchy =
  Test_util.qcheck "canonical labeling respects its hierarchy" ~count:20
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let order = Order.by_degree g in
      let canon = Canonical_hhl.build ~order g in
      Canonical_hhl.respects_hierarchy ~rank:(Order.rank_of order) g canon)

let test_hierarchy_violation_detected () =
  (* storing a dominated hub must be flagged *)
  let g = Generators.path 3 in
  let order = [| 1; 0; 2 |] in
  (* hub 2 of vertex 0 is dominated by vertex 1 (rank 0) on the path *)
  let labels = Hub_label.make ~n:3 [| [ (2, 2) ]; []; [] |] in
  Test_util.check_bool "violation detected" false
    (Canonical_hhl.respects_hierarchy ~rank:(Order.rank_of order) g labels)

let arc_flags_exact =
  Test_util.qcheck "arc-flag queries = dijkstra" ~count:30
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 0 1000))
    (fun (params, wseed) ->
      let g = Gen.build_connected params in
      let rng = Random.State.make [| wseed |] in
      let w =
        Wgraph.of_edges ~n:(Graph.n g)
          (List.map
             (fun (u, v) -> (u, v, 1 + Random.State.int rng 9))
             (Graph.edges g))
      in
      let af = Arc_flags.preprocess w in
      let d = Dijkstra.distances w 0 in
      let ok = ref true in
      for t = 0 to Graph.n g - 1 do
        if Arc_flags.query af 0 t <> d.(t) then ok := false
      done;
      !ok)

let arc_flags_exact_many_regions =
  Test_util.qcheck "arc flags exact with many regions" ~count:15
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let w = Wgraph.of_unweighted g in
      let af = Arc_flags.preprocess ~regions:(max 2 (Graph.n g / 3)) w in
      let d = Dijkstra.distances w 0 in
      let ok = ref true in
      for t = 0 to Graph.n g - 1 do
        if Arc_flags.query af 0 t <> d.(t) then ok := false
      done;
      !ok)

let test_arc_flags_partition () =
  let rng = Test_util.rng () in
  let g = Wgraph.of_unweighted (Generators.grid ~rows:8 ~cols:8) in
  let af = Arc_flags.preprocess ~regions:4 g in
  Test_util.check_int "region count" 4 (Arc_flags.region_count af);
  for v = 0 to 63 do
    let r = Arc_flags.region_of af v in
    Test_util.check_bool "region in range" true (r >= 0 && r < 4)
  done;
  ignore rng

let test_arc_flags_prune_on_grid () =
  (* pruning should settle notably less than the whole graph for
     corner-to-corner queries on a partitioned grid *)
  let g = Wgraph.of_unweighted (Generators.grid ~rows:12 ~cols:12) in
  let af = Arc_flags.preprocess ~regions:9 g in
  (* mid-board target: the flagged search plus early termination must
     not settle the whole board *)
  let ratio = Arc_flags.settled_ratio af 0 77 in
  Test_util.check_bool "exact" true
    (Arc_flags.query af 0 77 = Dijkstra.distance g 0 77);
  Test_util.check_bool "prunes something" true (ratio < 1.0)

let test_arc_flags_disconnected () =
  let w = Wgraph.of_edges ~n:4 [ (0, 1, 2) ] in
  let af = Arc_flags.preprocess ~regions:2 w in
  Test_util.check_bool "inf across" false
    (Dist.is_finite (Arc_flags.query af 0 3));
  Test_util.check_int "within" 2 (Arc_flags.query af 0 1)

let suite =
  [
    canonical_equals_pll;
    canonical_is_exact;
    canonical_respects_hierarchy;
    Alcotest.test_case "hierarchy violation detected" `Quick
      test_hierarchy_violation_detected;
    arc_flags_exact;
    arc_flags_exact_many_regions;
    Alcotest.test_case "arc flags partition" `Quick test_arc_flags_partition;
    Alcotest.test_case "arc flags prune on grid" `Quick
      test_arc_flags_prune_on_grid;
    Alcotest.test_case "arc flags disconnected" `Quick
      test_arc_flags_disconnected;
  ]
