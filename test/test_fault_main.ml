(* Standalone fault-injection harness, wired to `dune build @fault`.

   Scenario (the ROBUSTNESS.md acceptance demo, scaled up): 20% of the
   queries against the hub-label backend are corrupted; the resilient
   oracle must still serve the exact BFS distance for every sampled
   pair, quarantine the lying backend, and log nonzero fallback and
   quarantine counts. Exits nonzero on any violation, printing a
   summary either way. *)

open Repro_graph
open Repro_hub
open Repro_serve

let scenario ~name ~mode ~fraction ~pairs ~n ~m =
  let rng = Random.State.make [| 20190721 |] in
  let g = Generators.random_connected rng ~n ~m in
  let labels = Pll.build g in
  let inj = Fault_injector.create ~seed:42 ~fraction mode in
  let oracle =
    Resilient_oracle.create ~spot_check_every:1 ~quarantine_after:3
      ~primary:
        (Repro_obs.Backend.make ~name:"faulty-hub" ~space_words:0
           (Fault_injector.wrap inj (Hub_label.query labels)))
      g
  in
  let wrong = ref 0 in
  for _ = 1 to pairs do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let truth = (Traversal.bfs g u).(v) in
    if Resilient_oracle.query oracle u v <> truth then incr wrong
  done;
  let s = Resilient_oracle.stats oracle in
  Format.printf "%-18s exact=%d/%d injected=%d %a@." name (pairs - !wrong)
    pairs (Fault_injector.injected inj) Resilient_oracle.pp_stats s;
  let ok =
    !wrong = 0
    && s.Resilient_oracle.fallback_answers > 0
    && s.Resilient_oracle.quarantines > 0
  in
  if not ok then
    Format.printf "FAILED: %s (wrong=%d fallbacks=%d quarantines=%d)@." name
      !wrong s.Resilient_oracle.fallback_answers s.Resilient_oracle.quarantines;
  ok

let () =
  (* --quick (the tier-1 runtest hookup) shrinks the trial counts so
     the fault path is exercised on every `dune runtest`; the @fault
     alias still runs the full-size scenarios. *)
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let scale k = if quick then max 40 (k / 5) else k in
  let ok =
    List.for_all Fun.id
      [
        scenario ~name:"corrupt-20%" ~mode:Fault_injector.Corrupt ~fraction:0.2
          ~pairs:(scale 500) ~n:(scale 120) ~m:(scale 260);
        scenario ~name:"drop-30%" ~mode:Fault_injector.Drop ~fraction:0.3
          ~pairs:(scale 300) ~n:(scale 100) ~m:(scale 220);
        scenario ~name:"fail-25%" ~mode:Fault_injector.Fail ~fraction:0.25
          ~pairs:(scale 300) ~n:(scale 100) ~m:(scale 220);
      ]
  in
  if ok then print_endline "fault-injection suite: all scenarios passed"
  else exit 1
