(* Differential property harness: every distance backend in the repo
   must agree, query by query, with BFS ground truth — on random sparse
   graphs, on disconnected graphs (infinity handling), on weighted
   graphs, and on the paper's G_{b,l} degree-3 gadget instances. The
   packed Flat_hub store, the zero-copy Mmap_hub view of the same
   bytes, and the compressed Compact_hub store (heap, mmap and cached,
   with block sizes small enough to force the skip table) are run
   alongside the assoc Hub_label they were frozen from, so no layout
   optimisation can silently diverge from the structures it
   replaced. *)

open Repro_graph
open Repro_hub
open Repro_core
open Repro_serve

let inf_budget = max_int

(* The unweighted backend battery over a graph: (name, query). The
   mmap store rides through an actual temp file round trip (pack →
   map → unlink), so the zero-copy byte path is exercised on every
   generated graph. *)
let unweighted_backends g =
  let pll = Pll.build g in
  let flat = Flat_hub.of_labels pll in
  let flat_cached = Flat_hub.of_labels ~cache_slots:32 pll in
  let mm = Test_util.mmap_of_flat ~deep:true flat in
  let mm_cached = Test_util.mmap_of_flat ~cache_slots:32 flat in
  (* a tiny block size forces multi-block regions (and therefore the
     skip table) even on these small generated graphs *)
  let compact = Test_util.compact_of_flat ~deep:true ~block:2 flat in
  let compact_mm = Test_util.compact_map_of_flat ~deep:true flat in
  let compact_cached = Test_util.compact_of_flat ~cache_slots:32 flat in
  let hhl = Canonical_hhl.build ~order:(Order.by_degree g) g in
  let w = Wgraph.of_unweighted g in
  [
    ("hub-assoc", Hub_label.query pll);
    ("flat", Flat_hub.query flat);
    ("flat-cached", Flat_hub.query flat_cached);
    ("mmap", Mmap_hub.query mm);
    ("mmap-cached", Mmap_hub.query mm_cached);
    ("compact", Compact_hub.query compact);
    ("compact-mmap", Compact_hub.query compact_mm);
    ("compact-cached", Compact_hub.query compact_cached);
    ("canonical-hhl", Hub_label.query hhl);
    ("dijkstra-unit", fun u v -> (Dijkstra.distances w u).(v));
    ( "bidirectional",
      fun u v ->
        match Budget_search.bidirectional g ~budget:inf_budget u v with
        | Some d -> d
        | None -> Alcotest.fail "unbudgeted bidirectional search gave up" );
  ]

(* Check every backend against BFS truth on the given pairs; queries
   each pair twice through the cached flat store via the repetition in
   [pairs] (query_pairs includes repeats and self-pairs). *)
let agree_on g pairs =
  let backends = unweighted_backends g in
  Array.for_all
    (fun (u, v) ->
      let truth = (Traversal.bfs g u).(v) in
      List.for_all
        (fun (name, q) ->
          let d = q u v in
          if d <> truth then
            Alcotest.failf "%s: d(%d,%d) = %d, BFS says %d" name u v d truth;
          true)
        backends)
    pairs

let diff_connected =
  Test_util.qcheck "all backends = BFS on random connected graphs" ~count:100
    (Gen.connected_gen ~max_n:28 ~max_deg:3 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      agree_on g (Gen.query_pairs ~seed ~n:(Graph.n g) 10))

let diff_disconnected =
  Test_util.qcheck
    "all backends agree on disconnected graphs (infinity included)" ~count:60
    Gen.small_graph_gen
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_graph params in
      agree_on g (Gen.query_pairs ~seed ~n:(Graph.n g) 10))

let diff_weighted =
  Test_util.qcheck "weighted: flat = assoc = Dijkstra" ~count:40
    (Gen.weighted_gen ~max_n:24 ~max_deg:3 ())
    (fun (((_, _, seed) as params), wseed) ->
      let w = Gen.build_weighted (params, wseed) in
      let labels = Pll.build_w w in
      let flat = Flat_hub.of_labels labels in
      let mm = Test_util.mmap_of_flat ~deep:true flat in
      let compact = Test_util.compact_of_flat ~deep:true ~block:3 flat in
      let n = Wgraph.n w in
      Array.for_all
        (fun (u, v) ->
          let truth = (Dijkstra.distances w u).(v) in
          Hub_label.query labels u v = truth
          && Flat_hub.query flat u v = truth
          && Mmap_hub.query mm u v = truth
          && Compact_hub.query compact u v = truth)
        (Gen.query_pairs ~seed ~n 10))

(* G_{2,1} is deterministic; build its backends once and vary only the
   sampled query pairs. 1516 vertices, max degree 3 — big enough to
   exercise long unit paths through the gadget trees, small enough for
   per-pair BFS truth. Canonical HHL is cubic-ish, so the gadget runs
   the remaining backends. *)
let gadget_fixture =
  lazy
    (let grid = Grid_graph.create ~b:2 ~l:1 () in
     let g = (Degree_gadget.build grid).Degree_gadget.graph in
     let pll = Pll.build g in
     let flat = Flat_hub.of_labels pll in
     let mm = Test_util.mmap_of_flat ~deep:true flat in
     let compact = Test_util.compact_map_of_flat ~deep:true flat in
     (g, pll, flat, mm, compact))

let diff_gadget =
  Test_util.qcheck
    "G_{2,1} gadget: compact = mmap = flat = assoc = BFS = bidirectional"
    ~count:8
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let g, pll, flat, mm, compact = Lazy.force gadget_fixture in
      let n = Graph.n g in
      Array.for_all
        (fun (u, v) ->
          let truth = (Traversal.bfs g u).(v) in
          Hub_label.query pll u v = truth
          && Flat_hub.query flat u v = truth
          && Mmap_hub.query mm u v = truth
          && Compact_hub.query compact u v = truth
          &&
          match Budget_search.bidirectional g ~budget:inf_budget u v with
          | Some d -> d = truth
          | None -> false)
        (Gen.query_pairs ~seed ~n 6))

(* Job-count invariance: the compact store's batched queries and
   aggregate ops must be identical across worker counts and equal to
   the flat store's answers (which the batteries above tie to BFS). *)
let diff_compact_jobs =
  Test_util.qcheck "compact query_many/ops invariant across job counts"
    ~count:12
    (Gen.connected_gen ~max_n:20 ~max_deg:4 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let flat = Flat_hub.of_labels (Pll.build g) in
      let compact = Test_util.compact_of_flat ~deep:true ~block:2 flat in
      let n = Graph.n g in
      let pairs = Gen.query_pairs ~seed ~n 12 in
      let expected = Flat_hub.query_many flat pairs in
      let reqs =
        Repro_obs.Ops.
          [
            Batch pairs;
            One_to_many
              { source = 0; targets = Array.init n (fun i -> n - 1 - i) };
            Top_k_nearest { source = seed mod n; k = 3 };
            Eccentricity (seed mod n);
            Farthest 0;
            Diameter_radius;
          ]
      in
      let flat_ops = Flat_hub.ops flat in
      let module F = (val flat_ops : Repro_obs.Backend.S_ops) in
      List.for_all
        (fun jobs ->
          Repro_par.Pool.with_pool ~jobs (fun pool ->
              Compact_hub.query_many ~pool compact pairs = expected
              &&
              let module C =
                (val Compact_hub.ops ~pool compact : Repro_obs.Backend.S_ops)
              in
              List.for_all
                (fun req ->
                  Repro_obs.Ops.response_to_string (C.op req)
                  = Repro_obs.Ops.response_to_string (F.op req))
                reqs))
        [ 1; 2; 4 ])

(* The TZ oracle is approximate by design: differential bounds instead
   of equality — never below the truth, never above 3x. *)
let diff_tz_stretch =
  Test_util.qcheck "TZ oracle stays within [truth, 3*truth]" ~count:20
    (Gen.connected_gen ~max_n:28 ~max_deg:3 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let tz = Tz_oracle.build ~rng:(Random.State.make [| seed |]) g in
      Array.for_all
        (fun (u, v) ->
          let truth = (Traversal.bfs g u).(v) in
          let est = Tz_oracle.query tz u v in
          est >= truth && est <= 3 * truth)
        (Gen.query_pairs ~seed ~n:(Graph.n g) 10))

let suite =
  [
    diff_connected;
    diff_disconnected;
    diff_weighted;
    diff_gadget;
    diff_compact_jobs;
    diff_tz_stretch;
  ]
