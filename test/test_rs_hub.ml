(* Tests for the Theorem 4.1 / 1.4 construction. *)

open Repro_graph
open Repro_hub
open Repro_core

let test_default_d () =
  Test_util.check_bool "d >= 2" true (Rs_hub.default_d 100 >= 2);
  Test_util.check_bool "d grows" true
    (Rs_hub.default_d 1_000_000 >= Rs_hub.default_d 100)

let rs_hub_exact =
  Test_util.qcheck "Theorem 4.1 labeling is an exact cover" ~count:30
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 2 6))
    (fun (params, d) ->
      let g = Gen.build_connected params in
      let labels, _ = Rs_hub.build ~rng:(Test_util.rng ()) ~d g in
      Cover.verify g labels)

let rs_hub_exact_disconnected =
  Test_util.qcheck "Theorem 4.1 handles disconnected graphs" ~count:20
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let labels, _ = Rs_hub.build ~rng:(Test_util.rng ()) ~d:3 g in
      Cover.verify g labels)

let rs_hub_stored_exact =
  Test_util.qcheck "Theorem 4.1 stores true distances" ~count:20
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let labels, _ = Rs_hub.build ~rng:(Test_util.rng ()) ~d:4 g in
      Cover.stored_distances_exact g labels)

let test_stats_accounting () =
  let rng = Test_util.rng () in
  let g = Generators.random_bounded_degree rng ~n:150 ~d:4 in
  let labels, st = Rs_hub.build ~rng ~d:5 g in
  Test_util.check_int "n recorded" 150 st.Rs_hub.n;
  Test_util.check_int "total hubs matches labeling" (Hub_label.total_size labels)
    st.Rs_hub.total_hubs;
  Test_util.check_bool "global component sampled" true (st.Rs_hub.global_size > 0);
  Test_util.check_bool "cover exact" true (Cover.verify g labels)

let test_bucket_structure_appears () =
  (* with a larger threshold on a bounded-degree graph, case 3 must
     actually fire: buckets and F-sets non-empty *)
  let rng = Test_util.rng () in
  let g = Generators.random_bounded_degree rng ~n:120 ~d:3 in
  let _, st = Rs_hub.build ~rng ~d:6 g in
  Test_util.check_bool "buckets exist" true (st.Rs_hub.bucket_count > 0);
  Test_util.check_bool "matchings non-trivial" true
    (st.Rs_hub.matching_edge_total > 0)

let test_build_w_zero_one () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:40 ~m:60 in
  let edges =
    List.map (fun (u, v) -> (u, v, Random.State.int rng 2)) (Graph.edges g)
  in
  let w = Wgraph.of_edges ~n:40 edges in
  let labels, _ = Rs_hub.build_w ~rng ~d:4 w in
  Test_util.check_bool "exact on 0/1 weights" true (Cover.verify_w w labels)

let test_build_w_rejects_large () =
  let w = Wgraph.of_edges ~n:2 [ (0, 1, 2) ] in
  Alcotest.check_raises "weights must be 0/1"
    (Invalid_argument "Rs_hub.build_w: weights must be 0/1") (fun () ->
      ignore (Rs_hub.build_w ~rng:(Test_util.rng ()) ~d:3 w))

let build_sparse_exact =
  Test_util.qcheck "Theorem 1.4 (subdivide + project) is exact" ~count:20
    (Gen.connected_gen ~max_n:30 ~max_deg:4 ())
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_connected params in
      let rng = Random.State.make [| seed |] in
      let labels, _ = Rs_hub.build_sparse ~rng ~d:4 g in
      Cover.verify g labels)

let test_sparse_on_star () =
  (* the star maximises the benefit of subdivision: degree n-1 *)
  let rng = Test_util.rng () in
  let g = Generators.star 40 in
  let labels, _ = Rs_hub.build_sparse ~rng ~d:4 g in
  Test_util.check_bool "exact on star" true (Cover.verify g labels)

let test_rejects_bad_d () =
  let g = Generators.path 3 in
  Alcotest.check_raises "d >= 1" (Invalid_argument "Rs_hub.build: need d >= 1")
    (fun () -> ignore (Rs_hub.build ~rng:(Test_util.rng ()) ~d:0 g))

let test_component_sizes_reasonable () =
  (* on a long path with moderate d, the average hubset size must be
     far below n (the scheme is sublinear in practice here) *)
  let rng = Test_util.rng () in
  let n = 200 in
  let g = Generators.path n in
  let labels, _ = Rs_hub.build ~rng ~d:6 g in
  Test_util.check_bool "average below n/2" true
    (Hub_label.avg_size labels < float_of_int n /. 2.0);
  Test_util.check_bool "exact" true (Cover.verify g labels)

let lemma42_verified =
  Test_util.qcheck "Lemma 4.2: per-colour matching unions are RS-structured"
    ~count:15
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 3 6))
    (fun (params, d) ->
      let g = Gen.build_connected params in
      let _, _, data = Rs_hub.build_checked ~rng:(Test_util.rng ()) ~d g in
      Rs_hub.lemma42_holds ~n:(Graph.n g) data)

let suite =
  [
    Alcotest.test_case "default d" `Quick test_default_d;
    rs_hub_exact;
    rs_hub_exact_disconnected;
    rs_hub_stored_exact;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "buckets fire on bounded degree" `Quick
      test_bucket_structure_appears;
    lemma42_verified;
    Alcotest.test_case "0/1 weights" `Quick test_build_w_zero_one;
    Alcotest.test_case "rejects weight 2" `Quick test_build_w_rejects_large;
    build_sparse_exact;
    Alcotest.test_case "Theorem 1.4 on a star" `Quick test_sparse_on_star;
    Alcotest.test_case "rejects d = 0" `Quick test_rejects_bad_d;
    Alcotest.test_case "path labels sublinear" `Quick
      test_component_sizes_reasonable;
  ]
