(* Tests for the resilient serving layer: budgeted search, deterministic
   fault injection, the degradation chain, quarantine, and Hub_verify.

   The acceptance scenario of docs/ROBUSTNESS.md lives in
   [test_acceptance_corrupted_backend]: with 20% of queries corrupted
   at the hub-label backend, the resilient oracle still returns the
   exact BFS distance for every sampled pair, quarantines the backend,
   and logs nonzero fallback and quarantine counts. *)

open Repro_graph
open Repro_hub
open Repro_serve

let rng () = Random.State.make [| 0xFA17 |]
let sample_graph () = Generators.random_connected (rng ()) ~n:60 ~m:120

(* ----- Budget_search ------------------------------------------------- *)

let test_budget_search_exact () =
  let g = Generators.random_connected (rng ()) ~n:30 ~m:45 in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let dist = Traversal.bfs g u in
    for v = 0 to n - 1 do
      match Budget_search.bidirectional g ~budget:max_int u v with
      | Some d -> Test_util.check_int "bidirectional = bfs" dist.(v) d
      | None -> Alcotest.fail "unlimited budget must not exhaust"
    done
  done

let test_budget_search_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  (match Budget_search.bidirectional g ~budget:max_int 0 3 with
  | Some d -> Test_util.check_bool "inf" false (Dist.is_finite d)
  | None -> Alcotest.fail "must certify disconnection");
  match Budget_search.bidirectional g ~budget:max_int 0 1 with
  | Some d -> Test_util.check_int "adjacent" 1 d
  | None -> Alcotest.fail "must answer"

let test_budget_search_exhaustion () =
  let g = Generators.path 200 in
  (match Budget_search.bidirectional g ~budget:4 0 199 with
  | None -> ()
  | Some _ -> Alcotest.fail "budget 4 cannot certify a distance-199 pair");
  match Budget_search.bidirectional g ~budget:4 0 1 with
  | Some d -> Test_util.check_int "cheap pair within budget" 1 d
  | None -> Alcotest.fail "adjacent pair fits in budget"

(* ----- Fault_injector ------------------------------------------------ *)

let test_injector_deterministic () =
  let run () =
    let inj = Fault_injector.create ~seed:11 ~fraction:0.5 Fault_injector.Corrupt in
    let f = Fault_injector.wrap inj (fun u v -> (10 * u) + v) in
    let outs = List.init 50 (fun i -> f i (i + 1)) in
    (outs, Fault_injector.injected inj)
  in
  let a, ia = run () and b, ib = run () in
  Test_util.check_bool "same outputs" true (a = b);
  Test_util.check_int "same injected count" ia ib;
  Test_util.check_bool "some injected" true (ia > 0);
  Test_util.check_bool "not all injected" true (ia < 50)

let test_injector_fractions () =
  let count fraction mode =
    let inj = Fault_injector.create ~seed:3 ~fraction mode in
    let f = Fault_injector.wrap inj (fun _ _ -> 7) in
    for i = 0 to 99 do
      ignore (try f i i with Fault_injector.Injected_failure -> -1)
    done;
    Fault_injector.injected inj
  in
  Test_util.check_int "fraction 0" 0 (count 0.0 Fault_injector.Corrupt);
  Test_util.check_int "fraction 1" 100 (count 1.0 Fault_injector.Fail)

let test_injector_corrupts_value () =
  let inj = Fault_injector.create ~seed:5 ~fraction:1.0 Fault_injector.Corrupt in
  let f = Fault_injector.wrap inj (fun _ _ -> 10) in
  for i = 0 to 20 do
    let d = f i i in
    Test_util.check_bool "corrupted differs" true (d <> 10 && d >= 0)
  done

let test_corrupt_labels () =
  let g = sample_graph () in
  let labels = Pll.build g in
  let bad = Fault_injector.corrupt_labels ~seed:1 ~fraction:0.3 labels in
  Test_util.check_int "same n" (Hub_label.n labels) (Hub_label.n bad);
  Test_util.check_int "same total" (Hub_label.total_size labels)
    (Hub_label.total_size bad);
  Test_util.check_bool "clean verifies" true (Cover.verify g labels);
  Test_util.check_bool "corrupted fails cover" false (Cover.verify g bad)

(* ----- Resilient_oracle ---------------------------------------------- *)

let truth_table g =
  Array.init (Graph.n g) (fun u -> Traversal.bfs g u)

let random_pairs r n k = List.init k (fun _ -> (Random.State.int r n, Random.State.int r n))

let test_resilient_clean_primary () =
  let g = sample_graph () in
  let labels = Pll.build g in
  let oracle = Resilient_oracle.create ~spot_check_every:1 ~labels g in
  let truth = truth_table g in
  let r = rng () in
  List.iter
    (fun (u, v) ->
      Test_util.check_int "exact" truth.(u).(v) (Resilient_oracle.query oracle u v))
    (random_pairs r (Graph.n g) 200);
  let s = Resilient_oracle.stats oracle in
  Test_util.check_int "no disagreements" 0 s.Resilient_oracle.disagreements;
  Test_util.check_int "no fallbacks" 0 s.Resilient_oracle.fallback_answers;
  Test_util.check_int "no quarantine" 0 s.Resilient_oracle.quarantines;
  Test_util.check_int "all primary" 200 s.Resilient_oracle.primary_answers;
  Test_util.check_bool "not quarantined" false (Resilient_oracle.quarantined oracle)

(* The ISSUE acceptance criterion. *)
let test_acceptance_corrupted_backend () =
  let g = sample_graph () in
  let labels = Pll.build g in
  let inj = Fault_injector.create ~seed:7 ~fraction:0.2 Fault_injector.Corrupt in
  let oracle =
    Resilient_oracle.create ~spot_check_every:1 ~quarantine_after:3
      ~primary:
        (Repro_obs.Backend.make ~name:"faulty-hub" ~space_words:0
           (Fault_injector.wrap inj (Hub_label.query labels)))
      g
  in
  let truth = truth_table g in
  let r = rng () in
  List.iter
    (fun (u, v) ->
      Test_util.check_int "exact under 20% corruption" truth.(u).(v)
        (Resilient_oracle.query oracle u v))
    (random_pairs r (Graph.n g) 300);
  let s = Resilient_oracle.stats oracle in
  Test_util.check_bool "faults were injected" true (Fault_injector.injected inj > 0);
  Test_util.check_bool "nonzero disagreements" true
    (s.Resilient_oracle.disagreements > 0);
  Test_util.check_bool "nonzero fallbacks" true
    (s.Resilient_oracle.fallback_answers > 0);
  Test_util.check_int "quarantined once" 1 s.Resilient_oracle.quarantines;
  Test_util.check_bool "backend quarantined" true
    (Resilient_oracle.quarantined oracle);
  Test_util.check_int "accounting adds up" s.Resilient_oracle.queries
    (s.Resilient_oracle.primary_answers + s.Resilient_oracle.fallback_answers)

let test_resilient_failing_backend () =
  let g = sample_graph () in
  let labels = Pll.build g in
  let inj = Fault_injector.create ~seed:9 ~fraction:0.3 Fault_injector.Fail in
  let oracle =
    Resilient_oracle.create ~spot_check_every:1 ~quarantine_after:5
      ~primary:
        (Repro_obs.Backend.make ~name:"crashy-hub" ~space_words:0
           (Fault_injector.wrap inj (Hub_label.query labels)))
      g
  in
  let truth = truth_table g in
  let r = rng () in
  List.iter
    (fun (u, v) ->
      Test_util.check_int "exact under failures" truth.(u).(v)
        (Resilient_oracle.query oracle u v))
    (random_pairs r (Graph.n g) 100);
  let s = Resilient_oracle.stats oracle in
  Test_util.check_bool "faults contained" true (s.Resilient_oracle.faults > 0);
  Test_util.check_bool "quarantined" true (Resilient_oracle.quarantined oracle)

let test_resilient_budget_degrades_to_bfs () =
  let g = Generators.path 300 in
  let oracle = Resilient_oracle.create ~step_budget:8 g in
  Test_util.check_int "far pair exact via BFS" 299
    (Resilient_oracle.query oracle 0 299);
  let s = Resilient_oracle.stats oracle in
  Test_util.check_bool "budget was exhausted" true
    (s.Resilient_oracle.budget_exhausted > 0);
  Test_util.check_int "served by fallback" 1 s.Resilient_oracle.fallback_answers

let test_resilient_label_budget () =
  let g = sample_graph () in
  let labels = Pll.build g in
  (* A scan budget of 1 can never fit |S(u)| + |S(v)|: the primary is
     skipped on budget grounds (no strike), answers stay exact. *)
  let oracle = Resilient_oracle.create ~step_budget:1 ~labels g in
  let truth = truth_table g in
  ignore (Resilient_oracle.query oracle 0 5);
  Test_util.check_int "exact" truth.(0).(5) (Resilient_oracle.query oracle 0 5);
  let s = Resilient_oracle.stats oracle in
  Test_util.check_bool "budget exhaustion logged" true
    (s.Resilient_oracle.budget_exhausted > 0);
  Test_util.check_int "no strikes for budget skips" 0
    s.Resilient_oracle.disagreements;
  Test_util.check_bool "not quarantined" false (Resilient_oracle.quarantined oracle)

let test_resilient_validation () =
  let g = sample_graph () in
  let oracle = Resilient_oracle.create g in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Resilient_oracle.query: vertex out of range") (fun () ->
      ignore (Resilient_oracle.query oracle 0 (Graph.n g)));
  let s = Resilient_oracle.stats oracle in
  Test_util.check_int "validation failure logged" 1
    s.Resilient_oracle.validation_failures;
  Test_util.check_int "not counted as a query" 0 s.Resilient_oracle.queries

(* ----- Hub_verify ---------------------------------------------------- *)

let test_hub_verify_clean () =
  let g = sample_graph () in
  let labels = Pll.build g in
  (match Hub_verify.structural g labels with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let report = Hub_verify.verify ~samples:6 ~rng:(rng ()) g labels in
  Test_util.check_bool "clean labeling verifies" true (Hub_verify.ok report);
  Test_util.check_int "entries" (Hub_label.total_size labels)
    report.Hub_verify.entries

let test_hub_verify_corrupted () =
  let g = sample_graph () in
  let labels = Pll.build g in
  let bad = Fault_injector.corrupt_labels ~seed:2 ~fraction:0.25 labels in
  let report = Hub_verify.verify ~samples:10 ~rng:(rng ()) g bad in
  Test_util.check_bool "corruption detected" false (Hub_verify.ok report);
  Test_util.check_bool "stored mismatches seen" true
    (report.Hub_verify.stored_mismatches > 0
    || report.Hub_verify.cover_violations > 0)

let test_hub_verify_structural () =
  let g = sample_graph () in
  let mismatched = Hub_label.make ~n:3 [| [ (0, 0) ]; [ (1, 0) ]; [ (2, 0) ] |] in
  (match Hub_verify.structural g mismatched with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "n mismatch must fail structural check");
  let impossible =
    Hub_label.make ~n:(Graph.n g)
      (Array.init (Graph.n g) (fun v -> [ (v, if v = 0 then 10_000 else 0) ]))
  in
  match Hub_verify.structural g impossible with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "impossible stored distance must fail"

let suite =
  [
    Alcotest.test_case "budgeted bidirectional matches BFS" `Quick
      test_budget_search_exact;
    Alcotest.test_case "budgeted search certifies disconnection" `Quick
      test_budget_search_disconnected;
    Alcotest.test_case "budget exhaustion returns None" `Quick
      test_budget_search_exhaustion;
    Alcotest.test_case "fault injector is deterministic" `Quick
      test_injector_deterministic;
    Alcotest.test_case "fault injector fraction endpoints" `Quick
      test_injector_fractions;
    Alcotest.test_case "corrupt mode returns wrong values" `Quick
      test_injector_corrupts_value;
    Alcotest.test_case "corrupt_labels breaks exactness only" `Quick
      test_corrupt_labels;
    Alcotest.test_case "clean primary serves everything" `Quick
      test_resilient_clean_primary;
    Alcotest.test_case "ACCEPTANCE: exact under 20% corruption" `Quick
      test_acceptance_corrupted_backend;
    Alcotest.test_case "failing backend is contained" `Quick
      test_resilient_failing_backend;
    Alcotest.test_case "step budget degrades to BFS" `Quick
      test_resilient_budget_degrades_to_bfs;
    Alcotest.test_case "label-scan budget skips primary" `Quick
      test_resilient_label_budget;
    Alcotest.test_case "query validation is logged" `Quick
      test_resilient_validation;
    Alcotest.test_case "Hub_verify accepts clean labelings" `Quick
      test_hub_verify_clean;
    Alcotest.test_case "Hub_verify flags corrupted labelings" `Quick
      test_hub_verify_corrupted;
    Alcotest.test_case "Hub_verify structural checks" `Quick
      test_hub_verify_structural;
  ]
