(* End-to-end smoke for distributed tracing
   (`dune build @trace-smoke`, part of @ci).

   Drives the full cross-process path through the real CLI:

   1. `hubhard label --pack` writes a HUBFLAT1 file + sidecar graph;
   2. `serve trace` over a 3-shard router with chaos injected mid-batch
      (a corrupted frame on shard 1, a kill on shard 2) reassembles
      complete end-to-end trace trees — router span, per-shard rpc
      spans, the workers' own spans arriving over the wire, and the
      retry / backoff / degraded-recompute spans of the unlucky paths —
      and exits 12 (degraded answers);
   3. two same-seed runs, each its own process, produce sha256-identical
      trace bytes under --clock-step (determinism across process
      boundaries, not just within one);
   4. every histogram exemplar in the merged metrics snapshot resolves
      to a trace id present in the trace output — the metrics-to-traces
      link never dangles.

   Runs as its own executable: the router forks, so this binary stays
   strictly domain-free. The CLI path arrives as argv.(1). *)

let passed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("trace-smoke FAIL: " ^ s);
      exit 1)
    fmt

let check name b = if b then incr passed else fail "%s" name

let cli =
  if Array.length Sys.argv < 2 then
    fail "usage: %s <path-to-hubhard-cli>" Sys.argv.(0)
  else Sys.argv.(1)

let run_cli args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> fail "CLI killed by signal %d" s
    | Unix.WSTOPPED _ -> fail "CLI stopped"
  in
  (code, List.rev !lines)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let sha256 s = Repro_par.Checksum.sha256_hex s

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ----- 1. pack a labeling through the CLI ---------------------------- *)

let packed_file = Filename.temp_file "trace_smoke" ".bin"
let graph_file = packed_file ^ ".graph"
let queries_file = Filename.temp_file "trace_smoke" ".q"

let () =
  let code, _ =
    run_cli
      [
        "label"; "--graph"; "sparse"; "-n"; "180"; "--seed"; "23"; "--pack";
        packed_file;
      ]
  in
  check "pack: label --pack exits 0" (code = 0);
  check "pack: packed file exists" (Sys.file_exists packed_file);
  check "pack: sidecar graph exists" (Sys.file_exists graph_file);
  let oc = open_out queries_file in
  for i = 0 to 59 do
    Printf.fprintf oc "%d %d\n" i ((i * 7 + 3) mod 180)
  done;
  close_out oc;
  Printf.printf "scenario 1 (CLI pack): ok\n%!"

(* ----- 2. chaos run: complete trace trees, exit 12 ------------------- *)

let trace_run out_file metrics_file =
  run_cli
    [
      "serve"; "trace"; "--graph-file"; graph_file; "--labels-file";
      packed_file; "--shards"; "3"; "--partition"; "hash"; "--seed"; "23";
      "--clock-step"; "1000"; "--queries"; queries_file; "--batch"; "16";
      "--backoff-ms"; "1"; "--chaos"; "1:corrupt@8"; "--chaos"; "2:kill@12";
      "--format"; "jsonl"; "--trace-out"; out_file; "--metrics-out";
      metrics_file;
    ]

let trace_a = Filename.temp_file "trace_smoke" ".jsonl"
let trace_b = Filename.temp_file "trace_smoke" ".jsonl"
let metrics_a = Filename.temp_file "trace_smoke" ".json"
let metrics_b = Filename.temp_file "trace_smoke" ".json"

let () =
  let code, _ = trace_run trace_a metrics_a in
  check "chaos run exits 12 (degraded answers)" (code = 12);
  let traces = read_file trace_a in
  check "trace output is non-empty" (String.length traces > 0);
  (* the full unlucky path is visible in one reassembled output:
     router roots, shard rpcs, the workers' own wire-shipped spans,
     the retry on the corrupted frame, the backoff and the degraded
     recomputes for the killed shard *)
  List.iter
    (fun name ->
      check
        (Printf.sprintf "trace tree covers %s" name)
        (contains (Printf.sprintf "\"name\": \"%s\"" name) traces))
    [
      "router.batch"; "rpc.shard0.w0"; "rpc.shard1.w0"; "rpc.shard2.w0";
      "shard0.dist"; "shard1.dist"; "shard2.dist"; "retry.shard1";
      "backoff.shard2"; "recompute.shard2.batch";
    ];
  Printf.printf "scenario 2 (chaos trace trees complete): ok\n%!"

(* ----- 3. same-seed runs are byte-identical across processes --------- *)

let () =
  let code, _ = trace_run trace_b metrics_b in
  check "second run exits 12 too" (code = 12);
  let ha = sha256 (read_file trace_a) and hb = sha256 (read_file trace_b) in
  if ha <> hb then fail "trace bytes differ across runs: %s <> %s" ha hb;
  incr passed;
  Printf.printf
    "scenario 3 (same-seed runs byte-identical, sha256 %s): ok\n%!"
    (String.sub ha 0 12)

(* ----- 4. metrics exemplars resolve into the trace output ------------ *)

(* Pull every "<32 lowercase hex>" string out of a JSON blob. Exemplar
   values and trace_id values are exactly these. *)
let hex_ids s =
  let ids = ref [] in
  let is_hex c = match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false in
  let n = String.length s in
  for i = 0 to n - 34 do
    if
      s.[i] = '"'
      && s.[i + 33] = '"'
      && (let ok = ref true in
          for j = i + 1 to i + 32 do
            if not (is_hex s.[j]) then ok := false
          done;
          !ok)
    then ids := String.sub s (i + 1) 32 :: !ids
  done;
  List.sort_uniq compare !ids

let () =
  let metrics = read_file metrics_a in
  check "metrics snapshot has exemplars" (contains "\"exemplars\"" metrics);
  let trace_ids = hex_ids (read_file trace_a) in
  let exemplar_ids = hex_ids metrics in
  check "metrics carry at least one trace id" (exemplar_ids <> []);
  List.iter
    (fun id ->
      check
        (Printf.sprintf "exemplar %s resolves to a recorded trace" id)
        (List.mem id trace_ids))
    exemplar_ids;
  Printf.printf
    "scenario 4 (%d exemplar(s) resolve into the trace output): ok\n%!"
    (List.length exemplar_ids);
  List.iter Sys.remove
    [ packed_file; graph_file; queries_file; trace_a; trace_b; metrics_a;
      metrics_b ];
  Printf.printf "trace-smoke: all scenarios passed (%d checks)\n%!" !passed
