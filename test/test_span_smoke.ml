(* Span-profile smoke for the @ci gate (`dune build @span-smoke`).

   Builds one small fixture per instrumented construction pipeline with
   profiling on, then asserts (1) the exported span tree is valid JSON
   — checked by a minimal standalone parser, no JSON dependency — and
   (2) the recorded phase names exactly match the documented set in
   docs/OBSERVABILITY.md. A rename or reorder of any pipeline phase
   fails CI until the docs (and this list) are updated with it. *)

open Repro_graph
open Repro_hub
open Repro_core
module Span = Repro_obs.Span
module Clock = Repro_obs.Clock

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "span smoke FAIL: %s\n" msg)
    fmt

(* ---- minimal JSON validity parser -------------------------------- *)

exception Bad of int

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad !pos) in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then raise (Bad !pos);
    advance ()
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          advance ();
          go ()
      | _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    if peek () = '-' then advance ();
    let digits = ref 0 in
    while
      !pos < n
      && (match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      incr digits;
      advance ()
    done;
    if !digits = 0 then raise (Bad !pos)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | _ -> number ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> raise (Bad !pos)
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems ()
        | ']' -> advance ()
        | _ -> raise (Bad !pos)
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Bad _ -> false

(* ---- the documented phase-name sets ------------------------------ *)

let documented =
  [
    ("pll.build", [ "order"; "pruned-sweep" ]);
    ( "rs-hub.build",
      [
        "distance-rows";
        "hitting-set";
        "d3-colouring";
        "conflict-sets";
        "koenig-covers";
        "hubsets";
      ] );
    ("flat-hub.pack", []);
    ("grid-graph.create", [ "level-edges"; "adjacency" ]);
    ("degree-gadget.build", [ "anchor-trees"; "edge-paths"; "adjacency" ]);
  ]

let check_tree label tree =
  let json = Span.to_json tree in
  if not (check_json json) then fail "%s: span JSON does not parse" label;
  match List.assoc_opt tree.Span.name documented with
  | None -> fail "%s: root span %S is not a documented pipeline" label
            tree.Span.name
  | Some phases ->
      let got = List.map (fun c -> c.Span.name) tree.Span.children in
      if got <> phases then
        fail "%s: phases [%s] differ from documented [%s]" label
          (String.concat "; " got) (String.concat "; " phases)

let profiled label f =
  let clock = Clock.read (Clock.manual ~auto_step:10L ()) in
  let _, root = Span.profile ~clock ~name:("smoke:" ^ label) f in
  match root.Span.children with
  | [ tree ] -> check_tree label tree
  | trees ->
      fail "%s: expected one recorded pipeline, got %d" label
        (List.length trees)

let () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let labels = Pll.build g in
  profiled "pll" (fun () -> ignore (Pll.build g));
  profiled "rs-hub" (fun () ->
      let rng = Random.State.make [| 20190721 |] in
      ignore (Rs_hub.build ~rng ~d:2 (Generators.path 24)));
  profiled "flat-pack" (fun () -> ignore (Flat_hub.of_labels labels));
  let grid = Grid_graph.create ~b:2 ~l:1 () in
  profiled "grid-graph" (fun () -> ignore (Grid_graph.create ~b:2 ~l:1 ()));
  profiled "degree-gadget" (fun () -> ignore (Degree_gadget.build grid));
  (* the mini parser itself must reject garbage, or the check above is
     vacuous *)
  if check_json "{\"unterminated\": [1, 2" then
    fail "json checker accepted garbage";
  if not (check_json "{\"a\": [1, {\"b\": \"c\\\"d\"}], \"e\": -1.5}") then
    fail "json checker rejected valid JSON";
  if !failures > 0 then begin
    Printf.eprintf "span smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "span smoke: all pipeline phase sets match the documented set"
