(* Shared QCheck2 generators for the test suites: random connected
   graphs, random (possibly disconnected) graphs, random weighted
   graphs and random query pairs. Generators produce seeds/parameters
   rather than graphs so that shrinking stays meaningful and every
   failure is reproducible from the printed tuple. *)

(* (n, m, seed) for a connected graph with n in [min_n, max_n] and
   average degree at most 2 * max_deg. *)
let connected_gen ?(min_n = 2) ~max_n ~max_deg () =
  QCheck2.Gen.(
    let* n = int_range min_n max_n in
    let max_m = n * (n - 1) / 2 in
    let* m = int_range (n - 1) (min max_m (max_deg * n)) in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

(* The workhorse: small random connected graphs. *)
let small_connected_gen = connected_gen ~max_n:40 ~max_deg:3 ()

let build_connected (n, m, seed) =
  let rng = Random.State.make [| seed |] in
  Repro_graph.Generators.random_connected rng ~n ~m

(* Any simple graph, possibly disconnected. *)
let graph_gen ?(min_n = 1) ~max_n ~max_deg () =
  QCheck2.Gen.(
    let* n = int_range min_n max_n in
    let max_m = n * (n - 1) / 2 in
    let* m = int_range 0 (min max_m (max_deg * n)) in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let small_graph_gen = graph_gen ~max_n:30 ~max_deg:2 ()

let build_graph (n, m, seed) =
  let rng = Random.State.make [| seed |] in
  Repro_graph.Generators.gnm rng ~n ~m

(* ((n, m, seed), wseed) for a connected graph with random edge
   weights. *)
let weighted_gen ?min_n ~max_n ~max_deg () =
  QCheck2.Gen.(
    pair (connected_gen ?min_n ~max_n ~max_deg ()) (int_range 0 1_000_000))

let small_weighted_gen = weighted_gen ~max_n:30 ~max_deg:3 ()

(* Weights drawn uniformly from [0, max_w); [min_w] raises the floor
   (e.g. [~min_w:1] for strictly positive weights). *)
let build_weighted ?(min_w = 0) ?(max_w = 10) (params, wseed) =
  let g = build_connected params in
  let rng = Random.State.make [| wseed |] in
  Repro_graph.Wgraph.of_edges
    ~n:(Repro_graph.Graph.n g)
    (List.map
       (fun (u, v) -> (u, v, min_w + Random.State.int rng (max_w - min_w)))
       (Repro_graph.Graph.edges g))

(* [k] query pairs over [0, n), deterministic from the seed; includes
   repeats and self-pairs by construction. *)
let query_pairs ~seed ~n k =
  let rng = Random.State.make [| seed |] in
  Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
