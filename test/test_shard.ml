(* Unit tests for the sharded serving tier: Wire codec round-trips,
   partition slicing exactness, the supervisor state machine and
   backoff schedule, the metrics wire format, and the worker frame
   loop driven in-process over plain pipes (process-level scenarios —
   fork, kill, restart — live in test_shard_smoke.ml, which runs in a
   fresh domain-free process). *)

open Repro_hub
open Repro_shard
module Metrics = Repro_obs.Metrics
module Fault_injector = Repro_serve.Fault_injector

(* ----- Wire codec ---------------------------------------------------- *)

let decode_request_frame s =
  match Wire.decode_frame s ~pos:0 with
  | Error e -> Alcotest.failf "decode_frame: %s" (Wire.error_to_string e)
  | Ok (payload, next) ->
      Test_util.check_int "frame consumed" (String.length s) next;
      (match Wire.request_of_payload payload with
      | Ok r -> r
      | Error e ->
          Alcotest.failf "request_of_payload: %s" (Wire.error_to_string e))

let decode_response_frame s =
  match Wire.decode_frame s ~pos:0 with
  | Error e -> Alcotest.failf "decode_frame: %s" (Wire.error_to_string e)
  | Ok (payload, _) -> (
      match Wire.response_of_payload payload with
      | Ok r -> r
      | Error e ->
          Alcotest.failf "response_of_payload: %s" (Wire.error_to_string e))

let test_wire_request_roundtrip () =
  let reqs =
    [
      Wire.Query { id = 1; u = 0; v = 999_999_999 };
      Wire.Ping { id = max_int };
      Wire.Stats { id = 0 };
      Wire.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      Test_util.check_bool "request roundtrips" true
        (decode_request_frame (Wire.encode_request r) = r))
    reqs

let test_wire_response_roundtrip () =
  let resps =
    [
      Wire.Answer
        { id = 7; dist = Repro_graph.Dist.inf; source = Wire.source_bfs;
          degraded = true };
      Wire.Answer { id = 8; dist = 0; source = Wire.source_primary;
                    degraded = false };
      Wire.Pong { id = 42 };
      Wire.Stats_payload { id = 3; data = "c a 1\ng b 2\n" };
      Wire.Stats_payload { id = 4; data = "" };
      Wire.Error_frame { id = 5; code = Wire.err_unavailable; msg = "down" };
    ]
  in
  List.iter
    (fun r ->
      Test_util.check_bool "response roundtrips" true
        (decode_response_frame (Wire.encode_response r) = r))
    resps

let test_wire_stream_of_frames () =
  let frames =
    [
      Wire.encode_request (Wire.Query { id = 1; u = 2; v = 3 });
      Wire.encode_request (Wire.Ping { id = 2 });
      Wire.encode_request Wire.Shutdown;
    ]
  in
  let s = String.concat "" frames in
  let rec go pos acc =
    match Wire.decode_frame s ~pos with
    | Error Wire.Eof -> List.rev acc
    | Error e -> Alcotest.failf "stream decode: %s" (Wire.error_to_string e)
    | Ok (payload, next) -> (
        match Wire.request_of_payload payload with
        | Ok r -> go next (r :: acc)
        | Error e -> Alcotest.failf "payload: %s" (Wire.error_to_string e))
  in
  Test_util.check_int "three frames" 3 (List.length (go 0 []))

let test_wire_source_codes () =
  List.iter
    (fun name ->
      Test_util.check_bool ("source code of " ^ name) true
        (Wire.name_of_source_code (Wire.source_code_of_name name) = name))
    [ "primary"; "bidirectional"; "bfs"; "router" ];
  Test_util.check_bool "unknown source maps to other" true
    (Wire.name_of_source_code (Wire.source_code_of_name "no-such") = "other")

let prop_wire_query_roundtrip =
  Test_util.qcheck "Wire query roundtrip" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 max_int) (int_range 0 1_000_000)
        (int_range 0 1_000_000))
    (fun (id, u, v) ->
      decode_request_frame (Wire.encode_request (Wire.Query { id; u; v }))
      = Wire.Query { id; u; v })

(* ----- Partition ----------------------------------------------------- *)

let test_partition_owner () =
  List.iter
    (fun spec ->
      let n = 100 and shards = 3 in
      for v = 0 to n - 1 do
        let o = Partition.owner spec ~shards ~n v in
        Test_util.check_bool "owner in range" true (o >= 0 && o < shards)
      done;
      Test_util.check_int "pair routes to min's owner"
        (Partition.owner spec ~shards ~n 4)
        (Partition.owner_of_pair spec ~shards ~n 90 4))
    [ Partition.Range; Partition.Hash ];
  (* range blocks are contiguous and non-decreasing *)
  let prev = ref 0 in
  for v = 0 to 99 do
    let o = Partition.owner Partition.Range ~shards:4 ~n:100 v in
    Test_util.check_bool "range monotone" true (o >= !prev);
    prev := o
  done;
  Test_util.check_bool "spec strings" true
    (Partition.spec_of_string "hash" = Ok Partition.Hash
    && Partition.string_of_spec Partition.Range = "range")

let prop_slice_exact_on_owned =
  Test_util.qcheck "partition slice exact on owned queries" ~count:30
    QCheck2.Gen.(
      pair Gen.small_connected_gen
        (pair (int_range 2 4) (int_range 0 1_000_000)))
    (fun (param, (shards, qseed)) ->
      let g = Gen.build_connected param in
      let labels = Pll.build g in
      let n = Hub_label.n labels in
      let rng = Random.State.make [| qseed |] in
      List.for_all
        (fun spec ->
          let slices =
            Array.init shards (fun shard ->
                Partition.slice spec ~shards ~shard labels)
          in
          (* slices genuinely drop entries unless the graph is tiny *)
          Array.for_all
            (fun sl -> Hub_label.total_size sl <= Hub_label.total_size labels)
            slices
          && List.for_all
               (fun _ ->
                 let u = Random.State.int rng n
                 and v = Random.State.int rng n in
                 let s = Partition.owner_of_pair spec ~shards ~n u v in
                 Hub_label.query slices.(s) u v = Hub_label.query labels u v)
               (List.init 20 Fun.id))
        [ Partition.Range; Partition.Hash ])

(* ----- Supervisor ---------------------------------------------------- *)

let no_jitter =
  {
    Supervisor.default_config with
    jitter_frac = 0.0;
    base_backoff_ns = 100L;
    max_backoff_ns = 350L;
  }

let test_supervisor_soft_escalation () =
  let sup = Supervisor.create ~seed:1 ~shards:2 no_jitter in
  Test_util.check_bool "starts healthy" true
    (Supervisor.state sup 0 = Supervisor.Healthy);
  (match Supervisor.on_soft_failure sup 0 with
  | Supervisor.Keep -> ()
  | _ -> Alcotest.fail "first soft failure keeps the shard");
  Test_util.check_bool "now suspect" true
    (Supervisor.state sup 0 = Supervisor.Suspect);
  (* a success heals the streak *)
  Supervisor.on_success sup 0;
  Test_util.check_bool "healed" true
    (Supervisor.state sup 0 = Supervisor.Healthy);
  (match Supervisor.on_soft_failure sup 0 with
  | Supervisor.Keep -> ()
  | _ -> Alcotest.fail "streak was reset");
  (* second consecutive soft failure escalates (suspect_after = 2) *)
  (match Supervisor.on_soft_failure sup 0 with
  | Supervisor.Restart_after ns -> Test_util.check_bool "backoff" true (ns = 100L)
  | _ -> Alcotest.fail "expected Restart_after");
  Test_util.check_bool "restarting" true
    (Supervisor.state sup 0 = Supervisor.Restarting);
  Supervisor.on_restarted sup 0;
  Test_util.check_bool "healthy after restart" true
    (Supervisor.state sup 0 = Supervisor.Healthy);
  (* the other shard was never touched *)
  Test_util.check_bool "shard 1 isolated" true
    (Supervisor.state sup 1 = Supervisor.Healthy)

let test_supervisor_backoff_and_quarantine () =
  let sup = Supervisor.create ~seed:1 ~shards:1 no_jitter in
  let backoffs = ref [] in
  let rec crash_until_quarantined k =
    if k > 10 then Alcotest.fail "never quarantined"
    else
      match Supervisor.on_crash sup 0 with
      | Supervisor.Restart_after ns ->
          backoffs := ns :: !backoffs;
          Supervisor.on_restarted sup 0;
          crash_until_quarantined (k + 1)
      | Supervisor.Quarantined_now -> ()
      | Supervisor.Keep -> Alcotest.fail "crash never keeps"
  in
  crash_until_quarantined 0;
  (* base 100, doubling, capped at 350: 100, 200, 350; budget 3 *)
  Test_util.check_bool "exponential then capped" true
    (List.rev !backoffs = [ 100L; 200L; 350L ]);
  Test_util.check_int "restart budget spent" 3 (Supervisor.restarts_used sup 0);
  Test_util.check_bool "terminal" true
    (Supervisor.state sup 0 = Supervisor.Quarantined);
  (* quarantine is absorbing *)
  (match Supervisor.on_crash sup 0 with
  | Supervisor.Quarantined_now -> ()
  | _ -> Alcotest.fail "quarantine is terminal");
  Supervisor.on_success sup 0;
  Test_util.check_bool "success does not resurrect" true
    (Supervisor.state sup 0 = Supervisor.Quarantined)

let test_supervisor_jitter_deterministic () =
  let run seed =
    let sup =
      Supervisor.create ~seed ~shards:1
        { Supervisor.default_config with jitter_frac = 0.5 }
    in
    match Supervisor.on_crash sup 0 with
    | Supervisor.Restart_after ns -> ns
    | _ -> Alcotest.fail "expected Restart_after"
  in
  Test_util.check_bool "same seed, same jitter" true (run 11 = run 11);
  let base = Supervisor.default_config.Supervisor.base_backoff_ns in
  let ns = run 11 in
  Test_util.check_bool "jitter within [base, 1.5*base]" true
    (ns >= base && Int64.to_float ns <= Int64.to_float base *. 1.5)

let test_supervisor_zero_budget () =
  let sup =
    Supervisor.create ~seed:0 ~shards:1
      { no_jitter with Supervisor.max_restarts = 0 }
  in
  match Supervisor.on_crash sup 0 with
  | Supervisor.Quarantined_now ->
      Test_util.check_bool "quarantined immediately" true
        (Supervisor.state sup 0 = Supervisor.Quarantined)
  | _ -> Alcotest.fail "zero budget quarantines on first crash"

(* ----- Metrics wire format ------------------------------------------- *)

let sample_registry () =
  let reg = Metrics.create () in
  Metrics.incr ~by:5 (Metrics.counter reg "a.queries");
  Metrics.incr (Metrics.counter reg "b.errors");
  Metrics.set_gauge (Metrics.gauge reg "depth") 3;
  let h = Metrics.histogram reg "lat" in
  List.iter (Metrics.observe h) [ 10; 20; 30; 1000 ];
  reg

let test_metrics_wire_roundtrip () =
  let snap = Metrics.snapshot (sample_registry ()) in
  match Metrics.snapshot_of_wire (Metrics.snapshot_to_wire snap) with
  | Error e -> Alcotest.failf "snapshot_of_wire: %s" e
  | Ok snap' ->
      Test_util.check_bool "wire roundtrip preserves snapshot" true
        (snap = snap');
      Test_util.check_bool "json agrees too" true
        (Metrics.to_json snap = Metrics.to_json snap')

let test_metrics_prefix_union () =
  let s0 = Metrics.prefix_snapshot "shard0." (Metrics.snapshot (sample_registry ()))
  and s1 = Metrics.prefix_snapshot "shard1." (Metrics.snapshot (sample_registry ())) in
  let merged = Metrics.union_snapshots [ s1; s0 ] in
  Test_util.check_bool "prefixed counters present" true
    (Metrics.find_counter merged "shard0.a.queries" = Some 5
    && Metrics.find_counter merged "shard1.a.queries" = Some 5);
  (* union sorts by name, so merge order does not matter *)
  Test_util.check_bool "order independent" true
    (Metrics.union_snapshots [ s0; s1 ] = merged)

let test_metrics_wire_rejects_garbage () =
  List.iter
    (fun s ->
      match Metrics.snapshot_of_wire s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "x nope 1\n"; "c onlyname\n"; "c n notanint\n"; "h short 1 2\n" ]

(* ----- Worker loop over pipes (single process, no fork) -------------- *)

let with_worker_io cfg requests k =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  List.iter
    (fun r ->
      match Wire.write_frame req_w r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Wire.error_to_string e))
    requests;
  Unix.close req_w;
  Worker.run ~input:req_r ~output:resp_w cfg;
  Unix.close resp_w;
  let out = k resp_r in
  Unix.close req_r;
  Unix.close resp_r;
  out

let read_response_exn fd =
  match Wire.read_response fd with
  | Ok r -> r
  | Error e -> Alcotest.failf "read_response: %s" (Wire.error_to_string e)

let worker_fixture () =
  let rng = Random.State.make [| 5 |] in
  let g = Repro_graph.Generators.random_connected rng ~n:60 ~m:120 in
  let labels = Pll.build g in
  (g, labels)

let test_worker_serves_frames () =
  let g, labels = worker_fixture () in
  let cfg =
    { (Worker.default_config g) with Worker.labels = Some labels;
      clock_step = Some 1000L }
  in
  let truth = Hub_label.query labels 0 41 in
  with_worker_io cfg
    [
      Wire.encode_request (Wire.Ping { id = 1 });
      Wire.encode_request (Wire.Query { id = 2; u = 0; v = 41 });
      Wire.encode_request (Wire.Query { id = 3; u = 9; v = 9 });
      Wire.encode_request (Wire.Stats { id = 4 });
      "\x01\x00\x00\x00\x7f" (* unknown opcode: in-band error, keep going *);
      Wire.encode_request (Wire.Query { id = 5; u = 0; v = 7000 });
      Wire.encode_request Wire.Shutdown;
    ]
    (fun fd ->
      (match read_response_exn fd with
      | Wire.Pong { id = 1 } -> ()
      | _ -> Alcotest.fail "expected Pong 1");
      (match read_response_exn fd with
      | Wire.Answer { id = 2; dist; source; degraded } ->
          Test_util.check_int "exact distance" truth dist;
          Test_util.check_int "primary source" Wire.source_primary source;
          Test_util.check_bool "not degraded" false degraded
      | _ -> Alcotest.fail "expected Answer 2");
      (match read_response_exn fd with
      | Wire.Answer { id = 3; dist = 0; _ } -> ()
      | _ -> Alcotest.fail "expected Answer 3 with dist 0");
      (match read_response_exn fd with
      | Wire.Stats_payload { id = 4; data } -> (
          match Metrics.snapshot_of_wire data with
          | Ok snap ->
              Test_util.check_bool "worker counted queries" true
                (Metrics.find_counter snap "worker.queries" = Some 2)
          | Error e -> Alcotest.failf "stats payload: %s" e)
      | _ -> Alcotest.fail "expected Stats_payload 4");
      (match read_response_exn fd with
      | Wire.Error_frame { code; _ } ->
          Test_util.check_int "bad request code" Wire.err_bad_request code
      | _ -> Alcotest.fail "expected Error_frame for bad opcode");
      match read_response_exn fd with
      | Wire.Error_frame { id = 5; code; _ } ->
          Test_util.check_int "out of range rejected" Wire.err_bad_request code
      | _ -> Alcotest.fail "expected Error_frame 5")

let test_worker_chaos_corrupt_frame () =
  let g, labels = worker_fixture () in
  let cfg =
    {
      (Worker.default_config g) with
      Worker.labels = Some labels;
      chaos = Some (Fault_injector.chaos ~after_frames:1 Fault_injector.Corrupt_frame);
    }
  in
  with_worker_io cfg
    [
      Wire.encode_request (Wire.Query { id = 1; u = 0; v = 1 });
      Wire.encode_request (Wire.Query { id = 2; u = 0; v = 1 });
      Wire.encode_request Wire.Shutdown;
    ]
    (fun fd ->
      (* first frame arrives but is flipped: framing survives, payload
         does not parse *)
      (match Wire.read_response fd with
      | Error (Wire.Bad_opcode _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected a corrupted first frame");
      (* the fault is one-shot: the stream recovers on the next frame *)
      match read_response_exn fd with
      | Wire.Answer { id = 2; degraded = false; _ } -> ()
      | _ -> Alcotest.fail "expected a clean Answer 2")

let test_worker_shutdown_on_eof () =
  (* no Shutdown frame: closing the request pipe must end the loop *)
  let g, _ = worker_fixture () in
  with_worker_io (Worker.default_config g)
    [ Wire.encode_request (Wire.Ping { id = 1 }) ]
    (fun fd ->
      match read_response_exn fd with
      | Wire.Pong { id = 1 } -> ()
      | _ -> Alcotest.fail "expected Pong before EOF exit")

let suite =
  [
    Alcotest.test_case "wire request roundtrip" `Quick test_wire_request_roundtrip;
    Alcotest.test_case "wire response roundtrip" `Quick
      test_wire_response_roundtrip;
    Alcotest.test_case "wire frame stream" `Quick test_wire_stream_of_frames;
    Alcotest.test_case "wire source codes" `Quick test_wire_source_codes;
    prop_wire_query_roundtrip;
    Alcotest.test_case "partition owner" `Quick test_partition_owner;
    prop_slice_exact_on_owned;
    Alcotest.test_case "supervisor soft escalation" `Quick
      test_supervisor_soft_escalation;
    Alcotest.test_case "supervisor backoff and quarantine" `Quick
      test_supervisor_backoff_and_quarantine;
    Alcotest.test_case "supervisor jitter deterministic" `Quick
      test_supervisor_jitter_deterministic;
    Alcotest.test_case "supervisor zero budget" `Quick
      test_supervisor_zero_budget;
    Alcotest.test_case "metrics wire roundtrip" `Quick
      test_metrics_wire_roundtrip;
    Alcotest.test_case "metrics prefix and union" `Quick
      test_metrics_prefix_union;
    Alcotest.test_case "metrics wire rejects garbage" `Quick
      test_metrics_wire_rejects_garbage;
    Alcotest.test_case "worker serves frames" `Quick test_worker_serves_frames;
    Alcotest.test_case "worker chaos corrupt frame" `Quick
      test_worker_chaos_corrupt_frame;
    Alcotest.test_case "worker exits on EOF" `Quick test_worker_shutdown_on_eof;
  ]
