(* Determinism suite for the multicore layer (lib/par + every call
   site that took a [?pool]). The contract under test: for a fixed
   seed, labels, stats, span JSON and batch answers are byte-identical
   whatever the job count — parallelism must never show through in any
   output, only in wall-clock time. Plus unit tests for the pool
   combinators themselves and the SHA-256 used to pin the artifacts. *)

open Repro_graph
open Repro_hub
open Repro_core
open Repro_serve
module Pool = Repro_par.Pool
module Checksum = Repro_par.Checksum
module Span = Repro_obs.Span
module Clock = Repro_obs.Clock

let rng seed = Random.State.make [| seed |]

(* --- pool combinators --------------------------------------------- *)

let test_parallel_for_covers () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let n = 237 in
          let hits = Array.make n 0 in
          Pool.parallel_for pool ~n (fun ~slot:_ lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          Array.iteri
            (fun i h ->
              if h <> 1 then
                Alcotest.failf "jobs=%d: index %d visited %d times" jobs i h)
            hits))
    [ 1; 2; 4; 7 ]

let test_map_chunks_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let ranges = Pool.map_chunks pool ~n:100 (fun ~slot:_ lo hi -> (lo, hi)) in
          let last = ref 0 in
          Array.iter
            (fun (lo, hi) ->
              Test_util.check_int "contiguous" !last lo;
              Test_util.check_bool "nonempty" true (hi > lo);
              last := hi)
            ranges;
          Test_util.check_int "covers 0..n" 100 !last))
    [ 1; 3; 4 ]

let test_init_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let f i = (i * 37) mod 101 in
      Alcotest.(check (array int))
        "Pool.init = Array.init" (Array.init 1000 f)
        (Pool.init pool 1000 f))

let test_reduce_chunks_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* string concatenation is order-sensitive: the fold must see the
         chunks in index order *)
      let s =
        Pool.reduce_chunks pool ~n:50 ~init:""
          ~fold:(fun acc part -> acc ^ part)
          (fun ~slot:_ lo hi ->
            String.concat ""
              (List.map string_of_int (List.init (hi - lo) (fun k -> lo + k))))
      in
      Alcotest.(check string)
        "ordered fold"
        (String.concat "" (List.init 50 string_of_int))
        s)

exception Boom of int

let test_exception_lowest_chunk () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.parallel_for pool ~chunks:16 ~n:160 (fun ~slot:_ lo _ ->
            if lo >= 40 then raise (Boom lo))
      with
      | () -> Alcotest.fail "expected an exception"
      | exception Boom lo ->
          (* chunk boundaries for n=160, chunks=16 are multiples of 10;
             the first failing chunk starts at 40 *)
          Test_util.check_int "lowest failing chunk wins" 40 lo)

let test_nested_submission_inline () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let n = 24 in
      let out = Array.make n 0 in
      Pool.parallel_for pool ~n (fun ~slot:_ lo hi ->
          for i = lo to hi - 1 do
            (* a submission from inside a worker task must run inline
               rather than deadlock on the busy pool *)
            Pool.parallel_for pool ~n:1 (fun ~slot:_ _ _ -> out.(i) <- i + 1)
          done);
      Array.iteri (fun i v -> Test_util.check_int "nested ran" (i + 1) v) out)

let test_run_list_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let thunks = List.init 9 (fun i () -> i * i) in
      Alcotest.(check (list int))
        "input order" (List.init 9 (fun i -> i * i))
        (Pool.run_list pool thunks))

let test_jobs_clamped () =
  Pool.with_pool ~jobs:1 (fun pool -> Test_util.check_int "one" 1 (Pool.jobs pool));
  Pool.with_pool ~jobs:5 (fun pool -> Test_util.check_int "five" 5 (Pool.jobs pool));
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs must be positive") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_shutdown_idempotent_then_inline () =
  let pool = Pool.create ~jobs:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  let acc = ref 0 in
  Pool.parallel_for pool ~n:10 (fun ~slot:_ lo hi ->
      for _ = lo to hi - 1 do
        incr acc
      done);
  Test_util.check_int "inline after shutdown" 10 !acc

(* --- SHA-256 (FIPS 180-4 vectors) --------------------------------- *)

let test_sha256_vectors () =
  let check input expect =
    Alcotest.(check string) ("sha256 " ^ String.escaped input) expect
      (Checksum.sha256_hex input)
  in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check (String.make 1000 'a')
    "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"

(* --- byte-identity across job counts ------------------------------ *)

(* One full RS-hub construction under a manual clock, digested. *)
let rs_hub_digest ~seed jobs =
  Pool.with_pool ~jobs (fun pool ->
      let g = Generators.random_bounded_degree (rng seed) ~n:24 ~d:3 in
      let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
      let (labels, stats), span =
        Span.profile ~clock ~name:"par-test" (fun () ->
            Rs_hub.build ~rng:(rng (seed + 1)) ~d:3 ~pool g)
      in
      let stats_repr =
        Printf.sprintf "%d %d %d %d %d %d %d %d %d" stats.Rs_hub.d
          stats.Rs_hub.n stats.Rs_hub.global_size stats.Rs_hub.q_total
          stats.Rs_hub.r_total stats.Rs_hub.f_total stats.Rs_hub.bucket_count
          stats.Rs_hub.matching_edge_total stats.Rs_hub.total_hubs
      in
      ( Checksum.sha256_hex (Hub_io.to_string labels),
        Checksum.sha256_hex stats_repr,
        Checksum.sha256_hex (Span.to_json span) ))

let test_rs_hub_identical_across_jobs () =
  let reference = rs_hub_digest ~seed:42 1 in
  List.iter
    (fun jobs ->
      let d = rs_hub_digest ~seed:42 jobs in
      if d <> reference then
        Alcotest.failf "rs_hub output differs between jobs=1 and jobs=%d" jobs)
    [ 2; 4 ];
  (* and two same-seed runs at the same job count *)
  Test_util.check_bool "same seed, same run" true
    (rs_hub_digest ~seed:42 2 = rs_hub_digest ~seed:42 2);
  Test_util.check_bool "different seed differs" true
    (rs_hub_digest ~seed:43 1 <> reference)

let test_distance_rows_match_sequential () =
  let g = Generators.random_connected (rng 7) ~n:40 ~m:80 in
  let seq = Array.init (Graph.n g) (fun s -> Traversal.bfs g s) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let rows = Traversal.bfs_rows ~pool g in
          Array.iteri
            (fun s row -> Alcotest.(check (array int)) "bfs row" seq.(s) row)
            rows))
    [ 1; 3 ];
  let w =
    let r = rng 8 in
    let base = Generators.random_connected r ~n:30 ~m:60 in
    let edges = ref [] in
    Graph.iter_edges base (fun u v ->
        edges := (u, v, 1 + Random.State.int r 9) :: !edges);
    Wgraph.of_edges ~n:30 !edges
  in
  let seqw = Array.init (Wgraph.n w) (fun s -> Dijkstra.distances w s) in
  Pool.with_pool ~jobs:3 (fun pool ->
      let rows = Dijkstra.distance_rows ~pool w in
      Array.iteri
        (fun s row -> Alcotest.(check (array int)) "dijkstra row" seqw.(s) row)
        rows)

let test_hub_verify_pool_invariant () =
  let g = Generators.random_connected (rng 11) ~n:30 ~m:60 in
  let labels = Pll.build g in
  let report jobs =
    Pool.with_pool ~jobs (fun pool ->
        Hub_verify.verify ~samples:8 ~pool ~rng:(rng 5) g labels)
  in
  let r1 = report 1 and r4 = report 4 in
  Test_util.check_bool "same report any job count" true (r1 = r4);
  Test_util.check_int "no mismatches" 0 r1.Hub_verify.stored_mismatches;
  Test_util.check_int "no violations" 0 r1.Hub_verify.cover_violations

(* --- batch query fan-out ------------------------------------------ *)

let query_fixture =
  lazy
    (let g = Generators.random_connected (rng 3) ~n:64 ~m:150 in
     let flat = Flat_hub.of_labels (Pll.build g) in
     (g, flat))

let qcheck_query_many_parallel =
  Test_util.qcheck "query_many with pool = point queries" ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, flat = Lazy.force query_fixture in
      let r = rng seed in
      let pairs =
        Array.init 50 (fun _ -> (Random.State.int r 64, Random.State.int r 64))
      in
      let expect = Array.map (fun (u, v) -> Flat_hub.query flat u v) pairs in
      Pool.with_pool ~jobs:3 (fun pool ->
          Flat_hub.query_many ~pool flat pairs = expect)
      && Flat_hub.query_many flat pairs = expect)

let test_cached_query_many_stats () =
  let _, flat = Lazy.force query_fixture in
  let cached = Flat_hub.with_cache ~cache_slots:16 flat in
  let pairs = Array.init 40 (fun i -> (i mod 8, (i * 3) mod 8)) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Flat_hub.query_many ~pool cached pairs in
      let b = Array.map (fun (u, v) -> Flat_hub.query flat u v) pairs in
      Alcotest.(check (array int)) "cached batch answers" b a);
  match Flat_hub.cache_stats cached with
  | None -> Alcotest.fail "cache_stats missing on a cached store"
  | Some (hits, misses) ->
      (* per-batch local counters merged once at the join: every query
         is accounted for exactly once, no torn increments *)
      Test_util.check_int "hits + misses = queries" (Array.length pairs)
        (hits + misses);
      Test_util.check_bool "repeated pairs hit" true (hits > 0)

let test_resilient_query_many_differential () =
  let g, flat = Lazy.force query_fixture in
  let pairs =
    let r = rng 99 in
    Array.init 60 (fun _ -> (Random.State.int r 64, Random.State.int r 64))
  in
  let make () =
    Resilient_oracle.create ~spot_check_every:3
      ~primary:(Resilient_oracle.flat_primary ~step_budget:24 flat)
      g
  in
  let seq_oracle = make () in
  let seq =
    Array.map (fun (u, v) -> Resilient_oracle.query_detailed seq_oracle u v) pairs
  in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let o = make () in
          let got = Resilient_oracle.query_many_detailed ~pool o pairs in
          Array.iteri
            (fun k (d, src) ->
              let d', src' = got.(k) in
              Test_util.check_int "answer" d d';
              Test_util.check_bool "source" true (src = src'))
            seq;
          Test_util.check_bool "stats replayed identically" true
            (Resilient_oracle.stats o = Resilient_oracle.stats seq_oracle)))
    [ 1; 4 ]

let test_default_jobs_env_override () =
  (* the @par-smoke alias runs the suite with HUBHARD_JOBS=2; just pin
     that the resolved default respects an explicit override *)
  Pool.set_default_jobs 3;
  Test_util.check_int "set_default_jobs wins" 3 (Pool.default_jobs ());
  Test_util.check_int "default pool resized" 3 (Pool.jobs (Pool.default ()));
  (match Sys.getenv_opt "HUBHARD_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 ->
          (* fall back to the env var once the override is reset *)
          Pool.set_default_jobs j;
          Test_util.check_int "env honoured" j (Pool.default_jobs ())
      | _ -> ())
  | None -> ());
  Pool.set_default_jobs 1

let suite =
  [
    Alcotest.test_case "parallel_for covers each index once" `Quick
      test_parallel_for_covers;
    Alcotest.test_case "map_chunks: contiguous ordered chunks" `Quick
      test_map_chunks_order;
    Alcotest.test_case "init matches Array.init" `Quick
      test_init_matches_sequential;
    Alcotest.test_case "reduce_chunks folds in chunk order" `Quick
      test_reduce_chunks_order;
    Alcotest.test_case "lowest-chunk exception wins" `Quick
      test_exception_lowest_chunk;
    Alcotest.test_case "nested submission runs inline" `Quick
      test_nested_submission_inline;
    Alcotest.test_case "run_list preserves order" `Quick test_run_list_order;
    Alcotest.test_case "jobs validation" `Quick test_jobs_clamped;
    Alcotest.test_case "shutdown idempotent, then inline" `Quick
      test_shutdown_idempotent_then_inline;
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "rs_hub byte-identical across jobs 1/2/4" `Quick
      test_rs_hub_identical_across_jobs;
    Alcotest.test_case "distance rows match sequential BFS/Dijkstra" `Quick
      test_distance_rows_match_sequential;
    Alcotest.test_case "hub_verify report invariant under pool" `Quick
      test_hub_verify_pool_invariant;
    qcheck_query_many_parallel;
    Alcotest.test_case "cached batch: stats merged once" `Quick
      test_cached_query_many_stats;
    Alcotest.test_case "resilient batch = sequential loop" `Quick
      test_resilient_query_many_differential;
    Alcotest.test_case "default jobs resolution" `Quick
      test_default_jobs_env_override;
  ]
