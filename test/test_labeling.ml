(* Tests for bit vectors, bit IO, the hubset encoder and tree labels. *)

open Repro_graph
open Repro_hub
open Repro_labeling

let test_bitvec_basic () =
  let v = Bitvec.of_string "10110" in
  Test_util.check_int "length" 5 (Bitvec.length v);
  Test_util.check_bool "bit 0" true (Bitvec.get v 0);
  Test_util.check_bool "bit 1" false (Bitvec.get v 1);
  Alcotest.(check string) "roundtrip" "10110" (Bitvec.to_string v);
  Test_util.check_bool "equal" true (Bitvec.equal v (Bitvec.of_string "10110"));
  Test_util.check_bool "not equal" false (Bitvec.equal v (Bitvec.of_string "10111"));
  let c = Bitvec.concat v (Bitvec.of_string "01") in
  Alcotest.(check string) "concat" "1011001" (Bitvec.to_string c)

let bitvec_roundtrip =
  Test_util.qcheck "bitvec bools roundtrip"
    QCheck2.Gen.(list_size (int_range 0 100) bool)
    (fun bools -> Bitvec.to_bools (Bitvec.of_bools bools) = bools)

let test_writer_reader_bits () =
  let w = Bit_io.Writer.create () in
  Bit_io.Writer.bits w ~width:7 93;
  Bit_io.Writer.bit w true;
  Bit_io.Writer.bits w ~width:3 5;
  let r = Bit_io.Reader.of_bitvec (Bit_io.Writer.contents w) in
  Test_util.check_int "bits" 93 (Bit_io.Reader.bits r ~width:7);
  Test_util.check_bool "bit" true (Bit_io.Reader.bit r);
  Test_util.check_int "more bits" 5 (Bit_io.Reader.bits r ~width:3);
  Test_util.check_int "exhausted" 0 (Bit_io.Reader.remaining r)

let test_writer_rejects () =
  let w = Bit_io.Writer.create () in
  Alcotest.check_raises "value too large"
    (Invalid_argument "Bit_io.Writer.bits: value does not fit") (fun () ->
      Bit_io.Writer.bits w ~width:3 8);
  Alcotest.check_raises "gamma zero"
    (Invalid_argument "Bit_io.Writer.gamma: need v >= 1") (fun () ->
      Bit_io.Writer.gamma w 0)

let gamma_roundtrip =
  Test_util.qcheck "gamma code roundtrip"
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 1 1_000_000))
    (fun values ->
      let w = Bit_io.Writer.create () in
      List.iter (Bit_io.Writer.gamma w) values;
      let r = Bit_io.Reader.of_bitvec (Bit_io.Writer.contents w) in
      List.for_all (fun v -> Bit_io.Reader.gamma r = v) values)

let test_gamma_length () =
  (* gamma(v) costs 2⌊log₂ v⌋ + 1 bits *)
  let cost v =
    let w = Bit_io.Writer.create () in
    Bit_io.Writer.gamma w v;
    Bit_io.Writer.length w
  in
  Test_util.check_int "gamma 1" 1 (cost 1);
  Test_util.check_int "gamma 2" 3 (cost 2);
  Test_util.check_int "gamma 7" 5 (cost 7);
  Test_util.check_int "gamma 8" 7 (cost 8)

let encoder_roundtrip =
  Test_util.qcheck "hubset encoder roundtrip" ~count:60
    QCheck2.Gen.(
      list_size (int_range 0 20) (pair (int_range 0 500) (int_range 0 300)))
    (fun pairs ->
      let sorted =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) pairs
      in
      let arr = Array.of_list sorted in
      Encoder.decode_vertex (Encoder.encode_vertex arr) = arr)

let labels_roundtrip =
  Test_util.qcheck "full labeling encode/decode roundtrip" ~count:30
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let labels = Pll.build g in
      let encoded = Encoder.encode labels in
      let decoded = Encoder.decode ~n:(Graph.n g) encoded in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Hub_label.hubs labels v <> Hub_label.hubs decoded v then ok := false
      done;
      !ok)

let encoded_query_exact =
  Test_util.qcheck "query from binary labels equals BFS distance" ~count:30
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let labels = Pll.build g in
      let encoded = Encoder.encode labels in
      let dist = Traversal.bfs g 0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Encoder.query_encoded encoded.(0) encoded.(v) <> dist.(v) then
          ok := false
      done;
      !ok)

let test_is_tree () =
  Test_util.check_bool "path is tree" true (Tree_label.is_tree (Generators.path 5));
  Test_util.check_bool "cycle is not" false (Tree_label.is_tree (Generators.cycle 5));
  Test_util.check_bool "disconnected is not" false
    (Tree_label.is_tree (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let tree_label_exact =
  Test_util.qcheck "tree labeling is exact" ~count:50
    QCheck2.Gen.(pair (int_range 1 80) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      Cover.verify g (Tree_label.build g))

let tree_label_log_bound =
  Test_util.qcheck "tree labels have <= ceil(log2 n)+1 hubs" ~count:50
    QCheck2.Gen.(pair (int_range 1 200) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      Hub_label.max_size (Tree_label.build g) <= Tree_label.max_hubs_bound n)

let test_tree_label_path () =
  let g = Generators.path 127 in
  let labels = Tree_label.build g in
  Test_util.check_bool "bound on path" true
    (Hub_label.max_size labels <= Tree_label.max_hubs_bound 127);
  Test_util.check_bool "exact" true (Cover.verify g labels);
  (* bit size is O(log² n): generous numeric sanity check *)
  let bits = Encoder.avg_bits (Encoder.encode labels) in
  Test_util.check_bool "label bits modest" true (bits < 400.0)

let test_tree_label_rejects () =
  Alcotest.check_raises "non-tree" (Invalid_argument "Tree_label.build: not a tree")
    (fun () -> ignore (Tree_label.build (Generators.cycle 4)))

let suite =
  [
    Alcotest.test_case "bitvec basics" `Quick test_bitvec_basic;
    bitvec_roundtrip;
    Alcotest.test_case "writer/reader bits" `Quick test_writer_reader_bits;
    Alcotest.test_case "writer rejects" `Quick test_writer_rejects;
    gamma_roundtrip;
    Alcotest.test_case "gamma code lengths" `Quick test_gamma_length;
    encoder_roundtrip;
    labels_roundtrip;
    encoded_query_exact;
    Alcotest.test_case "is_tree" `Quick test_is_tree;
    tree_label_exact;
    tree_label_log_bound;
    Alcotest.test_case "tree labels on a long path" `Quick test_tree_label_path;
    Alcotest.test_case "tree label rejects non-tree" `Quick
      test_tree_label_rejects;
  ]
