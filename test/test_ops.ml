(* The ops algebra, differentially: every implementation of the
   request/response surface — Ops.brute over a point oracle, the
   inverted-index fast paths behind Flat_hub.ops / Mmap_hub.ops, the
   resilient oracle's per-op degradation, and the BFS/Dijkstra ground
   truth — must produce equal responses, on random graphs (connected
   and disconnected, so the inf conventions are exercised), weighted
   graphs, and the paper's G_{2,1} gadget. The string codec, the
   validation layer and the eight new Wire opcodes are pinned
   alongside. *)

open Repro_graph
open Repro_hub
open Repro_core
open Repro_serve
module Backend = Repro_obs.Backend
module Ops = Repro_obs.Ops
module Wire = Repro_shard.Wire
module Pool = Repro_par.Pool

(* ----- ground truth -------------------------------------------------- *)

(* All-rows BFS truth, memoised per graph: [query] closes over the
   rows so Ops.brute over it is the reference implementation. *)
let truth_of g =
  let n = Graph.n g in
  let rows = Array.init n (fun s -> Traversal.bfs g s) in
  fun req -> Ops.brute ~n ~query:(fun u v -> rows.(u).(v)) req

let check_resp name ~expect got =
  if not (Ops.equal_response expect got) then
    Alcotest.failf "%s: expected %s, got %s" name
      (Ops.response_to_string expect)
      (Ops.response_to_string got)

(* A request battery covering all eight shapes, vertices drawn from
   the seed. *)
let requests_of ~seed n =
  let rng = Random.State.make [| seed |] in
  let v () = Random.State.int rng n in
  [
    Ops.Dist { u = v (); v = v () };
    Ops.Batch (Array.init 3 (fun _ -> (v (), v ())));
    Ops.One_to_many { source = v (); targets = Array.init 4 (fun _ -> v ()) };
    Ops.Many_to_many
      {
        sources = Array.init 2 (fun _ -> v ());
        targets = Array.init 3 (fun _ -> v ());
      };
    Ops.Top_k_nearest { source = v (); k = Random.State.int rng (n + 2) };
    Ops.Eccentricity (v ());
    Ops.Farthest (v ());
    Ops.Diameter_radius;
  ]

(* ----- unweighted differential (connected + disconnected) ------------ *)

let ops_backends g =
  let pll = Pll.build g in
  let flat = Flat_hub.of_labels pll in
  let mm = Test_util.mmap_of_flat ~deep:true flat in
  [
    ("lifted-assoc", Backend.lift ~n:(Graph.n g) (Hub_label.backend pll));
    ("flat-ops", Flat_hub.ops flat);
    ("mmap-ops", Mmap_hub.ops mm);
  ]

let diff_unweighted =
  Test_util.qcheck
    "ops: lifted assoc = flat = mmap = oracle = BFS brute (inf included)"
    ~count:50 Gen.small_graph_gen
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_graph params in
      let n = Graph.n g in
      let truth = truth_of g in
      let backends = ops_backends g in
      let pll = Pll.build g in
      let flat = Flat_hub.of_labels pll in
      let primary_oracle =
        Resilient_oracle.create
          ~primary:(Resilient_oracle.flat_primary flat)
          ~primary_ops:(Flat_hub.ops flat) g
      in
      let search_oracle = Resilient_oracle.create g in
      List.for_all
        (fun req ->
          let expect = truth req in
          List.iter
            (fun (name, b) -> check_resp name ~expect (Backend.op b req))
            backends;
          check_resp "oracle-primary" ~expect
            (fst (Resilient_oracle.op primary_oracle req));
          check_resp "oracle-search-only" ~expect
            (fst (Resilient_oracle.op search_oracle req));
          true)
        (requests_of ~seed n))

(* ----- weighted differential ----------------------------------------- *)

let diff_weighted =
  Test_util.qcheck "ops (weighted): flat = mmap = Dijkstra brute" ~count:30
    (Gen.weighted_gen ~max_n:20 ~max_deg:3 ())
    (fun (((_, _, seed) as params), wseed) ->
      let w = Gen.build_weighted (params, wseed) in
      let n = Wgraph.n w in
      let rows = Array.init n (fun s -> Dijkstra.distances w s) in
      let truth = Ops.brute ~n ~query:(fun u v -> rows.(u).(v)) in
      let labels = Pll.build_w w in
      let flat = Flat_hub.of_labels labels in
      let mm = Test_util.mmap_of_flat ~deep:true flat in
      let fo = Flat_hub.ops flat and mo = Mmap_hub.ops mm in
      List.for_all
        (fun req ->
          let expect = truth req in
          check_resp "flat-ops-w" ~expect (Backend.op fo req);
          check_resp "mmap-ops-w" ~expect (Backend.op mo req);
          true)
        (requests_of ~seed n))

(* ----- pinned inf conventions on a disconnected graph ---------------- *)

let test_disconnected_pinned () =
  (* two components: 0-1 and 2-3 *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let flat = Flat_hub.of_labels (Pll.build g) in
  let b = Flat_hub.ops flat in
  let render req = Ops.response_to_string (Backend.op b req) in
  Alcotest.(check string) "ecc inf" "ecc inf" (render (Ops.Eccentricity 0));
  Alcotest.(check string) "diam/rad inf" "diam inf rad inf"
    (render Ops.Diameter_radius);
  Alcotest.(check string) "farthest smallest inf vertex" "farthest 2:inf"
    (render (Ops.Farthest 0));
  Alcotest.(check string) "top-k crosses components as inf"
    "nearest 0:0,1:1,2:inf,3:inf"
    (render (Ops.Top_k_nearest { source = 0; k = 4 }));
  Alcotest.(check string) "one-to-many renders inf" "dists 0,inf"
    (render (Ops.One_to_many { source = 0; targets = [| 0; 2 |] }))

(* ----- the G_{2,1} degree-3 gadget ----------------------------------- *)

let test_gadget () =
  let grid = Grid_graph.create ~b:2 ~l:1 () in
  let g = (Degree_gadget.build grid).Degree_gadget.graph in
  let n = Graph.n g in
  let truth = truth_of g in
  let flat = Flat_hub.of_labels (Pll.build g) in
  let mm = Test_util.mmap_of_flat ~deep:true flat in
  let fo = Flat_hub.ops flat and mo = Mmap_hub.ops mm in
  let reqs =
    Ops.Diameter_radius
    :: List.concat_map
         (fun v ->
           [
             Ops.Eccentricity v;
             Ops.Farthest v;
             Ops.Top_k_nearest { source = v; k = 5 };
           ])
         [ 0; n / 2; n - 1 ]
  in
  List.iter
    (fun req ->
      let expect = truth req in
      check_resp "gadget-flat" ~expect (Backend.op fo req);
      check_resp "gadget-mmap" ~expect (Backend.op mo req))
    reqs

(* ----- top-k = sorted full row (the qcheck property) ----------------- *)

let topk_is_sorted_row =
  Test_util.qcheck "top-k = k_nearest of the full BFS row" ~count:80
    Gen.small_graph_gen
    (fun ((_, _, seed) as params) ->
      let g = Gen.build_graph params in
      let n = Graph.n g in
      let rng = Random.State.make [| seed |] in
      let source = Random.State.int rng n in
      let k = Random.State.int rng (n + 2) in
      let flat = Flat_hub.of_labels (Pll.build g) in
      let got = Backend.op (Flat_hub.ops flat) (Ops.Top_k_nearest { source; k }) in
      let expect =
        Ops.R_nearest (Ops.k_nearest ~k (Ops.row_pairs (Traversal.bfs g source)))
      in
      check_resp "topk-row" ~expect got;
      true)

(* ----- pooled fan-out is jobs-invariant ------------------------------ *)

let test_jobs_invariant () =
  let g = Gen.build_connected (24, 40, 2026) in
  let flat = Flat_hub.of_labels (Pll.build g) in
  let reqs =
    [
      Ops.Many_to_many
        { sources = [| 0; 5; 11 |]; targets = [| 1; 2; 20; 23 |] };
      Ops.Diameter_radius;
    ]
  in
  Pool.with_pool ~jobs:1 (fun p1 ->
      Pool.with_pool ~jobs:2 (fun p2 ->
          let b1 = Flat_hub.ops ~pool:p1 flat
          and b2 = Flat_hub.ops ~pool:p2 flat in
          List.iter
            (fun req ->
              check_resp "jobs 1 = jobs 2" ~expect:(Backend.op b1 req)
                (Backend.op b2 req))
            reqs))

(* ----- string codec and validation ----------------------------------- *)

let test_request_string_roundtrip () =
  List.iter
    (fun req ->
      match Ops.request_of_string (Ops.request_to_string req) with
      | Ok r ->
          Alcotest.(check bool)
            (Ops.request_to_string req)
            true (r = req)
      | Error msg ->
          Alcotest.failf "%s failed to re-parse: %s"
            (Ops.request_to_string req) msg)
    (requests_of ~seed:99 30);
  List.iter
    (fun s ->
      match Ops.request_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "bogus"; "dist:1"; "ecc:x"; "top-k:"; "top-k:1"; "one-to-many:3" ]

let test_validate () =
  let ok r = Alcotest.(check bool) "valid" true (Ops.validate ~n:5 r = Ok ()) in
  let bad r =
    Alcotest.(check bool)
      "invalid" true
      (match Ops.validate ~n:5 r with Error _ -> true | Ok () -> false)
  in
  ok (Ops.Eccentricity 4);
  ok (Ops.Top_k_nearest { source = 0; k = 0 });
  ok Ops.Diameter_radius;
  bad (Ops.Eccentricity 5);
  bad (Ops.Dist { u = -1; v = 0 });
  bad (Ops.Top_k_nearest { source = 0; k = -1 });
  bad (Ops.One_to_many { source = 0; targets = [| 1; 7 |] })

(* ----- the eight new Wire opcodes ------------------------------------ *)

let payload_of_frame frame =
  match Wire.decode_frame frame ~pos:0 with
  | Ok (payload, _) -> payload
  | Error e -> Alcotest.failf "decode_frame: %s" (Wire.error_to_string e)

let test_wire_op_roundtrips () =
  let reqs =
    [
      Wire.Op_row { id = 7; source = 3; targets = [| 0; 5; 2 |] };
      Wire.Op_row { id = 8; source = 0; targets = [||] };
      Wire.Op_ecc { id = 9; v = 4 };
      Wire.Op_topk { id = 10; source = 1; k = 3 };
      Wire.Op_diam { id = 11 };
    ]
  in
  List.iter
    (fun r ->
      match Wire.request_of_payload (payload_of_frame (Wire.encode_request r))
      with
      | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
      | Error e -> Alcotest.failf "request: %s" (Wire.error_to_string e))
    reqs;
  let resps =
    [
      Wire.Row_payload
        { id = 1; dists = [| 0; 3; Dist.inf |]; source = 0; degraded = false };
      Wire.Ecc_payload
        { id = 2; vertex = 5; dist = 9; source = 2; degraded = true };
      Wire.Ecc_payload
        { id = 3; vertex = -1; dist = 0; source = 0; degraded = false };
      Wire.Topk_payload
        { id = 4; pairs = [| (0, 0); (3, 1) |]; source = 1; degraded = false };
      Wire.Topk_payload { id = 5; pairs = [||]; source = 0; degraded = false };
      Wire.Diam_payload
        {
          id = 6;
          diameter = Dist.inf;
          radius = 4;
          vertices = 17;
          source = 3;
          degraded = true;
        };
    ]
  in
  List.iter
    (fun r ->
      match
        Wire.response_of_payload (payload_of_frame (Wire.encode_response r))
      with
      | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
      | Error e -> Alcotest.failf "response: %s" (Wire.error_to_string e))
    resps

let test_wire_op_adversarial () =
  (* ragged arrays surface as Bad_payload (arity checks), short fixed
     bodies as Truncated — either way a typed error, never an
     exception and never a garbage value *)
  let is_bad = function
    | Error (Wire.Bad_payload _ | Wire.Truncated _) -> true
    | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
    | Ok _ -> false
  in
  let truncated_req r cut =
    let p = payload_of_frame (Wire.encode_request r) in
    Wire.request_of_payload (String.sub p 0 (String.length p - cut))
  in
  let truncated_resp r cut =
    let p = payload_of_frame (Wire.encode_response r) in
    Wire.response_of_payload (String.sub p 0 (String.length p - cut))
  in
  (* chopping one byte breaks both the minimum-length and the
     arity (mod 8 / mod 16) checks; never an exception, never junk *)
  Alcotest.(check bool) "Op_row ragged tail" true
    (is_bad
       (truncated_req (Wire.Op_row { id = 1; source = 0; targets = [| 2 |] }) 1));
  Alcotest.(check bool) "Op_ecc short" true
    (is_bad (truncated_req (Wire.Op_ecc { id = 1; v = 0 }) 8));
  Alcotest.(check bool) "Op_topk short" true
    (is_bad (truncated_req (Wire.Op_topk { id = 1; source = 0; k = 1 }) 1));
  Alcotest.(check bool) "Row_payload ragged tail" true
    (is_bad
       (truncated_resp
          (Wire.Row_payload
             { id = 1; dists = [| 4 |]; source = 0; degraded = false })
          3));
  Alcotest.(check bool) "Topk_payload ragged pair" true
    (is_bad
       (truncated_resp
          (Wire.Topk_payload
             { id = 1; pairs = [| (0, 1) |]; source = 0; degraded = false })
          8));
  Alcotest.(check bool) "Diam_payload short" true
    (is_bad
       (truncated_resp
          (Wire.Diam_payload
             {
               id = 1;
               diameter = 0;
               radius = 0;
               vertices = 1;
               source = 0;
               degraded = false;
             })
          1))

let suite =
  [
    diff_unweighted;
    diff_weighted;
    Alcotest.test_case "disconnected conventions pinned" `Quick
      test_disconnected_pinned;
    Alcotest.test_case "G_{2,1} gadget ops" `Slow test_gadget;
    topk_is_sorted_row;
    Alcotest.test_case "pooled ops are jobs-invariant" `Quick
      test_jobs_invariant;
    Alcotest.test_case "request string codec" `Quick
      test_request_string_roundtrip;
    Alcotest.test_case "request validation" `Quick test_validate;
    Alcotest.test_case "wire op frames round-trip" `Quick
      test_wire_op_roundtrips;
    Alcotest.test_case "wire op frames: adversarial decodes" `Quick
      test_wire_op_adversarial;
  ]
