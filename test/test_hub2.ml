(* Tests for the second wave of hub machinery: additive-approximation
   hubsets, separator-based labelings, shortest-path covers. *)

open Repro_graph
open Repro_hub

(* ----- Approx_hub ------------------------------------------------- *)

let approx_error_bounded =
  Test_util.qcheck "approximate hubsets err by at most 2" ~count:30
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let t = Approx_hub.build g in
      Approx_hub.max_error g t <= 2)

let approx_never_underestimates =
  Test_util.qcheck "approximate queries never underestimate" ~count:20
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let t = Approx_hub.build g in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dist = Traversal.bfs g u in
        for v = 0 to n - 1 do
          if Dist.is_finite dist.(v) && Approx_hub.query t u v < dist.(v) then
            ok := false
        done
      done;
      !ok)

let test_approx_compresses_on_path () =
  let g = Generators.path 100 in
  let base = Pll.build g in
  let t = Approx_hub.build ~base g in
  Test_util.check_bool "no larger than base" true
    (Hub_label.total_size t.Approx_hub.labels <= Hub_label.total_size base);
  Test_util.check_bool "compression >= 1" true
    (Approx_hub.compression ~base t >= 1.0);
  Test_util.check_bool "error bounded" true (Approx_hub.max_error g t <= 2)

let test_approx_dominating_set () =
  let g = Generators.star 10 in
  let t = Approx_hub.build g in
  (* the centre dominates everything *)
  Test_util.check_int "one dominator suffices" 1 t.Approx_hub.dominating_set_size;
  Array.iteri
    (fun v p ->
      Test_util.check_bool "dominator adjacent or self" true
        (p = v || Graph.mem_edge g v p))
    t.Approx_hub.dominators

(* ----- Separator_label -------------------------------------------- *)

let separator_label_exact_default =
  Test_util.qcheck "separator labeling exact (BFS-level strategy)" ~count:30
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      Cover.verify g (Separator_label.build g))

let separator_label_exact_grid =
  Test_util.qcheck "separator labeling exact on grids (geometric strategy)"
    ~count:10
    QCheck2.Gen.(pair (int_range 2 8) (int_range 2 8))
    (fun (rows, cols) ->
      let g = Generators.grid ~rows ~cols in
      Cover.verify g (Separator_label.build_grid ~rows ~cols g))

let test_separator_grid_sublinear () =
  (* on a 16x16 grid the geometric separators give far fewer hubs than
     storing everything *)
  let g = Generators.grid ~rows:16 ~cols:16 in
  let labels = Separator_label.build_grid ~rows:16 ~cols:16 g in
  Test_util.check_bool "exact" true
    (Cover.verify_sampled g labels ~rng:(Test_util.rng ()) ~samples:10);
  Test_util.check_bool "avg far below n" true
    (Hub_label.avg_size labels < 64.0)

let test_separator_on_tree_vs_centroid () =
  (* the BFS-level strategy on a path behaves like repeated halving *)
  let g = Generators.path 64 in
  let labels = Separator_label.build g in
  Test_util.check_bool "exact" true (Cover.verify g labels);
  Test_util.check_bool "logarithmic-ish" true (Hub_label.max_size labels <= 16)

let test_separator_disconnected () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let labels = Separator_label.build g in
  Test_util.check_bool "exact incl. disconnected" true (Cover.verify g labels)

(* ----- Spc --------------------------------------------------------- *)

let spc_is_cover =
  Test_util.qcheck "greedy SPC covers its scale" ~count:20
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 1 4))
    (fun (params, r) ->
      let g = Gen.build_connected params in
      Spc.is_cover g ~r (Spc.cover g ~r))

let test_spc_on_path () =
  (* a path at scale r needs ~n/r cover vertices, each ball holds few *)
  let g = Generators.path 64 in
  let c = Spc.cover g ~r:8 in
  Test_util.check_bool "cover valid" true (Spc.is_cover g ~r:8 c);
  Test_util.check_bool "cover small" true (List.length c <= 12);
  Test_util.check_bool "sparsity constant-ish" true
    (Spc.local_sparsity g ~r:8 c <= 8)

let test_spc_empty_scale () =
  (* no pairs at distance in (r, 2r] -> empty cover is fine *)
  let g = Generators.path 3 in
  let c = Spc.cover g ~r:5 in
  Test_util.check_int "empty" 0 (List.length c);
  Test_util.check_bool "trivially covers" true (Spc.is_cover g ~r:5 c)

let test_highway_estimate_shapes () =
  let rng = Test_util.rng () in
  let road = Generators.grid ~rows:8 ~cols:8 in
  let est = Spc.highway_dimension_estimate road in
  Test_util.check_bool "at least two scales" true (List.length est >= 2);
  List.iter
    (fun (r, size, sparsity) ->
      Test_util.check_bool "scale positive" true (r >= 1);
      Test_util.check_bool "sparsity <= size" true (sparsity <= size))
    est;
  ignore rng

let suite =
  [
    approx_error_bounded;
    approx_never_underestimates;
    Alcotest.test_case "approx compresses on a path" `Quick
      test_approx_compresses_on_path;
    Alcotest.test_case "approx dominating set" `Quick test_approx_dominating_set;
    separator_label_exact_default;
    separator_label_exact_grid;
    Alcotest.test_case "separator labels sublinear on grid" `Quick
      test_separator_grid_sublinear;
    Alcotest.test_case "separator labels on a path" `Quick
      test_separator_on_tree_vs_centroid;
    Alcotest.test_case "separator labels disconnected" `Quick
      test_separator_disconnected;
    spc_is_cover;
    Alcotest.test_case "SPC on a path" `Quick test_spc_on_path;
    Alcotest.test_case "SPC empty scale" `Quick test_spc_empty_scale;
    Alcotest.test_case "highway estimate shapes" `Quick
      test_highway_estimate_shapes;
  ]
