(* Tests for the Thorup–Zwick stretch-3 oracle and the consolidated
   theorem certificates. *)

open Repro_graph
open Repro_core

let tz_never_underestimates_and_stretch3 =
  Test_util.qcheck "TZ oracle: exact <= estimate <= 3x" ~count:40
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let t = Tz_oracle.build ~rng:(Test_util.rng ()) g in
      Tz_oracle.max_stretch g t <= 3.0)

let tz_disconnected =
  Test_util.qcheck "TZ oracle on disconnected graphs" ~count:20
    Gen.small_graph_gen (fun params ->
      let g = Gen.build_graph params in
      let t = Tz_oracle.build ~rng:(Test_util.rng ()) g in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dist = Traversal.bfs g u in
        for v = 0 to n - 1 do
          let est = Tz_oracle.query t u v in
          if Dist.is_finite dist.(v) then begin
            if est < dist.(v) || est > 3 * max dist.(v) 1 then ok := false
          end
          else if Dist.is_finite est then ok := false
        done
      done;
      !ok)

let test_tz_exact_within_bunch () =
  (* on a star everything is at distance <= 2; the oracle must answer
     pairs through the centre within stretch (and exactly for centre
     pairs) *)
  let g = Generators.star 20 in
  let t = Tz_oracle.build ~rng:(Test_util.rng ()) g in
  Test_util.check_int "centre to leaf exact" 1 (Tz_oracle.query t 0 5);
  Test_util.check_bool "leaf to leaf within stretch" true
    (Tz_oracle.query t 3 7 <= 6);
  Test_util.check_bool "space positive" true (Tz_oracle.space_words t > 0);
  Test_util.check_bool "sample non-empty" true (Tz_oracle.sample_size t >= 1);
  Test_util.check_bool "bunches bounded" true (Tz_oracle.avg_bunch_size t >= 0.0)

let test_tz_space_below_full_matrix () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:400 ~m:800 in
  let t = Tz_oracle.build ~rng g in
  Test_util.check_bool "space below n^2" true
    (Tz_oracle.space_words t < 400 * 400)

let test_theorem_battery () =
  let verdicts = Theorems.check_all ~seed:7 in
  Test_util.check_bool "non-empty" true (List.length verdicts >= 15);
  List.iter
    (fun vd ->
      if not vd.Theorems.holds then
        Alcotest.failf "theorem check failed: %s (%s)" vd.Theorems.claim
          vd.Theorems.detail)
    verdicts

let test_verdict_printer () =
  let vd = { Theorems.claim = "c"; holds = true; detail = "d" } in
  Alcotest.(check string) "format" "[OK] c — d"
    (Format.asprintf "%a" Theorems.pp_verdict vd)

let suite =
  [
    tz_never_underestimates_and_stretch3;
    tz_disconnected;
    Alcotest.test_case "TZ on a star" `Quick test_tz_exact_within_bunch;
    Alcotest.test_case "TZ space below matrix" `Quick
      test_tz_space_below_full_matrix;
    Alcotest.test_case "theorem battery" `Slow test_theorem_battery;
    Alcotest.test_case "verdict printer" `Quick test_verdict_printer;
  ]
