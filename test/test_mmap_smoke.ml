(* End-to-end smoke for the zero-copy mmap label store
   (`dune build @mmap-smoke`, part of @ci).

   Exercises the whole pack → map → serve path through the real CLI:

   1. `hubhard label --pack` writes a HUBFLAT1 file + sidecar graph;
   2. the packed bytes mmap-load in-process (deep-validated) and agree
      with a heap Flat_hub parse of the same file on every pair;
   3. `hubhard serve query --mmap` answers byte-for-byte what
      `--flat` answers on the same seeded pairs, and the trace source
      names the mmap backend;
   4. a shard router drives real `hubhard serve worker --mmap`
      subprocesses (exec spawn) — every answer exact and
      primary-served, so N workers share one on-disk store through the
      page cache instead of N heap parses;
   5. malformed inputs die with the documented exit codes: a truncated
      packed file exits 10 (parse failure), `--mmap --flat` exits 124
      (bad arguments).

   Runs as its own executable: the router may fork, so this binary
   stays strictly domain-free. The CLI path arrives as argv.(1). *)

open Repro_graph
open Repro_hub
open Repro_shard

let passed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("mmap-smoke FAIL: " ^ s);
      exit 1)
    fmt

let check name b = if b then incr passed else fail "%s" name

let cli =
  if Array.length Sys.argv < 2 then
    fail "usage: %s <path-to-hubhard-cli>" Sys.argv.(0)
  else Sys.argv.(1)

(* Run the CLI with [args], return (exit code, stdout lines). stderr
   passes through so failures are diagnosable in the build log. *)
let run_cli args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> fail "CLI killed by signal %d" s
    | Unix.WSTOPPED _ -> fail "CLI stopped"
  in
  (code, List.rev !lines)

(* ----- 1. pack a labeling through the CLI ---------------------------- *)

let packed_file = Filename.temp_file "mmap_smoke" ".bin"
let graph_file = packed_file ^ ".graph"

let () =
  let code, _ =
    run_cli
      [
        "label"; "--graph"; "sparse"; "-n"; "220"; "--seed"; "11"; "--pack";
        packed_file;
      ]
  in
  check "pack: label --pack exits 0" (code = 0);
  check "pack: packed file exists" (Sys.file_exists packed_file);
  check "pack: sidecar graph exists" (Sys.file_exists graph_file);
  let ic = open_in_bin packed_file in
  let magic = really_input_string ic 8 in
  close_in ic;
  check "pack: HUBFLAT1 magic" (String.equal magic Hub_io.packed_magic);
  Printf.printf "scenario 1 (CLI pack): ok\n%!"

(* ----- 2. mmap load agrees with the heap parse ----------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let graph =
  match Graph_io.of_string_res (read_file graph_file) with
  | Ok g -> g
  | Error e -> fail "graph sidecar line %d: %s" e.Graph_io.line e.Graph_io.msg

let flat =
  match Hub_io.flat_of_bytes_res (read_file packed_file) with
  | Ok f -> f
  | Error e -> fail "heap parse at byte %d: %s" e.Hub_io.line e.Hub_io.msg

let store =
  match Mmap_hub.load_res ~deep:true packed_file with
  | Ok s -> s
  | Error e -> fail "mmap load: %s" (Mmap_hub.error_to_string e)

let () =
  let n = Graph.n graph in
  check "mmap: n matches graph" (Mmap_hub.n store = n);
  check "mmap: totals match heap parse"
    (Mmap_hub.total_size store = Flat_hub.total_size flat);
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 500 do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if Mmap_hub.query store u v <> Flat_hub.query flat u v then
      fail "mmap vs heap parse differ on d(%d,%d)" u v
  done;
  incr passed;
  Printf.printf "scenario 2 (mmap = heap parse on packed file): ok\n%!"

(* ----- 3. serve query --mmap = --flat through the CLI ---------------- *)

(* Answer lines are "u v dist source"; the store kinds differ only in
   the source column, so compare the distance triples. *)
let answer_triples lines =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | u :: v :: d :: _ when int_of_string_opt u <> None ->
          Some (u, v, d)
      | _ -> None)
    lines

let serve_query extra =
  let code, lines =
    run_cli
      ([
         "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
         packed_file; "--num"; "40"; "--seed"; "5";
       ]
      @ extra)
  in
  (code, lines)

let () =
  let code_f, lines_f = serve_query [ "--flat" ] in
  let code_m, lines_m = serve_query [ "--mmap" ] in
  check "serve: --flat exits 0" (code_f = 0);
  check "serve: --mmap exits 0" (code_m = 0);
  let tf = answer_triples lines_f and tm = answer_triples lines_m in
  check "serve: 40 answers each" (List.length tf = 40 && List.length tm = 40);
  check "serve: identical distances across stores" (tf = tm);
  (* the loop's metrics snapshot must name the store kind it served *)
  let contains sub s =
    let sn = String.length sub and n = String.length s in
    let rec go i = i + sn <= n && (String.sub s i sn = sub || go (i + 1)) in
    go 0
  in
  let q_file = Filename.temp_file "mmap_smoke" ".queries" in
  let snap_file = Filename.temp_file "mmap_smoke" ".snap.json" in
  let oc = open_out q_file in
  output_string oc "0 1\n2 3\n";
  close_out oc;
  let code, _ =
    run_cli
      [
        "serve"; "loop"; "--graph-file"; graph_file; "--labels-file";
        packed_file; "--mmap"; "--queries"; q_file; "--metrics-out"; snap_file;
      ]
  in
  check "serve loop: --mmap exits 0" (code = 0);
  check "serve loop: snapshot records the store kind"
    (contains "\"store\": \"mmap\"" (read_file snap_file));
  Sys.remove q_file;
  Sys.remove snap_file;
  Printf.printf "scenario 3 (serve query --mmap = --flat, store in snapshot): ok\n%!"

(* ----- 4. exec-mode shard workers in --mmap mode --------------------- *)

let () =
  let spawn =
    Router.Exec
      (fun ~shard ->
        [|
          cli; "serve"; "worker"; "--graph-file"; graph_file; "--labels-file";
          packed_file; "--mmap"; "--shards"; "2"; "--shard";
          string_of_int shard; "--partition"; "hash"; "--clock-step"; "1000";
        |])
  in
  let router =
    Router.create
      {
        (Router.default_config graph) with
        Router.shards = 2;
        partition = Partition.Hash;
        spawn;
        clock_step = Some 1000L;
        seed = 7;
      }
  in
  let n = Graph.n graph in
  let rng = Random.State.make [| 7 |] in
  let queries =
    Array.init 24 (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let answers = Router.query_batch router queries in
  Array.iteri
    (fun i (a : Router.answer) ->
      let u, v = queries.(i) in
      check "exec: exact" (a.Router.dist = Mmap_hub.query store u v);
      check "exec: primary-served"
        (a.Router.source = Wire.source_primary && not a.Router.degraded))
    answers;
  Router.shutdown router;
  Printf.printf "scenario 4 (exec workers serve --mmap): ok\n%!"

(* ----- 5. malformed inputs die with typed exit codes ----------------- *)

let () =
  let bytes = read_file packed_file in
  let trunc = Filename.temp_file "mmap_smoke_trunc" ".bin" in
  let oc = open_out_bin trunc in
  output_string oc (String.sub bytes 0 (String.length bytes - 9));
  close_out oc;
  let code, _ =
    run_cli
      [
        "serve"; "query"; "--graph-file"; graph_file; "--labels-file"; trunc;
        "--mmap"; "--num"; "2";
      ]
  in
  check "hostile: truncated packed file exits 10 (parse failure)" (code = 10);
  Sys.remove trunc;
  let code, _ =
    run_cli
      [
        "serve"; "query"; "--graph-file"; graph_file; "--labels-file";
        packed_file; "--mmap"; "--flat"; "--num"; "2";
      ]
  in
  check "hostile: --mmap --flat exits 124 (bad arguments)" (code = 124);
  Printf.printf "scenario 5 (typed failure exits): ok\n%!";
  Sys.remove packed_file;
  Sys.remove graph_file;
  Printf.printf "mmap-smoke: all scenarios passed (%d checks)\n%!" !passed
