(* Unit suite for the compressed Compact_hub store: golden
   byte-stability pin of the HUBFLAT2 encoding, heap/map decode
   equivalence with the flat store (across block sizes, so the
   skip-table leap path is exercised), the direct-mapped cache, batch
   queries, measured size accounting and the Backend surface. The
   adversarial byte battery lives in test_io_adversarial.ml; the
   oracle-equality chain in test_differential.ml. *)

open Repro_hub
module Checksum = Repro_par.Checksum

(* The same fixed-seed fixture as test_mmap_hub: every byte of the
   compressed image is a pure function of these parameters. *)
let fixture =
  lazy
    (let g = Gen.build_connected (24, 40, 4242) in
     let labels = Pll.build g in
     let flat = Flat_hub.of_labels labels in
     (flat, Compact_hub.to_bytes flat))

(* sha256 of the fixture's HUBFLAT2 bytes. If this pin moves, the
   compressed byte layout changed: every previously written .cbin
   label file just became unreadable. That is a format break and must
   be deliberate, not accidental. *)
let golden_sha256 =
  "9dcd80e03c05b4139f558ce6908a2fa93cc11f88cb4934177c0cdf662eb9980a"

let test_golden_pin () =
  let _, bytes = Lazy.force fixture in
  let got = Checksum.sha256_hex bytes in
  if got <> golden_sha256 then
    Alcotest.failf
      "packed HUBFLAT2 bytes drifted: sha256 %s, pinned %s — this breaks \
       every existing compressed label file"
      got golden_sha256

let test_save_load_save_stable () =
  let flat, bytes = Lazy.force fixture in
  (* heap decode *)
  let heap = Test_util.compact_of_flat ~deep:true flat in
  let again = Compact_hub.to_bytes (Compact_hub.to_flat heap) in
  Test_util.check_bool "parse -> thaw -> save is byte-identical" true
    (String.equal bytes again);
  (* zero-copy decode *)
  let map = Test_util.compact_map_of_flat ~deep:true flat in
  let again = Compact_hub.to_bytes (Compact_hub.to_flat map) in
  Test_util.check_bool "map -> thaw -> save is byte-identical" true
    (String.equal bytes again)

let check_store_matches_flat flat store =
  let n = Flat_hub.n flat in
  Test_util.check_int "n" n (Compact_hub.n store);
  Test_util.check_int "total" (Flat_hub.total_size flat)
    (Compact_hub.total_size store);
  for v = 0 to n - 1 do
    Test_util.check_int "size" (Flat_hub.size flat v) (Compact_hub.size store v);
    if Flat_hub.hubs flat v <> Compact_hub.hubs store v then
      Alcotest.failf "hubset of %d differs" v
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      Test_util.check_int
        (Printf.sprintf "d(%d,%d)" u v)
        (Flat_hub.query flat u v) (Compact_hub.query store u v)
    done
  done;
  Test_util.check_bool "to_flat round trip" true
    (Flat_hub.equal flat (Compact_hub.to_flat store))

let test_store_matches_flat () =
  let flat, _ = Lazy.force fixture in
  check_store_matches_flat flat (Test_util.compact_of_flat ~deep:true flat);
  check_store_matches_flat flat (Test_util.compact_map_of_flat ~deep:true flat)

(* Tiny blocks force hubsets across many blocks, so the merge takes
   the skip-table leaps and the mid-stream absolute re-anchors; block
   1 is the degenerate all-skip layout. *)
let test_block_sizes () =
  let flat, _ = Lazy.force fixture in
  List.iter
    (fun block ->
      check_store_matches_flat flat
        (Test_util.compact_of_flat ~deep:true ~block flat))
    [ 1; 2; 3; 4; 7; 1024 ]

let test_validate_entries_ok () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.compact_map_of_flat flat in
  match Compact_hub.validate_entries store with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pristine: %s" (Compact_hub.error_to_string e)

let test_sizes () =
  let flat, bytes = Lazy.force fixture in
  let store = Test_util.compact_of_flat flat in
  Test_util.check_int "bytes" (String.length bytes) (Compact_hub.bytes store);
  Test_util.check_int "block" Compact_hub.default_block
    (Compact_hub.block store);
  let bpe = Compact_hub.bits_per_entry store in
  Test_util.check_bool "bits/entry is measured from the file" true
    (abs_float
       (bpe
       -. 8. *. float_of_int (String.length bytes)
          /. float_of_int (Flat_hub.total_size flat))
    < 1e-9);
  (* the stats satellite agrees with the store's own accounting *)
  let p = Hub_stats.packed_sizes flat in
  Test_util.check_int "stats entries" (Flat_hub.total_size flat) p.entries;
  Test_util.check_int "stats HUBFLAT2 bytes" (String.length bytes)
    p.Hub_stats.flat2_bytes;
  Test_util.check_int "stats HUBFLAT1 bytes"
    (String.length (Hub_io.flat_to_bytes flat))
    p.Hub_stats.flat1_bytes;
  Test_util.check_bool "compressed beats flat" true
    (p.Hub_stats.flat2_bytes < p.Hub_stats.flat1_bytes)

let test_cache () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.compact_of_flat ~cache_slots:8 flat in
  let d1 = Compact_hub.query store 1 2 in
  let d2 = Compact_hub.query store 1 2 in
  let d3 = Compact_hub.query store 2 1 in
  Test_util.check_int "repeat" d1 d2;
  Test_util.check_int "unordered pair key" d1 d3;
  (match Compact_hub.cache_stats store with
  | Some (hits, misses) ->
      Test_util.check_int "hits" 2 hits;
      Test_util.check_int "misses" 1 misses
  | None -> Alcotest.fail "expected cache stats");
  Test_util.check_bool "uncached has no stats" true
    (Compact_hub.cache_stats (Compact_hub.with_cache ~cache_slots:0 store)
    = None);
  Alcotest.check_raises "negative slots"
    (Invalid_argument "Compact_hub: cache_slots must be non-negative")
    (fun () -> ignore (Compact_hub.with_cache ~cache_slots:(-1) store))

let test_query_validation () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.compact_of_flat flat in
  Alcotest.check_raises "query range" (Invalid_argument "Compact_hub.query")
    (fun () -> ignore (Compact_hub.query store 0 (Compact_hub.n store)));
  Alcotest.check_raises "negative endpoint"
    (Invalid_argument "Compact_hub.query") (fun () ->
      ignore (Compact_hub.query store (-1) 0))

let test_query_many () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.compact_map_of_flat flat in
  let cached = Test_util.compact_of_flat ~cache_slots:16 flat in
  let n = Compact_hub.n store in
  let pairs = Gen.query_pairs ~seed:99 ~n 64 in
  let want = Array.map (fun (u, v) -> Compact_hub.query store u v) pairs in
  Test_util.check_bool "batch = loop (pool fan-out)" true
    (Compact_hub.query_many store pairs = want);
  Test_util.check_bool "batch = loop (cached, sequential)" true
    (Compact_hub.query_many cached pairs = want);
  (match Compact_hub.cache_stats cached with
  | Some (hits, misses) ->
      Test_util.check_int "stats cover batch" 64 (hits + misses)
  | None -> Alcotest.fail "expected cache stats");
  Alcotest.check_raises "batch validates endpoints"
    (Invalid_argument "Compact_hub.query_many") (fun () ->
      ignore (Compact_hub.query_many store [| (0, n) |]))

let test_backend () =
  let flat, _ = Lazy.force fixture in
  let store = Test_util.compact_of_flat flat in
  let b = Compact_hub.backend store in
  Alcotest.(check string) "name" "compact-hub-labeling"
    (Repro_obs.Backend.name b);
  Test_util.check_int "space" (Compact_hub.space_words store)
    (Repro_obs.Backend.space_words b);
  let d, tr = Repro_obs.Backend.query_detailed b 3 4 in
  Test_util.check_int "dist" (Compact_hub.query store 3 4) d;
  Test_util.check_int "entries scanned"
    (Compact_hub.size store 3 + Compact_hub.size store 4)
    tr.Repro_obs.Trace.entries_scanned;
  (* a cached backend reports Hit with zero scanned entries *)
  let cb = Compact_hub.backend (Test_util.compact_of_flat ~cache_slots:4 flat) in
  ignore (Repro_obs.Backend.query b 5 6);
  ignore (Repro_obs.Backend.query cb 5 6);
  let _, tr2 = Repro_obs.Backend.query_detailed cb 5 6 in
  Test_util.check_bool "cache hit" true
    (tr2.Repro_obs.Trace.cache = Repro_obs.Trace.Hit);
  Test_util.check_int "hit scans nothing" 0 tr2.Repro_obs.Trace.entries_scanned

(* Randomised equivalence: any labeling, any block size, heap and map
   decodes both answer exactly like the flat store. *)
let prop_matches_flat =
  Test_util.qcheck ~count:40 "compact = flat on random labelings"
    QCheck2.Gen.(
      pair (Gen.connected_gen ~max_n:20 ~max_deg:4 ()) (int_range 1 8))
    (fun (params, block) ->
      let g = Gen.build_connected params in
      let flat = Flat_hub.of_labels (Pll.build g) in
      let heap = Test_util.compact_of_flat ~deep:true ~block flat in
      let map = Test_util.compact_map_of_flat ~deep:true ~block flat in
      let n = Flat_hub.n flat in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let want = Flat_hub.query flat u v in
          if Compact_hub.query heap u v <> want then ok := false;
          if Compact_hub.query map u v <> want then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "golden sha256 pin of compressed bytes" `Quick
      test_golden_pin;
    Alcotest.test_case "save -> load -> save is stable" `Quick
      test_save_load_save_stable;
    Alcotest.test_case "compact store = flat store everywhere" `Quick
      test_store_matches_flat;
    Alcotest.test_case "every block size agrees" `Quick test_block_sizes;
    Alcotest.test_case "validate_entries accepts pristine" `Quick
      test_validate_entries_ok;
    Alcotest.test_case "measured bytes and bits/entry" `Quick test_sizes;
    Alcotest.test_case "direct-mapped cache" `Quick test_cache;
    Alcotest.test_case "query endpoint validation" `Quick test_query_validation;
    Alcotest.test_case "query_many batch = loop" `Quick test_query_many;
    Alcotest.test_case "backend surface and traces" `Quick test_backend;
    prop_matches_flat;
  ]
