(* Tests for the hub-labeling framework: label type, queries, covers,
   PLL, random hitting sets, greedy landmarks, monotone closures. *)

open Repro_graph
open Repro_hub

let test_label_make_and_query () =
  let labels =
    Hub_label.make ~n:3
      [| [ (0, 0); (1, 1) ]; [ (1, 0); (0, 1) ]; [ (2, 0); (1, 1) ] |]
  in
  Test_util.check_int "query direct" 1 (Hub_label.query labels 0 1);
  Test_util.check_int "query via hub 1" 2 (Hub_label.query labels 0 2);
  Test_util.check_int "query self" 0 (Hub_label.query labels 1 1);
  (match Hub_label.query_meet labels 0 2 with
  | Some (h, d) ->
      Test_util.check_int "meet hub" 1 h;
      Test_util.check_int "meet dist" 2 d
  | None -> Alcotest.fail "expected a meeting hub");
  Test_util.check_bool "mem" true (Hub_label.mem labels 0 ~hub:1);
  Alcotest.(check (option int)) "dist_to_hub" (Some 1)
    (Hub_label.dist_to_hub labels 0 ~hub:1)

let test_label_disjoint () =
  let labels = Hub_label.make ~n:2 [| [ (0, 0) ]; [ (1, 0) ] |] in
  Test_util.check_bool "inf on disjoint" false
    (Dist.is_finite (Hub_label.query labels 0 1))

let test_label_merge_duplicates () =
  let labels = Hub_label.make ~n:1 [| [ (0, 0); (0, 0) ] |] in
  Test_util.check_int "merged" 1 (Hub_label.size labels 0);
  Alcotest.check_raises "conflicting distances"
    (Invalid_argument "Hub_label.make: conflicting distances for a hub")
    (fun () -> ignore (Hub_label.make ~n:1 [| [ (0, 0); (0, 1) ] |]))

let test_label_stats () =
  let labels = Hub_label.make ~n:2 [| [ (0, 0) ]; [ (0, 1); (1, 0) ] |] in
  Test_util.check_int "total" 3 (Hub_label.total_size labels);
  Test_util.check_int "max" 2 (Hub_label.max_size labels);
  Test_util.check_bool "avg" true (abs_float (Hub_label.avg_size labels -. 1.5) < 1e-9)

let test_label_union_restrict () =
  let a = Hub_label.make ~n:2 [| [ (0, 0) ]; [ (1, 0) ] |] in
  let b = Hub_label.make ~n:2 [| [ (1, 1) ]; [ (0, 1) ] |] in
  let u = Hub_label.map_union a b in
  Test_util.check_int "union total" 4 (Hub_label.total_size u);
  Test_util.check_int "union query" 1 (Hub_label.query u 0 1);
  let r = Hub_label.restrict u ~keep:(fun _ h -> h = 0) in
  Test_util.check_int "restricted" 2 (Hub_label.total_size r);
  let s = Hub_label.add_self (Hub_label.make ~n:2 [| []; [] |]) in
  Test_util.check_int "self added" 2 (Hub_label.total_size s)

let test_cover_violations () =
  let g = Generators.path 3 in
  (* labels that wrongly claim dist(0,2) via no common hub *)
  let bad = Hub_label.make ~n:3 [| [ (0, 0) ]; [ (1, 0) ]; [ (2, 0) ] |] in
  let v = Cover.violations g bad in
  Test_util.check_bool "violations found" true (List.length v > 0);
  Test_util.check_bool "verify false" false (Cover.verify g bad);
  (* a correct labeling: everyone stores vertex 1 *)
  let good =
    Hub_label.make ~n:3
      [| [ (0, 0); (1, 1) ]; [ (1, 0) ]; [ (2, 0); (1, 1) ] |]
  in
  Test_util.check_bool "verify true" true (Cover.verify g good);
  Test_util.check_bool "stored exact" true (Cover.stored_distances_exact g good)

let pll_exact_on_connected =
  Test_util.qcheck "PLL is an exact cover on random connected graphs"
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      Cover.verify g (Pll.build g))

let pll_exact_on_disconnected =
  Test_util.qcheck "PLL handles disconnected graphs" Gen.small_graph_gen
    (fun params ->
      let g = Gen.build_graph params in
      Cover.verify g (Pll.build g))

let pll_exact_any_order =
  Test_util.qcheck "PLL exact under random orders"
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 0 1000))
    (fun (params, seed) ->
      let g = Gen.build_connected params in
      let order = Order.random (Random.State.make [| seed |]) (Graph.n g) in
      Cover.verify g (Pll.build ~order g))

let pll_stored_distances_exact =
  Test_util.qcheck "PLL stores true distances" Gen.small_connected_gen
    (fun params ->
      let g = Gen.build_connected params in
      Cover.stored_distances_exact g (Pll.build g))

let pll_weighted_exact =
  Test_util.qcheck "weighted PLL exact (unit weights = BFS)" ~count:40
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let w = Wgraph.of_unweighted g in
      Cover.verify_w w (Pll.build_w w))

let pll_weighted_random_weights =
  Test_util.qcheck "weighted PLL exact on random weights" ~count:40
    Gen.small_weighted_gen
    (fun params ->
      let w = Gen.build_weighted params in
      Cover.verify_w w (Pll.build_w w))

let test_pll_path_small_labels () =
  (* PLL with a centrality-first order on a path keeps labels roughly
     logarithmic (the default degree order is useless on a path) *)
  let n = 64 in
  let g = Generators.path n in
  (* recursive bisection order: midpoints first *)
  let order = Array.make n 0 in
  let pos = ref 0 in
  let q = Queue.create () in
  Queue.add (0, n - 1) q;
  while not (Queue.is_empty q) do
    let lo, hi = Queue.pop q in
    if lo <= hi then begin
      let mid = (lo + hi) / 2 in
      order.(!pos) <- mid;
      incr pos;
      Queue.add (lo, mid - 1) q;
      Queue.add (mid + 1, hi) q
    end
  done;
  let labels = Pll.build ~order g in
  Test_util.check_bool "exact" true (Cover.verify g labels);
  Test_util.check_bool "max size O(log n)" true
    (Hub_label.max_size labels <= 8);
  Test_util.check_bool "avg size far below n/2" true
    (Hub_label.avg_size labels < float_of_int n /. 4.0)

let test_pll_star () =
  let g = Generators.star 20 in
  let labels = Pll.build g in
  (* the centre dominates: every vertex stores the centre + itself *)
  Test_util.check_bool "tiny labels" true (Hub_label.avg_size labels <= 2.01);
  Test_util.check_bool "exact" true (Cover.verify g labels)

let random_hitting_exact =
  Test_util.qcheck "random-hitting scheme is exact after patching" ~count:40
    QCheck2.Gen.(pair Gen.small_connected_gen (int_range 1 6))
    (fun (params, d) ->
      let g = Gen.build_connected params in
      let labels, _ = Random_hitting.build ~rng:(Test_util.rng ()) ~d g in
      Cover.verify g labels)

let test_random_hitting_stats () =
  let rng = Test_util.rng () in
  let g = Generators.random_connected rng ~n:100 ~m:160 in
  let labels, stats = Random_hitting.build ~rng ~d:4 g in
  Test_util.check_bool "global hubs > 0" true (stats.Random_hitting.global_hubs > 0);
  Test_util.check_bool "ball total > 0" true (stats.Random_hitting.ball_total > 0);
  Test_util.check_bool "exact" true (Cover.verify g labels)

let greedy_landmark_exact =
  Test_util.qcheck "greedy landmark labeling is exact" ~count:25
    (Gen.connected_gen ~max_n:25 ~max_deg:2 ())
    (fun params ->
      let g = Gen.build_connected params in
      Cover.verify g (Greedy_landmark.build g))

let monotone_closure_props =
  Test_util.qcheck "monotone closure: superset, monotone, still exact"
    ~count:30 Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let labels = Pll.build g in
      let closed = Monotone.closure g labels in
      let superset =
        let ok = ref true in
        for v = 0 to Graph.n g - 1 do
          Array.iter
            (fun (h, d) ->
              if Hub_label.dist_to_hub closed v ~hub:h <> Some d then ok := false)
            (Hub_label.hubs labels v)
        done;
        !ok
      in
      superset && Monotone.is_monotone g closed && Cover.verify g closed)

let test_is_monotone_negative () =
  let g = Generators.path 3 in
  (* hub 2 at distance 2 from 0 without the intermediate vertex 1 *)
  let labels = Hub_label.make ~n:3 [| [ (0, 0); (2, 2) ]; []; [] |] in
  Test_util.check_bool "detects gap" false (Monotone.is_monotone g labels)

let test_orders () =
  let g = Generators.star 5 in
  let o = Order.by_degree g in
  Test_util.check_int "centre first" 0 o.(0);
  Test_util.check_bool "permutation" true (Order.is_permutation o);
  let rk = Order.rank_of o in
  Test_util.check_int "rank of centre" 0 rk.(0);
  Test_util.check_bool "random order is a permutation" true
    (Order.is_permutation (Order.random (Test_util.rng ()) 17));
  Test_util.check_bool "closeness order is a permutation" true
    (Order.is_permutation
       (Order.by_closeness_sample g ~rng:(Test_util.rng ()) ~samples:3));
  Test_util.check_bool "not permutation" false (Order.is_permutation [| 0; 0 |])

let test_hub_stats () =
  let labels = Hub_label.make ~n:3 [| [ (0, 0) ]; [ (0, 1); (1, 0) ]; [] |] in
  Alcotest.(check (list (pair int int)))
    "histogram" [ (0, 1); (1, 1); (2, 1) ] (Hub_stats.histogram labels);
  Test_util.check_int "median" 1 (Hub_stats.quantile labels 0.5);
  Test_util.check_bool "bits positive" true (Hub_stats.bits_naive labels > 0);
  Test_util.check_bool "report mentions vertices" true
    (String.length (Hub_stats.report labels) > 0)

let pll_query_agrees_with_bfs =
  Test_util.qcheck "PLL query equals BFS distance pointwise" ~count:50
    Gen.small_connected_gen (fun params ->
      let g = Gen.build_connected params in
      let labels = Pll.build g in
      let n = Graph.n g in
      let u = 0 in
      let dist = Traversal.bfs g u in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Hub_label.query labels u v <> dist.(v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "make and query" `Quick test_label_make_and_query;
    Alcotest.test_case "disjoint hubsets" `Quick test_label_disjoint;
    Alcotest.test_case "duplicate handling" `Quick test_label_merge_duplicates;
    Alcotest.test_case "stats" `Quick test_label_stats;
    Alcotest.test_case "union and restrict" `Quick test_label_union_restrict;
    Alcotest.test_case "cover violations" `Quick test_cover_violations;
    pll_exact_on_connected;
    pll_exact_on_disconnected;
    pll_exact_any_order;
    pll_stored_distances_exact;
    pll_weighted_exact;
    pll_weighted_random_weights;
    Alcotest.test_case "PLL on a path" `Quick test_pll_path_small_labels;
    Alcotest.test_case "PLL on a star" `Quick test_pll_star;
    random_hitting_exact;
    Alcotest.test_case "random hitting stats" `Quick test_random_hitting_stats;
    greedy_landmark_exact;
    monotone_closure_props;
    Alcotest.test_case "is_monotone negative" `Quick test_is_monotone_negative;
    Alcotest.test_case "orders" `Quick test_orders;
    Alcotest.test_case "hub stats" `Quick test_hub_stats;
    pll_query_agrees_with_bfs;
  ]
