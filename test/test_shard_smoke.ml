(* Process-level smoke for the supervised sharded serving tier
   (`dune build @shard-smoke`, part of @ci).

   Runs as its own executable, not under alcotest: the router forks,
   and OCaml 5 only permits forking while no domain has ever been
   spawned — so this binary stays strictly domain-free. Scenarios:

   1. clean fan-out across 2 forked shards — every answer exact and
      primary-served;
   2. the ISSUE chaos scenario: 3 shards, shard 1 killed mid-batch —
      every answer still exact (differential against the full
      labeling), degraded frames confined to the dead shard's
      partition, the worker restarted within its backoff budget, and
      the merged metrics snapshot byte-identical across two same-seed
      runs under the manual clock;
   3. restart budget 0 — the shard quarantines and its partition
      degrades (exactly) forever;
   4. exec-mode workers: the real `hubhard serve worker` subprocess
      speaking the same wire protocol;
   5. `hubhard serve loop` draining on SIGTERM with a complete final
      snapshot (never a truncated or dangling .tmp file).

   The CLI path arrives as argv.(1). *)

open Repro_graph
open Repro_hub
open Repro_shard
module Metrics = Repro_obs.Metrics
module Fault_injector = Repro_serve.Fault_injector

let passed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("shard-smoke FAIL: " ^ s);
      exit 1)
    fmt

let check name b =
  if b then incr passed else fail "%s" name

(* ----- fixture ------------------------------------------------------- *)

let graph =
  let rng = Random.State.make [| 20190721 |] in
  Generators.random_connected rng ~n:240 ~m:480

let labels = Pll.build graph
let n = Graph.n graph

let queries =
  let rng = Random.State.make [| 77 |] in
  Array.init 60 (fun _ -> (Random.State.int rng n, Random.State.int rng n))

let truth = Array.map (fun (u, v) -> Hub_label.query labels u v) queries

let base_cfg =
  {
    (Router.default_config graph) with
    Router.labels = Some labels;
    clock_step = Some 1000L;
    seed = 7;
  }

(* ----- 1. clean fan-out ---------------------------------------------- *)

let () =
  let router =
    Router.create { base_cfg with Router.shards = 2; partition = Partition.Hash }
  in
  let answers = Router.query_batch router queries in
  Array.iteri
    (fun i (a : Router.answer) ->
      check "clean: exact" (a.Router.dist = truth.(i));
      check "clean: primary" (a.Router.source = Wire.source_primary);
      check "clean: not degraded" (not a.Router.degraded))
    answers;
  let sup = Router.supervisor router in
  check "clean: both shards healthy"
    (Supervisor.state sup 0 = Supervisor.Healthy
    && Supervisor.state sup 1 = Supervisor.Healthy);
  let snap = Router.merged_snapshot router in
  let shard_queries s =
    Option.value ~default:0
      (Metrics.find_counter snap (Printf.sprintf "shard%d.worker.queries" s))
  in
  check "clean: workers served the batch between them"
    (shard_queries 0 + shard_queries 1 = Array.length queries);
  check "clean: router counted the batch"
    (Metrics.find_counter snap "router.queries" = Some (Array.length queries));
  Router.shutdown router;
  Printf.printf "scenario 1 (clean 2-shard fan-out): ok\n%!"

(* ----- 2. kill one of three workers mid-batch ------------------------ *)

let chaos_run () =
  let cfg =
    {
      base_cfg with
      Router.shards = 3;
      partition = Partition.Hash;
      chaos = [ (1, Fault_injector.chaos ~after_frames:8 Fault_injector.Kill) ];
    }
  in
  let router = Router.create cfg in
  let answers = Router.query_batch router queries in
  (* merged_snapshot heals first, so the restarted worker is counted *)
  let snap = Router.merged_snapshot router in
  let sup = Router.supervisor router in
  let states = Array.init 3 (fun s -> Supervisor.state sup s) in
  let restarts = Array.init 3 (fun s -> Supervisor.restarts_used sup s) in
  (* after the restart the revived shard serves its partition again *)
  let after = Router.query_batch router (Array.sub queries 0 12) in
  Router.shutdown router;
  (answers, Metrics.to_json snap, states, restarts, after)

let () =
  let answers, json1, states, restarts, after = chaos_run () in
  let _, json2, _, _, _ = chaos_run () in
  check "chaos: merged snapshot byte-identical across same-seed runs"
    (json1 = json2);
  let degraded_total = ref 0 in
  Array.iteri
    (fun i (a : Router.answer) ->
      check "chaos: every answer exact despite the kill"
        (a.Router.dist = truth.(i));
      if a.Router.degraded then begin
        incr degraded_total;
        let u, v = queries.(i) in
        check "chaos: degraded answers only for the dead shard's partition"
          (Partition.owner_of_pair Partition.Hash ~shards:3 ~n u v = 1);
        check "chaos: degraded answers say so in the source"
          (a.Router.source = Wire.source_router)
      end)
    answers;
  check "chaos: the outage was visible" (!degraded_total > 0);
  check "chaos: but did not take out other partitions"
    (!degraded_total < Array.length queries / 2);
  check "chaos: exactly one restart, on shard 1"
    (restarts.(0) = 0 && restarts.(1) = 1 && restarts.(2) = 0);
  check "chaos: all shards healthy after healing"
    (Array.for_all (fun s -> s = Supervisor.Healthy) states);
  Array.iteri
    (fun i (a : Router.answer) ->
      check "chaos: restarted shard serves its partition again"
        ((not a.Router.degraded) && a.Router.dist = truth.(i)))
    after;
  Printf.printf
    "scenario 2 (kill 1/3 mid-batch): ok — %d/%d degraded-but-exact, \
     snapshot stable\n%!"
    !degraded_total (Array.length queries)

(* ----- 3. zero restart budget => quarantine -------------------------- *)

let () =
  let cfg =
    {
      base_cfg with
      Router.shards = 2;
      supervisor = { Supervisor.default_config with Supervisor.max_restarts = 0 };
      chaos = [ (0, Fault_injector.chaos ~after_frames:1 Fault_injector.Kill) ];
    }
  in
  let router = Router.create cfg in
  let sup = Router.supervisor router in
  check "quarantine: budget 0 means no second chance"
    (Supervisor.state sup 0 = Supervisor.Quarantined);
  let answers = Router.query_batch router queries in
  Array.iteri
    (fun i (a : Router.answer) ->
      let u, v = queries.(i) in
      let owner = Partition.owner_of_pair Partition.Range ~shards:2 ~n u v in
      check "quarantine: still exact everywhere" (a.Router.dist = truth.(i));
      check "quarantine: degradation tracks ownership"
        (a.Router.degraded = (owner = 0)))
    answers;
  let snap = Router.merged_snapshot router in
  check "quarantine: gauge exported"
    (Metrics.find_counter snap "router.queries" <> None
    && Metrics.find_counter snap "shard0.worker.queries" = None);
  Router.shutdown router;
  Printf.printf "scenario 3 (quarantine at budget 0): ok\n%!"

(* ----- 4. exec-mode workers through the real CLI --------------------- *)

let cli =
  if Array.length Sys.argv < 2 then
    fail "usage: %s <path-to-hubhard-cli>" Sys.argv.(0)
  else Sys.argv.(1)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let graph_file, labels_file =
  let gf = Filename.temp_file "shard_smoke" ".graph"
  and lf = Filename.temp_file "shard_smoke" ".labels" in
  write_file gf (Graph_io.to_string graph);
  write_file lf (Hub_io.to_string labels);
  (gf, lf)

let () =
  let spawn =
    Router.Exec
      (fun ~shard ->
        [|
          cli; "serve"; "worker"; "--graph-file"; graph_file; "--labels-file";
          labels_file; "--shards"; "2"; "--shard"; string_of_int shard;
          "--partition"; "hash"; "--clock-step"; "1000";
        |])
  in
  let router =
    Router.create
      { base_cfg with Router.shards = 2; partition = Partition.Hash; spawn }
  in
  let some = Array.sub queries 0 16 in
  let answers = Router.query_batch router some in
  Array.iteri
    (fun i (a : Router.answer) ->
      check "exec: exact"
        (a.Router.dist = truth.(i) && a.Router.source = Wire.source_primary))
    answers;
  Router.shutdown router;
  Printf.printf "scenario 4 (exec-mode CLI workers): ok\n%!"

(* ----- 5. serve loop drains on SIGTERM ------------------------------- *)

let () =
  let snap_path = Filename.temp_file "shard_smoke" ".snap.json" in
  Sys.remove snap_path;
  let q_r, q_w = Unix.pipe ~cloexec:false () in
  let echo_r, echo_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      [|
        cli; "serve"; "loop"; "--graph-file"; graph_file; "--labels-file";
        labels_file; "--echo"; "--flush-every"; "0"; "--metrics-out"; snap_path;
      |]
      q_r echo_w Unix.stderr
  in
  Unix.close q_r;
  Unix.close echo_w;
  let qc = Unix.out_channel_of_descr q_w in
  let ec = Unix.in_channel_of_descr echo_r in
  output_string qc "0 1\n";
  flush qc;
  (* the echoed answer proves the loop (and its handlers) are live *)
  let echo1 = input_line ec in
  check "sigterm: echo before the signal" (String.length echo1 > 0);
  Unix.kill pid Sys.sigterm;
  (* the handler only sets a flag; one more line unblocks the read so
     the loop can notice it and drain *)
  output_string qc "1 2\n";
  flush qc;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> incr passed
  | Unix.WEXITED c -> fail "sigterm: serve loop exited %d" c
  | Unix.WSIGNALED s -> fail "sigterm: killed by signal %d (no graceful drain)" s
  | Unix.WSTOPPED _ -> fail "sigterm: stopped");
  close_out qc;
  close_in ec;
  check "sigterm: final snapshot written" (Sys.file_exists snap_path);
  check "sigterm: no dangling .tmp — atomic rename completed"
    (not (Sys.file_exists (snap_path ^ ".tmp")));
  let ic = open_in_bin snap_path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains sub =
    let sn = String.length sub and bn = String.length body in
    let rec go i = i + sn <= bn && (String.sub body i sn = sub || go (i + 1)) in
    go 0
  in
  check "sigterm: snapshot is complete JSON"
    (String.length body > 2
    && body.[0] = '{'
    && String.sub body (String.length body - 2) 2 = "}\n");
  check "sigterm: marked final" (contains "\"final\": true");
  check "sigterm: drain reason recorded" (contains "serve_loop.drain");
  Printf.printf "scenario 5 (serve loop SIGTERM drain): ok\n%!";
  Sys.remove graph_file;
  Sys.remove labels_file;
  Sys.remove snap_path;
  Printf.printf "shard-smoke: all scenarios passed (%d checks)\n%!" !passed
