(* Shared helpers for the test suites. Random-structure generators
   live in Gen (test/gen.ml). *)

let rng () = Random.State.make [| 0xC0FFEE |]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Round a flat store through a temp HUBFLAT1 file into the zero-copy
   mmap view. The file is unlinked immediately — POSIX keeps mapped
   pages alive — so qcheck loops never leak temp files. *)
let mmap_of_flat ?cache_slots ?deep flat =
  let path = Filename.temp_file "hubhard_mmap" ".bin" in
  let oc = open_out_bin path in
  output_string oc (Repro_hub.Hub_io.flat_to_bytes flat);
  close_out oc;
  let res = Repro_hub.Mmap_hub.load_res ?cache_slots ?deep path in
  Sys.remove path;
  match res with
  | Ok store -> store
  | Error e -> Alcotest.failf "mmap_of_flat: %s" (Repro_hub.Mmap_hub.error_to_string e)

(* Same round trip for the compressed HUBFLAT2 store's zero-copy path. *)
let compact_map_of_flat ?cache_slots ?deep ?block flat =
  let path = Filename.temp_file "hubhard_compact" ".bin" in
  let oc = open_out_bin path in
  output_string oc (Repro_hub.Compact_hub.to_bytes ?block flat);
  close_out oc;
  let res = Repro_hub.Compact_hub.load_res ?cache_slots ?deep path in
  Sys.remove path;
  match res with
  | Ok store -> store
  | Error e ->
      Alcotest.failf "compact_map_of_flat: %s"
        (Repro_hub.Compact_hub.error_to_string e)

(* The heap decode of the same bytes (no file involved). *)
let compact_of_flat ?cache_slots ?deep ?block flat =
  match
    Repro_hub.Compact_hub.of_bytes_res ?cache_slots ?deep
      (Repro_hub.Compact_hub.to_bytes ?block flat)
  with
  | Ok store -> store
  | Error e ->
      Alcotest.failf "compact_of_flat: %s"
        (Repro_hub.Compact_hub.error_to_string e)
