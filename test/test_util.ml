(* Shared helpers for the test suites. Random-structure generators
   live in Gen (test/gen.ml). *)

let rng () = Random.State.make [| 0xC0FFEE |]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
