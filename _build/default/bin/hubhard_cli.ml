(* Command-line driver for the reproduction: run experiments, check the
   paper's lemmas on chosen parameters, build labelings over generated
   graphs, and exercise the Sum-Index protocol. *)

open Cmdliner
open Repro_graph
open Repro_hub
open Repro_core

(* ---------------------------------------------------------------- *)
(* shared arguments                                                   *)

let seed_arg =
  let doc = "Random seed (all commands are deterministic given the seed)." in
  Arg.(value & opt int 20190721 & info [ "seed" ] ~docv:"SEED" ~doc)

let b_arg =
  let doc = "Side-length parameter b (s = 2^b)." in
  Arg.(value & opt int 2 & info [ "b" ] ~docv:"B" ~doc)

let l_arg =
  let doc = "Level parameter l." in
  Arg.(value & opt int 1 & info [ "l" ] ~docv:"L" ~doc)

let rng_of seed = Random.State.make [| seed |]

(* ---------------------------------------------------------------- *)
(* exp                                                                *)

let exp_cmd =
  let id =
    let doc =
      "Experiment id (E-FIG1, E-THM21, E-THM11, E-THM41, E-THM16, E-RS, \
       E-BASE, E-ORACLE, E-ABL, E-HWY) or 'all'."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id =
    if String.lowercase_ascii id = "all" then begin
      Repro_experiments.Experiments.run_all ();
      `Ok ()
    end
    else
      match Repro_experiments.Experiments.find id with
      | Some f ->
          f ();
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; known ids: %s" id
                (String.concat ", "
                   (List.map
                      (fun (i, _, _) -> i)
                      Repro_experiments.Experiments.all)) )
  in
  let doc = "Run a reproduction experiment (or all of them)." in
  Cmd.v (Cmd.info "exp" ~doc) Term.(ret (const run $ id))

(* ---------------------------------------------------------------- *)
(* lemma                                                              *)

let lemma_cmd =
  let gadget =
    let doc = "Also check the unweighted degree-3 gadget G_{b,l} (slower)." in
    Arg.(value & flag & info [ "gadget" ] ~doc)
  in
  let run b l with_gadget =
    let grid = Grid_graph.create ~b ~l () in
    let report name (c : Lower_bound.lemma_check) =
      Printf.printf
        "%s: %d valid pairs; failures: uniqueness=%d midpoint=%d distance=%d\n"
        name c.Lower_bound.pairs_checked c.Lower_bound.unique_failures
        c.Lower_bound.midpoint_failures c.Lower_bound.distance_failures
    in
    Printf.printf "H_{%d,%d}: %d vertices, %d edges, A=%d\n" b l
      (Grid_graph.n grid)
      (Wgraph.m grid.Grid_graph.graph)
      grid.Grid_graph.a_weight;
    report "Lemma 2.2 on H" (Lower_bound.check_lemma22_grid grid);
    if with_gadget then begin
      let gadget = Degree_gadget.build grid in
      Printf.printf "G_{%d,%d}: %d vertices, max degree %d (bound %d)\n" b l
        (Degree_gadget.n gadget)
        (Graph.max_degree gadget.Degree_gadget.graph)
        (Degree_gadget.theorem21_node_bound gadget);
      report "Lemma 2.2 on G" (Lower_bound.check_lemma22_gadget gadget);
      Printf.printf "counting bound s^l(s/2)^l = %d; certified avg-hub LB = %g\n"
        (Lower_bound.counting_bound grid)
        (Lower_bound.avg_hub_size_lower_bound_measured gadget)
    end
  in
  let doc = "Exhaustively verify Lemma 2.2 on H_{b,l} (and optionally G_{b,l})." in
  Cmd.v (Cmd.info "lemma" ~doc) Term.(const run $ b_arg $ l_arg $ gadget)

(* ---------------------------------------------------------------- *)
(* label                                                              *)

let graph_of_kind rng kind n =
  match kind with
  | "path" -> Generators.path n
  | "cycle" -> Generators.cycle n
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Generators.grid ~rows:side ~cols:side
  | "tree" -> Generators.random_tree rng n
  | "sparse" -> Generators.random_connected rng ~n ~m:(2 * n)
  | "deg3" -> Generators.random_bounded_degree rng ~n ~d:3
  | "road" ->
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      Generators.grid_with_shortcuts rng ~rows:side ~cols:side
        ~shortcuts:(side * 2)
  | other -> invalid_arg (Printf.sprintf "unknown graph kind %S" other)

let label_cmd =
  let kind =
    let doc = "Graph kind: path, cycle, grid, tree, sparse, deg3, road." in
    Arg.(value & opt string "sparse" & info [ "graph" ] ~docv:"KIND" ~doc)
  in
  let n =
    let doc = "Number of vertices (approximate for grid/road)." in
    Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc)
  in
  let scheme =
    let doc =
      "Labeling scheme: pll, greedy, randhit, rshub, rshub-sparse, tree, sep, \
       approx (additive error <= 2)."
    in
    Arg.(value & opt string "pll" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let d =
    let doc = "Threshold parameter D for randhit / rshub." in
    Arg.(value & opt int 6 & info [ "d" ] ~docv:"D" ~doc)
  in
  let verify =
    let doc = "Exhaustively verify the labeling is an exact cover." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run kind n scheme d verify seed =
    let rng = rng_of seed in
    match
      let g = graph_of_kind rng kind n in
      let labels =
        match scheme with
        | "pll" -> Pll.build g
        | "greedy" -> Greedy_landmark.build g
        | "randhit" -> fst (Random_hitting.build ~rng ~d g)
        | "rshub" -> fst (Rs_hub.build ~rng ~d g)
        | "rshub-sparse" -> fst (Rs_hub.build_sparse ~rng ~d g)
        | "tree" -> Repro_labeling.Tree_label.build g
        | "sep" -> Separator_label.build g
        | "approx" -> (Approx_hub.build g).Approx_hub.labels
        | other -> invalid_arg (Printf.sprintf "unknown scheme %S" other)
      in
      (g, labels)
    with
    | g, labels ->
        Printf.printf "graph: n=%d m=%d maxdeg=%d\n" (Graph.n g) (Graph.m g)
          (Graph.max_degree g);
        print_endline (Hub_stats.report labels);
        if verify then
          Printf.printf "exact cover: %b\n" (Cover.verify g labels);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc = "Build a hub labeling over a generated graph and report sizes." in
  Cmd.v
    (Cmd.info "label" ~doc)
    Term.(ret (const run $ kind $ n $ scheme $ d $ verify $ seed_arg))

(* ---------------------------------------------------------------- *)
(* sumindex                                                           *)

let sumindex_cmd =
  let string_arg =
    let doc =
      "Shared bit string (e.g. 0110). Must have length (2^(b-1))^l; random \
       if omitted."
    in
    Arg.(value & opt (some string) None & info [ "string" ] ~docv:"BITS" ~doc)
  in
  let run b l s_opt seed =
    match Si_reduction.params ~b ~l with
    | p ->
        let m = p.Si_reduction.m in
        let s =
          match s_opt with
          | None -> Sum_index.random_instance (rng_of seed) m
          | Some str ->
              if String.length str <> m then
                invalid_arg
                  (Printf.sprintf "string must have length m = %d" m)
              else Array.init m (fun i -> str.[i] = '1')
        in
        Printf.printf "Sum-Index universe m = %d, string = %s\n" m
          (String.concat ""
             (List.map (fun b -> if b then "1" else "0") (Array.to_list s)));
        let proto = Si_reduction.protocol p in
        let ok = Sum_index.correct_on proto s in
        let ma, mb = Sum_index.max_message_bits proto s in
        let tr = Sum_index.trivial ~n:m in
        let ta, tb = Sum_index.max_message_bits tr s in
        Printf.printf
          "Theorem 1.6 protocol: correct on all %d index pairs: %b\n" (m * m)
          ok;
        Printf.printf "message bits: alice=%d bob=%d (trivial: %d+%d)\n" ma mb
          ta tb;
        Printf.printf "SUMINDEX lower bound sqrt(m) = %.2f bits\n"
          (Sum_index.sqrt_lower_bound_bits m);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc = "Run the Theorem 1.6 Sum-Index protocol end to end." in
  Cmd.v
    (Cmd.info "sumindex" ~doc)
    Term.(ret (const run $ b_arg $ l_arg $ string_arg $ seed_arg))

(* ---------------------------------------------------------------- *)
(* gen                                                                *)

let gen_cmd =
  let kind =
    let doc = "Graph kind: path, cycle, grid, tree, sparse, deg3, road." in
    Arg.(value & pos 0 string "sparse" & info [] ~docv:"KIND" ~doc)
  in
  let n =
    let doc = "Number of vertices." in
    Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run kind n seed =
    match graph_of_kind (rng_of seed) kind n with
    | g ->
        print_string (Graph_io.to_string g);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc = "Generate a graph and print it in edge-list format." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(ret (const run $ kind $ n $ seed_arg))

(* ---------------------------------------------------------------- *)
(* check                                                              *)

let check_cmd =
  let run seed =
    let verdicts = Theorems.check_all ~seed in
    List.iter
      (fun vd -> Format.printf "%a@." Theorems.pp_verdict vd)
      verdicts;
    let failures =
      List.length (List.filter (fun vd -> not vd.Theorems.holds) verdicts)
    in
    if failures = 0 then begin
      Printf.printf "all %d theorem checks passed\n" (List.length verdicts);
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d theorem checks FAILED" failures)
  in
  let doc = "Run the consolidated theorem-certificate battery." in
  Cmd.v (Cmd.info "check" ~doc) Term.(ret (const run $ seed_arg))

(* ---------------------------------------------------------------- *)

let default =
  let doc =
    "Reproduction of 'Hardness of exact distance queries in sparse graphs \
     through hub labeling' (PODC 2019)."
  in
  let info = Cmd.info "hubhard" ~version:"1.0.0" ~doc in
  Cmd.group info [ exp_cmd; lemma_cmd; label_cmd; sumindex_cmd; gen_cmd; check_cmd ]

let () = exit (Cmd.eval default)
