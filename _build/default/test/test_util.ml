(* Shared helpers for the test suites. *)

let rng () = Random.State.make [| 0xC0FFEE |]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* A generator of small random connected graphs: (n, m, seed). *)
let small_connected_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let max_m = n * (n - 1) / 2 in
    let* m = int_range (n - 1) (min max_m (3 * n)) in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let build_connected (n, m, seed) =
  let rng = Random.State.make [| seed |] in
  Repro_graph.Generators.random_connected rng ~n ~m

(* Any simple graph, possibly disconnected. *)
let small_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 1 30 in
    let max_m = n * (n - 1) / 2 in
    let* m = int_range 0 (min max_m (2 * n)) in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let build_graph (n, m, seed) =
  let rng = Random.State.make [| seed |] in
  Repro_graph.Generators.gnm rng ~n ~m
