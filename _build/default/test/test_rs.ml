(* Tests for the Ruzsa–Szemerédi substrate: AP-free sets, Behrend
   construction, RS graphs and induced-matching verification. *)

open Repro_rs
open Repro_graph

let test_ap_free_detects () =
  Test_util.check_bool "0 1 2 has AP" false (Ap_free.is_ap_free [ 0; 1; 2 ]);
  Test_util.check_bool "0 1 3 is free" true (Ap_free.is_ap_free [ 0; 1; 3 ]);
  Test_util.check_bool "empty" true (Ap_free.is_ap_free []);
  Test_util.check_bool "singleton" true (Ap_free.is_ap_free [ 5 ]);
  Test_util.check_bool "duplicates ignored" true (Ap_free.is_ap_free [ 2; 2 ]);
  Test_util.check_bool "2 4 6" false (Ap_free.is_ap_free [ 2; 6; 4 ])

let test_greedy_equals_base3 () =
  for n = 1 to 200 do
    if Ap_free.greedy n <> Ap_free.no_two_base3 n then
      Alcotest.failf "greedy <> base3 at n=%d" n
  done

let greedy_is_ap_free =
  Test_util.qcheck "greedy output is AP-free" QCheck2.Gen.(int_range 1 300)
    (fun n -> Ap_free.is_ap_free (Ap_free.greedy n))

let test_maximum_exhaustive () =
  (* known maximum AP-free subset sizes of [0..n-1] (OEIS A065825
     inverse): r(9) = 5, e.g. {0,1,3,7,8}. *)
  Test_util.check_int "n=9 max" 5 (List.length (Ap_free.maximum_exhaustive 9));
  Test_util.check_int "n=5 max" 4 (List.length (Ap_free.maximum_exhaustive 5));
  Test_util.check_bool "result AP-free" true
    (Ap_free.is_ap_free (Ap_free.maximum_exhaustive 14))

let exhaustive_beats_greedy =
  Test_util.qcheck "exhaustive maximum >= greedy" ~count:20
    QCheck2.Gen.(int_range 1 25)
    (fun n ->
      List.length (Ap_free.maximum_exhaustive n)
      >= List.length (Ap_free.greedy n))

let behrend_is_ap_free =
  Test_util.qcheck "Behrend sets are AP-free" ~count:25
    QCheck2.Gen.(int_range 4 3000)
    (fun n ->
      let s = Behrend.construct n in
      List.for_all (fun x -> 0 <= x && x < n) s && Ap_free.is_ap_free s)

let test_behrend_nontrivial_density () =
  let s = Behrend.best_size 1000 in
  Test_util.check_bool "at least 40 elements at n=1000" true (s >= 40)

let test_behrend_series () =
  let series = Behrend.density_series [ 10; 100 ] in
  Test_util.check_int "two entries" 2 (List.length series);
  List.iter
    (fun (n, size, d) ->
      Test_util.check_bool "density consistent" true
        (abs_float (d -. (float_of_int size /. float_of_int n)) < 1e-9))
    series

let test_induced_matching_checks () =
  let g = Generators.path 4 in
  (* edges (0,1),(1,2),(2,3); {(0,1),(2,3)} is a matching but NOT
     induced: 1-2 is an edge between endpoints *)
  Test_util.check_bool "matching yes" true
    (Induced_matching.is_matching [ (0, 1); (2, 3) ]);
  Test_util.check_bool "induced no" false
    (Induced_matching.is_induced g [ (0, 1); (2, 3) ]);
  Test_util.check_bool "single edge induced" true
    (Induced_matching.is_induced g [ (1, 2) ]);
  let p5 = Generators.path 6 in
  Test_util.check_bool "far apart induced" true
    (Induced_matching.is_induced p5 [ (0, 1); (3, 4) ])

let test_partition_checks () =
  let g = Generators.path 4 in
  Test_util.check_bool "full partition" true
    (Induced_matching.is_partition g [ [ (0, 1); (2, 3) ]; [ (1, 2) ] ]);
  Test_util.check_bool "missing edge" false
    (Induced_matching.is_partition g [ [ (0, 1) ]; [ (1, 2) ] ]);
  Test_util.check_bool "duplicate edge" false
    (Induced_matching.is_partition g [ [ (0, 1) ]; [ (1, 0); (2, 3) ]; [ (1, 2) ] ])

let test_rs_graph_small () =
  let t = Rs_graph.build ~c:3 ~d:3 in
  Test_util.check_bool "has edges" true (Rs_graph.edge_count t > 0);
  Test_util.check_bool "is Ruzsa–Szemerédi (Definition 1.3)" true
    (Induced_matching.is_ruzsa_szemeredi t.Rs_graph.graph t.Rs_graph.matchings)

let rs_graph_always_rs =
  Test_util.qcheck "AMS sphere construction yields induced-matching partitions"
    ~count:8
    QCheck2.Gen.(pair (int_range 2 4) (int_range 2 4))
    (fun (c, d) ->
      match Rs_graph.build ~c ~d with
      | t ->
          (* the partition-into-induced-matchings property always
             holds; the Definition 1.3 count condition (<= n
             matchings) additionally holds once the shell is large
             enough — tested separately on such instances *)
          Induced_matching.is_partition t.Rs_graph.graph t.Rs_graph.matchings
          && List.for_all
               (Induced_matching.is_induced t.Rs_graph.graph)
               t.Rs_graph.matchings
      | exception Invalid_argument _ -> true (* degenerate shell: fine *))

let test_rs_definition13_on_large_shells () =
  List.iter
    (fun (c, d) ->
      let t = Rs_graph.build ~c ~d in
      Test_util.check_bool "Definition 1.3 holds" true
        (Induced_matching.is_ruzsa_szemeredi t.Rs_graph.graph
           t.Rs_graph.matchings))
    [ (3, 3); (3, 4); (4, 3); (4, 4); (5, 4) ]

let test_rs_points_on_shell () =
  let t = Rs_graph.build ~c:4 ~d:3 in
  Array.iter
    (fun p ->
      let norm = Array.fold_left (fun acc x -> acc + (x * x)) 0 p in
      Test_util.check_int "norm = rho" t.Rs_graph.rho norm)
    t.Rs_graph.points

let test_rs_bounds_shapes () =
  Test_util.check_int "log* 2 = 1" 1 (Rs_bounds.log_star 2);
  Test_util.check_int "log* 16 = 3" 3 (Rs_bounds.log_star 16);
  Test_util.check_int "log* 65536 = 4" 4 (Rs_bounds.log_star 65536);
  Test_util.check_bool "fox <= behrend for large n" true
    (Rs_bounds.fox_lower 1_000_000 <= Rs_bounds.behrend_upper 1_000_000);
  Test_util.check_bool "hub lower bound below n" true
    (Rs_bounds.hub_lower_bound_shape 1000 < 1000.0);
  Test_util.check_bool "upper bound shape positive" true
    (Rs_bounds.hub_upper_bound_shape ~c:7.0 1000 > 0.0)

let suite =
  [
    Alcotest.test_case "AP detection" `Quick test_ap_free_detects;
    Alcotest.test_case "greedy = no-2-base-3" `Quick test_greedy_equals_base3;
    greedy_is_ap_free;
    Alcotest.test_case "exhaustive maximum" `Quick test_maximum_exhaustive;
    exhaustive_beats_greedy;
    behrend_is_ap_free;
    Alcotest.test_case "Behrend density" `Quick test_behrend_nontrivial_density;
    Alcotest.test_case "Behrend series" `Quick test_behrend_series;
    Alcotest.test_case "induced matching checks" `Quick
      test_induced_matching_checks;
    Alcotest.test_case "partition checks" `Quick test_partition_checks;
    Alcotest.test_case "RS graph small" `Quick test_rs_graph_small;
    rs_graph_always_rs;
    Alcotest.test_case "Definition 1.3 on large shells" `Quick
      test_rs_definition13_on_large_shells;
    Alcotest.test_case "RS shell norms" `Quick test_rs_points_on_shell;
    Alcotest.test_case "RS bound shapes" `Quick test_rs_bounds_shapes;
  ]
