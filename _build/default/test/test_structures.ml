(* Unit and property tests for Pqueue, Bitset, Union_find. *)

open Repro_graph

let test_pqueue_basic () =
  let h = Pqueue.create 10 in
  Test_util.check_bool "empty" true (Pqueue.is_empty h);
  Pqueue.insert h 3 30;
  Pqueue.insert h 1 10;
  Pqueue.insert h 2 20;
  Test_util.check_int "size" 3 (Pqueue.size h);
  Test_util.check_bool "mem 1" true (Pqueue.mem h 1);
  Test_util.check_bool "mem 5" false (Pqueue.mem h 5);
  let v, k = Pqueue.pop_min h in
  Test_util.check_int "min vertex" 1 v;
  Test_util.check_int "min key" 10 k;
  Test_util.check_int "size after pop" 2 (Pqueue.size h)

let test_pqueue_decrease () =
  let h = Pqueue.create 5 in
  Pqueue.insert h 0 100;
  Pqueue.insert h 1 50;
  Pqueue.decrease_key h 0 10;
  let v, k = Pqueue.pop_min h in
  Test_util.check_int "decreased wins" 0 v;
  Test_util.check_int "new key" 10 k

let test_pqueue_insert_or_decrease () =
  let h = Pqueue.create 5 in
  Pqueue.insert_or_decrease h 2 7;
  Pqueue.insert_or_decrease h 2 3;
  Pqueue.insert_or_decrease h 2 9 (* no-op: larger *);
  Test_util.check_int "key" 3 (Pqueue.key h 2)

let test_pqueue_errors () =
  let h = Pqueue.create 3 in
  Alcotest.check_raises "pop empty" (Invalid_argument "Pqueue.pop_min: empty heap")
    (fun () -> ignore (Pqueue.pop_min h));
  Pqueue.insert h 0 5;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Pqueue.insert: vertex already present") (fun () ->
      Pqueue.insert h 0 1);
  Alcotest.check_raises "key increase"
    (Invalid_argument "Pqueue.decrease_key: key increase") (fun () ->
      Pqueue.decrease_key h 0 100)

let pqueue_sorts =
  Test_util.qcheck "pqueue pops in sorted key order"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 1000))
    (fun keys ->
      let n = List.length keys in
      let h = Pqueue.create n in
      List.iteri (fun i k -> Pqueue.insert h i k) keys;
      let popped = ref [] in
      while not (Pqueue.is_empty h) do
        popped := snd (Pqueue.pop_min h) :: !popped
      done;
      List.rev !popped = List.sort compare keys)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Test_util.check_int "empty cardinal" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 7;
  Bitset.add s 63;
  Bitset.add s 99;
  Test_util.check_bool "mem 7" true (Bitset.mem s 7);
  Test_util.check_bool "mem 8" false (Bitset.mem s 8);
  Test_util.check_int "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 7;
  Test_util.check_bool "removed" false (Bitset.mem s 7);
  Test_util.check_int "to_list" 3 (List.length (Bitset.to_list s));
  Alcotest.(check (list int)) "sorted members" [ 0; 63; 99 ] (Bitset.to_list s)

let test_bitset_ops () =
  let a = Bitset.of_list 20 [ 1; 3; 5 ] in
  let b = Bitset.of_list 20 [ 2; 4; 5 ] in
  Test_util.check_bool "inter exists" true (Bitset.inter_exists a b);
  let c = Bitset.of_list 20 [ 2; 4 ] in
  Test_util.check_bool "inter empty" false (Bitset.inter_exists a c);
  let d = Bitset.copy a in
  Bitset.union_into d b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ] (Bitset.to_list d);
  Bitset.clear d;
  Test_util.check_int "cleared" 0 (Bitset.cardinal d)

let bitset_roundtrip =
  Test_util.qcheck "bitset of_list/to_list roundtrip"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 199))
    (fun xs ->
      let sorted = List.sort_uniq compare xs in
      Bitset.to_list (Bitset.of_list 200 xs) = sorted)

let test_union_find () =
  let u = Union_find.create 6 in
  Test_util.check_int "initial count" 6 (Union_find.count u);
  Test_util.check_bool "union 0 1" true (Union_find.union u 0 1);
  Test_util.check_bool "union 1 2" true (Union_find.union u 1 2);
  Test_util.check_bool "re-union" false (Union_find.union u 0 2);
  Test_util.check_bool "same 0 2" true (Union_find.same u 0 2);
  Test_util.check_bool "not same 0 3" false (Union_find.same u 0 3);
  Test_util.check_int "count" 4 (Union_find.count u)

let union_find_transitivity =
  Test_util.qcheck "union-find transitive closure matches naive"
    QCheck2.Gen.(
      let* n = int_range 2 30 in
      let* pairs =
        list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, pairs))
    (fun (n, pairs) ->
      let u = Union_find.create n in
      List.iter (fun (a, b) -> ignore (Union_find.union u a b)) pairs;
      (* naive closure via repeated relabeling *)
      let comp = Array.init n (fun i -> i) in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let ca = comp.(a) and cb = comp.(b) in
            if ca <> cb then begin
              let lo = min ca cb in
              Array.iteri (fun i c -> if c = max ca cb then comp.(i) <- lo) comp;
              changed := true
            end)
          pairs
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Union_find.same u a b <> (comp.(a) = comp.(b)) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "pqueue basic" `Quick test_pqueue_basic;
    Alcotest.test_case "pqueue decrease_key" `Quick test_pqueue_decrease;
    Alcotest.test_case "pqueue insert_or_decrease" `Quick
      test_pqueue_insert_or_decrease;
    Alcotest.test_case "pqueue errors" `Quick test_pqueue_errors;
    pqueue_sorts;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset set ops" `Quick test_bitset_ops;
    bitset_roundtrip;
    Alcotest.test_case "union-find basic" `Quick test_union_find;
    union_find_transitivity;
  ]
