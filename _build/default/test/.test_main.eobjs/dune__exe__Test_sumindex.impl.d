test/test_sumindex.ml: Alcotest Array Grid_graph List QCheck2 Repro_core Si_reduction Sum_index Test_util
