test/test_labeling.ml: Alcotest Array Bit_io Bitvec Cover Encoder Generators Graph Hub_label List Pll QCheck2 Random Repro_graph Repro_hub Repro_labeling Test_util Traversal Tree_label
