test/test_hub2.ml: Alcotest Approx_hub Array Cover Dist Generators Graph Hub_label List Pll QCheck2 Repro_graph Repro_hub Separator_label Spc Test_util Traversal
