test/test_tz.ml: Alcotest Array Dist Format Generators Graph List Repro_core Repro_graph Test_util Theorems Traversal Tz_oracle
