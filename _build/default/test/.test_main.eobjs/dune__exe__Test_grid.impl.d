test/test_grid.ml: Alcotest Array Cover Degree_gadget Dijkstra Dist Graph Grid_graph List Lower_bound Pll Repro_core Repro_graph Repro_hub Test_util Traversal Wgraph
