test/test_matching.ml: Alcotest Bipartite Generators Hopcroft_karp Koenig List Matching_brute QCheck2 Random Repro_graph Repro_matching Test_util
