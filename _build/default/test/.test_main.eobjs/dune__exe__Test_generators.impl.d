test/test_generators.ml: Alcotest Array Dijkstra Generators Graph Graph_io List QCheck2 Random Repro_graph String Subdivide Test_util Traversal Wgraph
