test/test_rs.ml: Alcotest Ap_free Array Behrend Generators Induced_matching List QCheck2 Repro_graph Repro_rs Rs_bounds Rs_graph Test_util
