test/test_util.ml: Alcotest QCheck2 QCheck_alcotest Random Repro_graph
