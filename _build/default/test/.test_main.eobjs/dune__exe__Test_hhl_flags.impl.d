test/test_hhl_flags.ml: Alcotest Arc_flags Array Canonical_hhl Cover Dijkstra Dist Generators Graph Hub_label List Order Pll QCheck2 Random Repro_graph Repro_hub Repro_route Test_util Wgraph
