test/test_route.ml: Alcotest Array Bidirectional Contraction Dijkstra Dist Generators Graph List QCheck2 Random Repro_graph Repro_hub Repro_route Test_util Traversal Wgraph
