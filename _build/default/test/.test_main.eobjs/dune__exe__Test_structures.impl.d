test/test_structures.ml: Alcotest Array Bitset List Pqueue QCheck2 Repro_graph Test_util Union_find
