test/test_rs_hub.ml: Alcotest Cover Generators Graph Hub_label List QCheck2 Random Repro_core Repro_graph Repro_hub Rs_hub Test_util Wgraph
