test/test_extras2.ml: Alcotest Array Cover Distance_label Encoder Generators Graph Graph_ops Hub_io Hub_label List Pll QCheck2 Random Repro_graph Repro_hub Repro_labeling Test_util Traversal Wgraph
