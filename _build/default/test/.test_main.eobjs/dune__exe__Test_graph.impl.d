test/test_graph.ml: Alcotest Apsp Array Dijkstra Dist Generators Graph List Path Repro_graph Test_util Traversal Wgraph
