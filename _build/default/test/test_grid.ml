(* Tests for the Section 2 constructions: H_{b,l}, the degree-3 gadget
   G_{b,l}, Lemma 2.2 and the counting argument. *)

open Repro_graph
open Repro_hub
open Repro_core

let grid b l = Grid_graph.create ~b ~l ()

let test_grid_shape () =
  let g = grid 2 2 in
  Test_util.check_int "s" 4 g.Grid_graph.s;
  Test_util.check_int "per level" 16 g.Grid_graph.per_level;
  Test_util.check_int "n = (2l+1) s^l" 80 (Grid_graph.n g);
  Test_util.check_int "A = 3 l s^2" 96 g.Grid_graph.a_weight;
  (* every vertex on inner levels has s neighbours up and s down *)
  let w = g.Grid_graph.graph in
  Test_util.check_int "middle degree" 8
    (Wgraph.degree w (Grid_graph.middle g [| 0; 0 |]));
  Test_util.check_int "bottom degree" 4 (Wgraph.degree w (Grid_graph.bottom g [| 0; 0 |]))

let test_grid_codes () =
  let g = grid 2 2 in
  Grid_graph.iter_vectors g (fun v ->
      let c = Grid_graph.code g v in
      Alcotest.(check (array int)) "code/decode roundtrip" v (Grid_graph.decode g c));
  let level, vec = Grid_graph.coords g (Grid_graph.middle g [| 3; 1 |]) in
  Test_util.check_int "level" 2 level;
  Alcotest.(check (array int)) "vec" [| 3; 1 |] vec

let test_grid_edge_weights () =
  let g = grid 2 1 in
  let w = g.Grid_graph.graph in
  let u = Grid_graph.bottom g [| 1 |] in
  let v = Grid_graph.vertex g ~level:1 [| 3 |] in
  (* changing coordinate 0 from 1 to 3: weight A + 4 *)
  Alcotest.(check (option int)) "weight" (Some (g.Grid_graph.a_weight + 4))
    (Wgraph.weight w u v)

let test_figure1_paths () =
  (* the blue path of Figure 1: v0,(1,0) -> v4,(3,2) has length 4A+4
     through v2,(2,1); deviating midpoints cost at least 4 more *)
  let g = grid 2 2 in
  let x = [| 1; 0 |] and z = [| 3; 2 |] in
  let expected = (4 * g.Grid_graph.a_weight) + 4 in
  Test_util.check_int "closed form" expected (Grid_graph.expected_distance g x z);
  let dist = Dijkstra.distances g.Grid_graph.graph (Grid_graph.bottom g x) in
  Test_util.check_int "dijkstra agrees" expected (dist.(Grid_graph.top g z));
  (* detours: the best path avoiding the true midpoint pays at least 2
     more (Observation 3.1's robustness margin), and the figure's red
     path through v2,(1,2) costs exactly 4A+8 *)
  let dist_rev = Dijkstra.distances g.Grid_graph.graph (Grid_graph.top g z) in
  let via y =
    let mid = Grid_graph.middle g y in
    Dist.add dist.(mid) dist_rev.(mid)
  in
  let best_detour = ref Dist.inf in
  Grid_graph.iter_vectors g (fun y ->
      if y <> [| 2; 1 |] then begin
        let len = via y in
        if len < !best_detour then best_detour := len
      end);
  Test_util.check_int "best detour pays the +2 margin"
    ((4 * g.Grid_graph.a_weight) + 4 + 2)
    !best_detour;
  Test_util.check_int "red path via (1,2) is 4A+8"
    ((4 * g.Grid_graph.a_weight) + 8)
    (via [| 1; 2 |])

let test_midpoint_helpers () =
  let g = grid 2 2 in
  Alcotest.(check (array int)) "midpoint" [| 2; 1 |]
    (Grid_graph.midpoint [| 1; 0 |] [| 3; 2 |]);
  Alcotest.check_raises "odd diff"
    (Invalid_argument "Grid_graph.midpoint: odd difference") (fun () ->
      ignore (Grid_graph.midpoint [| 0; 0 |] [| 1; 0 |]));
  Test_util.check_bool "valid pair" true (Grid_graph.valid_pair g [| 1; 0 |] [| 3; 2 |]);
  Test_util.check_bool "invalid pair" false (Grid_graph.valid_pair g [| 1; 0 |] [| 2; 0 |])

let lemma22_cases = [ (1, 1); (1, 2); (2, 1); (2, 2); (3, 1) ]

let test_lemma22_grid () =
  List.iter
    (fun (b, l) ->
      let c = Lower_bound.check_lemma22_grid (grid b l) in
      if
        c.Lower_bound.unique_failures <> 0
        || c.Lower_bound.midpoint_failures <> 0
        || c.Lower_bound.distance_failures <> 0
      then Alcotest.failf "Lemma 2.2 fails on H(b=%d,l=%d)" b l;
      let expected_pairs =
        let rec ipow x e = if e = 0 then 1 else x * ipow x (e - 1) in
        let s = 1 lsl b in
        ipow s l * ipow (s / 2) l
      in
      Test_util.check_int "pair count = s^l (s/2)^l" expected_pairs
        c.Lower_bound.pairs_checked)
    lemma22_cases

let test_iter_even_vectors () =
  let g = grid 2 2 in
  let count = ref 0 in
  Grid_graph.iter_even_vectors g (fun v ->
      incr count;
      Array.iter (fun c -> Test_util.check_int "even coordinate" 0 (c land 1)) v);
  Test_util.check_int "(s/2)^l vectors" 4 !count

let test_gadget_structure () =
  let h = grid 2 1 in
  let gadget = Degree_gadget.build h in
  let g = gadget.Degree_gadget.graph in
  Test_util.check_int "max degree 3" 3 (Graph.max_degree g);
  Test_util.check_bool "connected" true (Traversal.is_connected g);
  Test_util.check_bool "within the Theorem 2.1 size bound" true
    (Graph.n g <= Degree_gadget.theorem21_node_bound gadget);
  (* anchor of a grid vertex is recoverable *)
  let v = Grid_graph.middle h [| 2 |] in
  Alcotest.(check (option int)) "is_anchor inverse" (Some v)
    (Degree_gadget.is_anchor gadget (Degree_gadget.anchor_of gadget v))

let test_gadget_distance_preservation () =
  let h = grid 2 1 in
  let gadget = Degree_gadget.build h in
  let g = gadget.Degree_gadget.graph in
  (* distances between anchors on different levels match H *)
  let ok = ref true in
  Grid_graph.iter_vectors h (fun x ->
      let src = Grid_graph.bottom h x in
      let dh = Dijkstra.distances h.Grid_graph.graph src in
      let dg = Traversal.bfs g (Degree_gadget.anchor_of gadget src) in
      Grid_graph.iter_vectors h (fun z ->
          let for_level level =
            let dst = Grid_graph.vertex h ~level z in
            if dh.(dst) <> dg.(Degree_gadget.anchor_of gadget dst) then
              ok := false
          in
          for_level 1;
          for_level 2));
  Test_util.check_bool "distance preservation" true !ok

let test_lemma22_gadget () =
  List.iter
    (fun (b, l) ->
      let gadget = Degree_gadget.build (grid b l) in
      let c = Lower_bound.check_lemma22_gadget gadget in
      if
        c.Lower_bound.unique_failures <> 0
        || c.Lower_bound.midpoint_failures <> 0
        || c.Lower_bound.distance_failures <> 0
      then Alcotest.failf "Lemma 2.2 fails on G(b=%d,l=%d)" b l)
    [ (1, 1); (2, 1); (1, 2) ]

let test_counting_bound_value () =
  Test_util.check_int "b=2 l=2" (16 * 4) (Lower_bound.counting_bound (grid 2 2));
  Test_util.check_int "b=1 l=1" 2 (Lower_bound.counting_bound (grid 1 1))

let test_counting_argument_on_pll () =
  (* the Theorem 2.1(iii) inequality on a real exact labeling *)
  let gadget = Degree_gadget.build (grid 1 1) in
  let g = gadget.Degree_gadget.graph in
  let labels = Pll.build g in
  Test_util.check_bool "PLL is exact on the gadget" true (Cover.verify g labels);
  let holds, total = Lower_bound.check_counting_argument gadget labels in
  Test_util.check_bool "closure total >= s^l (s/2)^l" true holds;
  Test_util.check_bool "total sane" true (total >= 2)

let test_midpoint_charges () =
  let grid_g = grid 1 1 in
  let gadget = Degree_gadget.build grid_g in
  let labels = Pll.build gadget.Degree_gadget.graph in
  let charges = Lower_bound.midpoint_charge_total gadget labels in
  (* every valid triple must charge its midpoint to one endpoint *)
  Test_util.check_int "all triples charged"
    (Lower_bound.counting_bound grid_g) charges

let test_avg_lower_bound_positive () =
  let gadget = Degree_gadget.build (grid 2 2) in
  Test_util.check_bool "positive" true
    (Lower_bound.avg_hub_size_lower_bound gadget > 0.0)

let test_removed_middle () =
  (* removing a middle vertex perturbs exactly the pairs whose midpoint
     it is *)
  let full = grid 2 1 in
  let removed =
    Grid_graph.create ~b:2 ~l:1 ~remove_mid:(fun v -> v.(0) = 1) ()
  in
  Test_util.check_bool "flag set" true
    (Grid_graph.is_removed removed (Grid_graph.middle removed [| 1 |]));
  Test_util.check_bool "others kept" false
    (Grid_graph.is_removed removed (Grid_graph.middle removed [| 2 |]));
  let x = [| 0 |] and z = [| 2 |] in
  (* midpoint is 1: distance must exceed the closed form *)
  let d_full = Dijkstra.distances full.Grid_graph.graph (Grid_graph.bottom full x) in
  let d_rem =
    Dijkstra.distances removed.Grid_graph.graph (Grid_graph.bottom removed x)
  in
  let expected = Grid_graph.expected_distance full x z in
  Test_util.check_int "full graph: closed form" expected
    d_full.(Grid_graph.top full z);
  Test_util.check_bool "removed: strictly longer" true
    (d_rem.(Grid_graph.top removed z) > expected);
  (* pairs with a different midpoint are unaffected *)
  let x' = [| 0 |] and z' = [| 0 |] in
  Test_util.check_int "unaffected pair" (Grid_graph.expected_distance full x' z')
    d_rem.(Grid_graph.top removed z')

let test_grid_rejects () =
  Alcotest.check_raises "b = 0" (Invalid_argument "Grid_graph.create: need b, l >= 1")
    (fun () -> ignore (Grid_graph.create ~b:0 ~l:1 ()))

let suite =
  [
    Alcotest.test_case "grid shape" `Quick test_grid_shape;
    Alcotest.test_case "grid codes" `Quick test_grid_codes;
    Alcotest.test_case "grid edge weights" `Quick test_grid_edge_weights;
    Alcotest.test_case "Figure 1 path lengths" `Quick test_figure1_paths;
    Alcotest.test_case "midpoint helpers" `Quick test_midpoint_helpers;
    Alcotest.test_case "Lemma 2.2 on H (sweep)" `Slow test_lemma22_grid;
    Alcotest.test_case "even vector iteration" `Quick test_iter_even_vectors;
    Alcotest.test_case "gadget structure" `Quick test_gadget_structure;
    Alcotest.test_case "gadget distance preservation" `Quick
      test_gadget_distance_preservation;
    Alcotest.test_case "Lemma 2.2 on G (sweep)" `Slow test_lemma22_gadget;
    Alcotest.test_case "counting bound values" `Quick test_counting_bound_value;
    Alcotest.test_case "counting argument on PLL labels" `Quick
      test_counting_argument_on_pll;
    Alcotest.test_case "midpoint charges" `Quick test_midpoint_charges;
    Alcotest.test_case "avg lower bound positive" `Quick
      test_avg_lower_bound_positive;
    Alcotest.test_case "middle-layer removal" `Quick test_removed_middle;
    Alcotest.test_case "grid rejects bad params" `Quick test_grid_rejects;
  ]
