(* Coverage tests for API corners not exercised elsewhere. *)

open Repro_graph
open Repro_hub
open Repro_rs

let test_apsp_weighted () =
  let w = Wgraph.of_edges ~n:4 [ (0, 1, 2); (1, 2, 3); (2, 3, 1) ] in
  let apsp = Apsp.of_wgraph w in
  Test_util.check_int "n" 4 (Apsp.n apsp);
  Test_util.check_int "0-3" 6 (Apsp.dist apsp 0 3);
  Test_util.check_int "max finite" 6 (Apsp.max_finite apsp);
  Test_util.check_bool "triangle" true (Apsp.check_triangle_inequality apsp);
  Test_util.check_int "row access" 2 (Apsp.row apsp 0).(1)

let test_dfs_order () =
  let g = Generators.path 5 in
  let order = Traversal.dfs_order g 0 in
  Alcotest.(check (list int)) "path preorder" [ 0; 1; 2; 3; 4 ] order;
  let star = Generators.star 4 in
  Test_util.check_int "visits component" 4 (List.length (Traversal.dfs_order star 0))

let test_fold_helpers () =
  let g = Generators.star 4 in
  Test_util.check_int "fold_neighbors sum" 6
    (Graph.fold_neighbors g 0 (fun acc v -> acc + v) 0);
  let w = Wgraph.of_unweighted g in
  Test_util.check_int "wfold sum of weights" 3
    (Wgraph.fold_neighbors w 0 (fun acc _ wt -> acc + wt) 0);
  Alcotest.(check (array int)) "neighbors array" [| 1; 2; 3 |]
    (Graph.neighbors g 0)

let test_dist_pp () =
  Alcotest.(check string) "finite" "7" (Format.asprintf "%a" Dist.pp 7);
  Alcotest.(check string) "infinite" "inf" (Format.asprintf "%a" Dist.pp Dist.inf);
  Test_util.check_int "min" 3 (Dist.min 3 9)

let test_pp_printers () =
  let g = Generators.path 3 in
  Alcotest.(check string) "graph pp" "graph(n=3, m=2)"
    (Format.asprintf "%a" Graph.pp g);
  let w = Wgraph.of_unweighted g in
  Alcotest.(check string) "wgraph pp" "wgraph(n=3, m=2)"
    (Format.asprintf "%a" Wgraph.pp w);
  let labels = Pll.build g in
  Test_util.check_bool "label pp mentions n" true
    (String.length (Format.asprintf "%a" Hub_label.pp labels) > 0)

let test_gnp_bounds () =
  let rng = Test_util.rng () in
  let empty = Generators.gnp rng ~n:10 ~p:0.0 in
  Test_util.check_int "p=0" 0 (Graph.m empty);
  let full = Generators.gnp rng ~n:10 ~p:1.0 in
  Test_util.check_int "p=1" 45 (Graph.m full)

let test_random_bipartite_distinct () =
  let rng = Test_util.rng () in
  let edges = Generators.random_bipartite rng ~left:5 ~right:5 ~m:20 in
  Test_util.check_int "all distinct" 20
    (List.length (List.sort_uniq compare edges))

let test_rs_build_with () =
  let t = Rs_graph.build_with ~c:4 ~d:3 ~rho:5 ~mu:2 in
  Test_util.check_bool "has vertices" true (Graph.n t.Rs_graph.graph > 0);
  Alcotest.check_raises "mu = 0 rejected"
    (Invalid_argument "Rs_graph.build_with: need mu > 0") (fun () ->
      ignore (Rs_graph.build_with ~c:3 ~d:2 ~rho:1 ~mu:0))

let test_behrend_forced_dimension () =
  let s = Behrend.construct ~dimension:3 5000 in
  Test_util.check_bool "non-empty" true (s <> []);
  Test_util.check_bool "AP-free" true (Ap_free.is_ap_free s)

let test_order_wdegree () =
  let w = Wgraph.of_edges ~n:3 [ (0, 1, 5); (1, 2, 1) ] in
  let o = Order.by_wdegree w in
  Test_util.check_int "vertex 1 has degree 2, first" 1 o.(0)

let test_subdivide_rejects () =
  Alcotest.check_raises "zero weight path"
    (Invalid_argument "Subdivide.subdivide_edge_paths: weight < 1") (fun () ->
      ignore (Subdivide.subdivide_edge_paths ~n:2 [ (0, 1, 0) ]));
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Subdivide.split_high_degree: need k >= 1") (fun () ->
      ignore (Subdivide.split_unweighted (Generators.path 2) ~k:0))

let test_bitset_fold () =
  let s = Repro_graph.Bitset.of_list 16 [ 2; 5; 11 ] in
  Test_util.check_int "fold sum" 18
    (Repro_graph.Bitset.fold (fun i acc -> acc + i) s 0);
  Test_util.check_int "capacity" 16 (Repro_graph.Bitset.capacity s)

let test_hub_label_restrict_query () =
  let g = Generators.cycle 5 in
  let labels = Pll.build g in
  (* restricting to self-hubs only breaks distant pairs *)
  let selfish = Hub_label.restrict labels ~keep:(fun v h -> v = h) in
  Test_util.check_bool "broken" false (Cover.verify g selfish)

let test_hubhard_umbrella () =
  Test_util.check_bool "version" true
    (String.length Repro_core.Hubhard.version > 0);
  (* the umbrella aliases point to the same implementations *)
  let g = Repro_core.Hubhard.Generators.path 4 in
  let labels = Repro_core.Hubhard.Pll.build g in
  Test_util.check_int "query via umbrella" 3
    (Repro_core.Hubhard.Hub_label.query labels 0 3)

let test_experiments_registry () =
  Test_util.check_int "ten experiments" 10
    (List.length Repro_experiments.Experiments.all);
  Test_util.check_bool "find is case-insensitive" true
    (Repro_experiments.Experiments.find "e-fig1" <> None);
  Test_util.check_bool "unknown id" true
    (Repro_experiments.Experiments.find "E-NOPE" = None)

let test_grid_coords_errors () =
  let g = Repro_core.Grid_graph.create ~b:1 ~l:1 () in
  Alcotest.check_raises "bad level" (Invalid_argument "Grid_graph.vertex: level")
    (fun () -> ignore (Repro_core.Grid_graph.vertex g ~level:5 [| 0 |]));
  Alcotest.check_raises "bad coordinate"
    (Invalid_argument "Grid_graph: coordinate out of range") (fun () ->
      ignore (Repro_core.Grid_graph.code g [| 7 |]))

let suite =
  [
    Alcotest.test_case "weighted apsp" `Quick test_apsp_weighted;
    Alcotest.test_case "dfs order" `Quick test_dfs_order;
    Alcotest.test_case "fold helpers" `Quick test_fold_helpers;
    Alcotest.test_case "dist pp" `Quick test_dist_pp;
    Alcotest.test_case "pretty printers" `Quick test_pp_printers;
    Alcotest.test_case "gnp bounds" `Quick test_gnp_bounds;
    Alcotest.test_case "random bipartite distinct" `Quick
      test_random_bipartite_distinct;
    Alcotest.test_case "rs build_with" `Quick test_rs_build_with;
    Alcotest.test_case "behrend forced dimension" `Quick
      test_behrend_forced_dimension;
    Alcotest.test_case "order by wdegree" `Quick test_order_wdegree;
    Alcotest.test_case "subdivide rejects" `Quick test_subdivide_rejects;
    Alcotest.test_case "bitset fold" `Quick test_bitset_fold;
    Alcotest.test_case "restrict breaks cover" `Quick
      test_hub_label_restrict_query;
    Alcotest.test_case "umbrella module" `Quick test_hubhard_umbrella;
    Alcotest.test_case "experiments registry" `Quick test_experiments_registry;
    Alcotest.test_case "grid coordinate errors" `Quick test_grid_coords_errors;
  ]
