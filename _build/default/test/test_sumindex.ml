(* Tests for the Sum-Index problem and the Theorem 1.6 reduction. *)

open Repro_core

let test_answer () =
  let s = [| true; false; true; false |] in
  Test_util.check_bool "0+0" true (Sum_index.answer s 0 0);
  Test_util.check_bool "1+2" false (Sum_index.answer s 1 2);
  Test_util.check_bool "wraparound 3+3" true (Sum_index.answer s 3 3)

let trivial_correct =
  Test_util.qcheck "trivial protocol always correct" ~count:30
    QCheck2.Gen.(
      let* n = int_range 1 24 in
      let* bits = list_size (return n) bool in
      return (n, bits))
    (fun (n, bits) ->
      let s = Array.of_list bits in
      Sum_index.correct_on (Sum_index.trivial ~n) s)

let test_trivial_message_sizes () =
  let n = 16 in
  let s = Sum_index.random_instance (Test_util.rng ()) n in
  let ma, mb = Sum_index.max_message_bits (Sum_index.trivial ~n) s in
  Test_util.check_int "alice = n bits" n ma;
  Test_util.check_int "bob = log n bits" 4 mb

let test_bounds_shapes () =
  Test_util.check_bool "sqrt bound" true
    (abs_float (Sum_index.sqrt_lower_bound_bits 100 -. 10.0) < 1e-9);
  Test_util.check_bool "Ambainis below trivial for large n" true
    (Sum_index.ambainis_upper_bound_bits 1_000_000 < 1_000_000.0)

let test_params () =
  let p = Si_reduction.params ~b:2 ~l:2 in
  Test_util.check_int "s" 4 p.Si_reduction.s;
  Test_util.check_int "m = (s/2)^l" 4 p.Si_reduction.m;
  Alcotest.check_raises "b >= 2"
    (Invalid_argument "Si_reduction.params: need b >= 2 (s/2 >= 2)") (fun () ->
      ignore (Si_reduction.params ~b:1 ~l:1))

let test_repr () =
  let p = Si_reduction.params ~b:3 ~l:2 in
  (* base 4 digits: repr [|1; 2|] = 1 + 2*4 = 9 mod 16 *)
  Test_util.check_int "repr" 9 (Si_reduction.repr p [| 1; 2 |]);
  (* index_vector inverts repr on [0, s/2-1]^l *)
  for a = 0 to p.Si_reduction.m - 1 do
    Test_util.check_int "roundtrip" a
      (Si_reduction.repr p (Si_reduction.index_vector p a))
  done;
  (* repr also folds overflowing digits modulo m *)
  Test_util.check_int "mod fold" ((3 + (7 * 4)) mod 16)
    (Si_reduction.repr p [| 3; 7 |])

let test_graph_of_string () =
  let p = Si_reduction.params ~b:2 ~l:1 in
  let s = [| true; false |] in
  let g = Si_reduction.graph_of_string p s in
  (* kept iff S[repr x] = 1: repr [|0|] = 0 (bit true, kept),
     repr [|1|] = 1 (bit false, removed) *)
  Test_util.check_bool "x=0 kept" false
    (Grid_graph.is_removed g (Grid_graph.middle g [| 0 |]));
  Test_util.check_bool "x=1 removed" true
    (Grid_graph.is_removed g (Grid_graph.middle g [| 1 |]));
  (* repr [|2|] = 2 mod 2 = 0 -> kept; repr [|3|] = 3 mod 2 = 1 -> removed *)
  Test_util.check_bool "x=2 kept" false
    (Grid_graph.is_removed g (Grid_graph.middle g [| 2 |]))

let protocol_correct_small =
  Test_util.qcheck "Theorem 1.6 protocol exhaustively correct (b=2, l=1)"
    ~count:4
    QCheck2.Gen.(list_size (return 2) bool)
    (fun bits ->
      let p = Si_reduction.params ~b:2 ~l:1 in
      let s = Array.of_list bits in
      Sum_index.correct_on (Si_reduction.protocol p) s)

let test_protocol_correct_b2_l2 () =
  let p = Si_reduction.params ~b:2 ~l:2 in
  let rng = Test_util.rng () in
  for _ = 1 to 3 do
    let s = Sum_index.random_instance rng p.Si_reduction.m in
    Test_util.check_bool "correct" true
      (Sum_index.correct_on (Si_reduction.protocol p) s)
  done

let test_protocol_correct_b3_l1 () =
  let p = Si_reduction.params ~b:3 ~l:1 in
  let rng = Test_util.rng () in
  let s = Sum_index.random_instance rng p.Si_reduction.m in
  Test_util.check_bool "correct" true
    (Sum_index.correct_on (Si_reduction.protocol p) s)

let test_protocol_all_zero_all_one () =
  (* degenerate strings: all middle vertices removed / all kept *)
  let p = Si_reduction.params ~b:2 ~l:1 in
  let zero = [| false; false |] and one = [| true; true |] in
  Test_util.check_bool "all-zero" true
    (Sum_index.correct_on (Si_reduction.protocol p) zero);
  Test_util.check_bool "all-one" true
    (Sum_index.correct_on (Si_reduction.protocol p) one)

let test_protocol_gadget_literal () =
  (* the literal degree-3 variant: labels computed on G'_{b,l} itself *)
  let p = Si_reduction.params ~b:2 ~l:1 in
  List.iter
    (fun s ->
      Test_util.check_bool "gadget protocol correct" true
        (Sum_index.correct_on (Si_reduction.protocol_gadget p) s))
    [ [| true; false |]; [| false; false |]; [| true; true |] ]

let test_message_accounting () =
  let p = Si_reduction.params ~b:2 ~l:2 in
  let s = Sum_index.random_instance (Test_util.rng ()) p.Si_reduction.m in
  let proto = Si_reduction.protocol p in
  let ma, mb = Sum_index.max_message_bits proto s in
  Test_util.check_bool "messages non-trivial" true (ma > 0 && mb > 0);
  Test_util.check_bool "prediction is a float >= 0" true
    (Si_reduction.predicted_label_bits p >= 0.0)

let suite =
  [
    Alcotest.test_case "ground truth" `Quick test_answer;
    trivial_correct;
    Alcotest.test_case "trivial message sizes" `Quick test_trivial_message_sizes;
    Alcotest.test_case "bound shapes" `Quick test_bounds_shapes;
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "repr/index_vector" `Quick test_repr;
    Alcotest.test_case "graph_of_string removals" `Quick test_graph_of_string;
    protocol_correct_small;
    Alcotest.test_case "protocol b=2 l=2" `Slow test_protocol_correct_b2_l2;
    Alcotest.test_case "protocol b=3 l=1" `Slow test_protocol_correct_b3_l1;
    Alcotest.test_case "degenerate strings" `Quick test_protocol_all_zero_all_one;
    Alcotest.test_case "literal degree-3 protocol" `Slow
      test_protocol_gadget_literal;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
  ]
