(* Tests for Hopcroft–Karp and König cover against brute force. *)

open Repro_matching
open Repro_graph

let test_hk_simple () =
  let bg = Bipartite.create ~left:3 ~right:3 [ (0, 0); (0, 1); (1, 0); (2, 2) ] in
  let m = Hopcroft_karp.solve bg in
  Test_util.check_int "matching size" 3 m.Hopcroft_karp.size;
  Test_util.check_bool "valid" true (Hopcroft_karp.is_valid bg m);
  Test_util.check_bool "maximal" true (Hopcroft_karp.is_maximal bg m)

let test_hk_empty () =
  let bg = Bipartite.create ~left:4 ~right:0 [] in
  let m = Hopcroft_karp.solve bg in
  Test_util.check_int "empty" 0 m.Hopcroft_karp.size

let test_hk_star () =
  (* one left vertex connected to all right: matching size 1 *)
  let bg = Bipartite.create ~left:1 ~right:5 (List.init 5 (fun i -> (0, i))) in
  Test_util.check_int "star" 1 (Hopcroft_karp.solve bg).Hopcroft_karp.size

let test_koenig_simple () =
  let bg = Bipartite.create ~left:3 ~right:3 [ (0, 0); (1, 0); (2, 0); (0, 1) ] in
  let c = Koenig.minimum_vertex_cover bg in
  Test_util.check_bool "is cover" true (Koenig.is_cover bg c);
  Test_util.check_int "cover = matching size" 2 (Koenig.size c)

let test_bipartite_dedup () =
  let bg = Bipartite.create ~left:2 ~right:2 [ (0, 1); (0, 1); (1, 0) ] in
  Test_util.check_int "dedup" 2 (Bipartite.m bg)

let random_bipartite_gen =
  QCheck2.Gen.(
    let* left = int_range 1 9 in
    let* right = int_range 1 9 in
    let* m = int_range 0 (min (left * right) 20) in
    let* seed = int_range 0 1_000_000 in
    return (left, right, m, seed))

let build_bipartite (left, right, m, seed) =
  let rng = Random.State.make [| seed |] in
  Bipartite.create ~left ~right (Generators.random_bipartite rng ~left ~right ~m)

let hk_matches_brute =
  Test_util.qcheck "Hopcroft–Karp size = brute-force maximum"
    random_bipartite_gen (fun params ->
      let bg = build_bipartite params in
      (Hopcroft_karp.solve bg).Hopcroft_karp.size
      = Matching_brute.max_matching_size bg)

let hk_always_valid =
  Test_util.qcheck "Hopcroft–Karp output is a valid maximal matching"
    random_bipartite_gen (fun params ->
      let bg = build_bipartite params in
      let m = Hopcroft_karp.solve bg in
      Hopcroft_karp.is_valid bg m && Hopcroft_karp.is_maximal bg m)

let koenig_duality =
  Test_util.qcheck "König: cover size = matching size, and covers all edges"
    random_bipartite_gen (fun params ->
      let bg = build_bipartite params in
      let m = Hopcroft_karp.solve bg in
      let c = Koenig.of_matching bg m in
      Koenig.is_cover bg c && Koenig.size c = m.Hopcroft_karp.size)

let koenig_matches_brute =
  Test_util.qcheck "König cover size = brute-force minimum cover"
    QCheck2.Gen.(
      let* left = int_range 1 7 in
      let* right = int_range 1 7 in
      let* m = int_range 0 (min (left * right) 14) in
      let* seed = int_range 0 1_000_000 in
      return (left, right, m, seed))
    (fun params ->
      let bg = build_bipartite params in
      Koenig.size (Koenig.minimum_vertex_cover bg)
      = Matching_brute.min_vertex_cover_size bg)

let suite =
  [
    Alcotest.test_case "HK simple" `Quick test_hk_simple;
    Alcotest.test_case "HK empty" `Quick test_hk_empty;
    Alcotest.test_case "HK star" `Quick test_hk_star;
    Alcotest.test_case "König simple" `Quick test_koenig_simple;
    Alcotest.test_case "bipartite dedups" `Quick test_bipartite_dedup;
    hk_matches_brute;
    hk_always_valid;
    koenig_duality;
    koenig_matches_brute;
  ]
