lib/route/bidirectional.mli: Graph Repro_graph Wgraph
