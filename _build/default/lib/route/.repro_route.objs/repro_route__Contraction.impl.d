lib/route/contraction.ml: Array Dist Hashtbl List Pqueue Repro_graph Wgraph
