lib/route/bidirectional.ml: Array Dist Graph Pqueue Queue Repro_graph Wgraph
