lib/route/contraction.mli: Repro_graph Wgraph
