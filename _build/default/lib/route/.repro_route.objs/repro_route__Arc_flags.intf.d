lib/route/arc_flags.mli: Repro_graph Wgraph
