lib/route/arc_flags.ml: Array Bytes Char Dijkstra Dist Hashtbl List Pqueue Repro_graph Wgraph
