(** Contraction hierarchies [Geisberger et al.], one of the practical
    shortest-path heuristics §1.1 cites alongside hub labels ("such as
    contraction hierarchies and algorithms with arc flags").

    Preprocessing contracts vertices in importance order, inserting a
    shortcut [u-w] of weight [w(u,v) + w(v,w)] whenever removing [v]
    would otherwise break a shortest path (a bounded witness search
    decides; inconclusive searches insert the shortcut, which is always
    safe). Queries run a bidirectional Dijkstra that only relaxes edges
    going *upward* in the contraction order; the answer is the best
    meeting vertex. Exact on all pairs. *)

open Repro_graph

type t

val preprocess : ?hop_limit:int -> Wgraph.t -> t
(** Build the hierarchy. [hop_limit] bounds the witness searches
    (default 16 settled vertices per search); smaller limits build
    faster but insert more shortcuts. *)

val query : t -> int -> int -> int
(** Exact distance; {!Dist.inf} if disconnected. *)

val shortcut_count : t -> int
(** Number of shortcut edges added during preprocessing. *)

val order : t -> int array
(** The contraction order used (position = importance rank, least
    important first). *)
