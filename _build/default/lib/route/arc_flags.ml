open Repro_graph

type t = {
  graph : Wgraph.t;
  region : int array;
  k : int;
  (* arc flags, indexed by a flat arc id; arcs are the directed
     versions of each undirected edge, identified by (edge index,
     direction). We store flags per (u, v) pair in a hashtable keyed by
     u * n + v, each a Bytes bitmask over regions. *)
  flags : (int, Bytes.t) Hashtbl.t;
  n : int;
}

let flag_key t u v = (u * t.n) + v

let get_flag t u v r =
  match Hashtbl.find_opt t.flags (flag_key t u v) with
  | None -> false
  | Some mask -> Char.code (Bytes.get mask (r lsr 3)) land (1 lsl (r land 7)) <> 0

let set_flag t u v r =
  let key = flag_key t u v in
  let mask =
    match Hashtbl.find_opt t.flags key with
    | Some m -> m
    | None ->
        let m = Bytes.make ((t.k + 7) / 8) '\000' in
        Hashtbl.replace t.flags key m;
        m
  in
  Bytes.set mask (r lsr 3)
    (Char.chr (Char.code (Bytes.get mask (r lsr 3)) lor (1 lsl (r land 7))))

(* BFS-Voronoi partition around k spread seeds (farthest-point style:
   first seed 0, then repeatedly the vertex farthest from all seeds). *)
let partition g k =
  let n = Wgraph.n g in
  let best_dist = Array.make n Dist.inf in
  let region = Array.make n (-1) in
  let seeds = ref [] in
  let assign seed idx =
    let d = Dijkstra.distances g seed in
    for v = 0 to n - 1 do
      if d.(v) < best_dist.(v) then begin
        best_dist.(v) <- d.(v);
        region.(v) <- idx
      end
    done
  in
  let next_seed () =
    let best = ref 0 in
    for v = 0 to n - 1 do
      if best_dist.(v) > best_dist.(!best) then best := v
    done;
    !best
  in
  for idx = 0 to k - 1 do
    let s = if idx = 0 then 0 else next_seed () in
    seeds := s :: !seeds;
    assign s idx
  done;
  (* unreachable-from-everything vertices get their own assignment *)
  for v = 0 to n - 1 do
    if region.(v) = -1 then region.(v) <- 0
  done;
  region

let preprocess ?regions g =
  let n = Wgraph.n g in
  let k =
    match regions with
    | Some k -> max 1 k
    | None -> max 2 (int_of_float (sqrt (float_of_int (max n 4)) /. 2.0))
  in
  let region = partition g k in
  let t = { graph = g; region; k; flags = Hashtbl.create (4 * Wgraph.m g); n } in
  (* intra-region arcs are always flagged for their own region *)
  List.iter
    (fun (u, v, _) ->
      set_flag t u v region.(v);
      set_flag t v u region.(u);
      if region.(u) = region.(v) then begin
        set_flag t u v region.(u);
        set_flag t v u region.(v)
      end)
    (Wgraph.edges g);
  (* boundary vertices of each region: endpoints of inter-region edges *)
  let boundary = Hashtbl.create 64 in
  List.iter
    (fun (u, v, _) ->
      if region.(u) <> region.(v) then begin
        Hashtbl.replace boundary u ();
        Hashtbl.replace boundary v ()
      end)
    (Wgraph.edges g);
  (* backward Dijkstra from each boundary vertex b: arc (u, v) lies on
     a shortest path from u to b iff d(v) + w = d(u); flag it for b's
     region *)
  Hashtbl.iter
    (fun b () ->
      let d = Dijkstra.distances g b in
      let r = region.(b) in
      List.iter
        (fun (u, v, w) ->
          if Dist.is_finite d.(u) && Dist.is_finite d.(v) then begin
            if d.(v) + w = d.(u) then set_flag t u v r;
            if d.(u) + w = d.(v) then set_flag t v u r
          end)
        (Wgraph.edges g))
    boundary;
  t

let query_settling t s target =
  if s < 0 || s >= t.n || target < 0 || target >= t.n then
    invalid_arg "Arc_flags.query";
  let r = t.region.(target) in
  let dist = Array.make t.n Dist.inf in
  let pq = Pqueue.create t.n in
  dist.(s) <- 0;
  Pqueue.insert pq s 0;
  let settled = ref 0 in
  let answer = ref Dist.inf in
  (try
     while not (Pqueue.is_empty pq) do
       let u, du = Pqueue.pop_min pq in
       incr settled;
       if u = target then begin
         answer := du;
         raise Exit
       end;
       Wgraph.iter_neighbors t.graph u (fun v w ->
           if get_flag t u v r then begin
             let d = du + w in
             if d < dist.(v) then begin
               dist.(v) <- d;
               Pqueue.insert_or_decrease pq v d
             end
           end)
     done
   with Exit -> ());
  (!answer, !settled)

let query t s target = fst (query_settling t s target)
let region_of t v = t.region.(v)
let region_count t = t.k

let settled_ratio t s target =
  let _, settled = query_settling t s target in
  float_of_int settled /. float_of_int (max 1 t.n)
