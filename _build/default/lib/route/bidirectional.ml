open Repro_graph

(* Termination uses the classical criterion: once the smallest key
   still in either queue (tracked via the last popped keys, which equal
   the previous tops) sums to at least the best meeting value found,
   no shorter s-t path can remain. *)

let distance g s t =
  let n = Wgraph.n g in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Bidirectional.distance";
  if s = t then 0
  else begin
    let dist_f = Array.make n Dist.inf in
    let dist_b = Array.make n Dist.inf in
    let settled_f = Array.make n false in
    let settled_b = Array.make n false in
    let pq_f = Pqueue.create n in
    let pq_b = Pqueue.create n in
    dist_f.(s) <- 0;
    dist_b.(t) <- 0;
    Pqueue.insert pq_f s 0;
    Pqueue.insert pq_b t 0;
    let best = ref Dist.inf in
    let last_f = ref 0 and last_b = ref 0 in
    let step_side pq dist settled other_dist last =
      if not (Pqueue.is_empty pq) then begin
        let u, du = Pqueue.pop_min pq in
        last := du;
        settled.(u) <- true;
        let via = Dist.add du other_dist.(u) in
        if via < !best then best := via;
        Wgraph.iter_neighbors g u (fun v w ->
            if not settled.(v) then begin
              let d = du + w in
              if d < dist.(v) then begin
                dist.(v) <- d;
                Pqueue.insert_or_decrease pq v d;
                let via = Dist.add d other_dist.(v) in
                if via < !best then best := via
              end
            end)
      end
    in
    let flip = ref true in
    while
      (not (Pqueue.is_empty pq_f && Pqueue.is_empty pq_b))
      && Dist.add !last_f !last_b < !best
    do
      let forward =
        if Pqueue.is_empty pq_f then false
        else if Pqueue.is_empty pq_b then true
        else !flip
      in
      if forward then step_side pq_f dist_f settled_f dist_b last_f
      else step_side pq_b dist_b settled_b dist_f last_b;
      flip := not !flip
    done;
    !best
  end

let distance_unweighted g s t =
  let n = Graph.n g in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Bidirectional.distance_unweighted";
  if s = t then 0
  else begin
    let dist_f = Array.make n Dist.inf in
    let dist_b = Array.make n Dist.inf in
    let qf = Queue.create () and qb = Queue.create () in
    dist_f.(s) <- 0;
    dist_b.(t) <- 0;
    Queue.add s qf;
    Queue.add t qb;
    let best = ref Dist.inf in
    let expand q dist other =
      (* expand one full BFS level *)
      let level = Queue.length q in
      for _ = 1 to level do
        let u = Queue.pop q in
        Graph.iter_neighbors g u (fun v ->
            if dist.(v) = Dist.inf then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v q;
              let via = Dist.add dist.(v) other.(v) in
              if via < !best then best := via
            end)
      done
    in
    let frontier q dist =
      if Queue.is_empty q then Dist.inf else dist.(Queue.peek q)
    in
    while
      (not (Queue.is_empty qf && Queue.is_empty qb))
      && Dist.add (frontier qf dist_f) (frontier qb dist_b) < !best
    do
      if
        Queue.is_empty qb
        || ((not (Queue.is_empty qf)) && Queue.length qf <= Queue.length qb)
      then expand qf dist_f dist_b
      else expand qb dist_b dist_f
    done;
    !best
  end
