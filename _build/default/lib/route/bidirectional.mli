(** Bidirectional Dijkstra — the classical point-to-point baseline the
    hub-based methods of §1.1 are compared against in practice. *)

open Repro_graph

val distance : Wgraph.t -> int -> int -> int
(** Exact point-to-point distance; {!Dist.inf} if disconnected. On
    undirected graphs both searches use the same adjacency. *)

val distance_unweighted : Graph.t -> int -> int -> int
(** Bidirectional BFS. *)
