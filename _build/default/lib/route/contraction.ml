open Repro_graph

type t = {
  n : int;
  rank : int array; (* vertex -> contraction rank (higher = more important) *)
  order : int array;
  (* search graph: for each vertex, edges to higher-ranked endpoints
     (original edges and shortcuts) *)
  up : (int * int) array array; (* vertex -> (neighbour, weight) list *)
  shortcuts : int;
}

(* Remaining-graph adjacency during contraction: hashtable per vertex,
   neighbour -> best weight. *)

let preprocess ?(hop_limit = 16) g =
  let n = Wgraph.n g in
  let adj : (int, int) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let add_edge u v w =
    (match Hashtbl.find_opt adj.(u) v with
    | Some w0 when w0 <= w -> ()
    | _ ->
        Hashtbl.replace adj.(u) v w;
        Hashtbl.replace adj.(v) u w)
  in
  List.iter (fun (u, v, w) -> add_edge u v w) (Wgraph.edges g);
  let contracted = Array.make n false in
  (* Bounded witness search: is there a u..w path avoiding v of length
     <= limit? Settles at most [hop_limit] vertices. *)
  let witness_exists u w v limit =
    if u = w then true
    else begin
      let dist = Hashtbl.create 16 in
      let pq = Pqueue.create n in
      Hashtbl.replace dist u 0;
      Pqueue.insert pq u 0;
      let settled = ref 0 in
      let found = ref false in
      (try
         while (not (Pqueue.is_empty pq)) && !settled < hop_limit do
           let x, dx = Pqueue.pop_min pq in
           incr settled;
           if x = w then begin
             found := dx <= limit;
             raise Exit
           end;
           if dx < limit then
             Hashtbl.iter
               (fun y wxy ->
                 if (not contracted.(y)) && y <> v then begin
                   let d = dx + wxy in
                   if d <= limit then
                     match Hashtbl.find_opt dist y with
                     | Some d0 when d0 <= d -> ()
                     | _ ->
                         Hashtbl.replace dist y d;
                         Pqueue.insert_or_decrease pq y d
                 end)
               adj.(x)
         done
       with Exit -> ());
      (* the target may be reachable but not yet settled *)
      (!found
      ||
      match Hashtbl.find_opt dist w with Some d -> d <= limit | None -> false)
    end
  in
  (* Edge difference of contracting v: shortcuts needed - edges removed. *)
  let needed_shortcuts v =
    let nbrs =
      Hashtbl.fold
        (fun u w acc -> if contracted.(u) then acc else (u, w) :: acc)
        adj.(v) []
    in
    let pairs = ref [] in
    let rec all_pairs = function
      | [] -> ()
      | (u, wu) :: rest ->
          List.iter
            (fun (w, ww) ->
              if not (witness_exists u w v (wu + ww)) then
                pairs := (u, w, wu + ww) :: !pairs)
            rest;
          all_pairs rest
    in
    all_pairs nbrs;
    (!pairs, List.length nbrs)
  in
  let priority v =
    let shortcuts, deg = needed_shortcuts v in
    (2 * List.length shortcuts) - deg
  in
  (* Lazy-update contraction loop. *)
  let pq = Pqueue.create n in
  let offset = 4 * n in
  (* priorities can be negative; shift into Pqueue's int keys *)
  for v = 0 to n - 1 do
    Pqueue.insert pq v (priority v + offset)
  done;
  let rank = Array.make n 0 in
  let order = Array.make n 0 in
  let shortcut_total = ref 0 in
  let next_rank = ref 0 in
  while not (Pqueue.is_empty pq) do
    let v, key = Pqueue.pop_min pq in
    (* lazy re-evaluation: if the priority rose, re-insert *)
    let fresh = priority v + offset in
    if fresh > key && not (Pqueue.is_empty pq) then Pqueue.insert pq v fresh
    else begin
      let shortcuts, _ = needed_shortcuts v in
      List.iter
        (fun (u, w, weight) ->
          incr shortcut_total;
          add_edge u w weight)
        shortcuts;
      contracted.(v) <- true;
      rank.(v) <- !next_rank;
      order.(!next_rank) <- v;
      incr next_rank
    end
  done;
  (* Build the upward search graph from the final adjacency (which now
     contains originals + shortcuts). *)
  let up =
    Array.init n (fun v ->
        let out =
          Hashtbl.fold
            (fun u w acc -> if rank.(u) > rank.(v) then (u, w) :: acc else acc)
            adj.(v) []
        in
        Array.of_list out)
  in
  { n; rank; order; up; shortcuts = !shortcut_total }

let query t s u =
  if s < 0 || s >= t.n || u < 0 || u >= t.n then invalid_arg "Contraction.query";
  if s = u then 0
  else begin
    let search src =
      let dist = Hashtbl.create 64 in
      let pq = Pqueue.create t.n in
      Hashtbl.replace dist src 0;
      Pqueue.insert pq src 0;
      while not (Pqueue.is_empty pq) do
        let x, dx = Pqueue.pop_min pq in
        if Hashtbl.find dist x = dx then
          Array.iter
            (fun (y, w) ->
              let d = dx + w in
              match Hashtbl.find_opt dist y with
              | Some d0 when d0 <= d -> ()
              | _ ->
                  Hashtbl.replace dist y d;
                  Pqueue.insert_or_decrease pq y d)
            t.up.(x)
      done;
      dist
    in
    let df = search s and db = search u in
    let best = ref Dist.inf in
    Hashtbl.iter
      (fun v d ->
        match Hashtbl.find_opt db v with
        | Some d' -> if d + d' < !best then best := d + d'
        | None -> ())
      df;
    !best
  end

let shortcut_count t = t.shortcuts
let order t = t.order
