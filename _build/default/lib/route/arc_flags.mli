(** Arc flags [KMS06] — the second practical heuristic §1.1 names
    ("fast point-to-point shortest path computations with arc-flags").

    The vertex set is partitioned into [k] regions (BFS-Voronoi cells
    around spread-out seeds). For every directed arc [(u, v)] and
    region [r], a flag records whether the arc starts some shortest
    path from [u] into [r]; a query towards target [t] runs Dijkstra
    but only relaxes arcs flagged for [t]'s region, which prunes the
    search while staying exact.

    Flags are computed exactly by a backward Dijkstra per region
    *boundary* vertex (any shortest path into a region enters through
    its boundary), plus all intra-region arcs for the region itself.
    Preprocessing is O(boundary · m log n): experiment scales. *)

open Repro_graph

type t

val preprocess : ?regions:int -> Wgraph.t -> t
(** Default region count: [max 2 (√n / 2)], rounded. *)

val query : t -> int -> int -> int
(** Exact distance; {!Dist.inf} if disconnected. *)

val region_of : t -> int -> int
val region_count : t -> int

val settled_ratio : t -> int -> int -> float
(** Fraction of vertices settled by the flagged query relative to [n] —
    the pruning effectiveness measure. *)
