lib/experiments/exp_base.mli:
