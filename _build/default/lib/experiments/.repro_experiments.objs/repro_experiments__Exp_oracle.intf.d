lib/experiments/exp_oracle.mli:
