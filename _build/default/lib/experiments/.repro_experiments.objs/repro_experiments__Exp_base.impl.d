lib/experiments/exp_base.ml: Array Cover Encoder Exp_util Generators Graph Hub_label List Order Pll Printf Random Random_hitting Repro_graph Repro_hub Repro_labeling Tree_label
