lib/experiments/exp_thm16.mli:
