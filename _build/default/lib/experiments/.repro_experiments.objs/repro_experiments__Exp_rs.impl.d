lib/experiments/exp_rs.ml: Behrend Exp_util Graph Induced_matching List Printf Repro_graph Repro_rs Rs_bounds Rs_graph
