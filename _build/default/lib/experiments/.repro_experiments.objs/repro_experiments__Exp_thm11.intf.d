lib/experiments/exp_thm11.mli:
