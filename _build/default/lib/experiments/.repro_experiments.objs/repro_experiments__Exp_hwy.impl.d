lib/experiments/exp_hwy.ml: Approx_hub Cover Exp_util Generators Hub_label List Pll Printf Repro_graph Repro_hub Separator_label Spc
