lib/experiments/exp_thm11.ml: Degree_gadget Exp_util Graph Grid_graph Hub_label List Lower_bound Pll Printf Repro_core Repro_graph Repro_hub Repro_rs
