lib/experiments/exp_fig1.ml: Array Dijkstra Dist Exp_util Grid_graph List Printf Repro_core Repro_graph Wgraph
