lib/experiments/experiments.ml: Exp_abl Exp_base Exp_fig1 Exp_hwy Exp_oracle Exp_rs Exp_thm11 Exp_thm16 Exp_thm21 Exp_thm41 List String
