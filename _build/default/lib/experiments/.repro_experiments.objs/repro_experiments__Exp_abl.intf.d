lib/experiments/exp_abl.mli:
