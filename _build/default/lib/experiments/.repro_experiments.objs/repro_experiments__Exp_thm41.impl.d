lib/experiments/exp_thm41.ml: Cover Exp_util Generators Graph Greedy_landmark Hub_label List Pll Printf Random_hitting Repro_core Repro_graph Repro_hub Rs_hub
