lib/experiments/experiments.mli:
