lib/experiments/exp_util.ml: List Printf Random String Unix
