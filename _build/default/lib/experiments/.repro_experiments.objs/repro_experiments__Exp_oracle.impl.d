lib/experiments/exp_oracle.ml: Array Exp_util Generators Graph Hub_label List Oracle Pll Printf Random Repro_core Repro_graph Repro_hub Repro_route Tz_oracle Wgraph
