lib/experiments/exp_thm21.mli:
