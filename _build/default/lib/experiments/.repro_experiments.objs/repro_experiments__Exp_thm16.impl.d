lib/experiments/exp_thm16.ml: Exp_util List Printf Repro_core Si_reduction Sum_index
