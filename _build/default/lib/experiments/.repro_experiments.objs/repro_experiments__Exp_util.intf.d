lib/experiments/exp_util.mli: Random
