lib/experiments/exp_hwy.mli:
