lib/experiments/exp_abl.ml: Cover Exp_util Generators Graph Hub_label Hub_prune List Pll Printf Random_hitting Repro_core Repro_graph Repro_hub Rs_hub
