lib/experiments/exp_rs.mli:
