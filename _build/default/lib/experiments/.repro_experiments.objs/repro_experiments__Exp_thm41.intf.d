lib/experiments/exp_thm41.mli:
