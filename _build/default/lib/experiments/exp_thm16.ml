open Repro_core

let sweep = [ (2, 1); (3, 1); (2, 2); (4, 1) ]

let run () =
  Exp_util.header
    "E-THM16  Theorem 1.6: Sum-Index from distance labels of G'_{b,l}";
  Exp_util.row
    [
      "b";
      "l";
      "m";
      "correct";
      "label bits A";
      "label bits B";
      "trivial bits";
      "sqrt(m)";
      "Ambainis";
    ];
  let rng = Exp_util.rng () in
  List.iter
    (fun (b, l) ->
      let p = Si_reduction.params ~b ~l in
      let m = p.Si_reduction.m in
      let s = Sum_index.random_instance rng m in
      let proto = Si_reduction.protocol p in
      let correct = Sum_index.correct_on proto s in
      let ma, mb = Sum_index.max_message_bits proto s in
      let trivial = Sum_index.trivial ~n:m in
      let ta, tb = Sum_index.max_message_bits trivial s in
      Exp_util.row
        [
          string_of_int b;
          string_of_int l;
          string_of_int m;
          string_of_bool correct;
          string_of_int ma;
          string_of_int mb;
          string_of_int (ta + tb);
          Exp_util.fmt_float (Sum_index.sqrt_lower_bound_bits m);
          Exp_util.fmt_float (Sum_index.ambainis_upper_bound_bits m);
        ];
      assert correct)
    sweep;
  Printf.printf
    "\nLiteral max-degree-3 variant (labels computed on G'_{b,l} itself):\n";
  Exp_util.row [ "b"; "l"; "m"; "|V(G')|~"; "correct"; "bits A"; "bits B" ];
  let p = Si_reduction.params ~b:2 ~l:1 in
  let s = Sum_index.random_instance rng p.Si_reduction.m in
  let proto = Si_reduction.protocol_gadget p in
  let ok = Sum_index.correct_on proto s in
  let ga, gb = Sum_index.max_message_bits proto s in
  Exp_util.row
    [
      "2";
      "1";
      string_of_int p.Si_reduction.m;
      "~1500";
      string_of_bool ok;
      string_of_int ga;
      string_of_int gb;
    ];
  assert ok;
  Printf.printf
    "\nReading: the reduction direction matters, not the absolute sizes —\n\
     any exact distance labeling of the max-degree-3 graph G'_{b,l}\n\
     yields a correct Sum-Index protocol, so label size is bounded below\n\
     by SUMINDEX((s/2)^l) - bl bits (paper, end of Section 3). At these\n\
     toy scales the graph-derived messages are naturally larger than the\n\
     trivial protocol; what the experiment certifies is exactness of the\n\
     decoding for every index pair.\n"
