(** Registry of the reproduction experiments (DESIGN.md §5).

    Every experiment prints a self-contained report to stdout; all use
    fixed seeds, so runs are reproducible. *)

val all : (string * string * (unit -> unit)) list
(** [(id, description, run)] for every experiment, in report order. *)

val find : string -> (unit -> unit) option
(** Look up an experiment by id (case-insensitive). *)

val run_all : unit -> unit
