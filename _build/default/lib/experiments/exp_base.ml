open Repro_graph
open Repro_hub
open Repro_labeling

let query_throughput labels g ~rng ~queries =
  let n = Graph.n g in
  let pairs =
    Array.init queries (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  let (), secs =
    Exp_util.time (fun () ->
        Array.iter (fun (u, v) -> ignore (Hub_label.query labels u v)) pairs)
  in
  float_of_int queries /. max secs 1e-9

let run () =
  Exp_util.header
    "E-BASE  Hub labeling in practice: size / build time / query rate";
  let rng = Exp_util.rng () in
  let networks =
    [
      ("road-32x32+64", Generators.grid_with_shortcuts rng ~rows:32 ~cols:32 ~shortcuts:64);
      ("sparse-2000", Generators.random_connected rng ~n:2000 ~m:4000);
      ("deg3-1500", Generators.random_bounded_degree rng ~n:1500 ~d:3);
    ]
  in
  Exp_util.row
    [ "network"; "scheme"; "avg |S(v)|"; "bits/vertex"; "build s"; "queries/s" ];
  List.iter
    (fun (name, g) ->
      let schemes =
        [
          ("pll-degree", fun () -> Pll.build g);
          ( "pll-closeness",
            fun () ->
              Pll.build
                ~order:(Order.by_closeness_sample g ~rng ~samples:16)
                g );
          ("rand-hit d=8", fun () -> fst (Random_hitting.build ~rng ~d:8 g));
        ]
      in
      List.iter
        (fun (scheme, build) ->
          let labels, build_secs = Exp_util.time build in
          let bits = Encoder.avg_bits (Encoder.encode labels) in
          let qps = query_throughput labels g ~rng ~queries:20_000 in
          Exp_util.row
            [
              name;
              scheme;
              Exp_util.fmt_float (Hub_label.avg_size labels);
              Exp_util.fmt_float bits;
              Exp_util.fmt_float build_secs;
              Printf.sprintf "%.2e" qps;
            ])
        schemes)
    networks;
  Printf.printf "\nTree labeling reference (Pel00-style, Theta(log n) hubs):\n";
  Exp_util.row [ "tree size"; "max hubs"; "bound"; "avg bits"; "exact" ];
  List.iter
    (fun n ->
      let g = Generators.random_tree rng n in
      let labels = Tree_label.build g in
      Exp_util.row
        [
          string_of_int n;
          string_of_int (Hub_label.max_size labels);
          string_of_int (Tree_label.max_hubs_bound n);
          Exp_util.fmt_float (Encoder.avg_bits (Encoder.encode labels));
          string_of_bool
            (Cover.verify_sampled g labels ~rng ~samples:10);
        ])
    [ 100; 1_000; 10_000 ]
