open Repro_rs
open Repro_graph

let run () =
  Exp_util.header
    "E-RS  Ruzsa-Szemeredi machinery: Behrend sets and induced matchings";
  Printf.printf "Behrend / greedy AP-free set sizes (measured density curve):\n";
  Exp_util.row [ "n"; "|S|"; "|S|/n"; "n/2^2sqrt(lg n)" ];
  List.iter
    (fun (n, size, density) ->
      Exp_util.row
        [
          string_of_int n;
          string_of_int size;
          Printf.sprintf "%.4f" density;
          Exp_util.fmt_float (float_of_int n /. Rs_bounds.behrend_upper n);
        ])
    (Behrend.density_series [ 100; 1_000; 10_000; 100_000 ]);
  Printf.printf
    "\nAMS-style sphere graphs (Section 2's source of induced matchings):\n";
  Exp_util.row [ "c"; "d"; "n"; "m"; "#matchings"; "avg |M|"; "n^2/m"; "Def1.3" ];
  List.iter
    (fun (c, d) ->
      let t = Rs_graph.build ~c ~d in
      let g = t.Rs_graph.graph in
      let n = Graph.n g and m = Graph.m g in
      Exp_util.row
        [
          string_of_int c;
          string_of_int d;
          string_of_int n;
          string_of_int m;
          string_of_int (Rs_graph.matching_count t);
          Exp_util.fmt_float (Rs_graph.avg_matching_size t);
          Exp_util.fmt_float (float_of_int (n * n) /. float_of_int (max m 1));
          string_of_bool
            (Induced_matching.is_ruzsa_szemeredi g t.Rs_graph.matchings);
        ])
    [ (3, 3); (4, 3); (3, 4); (4, 4); (5, 4); (4, 5); (5, 5); (6, 5) ];
  Printf.printf
    "(the (6,5) shell honestly reports false: its direction count\n\
     exceeds the Definition 1.3 budget of n matchings at that size)\n";
  Printf.printf
    "\nRS(n) bound shapes (the conditional range of Theorems 1.1/1.4):\n";
  Exp_util.row [ "n"; "2^log*(n) (Fox)"; "2^2sqrt(lg n) (Behrend)" ];
  List.iter
    (fun n ->
      Exp_util.row
        [
          string_of_int n;
          Exp_util.fmt_float (Rs_bounds.fox_lower n);
          Exp_util.fmt_float (Rs_bounds.behrend_upper n);
        ])
    [ 1_000; 1_000_000; 1_000_000_000 ]
