open Repro_graph
open Repro_hub
open Repro_core

let run () =
  Exp_util.header "E-ABL  Ablations of the Theorem 4.1 parameter choices";
  let rng = Exp_util.rng () in
  let g = Generators.random_bounded_degree rng ~n:160 ~d:3 in
  let n = Graph.n g in
  Printf.printf "instance: bounded-degree-3 graph, n=%d m=%d\n\n" n (Graph.m g);

  Printf.printf "colour budget (d = 5 fixed; proof uses d^3 = 125 colours):\n";
  Exp_util.row [ "colors"; "sum|R|"; "buckets"; "avg |S(v)|"; "exact" ];
  List.iter
    (fun colors ->
      let labels, st = Rs_hub.build ~rng ~d:5 ~colors g in
      Exp_util.row
        [
          string_of_int colors;
          string_of_int st.Rs_hub.r_total;
          string_of_int st.Rs_hub.bucket_count;
          Exp_util.fmt_float (Hub_label.avg_size labels);
          string_of_bool (Cover.verify g labels);
        ])
    [ 5; 25; 125; 625 ];

  Printf.printf "\nhitting-set size (d = 5; proof uses ceil((n/d) ln(d+1)) = %d):\n"
    (int_of_float
       (ceil (float_of_int n /. 5.0 *. log 6.0)));
  Exp_util.row [ "|S| target"; "|S|"; "sum|Q|"; "avg |S(v)|"; "exact" ];
  List.iter
    (fun s_size ->
      let labels, st = Rs_hub.build ~rng ~d:5 ~s_size g in
      Exp_util.row
        [
          string_of_int s_size;
          string_of_int st.Rs_hub.global_size;
          string_of_int st.Rs_hub.q_total;
          Exp_util.fmt_float (Hub_label.avg_size labels);
          string_of_bool (Cover.verify g labels);
        ])
    [ 14; 29; 58; 116 ];

  Printf.printf "\npost-hoc minimisation (Hub_prune) of each scheme (n=%d):\n" 96;
  let small = Generators.random_connected rng ~n:96 ~m:192 in
  Exp_util.row [ "scheme"; "avg before"; "avg after"; "exact after" ];
  List.iter
    (fun (name, labels) ->
      let pruned = Hub_prune.prune small labels in
      Exp_util.row
        [
          name;
          Exp_util.fmt_float (Hub_label.avg_size labels);
          Exp_util.fmt_float (Hub_label.avg_size pruned);
          string_of_bool (Cover.verify small pruned);
        ])
    [
      ("thm4.1 d=5", fst (Rs_hub.build ~rng ~d:5 small));
      ("rand-hit d=5", fst (Random_hitting.build ~rng ~d:5 small));
      ("pll", Pll.build small);
    ]
