(** [E-BASE] — §1.1 "Hub labeling in practice": construction time,
    label size and query throughput of the labeling schemes on
    transportation-like and random sparse networks, plus the tree
    labeling reference point. Wall-clock numbers (the fine-grained
    micro-benchmarks live in [bench/main.ml] under Bechamel). *)

val run : unit -> unit
