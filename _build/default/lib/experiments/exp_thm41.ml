open Repro_graph
open Repro_hub
open Repro_core

let instances rng =
  [
    ("path-256", Generators.path 256);
    ("cycle-256", Generators.cycle 256);
    ("sparse-256", Generators.random_connected rng ~n:256 ~m:512);
    ("deg3-256", Generators.random_bounded_degree rng ~n:256 ~d:3);
    ("grid-16x16", Generators.grid ~rows:16 ~cols:16);
  ]

let run () =
  Exp_util.header
    "E-THM41  Theorem 4.1/1.4: the RS-based hub labeling vs baselines";
  let rng = Exp_util.rng () in
  Printf.printf "Component breakdown of the Theorem 4.1 construction (d sweep):\n";
  Exp_util.row
    [ "graph"; "d"; "|S|"; "sum|Q|"; "sum|R|"; "sum|F|"; "buckets"; "avg |S(v)|"; "exact" ];
  List.iter
    (fun (name, g) ->
      List.iter
        (fun d ->
          let labels, st = Rs_hub.build ~rng ~d g in
          Exp_util.row
            [
              name;
              string_of_int d;
              string_of_int st.Rs_hub.global_size;
              string_of_int st.Rs_hub.q_total;
              string_of_int st.Rs_hub.r_total;
              string_of_int st.Rs_hub.f_total;
              string_of_int st.Rs_hub.bucket_count;
              Exp_util.fmt_float (Hub_label.avg_size labels);
              string_of_bool (Cover.verify g labels);
            ])
        [ Rs_hub.default_d (Graph.n g); 4; 6 ])
    (instances rng);
  Printf.printf
    "\nLemma 4.2 structure check (per-colour unions of the bucket\n\
     matchings are edge partitions into induced matchings):\n";
  Exp_util.row [ "graph"; "d"; "buckets"; "Lemma 4.2" ];
  List.iter
    (fun (name, g) ->
      let _, st, data = Rs_hub.build_checked ~rng ~d:6 g in
      Exp_util.row
        [
          name;
          "6";
          string_of_int st.Rs_hub.bucket_count;
          string_of_bool (Rs_hub.lemma42_holds ~n:(Graph.n g) data);
        ])
    [
      ("path-256", Generators.path 256);
      ("deg3-256", Generators.random_bounded_degree rng ~n:256 ~d:3);
    ];
  Printf.printf "\nAverage hubset size against baselines:\n";
  Exp_util.row
    [ "graph"; "Thm4.1 (d=6)"; "PLL"; "rand-hit d=6"; "n" ];
  List.iter
    (fun (name, g) ->
      let thm, _ = Rs_hub.build ~rng ~d:6 g in
      let pll = Pll.build g in
      let rh, _ = Random_hitting.build ~rng ~d:6 g in
      Exp_util.row
        [
          name;
          Exp_util.fmt_float (Hub_label.avg_size thm);
          Exp_util.fmt_float (Hub_label.avg_size pll);
          Exp_util.fmt_float (Hub_label.avg_size rh);
          string_of_int (Graph.n g);
        ])
    (instances rng);
  Printf.printf
    "\nSmall-instance comparison including the greedy landmark baseline\n\
     and the Theorem 1.4 average-degree reduction:\n";
  Exp_util.row
    [ "graph"; "Thm4.1"; "Thm1.4 (subdiv)"; "greedy"; "PLL"; "exact(1.4)" ];
  let small =
    [
      ("sparse-64", Generators.random_connected rng ~n:64 ~m:128);
      ("gnm-64-256", Generators.gnm rng ~n:64 ~m:256);
      ("star-64", Generators.star 64);
    ]
  in
  List.iter
    (fun (name, g) ->
      let thm, _ = Rs_hub.build ~rng ~d:5 g in
      let sparse, _ = Rs_hub.build_sparse ~rng ~d:5 g in
      let greedy = Greedy_landmark.build g in
      let pll = Pll.build g in
      Exp_util.row
        [
          name;
          Exp_util.fmt_float (Hub_label.avg_size thm);
          Exp_util.fmt_float (Hub_label.avg_size sparse);
          Exp_util.fmt_float (Hub_label.avg_size greedy);
          Exp_util.fmt_float (Hub_label.avg_size pll);
          string_of_bool (Cover.verify g sparse);
        ])
    small
