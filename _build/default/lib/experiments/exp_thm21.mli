(** [E-THM21] — Theorem 2.1: exhaustive Lemma 2.2 verification on both
    [H_{b,ℓ}] and the degree-3 gadget [G_{b,ℓ}]; size/degree claims
    (i)-(ii); and the claim (iii) counting argument evaluated on an
    actual exact labeling (PLL) — monotone-closure total vs. the proven
    [s^ℓ (s/2)^ℓ] bound. *)

val run : unit -> unit
