open Repro_graph
open Repro_core

let sweep = [ (1, 1); (2, 1); (1, 2); (3, 1); (2, 2) ]

let run () =
  Exp_util.header
    "E-FIG1  Figure 1: the weighted layered graph H_{b,l} (Theorem 2.1)";
  Exp_util.row [ "b"; "l"; "s"; "|V(H)|"; "(2l+1)s^l"; "|E(H)|"; "A=3ls^2" ];
  List.iter
    (fun (b, l) ->
      let g = Grid_graph.create ~b ~l () in
      let s = g.Grid_graph.s in
      let formula = ((2 * l) + 1) * g.Grid_graph.per_level in
      Exp_util.row
        [
          string_of_int b;
          string_of_int l;
          string_of_int s;
          string_of_int (Grid_graph.n g);
          string_of_int formula;
          string_of_int (Wgraph.m g.Grid_graph.graph);
          string_of_int g.Grid_graph.a_weight;
        ])
    sweep;
  (* The annotated paths of the figure (b = l = 2, so A = 96). *)
  let g = Grid_graph.create ~b:2 ~l:2 () in
  let a = g.Grid_graph.a_weight in
  let x = [| 1; 0 |] and z = [| 3; 2 |] in
  let dist = Dijkstra.distances g.Grid_graph.graph (Grid_graph.bottom g x) in
  let dist_rev = Dijkstra.distances g.Grid_graph.graph (Grid_graph.top g z) in
  let via y =
    let mid = Grid_graph.middle g y in
    Dist.add dist.(mid) dist_rev.(mid)
  in
  let best_detour = ref Dist.inf in
  Grid_graph.iter_vectors g (fun y ->
      if y <> [| 2; 1 |] then begin
        let len = via y in
        if len < !best_detour then best_detour := len
      end);
  Printf.printf
    "\nFigure 1 annotations (b=2, l=2, A=%d):\n\
    \  blue path v0,(1,0) -> v4,(3,2) via v2,(2,1): measured %d  (paper: 4A+4 = %d)\n\
    \  red  path via v2,(1,2):                     measured %d  (paper: 4A+8 = %d)\n\
    \  best detour avoiding the true midpoint:     measured %d  (analysis: 4A+6 = %d)\n"
    a
    dist.(Grid_graph.top g z)
    ((4 * a) + 4)
    (via [| 1; 2 |])
    ((4 * a) + 8)
    !best_detour
    ((4 * a) + 6)
