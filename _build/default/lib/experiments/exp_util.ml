let rng () = Random.State.make [| 20190721 |]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let row cells =
  let pad s = if String.length s >= 14 then s else s ^ String.make (14 - String.length s) ' ' in
  print_endline (String.concat "  " (List.map pad cells))

let fmt_float x =
  if x = 0.0 then "0"
  else if abs_float x >= 1000.0 then Printf.sprintf "%.0f" x
  else if abs_float x >= 10.0 then Printf.sprintf "%.1f" x
  else if abs_float x >= 0.001 then Printf.sprintf "%.3f" x
  else Printf.sprintf "%.2e" x
