(** [E-FIG1] — Figure 1: construction statistics of [H_{b,ℓ}] across a
    parameter sweep, plus the exact path lengths the figure annotates
    (blue path [4A+4], red path [4A+8], best detour [4A+6]). *)

val run : unit -> unit
