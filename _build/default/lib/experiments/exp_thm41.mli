(** [E-THM41] — Theorem 4.1 / 1.4: run the RS-based construction on a
    portfolio of sparse graphs, report the component breakdown
    (S / Q / R / N(F)), compare average hubset sizes against PLL, the
    random-hitting scheme and (on small instances) the greedy landmark
    baseline, and verify every labeling is an exact cover. *)

val run : unit -> unit
