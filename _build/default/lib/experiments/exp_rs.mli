(** [E-RS] — Definition 1.3 / §1.2: measured Behrend AP-free densities
    (the [RS(n)] upper-bound machinery) and the AMS-style sphere graphs
    with their verified partitions into induced matchings. *)

val run : unit -> unit
