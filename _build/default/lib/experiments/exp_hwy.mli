(** [E-HWY] — the remaining practice machinery of §1.1: highway-
    dimension estimates via shortest-path covers ([ADF+16]), the
    separator-based labelings of the planar discussion ([GPPR04]), and
    the additive-approximation hubsets behind [AGHP16a]'s distance
    labels. *)

val run : unit -> unit
