open Repro_graph
open Repro_hub

let run () =
  Exp_util.header
    "E-HWY  Highway dimension, separator labelings, approximate hubsets";
  let rng = Exp_util.rng () in

  Printf.printf
    "Highway-dimension estimates (weak SPC local sparsity per scale):\n";
  Exp_util.row [ "network"; "r"; "|cover|"; "sparsity" ];
  let networks =
    [
      ("grid-10x10", Generators.grid ~rows:10 ~cols:10);
      ("road-10x10+10", Generators.grid_with_shortcuts rng ~rows:10 ~cols:10 ~shortcuts:10);
      ("sparse-100", Generators.random_connected rng ~n:100 ~m:200);
      ("path-100", Generators.path 100);
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (r, size, sparsity) ->
          Exp_util.row
            [ name; string_of_int r; string_of_int size; string_of_int sparsity ])
        (Spc.highway_dimension_estimate g))
    networks;
  Printf.printf
    "(road-like and path networks keep the sparsity low at large scales;\n\
     random sparse graphs concentrate all pairs at one scale)\n";

  Printf.printf "\nSeparator labelings (GPPR04-style) vs PLL on grids:\n";
  Exp_util.row
    [ "grid"; "sep avg |S|"; "sep max"; "PLL avg"; "sqrt(n)"; "exact" ];
  List.iter
    (fun side ->
      let g = Generators.grid ~rows:side ~cols:side in
      let sep = Separator_label.build_grid ~rows:side ~cols:side g in
      let pll = Pll.build g in
      Exp_util.row
        [
          Printf.sprintf "%dx%d" side side;
          Exp_util.fmt_float (Hub_label.avg_size sep);
          string_of_int (Hub_label.max_size sep);
          Exp_util.fmt_float (Hub_label.avg_size pll);
          Exp_util.fmt_float (sqrt (float_of_int (side * side)));
          string_of_bool
            (Cover.verify_sampled g sep ~rng ~samples:8);
        ])
    [ 8; 12; 16; 24 ];

  Printf.printf "\nAdditive-approximation hubsets (error <= 2, AGHP16a-style):\n";
  Exp_util.row
    [ "graph"; "base avg"; "approx avg"; "compression"; "max error" ];
  List.iter
    (fun (name, g) ->
      let base = Pll.build g in
      let t = Approx_hub.build ~base g in
      Exp_util.row
        [
          name;
          Exp_util.fmt_float (Hub_label.avg_size base);
          Exp_util.fmt_float (Hub_label.avg_size t.Approx_hub.labels);
          Exp_util.fmt_float (Approx_hub.compression ~base t);
          string_of_int (Approx_hub.max_error g t);
        ])
    [
      ("path-200", Generators.path 200);
      ("grid-12x12", Generators.grid ~rows:12 ~cols:12);
      ("sparse-200", Generators.random_connected rng ~n:200 ~m:400);
    ]
