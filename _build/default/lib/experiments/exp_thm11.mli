(** [E-THM11] — Theorem 1.1: the [n / 2^{Θ(√log n)}] shape. For the
    [G_{b,ℓ}] family (with [b = ℓ] along the theorem's diagonal where
    feasible), compare (a) the certified average-hub-size lower bound
    from the counting argument, (b) the measured average hubset size of
    a real exact labeling, and (c) the analytic shape
    [n / 2^{√(log₂ n)}]. *)

val run : unit -> unit
