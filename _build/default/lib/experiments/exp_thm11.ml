open Repro_graph
open Repro_hub
open Repro_core

(* (b, l, run_pll): PLL on the 24k-vertex (2,2) instance is feasible
   but slow in a default experiment run; its row reports the certified
   bound only. *)
let sweep = [ (1, 1, true); (2, 1, true); (1, 2, true); (3, 1, true); (2, 2, false) ]

let run () =
  Exp_util.header
    "E-THM11  Theorem 1.1: average hub size vs n / 2^{sqrt(log n)}";
  Exp_util.row
    [
      "b";
      "l";
      "n(G)";
      "cert. avg LB";
      "cert. LB (meas)";
      "PLL avg |S|";
      "n/2^sqrt(lg n)";
      "n (trivial UB)";
    ];
  List.iter
    (fun (b, l, run_pll) ->
      let grid = Grid_graph.create ~b ~l () in
      let gadget = Degree_gadget.build grid in
      let g = gadget.Degree_gadget.graph in
      let n = Graph.n g in
      let pll_avg =
        if run_pll then Exp_util.fmt_float (Hub_label.avg_size (Pll.build g))
        else "(skipped)"
      in
      Exp_util.row
        [
          string_of_int b;
          string_of_int l;
          string_of_int n;
          Exp_util.fmt_float (Lower_bound.avg_hub_size_lower_bound gadget);
          Exp_util.fmt_float (Lower_bound.avg_hub_size_lower_bound_measured gadget);
          pll_avg;
          Exp_util.fmt_float (Repro_rs.Rs_bounds.hub_lower_bound_shape n);
          string_of_int n;
        ])
    sweep;
  Printf.printf
    "\nReading: the certified bound comes from the executable counting\n\
     argument; the theorem states it approaches n / 2^{Theta(sqrt(log n))}\n\
     as b = l -> infinity (at laptop scales the constant-factor gap to\n\
     the analytic shape is still large, but the bound is nontrivial and\n\
     grows with the instance).\n"
