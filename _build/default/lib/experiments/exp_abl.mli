(** [E-ABL] — ablations of the Theorem 4.1 construction's parameter
    choices (the design decisions DESIGN.md calls out):

    - threshold sweep [D]: how the S / Q / R / N(F) components trade
      off against each other;
    - colour budget: [D³] colours (the proof's choice) vs fewer/more —
      fewer colours inflate the conflict sets [R_v];
    - hitting-set size: the [⌈(n/D) ln(D+1)⌉] sample vs halved/doubled —
      smaller samples inflate the patch sets [Q_v].

    Also compares the raw construction against its {!Repro_hub.Hub_prune}
    minimisation. Every variant is verified to remain an exact cover. *)

val run : unit -> unit
