let all =
  [
    ( "E-FIG1",
      "Figure 1: the layered grid H_{b,l} and its annotated path lengths",
      Exp_fig1.run );
    ( "E-THM21",
      "Theorem 2.1: Lemma 2.2 checks and the counting lower bound",
      Exp_thm21.run );
    ( "E-THM11",
      "Theorem 1.1: average hub size vs the n/2^sqrt(log n) shape",
      Exp_thm11.run );
    ( "E-THM41",
      "Theorem 4.1/1.4: the RS-based hub labeling and baselines",
      Exp_thm41.run );
    ( "E-THM16",
      "Theorem 1.6: Sum-Index protocols from distance labels",
      Exp_thm16.run );
    ("E-RS", "Behrend sets and induced-matching graphs", Exp_rs.run);
    ("E-BASE", "Hub labeling in practice: sizes and timings", Exp_base.run);
    ( "E-ORACLE",
      "Centralised distance oracles: the S*T tradeoff",
      Exp_oracle.run );
    ("E-ABL", "Ablations of the Theorem 4.1 parameter choices", Exp_abl.run);
    ( "E-HWY",
      "Highway dimension, separators and approximate hubsets",
      Exp_hwy.run );
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_map
    (fun (i, _, run) -> if String.uppercase_ascii i = id then Some run else None)
    all

let run_all () = List.iter (fun (_, _, run) -> run ()) all
