(** [E-THM16] — Theorem 1.6: the Sum-Index protocol built from distance
    labels of [G'_{b,ℓ}]. Verifies exhaustive correctness per parameter
    set and reports message sizes against the trivial protocol, the
    [Ω(√n)] Sum-Index lower bound and the Ambainis upper-bound shape. *)

val run : unit -> unit
