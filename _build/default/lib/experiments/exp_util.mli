(** Small shared helpers for the experiment drivers: fixed seeds,
    wall-clock timing and aligned table printing. *)

val rng : unit -> Random.State.t
(** Fresh deterministic generator (fixed seed) — every experiment run
    is reproducible. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val header : string -> unit
(** Print an experiment banner. *)

val row : string list -> unit
(** Print one table row, columns separated by two spaces, each padded
    to 14 characters. *)

val fmt_float : float -> string
(** Compact float formatting for table cells. *)
