open Repro_graph
open Repro_hub
open Repro_core

let lemma_sweep = [ (1, 1); (2, 1); (1, 2); (3, 1); (2, 2) ]
let counting_sweep = [ (1, 1); (2, 1); (1, 2) ]

let fmt_check (c : Lower_bound.lemma_check) =
  if
    c.Lower_bound.unique_failures = 0
    && c.Lower_bound.midpoint_failures = 0
    && c.Lower_bound.distance_failures = 0
  then Printf.sprintf "OK (%d pairs)" c.Lower_bound.pairs_checked
  else
    Printf.sprintf "FAIL (u=%d m=%d d=%d)" c.Lower_bound.unique_failures
      c.Lower_bound.midpoint_failures c.Lower_bound.distance_failures

let run () =
  Exp_util.header
    "E-THM21  Theorem 2.1: lower-bound instance G_{b,l}, Lemma 2.2, counting";
  Exp_util.row
    [ "b"; "l"; "|V(G)|"; "size bound"; "maxdeg"; "Lemma2.2 H"; "Lemma2.2 G" ];
  List.iter
    (fun (b, l) ->
      let grid = Grid_graph.create ~b ~l () in
      let gadget = Degree_gadget.build grid in
      let ch = Lower_bound.check_lemma22_grid grid in
      let cg = Lower_bound.check_lemma22_gadget gadget in
      Exp_util.row
        [
          string_of_int b;
          string_of_int l;
          string_of_int (Degree_gadget.n gadget);
          string_of_int (Degree_gadget.theorem21_node_bound gadget);
          string_of_int (Graph.max_degree gadget.Degree_gadget.graph);
          fmt_check ch;
          fmt_check cg;
        ])
    lemma_sweep;
  Printf.printf
    "\nCounting argument (claim (iii)) on real PLL labelings of G_{b,l}:\n";
  Exp_util.row
    [
      "b";
      "l";
      "n(G)";
      "PLL avg |S|";
      "closure sum";
      "bound s^l(s/2)^l";
      "holds";
      "cert. avg LB";
    ];
  List.iter
    (fun (b, l) ->
      let grid = Grid_graph.create ~b ~l () in
      let gadget = Degree_gadget.build grid in
      let g = gadget.Degree_gadget.graph in
      let labels = Pll.build g in
      assert (Cover.verify_sampled g labels ~rng:(Exp_util.rng ()) ~samples:5);
      let holds, closure_total = Lower_bound.check_counting_argument gadget labels in
      Exp_util.row
        [
          string_of_int b;
          string_of_int l;
          string_of_int (Graph.n g);
          Exp_util.fmt_float (Hub_label.avg_size labels);
          string_of_int closure_total;
          string_of_int (Lower_bound.counting_bound grid);
          string_of_bool holds;
          Exp_util.fmt_float (Lower_bound.avg_hub_size_lower_bound gadget);
        ])
    counting_sweep
