(** [E-ORACLE] — the introduction's space/time tradeoff for centralised
    exact distance oracles (ST = Õ(n²)): measured space and query time
    of the full matrix, hub-labeling and BFS-on-demand oracles, plus
    the route-planning heuristics (bidirectional search, contraction
    hierarchies) §1.1 cites. *)

val run : unit -> unit
