(** Dense graphs edge-partitioned into large induced matchings, after
    Alon–Moitra–Sudakov [AMS12] — the construction the paper tweaks in
    Section 2.

    Vertices are the points of a norm shell
    [X = {x ∈ [0,c-1]^d : ‖x‖² = ρ}]; edges join points at squared
    distance exactly [µ]; the matching [M_z] collects the pairs with
    difference vector [±z]. Because all points share the same norm, a
    cross pair [(x₁, x₂+z)] has squared distance [µ + ‖x₂-x₁‖² > µ], so
    each [M_z] is an induced matching — the property Section 2 turns
    into uniqueness of shortest paths. *)

open Repro_graph

type t = {
  graph : Graph.t;
  points : int array array;  (** vertex -> its coordinate vector *)
  matchings : (int * int) list list;
      (** the partition of the edges into induced matchings, one per
          canonical direction [z] *)
  rho : int;  (** squared norm of the shell *)
  mu : int;  (** squared distance defining edges *)
}

val build : c:int -> d:int -> t
(** Chooses the most popular shell norm [ρ] and, within that shell, the
    most popular difference norm [µ > 0].
    @raise Invalid_argument if [c < 2] or [d < 1], or if the shell is
    too small to carry an edge. *)

val build_with : c:int -> d:int -> rho:int -> mu:int -> t

val edge_count : t -> int
val matching_count : t -> int
val avg_matching_size : t -> float

val density_summary : t -> string
(** One line: n, m, #matchings, avg matching size, n²/m. *)
