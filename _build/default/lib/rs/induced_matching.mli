(** Verification of induced matchings (Definition 1.2) and of
    edge partitions into induced matchings (Definition 1.3). *)

open Repro_graph

val is_matching : (int * int) list -> bool
(** No vertex appears twice among the endpoints. *)

val is_induced : Graph.t -> (int * int) list -> bool
(** [is_induced g m] is [true] iff [m] is a matching using edges of [g]
    and the subgraph of [g] induced by the endpoints of [m] contains
    exactly the edges of [m]. *)

val is_partition : Graph.t -> (int * int) list list -> bool
(** The matchings are pairwise edge-disjoint and together contain every
    edge of [g] exactly once (each matching also checked non-empty-safe
    for membership in [g]). *)

val is_ruzsa_szemeredi : Graph.t -> (int * int) list list -> bool
(** Definition 1.3: an edge partition into at most [n] induced
    matchings. *)
