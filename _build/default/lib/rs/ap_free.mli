(** Sets of integers with no 3-term arithmetic progression.

    AP-free sets underlie the Behrend construction [Beh46] cited by the
    paper as the source of the upper bound on [RS(n)]. *)

val is_ap_free : int list -> bool
(** [true] iff no three (distinct) elements [a < b < c] of the list
    satisfy [a + c = 2b]. The list need not be sorted; duplicates are
    ignored. O(k² log k). *)

val greedy : int -> int list
(** Greedy AP-free subset of [0 .. n-1]: scan upwards, keep an element
    whenever it closes no progression. Classical fact: this yields
    exactly the integers with no digit 2 in base 3. *)

val no_two_base3 : int -> int list
(** Integers in [0 .. n-1] whose base-3 representation avoids the
    digit 2 (the closed form of {!greedy}). *)

val maximum_exhaustive : int -> int list
(** A maximum AP-free subset of [0 .. n-1] by branch and bound.
    Exponential; intended for [n <= 30] in tests. *)
