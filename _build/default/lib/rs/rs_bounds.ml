let log2 x = log x /. log 2.0

let log_star n =
  let rec go x acc =
    if x <= 1.0 then acc else go (log2 x) (acc + 1)
  in
  go (float_of_int (max n 1)) 0

let fox_lower n = 2.0 ** float_of_int (log_star n)

let behrend_upper n = 2.0 ** (2.0 *. sqrt (log2 (float_of_int (max n 2))))

let sqrt_log_shape n = 2.0 ** sqrt (log2 (float_of_int (max n 2)))

let hub_lower_bound_shape n = float_of_int n /. sqrt_log_shape n

let hub_upper_bound_shape ~c n =
  float_of_int n /. (behrend_upper n ** (1.0 /. c))
