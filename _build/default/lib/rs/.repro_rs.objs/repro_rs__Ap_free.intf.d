lib/rs/ap_free.mli:
