lib/rs/induced_matching.ml: Graph Hashtbl List Repro_graph
