lib/rs/ap_free.ml: Array Hashtbl List
