lib/rs/behrend.ml: Ap_free Hashtbl List
