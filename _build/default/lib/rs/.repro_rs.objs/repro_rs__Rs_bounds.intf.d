lib/rs/rs_bounds.mli:
