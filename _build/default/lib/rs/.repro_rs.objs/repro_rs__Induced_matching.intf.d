lib/rs/induced_matching.mli: Graph Repro_graph
