lib/rs/rs_graph.mli: Graph Repro_graph
