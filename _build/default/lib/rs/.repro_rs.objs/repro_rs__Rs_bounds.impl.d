lib/rs/rs_bounds.ml:
