lib/rs/rs_graph.ml: Array Graph Hashtbl List Option Printf Repro_graph
