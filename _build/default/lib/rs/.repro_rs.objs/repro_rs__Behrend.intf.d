lib/rs/behrend.mli:
