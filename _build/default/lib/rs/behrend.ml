(* Enumerate digit vectors in [0, q-1]^d, bucket by squared norm, and
   return the numbers (base-2q evaluations) of the fullest shell. The
   public [construct] searches over dimensions (and, at small n where
   it still dominates, the greedy base-3 set) and returns the largest
   AP-free set found. *)

let shell_for ~d n =
  let q =
    let ideal =
      int_of_float (0.5 *. (float_of_int n ** (1.0 /. float_of_int d)))
    in
    max 2 (min ideal 64)
  in
  let base = 2 * q in
  let shells : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let rec enumerate pos value norm =
    if pos = d then begin
      match Hashtbl.find_opt shells norm with
      | Some l -> l := value :: !l
      | None -> Hashtbl.replace shells norm (ref [ value ])
    end
    else
      for digit = 0 to q - 1 do
        (* most significant digit first: prefix overflow prunes all
           completions *)
        let value' = (value * base) + digit in
        if value' < n then enumerate (pos + 1) value' (norm + (digit * digit))
      done
  in
  enumerate 0 0 0;
  let best = ref [] in
  Hashtbl.iter
    (fun _ l -> if List.length !l > List.length !best then best := !l)
    shells;
  !best

let default_dimension n =
  let logn = log (float_of_int (max n 2)) /. log 2.0 in
  max 2 (int_of_float (ceil (sqrt logn)))

let construct ?dimension n =
  if n < 1 then invalid_arg "Behrend.construct";
  if n <= 3 then List.init n (fun i -> i)
  else begin
    let candidates =
      match dimension with
      | Some d -> [ shell_for ~d:(max 1 d) n ]
      | None ->
          let dmax = default_dimension n + 1 in
          let shells =
            List.init (dmax - 1) (fun i -> shell_for ~d:(i + 2) n)
          in
          (* the digit shells only overtake the greedy base-3 set at
             scales beyond this library's enumeration budget; include
             greedy as a candidate while it is cheap *)
          if n <= 100_000 then Ap_free.greedy n :: shells else shells
    in
    let best =
      List.fold_left
        (fun acc c -> if List.length c > List.length acc then c else acc)
        [] candidates
    in
    List.sort compare best
  end

let best_size n = List.length (construct n)

let density_series ns =
  List.map
    (fun n ->
      let s = best_size n in
      (n, s, float_of_int s /. float_of_int n))
    ns
