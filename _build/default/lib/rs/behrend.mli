(** Behrend's construction of large progression-free sets [Beh46].

    Integers are written in base [2q] with digits below [q]; keeping
    those whose digit vector has a fixed Euclidean norm gives an AP-free
    set, because digit addition then carries nowhere and spheres are
    strictly convex. The best norm shell has size
    [n / 2^{O(√log n)}] for suitable dimension — this is the function
    shape that bounds [RS(n)] from above in Definition 1.3's regime. *)

val construct : ?dimension:int -> int -> int list
(** [construct n] is an AP-free subset of [0 .. n-1]: the best norm
    shell over a small dimension sweep, or — at the small scales where
    it still dominates the digit construction — the greedy base-3 set.
    [dimension] forces a single digit-construction dimension. The
    result is sorted. *)

val best_size : int -> int
(** [List.length (construct n)] without materialising the set twice. *)

val density_series : int list -> (int * int * float) list
(** For each [n] of the input list: [(n, |S|, |S| / n)] using
    {!construct} — the measured Behrend density curve reported by the
    [E-RS] experiment. *)
