open Repro_graph

let is_matching m =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun (u, v) ->
      if u = v || Hashtbl.mem seen u || Hashtbl.mem seen v then ok := false
      else begin
        Hashtbl.replace seen u ();
        Hashtbl.replace seen v ()
      end)
    m;
  !ok

let is_induced g m =
  is_matching m
  && List.for_all (fun (u, v) -> Graph.mem_edge g u v) m
  &&
  let endpoints =
    List.concat_map (fun (u, v) -> [ u; v ]) m |> List.sort_uniq compare
  in
  let in_m = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace in_m (min u v, max u v) ())
    m;
  (* Every induced edge among the endpoints must belong to m. *)
  List.for_all
    (fun u ->
      List.for_all
        (fun v ->
          u >= v
          || (not (Graph.mem_edge g u v))
          || Hashtbl.mem in_m (u, v))
        endpoints)
    endpoints

let is_partition g matchings =
  let seen = Hashtbl.create (2 * Graph.m g) in
  let ok = ref true in
  List.iter
    (List.iter (fun (u, v) ->
         let key = (min u v, max u v) in
         if Hashtbl.mem seen key || not (Graph.mem_edge g u v) then ok := false
         else Hashtbl.replace seen key ()))
    matchings;
  !ok && Hashtbl.length seen = Graph.m g

let is_ruzsa_szemeredi g matchings =
  List.length matchings <= Graph.n g
  && is_partition g matchings
  && List.for_all (is_induced g) matchings
