let is_ap_free xs =
  let arr = Array.of_list (List.sort_uniq compare xs) in
  let k = Array.length arr in
  let mem x =
    let lo = ref 0 and hi = ref (k - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) = x then found := true
      else if arr.(mid) < x then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      (* arr.(i) < arr.(j); the third term closing the progression. *)
      if !ok && mem ((2 * arr.(j)) - arr.(i)) then ok := false
    done
  done;
  !ok

let greedy n =
  let chosen = ref [] in
  let mem = Hashtbl.create 64 in
  for x = 0 to n - 1 do
    let closes_ap =
      List.exists
        (fun b ->
          (* x > b: progression a < b < x needs a = 2b - x chosen. *)
          let a = (2 * b) - x in
          a >= 0 && a <> b && Hashtbl.mem mem a)
        !chosen
    in
    if not closes_ap then begin
      chosen := x :: !chosen;
      Hashtbl.replace mem x ()
    end
  done;
  List.rev !chosen

let no_two_base3 n =
  let rec has_two x = x > 0 && (x mod 3 = 2 || has_two (x / 3)) in
  List.filter (fun x -> not (has_two x)) (List.init n (fun i -> i))

let maximum_exhaustive n =
  if n > 40 then invalid_arg "Ap_free.maximum_exhaustive: n too large";
  let best = ref [] in
  (* Branch on each element in decreasing order; prune when even taking
     everything remaining cannot beat the incumbent. *)
  let rec go x chosen size =
    if size + x + 1 <= List.length !best then ()
    else if x < 0 then begin
      if size > List.length !best then best := chosen
    end
    else begin
      let closes_ap =
        (* chosen elements are all > x; check b, c in chosen with
           x + c = 2b. *)
        List.exists
          (fun b -> List.exists (fun c -> x + c = 2 * b && c > b) chosen)
          chosen
      in
      if not closes_ap then go (x - 1) (x :: chosen) (size + 1);
      go (x - 1) chosen size
    end
  in
  go (n - 1) [] 0;
  !best
