(** Numeric proxies for the known bounds on the Ruzsa–Szemerédi
    function [2^{Ω(log* n)} ≤ RS(n) ≤ 2^{O(√log n)}] ([Fox11], [Beh46]),
    used by experiments to plot the paper's conditional shapes. *)

val log_star : int -> int
(** Iterated binary logarithm (number of [log₂] applications needed to
    reach [<= 1]). *)

val fox_lower : int -> float
(** The [2^{log* n}] lower-bound shape (constant 1 in the exponent). *)

val behrend_upper : int -> float
(** The [2^{2√(log₂ n)}] upper-bound shape. *)

val sqrt_log_shape : int -> float
(** [2^{√(log₂ n)}] — the canonical "between polylog and polynomial"
    scale the paper's bounds are phrased in ([n / 2^{Θ(√log n)}]). *)

val hub_lower_bound_shape : int -> float
(** [n / 2^{√(log₂ n)}], the Theorem 1.1 shape. *)

val hub_upper_bound_shape : c:float -> int -> float
(** [n / RS(n)^{1/c}] with RS replaced by its Behrend-shape upper
    bound — the optimistic reading of Theorem 1.4. *)
