open Repro_graph

type t = {
  graph : Graph.t;
  points : int array array;
  matchings : (int * int) list list;
  rho : int;
  mu : int;
}

let enumerate_points ~c ~d =
  let total = int_of_float (float_of_int c ** float_of_int d) in
  Array.init total (fun idx ->
      let v = Array.make d 0 in
      let rest = ref idx in
      for k = 0 to d - 1 do
        v.(k) <- !rest mod c;
        rest := !rest / c
      done;
      v)

let norm2 v = Array.fold_left (fun acc x -> acc + (x * x)) 0 v

let dist2 a b =
  let acc = ref 0 in
  for k = 0 to Array.length a - 1 do
    let diff = a.(k) - b.(k) in
    acc := !acc + (diff * diff)
  done;
  !acc

let popular_rho points =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      let r = norm2 p in
      Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
    points;
  let best = ref (-1) and best_count = ref 0 in
  Hashtbl.iter
    (fun r c ->
      if c > !best_count || (c = !best_count && r < !best) then begin
        best := r;
        best_count := c
      end)
    counts;
  !best

let shell points rho = Array.of_list (List.filter (fun p -> norm2 p = rho) (Array.to_list points))

(* Canonical representative of the pair {z, -z}: first non-zero
   coordinate positive. *)
let canonical_direction z =
  let rec first_nonzero k =
    if k >= Array.length z then 0 else if z.(k) <> 0 then z.(k) else first_nonzero (k + 1)
  in
  if first_nonzero 0 < 0 then Array.map (fun x -> -x) z else z

(* Pick the squared distance [mu] maximising the edge count subject to
   the Definition 1.3 budget: the number of distinct edge directions
   (hence matchings) must not exceed the shell size. Falls back to the
   most popular distance when no value fits the budget. *)
let popular_mu pts =
  let counts = Hashtbl.create 64 in
  let directions = Hashtbl.create 64 in
  let n = Array.length pts in
  let d = if n = 0 then 0 else Array.length pts.(0) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let m = dist2 pts.(i) pts.(j) in
      if m > 0 then begin
        Hashtbl.replace counts m
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts m));
        let z =
          canonical_direction (Array.init d (fun k -> pts.(j).(k) - pts.(i).(k)))
        in
        let key = (m, Array.to_list z) in
        if not (Hashtbl.mem directions key) then Hashtbl.replace directions key ()
      end
    done
  done;
  let dir_count m =
    Hashtbl.fold (fun (m', _) () acc -> if m' = m then acc + 1 else acc)
      directions 0
  in
  let best = ref (-1) and best_count = ref 0 in
  let pick m c =
    if c > !best_count || (c = !best_count && (!best < 0 || m < !best)) then begin
      best := m;
      best_count := c
    end
  in
  Hashtbl.iter (fun m c -> if dir_count m <= n then pick m c) counts;
  if !best < 0 then Hashtbl.iter pick counts;
  !best

let build_with ~c ~d ~rho ~mu =
  if c < 2 || d < 1 then invalid_arg "Rs_graph.build_with: need c >= 2, d >= 1";
  if mu <= 0 then invalid_arg "Rs_graph.build_with: need mu > 0";
  let all = enumerate_points ~c ~d in
  let pts = shell all rho in
  let n = Array.length pts in
  if n = 0 then invalid_arg "Rs_graph.build_with: empty shell";
  let buckets : (int list, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist2 pts.(i) pts.(j) = mu then begin
        edges := (i, j) :: !edges;
        let z =
          canonical_direction (Array.init d (fun k -> pts.(j).(k) - pts.(i).(k)))
        in
        let key = Array.to_list z in
        match Hashtbl.find_opt buckets key with
        | Some l -> l := (i, j) :: !l
        | None -> Hashtbl.replace buckets key (ref [ (i, j) ])
      end
    done
  done;
  let graph = Graph.of_edges ~n !edges in
  (* A direction group is *almost* an induced matching (the sphere
     restriction kills cross pairs (x1, x2+z)), but two left endpoints
     x1, x2 may themselves be at distance mu. Refine each group
     greedily into genuinely induced matchings; violations are rare so
     the group count stays close to the number of directions. *)
  let refine group =
    let sub : (int * int) list ref list ref = ref [] in
    let compatible members (u, v) =
      List.for_all
        (fun (a, b) ->
          u <> a && u <> b && v <> a && v <> b
          && (not (Graph.mem_edge graph u a))
          && (not (Graph.mem_edge graph u b))
          && (not (Graph.mem_edge graph v a))
          && not (Graph.mem_edge graph v b))
        members
    in
    List.iter
      (fun e ->
        let rec place = function
          | [] -> sub := ref [ e ] :: !sub
          | g :: rest -> if compatible !g e then g := e :: !g else place rest
        in
        place !sub)
      group;
    List.map (fun g -> !g) !sub
  in
  let matchings =
    Hashtbl.fold (fun _ l acc -> refine !l @ acc) buckets []
  in
  { graph; points = pts; matchings; rho; mu }

let build ~c ~d =
  if c < 2 || d < 1 then invalid_arg "Rs_graph.build: need c >= 2, d >= 1";
  let all = enumerate_points ~c ~d in
  let rho = popular_rho all in
  let pts = shell all rho in
  let mu = popular_mu pts in
  if mu <= 0 then invalid_arg "Rs_graph.build: shell carries no edge";
  build_with ~c ~d ~rho ~mu

let edge_count t = Graph.m t.graph
let matching_count t = List.length t.matchings

let avg_matching_size t =
  if t.matchings = [] then 0.0
  else float_of_int (edge_count t) /. float_of_int (matching_count t)

let density_summary t =
  let n = Graph.n t.graph and m = edge_count t in
  Printf.sprintf
    "n=%d m=%d matchings=%d avg|M|=%.2f n^2/m=%.1f (rho=%d mu=%d)" n m
    (matching_count t) (avg_matching_size t)
    (if m = 0 then infinity else float_of_int (n * n) /. float_of_int m)
    t.rho t.mu
