(** Size accounting and reporting for hub labelings. *)

val sizes : Hub_label.t -> int array

val histogram : Hub_label.t -> (int * int) list
(** [(size, how many vertices)] pairs, sorted by size. *)

val quantile : Hub_label.t -> float -> int
(** [quantile t 0.5] is the median hubset size. *)

val bits_naive : Hub_label.t -> int
(** Bits of the naive binary encoding: each pair costs
    [⌈log₂ n⌉ + ⌈log₂ (1 + max stored distance)⌉] bits. This is the
    "log n overhead" encoding the related-work section contrasts with
    the compressed encodings of [GKU16]/[AGHP16a]. *)

val bits_per_vertex : Hub_label.t -> float

val report : Hub_label.t -> string
(** Multi-line human-readable summary. *)
