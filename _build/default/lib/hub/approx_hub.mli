(** Additive-approximation hubsets — the ingredient §1.1 describes in
    the distance labelings of [AGHP16a]: "an additive approximation
    scheme for hub-labeling is constructed, that is for each pair uv
    there is w ∈ S(u) ∩ S(v) such that either w or some neighbor
    x ∈ N(w) is on a shortest uv path. This guarantees that the
    absolute error of estimation is either 0, 1 or 2."

    Construction: pick a 1-dominating set [N] (greedy), map every
    vertex to a dominator [p(v) ∈ N] at distance ≤ 1, and replace each
    hub [w] of a base exact labeling by [p(w)] (with its true distance).
    Any exact meeting hub [w] becomes [p(w)] ∈ both hubsets with
    [d(u,p(w)) + d(p(w),v) ≤ d(u,v) + 2], so the query error lies in
    [{0, 1, 2}]; distinct hubs with the same dominator merge, shrinking
    the labels. *)

open Repro_graph

type t = {
  labels : Hub_label.t;  (** the approximate hubsets (true distances) *)
  dominators : int array;  (** [p(v)] for every vertex *)
  dominating_set_size : int;
}

val build : ?base:Hub_label.t -> Graph.t -> t
(** [base] defaults to PLL. The base labeling must be exact. *)

val query : t -> int -> int -> int
(** Approximate distance, always within [+2] of the truth (and never
    below it). *)

val max_error : Graph.t -> t -> int
(** Exhaustive maximum additive error over all pairs (expected ≤ 2). *)

val compression : base:Hub_label.t -> t -> float
(** [total base hubs / total approx hubs] — the size saving. *)
