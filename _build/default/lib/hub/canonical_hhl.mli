(** Canonical hierarchical hub labelings, by definition.

    Fix a vertex order (most important first). The canonical labeling
    assigns [w ∈ S(v)] iff [w] is the highest-ranked vertex on some
    shortest [w–v] path ... equivalently, iff no vertex ranked above
    [w] lies on any shortest [w–v] path. This is the minimal labeling
    respecting the hierarchy ([ADGW12]), and pruned landmark labeling
    computes exactly this set — a fact the test suite uses to
    cross-validate {!Pll} against this direct O(n³)-ish definition. *)

open Repro_graph

val build : order:int array -> Graph.t -> Hub_label.t
(** Direct from the definition, using per-vertex BFS distance rows.
    Quadratic memory, cubic-ish time: testing scales only. *)

val respects_hierarchy : rank:int array -> Graph.t -> Hub_label.t -> bool
(** Every stored hub is hierarchically maximal on its pair: for
    [w ∈ S(v)], no vertex with lower rank index (= more important) lies
    on a shortest [w-v] path. ([rank] maps vertex to order position.) *)
