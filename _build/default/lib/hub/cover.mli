(** Correctness checks for hub labelings: is the labeling an exact
    2-hop cover (equivalently, is the family a shortest-path cover with
    true stored distances)? *)

open Repro_graph

type violation = {
  u : int;
  v : int;
  expected : int;  (** graph distance *)
  got : int;  (** labeling answer *)
}

val violations : ?limit:int -> Graph.t -> Hub_label.t -> violation list
(** All (or the first [limit]) pairs where the labeling answer differs
    from the BFS distance. Runs BFS from every vertex. *)

val verify : Graph.t -> Hub_label.t -> bool
(** [violations] is empty. *)

val violations_w : ?limit:int -> Wgraph.t -> Hub_label.t -> violation list
val verify_w : Wgraph.t -> Hub_label.t -> bool

val verify_sampled :
  Graph.t -> Hub_label.t -> rng:Random.State.t -> samples:int -> bool
(** Checks [samples] random sources exhaustively against BFS — a cheap
    screen for large instances. *)

val stored_distances_exact : Graph.t -> Hub_label.t -> bool
(** Every stored pair [(h, d) ∈ S(v)] satisfies [d = dist(v, h)] — a
    stronger well-formedness property all our constructions obey. *)

val pp_violation : Format.formatter -> violation -> unit
