(** The random-hitting-set hub labeling for sparse graphs, in the style
    of [ADKP16]/[GKU16] (§1.1 "Distance labeling of sparse graphs").

    The scheme, as sketched in the paper: a random global hubset [S] of
    size [Θ((n/D) log D)] covers (w.h.p.) every pair at distance at
    least [D] — every such pair has at least [D+1] valid hubs; pairs at
    distance below [D] are covered by storing, for each vertex, its
    full ball of radius [⌈D/2⌉] (any such pair has a midpoint hub in
    both balls). Because a random draw may miss a few far pairs, the
    construction finishes with an explicit patching pass that restores
    exactness and reports how many pairs needed patching — this is the
    "probabilistic method, made constructive with verification"
    substitution documented in DESIGN.md. *)

open Repro_graph

type stats = {
  global_hubs : int;  (** |S| *)
  ball_total : int;  (** Σ_v |ball hubs of v| *)
  patched_pairs : int;  (** far pairs missed by [S], fixed explicitly *)
}

val build :
  rng:Random.State.t -> d:int -> Graph.t -> Hub_label.t * stats
(** [build ~rng ~d g] with threshold [D = d >= 1]. The result is always
    an exact cover (patched if needed). Runs BFS from every vertex, so
    intended for experiment scales ([n] up to ~10⁴). *)

val recommended_d : Graph.t -> int
(** The [Θ(log n)] threshold the paper's discussion suggests. *)
