open Repro_graph

let build ~order g =
  let n = Graph.n g in
  if Array.length order <> n then invalid_arg "Canonical_hhl.build: bad order";
  let rank = Order.rank_of order in
  let rows = Array.init n (fun v -> Traversal.bfs g v) in
  let labels : (int * int) list array = Array.make n [] in
  for v = 0 to n - 1 do
    for w = 0 to n - 1 do
      let dvw = rows.(v).(w) in
      if Dist.is_finite dvw then begin
        (* is w the most important vertex on some shortest v-w path?
           equivalently: no x with rank.(x) < rank.(w) satisfies
           d(v,x) + d(x,w) = d(v,w) *)
        let dominated = ref false in
        for x = 0 to n - 1 do
          if
            rank.(x) < rank.(w)
            && Dist.add rows.(v).(x) rows.(x).(w) = dvw
          then dominated := true
        done;
        if not !dominated then labels.(v) <- (w, dvw) :: labels.(v)
      end
    done
  done;
  Hub_label.make ~n labels

let respects_hierarchy ~rank g labels =
  let n = Graph.n g in
  let rows = Array.init n (fun v -> Traversal.bfs g v) in
  let ok = ref true in
  for v = 0 to n - 1 do
    Array.iter
      (fun (w, dvw) ->
        for x = 0 to n - 1 do
          if
            rank.(x) < rank.(w)
            && Dist.add rows.(v).(x) rows.(x).(w) = dvw
          then ok := false
        done)
      (Hub_label.hubs labels v)
  done;
  !ok
