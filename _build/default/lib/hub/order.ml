open Repro_graph

let identity n = Array.init n (fun i -> i)

let sort_by_score n score =
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare score.(b) score.(a) in
      if c <> 0 then c else compare a b)
    order;
  order

let by_degree g =
  let n = Graph.n g in
  sort_by_score n (Array.init n (fun v -> Graph.degree g v))

let by_wdegree g =
  let n = Wgraph.n g in
  sort_by_score n (Array.init n (fun v -> Wgraph.degree g v))

let random rng n =
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

let by_closeness_sample g ~rng ~samples =
  let n = Graph.n g in
  let score = Array.make n 0.0 in
  for _ = 1 to samples do
    let s = Random.State.int rng n in
    let dist = Traversal.bfs g s in
    for v = 0 to n - 1 do
      if Dist.is_finite dist.(v) then
        score.(v) <- score.(v) -. float_of_int dist.(v)
    done
  done;
  sort_by_score n score

let rank_of order =
  let n = Array.length order in
  let rank = Array.make n (-1) in
  Array.iteri (fun pos v -> rank.(v) <- pos) order;
  rank

let is_permutation order =
  let n = Array.length order in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    order
