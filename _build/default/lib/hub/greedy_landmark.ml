open Repro_graph

let build g =
  let n = Graph.n g in
  let apsp = Apsp.of_graph g in
  let labels : (int * int) list array = Array.make n [] in
  (* Uncovered pairs, as a list refreshed each round. *)
  let uncovered = ref [] in
  for u = 0 to n - 1 do
    for v = u to n - 1 do
      if Dist.is_finite (Apsp.dist apsp u v) then
        uncovered := (u, v) :: !uncovered
    done
  done;
  while !uncovered <> [] do
    (* Count, per candidate hub, how many uncovered pairs it resolves. *)
    let gain = Array.make n 0 in
    List.iter
      (fun (u, v) ->
        let duv = Apsp.dist apsp u v in
        for w = 0 to n - 1 do
          if Dist.add (Apsp.dist apsp u w) (Apsp.dist apsp w v) = duv then
            gain.(w) <- gain.(w) + 1
        done)
      !uncovered;
    let best = ref 0 in
    for w = 1 to n - 1 do
      if gain.(w) > gain.(!best) then best := w
    done;
    let w = !best in
    assert (gain.(w) > 0);
    let still = ref [] in
    List.iter
      (fun (u, v) ->
        let duv = Apsp.dist apsp u v in
        if Dist.add (Apsp.dist apsp u w) (Apsp.dist apsp w v) = duv then begin
          labels.(u) <- (w, Apsp.dist apsp u w) :: labels.(u);
          if v <> u then labels.(v) <- (w, Apsp.dist apsp v w) :: labels.(v)
        end
        else still := (u, v) :: !still)
      !uncovered;
    uncovered := !still
  done;
  Hub_label.make ~n labels
