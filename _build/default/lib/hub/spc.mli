(** Shortest-path covers and highway-dimension estimates — the
    [ADF+16] machinery §1.1 credits for small hubsets on transportation
    networks ("the notion of highway dimension h of a network, which is
    presumed to be a small constant e.g. for road networks").

    An [r]-cover here is a *weak* shortest-path cover: a vertex set
    hitting, for every pair at distance in [(r, 2r]], the valid-hub set
    [H_uv] (i.e. some shortest path of the pair). The local sparsity of
    the cover — the largest number of cover vertices inside any ball of
    radius [2r] — is the standard empirical proxy for the highway
    dimension. Quadratic-to-cubic in [n]: experiment scales only. *)

open Repro_graph

val cover : Graph.t -> r:int -> int list
(** Greedy weak [r]-cover: repeatedly take the vertex lying on shortest
    paths of the most uncovered pairs with distance in [(r, 2r]]. *)

val is_cover : Graph.t -> r:int -> int list -> bool
(** Every pair at distance in [(r, 2r]] has a cover vertex in [H_uv]. *)

val local_sparsity : Graph.t -> r:int -> int list -> int
(** [max over v of |cover ∩ Ball(v, 2r)|]. *)

val highway_dimension_estimate : Graph.t -> (int * int * int) list
(** For each scale [r = 1, 2, 4, ...] up to the diameter:
    [(r, |cover|, local sparsity)] — road-like networks should show
    small sparsity at every scale, unlike expanders. *)
