open Repro_graph

type t = {
  labels : Hub_label.t;
  dominators : int array;
  dominating_set_size : int;
}

(* Greedy 1-dominating set: repeatedly take the vertex covering the
   most undominated vertices (itself + neighbours). *)
let dominating_set g =
  let n = Graph.n g in
  let dominated = Array.make n false in
  let remaining = ref n in
  let chosen = ref [] in
  while !remaining > 0 do
    let best = ref (-1) and best_gain = ref (-1) in
    for v = 0 to n - 1 do
      let gain = ref (if dominated.(v) then 0 else 1) in
      Graph.iter_neighbors g v (fun u -> if not dominated.(u) then incr gain);
      if !gain > !best_gain then begin
        best_gain := !gain;
        best := v
      end
    done;
    let v = !best in
    chosen := v :: !chosen;
    if not dominated.(v) then begin
      dominated.(v) <- true;
      decr remaining
    end;
    Graph.iter_neighbors g v (fun u ->
        if not dominated.(u) then begin
          dominated.(u) <- true;
          decr remaining
        end)
  done;
  !chosen

let build ?base g =
  let n = Graph.n g in
  let base = match base with Some b -> b | None -> Pll.build g in
  let dom = dominating_set g in
  let p = Array.make n (-1) in
  List.iter (fun v -> p.(v) <- v) dom;
  (* map every vertex to an adjacent dominator (or itself) *)
  for v = 0 to n - 1 do
    if p.(v) = -1 then
      Graph.iter_neighbors g v (fun u ->
          if p.(v) = -1 && p.(u) = u then p.(v) <- u)
  done;
  (* distances from every dominator, shared across vertices *)
  let dom_dist = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace dom_dist d (Traversal.bfs g d)) dom;
  let sets =
    Array.init n (fun v ->
        List.filter_map
          (fun (w, _) ->
            let pw = p.(w) in
            let dist = (Hashtbl.find dom_dist pw).(v) in
            if Dist.is_finite dist then Some (pw, dist) else None)
          (Hub_label.hub_list base v))
  in
  {
    labels = Hub_label.make ~n sets;
    dominators = p;
    dominating_set_size = List.length dom;
  }

let query t u v = Hub_label.query t.labels u v

let max_error g t =
  let n = Graph.n g in
  let worst = ref 0 in
  for u = 0 to n - 1 do
    let dist = Traversal.bfs g u in
    for v = u to n - 1 do
      if Dist.is_finite dist.(v) then begin
        let got = query t u v in
        let err = got - dist.(v) in
        if err < 0 then
          invalid_arg "Approx_hub.max_error: underestimate (broken labeling)";
        if err > !worst then worst := err
      end
    done
  done;
  !worst

let compression ~base t =
  float_of_int (Hub_label.total_size base)
  /. float_of_int (max 1 (Hub_label.total_size t.labels))
