(** Redundant-hub elimination.

    Hub labelings produced by unions of components (e.g. the
    Theorem 4.1 construction, whose hubsets are
    [S ∪ Q_v ∪ R_v ∪ N(F_v)]) typically contain hubs that no query
    needs. [prune] removes, vertex by vertex, every hub whose deletion
    keeps all queries involving that vertex exact, yielding a smaller
    labeling that is still an exact cover. Quadratic in [n] times the
    average label size — an offline optimisation pass for experiment
    scales. *)

open Repro_graph

val prune : Graph.t -> Hub_label.t -> Hub_label.t
(** @raise Invalid_argument if the input labeling is not exact (pruning
    is only meaningful on exact covers). *)

val prune_w : Wgraph.t -> Hub_label.t -> Hub_label.t
