(** Vertex orders for hierarchical labelings such as {!Pll}.

    An order is an array listing the vertices from most to least
    important; PLL prunes better when important (high-degree, central)
    vertices come first. *)

open Repro_graph

val identity : int -> int array
val by_degree : Graph.t -> int array
(** Decreasing degree, ties by vertex id. *)

val by_wdegree : Wgraph.t -> int array
val random : Random.State.t -> int -> int array

val by_closeness_sample : Graph.t -> rng:Random.State.t -> samples:int -> int array
(** Decreasing closeness centrality estimated from BFS distances to a
    random sample of pivots. *)

val rank_of : int array -> int array
(** [rank_of order] inverts the order: [rank.(v)] is the position of
    [v]. *)

val is_permutation : int array -> bool
