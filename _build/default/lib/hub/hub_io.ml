let to_string labels =
  let buf = Buffer.create 4096 in
  let n = Hub_label.n labels in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" n (Hub_label.total_size labels));
  for v = 0 to n - 1 do
    let hubs = Hub_label.hubs labels v in
    Buffer.add_string buf (Printf.sprintf "%d %d" v (Array.length hubs));
    Array.iter
      (fun (h, d) -> Buffer.add_string buf (Printf.sprintf " %d %d" h d))
      hubs;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun t -> t <> "")
    |> List.map (fun t ->
           match int_of_string_opt t with
           | Some i -> i
           | None -> invalid_arg ("Hub_io.of_string: bad token " ^ t))
  in
  match lines with
  | [] -> invalid_arg "Hub_io.of_string: empty input"
  | header :: rest -> (
      match ints header with
      | [ n; _total ] ->
          if List.length rest <> n then
            invalid_arg "Hub_io.of_string: vertex count mismatch";
          let sets = Array.make n [] in
          List.iter
            (fun line ->
              match ints line with
              | v :: k :: pairs ->
                  if v < 0 || v >= n then
                    invalid_arg "Hub_io.of_string: vertex out of range";
                  if List.length pairs <> 2 * k then
                    invalid_arg "Hub_io.of_string: pair count mismatch";
                  let rec collect = function
                    | [] -> []
                    | h :: d :: rest -> (h, d) :: collect rest
                    | [ _ ] -> invalid_arg "Hub_io.of_string: odd pair list"
                  in
                  sets.(v) <- collect pairs
              | _ -> invalid_arg "Hub_io.of_string: bad vertex line")
            rest;
          Hub_label.make ~n sets
      | _ -> invalid_arg "Hub_io.of_string: bad header")
