(** Monotone hubsets (§1.2): a hubset family is monotone when, for any
    [x ∈ S(u)], every vertex of some chosen shortest [u-x] path is also
    in [S(u)]. The proof of Theorem 2.1 replaces arbitrary hubsets
    [S_v] by their monotone closure [S*_v] — the minimal subtree of a
    fixed shortest-path tree rooted at [v] containing [S_v] — at a cost
    factor of at most the (weighted) diameter, Eq. (1). *)

open Repro_graph

val closure : Graph.t -> Hub_label.t -> Hub_label.t
(** The monotone closure along BFS trees: for each vertex [v], walk
    each hub's parent chain towards [v], adding every vertex on it with
    its exact distance. Adds [v] itself ([dist] 0). *)

val closure_w : Wgraph.t -> Hub_label.t -> Hub_label.t
(** Same along Dijkstra trees. *)

val is_monotone : Graph.t -> Hub_label.t -> bool
(** Every hub at distance [k >= 1] from [v] has a predecessor hub in
    [S(v)] at distance [k - 1] adjacent to it. *)
