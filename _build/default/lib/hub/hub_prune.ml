open Repro_graph

let prune_generic ~n ~dist_from labels =
  (* Mutable copy of the hubsets, as sorted association lists. *)
  let sets = Array.init n (fun v -> Hub_label.hub_list labels v) in
  let current = ref (Hub_label.make ~n (Array.copy sets)) in
  for v = 0 to n - 1 do
    let dist = dist_from v in
    (* check that removing (h, d) from S(v) keeps every pair (v, u)
       answered exactly; try larger-distance hubs first, as they are
       the most likely to be redundant *)
    let try_order =
      List.sort (fun (_, d1) (_, d2) -> compare d2 d1) sets.(v)
    in
    List.iter
      (fun (h, d) ->
        if h <> v then begin
          let without = List.filter (fun (h', _) -> h' <> h) sets.(v) in
          let tentative_sets = Array.copy sets in
          tentative_sets.(v) <- without;
          let tentative = Hub_label.make ~n tentative_sets in
          let still_exact = ref true in
          for u = 0 to n - 1 do
            if !still_exact && Hub_label.query tentative v u <> dist.(u) then
              still_exact := false
          done;
          if !still_exact then begin
            sets.(v) <- without;
            current := tentative
          end;
          ignore d
        end)
      try_order
  done;
  !current

let prune g labels =
  if not (Cover.verify g labels) then
    invalid_arg "Hub_prune.prune: labeling is not exact";
  prune_generic ~n:(Graph.n g) ~dist_from:(fun v -> Traversal.bfs g v) labels

let prune_w g labels =
  if not (Cover.verify_w g labels) then
    invalid_arg "Hub_prune.prune_w: labeling is not exact";
  prune_generic ~n:(Wgraph.n g)
    ~dist_from:(fun v -> Dijkstra.distances g v)
    labels
