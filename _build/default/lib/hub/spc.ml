open Repro_graph

(* Pairs at distance in (r, 2r], with their distance rows shared. *)
let scale_pairs rows n ~r =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = rows.(u).(v) in
      if Dist.is_finite d && d > r && d <= 2 * r then acc := (u, v) :: !acc
    done
  done;
  !acc

let on_path rows u v x = rows.(u).(x) + rows.(x).(v) = rows.(u).(v)

let cover g ~r =
  if r < 1 then invalid_arg "Spc.cover: need r >= 1";
  let n = Graph.n g in
  let rows = Array.init n (fun v -> Traversal.bfs g v) in
  let uncovered = ref (scale_pairs rows n ~r) in
  let chosen = ref [] in
  while !uncovered <> [] do
    let gain = Array.make n 0 in
    List.iter
      (fun (u, v) ->
        for x = 0 to n - 1 do
          if on_path rows u v x then gain.(x) <- gain.(x) + 1
        done)
      !uncovered;
    let best = ref 0 in
    for x = 1 to n - 1 do
      if gain.(x) > gain.(!best) then best := x
    done;
    assert (gain.(!best) > 0);
    chosen := !best :: !chosen;
    uncovered :=
      List.filter (fun (u, v) -> not (on_path rows u v !best)) !uncovered
  done;
  List.sort compare !chosen

let is_cover g ~r cover =
  let n = Graph.n g in
  let rows = Array.init n (fun v -> Traversal.bfs g v) in
  List.for_all
    (fun (u, v) -> List.exists (fun x -> on_path rows u v x) cover)
    (scale_pairs rows n ~r)

let local_sparsity g ~r cover =
  let n = Graph.n g in
  let worst = ref 0 in
  for v = 0 to n - 1 do
    let dist = Traversal.bfs g v in
    let inside =
      List.fold_left
        (fun acc x -> if dist.(x) <= 2 * r then acc + 1 else acc)
        0 cover
    in
    if inside > !worst then worst := inside
  done;
  !worst

let highway_dimension_estimate g =
  let diam = Traversal.diameter g in
  let rec scales r acc =
    if (not (Dist.is_finite diam)) || r > diam then List.rev acc
    else begin
      let c = cover g ~r in
      scales (2 * r) ((r, List.length c, local_sparsity g ~r c) :: acc)
    end
  in
  scales 1 []
