(** Hub labelings from recursive vertex separators — the technique
    behind the planar-graph bounds of [GPPR04] discussed in §1.1 ("the
    main technical ingredient is an existence of small size
    separators ... applying the separation recursively").

    The decomposition recursively removes a separator from each
    connected region; every vertex stores every vertex of every
    separator chosen for a region containing it, with its *true* graph
    distance. For any pair, consider the smallest region containing
    both: a shortest path either meets that region's separator or an
    ancestor separator, and both endpoints store all of those — so the
    labeling is exact for *any* separator strategy; only its size
    depends on the strategy (O(√n log n) total per vertex on grids with
    the geometric strategy, matching the planar story). *)

open Repro_graph

type strategy = Graph.t -> int list -> int list
(** Given the graph and the vertex list of a region (a connected set
    after ancestor separators were removed), return a non-empty subset
    to use as this region's separator. *)

val bfs_level_strategy : strategy
(** Generic fallback: BFS inside the region from its first vertex and
    cut at the median-distance level. *)

val grid_strategy : cols:int -> strategy
(** Geometric strategy for {!Generators.grid} instances ([rows×cols],
    vertex [(r, c) = r·cols + c]): split the region's bounding box
    through the middle of its longer side. *)

val build : ?strategy:strategy -> Graph.t -> Hub_label.t
(** Exact hub labeling by recursive separation (default strategy:
    {!bfs_level_strategy}). *)

val build_grid : rows:int -> cols:int -> Graph.t -> Hub_label.t
(** Convenience: {!build} with {!grid_strategy}; the graph must be the
    [rows×cols] grid (or a supergraph on the same vertex layout —
    exactness never depends on it, only label size does). *)
