open Repro_graph

type violation = { u : int; v : int; expected : int; got : int }

let pp_violation ppf t =
  Format.fprintf ppf "pair (%d, %d): expected %a, got %a" t.u t.v Dist.pp
    t.expected Dist.pp t.got

let collect ?(limit = max_int) ~n ~dist_from labels =
  let acc = ref [] in
  let count = ref 0 in
  (try
     for u = 0 to n - 1 do
       let dist = dist_from u in
       for v = u to n - 1 do
         let got = Hub_label.query labels u v in
         let expected = dist.(v) in
         if got <> expected then begin
           acc := { u; v; expected; got } :: !acc;
           incr count;
           if !count >= limit then raise Exit
         end
       done
     done
   with Exit -> ());
  List.rev !acc

let violations ?limit g labels =
  collect ?limit ~n:(Graph.n g) ~dist_from:(fun u -> Traversal.bfs g u) labels

let verify g labels = violations ~limit:1 g labels = []

let violations_w ?limit g labels =
  collect ?limit ~n:(Wgraph.n g)
    ~dist_from:(fun u -> Dijkstra.distances g u)
    labels

let verify_w g labels = violations_w ~limit:1 g labels = []

let verify_sampled g labels ~rng ~samples =
  let n = Graph.n g in
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let u = Random.State.int rng n in
      let dist = Traversal.bfs g u in
      for v = 0 to n - 1 do
        if Hub_label.query labels u v <> dist.(v) then ok := false
      done
    end
  done;
  !ok

let stored_distances_exact g labels =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok then begin
      let dist = Traversal.bfs g v in
      Array.iter
        (fun (h, d) -> if dist.(h) <> d then ok := false)
        (Hub_label.hubs labels v)
    end
  done;
  !ok
