open Repro_graph

type strategy = Graph.t -> int list -> int list

let bfs_level_strategy g region =
  match region with
  | [] -> invalid_arg "Separator_label: empty region"
  | [ v ] -> [ v ]
  | start :: _ ->
      let in_region = Hashtbl.create (List.length region) in
      List.iter (fun v -> Hashtbl.replace in_region v ()) region;
      (* BFS restricted to the region *)
      let dist = Hashtbl.create 64 in
      let q = Queue.create () in
      Hashtbl.replace dist start 0;
      Queue.add start q;
      let maxd = ref 0 in
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let du = Hashtbl.find dist u in
        if du > !maxd then maxd := du;
        Graph.iter_neighbors g u (fun v ->
            if Hashtbl.mem in_region v && not (Hashtbl.mem dist v) then begin
              Hashtbl.replace dist v (du + 1);
              Queue.add v q
            end)
      done;
      let cut = (!maxd + 1) / 2 in
      let sep =
        List.filter
          (fun v ->
            match Hashtbl.find_opt dist v with
            | Some d -> d = cut
            | None -> false)
          region
      in
      if sep = [] then [ start ] else sep

let grid_strategy ~cols g region =
  ignore g;
  match region with
  | [] -> invalid_arg "Separator_label: empty region"
  | [ v ] -> [ v ]
  | _ ->
      let rows_of v = v / cols and cols_of v = v mod cols in
      let rmin = ref max_int and rmax = ref min_int in
      let cmin = ref max_int and cmax = ref min_int in
      List.iter
        (fun v ->
          rmin := min !rmin (rows_of v);
          rmax := max !rmax (rows_of v);
          cmin := min !cmin (cols_of v);
          cmax := max !cmax (cols_of v))
        region;
      let sep =
        if !rmax - !rmin >= !cmax - !cmin then begin
          let mid = (!rmin + !rmax) / 2 in
          List.filter (fun v -> rows_of v = mid) region
        end
        else begin
          let mid = (!cmin + !cmax) / 2 in
          List.filter (fun v -> cols_of v = mid) region
        end
      in
      if sep = [] then [ List.hd region ] else sep

let build ?(strategy = bfs_level_strategy) g =
  let n = Graph.n g in
  let labels : (int * int) list array = Array.make n [] in
  let removed = Array.make n false in
  (* connected components of a vertex set under [removed] *)
  let components vertices =
    let pending = Hashtbl.create (List.length vertices) in
    List.iter (fun v -> if not removed.(v) then Hashtbl.replace pending v ()) vertices;
    let comps = ref [] in
    let q = Queue.create () in
    Hashtbl.iter
      (fun start () ->
        if Hashtbl.mem pending start then begin
          let comp = ref [] in
          Hashtbl.remove pending start;
          Queue.add start q;
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            comp := u :: !comp;
            Graph.iter_neighbors g u (fun v ->
                if Hashtbl.mem pending v then begin
                  Hashtbl.remove pending v;
                  Queue.add v q
                end)
          done;
          comps := !comp :: !comps
        end)
      pending;
    !comps
  in
  let rec decompose region =
    if region <> [] then begin
      let sep = strategy g region in
      if sep = [] then invalid_arg "Separator_label: strategy returned []";
      (* every region vertex stores every separator vertex with its
         true distance in the full graph *)
      List.iter
        (fun s ->
          let dist = Traversal.bfs g s in
          List.iter
            (fun v ->
              if Dist.is_finite dist.(v) then
                labels.(v) <- (s, dist.(v)) :: labels.(v))
            region)
        sep;
      List.iter (fun s -> removed.(s) <- true) sep;
      List.iter decompose (components region)
    end
  in
  List.iter decompose
    (components (List.init n (fun i -> i)));
  Hub_label.make ~n labels

let build_grid ~rows ~cols g =
  if Graph.n g <> rows * cols then
    invalid_arg "Separator_label.build_grid: vertex count mismatch";
  build ~strategy:(grid_strategy ~cols) g
