(** Small-scale greedy landmark labeling, after the landmark-labeling
    view of [AG11]: repeatedly pick the vertex lying on shortest paths
    of the most still-uncovered pairs and add it as a hub to both sides
    of all those pairs.

    O(n³) per round with up to O(n) rounds — a quality (not speed)
    baseline for instances of a few hundred vertices, used in tests and
    in the upper-bound comparison experiment. *)

open Repro_graph

val build : Graph.t -> Hub_label.t
(** Exact cover by construction (every pair ends covered; unreachable
    pairs need no hub). *)
