(** Plain-text serialisation of hub labelings.

    Format: header ["n total"], then one line per vertex:
    ["v k h1 d1 h2 d2 ..."]. Lossless. *)

val to_string : Hub_label.t -> string

val of_string : string -> Hub_label.t
(** @raise Invalid_argument on malformed input. *)
