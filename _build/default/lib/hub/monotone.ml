open Repro_graph

let closure_generic ~n ~tree_from labels =
  let out = Array.make n [] in
  for v = 0 to n - 1 do
    let dist, parent = tree_from v in
    let added = Hashtbl.create 16 in
    let add x =
      if not (Hashtbl.mem added x) then begin
        Hashtbl.replace added x ();
        out.(v) <- (x, dist.(x)) :: out.(v)
      end
    in
    add v;
    Array.iter
      (fun (h, _) ->
        (* climb from h to v along the tree *)
        let rec climb x =
          if not (Hashtbl.mem added x) then begin
            add x;
            let p = parent.(x) in
            if p >= 0 then climb p
          end
        in
        if Dist.is_finite dist.(h) then climb h)
      (Hub_label.hubs labels v)
  done;
  Hub_label.make ~n out

let closure g labels =
  closure_generic ~n:(Graph.n g)
    ~tree_from:(fun v ->
      let r = Traversal.bfs_full g v in
      (r.Traversal.dist, r.Traversal.parent))
    labels

let closure_w g labels =
  closure_generic ~n:(Wgraph.n g)
    ~tree_from:(fun v ->
      let r = Dijkstra.shortest_paths g v in
      (r.Dijkstra.dist, r.Dijkstra.parent))
    labels

let is_monotone g labels =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok then begin
      let dist = Traversal.bfs g v in
      Array.iter
        (fun (h, d) ->
          if d >= 1 then begin
            let has_pred = ref false in
            Graph.iter_neighbors g h (fun p ->
                if
                  dist.(p) = d - 1
                  && Hub_label.dist_to_hub labels v ~hub:p = Some (d - 1)
                then has_pred := true);
            if not !has_pred then ok := false
          end)
        (Hub_label.hubs labels v)
    end
  done;
  !ok
