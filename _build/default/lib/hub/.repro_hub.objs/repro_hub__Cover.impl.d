lib/hub/cover.ml: Array Dijkstra Dist Format Graph Hub_label List Random Repro_graph Traversal Wgraph
