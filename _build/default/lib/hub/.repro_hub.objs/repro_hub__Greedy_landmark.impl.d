lib/hub/greedy_landmark.ml: Apsp Array Dist Graph Hub_label List Repro_graph
