lib/hub/order.ml: Array Dist Graph Random Repro_graph Traversal Wgraph
