lib/hub/pll.mli: Graph Hub_label Repro_graph Wgraph
