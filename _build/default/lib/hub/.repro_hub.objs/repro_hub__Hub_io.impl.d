lib/hub/hub_io.ml: Array Buffer Hub_label List Printf String
