lib/hub/hub_io.mli: Hub_label
