lib/hub/order.mli: Graph Random Repro_graph Wgraph
