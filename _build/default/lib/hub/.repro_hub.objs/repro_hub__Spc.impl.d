lib/hub/spc.ml: Array Dist Graph List Repro_graph Traversal
