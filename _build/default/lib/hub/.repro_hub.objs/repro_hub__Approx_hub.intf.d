lib/hub/approx_hub.mli: Graph Hub_label Repro_graph
