lib/hub/monotone.ml: Array Dijkstra Dist Graph Hashtbl Hub_label Repro_graph Traversal Wgraph
