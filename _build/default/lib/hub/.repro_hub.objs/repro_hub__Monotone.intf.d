lib/hub/monotone.mli: Graph Hub_label Repro_graph Wgraph
