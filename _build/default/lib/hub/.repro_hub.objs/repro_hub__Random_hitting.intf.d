lib/hub/random_hitting.mli: Graph Hub_label Random Repro_graph
