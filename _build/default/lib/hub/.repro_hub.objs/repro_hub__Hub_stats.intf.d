lib/hub/hub_stats.mli: Hub_label
