lib/hub/greedy_landmark.mli: Graph Hub_label Repro_graph
