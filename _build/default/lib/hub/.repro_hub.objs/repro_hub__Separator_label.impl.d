lib/hub/separator_label.ml: Array Dist Graph Hashtbl Hub_label List Queue Repro_graph Traversal
