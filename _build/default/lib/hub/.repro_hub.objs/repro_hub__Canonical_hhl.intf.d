lib/hub/canonical_hhl.mli: Graph Hub_label Repro_graph
