lib/hub/canonical_hhl.ml: Array Dist Graph Hub_label Order Repro_graph Traversal
