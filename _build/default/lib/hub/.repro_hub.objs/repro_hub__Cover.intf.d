lib/hub/cover.mli: Format Graph Hub_label Random Repro_graph Wgraph
