lib/hub/hub_prune.mli: Graph Hub_label Repro_graph Wgraph
