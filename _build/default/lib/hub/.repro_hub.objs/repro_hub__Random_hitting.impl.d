lib/hub/random_hitting.ml: Array Dist Graph Hub_label Random Repro_graph Traversal
