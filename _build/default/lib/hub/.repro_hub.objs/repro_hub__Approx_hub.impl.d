lib/hub/approx_hub.ml: Array Dist Graph Hashtbl Hub_label List Pll Repro_graph Traversal
