lib/hub/hub_prune.ml: Array Cover Dijkstra Graph Hub_label List Repro_graph Traversal Wgraph
