lib/hub/hub_label.ml: Array Dist Format List Repro_graph
