lib/hub/separator_label.mli: Graph Hub_label Repro_graph
