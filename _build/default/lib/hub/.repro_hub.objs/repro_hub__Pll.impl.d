lib/hub/pll.ml: Array Dist Graph Hub_label List Order Pqueue Queue Repro_graph Wgraph
