lib/hub/spc.mli: Graph Repro_graph
