lib/hub/hub_stats.ml: Array Hashtbl Hub_label List Option Printf
