lib/hub/hub_label.mli: Format
