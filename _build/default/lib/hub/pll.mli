(** Pruned Landmark Labeling [Akiba–Iwata–Yoshida, SIGMOD'13] — the
    standard practical hub-labeling construction, used throughout the
    experiments as the "real labeling" whose sizes are compared against
    the paper's lower and upper bounds.

    Vertices are processed from most to least important; a pruned
    BFS/Dijkstra from the k-th vertex adds it as a hub exactly to the
    vertices whose distance is not already answered by
    higher-importance hubs. The result is the minimal *canonical
    hierarchical* labeling for the given order, and is always an exact
    cover. *)

open Repro_graph

val build : ?order:int array -> Graph.t -> Hub_label.t
(** Unweighted PLL via pruned BFS. Default order: decreasing degree. *)

val build_w : ?order:int array -> Wgraph.t -> Hub_label.t
(** Weighted PLL via pruned Dijkstra (weights may be zero). *)
