open Repro_graph

type stats = { global_hubs : int; ball_total : int; patched_pairs : int }

let recommended_d g =
  let n = Graph.n g in
  max 2 (int_of_float (log (float_of_int (max n 2))))

let build ~rng ~d g =
  if d < 1 then invalid_arg "Random_hitting.build: need d >= 1";
  let n = Graph.n g in
  let radius = (d + 1) / 2 in
  (* Global random hubset of size ~ (n/d) ln(d+1), at least 1. *)
  let target =
    max 1
      (int_of_float
         (ceil (float_of_int n /. float_of_int d *. log (float_of_int (d + 1)))))
  in
  let in_s = Array.make n false in
  let s_count = ref 0 in
  let budget = ref (20 * (target + 1)) in
  while !s_count < min target n && !budget > 0 do
    decr budget;
    let v = Random.State.int rng n in
    if not in_s.(v) then begin
      in_s.(v) <- true;
      incr s_count
    end
  done;
  let labels : (int * int) list array = Array.make n [] in
  (* BFS from every vertex once; store ball hubs, distances to global
     hubs, and keep the rows to patch afterwards. *)
  let rows = Array.init n (fun v -> Traversal.bfs g v) in
  let ball_total = ref 0 in
  for v = 0 to n - 1 do
    let dist = rows.(v) in
    for x = 0 to n - 1 do
      let dx = dist.(x) in
      if Dist.is_finite dx then begin
        if dx <= radius then begin
          labels.(v) <- (x, dx) :: labels.(v);
          incr ball_total
        end
        else if in_s.(x) then labels.(v) <- (x, dx) :: labels.(v)
      end
    done
  done;
  (* Patch the far pairs the random hubset missed: add v itself as a
     hub of u (and (v,0) of v, ensured by the ball since radius >= 0). *)
  let patched = ref 0 in
  let tentative = Hub_label.make ~n (Array.copy labels) in
  for u = 0 to n - 1 do
    let dist = rows.(u) in
    for v = u + 1 to n - 1 do
      if Dist.is_finite dist.(v) && dist.(v) > d then
        if Hub_label.query tentative u v <> dist.(v) then begin
          labels.(u) <- (v, dist.(v)) :: labels.(u);
          incr patched
        end
    done
  done;
  let final = Hub_label.make ~n labels in
  ( final,
    {
      global_hubs = !s_count;
      ball_total = !ball_total;
      patched_pairs = !patched;
    } )
