open Repro_labeling

type protocol = {
  name : string;
  universe : int;
  alice : bool array -> int -> Bitvec.t;
  bob : bool array -> int -> Bitvec.t;
  referee : Bitvec.t -> Bitvec.t -> bool;
}

let answer s a b =
  let n = Array.length s in
  if n = 0 then invalid_arg "Sum_index.answer: empty string";
  s.((a + b) mod n)

let run p s a b = p.referee (p.alice s a) (p.bob s b)

let correct_on p s =
  let n = Array.length s in
  if n <> p.universe then invalid_arg "Sum_index.correct_on: wrong length";
  let ok = ref true in
  for a = 0 to n - 1 do
    if !ok then begin
      let ma = p.alice s a in
      for b = 0 to n - 1 do
        if !ok && p.referee ma (p.bob s b) <> answer s a b then ok := false
      done
    end
  done;
  !ok

let max_message_bits p s =
  let n = Array.length s in
  let ma = ref 0 and mb = ref 0 in
  for i = 0 to n - 1 do
    ma := max !ma (Bitvec.length (p.alice s i));
    mb := max !mb (Bitvec.length (p.bob s i))
  done;
  (!ma, !mb)

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  if x <= 1 then 1 else go 0 1

let trivial ~n =
  if n < 1 then invalid_arg "Sum_index.trivial";
  let width = ceil_log2 n in
  {
    name = "trivial";
    universe = n;
    alice =
      (fun s a ->
        Bitvec.of_bools (List.init n (fun i -> s.((a + i) mod n))));
    bob =
      (fun _ b ->
        let w = Bit_io.Writer.create () in
        Bit_io.Writer.bits w ~width b;
        Bit_io.Writer.contents w);
    referee =
      (fun ma mb ->
        let r = Bit_io.Reader.of_bitvec mb in
        let b = Bit_io.Reader.bits r ~width in
        Bitvec.get ma b);
  }

let sqrt_lower_bound_bits n = sqrt (float_of_int n)

let ambainis_upper_bound_bits n =
  let fn = float_of_int (max n 2) in
  let logn = log fn /. log 2.0 in
  fn *. (logn ** 0.25) /. (2.0 ** sqrt logn)

let random_instance rng n = Array.init n (fun _ -> Random.State.bool rng)
