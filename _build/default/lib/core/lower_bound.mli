(** Executable form of Section 2: Lemma 2.2 and the counting argument
    behind Theorem 2.1 / Theorem 1.1.

    The counting argument: fix any hub labeling [{S_v}] of [G_{b,ℓ}]
    and shortest-path trees [T_v]; let [S*_v] be the monotone closure
    (minimal subtree of [T_v] containing [S_v]). For every valid triple
    [(x, y, z)] with [y = (x+z)/2], the unique shortest path between
    the anchors of [v_{0,x}] and [v_{2ℓ,z}] passes through the anchor
    of [v_{ℓ,y}], so that anchor lies in [S*] of one of the two
    endpoints; since [x] (resp. [z]) is determined by [(y, z)] (resp.
    [(x, y)]), contributions are distinct and
    [Σ_v |S*_v| >= s^ℓ (s/2)^ℓ]. Combined with Eq. (1)
    ([|S*_v| <= diam · |S_v|]) this lower-bounds the average hubset
    size of any exact labeling. *)

open Repro_hub

type lemma_check = {
  pairs_checked : int;
  unique_failures : int;  (** valid pairs with more than one shortest path *)
  midpoint_failures : int;  (** valid pairs whose path avoids the midpoint *)
  distance_failures : int;
      (** valid pairs whose distance differs from the closed form *)
}

val check_lemma22_grid : Grid_graph.t -> lemma_check
(** Exhaustive check of Lemma 2.2 on [H_{b,ℓ}] over all valid pairs
    [(x, z)] (no vertex removed). Uses Dijkstra with path counting. *)

val check_lemma22_gadget : Degree_gadget.t -> lemma_check
(** Same on the unweighted [G_{b,ℓ}], via BFS with path counting
    between anchors; also checks
    [dist_G(anchor x, anchor z) = dist_H(x, z)]. *)

val counting_bound : Grid_graph.t -> int
(** [s^ℓ · (s/2)^ℓ] — the proven lower bound on [Σ_v |S*_v|]. *)

val closure_total : Degree_gadget.t -> Hub_label.t -> int
(** [Σ_v |S*_v|] for an actual labeling of the gadget graph (monotone
    closure along BFS trees). *)

val check_counting_argument : Degree_gadget.t -> Hub_label.t -> bool * int
(** [(bound_holds, closure_total)]: verifies
    [Σ_v |S*_v| >= counting_bound] on a concrete exact labeling —
    the Theorem 2.1(iii) inequality, certified empirically. *)

val midpoint_charge_total : Degree_gadget.t -> Hub_label.t -> int
(** The sharper count the proof actually charges: the number of valid
    triples [(x, y, z)] whose midpoint anchor belongs to the monotone
    closure of at least one endpoint. Must equal the number of valid
    triples (i.e. {!counting_bound}) for any exact labeling. *)

val avg_hub_size_lower_bound : Degree_gadget.t -> float
(** The certified bound on the average hubset size of any exact hub
    labeling of this gadget instance:
    [counting_bound / (diam(G) · n(G))] per Eq. (1), using the proof's
    analytic diameter bound [(3ℓ+1)s² · 4ℓ]. *)

val avg_hub_size_lower_bound_measured : ?samples:int -> Degree_gadget.t -> float
(** Tighter certified variant: replaces the analytic diameter bound by
    the measured upper bound [min over sampled v of 2·ecc(v)]
    (eccentricities from a few BFS runs; [samples] defaults to 3).
    Still a sound lower bound, usually an order of magnitude above the
    analytic one at experiment scales. *)
