open Repro_graph
open Repro_hub

type kind =
  | Full of Apsp.t
  | Hub of Hub_label.t
  | On_demand of Graph.t

type t = { kind : kind; space : int; label : string }

let full g =
  let apsp = Apsp.of_graph g in
  let n = Graph.n g in
  { kind = Full apsp; space = n * n; label = "full-matrix" }

let hub g labels =
  ignore g;
  {
    kind = Hub labels;
    space = 2 * Hub_label.total_size labels;
    label = "hub-labeling";
  }

let on_demand g =
  {
    kind = On_demand g;
    space = (2 * Graph.m g) + Graph.n g;
    label = "bfs-on-demand";
  }

let query t u v =
  match t.kind with
  | Full apsp -> Apsp.dist apsp u v
  | Hub labels -> Hub_label.query labels u v
  | On_demand g -> (Traversal.bfs g u).(v)

let name t = t.label
let space_words t = t.space
