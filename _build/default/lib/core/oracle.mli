(** Centralised distance oracles — the space/time tradeoff discussion
    of the introduction ("a natural objective ... data structures using
    space S and resolving exact distance queries in time T, with
    ST = Õ(n²)").

    Three endpoints of the tradeoff, all exact:
    - [full]: the precomputed n×n matrix — S = Θ(n²), T = O(1);
    - [hub]: a hub labeling — S = Θ(Σ|S_v|), T = O(|S_u| + |S_v|);
    - [on_demand]: store only the graph and BFS per query —
      S = Θ(n + m), T = O(n + m).

    The [E-ORACLE] experiment measures all three on sparse instances,
    exhibiting the tradeoff curve the paper's lower bound constrains
    (hub-based oracles cannot beat [n/2^Θ(√log n)] space on the
    construction of Section 2). *)

open Repro_graph
open Repro_hub

type t

val full : Graph.t -> t
val hub : Graph.t -> Hub_label.t -> t
val on_demand : Graph.t -> t

val query : t -> int -> int -> int
val name : t -> string

val space_words : t -> int
(** Machine words of the query structure: [n²] for [full], twice the
    total hub count for [hub], [2m + n] for [on_demand]. *)
