open Repro_hub
open Repro_labeling

type params = { b : int; l : int; s : int; half : int; m : int }

let params ~b ~l =
  if b < 2 then invalid_arg "Si_reduction.params: need b >= 2 (s/2 >= 2)";
  if l < 1 then invalid_arg "Si_reduction.params: need l >= 1";
  let s = 1 lsl b in
  let half = s / 2 in
  let rec ipow base e = if e = 0 then 1 else base * ipow base (e - 1) in
  { b; l; s; half; m = ipow half l }

let repr p x =
  if Array.length x <> p.l then invalid_arg "Si_reduction.repr";
  let acc = ref 0 in
  for k = p.l - 1 downto 0 do
    acc := ((!acc * p.half) + x.(k)) mod p.m
  done;
  !acc

let index_vector p a =
  if a < 0 || a >= p.m then invalid_arg "Si_reduction.index_vector";
  let v = Array.make p.l 0 in
  let rest = ref a in
  for k = 0 to p.l - 1 do
    v.(k) <- !rest mod p.half;
    rest := !rest / p.half
  done;
  v

let graph_of_string p s =
  if Array.length s <> p.m then
    invalid_arg "Si_reduction.graph_of_string: wrong string length";
  Grid_graph.create ~b:p.b ~l:p.l
    ~remove_mid:(fun x -> not s.(repr p x))
    ()

let ceil_log2 x =
  let rec go acc q = if q >= x then acc else go (acc + 1) (2 * q) in
  if x <= 1 then 1 else go 0 1

(* Shared preprocessing: both players deterministically construct the
   same graph and the same exact labeling of it. *)
let preprocess p s =
  let grid = graph_of_string p s in
  let h = grid.Grid_graph.graph in
  let labels = Pll.build_w h in
  (grid, labels, (fun v -> v))

(* Literal variant: label the unweighted max-degree-3 gadget G'_{b,l}
   itself (the graph class of the theorem statement); anchors stand in
   for grid vertices and distances coincide across levels. *)
let preprocess_gadget p s =
  let grid = graph_of_string p s in
  let gadget = Degree_gadget.build grid in
  let labels = Pll.build gadget.Degree_gadget.graph in
  (grid, labels, Degree_gadget.anchor_of gadget)

let message p labels grid anchor ~side idx =
  let x = index_vector p idx in
  let double = Array.map (fun c -> 2 * c) x in
  let vertex =
    anchor
      (match side with
      | `Alice -> Grid_graph.bottom grid double
      | `Bob -> Grid_graph.top grid double)
  in
  let w = Bit_io.Writer.create () in
  Bit_io.Writer.bits w ~width:(ceil_log2 p.m) idx;
  let pairs = Hub_label.hubs labels vertex in
  let encoded = Encoder.encode_vertex pairs in
  (* append the label bits after the index *)
  List.iter (fun bit -> Bit_io.Writer.bit w bit) (Bitvec.to_bools encoded);
  Bit_io.Writer.contents w

let protocol_with ~name ~preprocess p =
  let width = ceil_log2 p.m in
  let parse msg =
    let r = Bit_io.Reader.of_bitvec msg in
    let idx = Bit_io.Reader.bits r ~width in
    let pairs = Encoder.decode_vertex_from r in
    (idx, pairs)
  in
  (* cache the (expensive) preprocessing per shared string *)
  let cache : (bool list, Grid_graph.t * Hub_label.t * (int -> int)) Hashtbl.t =
    Hashtbl.create 4
  in
  let get s =
    let key = Array.to_list s in
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
        let r = preprocess p s in
        Hashtbl.replace cache key r;
        r
  in
  {
    Sum_index.name = Printf.sprintf "%s(b=%d,l=%d)" name p.b p.l;
    universe = p.m;
    alice =
      (fun s a ->
        let grid, labels, anchor = get s in
        message p labels grid anchor ~side:`Alice a);
    bob =
      (fun s b ->
        let grid, labels, anchor = get s in
        message p labels grid anchor ~side:`Bob b);
    referee =
      (fun ma mb ->
        let a, pa = parse ma in
        let b, pb = parse mb in
        let dist = Encoder.query_pairs pa pb in
        (* Observation 3.1: recompute the closed-form distance for the
           pair (2x, 2z) on a string-independent grid skeleton *)
        let x = index_vector p a and z = index_vector p b in
        let sq = ref 0 in
        for k = 0 to p.l - 1 do
          let diff = (2 * z.(k)) - (2 * x.(k)) in
          sq := !sq + (diff * diff)
        done;
        let a_weight = 3 * p.l * p.s * p.s in
        let expected = (2 * p.l * a_weight) + (!sq / 2) in
        dist = expected);
  }

let protocol p = protocol_with ~name:"thm1.6" ~preprocess p

let protocol_gadget p = protocol_with ~name:"thm1.6-deg3" ~preprocess:preprocess_gadget p

let predicted_label_bits p =
  max 0.0 (Sum_index.sqrt_lower_bound_bits p.m -. float_of_int (p.b * p.l))
