open Repro_graph
open Repro_hub

type verdict = { claim : string; holds : bool; detail : string }

let pp_verdict ppf v =
  Format.fprintf ppf "[%s] %s — %s"
    (if v.holds then "OK" else "FAIL")
    v.claim v.detail

let v claim holds detail = { claim; holds; detail }

let check_theorem21 ~b ~l =
  let grid = Grid_graph.create ~b ~l () in
  let gadget = Degree_gadget.build grid in
  let g = gadget.Degree_gadget.graph in
  let size_ok = Graph.n g <= Degree_gadget.theorem21_node_bound gadget in
  let deg = Graph.max_degree g in
  let ch = Lower_bound.check_lemma22_grid grid in
  let cg = Lower_bound.check_lemma22_gadget gadget in
  let lemma_ok (c : Lower_bound.lemma_check) =
    c.Lower_bound.unique_failures = 0
    && c.Lower_bound.midpoint_failures = 0
    && c.Lower_bound.distance_failures = 0
  in
  let labels = Pll.build g in
  let exact = Cover.verify_sampled g labels ~rng:(Random.State.make [| 1 |]) ~samples:5 in
  let holds, total = Lower_bound.check_counting_argument gadget labels in
  [
    v "2.1(i) node count within bound" size_ok
      (Printf.sprintf "|V(G)| = %d <= %d" (Graph.n g)
         (Degree_gadget.theorem21_node_bound gadget));
    v "2.1(ii) maximum degree 3" (deg <= 3) (Printf.sprintf "Δ(G) = %d" deg);
    v "Lemma 2.2 on H" (lemma_ok ch)
      (Printf.sprintf "%d pairs, 0 failures expected" ch.Lower_bound.pairs_checked);
    v "Lemma 2.2 on G" (lemma_ok cg)
      (Printf.sprintf "%d pairs, 0 failures expected" cg.Lower_bound.pairs_checked);
    v "2.1(iii) counting inequality on a real labeling" (exact && holds)
      (Printf.sprintf "Σ|S*| = %d >= %d (labeling exact: %b)" total
         (Lower_bound.counting_bound grid) exact);
  ]

let check_theorem41 ~rng ?d g =
  let labels, st = Rs_hub.build ~rng ?d g in
  [
    v "4.1 labeling is an exact cover" (Cover.verify g labels)
      (Printf.sprintf "n=%d, D=%d, avg |S(v)| = %.1f" st.Rs_hub.n st.Rs_hub.d
         (Hub_label.avg_size labels));
    v "4.1 stored distances are exact" (Cover.stored_distances_exact g labels)
      "every (hub, d) pair matches BFS";
  ]

let check_theorem14 ~rng ?d g =
  let labels, st = Rs_hub.build_sparse ~rng ?d g in
  [
    v "1.4 subdivide-and-project labeling is exact" (Cover.verify g labels)
      (Printf.sprintf "n=%d (subdivided to %d), avg |S(v)| = %.1f" (Graph.n g)
         st.Rs_hub.n (Hub_label.avg_size labels));
  ]

let check_theorem16 ~b ~l ~seed =
  let p = Si_reduction.params ~b ~l in
  let m = p.Si_reduction.m in
  let proto = Si_reduction.protocol p in
  let random_s = Sum_index.random_instance (Random.State.make [| seed |]) m in
  let all_zero = Array.make m false in
  let all_one = Array.make m true in
  [
    v "1.6 protocol correct (random string)"
      (Sum_index.correct_on proto random_s)
      (Printf.sprintf "all %d index pairs decode" (m * m));
    v "1.6 protocol correct (all-removed)"
      (Sum_index.correct_on proto all_zero)
      "middle layer fully deleted";
    v "1.6 protocol correct (all-kept)"
      (Sum_index.correct_on proto all_one)
      "middle layer intact";
  ]

let check_all ~seed =
  let rng = Random.State.make [| seed |] in
  check_theorem21 ~b:2 ~l:1
  @ check_theorem21 ~b:1 ~l:2
  @ check_theorem41 ~rng ~d:5
      (Generators.random_bounded_degree rng ~n:120 ~d:3)
  @ check_theorem14 ~rng ~d:4 (Generators.gnm rng ~n:60 ~m:180)
  @ check_theorem16 ~b:2 ~l:1 ~seed
  @ check_theorem16 ~b:2 ~l:2 ~seed
