lib/core/rs_hub.ml: Array Dijkstra Dist Graph Hashtbl Hub_label List Random Repro_graph Repro_hub Repro_matching Repro_rs Subdivide Traversal Wgraph
