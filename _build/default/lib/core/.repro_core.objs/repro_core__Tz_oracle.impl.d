lib/core/tz_oracle.ml: Array Dist Graph List Random Repro_graph Traversal
