lib/core/oracle.ml: Apsp Array Graph Hub_label Repro_graph Repro_hub Traversal
