lib/core/si_reduction.ml: Array Bit_io Bitvec Degree_gadget Encoder Grid_graph Hashtbl Hub_label List Pll Printf Repro_hub Repro_labeling Sum_index
