lib/core/rs_hub.mli: Graph Hub_label Random Repro_graph Repro_hub Wgraph
