lib/core/theorems.mli: Format Graph Random Repro_graph
