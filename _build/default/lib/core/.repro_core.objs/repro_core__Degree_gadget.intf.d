lib/core/degree_gadget.mli: Graph Grid_graph Repro_graph
