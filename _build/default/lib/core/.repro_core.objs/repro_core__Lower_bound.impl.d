lib/core/lower_bound.ml: Array Degree_gadget Dijkstra Graph Grid_graph Hub_label List Monotone Repro_graph Repro_hub Traversal
