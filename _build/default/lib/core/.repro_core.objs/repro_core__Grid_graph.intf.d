lib/core/grid_graph.mli: Repro_graph Wgraph
