lib/core/sum_index.ml: Array Bit_io Bitvec List Random Repro_labeling
