lib/core/sum_index.mli: Bitvec Random Repro_labeling
