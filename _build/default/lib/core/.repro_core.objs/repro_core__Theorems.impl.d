lib/core/theorems.ml: Array Cover Degree_gadget Format Generators Graph Grid_graph Hub_label Lower_bound Pll Printf Random Repro_graph Repro_hub Rs_hub Si_reduction Sum_index
