lib/core/hubhard.mli: Repro_graph Repro_hub Repro_labeling Repro_matching Repro_route Repro_rs
