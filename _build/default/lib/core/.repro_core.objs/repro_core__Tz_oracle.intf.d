lib/core/tz_oracle.mli: Graph Random Repro_graph
