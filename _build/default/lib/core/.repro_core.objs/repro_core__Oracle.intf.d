lib/core/oracle.mli: Graph Hub_label Repro_graph Repro_hub
