lib/core/si_reduction.mli: Grid_graph Sum_index
