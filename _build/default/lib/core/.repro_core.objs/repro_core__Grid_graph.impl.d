lib/core/grid_graph.ml: Array Repro_graph Wgraph
