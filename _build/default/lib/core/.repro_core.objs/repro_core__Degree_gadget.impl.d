lib/core/degree_gadget.ml: Array Graph Grid_graph List Repro_graph Wgraph
