lib/core/lower_bound.mli: Degree_gadget Grid_graph Hub_label Repro_hub
