(** The degree-reduction gadget of Theorem 2.1: converts the weighted
    layered graph [H_{b,ℓ}] into the unweighted graph [G_{b,ℓ}] with
    maximum degree 3.

    Each grid vertex [v] receives two perfectly balanced binary trees
    [T_in(v)] and [T_out(v)] of depth [b] with [s = 2^b] leaves, both
    roots linked to [v] by an edge ([T_in] omitted at level 0, [T_out]
    at level [2ℓ]). The leaf of [T_out(u)] (resp. [T_in(v)]) designated
    by the changing coordinate's new (resp. old) value is connected to
    its counterpart by a path of [w(e) - 2b - 2] unit edges, so the
    [u .. v] walk through the gadget has length exactly [w(e)].

    Consequently (last step of the proof of Lemma 2.2) distances
    between anchors of grid vertices on different levels coincide with
    the [H_{b,ℓ}] distances, shortest paths between valid extreme pairs
    stay unique, and they pass through the midpoint's anchor. *)

open Repro_graph

type t = {
  grid : Grid_graph.t;
  graph : Graph.t;  (** the unweighted [G_{b,ℓ}], max degree 3 *)
  anchor : int array;  (** grid vertex id -> its anchor vertex in [graph] *)
}

val build : Grid_graph.t -> t

val anchor_of : t -> int -> int
(** Anchor of a grid vertex. *)

val is_anchor : t -> int -> int option
(** If the gadget vertex is the anchor of a grid vertex, that grid
    vertex. *)

val n : t -> int
(** Number of vertices of [G_{b,ℓ}]. *)

val theorem21_node_bound : t -> int
(** The right-hand side of the size estimate in the proof:
    [4s·s^ℓ·(2ℓ+1) + (3ℓ+1)s²·s^ℓ·2ℓ·s] — our construction must stay
    within it. *)
