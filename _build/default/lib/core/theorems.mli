(** Consolidated, executable certificates for the paper's claims —
    everything `bin/hubhard_cli.exe check` runs.

    Each checker builds the relevant construction at the given
    parameters, runs the full verification machinery and returns a
    structured verdict. All checks are deterministic given the seed. *)

open Repro_graph

type verdict = { claim : string; holds : bool; detail : string }

val pp_verdict : Format.formatter -> verdict -> unit

val check_theorem21 : b:int -> l:int -> verdict list
(** Theorem 2.1 claims (i)-(iii) on the instance [(b, ℓ)]:
    node count within the proof's bound, maximum degree 3, Lemma 2.2
    exhaustively on [H] and [G], and the counting inequality on a real
    PLL labeling (which is itself verified exact). *)

val check_theorem41 : rng:Random.State.t -> ?d:int -> Graph.t -> verdict list
(** Theorem 4.1 on a concrete graph: the construction terminates and is
    an exact cover with exactly stored distances. *)

val check_theorem14 : rng:Random.State.t -> ?d:int -> Graph.t -> verdict list
(** Theorem 1.4 (average-degree reduction) on a concrete graph. *)

val check_theorem16 : b:int -> l:int -> seed:int -> verdict list
(** Theorem 1.6 at [(b, ℓ)]: the protocol is exhaustively correct on a
    seeded random shared string and on the two degenerate strings. *)

val check_all : seed:int -> verdict list
(** A standard small-parameter battery covering every theorem. *)
