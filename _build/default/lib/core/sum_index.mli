(** The Sum-Index communication problem (Definition 1.5).

    Alice holds the shared string [S ∈ {0,1}^n] and an index [a]; Bob
    holds [S] and [b]; both send one simultaneous message to a referee
    who must output [S_{(a+b) mod n}].

    Protocols are represented with an explicit preprocessing stage:
    [alice s] may do arbitrary shared-string work (e.g. build a graph
    and its distance labeling, as in Theorem 1.6) and returns the
    per-index message function. *)

open Repro_labeling

type protocol = {
  name : string;
  universe : int;  (** the string length [n] this protocol instance serves *)
  alice : bool array -> int -> Bitvec.t;
  bob : bool array -> int -> Bitvec.t;
  referee : Bitvec.t -> Bitvec.t -> bool;
}

val answer : bool array -> int -> int -> bool
(** Ground truth [S_{(a+b) mod n}]. *)

val run : protocol -> bool array -> int -> int -> bool
(** One execution. *)

val correct_on : protocol -> bool array -> bool
(** Exhaustive correctness over all [n²] index pairs. *)

val max_message_bits : protocol -> bool array -> int * int
(** [(max |M_a|, max |M_b|)] in bits over all indices. *)

val trivial : n:int -> protocol
(** The [n + ⌈log₂ n⌉]-bit upper bound: Alice sends the cyclic shift
    [i ↦ S_{(a+i) mod n}], Bob sends [b]; the referee reads bit [b] of
    Alice's message. *)

val sqrt_lower_bound_bits : int -> float
(** The [Ω(√n)] lower bound on [SUMINDEX(n)]
    ([BGKL03, BKL95, PRS97, NW93]), as [√n]. *)

val ambainis_upper_bound_bits : int -> float
(** The [O(n log^{1/4} n / 2^{√log n})] upper bound of [Amb96]
    (constant 1), for shape comparison in experiments. *)

val random_instance : Random.State.t -> int -> bool array
