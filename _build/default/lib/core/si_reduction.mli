(** Theorem 1.6: distance labels of sparse graphs solve Sum-Index.

    For parameters [(b, ℓ)] let [m = (s/2)^ℓ] with [s = 2^b]. Given the
    shared string [S ∈ {0,1}^m], both players build the graph
    [G'_{b,ℓ}]: the Theorem 2.1 grid in which the middle-layer vertex
    [v_{ℓ,x}] is kept iff [W(x) = S_{repr(x)}], where
    [repr(x) = (Σ_k x_k (s/2)^k) mod m] treats the coordinates as
    base-[s/2] digits. Both compute the same (deterministic) exact
    distance labeling. Alice, holding [a], finds the unique
    [x ∈ [0, s/2-1]^ℓ] with [repr(x) = a] and sends the binary label
    of [v_{0,2x}] together with [a]; Bob symmetrically sends the label
    of [v_{2ℓ,2z}] and [b]. The referee recovers the distance from the
    two labels alone and applies Observation 3.1: the distance equals
    the Lemma 2.2 closed form iff the midpoint [v_{ℓ,x+z}] is present,
    i.e. iff [S_{repr(x+z)} = S_{(a+b) mod m} = 1] (deviating paths
    cost at least 2 extra).

    The implementation labels the weighted grid [H'_{b,ℓ}] (whose
    relevant distances provably equal those of the degree-3 [G'_{b,ℓ}];
    {!Lower_bound.check_lemma22_gadget} verifies the equality
    machinery), with deterministic weighted PLL and the gamma-coded
    binary labels of {!Repro_labeling.Encoder}. *)

type params = private {
  b : int;
  l : int;
  s : int;
  half : int;  (** s/2 *)
  m : int;  (** (s/2)^ℓ — the Sum-Index universe size *)
}

val params : b:int -> l:int -> params
(** @raise Invalid_argument if [b < 2] (need [s/2 >= 2]) or [l < 1]. *)

val repr : params -> int array -> int
(** [repr(x)] for any [x ∈ [0, s-1]^ℓ]. *)

val index_vector : params -> int -> int array
(** The unique [x ∈ [0, s/2-1]^ℓ] with [repr x = a]. *)

val graph_of_string : params -> bool array -> Grid_graph.t
(** [G'_{b,ℓ}] (as its weighted form [H'_{b,ℓ}]) for the given string. *)

val protocol : params -> Sum_index.protocol
(** The Theorem 1.6 protocol for strings of length [m], labeling the
    weighted grid [H'_{b,ℓ}] (fast; distances provably equal the
    degree-3 graph's). *)

val protocol_gadget : params -> Sum_index.protocol
(** The literal variant: labels are computed on the unweighted
    max-degree-3 gadget [G'_{b,ℓ}] itself — the graph class of the
    theorem statement. Far more expensive preprocessing (the gadget has
    [Θ(ℓ²s³·s^ℓ)] vertices); intended for small parameters. *)

val predicted_label_bits : params -> float
(** The paper's accounting: the protocol costs
    [SUMINDEX(2^{(b-1)ℓ}) - bℓ] label bits at most, i.e. a distance
    label must have at least [SUMINDEX(m) - bℓ] bits; we report the
    [√m] floor of that quantity. *)
