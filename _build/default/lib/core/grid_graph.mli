(** The weighted layered graph [H_{b,ℓ}] of Theorem 2.1 (Figure 1).

    Parameters: [b >= 1] (side-length parameter, [s = 2^b]) and
    [ℓ >= 1] (number of levels on each side of the middle). The vertex
    set is [⋃_{i=0}^{2ℓ} V_i] with [V_i ≅ [0, s-1]^ℓ]; an edge joins
    [v_{i,j}] and [v_{i+1,j'}] when the vectors agree outside the
    designated coordinate [c(i)] ([c = i+1] for [i < ℓ], [c = 2ℓ-i]
    for [i >= ℓ], 1-indexed), with weight [A + (j_c - j'_c)²] where
    [A = 3ℓs²].

    Lemma 2.2: for [x, z] with all coordinates of [z - x] even, the
    shortest [v_{0,x} .. v_{2ℓ,z}] path is unique and passes through
    the midpoint [v_{ℓ,(x+z)/2}] — {!Lower_bound} checks this
    exhaustively, {!Si_reduction} exploits it.

    The optional removal predicate deletes middle-layer vertices (their
    incident edges are dropped; identifiers stay stable), producing the
    graph [G'_{b,ℓ}] of Theorem 1.6. *)

open Repro_graph

type t = {
  b : int;
  l : int;
  s : int;  (** side length, [2^b] *)
  per_level : int;  (** [s^ℓ] *)
  a_weight : int;  (** [A = 3ℓs²] *)
  graph : Wgraph.t;
  removed_mid : bool array;  (** by middle-layer vector code *)
}

val create : ?remove_mid:(int array -> bool) -> b:int -> l:int -> unit -> t
(** @raise Invalid_argument for [b < 1], [l < 1], or parameters so
    large that [s^ℓ] overflows the intended experiment scale
    ([s^ℓ > 10⁶]). *)

val n : t -> int
(** Number of vertices, [(2ℓ+1) s^ℓ]. *)

val code : t -> int array -> int
(** Mixed-radix code of a coordinate vector in [[0, s-1]^ℓ]. *)

val decode : t -> int -> int array

val vertex : t -> level:int -> int array -> int
(** Vertex identifier of [v_{level, vec}]. *)

val coords : t -> int -> int * int array
(** Inverse of {!vertex}: [(level, vector)]. *)

val is_removed : t -> int -> bool
(** Whether this vertex was deleted by the removal predicate (only
    middle-layer vertices can be). *)

val edge_coordinate : t -> int -> int
(** [edge_coordinate t i] is the 0-indexed coordinate allowed to change
    between levels [i] and [i+1]. *)

val midpoint : int array -> int array -> int array
(** [(x + z) / 2], requiring all coordinate differences even.
    @raise Invalid_argument otherwise. *)

val valid_pair : t -> int array -> int array -> bool
(** All coordinates of [z - x] even (the hypothesis of Lemma 2.2). *)

val expected_distance : t -> int array -> int array -> int
(** The Lemma 2.2 shortest-path length
    [2ℓA + Σ_k (z_k - x_k)² / 2] between [v_{0,x}] and [v_{2ℓ,z}]
    (valid pairs only, midpoint present). *)

val bottom : t -> int array -> int
(** [v_{0,x}]. *)

val top : t -> int array -> int
(** [v_{2ℓ,z}]. *)

val middle : t -> int array -> int
(** [v_{ℓ,y}]. *)

val iter_vectors : t -> (int array -> unit) -> unit
(** Iterate over all of [[0, s-1]^ℓ] (fresh array each call). *)

val iter_even_vectors : t -> (int array -> unit) -> unit
(** Iterate over [{0, 2, ..., s-2}^ℓ] — the images [2x] used by the
    Theorem 1.6 protocol. *)
