open Repro_graph
open Repro_hub

type lemma_check = {
  pairs_checked : int;
  unique_failures : int;
  midpoint_failures : int;
  distance_failures : int;
}

(* Both checkers exploit the point symmetry of the Lemma 2.2 path: the
   two halves around the midpoint have equal length, so "the midpoint
   lies on the unique shortest path" is equivalent to
   [2 · dist(x, mid) = dist(x, z)] once uniqueness holds. *)

let check_with ~dist_and_counts ~vertex_of (grid : Grid_graph.t) =
  let pairs_checked = ref 0 in
  let unique_failures = ref 0 in
  let midpoint_failures = ref 0 in
  let distance_failures = ref 0 in
  Grid_graph.iter_vectors grid (fun x ->
      let dist, num = dist_and_counts (vertex_of `Bottom x) in
      Grid_graph.iter_vectors grid (fun z ->
          if Grid_graph.valid_pair grid x z then begin
            incr pairs_checked;
            let dst = vertex_of `Top z in
            let y = Grid_graph.midpoint x z in
            let mid = vertex_of `Middle y in
            let expected = Grid_graph.expected_distance grid x z in
            if dist.(dst) <> expected then incr distance_failures;
            if num.(dst) <> 1 then incr unique_failures;
            if 2 * dist.(mid) <> expected then incr midpoint_failures
          end));
  {
    pairs_checked = !pairs_checked;
    unique_failures = !unique_failures;
    midpoint_failures = !midpoint_failures;
    distance_failures = !distance_failures;
  }

let check_lemma22_grid (grid : Grid_graph.t) =
  let h = grid.Grid_graph.graph in
  check_with grid
    ~dist_and_counts:(fun src ->
      (Dijkstra.distances h src, Dijkstra.count_shortest_paths h src))
    ~vertex_of:(fun place vec ->
      match place with
      | `Bottom -> Grid_graph.bottom grid vec
      | `Top -> Grid_graph.top grid vec
      | `Middle -> Grid_graph.middle grid vec)

let check_lemma22_gadget (gadget : Degree_gadget.t) =
  let grid = gadget.Degree_gadget.grid in
  let g = gadget.Degree_gadget.graph in
  check_with grid
    ~dist_and_counts:(fun src ->
      let r = Traversal.bfs_full g src in
      (r.Traversal.dist, r.Traversal.num_paths))
    ~vertex_of:(fun place vec ->
      let grid_vertex =
        match place with
        | `Bottom -> Grid_graph.bottom grid vec
        | `Top -> Grid_graph.top grid vec
        | `Middle -> Grid_graph.middle grid vec
      in
      Degree_gadget.anchor_of gadget grid_vertex)

let counting_bound (grid : Grid_graph.t) =
  let open Grid_graph in
  let rec ipow b e = if e = 0 then 1 else b * ipow b (e - 1) in
  ipow grid.s grid.l * ipow (grid.s / 2) grid.l

let closure_total (gadget : Degree_gadget.t) labels =
  let closed = Monotone.closure gadget.Degree_gadget.graph labels in
  Hub_label.total_size closed

let check_counting_argument gadget labels =
  let total = closure_total gadget labels in
  (total >= counting_bound gadget.Degree_gadget.grid, total)

let midpoint_charge_total (gadget : Degree_gadget.t) labels =
  let grid = gadget.Degree_gadget.grid in
  let closed = Monotone.closure gadget.Degree_gadget.graph labels in
  let count = ref 0 in
  Grid_graph.iter_vectors grid (fun x ->
      Grid_graph.iter_vectors grid (fun z ->
          if Grid_graph.valid_pair grid x z then begin
            let y = Grid_graph.midpoint x z in
            let ax = Degree_gadget.anchor_of gadget (Grid_graph.bottom grid x) in
            let az = Degree_gadget.anchor_of gadget (Grid_graph.top grid z) in
            let ay = Degree_gadget.anchor_of gadget (Grid_graph.middle grid y) in
            if
              Hub_label.mem closed ax ~hub:ay || Hub_label.mem closed az ~hub:ay
            then incr count
          end));
  !count

let avg_hub_size_lower_bound_measured ?(samples = 3) (gadget : Degree_gadget.t) =
  let g = gadget.Degree_gadget.graph in
  let grid = gadget.Degree_gadget.grid in
  (* diam(G) <= 2 ecc(v) for every v: minimise over a few anchors *)
  let candidates =
    Grid_graph.middle grid (Array.make grid.Grid_graph.l 0)
    :: Grid_graph.bottom grid (Array.make grid.Grid_graph.l 0)
    :: (if samples > 2 then [ Grid_graph.top grid (Array.make grid.Grid_graph.l 0) ] else [])
  in
  let diam_ub =
    List.fold_left
      (fun acc v ->
        min acc (2 * Traversal.eccentricity g (Degree_gadget.anchor_of gadget v)))
      max_int candidates
  in
  float_of_int (counting_bound grid)
  /. (float_of_int diam_ub *. float_of_int (Graph.n g))

let avg_hub_size_lower_bound (gadget : Degree_gadget.t) =
  let g = gadget.Degree_gadget.graph in
  let grid = gadget.Degree_gadget.grid in
  (* the proof's analytic diameter bound diam(G) <= (3l+1)s^2 * 4l *)
  let open Grid_graph in
  let diam_bound = ((3 * grid.l) + 1) * grid.s * grid.s * 4 * grid.l in
  float_of_int (counting_bound grid)
  /. (float_of_int diam_bound *. float_of_int (Graph.n g))
