(** Exponential-time references for testing {!Hopcroft_karp} and
    {!Koenig} on small instances. *)

val max_matching_size : Bipartite.t -> int
(** Maximum matching size by branch-and-bound over left vertices.
    Intended for instances with at most ~20 left vertices. *)

val min_vertex_cover_size : Bipartite.t -> int
(** Minimum vertex cover size by subset enumeration over the smaller
    side combined with forced choices. Intended for tiny instances. *)
