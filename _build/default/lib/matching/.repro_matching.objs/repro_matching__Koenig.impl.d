lib/matching/koenig.ml: Array Bipartite Hopcroft_karp List Queue
