lib/matching/bipartite.mli:
