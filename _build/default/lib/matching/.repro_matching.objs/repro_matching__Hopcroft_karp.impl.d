lib/matching/hopcroft_karp.ml: Array Bipartite Queue
