lib/matching/matching_brute.mli: Bipartite
