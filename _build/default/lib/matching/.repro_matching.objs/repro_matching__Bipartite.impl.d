lib/matching/bipartite.ml: Array List
