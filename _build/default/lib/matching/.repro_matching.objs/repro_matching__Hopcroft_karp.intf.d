lib/matching/hopcroft_karp.mli: Bipartite
