lib/matching/matching_brute.ml: Array Bipartite Hashtbl List
