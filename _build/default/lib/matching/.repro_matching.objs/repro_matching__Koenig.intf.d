lib/matching/koenig.mli: Bipartite Hopcroft_karp
