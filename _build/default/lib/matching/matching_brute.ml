let max_matching_size bg =
  let nl = Bipartite.left bg in
  let used = Array.make (Bipartite.right bg) false in
  (* Branch over left vertices: match u to some free neighbour or skip. *)
  let rec go u =
    if u >= nl then 0
    else begin
      let best = ref (go (u + 1)) in
      Array.iter
        (fun v ->
          if not used.(v) then begin
            used.(v) <- true;
            let r = 1 + go (u + 1) in
            if r > !best then best := r;
            used.(v) <- false
          end)
        (Bipartite.adj bg u);
      !best
    end
  in
  go 0

let min_vertex_cover_size bg =
  let nl = Bipartite.left bg in
  let edges = Bipartite.edges bg in
  if edges = [] then 0
  else begin
    (* Enumerate subsets of the left side that are in the cover; the
       right side must then contain every right endpoint of an edge
       whose left endpoint is excluded. *)
    let best = ref max_int in
    for mask = 0 to (1 lsl nl) - 1 do
      let rights = Hashtbl.create 16 in
      List.iter
        (fun (u, v) ->
          if mask land (1 lsl u) = 0 then Hashtbl.replace rights v ())
        edges;
      let size =
        let left_count = ref 0 in
        for u = 0 to nl - 1 do
          if mask land (1 lsl u) <> 0 then incr left_count
        done;
        !left_count + Hashtbl.length rights
      in
      if size < !best then best := size
    done;
    !best
  end
