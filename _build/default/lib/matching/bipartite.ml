type t = { left : int; right : int; m : int; adjacency : int array array }

let create ~left ~right edges =
  if left < 0 || right < 0 then invalid_arg "Bipartite.create";
  let buckets = Array.make left [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= left || v < 0 || v >= right then
        invalid_arg "Bipartite.create: endpoint out of range";
      buckets.(u) <- v :: buckets.(u))
    edges;
  let m = ref 0 in
  let adjacency =
    Array.map
      (fun vs ->
        let arr = Array.of_list (List.sort_uniq compare vs) in
        m := !m + Array.length arr;
        arr)
      buckets
  in
  { left; right; m = !m; adjacency }

let left t = t.left
let right t = t.right
let m t = t.m

let adj t u =
  if u < 0 || u >= t.left then invalid_arg "Bipartite.adj";
  t.adjacency.(u)

let iter_edges t f =
  Array.iteri (fun u vs -> Array.iter (fun v -> f u v) vs) t.adjacency

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc
