type matching = { size : int; mate_left : int array; mate_right : int array }

let solve bg =
  let nl = Bipartite.left bg in
  let nr = Bipartite.right bg in
  let mate_left = Array.make nl (-1) in
  let mate_right = Array.make nr (-1) in
  let dist = Array.make nl max_int in
  let q = Queue.create () in
  (* Layered BFS from free left vertices; true iff an augmenting path
     exists. *)
  let bfs () =
    Queue.clear q;
    for u = 0 to nl - 1 do
      if mate_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u q
      end
      else dist.(u) <- max_int
    done;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun v ->
          let u' = mate_right.(v) in
          if u' = -1 then found := true
          else if dist.(u') = max_int then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' q
          end)
        (Bipartite.adj bg u)
    done;
    !found
  in
  let rec dfs u =
    let adj = Bipartite.adj bg u in
    let rec try_from i =
      if i >= Array.length adj then begin
        dist.(u) <- max_int;
        false
      end
      else begin
        let v = adj.(i) in
        let u' = mate_right.(v) in
        let ok =
          if u' = -1 then true
          else if dist.(u') = dist.(u) + 1 then dfs u'
          else false
        in
        if ok then begin
          mate_left.(u) <- v;
          mate_right.(v) <- u;
          true
        end
        else try_from (i + 1)
      end
    in
    try_from 0
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to nl - 1 do
      if mate_left.(u) = -1 && dfs u then incr size
    done
  done;
  { size = !size; mate_left; mate_right }

let is_valid bg m =
  let ok = ref true in
  Array.iteri
    (fun u v ->
      if v >= 0 then begin
        if m.mate_right.(v) <> u then ok := false;
        if not (Array.exists (fun x -> x = v) (Bipartite.adj bg u)) then
          ok := false
      end)
    m.mate_left;
  Array.iteri
    (fun v u -> if u >= 0 && m.mate_left.(u) <> v then ok := false)
    m.mate_right;
  let count = Array.fold_left (fun c v -> if v >= 0 then c + 1 else c) 0 m.mate_left in
  !ok && count = m.size

let is_maximal bg m =
  let ok = ref true in
  Bipartite.iter_edges bg (fun u v ->
      if m.mate_left.(u) = -1 && m.mate_right.(v) = -1 then ok := false);
  !ok
