(** Bipartite graphs with explicit sides [L = 0..left-1] and
    [R = 0..right-1], adjacency stored from the left side.

    This is the input type for {!Hopcroft_karp} and {!Koenig}; the
    Theorem 4.1 construction builds one such graph per hub/distance
    bucket [(h, a, b)]. *)

type t

val create : left:int -> right:int -> (int * int) list -> t
(** Duplicate edges are merged. *)

val left : t -> int
val right : t -> int
val m : t -> int
(** Number of distinct edges. *)

val adj : t -> int -> int array
(** Right-neighbours of a left vertex (sorted, no duplicates). *)

val iter_edges : t -> (int -> int -> unit) -> unit
val edges : t -> (int * int) list
