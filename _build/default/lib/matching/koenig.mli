(** Minimum vertex cover of a bipartite graph via König's theorem.

    Given a maximum matching, the constructive proof yields a vertex
    cover of the same size: starting from the unmatched left vertices,
    alternate unmatched/matched edges; the cover is (left vertices not
    reached) ∪ (right vertices reached). Theorem 4.1 stores the cover
    sides into the hubset components [F_v]. *)

type cover = {
  left_cover : int list;  (** covered left vertices, increasing *)
  right_cover : int list;  (** covered right vertices, increasing *)
}

val of_matching : Bipartite.t -> Hopcroft_karp.matching -> cover

val minimum_vertex_cover : Bipartite.t -> cover
(** Runs Hopcroft–Karp then {!of_matching}. *)

val size : cover -> int

val is_cover : Bipartite.t -> cover -> bool
(** Every edge has an endpoint in the cover. *)
