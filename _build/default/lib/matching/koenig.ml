type cover = { left_cover : int list; right_cover : int list }

let of_matching bg (m : Hopcroft_karp.matching) =
  let nl = Bipartite.left bg in
  let nr = Bipartite.right bg in
  let visited_left = Array.make nl false in
  let visited_right = Array.make nr false in
  let q = Queue.create () in
  for u = 0 to nl - 1 do
    if m.mate_left.(u) = -1 then begin
      visited_left.(u) <- true;
      Queue.add u q
    end
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        (* Traverse non-matching edges L -> R, matching edges R -> L. *)
        if m.mate_left.(u) <> v && not visited_right.(v) then begin
          visited_right.(v) <- true;
          let u' = m.mate_right.(v) in
          if u' >= 0 && not visited_left.(u') then begin
            visited_left.(u') <- true;
            Queue.add u' q
          end
        end)
      (Bipartite.adj bg u)
  done;
  let left_cover = ref [] in
  for u = nl - 1 downto 0 do
    if not visited_left.(u) then left_cover := u :: !left_cover
  done;
  let right_cover = ref [] in
  for v = nr - 1 downto 0 do
    if visited_right.(v) then right_cover := v :: !right_cover
  done;
  { left_cover = !left_cover; right_cover = !right_cover }

let minimum_vertex_cover bg = of_matching bg (Hopcroft_karp.solve bg)
let size c = List.length c.left_cover + List.length c.right_cover

let is_cover bg c =
  let nl = Bipartite.left bg and nr = Bipartite.right bg in
  let inl = Array.make (max nl 1) false in
  let inr = Array.make (max nr 1) false in
  List.iter (fun u -> inl.(u) <- true) c.left_cover;
  List.iter (fun v -> inr.(v) <- true) c.right_cover;
  let ok = ref true in
  Bipartite.iter_edges bg (fun u v -> if not (inl.(u) || inr.(v)) then ok := false);
  !ok
