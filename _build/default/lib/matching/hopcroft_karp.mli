(** Maximum bipartite matching by the Hopcroft–Karp algorithm,
    O(m √n). *)

type matching = {
  size : int;
  mate_left : int array;  (** left vertex -> matched right vertex or -1 *)
  mate_right : int array;  (** right vertex -> matched left vertex or -1 *)
}

val solve : Bipartite.t -> matching

val is_valid : Bipartite.t -> matching -> bool
(** Checks that the two mate arrays are mutually consistent and only use
    actual edges. *)

val is_maximal : Bipartite.t -> matching -> bool
(** No edge with both endpoints free (necessary condition for maximum). *)
