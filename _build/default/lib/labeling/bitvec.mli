(** Immutable bit strings, the payload type of binary distance labels. *)

type t

val length : t -> int
(** Length in bits. *)

val get : t -> int -> bool
(** @raise Invalid_argument when out of range. *)

val of_bools : bool list -> t
val to_bools : t -> bool list

val of_string : string -> t
(** From a ["0101"]-style string.
    @raise Invalid_argument on other characters. *)

val to_string : t -> string
val equal : t -> t -> bool

val concat : t -> t -> t

(**/**)

val unsafe_of_bytes : bits:int -> Bytes.t -> t
(** Internal constructor used by {!Bit_io}; the byte buffer is adopted,
    not copied. *)

val unsafe_bytes : t -> Bytes.t
