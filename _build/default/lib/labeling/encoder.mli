(** Compact binary encoding of hub labels.

    This is the bridge the paper describes between hub labelings and
    distance labelings ("such constructions usually involve some form
    of compression and/or encoding of all distances", §1.1): each
    vertex label stores its hubset as gamma-coded hub-id gaps and
    gamma-coded distances, and the query decodes two labels and
    intersects them. Lossless: [decode ∘ encode = id]. *)

open Repro_hub

val encode_vertex : (int * int) array -> Bitvec.t
(** Encode one hubset (sorted by hub id, distances [>= 0]). *)

val decode_vertex : Bitvec.t -> (int * int) array

val decode_vertex_from : Bit_io.Reader.t -> (int * int) array
(** Like {!decode_vertex} but consuming from an existing reader, so a
    label can be embedded inside a larger message (used by the
    Theorem 1.6 protocol). *)

val query_pairs : (int * int) array -> (int * int) array -> int
(** Minimum [d_a + d_b] over common hubs of two sorted hubset arrays;
    {!Repro_graph.Dist.inf} when disjoint. *)

val encode : Hub_label.t -> Bitvec.t array
val decode : n:int -> Bitvec.t array -> Hub_label.t

val total_bits : Bitvec.t array -> int
val avg_bits : Bitvec.t array -> float

val query_encoded : Bitvec.t -> Bitvec.t -> int
(** Distance answered from the two binary labels alone
    ({!Repro_graph.Dist.inf} when the decoded hubsets are disjoint) —
    this is the "decoder" of the induced distance labeling scheme. *)
