lib/labeling/encoder.mli: Bit_io Bitvec Hub_label Repro_hub
