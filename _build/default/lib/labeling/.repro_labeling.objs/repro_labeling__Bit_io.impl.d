lib/labeling/bit_io.ml: Bitvec Bytes Char
