lib/labeling/encoder.ml: Array Bit_io Bitvec Dist Hub_label Repro_graph Repro_hub
