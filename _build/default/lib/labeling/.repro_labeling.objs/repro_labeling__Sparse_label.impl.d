lib/labeling/sparse_label.ml: Array Bitvec Encoder Graph Random_hitting Repro_graph Repro_hub Traversal
