lib/labeling/distance_label.mli: Bitvec Graph Hub_label Repro_graph Repro_hub
