lib/labeling/distance_label.ml: Array Bitvec Encoder Flat_label Graph List Repro_graph Traversal Tree_label
