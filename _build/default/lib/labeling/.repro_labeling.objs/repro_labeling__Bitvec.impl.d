lib/labeling/bitvec.ml: Bytes Char List String
