lib/labeling/sparse_label.mli: Bitvec Graph Random Repro_graph Repro_hub
