lib/labeling/bit_io.mli: Bitvec
