lib/labeling/bitvec.mli: Bytes
