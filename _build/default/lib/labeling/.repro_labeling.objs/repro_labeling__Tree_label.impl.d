lib/labeling/tree_label.ml: Array Graph Hashtbl Hub_label List Queue Repro_graph Repro_hub Stack Traversal
