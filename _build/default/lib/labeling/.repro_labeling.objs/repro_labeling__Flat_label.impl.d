lib/labeling/flat_label.ml: Array Bit_io Bitvec Dijkstra Dist Graph Repro_graph Traversal Wgraph
