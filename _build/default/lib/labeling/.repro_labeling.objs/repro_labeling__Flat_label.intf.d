lib/labeling/flat_label.mli: Bitvec Graph Repro_graph Wgraph
