lib/labeling/tree_label.mli: Graph Hub_label Repro_graph Repro_hub
