(** The trivial distance labeling: each vertex stores its entire
    distance row, gamma-coded. [Θ(n log diam)] bits per label — the
    baseline the sublinear schemes of [ADKP16]/[GKU16] (and this
    paper's bounds) are measured against. Decoding needs only the two
    labels: [dist(u, v)] is read directly from either row. *)

open Repro_graph

val build : Graph.t -> Bitvec.t array
(** One label per vertex. *)

val build_w : Wgraph.t -> Bitvec.t array

val query : Bitvec.t -> Bitvec.t -> int
(** Distance from the two labels (only the first is actually needed;
    the second's vertex id is read from its header). *)

val avg_bits : Bitvec.t array -> float
