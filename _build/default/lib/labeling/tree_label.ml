open Repro_graph
open Repro_hub

let is_tree g =
  let n = Graph.n g in
  n > 0 && Graph.m g = n - 1 && Traversal.is_connected g

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  if x <= 1 then 0 else go 0 1

let max_hubs_bound n = ceil_log2 (max n 1) + 1

let build g =
  if not (is_tree g) then invalid_arg "Tree_label.build: not a tree";
  let n = Graph.n g in
  let removed = Array.make n false in
  let labels : (int * int) list array = Array.make n [] in
  (* Component collection and subtree sizes by iterative DFS over the
     not-yet-removed vertices. *)
  let subtree = Array.make n 0 in
  let component_of start =
    let acc = ref [] in
    let stack = Stack.create () in
    let seen = Hashtbl.create 64 in
    Stack.push start stack;
    Hashtbl.replace seen start ();
    while not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      acc := u :: !acc;
      Graph.iter_neighbors g u (fun v ->
          if (not removed.(v)) && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Stack.push v stack
          end)
    done;
    !acc
  in
  let centroid comp =
    let size = List.length comp in
    let in_comp = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
    (* subtree sizes rooted at the first vertex, children processed
       before parents via a post-order obtained from a DFS stack *)
    let root = List.hd comp in
    let order = ref [] in
    let parent = Hashtbl.create 64 in
    let stack = Stack.create () in
    Stack.push root stack;
    Hashtbl.replace parent root (-1);
    while not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      order := u :: !order;
      Graph.iter_neighbors g u (fun v ->
          if
            (not removed.(v))
            && Hashtbl.mem in_comp v
            && not (Hashtbl.mem parent v)
          then begin
            Hashtbl.replace parent v u;
            Stack.push v stack
          end)
    done;
    List.iter
      (fun u ->
        subtree.(u) <- 1;
        Graph.iter_neighbors g u (fun v ->
            if Hashtbl.find_opt parent v = Some u then
              subtree.(u) <- subtree.(u) + subtree.(v)))
      !order;
    (* The centroid: all components after removal have size <= size/2;
       equivalently max(subtree of children, size - subtree(v)) is
       minimal and <= size/2. *)
    let best = ref root and best_weight = ref max_int in
    List.iter
      (fun v ->
        let heaviest = ref (size - subtree.(v)) in
        Graph.iter_neighbors g v (fun c ->
            if Hashtbl.find_opt parent c = Some v && subtree.(c) > !heaviest
            then heaviest := subtree.(c));
        if !heaviest < !best_weight then begin
          best_weight := !heaviest;
          best := v
        end)
      comp;
    !best
  in
  (* BFS distances from a vertex within the live component. *)
  let dist_from c =
    let dist = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace dist c 0;
    Queue.add c q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let du = Hashtbl.find dist u in
      Graph.iter_neighbors g u (fun v ->
          if (not removed.(v)) && not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v (du + 1);
            Queue.add v q
          end)
    done;
    dist
  in
  let rec decompose start =
    let comp = component_of start in
    let c = centroid comp in
    let dist = dist_from c in
    List.iter
      (fun v -> labels.(v) <- (c, Hashtbl.find dist v) :: labels.(v))
      comp;
    removed.(c) <- true;
    Graph.iter_neighbors g c (fun v -> if not removed.(v) then decompose v)
  in
  if n > 0 then decompose 0;
  Hub_label.make ~n labels
