(** Bit-granular writers and readers, with Elias-gamma coding for
    positive integers — the workhorse of {!Encoder}'s compact labels. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  (** Bits written so far. *)

  val bit : t -> bool -> unit

  val bits : t -> width:int -> int -> unit
  (** Write the [width] low bits, least significant first.
      @raise Invalid_argument if the value does not fit or is
      negative. *)

  val gamma : t -> int -> unit
  (** Elias gamma code of an integer [>= 1] (unary length prefix then
      binary payload): [2⌊log₂ v⌋ + 1] bits. *)

  val contents : t -> Bitvec.t
end

module Reader : sig
  type t

  val of_bitvec : Bitvec.t -> t
  val pos : t -> int
  val remaining : t -> int
  val bit : t -> bool
  (** @raise Invalid_argument past the end. *)

  val bits : t -> width:int -> int
  val gamma : t -> int
end
