(** Packaged sublinear-style distance labeling for sparse graphs, in
    the spirit of [ADKP16]/[GKU16] (§1.1): the random-hitting-set hub
    labeling of {!Repro_hub.Random_hitting}, serialised with the
    gamma-coded {!Encoder}. The scheme object carries everything needed
    to answer queries from bits alone. *)

open Repro_graph

type t = {
  labels : Bitvec.t array;
  d : int;  (** distance threshold used *)
  stats : Repro_hub.Random_hitting.stats;
}

val build : rng:Random.State.t -> ?d:int -> Graph.t -> t
(** [d] defaults to {!Repro_hub.Random_hitting.recommended_d}. *)

val query : t -> int -> int -> int
(** Decode-and-intersect from the binary labels. *)

val avg_bits : t -> float
val total_bits : t -> int

val verify : Graph.t -> t -> bool
(** All-pairs exactness via the binary path. *)
