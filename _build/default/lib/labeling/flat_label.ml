open Repro_graph

(* Label layout: gamma(id+1), gamma(n), then n gamma-coded cells
   (dist+2, with inf stored as 1). *)

let encode_row ~id row =
  let w = Bit_io.Writer.create () in
  Bit_io.Writer.gamma w (id + 1);
  Bit_io.Writer.gamma w (Array.length row + 1);
  Array.iter
    (fun d ->
      if Dist.is_finite d then Bit_io.Writer.gamma w (d + 2)
      else Bit_io.Writer.gamma w 1)
    row;
  Bit_io.Writer.contents w

let build g =
  Array.init (Graph.n g) (fun v -> encode_row ~id:v (Traversal.bfs g v))

let build_w g =
  Array.init (Wgraph.n g) (fun v -> encode_row ~id:v (Dijkstra.distances g v))

let header vec =
  let r = Bit_io.Reader.of_bitvec vec in
  let id = Bit_io.Reader.gamma r - 1 in
  let n = Bit_io.Reader.gamma r - 1 in
  (id, n, r)

let query la lb =
  let _, n, r = header la in
  let id_b, _, _ = header lb in
  if id_b < 0 || id_b >= n then invalid_arg "Flat_label.query: bad label";
  let d = ref Dist.inf in
  for i = 0 to n - 1 do
    let cell = Bit_io.Reader.gamma r in
    if i = id_b then d := (if cell = 1 then Dist.inf else cell - 2)
  done;
  !d

let avg_bits labels =
  if Array.length labels = 0 then 0.0
  else
    float_of_int
      (Array.fold_left (fun acc v -> acc + Bitvec.length v) 0 labels)
    /. float_of_int (Array.length labels)
