(** Distance labeling for trees by centroid decomposition — the
    [Θ(log n)]-hubs / [Θ(log² n)]-bits scheme of [Pel00] discussed in
    §1.1 ("For the class of trees … selection of central vertices as
    hubs, proceeding recursively on obtained subtrees").

    Every vertex stores the centroids of the decomposition components
    it belongs to; any pair meets at their lowest common centroid,
    which lies on their tree path, so the labeling is an exact cover
    with at most [⌈log₂ n⌉ + 1] hubs per vertex. *)

open Repro_graph
open Repro_hub

val is_tree : Graph.t -> bool
(** Connected with [n - 1] edges (true for the 1-vertex graph). *)

val build : Graph.t -> Hub_label.t
(** @raise Invalid_argument if the graph is not a tree. *)

val max_hubs_bound : int -> int
(** The [⌈log₂ n⌉ + 1] guarantee. *)
