open Repro_graph
open Repro_hub

let encode_vertex pairs =
  let w = Bit_io.Writer.create () in
  Bit_io.Writer.gamma w (Array.length pairs + 1);
  let prev = ref (-1) in
  Array.iter
    (fun (h, d) ->
      if h <= !prev then invalid_arg "Encoder.encode_vertex: hubs not sorted";
      Bit_io.Writer.gamma w (h - !prev);
      Bit_io.Writer.gamma w (d + 1);
      prev := h)
    pairs;
  Bit_io.Writer.contents w

let decode_vertex_from r =
  let count = Bit_io.Reader.gamma r - 1 in
  let prev = ref (-1) in
  Array.init count (fun _ ->
      let h = !prev + Bit_io.Reader.gamma r in
      let d = Bit_io.Reader.gamma r - 1 in
      prev := h;
      (h, d))

let decode_vertex vec = decode_vertex_from (Bit_io.Reader.of_bitvec vec)

let query_pairs a b =
  let best = ref Dist.inf in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let ha, da = a.(!i) and hb, db = b.(!j) in
    if ha = hb then begin
      let d = Dist.add da db in
      if d < !best then best := d;
      incr i;
      incr j
    end
    else if ha < hb then incr i
    else incr j
  done;
  !best

let encode labels =
  Array.init (Hub_label.n labels) (fun v ->
      encode_vertex (Hub_label.hubs labels v))

let decode ~n vecs =
  if Array.length vecs <> n then invalid_arg "Encoder.decode: length mismatch";
  Hub_label.of_arrays ~n (Array.map decode_vertex vecs)

let total_bits vecs =
  Array.fold_left (fun acc v -> acc + Bitvec.length v) 0 vecs

let avg_bits vecs =
  if Array.length vecs = 0 then 0.0
  else float_of_int (total_bits vecs) /. float_of_int (Array.length vecs)

let query_encoded la lb = query_pairs (decode_vertex la) (decode_vertex lb)
