type t = { bits : int; data : Bytes.t }

let length t = t.bits

let get t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitvec.get";
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let of_bools bools =
  let bits = List.length bools in
  let data = Bytes.make ((bits + 7) / 8) '\000' in
  List.iteri
    (fun i b ->
      if b then
        Bytes.unsafe_set data (i lsr 3)
          (Char.chr
             (Char.code (Bytes.unsafe_get data (i lsr 3)) lor (1 lsl (i land 7)))))
    bools;
  { bits; data }

let to_bools t = List.init t.bits (fun i -> get t i)

let of_string s =
  of_bools
    (List.init (String.length s) (fun i ->
         match s.[i] with
         | '0' -> false
         | '1' -> true
         | _ -> invalid_arg "Bitvec.of_string: expected 0 or 1"))

let to_string t =
  String.init t.bits (fun i -> if get t i then '1' else '0')

let equal a b = a.bits = b.bits && to_bools a = to_bools b
let concat a b = of_bools (to_bools a @ to_bools b)
let unsafe_of_bytes ~bits data = { bits; data }
let unsafe_bytes t = t.data
