open Repro_graph

type t = {
  name : string;
  labels : Bitvec.t array;
  decode : Bitvec.t -> Bitvec.t -> int;
}

let of_hub_labeling ~name hub =
  {
    name;
    labels = Encoder.encode hub;
    decode = Encoder.query_encoded;
  }

let of_flat g =
  { name = "flat-rows"; labels = Flat_label.build g; decode = Flat_label.query }

let of_tree g =
  of_hub_labeling ~name:"tree-centroid" (Tree_label.build g)

let query t u v =
  if
    u < 0
    || u >= Array.length t.labels
    || v < 0
    || v >= Array.length t.labels
  then invalid_arg "Distance_label.query";
  t.decode t.labels.(u) t.labels.(v)

let total_bits t =
  Array.fold_left (fun acc l -> acc + Bitvec.length l) 0 t.labels

let avg_bits t =
  if Array.length t.labels = 0 then 0.0
  else float_of_int (total_bits t) /. float_of_int (Array.length t.labels)

let max_bits t =
  Array.fold_left (fun acc l -> max acc (Bitvec.length l)) 0 t.labels

let verify g t =
  let n = Graph.n g in
  if n <> Array.length t.labels then false
  else begin
    let ok = ref true in
    for u = 0 to n - 1 do
      if !ok then begin
        let dist = Traversal.bfs g u in
        for v = u to n - 1 do
          if query t u v <> dist.(v) then ok := false
        done
      end
    done;
    !ok
  end

let compare_schemes g schemes =
  List.map (fun t -> (t.name, avg_bits t, max_bits t, verify g t)) schemes
