open Repro_graph
open Repro_hub

type t = {
  labels : Bitvec.t array;
  d : int;
  stats : Random_hitting.stats;
}

let build ~rng ?d g =
  let d = match d with Some d -> d | None -> Random_hitting.recommended_d g in
  let hub_labels, stats = Random_hitting.build ~rng ~d g in
  { labels = Encoder.encode hub_labels; d; stats }

let query t u v =
  if u < 0 || u >= Array.length t.labels || v < 0 || v >= Array.length t.labels
  then invalid_arg "Sparse_label.query";
  Encoder.query_encoded t.labels.(u) t.labels.(v)

let total_bits t = Encoder.total_bits t.labels
let avg_bits t = Encoder.avg_bits t.labels

let verify g t =
  let n = Graph.n g in
  if n <> Array.length t.labels then false
  else begin
    let ok = ref true in
    for u = 0 to n - 1 do
      if !ok then begin
        let dist = Traversal.bfs g u in
        for v = u to n - 1 do
          if query t u v <> dist.(v) then ok := false
        done
      end
    done;
    !ok
  end
