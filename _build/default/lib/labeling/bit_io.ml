module Writer = struct
  type t = { mutable bits : int; mutable data : Bytes.t }

  let create () = { bits = 0; data = Bytes.make 16 '\000' }
  let length t = t.bits

  let ensure t =
    let needed = (t.bits / 8) + 1 in
    if needed > Bytes.length t.data then begin
      let bigger = Bytes.make (2 * Bytes.length t.data) '\000' in
      Bytes.blit t.data 0 bigger 0 (Bytes.length t.data);
      t.data <- bigger
    end

  let bit t b =
    ensure t;
    if b then begin
      let i = t.bits in
      Bytes.unsafe_set t.data (i lsr 3)
        (Char.chr
           (Char.code (Bytes.unsafe_get t.data (i lsr 3)) lor (1 lsl (i land 7))))
    end;
    t.bits <- t.bits + 1

  let bits t ~width v =
    if width < 0 || width > 62 then invalid_arg "Bit_io.Writer.bits: width";
    if v < 0 || (width < 62 && v lsr width <> 0) then
      invalid_arg "Bit_io.Writer.bits: value does not fit";
    for k = 0 to width - 1 do
      bit t (v lsr k land 1 = 1)
    done

  let bit_width v =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x lsr 1) in
    go 0 v

  let gamma t v =
    if v < 1 then invalid_arg "Bit_io.Writer.gamma: need v >= 1";
    let w = bit_width v in
    (* w-1 zeros, a one, then the w-1 low bits of v *)
    for _ = 1 to w - 1 do
      bit t false
    done;
    bit t true;
    bits t ~width:(w - 1) (v - (1 lsl (w - 1)))

  let contents t =
    Bitvec.unsafe_of_bytes ~bits:t.bits (Bytes.sub t.data 0 ((t.bits + 7) / 8))
end

module Reader = struct
  type t = { vec : Bitvec.t; mutable pos : int }

  let of_bitvec vec = { vec; pos = 0 }
  let pos t = t.pos
  let remaining t = Bitvec.length t.vec - t.pos

  let bit t =
    if t.pos >= Bitvec.length t.vec then
      invalid_arg "Bit_io.Reader.bit: past the end";
    let b = Bitvec.get t.vec t.pos in
    t.pos <- t.pos + 1;
    b

  let bits t ~width =
    let v = ref 0 in
    for k = 0 to width - 1 do
      if bit t then v := !v lor (1 lsl k)
    done;
    !v

  let gamma t =
    let zeros = ref 0 in
    while not (bit t) do
      incr zeros
    done;
    let w = !zeros + 1 in
    (1 lsl (w - 1)) + bits t ~width:(w - 1)
end
