(** Distance labeling schemes, as first-class values.

    A scheme assigns every vertex a binary label such that the distance
    of any pair is computable from the two labels alone — the general
    framework of the paper's introduction ("the assignment of a binary
    string label(u) to each node u, so that the graph distance between
    u and v is uniquely determined by the pair of labels"). This module
    packages the repository's concrete schemes (hub-based, flat rows,
    tree centroid) behind one interface for comparison experiments. *)

open Repro_graph
open Repro_hub

type t = {
  name : string;
  labels : Bitvec.t array;
  decode : Bitvec.t -> Bitvec.t -> int;
}

val of_hub_labeling : name:string -> Hub_label.t -> t
(** Gamma-coded hubset labels, decoded by sorted intersection. *)

val of_flat : Graph.t -> t
(** Full distance rows ({!Flat_label}). *)

val of_tree : Graph.t -> t
(** Centroid-decomposition labels for trees ({!Tree_label}).
    @raise Invalid_argument if the graph is not a tree. *)

val query : t -> int -> int -> int
val total_bits : t -> int
val avg_bits : t -> float
val max_bits : t -> int

val verify : Graph.t -> t -> bool
(** All-pairs exactness, answered purely from labels. *)

val compare_schemes : Graph.t -> t list -> (string * float * int * bool) list
(** For each scheme: [(name, avg bits, max bits, exact)]. *)
