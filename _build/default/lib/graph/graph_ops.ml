let induced_subgraph g vs =
  let keep = List.sort_uniq compare vs in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Graph_ops.induced_subgraph: vertex out of range")
    keep;
  let old_id = Array.of_list keep in
  let new_id = Hashtbl.create (Array.length old_id) in
  Array.iteri (fun i v -> Hashtbl.replace new_id v i) old_id;
  let edges = ref [] in
  Graph.iter_edges g (fun u v ->
      match (Hashtbl.find_opt new_id u, Hashtbl.find_opt new_id v) with
      | Some u', Some v' -> edges := (u', v') :: !edges
      | _ -> ());
  (Graph.of_edges ~n:(Array.length old_id) !edges, old_id)

let remove_vertices g vs =
  let drop = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace drop v ()) vs;
  let keep = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not (Hashtbl.mem drop v) then keep := v :: !keep
  done;
  induced_subgraph g !keep

let disjoint_union a b =
  let na = Graph.n a in
  let edges =
    Graph.edges a @ List.map (fun (u, v) -> (u + na, v + na)) (Graph.edges b)
  in
  Graph.of_edges ~n:(na + Graph.n b) edges

let complement g =
  let n = Graph.n g in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let is_subgraph ~sub g =
  Graph.n sub = Graph.n g
  &&
  let ok = ref true in
  Graph.iter_edges sub (fun u v -> if not (Graph.mem_edge g u v) then ok := false);
  !ok

let map_weights f g =
  Wgraph.of_edges ~n:(Wgraph.n g)
    (List.map (fun (u, v, w) -> (u, v, f u v w)) (Wgraph.edges g))
