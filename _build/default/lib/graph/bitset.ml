type t = { n : int; bits : Bytes.t }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; bits = Bytes.make ((n + 7) / 8) '\000' }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.chr
       (Char.code (Bytes.unsafe_get t.bits b) land lnot (1 lsl (i land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let cardinal t =
  let acc = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    acc := !acc + popcount_byte (Bytes.unsafe_get t.bits b)
  done;
  !acc

let iter f t =
  for b = 0 to Bytes.length t.bits - 1 do
    let byte = Char.code (Bytes.unsafe_get t.bits b) in
    if byte <> 0 then
      for j = 0 to 7 do
        if byte land (1 lsl j) <> 0 then f ((b lsl 3) + j)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let copy t = { n = t.n; bits = Bytes.copy t.bits }

let union_into dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for b = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits b
      (Char.chr
         (Char.code (Bytes.unsafe_get dst.bits b)
         lor Char.code (Bytes.unsafe_get src.bits b)))
  done

let inter_exists a b =
  if a.n <> b.n then invalid_arg "Bitset.inter_exists: capacity mismatch";
  let rec loop i =
    if i >= Bytes.length a.bits then false
    else if
      Char.code (Bytes.unsafe_get a.bits i)
      land Char.code (Bytes.unsafe_get b.bits i)
      <> 0
    then true
    else loop (i + 1)
  in
  loop 0
