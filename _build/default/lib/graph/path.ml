let extract ~parent ~src ~dst =
  let n = Array.length parent in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Path.extract: vertex out of range";
  if src = dst then Some [ src ]
  else begin
    let rec walk v acc steps =
      if steps > n then None (* cycle in parent pointers: not a tree *)
      else if v = src then Some (src :: acc)
      else
        let p = parent.(v) in
        if p < 0 then None else walk p (v :: acc) (steps + 1)
    in
    walk dst [] 0
  end

let rec pairwise ok = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> ok a b && pairwise ok rest

let is_path g vs = pairwise (fun a b -> Graph.mem_edge g a b) vs
let is_wpath g vs = pairwise (fun a b -> Wgraph.weight g a b <> None) vs

let wlength g vs =
  let rec go acc = function
    | [] | [ _ ] -> Some acc
    | a :: (b :: _ as rest) -> (
        match Wgraph.weight g a b with
        | None -> None
        | Some w -> go (acc + w) rest)
  in
  go 0 vs

let endpoints = function
  | [] -> None
  | v :: _ as vs -> Some (v, List.nth vs (List.length vs - 1))

let verify_shortest g vs =
  is_path g vs
  &&
  match endpoints vs with
  | None -> true
  | Some (u, v) ->
      let d = (Traversal.bfs g u).(v) in
      Dist.is_finite d && List.length vs - 1 = d

let verify_wshortest g vs =
  match (wlength g vs, endpoints vs) with
  | Some len, Some (u, v) ->
      let d = (Dijkstra.distances g u).(v) in
      Dist.is_finite d && len = d
  | Some _, None -> true
  | None, _ -> false

let on_shortest_path ~dist_u ~dist_v x d =
  Dist.add dist_u.(x) dist_v.(x) = d

let vertices_on_some_shortest_path g u v =
  let du = Traversal.bfs g u in
  let dv = Traversal.bfs g v in
  let d = du.(v) in
  if not (Dist.is_finite d) then []
  else begin
    let acc = ref [] in
    for x = Graph.n g - 1 downto 0 do
      if on_shortest_path ~dist_u:du ~dist_v:dv x d then acc := x :: !acc
    done;
    !acc
  end
