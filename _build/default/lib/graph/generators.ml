let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star n =
  if n < 1 then invalid_arg "Generators.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: need >= 3x3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let balanced_binary_tree ~depth =
  if depth < 0 then invalid_arg "Generators.balanced_binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (2 * i) + 1 < n then edges := (i, (2 * i) + 1) :: !edges;
    if (2 * i) + 2 < n then edges := (i, (2 * i) + 2) :: !edges
  done;
  Graph.of_edges ~n !edges

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree";
  Graph.of_edges ~n
    (List.init (n - 1) (fun i ->
         let v = i + 1 in
         (Random.State.int rng v, v)))

(* Sample [m] distinct unordered pairs over [0..n-1], uniformly, by
   rejection; assumes [m] is not too close to the maximum. *)
let sample_pairs rng ~n ~m ~seen =
  let edges = ref [] in
  let added = ref 0 in
  while !added < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let key = (min u v * n) + max u v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        edges := (min u v, max u v) :: !edges;
        incr added
      end
    end
  done;
  !edges

let gnm rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Generators.gnm: too many edges";
  if 2 * m > max_m then begin
    (* dense: sample by shuffling all pairs *)
    let all = Array.make max_m (0, 0) in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        all.(!k) <- (u, v);
        incr k
      done
    done;
    for i = max_m - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Graph.of_edge_array ~n (Array.sub all 0 m)
  end
  else
    Graph.of_edges ~n (sample_pairs rng ~n ~m ~seen:(Hashtbl.create (4 * m)))

let gnp rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generators.gnp";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_connected rng ~n ~m =
  if n < 1 then invalid_arg "Generators.random_connected";
  if m < n - 1 then invalid_arg "Generators.random_connected: m < n-1";
  if m > n * (n - 1) / 2 then
    invalid_arg "Generators.random_connected: too many edges";
  let seen = Hashtbl.create (4 * m) in
  let tree =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        let u = Random.State.int rng v in
        Hashtbl.replace seen ((min u v * n) + max u v) ();
        (u, v))
  in
  let extra = sample_pairs rng ~n ~m:(m - (n - 1)) ~seen in
  Graph.of_edges ~n (tree @ extra)

let random_bounded_degree rng ~n ~d =
  if d < 2 then invalid_arg "Generators.random_bounded_degree: need d >= 2";
  if n < 2 then invalid_arg "Generators.random_bounded_degree: need n >= 2";
  let deg = Array.make n 0 in
  let seen = Hashtbl.create (4 * n) in
  let edges = ref [] in
  let add u v =
    let key = (min u v * n) + max u v in
    if u <> v && deg.(u) < d && deg.(v) < d && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  (* Connectivity backbone: a random path permutation. *)
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  for i = 0 to n - 2 do
    ignore (add perm.(i) perm.(i + 1))
  done;
  (* Fill remaining capacity with random edges, bounded retries. *)
  let budget = ref (20 * n * d) in
  while !budget > 0 do
    decr budget;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    ignore (add u v)
  done;
  Graph.of_edges ~n !edges

let random_bipartite rng ~left ~right ~m =
  if m > left * right then invalid_arg "Generators.random_bipartite";
  let seen = Hashtbl.create (4 * m) in
  let acc = ref [] in
  let added = ref 0 in
  while !added < m do
    let u = Random.State.int rng left and v = Random.State.int rng right in
    let key = (u * right) + v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      acc := (u, v) :: !acc;
      incr added
    end
  done;
  !acc

let grid_with_shortcuts rng ~rows ~cols ~shortcuts =
  let base = grid ~rows ~cols in
  let n = rows * cols in
  let seen = Hashtbl.create (4 * (Graph.m base + shortcuts)) in
  List.iter
    (fun (u, v) -> Hashtbl.replace seen ((min u v * n) + max u v) ())
    (Graph.edges base);
  let extra = sample_pairs rng ~n ~m:shortcuts ~seen in
  Graph.of_edges ~n (Graph.edges base @ extra)
