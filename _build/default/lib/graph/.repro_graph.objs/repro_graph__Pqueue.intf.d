lib/graph/pqueue.mli:
