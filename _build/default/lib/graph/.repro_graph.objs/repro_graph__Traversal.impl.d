lib/graph/traversal.ml: Array Dist Graph Hashtbl List Queue
