lib/graph/dist.ml: Format Stdlib
