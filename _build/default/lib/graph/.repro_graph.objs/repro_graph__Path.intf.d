lib/graph/path.mli: Graph Wgraph
