lib/graph/bitset.mli:
