lib/graph/generators.ml: Array Graph Hashtbl List Random
