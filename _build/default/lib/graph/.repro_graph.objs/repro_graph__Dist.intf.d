lib/graph/dist.mli: Format
