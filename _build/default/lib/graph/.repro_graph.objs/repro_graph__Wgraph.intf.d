lib/graph/wgraph.mli: Format Graph
