lib/graph/apsp.ml: Array Dijkstra Dist Graph Traversal Wgraph
