lib/graph/path.ml: Array Dijkstra Dist Graph List Traversal Wgraph
