lib/graph/wgraph.ml: Array Format Graph List
