lib/graph/subdivide.mli: Graph Wgraph
