lib/graph/subdivide.ml: Array Graph List Wgraph
