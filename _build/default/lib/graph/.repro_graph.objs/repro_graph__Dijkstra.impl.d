lib/graph/dijkstra.ml: Array Dist List Pqueue Traversal Wgraph
