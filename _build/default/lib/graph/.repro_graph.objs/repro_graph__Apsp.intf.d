lib/graph/apsp.mli: Graph Wgraph
