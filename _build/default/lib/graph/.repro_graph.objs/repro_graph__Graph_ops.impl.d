lib/graph/graph_ops.ml: Array Graph Hashtbl List Wgraph
