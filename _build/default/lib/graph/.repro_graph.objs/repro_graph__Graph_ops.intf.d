lib/graph/graph_ops.mli: Graph Wgraph
