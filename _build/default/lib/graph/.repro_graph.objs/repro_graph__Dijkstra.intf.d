lib/graph/dijkstra.mli: Wgraph
