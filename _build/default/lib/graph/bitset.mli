(** Fixed-capacity bit set over the universe [0 .. n-1], backed by [Bytes].

    Used for visited marks, hubset membership tests and set algebra on
    vertex sets where [Hashtbl] or [Set] overhead matters. *)

type t

val create : int -> t
(** [create n] is the empty subset of [0 .. n-1]. *)

val capacity : t -> int
(** The universe size [n] given at creation. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
(** Remove all elements. *)

val cardinal : t -> int
(** Number of set bits, O(n/8). *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the subset of [0 .. n-1] holding [xs]. *)

val copy : t -> t

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst].
    @raise Invalid_argument on capacity mismatch. *)

val inter_exists : t -> t -> bool
(** [inter_exists a b] is [true] iff the sets share an element. *)
