(** Distance arithmetic with an infinity sentinel.

    Distances are plain [int]s; unreachable pairs are represented by
    {!inf}, chosen so that [inf + inf] does not overflow. All distance
    arrays produced by {!Traversal}, {!Dijkstra} and {!Apsp} use this
    convention, and hub-label queries add two distances with {!add}. *)

val inf : int
(** The unreachable sentinel, [max_int / 4]. *)

val is_finite : int -> bool

val add : int -> int -> int
(** Saturating addition: if either operand is [>= inf], the result is
    [inf]. *)

val min : int -> int -> int

val pp : Format.formatter -> int -> unit
(** Prints ["inf"] for the sentinel, the integer otherwise. *)
