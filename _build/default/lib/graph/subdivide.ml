type split = {
  graph : Wgraph.t;
  representative : int array;
  origin : int array;
}

let split_high_degree g ~k =
  if k < 1 then invalid_arg "Subdivide.split_high_degree: need k >= 1";
  let n = Wgraph.n g in
  (* Number of copies of each vertex, and id of its first copy. *)
  let copies =
    Array.init n (fun v ->
        let d = Wgraph.degree g v in
        max 1 ((d + k - 1) / k))
  in
  let first = Array.make n 0 in
  let total = ref 0 in
  for v = 0 to n - 1 do
    first.(v) <- !total;
    total := !total + copies.(v)
  done;
  let origin = Array.make !total 0 in
  for v = 0 to n - 1 do
    for c = 0 to copies.(v) - 1 do
      origin.(first.(v) + c) <- v
    done
  done;
  let edges = ref [] in
  (* Weight-0 path linking the copies of each vertex. *)
  for v = 0 to n - 1 do
    for c = 0 to copies.(v) - 2 do
      edges := (first.(v) + c, first.(v) + c + 1, 0) :: !edges
    done
  done;
  (* Distribute original edges round-robin over copies, at most k per
     copy. [slot.(v)] counts edges already attached at v's copies. *)
  let slot = Array.make n 0 in
  let attach v =
    let c = slot.(v) / k in
    slot.(v) <- slot.(v) + 1;
    first.(v) + c
  in
  List.iter
    (fun (u, v, w) -> edges := (attach u, attach v, w) :: !edges)
    (Wgraph.edges g);
  {
    graph = Wgraph.of_edges ~n:!total !edges;
    representative = first;
    origin;
  }

let split_unweighted g ~k = split_high_degree (Wgraph.of_unweighted g) ~k

let subdivide_edge_paths ~n edges =
  List.iter
    (fun (_, _, w) ->
      if w < 1 then invalid_arg "Subdivide.subdivide_edge_paths: weight < 1")
    edges;
  let extra = List.fold_left (fun acc (_, _, w) -> acc + (w - 1)) 0 edges in
  let total = n + extra in
  let origin = Array.make total (-1) in
  for v = 0 to n - 1 do
    origin.(v) <- v
  done;
  let next = ref n in
  let out = ref [] in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Subdivide.subdivide_edge_paths: endpoint out of range";
      if w = 1 then out := (u, v) :: !out
      else begin
        let prev = ref u in
        for _ = 1 to w - 1 do
          out := (!prev, !next) :: !out;
          prev := !next;
          incr next
        done;
        out := (!prev, v) :: !out
      end)
    edges;
  (Graph.of_edges ~n:total !out, origin)
