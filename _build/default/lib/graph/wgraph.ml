type t = { n : int; m : int; off : int array; adj : int array; wgt : int array }

let n t = t.n
let m t = t.m

let build ~n edges_iter ~count =
  let deg = Array.make n 0 in
  edges_iter (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Wgraph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Wgraph.of_edges: self loop";
      if w < 0 then invalid_arg "Wgraph.of_edges: negative weight";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1);
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make (2 * count) 0 in
  let wgt = Array.make (2 * count) 0 in
  let cursor = Array.copy off in
  edges_iter (fun (u, v, w) ->
      adj.(cursor.(u)) <- v;
      wgt.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      wgt.(cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1);
  (* Sort each adjacency slice by target, carrying weights along. *)
  for i = 0 to n - 1 do
    let lo = off.(i) and len = off.(i + 1) - off.(i) in
    let pairs = Array.init len (fun k -> (adj.(lo + k), wgt.(lo + k))) in
    Array.sort compare pairs;
    Array.iteri
      (fun k (v, w) ->
        adj.(lo + k) <- v;
        wgt.(lo + k) <- w)
      pairs;
    for k = lo to lo + len - 2 do
      if adj.(k) = adj.(k + 1) then invalid_arg "Wgraph.of_edges: duplicate edge"
    done
  done;
  { n; m = count; off; adj; wgt }

let of_edge_array ~n edges =
  build ~n (fun f -> Array.iter f edges) ~count:(Array.length edges)

let of_edges ~n edges =
  build ~n (fun f -> List.iter f edges) ~count:(List.length edges)

let of_unweighted g =
  let edges = List.map (fun (u, v) -> (u, v, 1)) (Graph.edges g) in
  of_edges ~n:(Graph.n g) edges

let degree t v =
  if v < 0 || v >= t.n then invalid_arg "Wgraph.degree";
  t.off.(v + 1) - t.off.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = t.off.(v + 1) - t.off.(v) in
    if d > !best then best := d
  done;
  !best

let iter_neighbors t v f =
  if v < 0 || v >= t.n then invalid_arg "Wgraph.iter_neighbors";
  for k = t.off.(v) to t.off.(v + 1) - 1 do
    f t.adj.(k) t.wgt.(k)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun u w -> acc := f !acc u w);
  !acc

let neighbors t v =
  if v < 0 || v >= t.n then invalid_arg "Wgraph.neighbors";
  Array.init
    (t.off.(v + 1) - t.off.(v))
    (fun k -> (t.adj.(t.off.(v) + k), t.wgt.(t.off.(v) + k)))

let weight t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Wgraph.weight";
  let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
  let res = ref None in
  while !res = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then res := Some t.wgt.(mid)
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let edges t =
  let acc = ref [] in
  for u = 0 to t.n - 1 do
    for k = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj.(k) in
      if u < v then acc := (u, v, t.wgt.(k)) :: !acc
    done
  done;
  List.rev !acc

let total_weight t = List.fold_left (fun acc (_, _, w) -> acc + w) 0 (edges t)
let pp ppf t = Format.fprintf ppf "wgraph(n=%d, m=%d)" t.n t.m
