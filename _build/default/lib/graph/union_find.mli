(** Disjoint-set forest with union by rank and path compression.

    Used by generators to guarantee connectivity and by component
    bookkeeping in tests. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [false] if they were already merged. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets currently. *)
