(** Graph combinators: induced subgraphs, unions, complements,
    deletions and weight maps. *)

val induced_subgraph : Graph.t -> int list -> Graph.t * int array
(** [induced_subgraph g vs] keeps exactly the listed vertices
    (duplicates merged) and the edges among them, renumbering to
    [0 .. k-1] in the sorted order of [vs]. Returns the subgraph and
    the [old_id] array mapping new ids back to original ids. *)

val remove_vertices : Graph.t -> int list -> Graph.t * int array
(** Complementary selection, same renumbering convention. *)

val disjoint_union : Graph.t -> Graph.t -> Graph.t
(** Vertices of the second graph are shifted by [n] of the first. *)

val complement : Graph.t -> Graph.t
(** Simple complement (no self loops). Quadratic — small graphs only. *)

val is_subgraph : sub:Graph.t -> Graph.t -> bool
(** Same vertex count and every edge of [sub] present. *)

val map_weights : (int -> int -> int -> int) -> Wgraph.t -> Wgraph.t
(** [map_weights f g] rebuilds [g] with weight [f u v w] on each edge
    [(u, v, w)].
    @raise Invalid_argument if [f] produces a negative weight. *)
