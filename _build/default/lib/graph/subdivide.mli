(** Vertex-subdivision reductions used by Theorem 1.4 and the
    degree-3 gadget of Theorem 2.1.

    [split_high_degree] implements the reduction at the end of Section 4:
    a vertex of degree [deg(v)] is replaced by [ceil(deg(v) / k)] copies
    of degree at most [2 + k] linked in a path of weight-0 auxiliary
    edges, while original edges keep weight 1 (or their original weight).
    Distances between representative copies equal distances in the
    original graph. *)

type split = {
  graph : Wgraph.t;  (** the subdivided graph, with 0-weight link edges *)
  representative : int array;
      (** original vertex -> its canonical copy in [graph] *)
  origin : int array;  (** copy in [graph] -> originating original vertex *)
}

val split_high_degree : Wgraph.t -> k:int -> split
(** [split_high_degree g ~k] splits every vertex of degree more than
    [k + 2] as described above. Requires [k >= 1]. *)

val split_unweighted : Graph.t -> k:int -> split
(** Convenience wrapper treating all edges as weight 1. *)

val subdivide_edge_paths : n:int -> (int * int * int) list -> Graph.t * int array
(** [subdivide_edge_paths ~n edges] replaces every weighted edge
    [(u, v, w)] (with [w >= 1]) by a path of [w] unit edges through
    [w - 1] fresh auxiliary vertices, yielding an unweighted graph in
    which distances between original vertices are preserved. Returns the
    graph and the [origin] map sending each new vertex to the original
    vertex it stems from ([-1] for auxiliary path vertices). Original
    vertices keep their identifiers [0 .. n-1]. *)
