(** Undirected graph with non-negative integer edge weights, in CSR form.

    Weight 0 is permitted: the degree-reduction of Theorem 1.4 links the
    copies of a subdivided vertex with weight-0 auxiliary edges, so the
    shortest-path machinery ({!Dijkstra}) must tolerate zero weights. *)

type t

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds the graph from [(u, v, w)] triples.
    @raise Invalid_argument on out-of-range endpoints, self loops,
    duplicate edges or negative weights. *)

val of_edge_array : n:int -> (int * int * int) array -> t

val of_unweighted : Graph.t -> t
(** Every edge receives weight 1. *)

val n : t -> int
val m : t -> int
val degree : t -> int -> int
val max_degree : t -> int

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g v f] calls [f u w] for every edge [{v, u}] of
    weight [w]. *)

val fold_neighbors : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a
val neighbors : t -> int -> (int * int) array

val weight : t -> int -> int -> int option
(** Weight of the edge [{u, v}], if present. *)

val edges : t -> (int * int * int) list
(** Each undirected edge once, as [(u, v, w)] with [u < v]. *)

val total_weight : t -> int
val pp : Format.formatter -> t -> unit
