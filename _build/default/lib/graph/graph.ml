type t = { n : int; m : int; off : int array; adj : int array }

let n t = t.n
let m t = t.m

let build_csr ~allow_multi ~n edges_iter ~count =
  let deg = Array.make n 0 in
  edges_iter (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1);
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make (2 * count) 0 in
  let cursor = Array.copy off in
  edges_iter (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1);
  for i = 0 to n - 1 do
    let lo = off.(i) and hi = off.(i + 1) in
    let slice = Array.sub adj lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 adj lo (hi - lo);
    if not allow_multi then
      for k = lo to hi - 2 do
        if adj.(k) = adj.(k + 1) then
          invalid_arg "Graph.of_edges: duplicate edge"
      done
  done;
  { n; m = count; off; adj }

let of_edge_array ?(allow_multi = false) ~n edges =
  build_csr ~allow_multi ~n
    (fun f -> Array.iter f edges)
    ~count:(Array.length edges)

let of_edges ?(allow_multi = false) ~n edges =
  build_csr ~allow_multi ~n
    (fun f -> List.iter f edges)
    ~count:(List.length edges)

let degree t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.degree";
  t.off.(v + 1) - t.off.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = t.off.(v + 1) - t.off.(v) in
    if d > !best then best := d
  done;
  !best

let neighbors t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.neighbors";
  Array.sub t.adj t.off.(v) (t.off.(v + 1) - t.off.(v))

let iter_neighbors t v f =
  if v < 0 || v >= t.n then invalid_arg "Graph.iter_neighbors";
  for k = t.off.(v) to t.off.(v + 1) - 1 do
    f t.adj.(k)
  done

let fold_neighbors t v f init =
  if v < 0 || v >= t.n then invalid_arg "Graph.fold_neighbors";
  let acc = ref init in
  for k = t.off.(v) to t.off.(v + 1) - 1 do
    acc := f !acc t.adj.(k)
  done;
  !acc

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Graph.mem_edge";
  let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj.(k) in
      if u < v then f u v
    done
  done

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let pp ppf t = Format.fprintf ppf "graph(n=%d, m=%d)" t.n t.m
