(** Plain-text graph serialisation.

    The format is one header line ["n m"] followed by [m] lines
    ["u v"] (or ["u v w"] in the weighted variant), 0-indexed. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)

val wgraph_to_string : Wgraph.t -> string
val wgraph_of_string : string -> Wgraph.t

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz rendering, for small illustrative instances. *)
