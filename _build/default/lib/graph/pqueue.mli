(** Indexed binary min-heap with integer keys, specialised for graph
    algorithms over vertices [0 .. n-1].

    Each element is a vertex identifier; its priority is an [int] key.
    The heap supports [decrease_key], which is what Dijkstra needs, in
    O(log n) by keeping the position of every vertex in the heap array. *)

type t

val create : int -> t
(** [create n] is an empty heap able to hold vertices [0 .. n-1]. *)

val is_empty : t -> bool

val size : t -> int
(** Number of elements currently stored. *)

val mem : t -> int -> bool
(** [mem h v] is [true] iff vertex [v] is currently in the heap. *)

val insert : t -> int -> int -> unit
(** [insert h v k] inserts vertex [v] with key [k].
    @raise Invalid_argument if [v] is already present or out of range. *)

val decrease_key : t -> int -> int -> unit
(** [decrease_key h v k] lowers the key of [v] to [k].
    @raise Invalid_argument if [v] is absent or [k] is larger than the
    current key of [v]. *)

val insert_or_decrease : t -> int -> int -> unit
(** [insert_or_decrease h v k] inserts [v] with key [k] if absent,
    otherwise lowers its key to [k] when [k] is smaller (no-op if not). *)

val key : t -> int -> int
(** Current key of a stored vertex.
    @raise Invalid_argument if the vertex is absent. *)

val pop_min : t -> int * int
(** Remove and return [(v, key)] with the minimum key.
    @raise Invalid_argument on an empty heap. *)
