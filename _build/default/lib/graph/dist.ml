let inf = max_int / 4
let is_finite d = d < inf
let add a b = if a >= inf || b >= inf then inf else a + b
let min = Stdlib.min

let pp ppf d =
  if is_finite d then Format.fprintf ppf "%d" d
  else Format.fprintf ppf "inf"
