type t = {
  mutable size : int;
  heap : int array; (* heap slot -> vertex *)
  pos : int array; (* vertex -> heap slot, or -1 when absent *)
  keys : int array; (* vertex -> current key (valid while present) *)
}

let create n =
  {
    size = 0;
    heap = Array.make (max n 1) (-1);
    pos = Array.make (max n 1) (-1);
    keys = Array.make (max n 1) max_int;
  }

let is_empty t = t.size = 0
let size t = t.size

let mem t v =
  if v < 0 || v >= Array.length t.pos then false else t.pos.(v) >= 0

let key t v =
  if not (mem t v) then invalid_arg "Pqueue.key: absent vertex";
  t.keys.(v)

let swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.pos.(vi) <- j;
  t.pos.(vj) <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(t.heap.(i)) < t.keys.(t.heap.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(t.heap.(l)) < t.keys.(t.heap.(!smallest)) then
    smallest := l;
  if r < t.size && t.keys.(t.heap.(r)) < t.keys.(t.heap.(!smallest)) then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t v k =
  if v < 0 || v >= Array.length t.pos then
    invalid_arg "Pqueue.insert: vertex out of range";
  if t.pos.(v) >= 0 then invalid_arg "Pqueue.insert: vertex already present";
  let i = t.size in
  t.size <- i + 1;
  t.heap.(i) <- v;
  t.pos.(v) <- i;
  t.keys.(v) <- k;
  sift_up t i

let decrease_key t v k =
  if not (mem t v) then invalid_arg "Pqueue.decrease_key: absent vertex";
  if k > t.keys.(v) then invalid_arg "Pqueue.decrease_key: key increase";
  t.keys.(v) <- k;
  sift_up t t.pos.(v)

let insert_or_decrease t v k =
  if mem t v then begin if k < t.keys.(v) then decrease_key t v k end
  else insert t v k

let pop_min t =
  if t.size = 0 then invalid_arg "Pqueue.pop_min: empty heap";
  let v = t.heap.(0) in
  let k = t.keys.(v) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.heap.(t.size) in
    t.heap.(0) <- last;
    t.pos.(last) <- 0;
    sift_down t 0
  end;
  t.pos.(v) <- -1;
  (v, k)
