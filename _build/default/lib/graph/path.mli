(** Path extraction and validation utilities. *)

val extract : parent:int array -> src:int -> dst:int -> int list option
(** Reconstruct the tree path [src -> ... -> dst] from parent pointers
    produced by {!Traversal.bfs_full} or {!Dijkstra.shortest_paths}.
    [None] when [dst] is unreachable. *)

val is_path : Graph.t -> int list -> bool
(** [true] iff consecutive vertices of the list are adjacent (a single
    vertex or the empty list are paths). *)

val is_wpath : Wgraph.t -> int list -> bool

val wlength : Wgraph.t -> int list -> int option
(** Total weight of a path, [None] if a hop is not an edge. *)

val verify_shortest : Graph.t -> int list -> bool
(** [true] iff the list is a path whose length equals the graph
    distance between its endpoints. *)

val verify_wshortest : Wgraph.t -> int list -> bool

val vertices_on_some_shortest_path : Graph.t -> int -> int -> int list
(** All vertices [x] with [dist(u,x) + dist(x,v) = dist(u,v)] — the
    "valid hubs" [H_uv] of Theorem 4.1 — in increasing vertex order.
    Empty when [v] is unreachable from [u]. *)

val on_shortest_path : dist_u:int array -> dist_v:int array -> int -> int -> bool
(** [on_shortest_path ~dist_u ~dist_v x d] decides
    [dist_u.(x) + dist_v.(x) = d] with saturating arithmetic; the caller
    supplies [d = dist(u, v)]. *)
