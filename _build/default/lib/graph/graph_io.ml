let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let lines_of s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let ints_of_line line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> invalid_arg ("Graph_io: bad token " ^ t))

let of_string s =
  match lines_of s with
  | [] -> invalid_arg "Graph_io.of_string: empty input"
  | header :: rest -> (
      match ints_of_line header with
      | [ n; m ] ->
          if List.length rest <> m then
            invalid_arg "Graph_io.of_string: edge count mismatch";
          let edges =
            List.map
              (fun l ->
                match ints_of_line l with
                | [ u; v ] -> (u, v)
                | _ -> invalid_arg "Graph_io.of_string: bad edge line")
              rest
          in
          Graph.of_edges ~n edges
      | _ -> invalid_arg "Graph_io.of_string: bad header")

let wgraph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Wgraph.n g) (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "%d %d %d\n" u v w))
    (Wgraph.edges g);
  Buffer.contents buf

let wgraph_of_string s =
  match lines_of s with
  | [] -> invalid_arg "Graph_io.wgraph_of_string: empty input"
  | header :: rest -> (
      match ints_of_line header with
      | [ n; m ] ->
          if List.length rest <> m then
            invalid_arg "Graph_io.wgraph_of_string: edge count mismatch";
          let edges =
            List.map
              (fun l ->
                match ints_of_line l with
                | [ u; v; w ] -> (u, v, w)
                | _ -> invalid_arg "Graph_io.wgraph_of_string: bad edge line")
              rest
          in
          Wgraph.of_edges ~n edges
      | _ -> invalid_arg "Graph_io.wgraph_of_string: bad header")

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
