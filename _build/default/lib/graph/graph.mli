(** Undirected, unweighted graph on vertices [0 .. n-1] in compressed
    sparse row (CSR) form.

    The representation is immutable after construction: build edge lists
    (or use {!Builder}) and call {!of_edges}. Parallel edges and self
    loops are rejected by default because every construction in the
    paper is simple. *)

type t

val of_edges : ?allow_multi:bool -> n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph with vertex set [0 .. n-1] and
    the given undirected edges. Self loops are always rejected; a
    duplicate edge raises unless [allow_multi] is set.
    @raise Invalid_argument on an endpoint out of range or a self loop. *)

val of_edge_array : ?allow_multi:bool -> n:int -> (int * int) array -> t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val max_degree : t -> int
(** Maximum degree; 0 for the empty graph. *)

val neighbors : t -> int -> int array
(** Fresh array of the neighbours of a vertex, in sorted order. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate neighbours without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** Edge test in O(log deg). *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v], sorted. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val pp : Format.formatter -> t -> unit
(** Short human-readable summary ["graph(n=.., m=..)"]. *)
