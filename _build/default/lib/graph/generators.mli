(** Graph generators for tests, examples and experiments.

    All randomized generators take an explicit [Random.State.t] so that
    every experiment is reproducible from a seed. *)

val path : int -> Graph.t
(** Path on [n] vertices (edges [i - i+1]). *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] vertices. *)

val complete : int -> Graph.t
val star : int -> Graph.t
(** [star n] has center [0] and leaves [1 .. n-1]. *)

val grid : rows:int -> cols:int -> Graph.t
(** 2-dimensional grid; vertex [(r, c)] is [r * cols + c]. *)

val torus : rows:int -> cols:int -> Graph.t
(** Grid with wraparound; needs [rows >= 3] and [cols >= 3]. *)

val balanced_binary_tree : depth:int -> Graph.t
(** Perfectly balanced binary tree of the given depth
    ([2^(depth+1) - 1] vertices, root [0], children of [i] are
    [2i+1, 2i+2]). *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform random attachment tree on [n] vertices (vertex [i > 0]
    attaches to a uniform earlier vertex). *)

val gnm : Random.State.t -> n:int -> m:int -> Graph.t
(** Uniform simple graph with exactly [m] edges.
    @raise Invalid_argument if [m > n(n-1)/2]. *)

val gnp : Random.State.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n, p). *)

val random_connected : Random.State.t -> n:int -> m:int -> Graph.t
(** Connected graph with exactly [m >= n-1] edges: random spanning tree
    plus uniform extra edges. The workhorse "sparse graph" generator:
    call with [m = c * n] for constant average degree. *)

val random_bounded_degree : Random.State.t -> n:int -> d:int -> Graph.t
(** Random graph with maximum degree at most [d] (>= 2), built by
    repeated random matching rounds with rejection; connected whenever
    the attempt succeeds, otherwise the largest structure found is
    completed with a path through leftover low-degree vertices.
    Guaranteed simple and Δ <= d. *)

val random_bipartite :
  Random.State.t -> left:int -> right:int -> m:int -> (int * int) list
(** [m] distinct pairs [(u, v)] with [u] in [0..left-1] and [v] in
    [0..right-1], for matching tests. *)

val grid_with_shortcuts :
  Random.State.t -> rows:int -> cols:int -> shortcuts:int -> Graph.t
(** A "road-network-like" instance: 2D grid plus random long-range
    shortcut edges (used by the examples motivated by §1.1). *)
