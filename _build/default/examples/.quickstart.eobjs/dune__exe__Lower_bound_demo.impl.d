examples/lower_bound_demo.ml: Array Cover Degree_gadget Graph Grid_graph Hub_label Lower_bound Pll Printf Repro_core Repro_graph Repro_hub Wgraph
