examples/rs_matchings_demo.ml: Ap_free Behrend Induced_matching List Printf Repro_rs Rs_bounds Rs_graph String
