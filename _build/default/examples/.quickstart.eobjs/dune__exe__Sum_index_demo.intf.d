examples/sum_index_demo.mli:
