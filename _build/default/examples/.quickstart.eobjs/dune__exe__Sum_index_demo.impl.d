examples/sum_index_demo.ml: Array List Printf Random Repro_core Repro_labeling Si_reduction String Sum_index
