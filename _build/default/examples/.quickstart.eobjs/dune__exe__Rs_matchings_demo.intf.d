examples/rs_matchings_demo.mli:
