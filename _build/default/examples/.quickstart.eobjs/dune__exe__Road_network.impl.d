examples/road_network.ml: Array Cover Generators Graph Hub_label List Order Pll Printf Random Random_hitting Repro_graph Repro_hub Sys
