examples/quickstart.ml: Array Cover Format Generators Graph Hub_label List Pll Printf Random Repro_graph Repro_hub Repro_labeling Traversal
