examples/quickstart.mli:
