(* The Ruzsa–Szemerédi machinery of Section 1.2, hands on:

   1. Behrend's progression-free sets (the source of the RS(n) upper
      bound);
   2. an AMS-style sphere graph whose edges partition into induced
      matchings — the structure the Section 2 lower-bound instance
      realises as unique shortest paths.

   Run with: dune exec examples/rs_matchings_demo.exe *)

open Repro_rs

let () =
  (* Progression-free sets. *)
  let n = 2000 in
  let s = Behrend.construct n in
  Printf.printf "AP-free subset of [0, %d): %d elements (density %.3f)\n" n
    (List.length s)
    (float_of_int (List.length s) /. float_of_int n);
  assert (Ap_free.is_ap_free s);
  Printf.printf "first elements: %s ...\n"
    (String.concat ", "
       (List.map string_of_int (List.filteri (fun i _ -> i < 10) s)));

  (* A sphere graph with certified induced matchings. *)
  let t = Rs_graph.build ~c:5 ~d:5 in
  Printf.printf "\nsphere graph: %s\n" (Rs_graph.density_summary t);
  let g = t.Rs_graph.graph in
  Printf.printf "edge partition into induced matchings: %b\n"
    (Induced_matching.is_partition g t.Rs_graph.matchings
    && List.for_all (Induced_matching.is_induced g) t.Rs_graph.matchings);
  Printf.printf "Definition 1.3 (at most n matchings): %b\n"
    (Induced_matching.is_ruzsa_szemeredi g t.Rs_graph.matchings);

  (* Show one matching and why it is induced: all points share the
     shell norm rho, so cross pairs sit strictly farther than mu. *)
  (match List.sort (fun a b -> compare (List.length b) (List.length a)) t.Rs_graph.matchings with
  | biggest :: _ ->
      Printf.printf "largest matching: %d edges, e.g. %s\n"
        (List.length biggest)
        (String.concat " "
           (List.map
              (fun (u, v) -> Printf.sprintf "(%d-%d)" u v)
              (List.filteri (fun i _ -> i < 5) biggest)))
  | [] -> ());

  (* The conditional range of the paper's bounds. *)
  Printf.printf "\nRS(n) bound shapes at n = 10^6: %g (Fox) vs %g (Behrend)\n"
    (Rs_bounds.fox_lower 1_000_000)
    (Rs_bounds.behrend_upper 1_000_000);
  Printf.printf
    "=> conditional hub-size range for sparse graphs: between n/RS ~ %g and %g\n"
    (1_000_000.0 /. Rs_bounds.behrend_upper 1_000_000)
    (1_000_000.0 /. Rs_bounds.fox_lower 1_000_000)
