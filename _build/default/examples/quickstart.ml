(* Quickstart: build a sparse graph, compute a hub labeling, answer
   distance queries from labels alone, and verify exactness.

   Run with: dune exec examples/quickstart.exe *)

open Repro_graph
open Repro_hub

let () =
  (* A random connected sparse graph: n = 500 vertices, m = 2n edges. *)
  let rng = Random.State.make [| 42 |] in
  let g = Generators.random_connected rng ~n:500 ~m:1000 in
  Printf.printf "graph: %d vertices, %d edges, max degree %d\n" (Graph.n g)
    (Graph.m g) (Graph.max_degree g);

  (* Pruned Landmark Labeling: the standard practical 2-hop cover. *)
  let labels = Pll.build g in
  Printf.printf "hub labeling: %s\n"
    (Format.asprintf "%a" Hub_label.pp labels);

  (* Distance queries straight from the labels. *)
  let bfs0 = Traversal.bfs g 0 in
  List.iter
    (fun v ->
      let d = Hub_label.query labels 0 v in
      Printf.printf "dist(0, %d) = %d (BFS agrees: %b)\n" v d (d = bfs0.(v)))
    [ 1; 100; 250; 499 ];

  (* The optimal meeting hub of a query. *)
  (match Hub_label.query_meet labels 0 499 with
  | Some (hub, d) -> Printf.printf "pair (0, 499) meets at hub %d, dist %d\n" hub d
  | None -> print_endline "pair (0, 499) disconnected");

  (* Exhaustive exactness check (the 2-hop cover property). *)
  Printf.printf "exact on all %d pairs: %b\n"
    (Graph.n g * (Graph.n g + 1) / 2)
    (Cover.verify g labels);

  (* Binary distance labels: encode, then answer from bits alone. *)
  let encoded = Repro_labeling.Encoder.encode labels in
  Printf.printf "binary labels: %.1f bits/vertex on average\n"
    (Repro_labeling.Encoder.avg_bits encoded);
  Printf.printf "query from binary labels: dist(0, 499) = %d\n"
    (Repro_labeling.Encoder.query_encoded encoded.(0) encoded.(499))
