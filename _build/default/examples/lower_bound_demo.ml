(* The Theorem 2.1 lower-bound instance, end to end:

   1. build the weighted layered grid H_{b,l} of Figure 1;
   2. verify Lemma 2.2 (unique shortest paths through forced midpoints)
      exhaustively;
   3. convert it to the unweighted max-degree-3 graph G_{b,l};
   4. compute a real exact hub labeling (PLL) of G and confirm the
      paper's counting argument: the monotone-closure total beats the
      proven s^l (s/2)^l bound.

   Run with: dune exec examples/lower_bound_demo.exe *)

open Repro_graph
open Repro_hub
open Repro_core

let () =
  let b = 2 and l = 1 in
  let grid = Grid_graph.create ~b ~l () in
  Printf.printf "H_{%d,%d}: %d vertices, %d weighted edges, A = %d\n" b l
    (Grid_graph.n grid)
    (Wgraph.m grid.Grid_graph.graph)
    grid.Grid_graph.a_weight;

  (* Lemma 2.2 on the weighted grid. *)
  let c = Lower_bound.check_lemma22_grid grid in
  Printf.printf
    "Lemma 2.2 on H: %d valid (x,z) pairs checked, failures: %d/%d/%d\n"
    c.Lower_bound.pairs_checked c.Lower_bound.unique_failures
    c.Lower_bound.midpoint_failures c.Lower_bound.distance_failures;

  (* One pair in detail. *)
  let x = [| 0 |] and z = [| 2 |] in
  let y = Grid_graph.midpoint x z in
  Printf.printf "pair x=%d z=%d: unique shortest path length %d via y=%d\n"
    x.(0) z.(0)
    (Grid_graph.expected_distance grid x z)
    y.(0);

  (* The degree-3 gadget. *)
  let gadget = Degree_gadget.build grid in
  let g = gadget.Degree_gadget.graph in
  Printf.printf "G_{%d,%d}: %d vertices, max degree %d (theorem bound %d)\n" b
    l (Graph.n g) (Graph.max_degree g)
    (Degree_gadget.theorem21_node_bound gadget);
  let cg = Lower_bound.check_lemma22_gadget gadget in
  Printf.printf "Lemma 2.2 on G: %d pairs, failures: %d/%d/%d\n"
    cg.Lower_bound.pairs_checked cg.Lower_bound.unique_failures
    cg.Lower_bound.midpoint_failures cg.Lower_bound.distance_failures;

  (* The counting argument on a real labeling. *)
  let labels = Pll.build g in
  Printf.printf "PLL labeling of G: avg %.1f hubs/vertex (exact: %b)\n"
    (Hub_label.avg_size labels) (Cover.verify g labels);
  let holds, closure_total = Lower_bound.check_counting_argument gadget labels in
  Printf.printf
    "monotone-closure total = %d >= counting bound %d: %b\n" closure_total
    (Lower_bound.counting_bound grid)
    holds;
  Printf.printf "certified average-hub-size lower bound: %g\n"
    (Lower_bound.avg_hub_size_lower_bound_measured gadget)
