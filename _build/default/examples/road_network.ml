(* The practical motivation of §1.1: hub labels answer shortest-path
   queries on transportation-like networks fast, with modest space.

   We build a grid-with-shortcuts "road network", compare three
   labelings (PLL under two vertex orders, and the random-hitting-set
   scheme of the sparse-graph upper bounds), and measure label size and
   query throughput.

   Run with: dune exec examples/road_network.exe *)

open Repro_graph
open Repro_hub

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  let rng = Random.State.make [| 2019 |] in
  let rows = 24 and cols = 24 in
  let g = Generators.grid_with_shortcuts rng ~rows ~cols ~shortcuts:48 in
  Printf.printf "road network: %d intersections, %d segments\n" (Graph.n g)
    (Graph.m g);

  let schemes =
    [
      ("PLL (degree order)", fun () -> Pll.build g);
      ( "PLL (closeness order)",
        fun () ->
          let order = Order.by_closeness_sample g ~rng ~samples:24 in
          Pll.build ~order g );
      ( "random hitting (D=8)",
        fun () -> fst (Random_hitting.build ~rng ~d:8 g) );
    ]
  in
  let n = Graph.n g in
  let queries =
    Array.init 50_000 (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  List.iter
    (fun (name, build) ->
      let labels, build_time = time build in
      assert (Cover.verify_sampled g labels ~rng ~samples:5);
      let (), query_time =
        time (fun () ->
            Array.iter
              (fun (u, v) -> ignore (Hub_label.query labels u v))
              queries)
      in
      Printf.printf
        "%-22s avg hubs %6.1f  built in %5.2fs  %8.0f queries/s\n" name
        (Hub_label.avg_size labels) build_time
        (float_of_int (Array.length queries) /. max query_time 1e-9))
    schemes;

  (* A sample route, reconstructed hop by hop through meeting hubs. *)
  let labels = Pll.build g in
  let src = 0 and dst = (rows * cols) - 1 in
  match Hub_label.query_meet labels src dst with
  | None -> print_endline "no route"
  | Some (hub, d) ->
      Printf.printf
        "route corner-to-corner: %d segments, via hub intersection %d\n" d hub
