(* Theorem 1.6 in action: distance labels of a sparse max-degree-3
   graph solve the Sum-Index communication problem.

   Alice and Bob share a bit string S. Each builds the graph G'_{b,l}
   whose middle layer encodes S, labels it deterministically, and sends
   the referee just one binary vertex label (plus their index). The
   referee recovers S_{(a+b) mod m} from the two labels alone.

   Run with: dune exec examples/sum_index_demo.exe *)

open Repro_core

let () =
  let p = Si_reduction.params ~b:3 ~l:1 in
  let m = p.Si_reduction.m in
  Printf.printf "parameters: b=3 l=1 -> universe m = %d\n" m;

  let rng = Random.State.make [| 7 |] in
  let s = Sum_index.random_instance rng m in
  Printf.printf "shared string S = %s\n"
    (String.concat ""
       (List.map (fun b -> if b then "1" else "0") (Array.to_list s)));

  let proto = Si_reduction.protocol p in

  (* One run, spelled out. *)
  let a = 1 and b = 2 in
  let ma = proto.Sum_index.alice s a in
  let mb = proto.Sum_index.bob s b in
  Printf.printf "Alice (a=%d) sends %d bits; Bob (b=%d) sends %d bits\n" a
    (Repro_labeling.Bitvec.length ma)
    b
    (Repro_labeling.Bitvec.length mb);
  let answer = proto.Sum_index.referee ma mb in
  Printf.printf "referee outputs %b; ground truth S[(%d+%d) mod %d] = %b\n"
    answer a b m (Sum_index.answer s a b);

  (* Exhaustive check over every index pair. *)
  Printf.printf "correct on all %d pairs: %b\n" (m * m)
    (Sum_index.correct_on proto s);

  (* Compare with the trivial protocol. *)
  let tr = Sum_index.trivial ~n:m in
  let ta, tb = Sum_index.max_message_bits tr s in
  let ga, gb = Sum_index.max_message_bits proto s in
  Printf.printf
    "message sizes: graph-derived %d+%d bits, trivial %d+%d bits,\n\
     SUMINDEX(m) lower bound ~ sqrt(m) = %.2f bits\n"
    ga gb ta tb
    (Sum_index.sqrt_lower_bound_bits m);
  print_endline
    "(the reduction runs in the lower-bound direction: small distance\n\
     labels would imply small Sum-Index messages, so Sum-Index hardness\n\
     bounds distance-label size from below)"
