(* Benchmark harness.

   Part 1 regenerates every paper artifact (the experiment reports
   E-FIG1 .. E-BASE of DESIGN.md — this theory paper has no numbered
   tables, so experiments are indexed by theorem/figure).

   Part 2 runs Bechamel micro-benchmarks over the core operations, one
   Test.make per operation, grouped in a single executable as required
   by the project layout.

   Part 3 times the packed flat-array hub store against the assoc
   labeling on the same query stream and writes the summary to
   BENCH_flat_query.json (see docs/PERFORMANCE.md).

   `--smoke` (the @bench-smoke dune alias) skips the experiments and
   Bechamel, rebuilds every fixture at tiny sizes and executes each
   benchmark body once, so the benchmark code cannot bit-rot unbuilt. *)

open Bechamel
open Toolkit
open Repro_graph
open Repro_hub
open Repro_core

(* One seed feeds every fixture RNG; `--seed N` overrides it so reruns
   can vary the workload while staying reproducible (the seed is
   recorded in every JSON artifact that depends on it). *)
let seed = ref 20190721

let () =
  Array.iteri
    (fun i a ->
      if a = "--seed" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some s -> seed := s
        | None ->
            prerr_endline "bench: --seed expects an integer";
            exit 124)
    Sys.argv

let rng () = Random.State.make [| !seed |]

(* ------------------------------------------------------------------ *)
(* Fixture sizes: one record, two profiles.                            *)

type sizes = {
  grid_side : int;
  sparse_n : int;
  sparse_m : int;
  path_n : int;
  pairs : int;
  bip_side : int;
  bip_m : int;
  tree_depth : int;
  behrend_n : int;
  rs_c : int;
  rs_d : int;
  grid_b : int;
  grid_l : int;
}

let full_sizes =
  {
    grid_side = 16;
    sparse_n = 2000;
    sparse_m = 4000;
    path_n = 128;
    pairs = 1024;
    bip_side = 200;
    bip_m = 600;
    tree_depth = 11;
    behrend_n = 10_000;
    rs_c = 4;
    rs_d = 4;
    grid_b = 2;
    grid_l = 2;
  }

let smoke_sizes =
  {
    grid_side = 4;
    sparse_n = 60;
    sparse_m = 120;
    path_n = 32;
    pairs = 64;
    bip_side = 20;
    bip_m = 40;
    tree_depth = 4;
    behrend_n = 200;
    rs_c = 2;
    rs_d = 2;
    grid_b = 2;
    grid_l = 1;
  }

(* Micro-benchmark entries: (name, body), fixtures built once outside
   the timed region. *)
let make_entries (z : sizes) =
  let grid = Generators.grid ~rows:z.grid_side ~cols:z.grid_side in
  let sparse = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let wsparse = Wgraph.of_unweighted sparse in
  let path = Generators.path z.path_n in
  let labels_grid = Pll.build grid in
  let labels_sparse = Pll.build sparse in
  let flat_sparse = Flat_hub.of_labels labels_sparse in
  let flat_cached =
    Flat_hub.of_labels ~cache_slots:(4 * z.pairs) labels_sparse
  in
  let query_pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let bipartite_instance =
    let r = rng () in
    Repro_matching.Bipartite.create ~left:z.bip_side ~right:z.bip_side
      (Generators.random_bipartite r ~left:z.bip_side ~right:z.bip_side
         ~m:z.bip_m)
  in
  let tree = Generators.balanced_binary_tree ~depth:z.tree_depth in
  (* Serving-layer fixtures: the direct hub path ("pll-query" below) vs.
     the resilient wrapper in its regimes — trusting primary (assoc and
     flat), spot-checked primary, and the pure fallback chain (no
     labels, so every query runs the budgeted bidirectional search). *)
  let serve_primary =
    Repro_serve.Resilient_oracle.create ~spot_check_every:0
      ~labels:labels_sparse sparse
  in
  let serve_flat =
    Repro_serve.Resilient_oracle.create ~spot_check_every:0
      ~primary:(Repro_serve.Resilient_oracle.flat_primary flat_sparse)
      sparse
  in
  let serve_checked =
    Repro_serve.Resilient_oracle.create ~spot_check_every:8
      ~labels:labels_sparse sparse
  in
  let serve_fallback = Repro_serve.Resilient_oracle.create sparse in
  let sweep name q =
    ( name,
      fun () -> Array.iter (fun (u, v) -> ignore (q u v : int)) query_pairs )
  in
  [
    ("bfs sparse", fun () -> ignore (Traversal.bfs sparse 0));
    ("dijkstra sparse", fun () -> ignore (Dijkstra.distances wsparse 0));
    ("pll-build grid", fun () -> ignore (Pll.build grid));
    sweep "pll-query sparse" (Hub_label.query labels_sparse);
    sweep "flat-query sparse" (Flat_hub.query flat_sparse);
    ( "flat-query-batched sparse",
      fun () -> ignore (Flat_hub.query_many flat_sparse query_pairs) );
    ( "flat-query-cached sparse",
      fun () -> ignore (Flat_hub.query_many flat_cached query_pairs) );
    ("flat-pack sparse", fun () -> ignore (Flat_hub.of_labels labels_sparse));
    ( "encode labels grid",
      fun () -> ignore (Repro_labeling.Encoder.encode labels_grid) );
    ( "hopcroft-karp",
      fun () -> ignore (Repro_matching.Hopcroft_karp.solve bipartite_instance)
    );
    ("behrend", fun () -> ignore (Repro_rs.Behrend.construct z.behrend_n));
    ( "rs-graph",
      fun () -> ignore (Repro_rs.Rs_graph.build ~c:z.rs_c ~d:z.rs_d) );
    ( "grid-graph",
      fun () -> ignore (Grid_graph.create ~b:z.grid_b ~l:z.grid_l ()) );
    ( "gadget",
      fun () ->
        ignore (Degree_gadget.build (Grid_graph.create ~b:2 ~l:1 ())) );
    ("rs-hub path", fun () -> ignore (Rs_hub.build ~rng:(rng ()) ~d:4 path));
    ("tree-label", fun () -> ignore (Repro_labeling.Tree_label.build tree));
    ( "random-hitting grid",
      fun () -> ignore (Random_hitting.build ~rng:(rng ()) ~d:6 grid) );
    sweep "serve-query primary"
      (Repro_serve.Resilient_oracle.query serve_primary);
    sweep "serve-query flat" (Repro_serve.Resilient_oracle.query serve_flat);
    sweep "serve-query checked-1/8"
      (Repro_serve.Resilient_oracle.query serve_checked);
    sweep "serve-query fallback"
      (Repro_serve.Resilient_oracle.query serve_fallback);
  ]

(* ------------------------------------------------------------------ *)
(* Part 3: flat vs. assoc on one query stream -> BENCH_flat_query.json *)

let time_ns_per_query ~iters ~queries f =
  f ();
  (* warm up caches and trigger any lazy setup *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int (iters * queries)

let flat_vs_assoc ~mode (z : sizes) ~iters =
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build g in
  let flat = Flat_hub.of_labels labels in
  let cached = Flat_hub.of_labels ~cache_slots:(4 * z.pairs) labels in
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let sweep q () = Array.iter (fun (u, v) -> ignore (q u v : int)) pairs in
  let t = time_ns_per_query ~iters ~queries:z.pairs in
  let assoc_point = t (sweep (Hub_label.query labels)) in
  let flat_point = t (sweep (Flat_hub.query flat)) in
  let flat_batched = t (fun () -> ignore (Flat_hub.query_many flat pairs)) in
  let flat_cached = t (fun () -> ignore (Flat_hub.query_many cached pairs)) in
  let oc = open_out "BENCH_flat_query.json" in
  Printf.fprintf oc
    {|{
  "bench": "flat_query",
  "mode": "%s",
  "jobs": %d,
  "store": "flat",
  "recommended_domain_count": %d,
  "graph": { "n": %d, "m": %d },
  "queries": %d,
  "iters": %d,
  "avg_label_size": %.2f,
  "ns_per_query": {
    "assoc_point": %.1f,
    "flat_point": %.1f,
    "flat_batched": %.1f,
    "flat_cached": %.1f
  },
  "speedup_vs_assoc": {
    "point": %.3f,
    "batched": %.3f,
    "cached": %.3f
  }
}
|}
    mode
    (Repro_par.Pool.default_jobs ())
    (Repro_par.Pool.recommended ())
    z.sparse_n z.sparse_m z.pairs iters
    (Hub_label.avg_size labels)
    assoc_point flat_point flat_batched flat_cached
    (assoc_point /. flat_point)
    (assoc_point /. flat_batched)
    (assoc_point /. flat_cached);
  close_out oc;
  Printf.printf
    "flat vs assoc (%s, n=%d, %d pairs): assoc %.1f ns/q, flat %.1f ns/q, \
     batched %.1f ns/q, cached %.1f ns/q -> BENCH_flat_query.json\n%!"
    mode z.sparse_n z.pairs assoc_point flat_point flat_batched flat_cached

(* ------------------------------------------------------------------ *)
(* Part 4: the instrumented serving stack -> BENCH_serve_metrics.json.

   Every backend behind the uniform Backend.S signature, wrapped with
   Obs.instrument into one shared registry; the JSON carries the
   per-backend latency percentiles straight from the fixed-bucket
   histograms (real monotonic clock — this is a benchmark, the
   deterministic-clock path is exercised by the test suite). *)

let serve_metrics ~mode (z : sizes) ~rounds =
  let module Metrics = Repro_obs.Metrics in
  let module Backend = Repro_obs.Backend in
  let module Obs = Repro_obs.Obs in
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build g in
  let flat = Flat_hub.of_labels ~cache_slots:(4 * z.pairs) labels in
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let registry = Metrics.create () in
  let backends =
    [
      ("hub", Hub_label.backend labels);
      ("flat", Flat_hub.backend flat);
      ( "resilient",
        Repro_serve.Resilient_oracle.backend
          (Repro_serve.Resilient_oracle.create ~spot_check_every:8
             ~labels g) );
    ]
  in
  let instrumented =
    List.map
      (fun (prefix, b) -> (prefix, Obs.instrument ~prefix registry b))
      backends
  in
  List.iter
    (fun (_, b) ->
      for _ = 1 to rounds do
        Array.iter (fun (u, v) -> ignore (Backend.query b u v : int)) pairs
      done)
    instrumented;
  let snap = Metrics.snapshot registry in
  let backend_json (prefix, b) =
    let h =
      match Metrics.find_histogram snap (prefix ^ ".latency_ns") with
      | Some h -> h
      | None ->
        {
          Metrics.count = 0;
          sum = 0;
          p50 = 0;
          p90 = 0;
          p99 = 0;
          max = 0;
          exemplars = [];
        }
    in
    let counter name =
      Option.value ~default:0 (Metrics.find_counter snap (prefix ^ name))
    in
    Printf.sprintf
      {|    "%s": {
      "backend": "%s",
      "space_words": %d,
      "queries": %d,
      "cache_hit": %d,
      "cache_miss": %d,
      "latency_ns": { "count": %d, "sum": %d, "p50": %d, "p90": %d, "p99": %d, "max": %d }
    }|}
      prefix (Backend.name b) (Backend.space_words b) (counter ".queries")
      (counter ".cache.hit") (counter ".cache.miss") h.Metrics.count
      h.Metrics.sum h.Metrics.p50 h.Metrics.p90 h.Metrics.p99 h.Metrics.max
  in
  let oc = open_out "BENCH_serve_metrics.json" in
  Printf.fprintf oc
    {|{
  "bench": "serve_metrics",
  "mode": "%s",
  "seed": %d,
  "jobs": %d,
  "store": "flat",
  "recommended_domain_count": %d,
  "graph": { "n": %d, "m": %d },
  "queries_per_backend": %d,
  "backends": {
%s
  }
}
|}
    mode !seed
    (Repro_par.Pool.default_jobs ())
    (Repro_par.Pool.recommended ())
    z.sparse_n z.sparse_m (rounds * z.pairs)
    (String.concat ",\n" (List.map backend_json instrumented));
  close_out oc;
  List.iter
    (fun (prefix, _) ->
      match Metrics.find_histogram snap (prefix ^ ".latency_ns") with
      | Some h ->
          Printf.printf
            "serve metrics (%s): %-9s p50 %d ns, p90 %d ns, p99 %d ns, max \
             %d ns over %d queries\n%!"
            mode prefix h.Metrics.p50 h.Metrics.p90 h.Metrics.p99
            h.Metrics.max h.Metrics.count
      | None -> ())
    instrumented;
  Printf.printf "-> BENCH_serve_metrics.json\n%!"

(* ------------------------------------------------------------------ *)
(* Part 5: per-phase construction profiles -> BENCH_build_profile.json.

   Each construction pipeline is pre-instrumented with Repro_obs.Span
   phases named after the proof structure (docs/OBSERVABILITY.md lists
   the full set); wrapping a build in Span.profile yields the timed
   tree. The JSON stores one tree per pipeline, so a regression in any
   single stage (e.g. the Theorem 4.1 König-cover step) is visible
   without re-deriving anything. *)

let build_profile ~mode (z : sizes) =
  let module Span = Repro_obs.Span in
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let path = Generators.path z.path_n in
  let profiled name f =
    let _, root = Span.profile ~name:("profile:" ^ name) f in
    match root.Span.children with
    | [ tree ] -> tree
    | _ -> root (* defensive: keep whatever was recorded *)
  in
  let labels = ref None in
  let pll_tree = profiled "pll" (fun () -> labels := Some (Pll.build g)) in
  let labels = Option.get !labels in
  let rs_tree =
    profiled "rs_hub" (fun () ->
        ignore (Rs_hub.build ~rng:(rng ()) ~d:z.rs_d path))
  in
  let pack_tree =
    profiled "flat_pack" (fun () -> ignore (Flat_hub.of_labels labels))
  in
  let grid = ref None in
  let grid_tree =
    profiled "grid" (fun () ->
        grid := Some (Grid_graph.create ~b:z.grid_b ~l:z.grid_l ()))
  in
  let gadget_tree =
    profiled "gadget" (fun () ->
        ignore (Degree_gadget.build (Option.get !grid)))
  in
  let profiles =
    [
      ("pll", pll_tree);
      ("rs_hub", rs_tree);
      ("flat_pack", pack_tree);
      ("grid", grid_tree);
      ("gadget", gadget_tree);
    ]
  in
  let oc = open_out "BENCH_build_profile.json" in
  Printf.fprintf oc
    {|{
  "bench": "build_profile",
  "mode": "%s",
  "seed": %d,
  "jobs": %d,
  "store": "assoc",
  "recommended_domain_count": %d,
  "graph": { "n": %d, "m": %d },
  "profiles": {
%s
  }
}
|}
    mode !seed
    (Repro_par.Pool.default_jobs ())
    (Repro_par.Pool.recommended ())
    z.sparse_n z.sparse_m
    (String.concat ",\n"
       (List.map
          (fun (k, tree) -> Printf.sprintf {|    "%s": %s|} k (Span.to_json tree))
          profiles));
  close_out oc;
  List.iter
    (fun (k, tree) ->
      Printf.printf "build profile (%s): %-9s %Ld ns across %d phases\n%!" mode
        k (Span.total_ns tree)
        (List.length tree.Span.children))
    profiles;
  Printf.printf "-> BENCH_build_profile.json\n%!"

(* ------------------------------------------------------------------ *)
(* Part 6: multicore scaling + determinism -> BENCH_parallel.json.

   For jobs in {1, 2, 4}: time the parallel distance rows, the Theorem
   4.1 construction and the batched query fan-out on one shared pool,
   and hash every observable output (labels, stats, the span tree under
   a manual clock). The hashes must agree across job counts — that is
   the determinism contract of Repro_par.Pool — while the timings show
   whatever speedup the machine has cores for; jobs_available records
   how many that is, so a flat ratio on a 1-core box explains itself. *)

let run_parallel ~mode (z : sizes) =
  let module Pool = Repro_par.Pool in
  let module Checksum = Repro_par.Checksum in
  let module Span = Repro_obs.Span in
  let module Clock = Repro_obs.Clock in
  let iters = if mode = "smoke" then 2 else 50 in
  let sparse = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let rs_n = max 8 (z.sparse_n / 4) in
  let deg3 = Generators.random_bounded_degree (rng ()) ~n:rs_n ~d:3 in
  let labels = Pll.build sparse in
  let flat = Flat_hub.of_labels labels in
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    ((t1 -. t0) *. 1e3, r)
  in
  let rows_digest rows =
    let buf = Buffer.create (1 lsl 16) in
    Array.iter
      (Array.iter (fun d ->
           Buffer.add_string buf (string_of_int d);
           Buffer.add_char buf ' '))
      rows;
    Checksum.sha256_hex (Buffer.contents buf)
  in
  let one_run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let rows_ms, rows = time_ms (fun () -> Traversal.bfs_rows ~pool sparse) in
        let rows_sha = rows_digest rows in
        (* same seed every run: the construction's random draws all
           happen on the submitting domain, so the labeling, stats and
           span tree must be byte-identical whatever [jobs] is *)
        let clock = Clock.read (Clock.manual ~auto_step:1L ()) in
        let build_ms, ((labels, stats), span) =
          time_ms (fun () ->
              Span.profile ~clock ~name:"bench-parallel" (fun () ->
                  Rs_hub.build ~rng:(rng ()) ~d:z.rs_d ~pool deg3))
        in
        let labels_sha = Checksum.sha256_hex (Hub_io.to_string labels) in
        let stats_sha =
          Checksum.sha256_hex
            (Printf.sprintf "d=%d n=%d s=%d q=%d r=%d f=%d buckets=%d mm=%d hubs=%d"
               stats.Rs_hub.d stats.Rs_hub.n stats.Rs_hub.global_size
               stats.Rs_hub.q_total stats.Rs_hub.r_total stats.Rs_hub.f_total
               stats.Rs_hub.bucket_count stats.Rs_hub.matching_edge_total
               stats.Rs_hub.total_hubs)
        in
        let span_sha = Checksum.sha256_hex (Span.to_json span) in
        let query_ms, answers =
          time_ms (fun () ->
              let out = ref [||] in
              for _ = 1 to iters do
                out := Flat_hub.query_many ~pool flat pairs
              done;
              !out)
        in
        let answers_sha =
          Checksum.sha256_hex
            (String.concat ","
               (Array.to_list (Array.map string_of_int answers)))
        in
        let query_ns_per_q =
          query_ms *. 1e6 /. float_of_int (iters * z.pairs)
        in
        ( jobs,
          rows_ms,
          build_ms,
          query_ns_per_q,
          rows_sha,
          labels_sha,
          stats_sha,
          span_sha,
          answers_sha ))
  in
  let runs = List.map one_run [ 1; 2; 4 ] in
  let shas_of (_, _, _, _, a, b, c, d, e) = [ a; b; c; d; e ] in
  let deterministic =
    match runs with
    | [] -> true
    | first :: rest ->
        List.for_all (fun r -> shas_of r = shas_of first) rest
  in
  let base =
    match runs with (_, r, b, q, _, _, _, _, _) :: _ -> (r, b, q) | [] -> (1., 1., 1.)
  in
  let run_json (jobs, rows_ms, build_ms, query_ns, rows_sha, labels_sha,
                stats_sha, span_sha, answers_sha) =
    let r1, b1, q1 = base in
    Printf.sprintf
      {|    {
      "jobs": %d,
      "bfs_rows_ms": %.2f,
      "rs_hub_build_ms": %.2f,
      "query_many_ns_per_query": %.1f,
      "speedup_vs_jobs1": { "bfs_rows": %.3f, "rs_hub_build": %.3f, "query_many": %.3f },
      "sha256": {
        "distance_rows": "%s",
        "labels": "%s",
        "stats": "%s",
        "span_json": "%s",
        "batch_answers": "%s"
      }
    }|}
      jobs rows_ms build_ms query_ns (r1 /. rows_ms) (b1 /. build_ms)
      (q1 /. query_ns) rows_sha labels_sha stats_sha span_sha answers_sha
  in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "bench": "parallel",
  "mode": "%s",
  "seed": %d,
  "store": "flat",
  "jobs_available": %d,
  "default_jobs": %d,
  "graph": { "n": %d, "m": %d },
  "rs_hub_graph": { "n": %d, "max_degree": 3 },
  "queries": %d,
  "query_iters": %d,
  "deterministic_across_jobs": %b,
  "runs": [
%s
  ]
}
|}
    mode !seed (Pool.recommended ()) (Pool.default_jobs ()) z.sparse_n
    z.sparse_m rs_n z.pairs iters deterministic
    (String.concat ",\n" (List.map run_json runs));
  close_out oc;
  List.iter
    (fun (jobs, rows_ms, build_ms, query_ns, _, _, _, _, _) ->
      Printf.printf
        "parallel (%s, jobs=%d): bfs_rows %.2f ms, rs-hub %.2f ms, \
         query_many %.1f ns/q\n%!"
        mode jobs rows_ms build_ms query_ns)
    runs;
  Printf.printf
    "parallel: outputs byte-identical across jobs {1,2,4}: %b (%d core(s) \
     available) -> BENCH_parallel.json\n%!"
    deterministic (Pool.recommended ())

(* Part 7: the sharded serving tier -> BENCH_shard.json.

   Fan-out latency of the router over {1, 2, 4} forked workers against
   the same Resilient_oracle stack in-process, plus
   recovery-time-to-healthy after a worker is killed mid-stream. Every
   configuration answers the identical query stream and the answer
   digests must agree — sharding must never change a distance. This
   part MUST run before anything creates a domain pool: the router
   forks, and OCaml 5 forbids fork once a domain has been spawned. *)

let run_shard ~mode (z : sizes) =
  let module Router = Repro_shard.Router in
  let module Supervisor = Repro_shard.Supervisor in
  let module Checksum = Repro_par.Checksum in
  let iters = if mode = "smoke" then 2 else 30 in
  let sparse = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build sparse in
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    ((t1 -. t0) *. 1e3, r)
  in
  let digest answers =
    Checksum.sha256_hex
      (String.concat ","
         (Array.to_list
            (Array.map (fun (a : Router.answer) -> string_of_int a.Router.dist)
               answers)))
  in
  (* the in-process baseline is the exact stack a worker runs: flat
     store behind the resilient chain *)
  let flat = Flat_hub.of_labels labels in
  let oracle =
    Repro_serve.Resilient_oracle.create ~spot_check_every:0
      ~primary:(Repro_serve.Resilient_oracle.flat_primary flat)
      sparse
  in
  let single_ms, single_answers =
    time_ms (fun () ->
        let out = ref [||] in
        for _ = 1 to iters do
          out := Repro_serve.Resilient_oracle.query_many_detailed oracle pairs
        done;
        !out)
  in
  let single_sha =
    Checksum.sha256_hex
      (String.concat ","
         (Array.to_list
            (Array.map (fun (d, _) -> string_of_int d) single_answers)))
  in
  let single_ns = single_ms *. 1e6 /. float_of_int (iters * z.pairs) in
  (* a short backoff keeps the recovery measurement about respawn+ping
     cost, not about waiting out the production default *)
  let supervisor =
    {
      Supervisor.default_config with
      Supervisor.base_backoff_ns = 10_000_000L;
      jitter_frac = 0.0;
    }
  in
  let router_cfg shards =
    {
      (Router.default_config sparse) with
      Router.labels = Some labels;
      shards;
      partition = Repro_hub.Partition.Hash;
      supervisor;
      spot_check_every = 0;
      seed = !seed;
    }
  in
  let one_run shards =
    let router = Router.create (router_cfg shards) in
    let fan_ms, answers =
      time_ms (fun () ->
          let out = ref [||] in
          for _ = 1 to iters do
            out := Router.query_batch router pairs
          done;
          !out)
    in
    Router.shutdown router;
    let ns = fan_ms *. 1e6 /. float_of_int (iters * z.pairs) in
    (shards, ns, digest answers)
  in
  let runs = List.map one_run [ 1; 2; 4 ] in
  (* recovery: kill one of two workers mid-stream, then time the heal
     (backoff + respawn + ping) back to Healthy *)
  let recovery_router =
    Router.create
      {
        (router_cfg 2) with
        Router.chaos =
          [ (0, Repro_serve.Fault_injector.chaos ~after_frames:4
                  Repro_serve.Fault_injector.Kill) ];
      }
  in
  let crash_answers = Router.query_batch recovery_router pairs in
  let recovery_ms, () = time_ms (fun () -> Router.heal recovery_router) in
  let sup = Router.supervisor recovery_router in
  let recovered_state = Supervisor.state_name (Supervisor.state sup 0) in
  let recovery_restarts = Supervisor.restarts_used sup 0 in
  let healed_answers = Router.query_batch recovery_router pairs in
  Router.shutdown recovery_router;
  let shas = single_sha :: List.map (fun (_, _, s) -> s) runs in
  let consistent =
    List.for_all (( = ) single_sha) shas
    && digest crash_answers = single_sha
    && digest healed_answers = single_sha
  in
  let run_json (shards, ns, sha) =
    Printf.sprintf
      {|    { "shards": %d, "ns_per_query": %.1f, "vs_single_process": %.3f, "answers_sha256": "%s" }|}
      shards ns (single_ns /. ns) sha
  in
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc
    {|{
  "bench": "shard",
  "mode": "%s",
  "seed": %d,
  "store": "flat",
  "graph": { "n": %d, "m": %d },
  "queries": %d,
  "iters": %d,
  "single_process": { "ns_per_query": %.1f, "answers_sha256": "%s" },
  "runs": [
%s
  ],
  "recovery": {
    "kill_after_frames": 4,
    "base_backoff_ms": 10,
    "recovery_ms": %.2f,
    "restarts_used": %d,
    "state_after_heal": "%s"
  },
  "answers_identical_everywhere": %b
}
|}
    mode !seed z.sparse_n z.sparse_m z.pairs iters single_ns single_sha
    (String.concat ",\n" (List.map run_json runs))
    recovery_ms recovery_restarts recovered_state consistent;
  close_out oc;
  List.iter
    (fun (shards, ns, _) ->
      Printf.printf "shard (%s, shards=%d): %.1f ns/q (single-process %.1f)\n%!"
        mode shards ns single_ns)
    runs;
  Printf.printf
    "shard: recovery to %s in %.2f ms after kill; answers identical across \
     every configuration: %b -> BENCH_shard.json\n%!"
    recovered_state recovery_ms consistent

(* ------------------------------------------------------------------ *)
(* Part 8: the zero-copy mmap store -> BENCH_mmap.json.

   Cold start (parse the packed file onto the heap vs. map it), steady
   state (ns/query across assoc, heap flat and mmap on the identical
   stream), heap growth of each cold start, and the sha256 digest of
   every answer array — which must be identical across the three
   stores: the mmap view must never trade correctness for its O(1)
   open. No forks, no domain pools, so placement after Part 7 is safe. *)

let run_mmap ~mode (z : sizes) =
  let module Checksum = Repro_par.Checksum in
  let iters = if mode = "smoke" then 2 else 200 in
  let open_iters = if mode = "smoke" then 3 else 40 in
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build g in
  let packed = Hub_io.flat_to_bytes (Flat_hub.of_labels labels) in
  let path = Filename.temp_file "hubhard_bench_mmap" ".bin" in
  let oc = open_out_bin path in
  output_string oc packed;
  close_out oc;
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let heap_parse () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Hub_io.flat_of_bytes_res s with
    | Ok f -> f
    | Error e -> failwith e.Hub_io.msg
  in
  let mmap_open () =
    match Mmap_hub.load_res path with
    | Ok s -> s
    | Error e -> failwith (Mmap_hub.error_to_string e)
  in
  (* best-of-N cold starts; the first (warm-up) call puts the file in
     the page cache for both contenders, so this compares parsing
     against mapping, not disk against disk *)
  let time_best_ms f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to open_iters do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let t1 = Unix.gettimeofday () in
      best := Float.min !best ((t1 -. t0) *. 1e3)
    done;
    !best
  in
  let parse_ms = time_best_ms heap_parse in
  let open_ms = time_best_ms mmap_open in
  (* live-heap growth of one cold start each (words, exact after a
     compaction); the mapped words live outside the OCaml heap entirely *)
  let live () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let w0 = live () in
  let flat_heap = heap_parse () in
  let w1 = live () in
  let store = mmap_open () in
  let w2 = live () in
  let t = time_ns_per_query ~iters ~queries:z.pairs in
  let sweep q () = Array.iter (fun (u, v) -> ignore (q u v : int)) pairs in
  let assoc_ns = t (sweep (Hub_label.query labels)) in
  let flat_ns = t (sweep (Flat_hub.query flat_heap)) in
  let mmap_ns = t (sweep (Mmap_hub.query store)) in
  let digest q =
    Checksum.sha256_hex
      (String.concat ","
         (Array.to_list (Array.map (fun (u, v) -> string_of_int (q u v)) pairs)))
  in
  let assoc_sha = digest (Hub_label.query labels) in
  let flat_sha = digest (Flat_hub.query flat_heap) in
  let mmap_sha = digest (Mmap_hub.query store) in
  let identical = assoc_sha = flat_sha && flat_sha = mmap_sha in
  Sys.remove path;
  (* POSIX: the mapping outlives the name *)
  let oc = open_out "BENCH_mmap.json" in
  Printf.fprintf oc
    {|{
  "bench": "mmap",
  "mode": "%s",
  "seed": %d,
  "jobs": %d,
  "store": "mmap",
  "graph": { "n": %d, "m": %d },
  "packed_bytes": %d,
  "queries": %d,
  "iters": %d,
  "cold_start_best_of": %d,
  "cold_start": {
    "heap_parse_ms": %.3f,
    "mmap_open_ms": %.3f,
    "open_speedup": %.1f
  },
  "live_heap_words_cold_start": { "heap_parse": %d, "mmap_open": %d },
  "ns_per_query": { "assoc": %.1f, "flat_heap": %.1f, "mmap": %.1f },
  "answers_sha256": {
    "assoc": "%s",
    "flat_heap": "%s",
    "mmap": "%s"
  },
  "answers_identical": %b
}
|}
    mode !seed
    (Repro_par.Pool.default_jobs ())
    z.sparse_n z.sparse_m (String.length packed) z.pairs iters open_iters
    parse_ms open_ms
    (parse_ms /. open_ms)
    (w1 - w0) (w2 - w1) assoc_ns flat_ns mmap_ns assoc_sha flat_sha mmap_sha
    identical;
  close_out oc;
  Printf.printf
    "mmap (%s, %d bytes packed): open %.3f ms vs heap parse %.3f ms \
     (%.1fx); %.1f ns/q (flat heap %.1f, assoc %.1f); answers identical \
     across stores: %b -> BENCH_mmap.json\n%!"
    mode (String.length packed) open_ms parse_ms
    (parse_ms /. open_ms)
    mmap_ns flat_ns assoc_ns identical

(* Part 9: the ops query surface -> BENCH_ops.json.

   One request per operation of the Ops algebra, timed across the
   three in-process backends (the lifted assoc labeling, the flat
   store's inverted-index fast paths and the zero-copy mmap view of
   the same bytes), plus the sha256 digest of every canonical response
   string — which must be identical across all three: the fast paths
   must never trade correctness for their asymptotics. Uses the
   default domain pool for the fanned ops, so it runs after Part 7's
   forks. *)

let run_ops ~mode (z : sizes) =
  let module Checksum = Repro_par.Checksum in
  let module Ops = Repro_obs.Ops in
  let module Backend = Repro_obs.Backend in
  let iters = if mode = "smoke" then 1 else 40 in
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let n = Graph.n g in
  let labels = Pll.build g in
  let flat = Flat_hub.of_labels labels in
  let path = Filename.temp_file "hubhard_bench_ops" ".bin" in
  let oc = open_out_bin path in
  output_string oc (Hub_io.flat_to_bytes flat);
  close_out oc;
  let store =
    match Mmap_hub.load_res path with
    | Ok s -> s
    | Error e -> failwith (Mmap_hub.error_to_string e)
  in
  Sys.remove path;
  let r = rng () in
  let v () = Random.State.int r n in
  let vs k = Array.init k (fun _ -> v ()) in
  (* (request, heavy): heavy ops touch all n rows, so they get a
     reduced iteration count *)
  let reqs =
    [
      (Ops.Dist { u = v (); v = v () }, false);
      (Ops.Batch (Array.init 64 (fun _ -> (v (), v ()))), false);
      (Ops.One_to_many { source = v (); targets = vs 64 }, false);
      (Ops.Many_to_many { sources = vs 8; targets = vs 16 }, false);
      (Ops.Top_k_nearest { source = v (); k = 32 }, false);
      (Ops.Eccentricity (v ()), false);
      (Ops.Farthest (v ()), false);
      (Ops.Diameter_radius, true);
    ]
  in
  let backends =
    [
      ("assoc", Backend.lift ~n (Hub_label.backend labels));
      ("flat", Flat_hub.ops flat);
      ("mmap", Mmap_hub.ops store);
    ]
  in
  let time_ns b req ~heavy =
    let iters = if heavy then max 1 (iters / 20) else iters in
    ignore (Backend.op b req);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Backend.op b req)
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e9 /. float_of_int iters
  in
  let rows =
    List.map
      (fun (req, heavy) ->
        let ns =
          List.map (fun (bn, b) -> (bn, time_ns b req ~heavy)) backends
        in
        (req, ns))
      reqs
  in
  (* the digest every store must agree on: canonical response strings
     of the whole battery, in order *)
  let digest (_, b) =
    Checksum.sha256_hex
      (String.concat "\n"
         (List.map
            (fun (req, _) -> Ops.response_to_string (Backend.op b req))
            reqs))
  in
  let shas = List.map (fun b -> (fst b, digest b)) backends in
  let identical =
    match shas with
    | (_, h0) :: rest -> List.for_all (fun (_, h) -> h = h0) rest
    | [] -> true
  in
  let oc = open_out "BENCH_ops.json" in
  Printf.fprintf oc
    {|{
  "bench": "ops",
  "mode": "%s",
  "seed": %d,
  "jobs": %d,
  "graph": { "n": %d, "m": %d },
  "iters": %d,
  "ops": [
%s
  ],
  "answers_sha256": { %s },
  "answers_identical": %b
}
|}
    mode !seed
    (Repro_par.Pool.default_jobs ())
    z.sparse_n z.sparse_m iters
    (String.concat ",\n"
       (List.map
          (fun (req, ns) ->
            Printf.sprintf
              {|    { "op": "%s", "request": "%s", "ns_per_op": { %s } }|}
              (Ops.name req)
              (Ops.request_to_string req)
              (String.concat ", "
                 (List.map
                    (fun (bn, t) -> Printf.sprintf {|"%s": %.1f|} bn t)
                    ns)))
          rows))
    (String.concat ", "
       (List.map (fun (bn, h) -> Printf.sprintf {|"%s": "%s"|} bn h) shas))
    identical;
  close_out oc;
  let flat_ns name =
    match List.assoc_opt name (List.map (fun (r, ns) -> (Ops.name r, ns)) rows)
    with
    | Some ns -> ( match List.assoc_opt "flat" ns with Some t -> t | None -> 0.)
    | None -> 0.
  in
  Printf.printf
    "ops (%s, n=%d): flat ecc %.0f ns, top-k %.0f ns, diam %.0f ns; answers \
     identical across assoc/flat/mmap: %b -> BENCH_ops.json\n%!"
    mode z.sparse_n (flat_ns "eccentricity") (flat_ns "top_k_nearest")
    (flat_ns "diameter_radius") identical

(* ------------------------------------------------------------------ *)
(* Part 10: distributed-tracing overhead -> BENCH_trace.json.

   ns/query through a 2-shard forked router with tracing off, with
   tracing at sample_every=1 (every query minted, sampled and recorded
   end to end, a context block on every wire frame) and at
   sample_every=16 (context still on every frame, 1-in-16 recorded).
   Answers must stay identical in all three — the context block is
   invisible to the query path. The router forks, so this part MUST run
   before anything creates a domain pool, alongside Part 7. *)

let run_trace ~mode (z : sizes) =
  let module Router = Repro_shard.Router in
  let module Checksum = Repro_par.Checksum in
  let iters = if mode = "smoke" then 2 else 30 in
  let sparse = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build sparse in
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    ((t1 -. t0) *. 1e3, r)
  in
  let digest answers =
    Checksum.sha256_hex
      (String.concat ","
         (Array.to_list
            (Array.map (fun (a : Router.answer) -> string_of_int a.Router.dist)
               answers)))
  in
  let one_run name trace =
    let router =
      Router.create
        {
          (Router.default_config sparse) with
          Router.labels = Some labels;
          shards = 2;
          partition = Repro_hub.Partition.Hash;
          spot_check_every = 0;
          seed = !seed;
          trace;
        }
    in
    let ms, answers =
      time_ms (fun () ->
          let out = ref [||] in
          for _ = 1 to iters do
            out := Router.query_batch router pairs
          done;
          !out)
    in
    let traces = List.length (Router.trace_trees router) in
    Router.shutdown router;
    let ns = ms *. 1e6 /. float_of_int (iters * z.pairs) in
    (name, ns, traces, digest answers)
  in
  let off = one_run "off" None in
  let every1 =
    one_run "every-query"
      (Some { Router.default_trace_config with Router.sample_every = 1 })
  in
  let every16 =
    one_run "1-in-16"
      (Some { Router.default_trace_config with Router.sample_every = 16 })
  in
  let ns_of (_, ns, _, _) = ns and sha_of (_, _, _, s) = s in
  let identical =
    sha_of off = sha_of every1 && sha_of off = sha_of every16
  in
  let run_json (name, ns, traces, sha) =
    Printf.sprintf
      {|    { "sampling": "%s", "ns_per_query": %.1f, "overhead_ns_per_query": %.1f, "traces_recorded": %d, "answers_sha256": "%s" }|}
      name ns (ns -. ns_of off) traces sha
  in
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    {|{
  "bench": "trace",
  "mode": "%s",
  "seed": %d,
  "store": "flat",
  "graph": { "n": %d, "m": %d },
  "queries": %d,
  "iters": %d,
  "shards": 2,
  "runs": [
%s
  ],
  "answers_identical_everywhere": %b
}
|}
    mode !seed z.sparse_n z.sparse_m z.pairs iters
    (String.concat ",\n" (List.map run_json [ off; every1; every16 ]))
    identical;
  close_out oc;
  List.iter
    (fun (name, ns, traces, _) ->
      Printf.printf
        "trace (%s, sampling=%s): %.1f ns/q (+%.1f vs off), %d trace(s)\n%!"
        mode name ns (ns -. ns_of off) traces)
    [ off; every1; every16 ];
  Printf.printf
    "trace: answers identical with tracing off/sampled/full: %b -> \
     BENCH_trace.json\n%!"
    identical

(* ------------------------------------------------------------------ *)
(* Part 11: the compressed HUBFLAT2 store -> BENCH_compress.json.

   Size: the same labeling packed as HUBFLAT1 vs HUBFLAT2 (file bytes,
   bytes/entry, measured bits/entry from Hub_stats.packed_sizes and the
   compression ratio). Cold start: best-of-N opens across heap parse,
   HUBFLAT1 mmap and HUBFLAT2 mmap. Steady state: ns/query for point
   queries, pooled batches (query_many) and one eccentricity op across
   flat/mmap/compact. Every answer array must hash identically across
   assoc/flat/mmap/compact — compression must never change a distance.
   Uses the default domain pool for batches, so it runs after the
   forking parts. *)

let run_compress ~mode (z : sizes) =
  let module Checksum = Repro_par.Checksum in
  let module Ops = Repro_obs.Ops in
  let module Backend = Repro_obs.Backend in
  let iters = if mode = "smoke" then 2 else 200 in
  let open_iters = if mode = "smoke" then 3 else 40 in
  let ecc_iters = if mode = "smoke" then 1 else 20 in
  let g = Generators.random_connected (rng ()) ~n:z.sparse_n ~m:z.sparse_m in
  let labels = Pll.build g in
  let flat = Flat_hub.of_labels labels in
  let ps = Repro_hub.Hub_stats.packed_sizes flat in
  let write_tmp suffix bytes =
    let path = Filename.temp_file "hubhard_bench_compress" suffix in
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    path
  in
  let flat_path = write_tmp ".bin" (Hub_io.flat_to_bytes flat) in
  let compact_path = write_tmp ".cbin" (Hub_io.compact_to_bytes flat) in
  let mmap_open () =
    match Mmap_hub.load_res flat_path with
    | Ok s -> s
    | Error e -> failwith (Mmap_hub.error_to_string e)
  in
  let compact_open () =
    match Compact_hub.load_res compact_path with
    | Ok s -> s
    | Error e -> failwith (Compact_hub.error_to_string e)
  in
  let heap_parse () =
    let ic = open_in_bin flat_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Hub_io.flat_of_bytes_res s with
    | Ok f -> f
    | Error e -> failwith e.Hub_io.msg
  in
  let time_best_ms f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to open_iters do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let t1 = Unix.gettimeofday () in
      best := Float.min !best ((t1 -. t0) *. 1e3)
    done;
    !best
  in
  let parse_ms = time_best_ms heap_parse in
  let mmap_ms = time_best_ms mmap_open in
  let compact_ms = time_best_ms compact_open in
  let mm = mmap_open () in
  let compact = compact_open () in
  Sys.remove flat_path;
  Sys.remove compact_path;
  let pairs =
    let r = rng () in
    Array.init z.pairs (fun _ ->
        (Random.State.int r z.sparse_n, Random.State.int r z.sparse_n))
  in
  let sweep q () = Array.iter (fun (u, v) -> ignore (q u v : int)) pairs in
  let t = time_ns_per_query ~iters ~queries:z.pairs in
  let point =
    [
      ("flat", t (sweep (Flat_hub.query flat)));
      ("mmap", t (sweep (Mmap_hub.query mm)));
      ("compact", t (sweep (Compact_hub.query compact)));
    ]
  in
  let batch =
    [
      ("flat", t (fun () -> ignore (Flat_hub.query_many flat pairs)));
      ("mmap", t (fun () -> ignore (Mmap_hub.query_many mm pairs)));
      ("compact", t (fun () -> ignore (Compact_hub.query_many compact pairs)));
    ]
  in
  let ecc = Ops.Eccentricity 0 in
  let time_op b =
    ignore (Backend.op b ecc);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to ecc_iters do
      ignore (Backend.op b ecc)
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e9 /. float_of_int ecc_iters
  in
  let ops =
    [
      ("flat", time_op (Flat_hub.ops flat));
      ("mmap", time_op (Mmap_hub.ops mm));
      ("compact", time_op (Compact_hub.ops compact));
    ]
  in
  let digest q =
    Checksum.sha256_hex
      (String.concat ","
         (Array.to_list (Array.map (fun (u, v) -> string_of_int (q u v)) pairs)))
  in
  let shas =
    [
      ("assoc", digest (Hub_label.query labels));
      ("flat", digest (Flat_hub.query flat));
      ("mmap", digest (Mmap_hub.query mm));
      ("compact", digest (Compact_hub.query compact));
    ]
  in
  let identical =
    match shas with
    | (_, h0) :: rest -> List.for_all (fun (_, h) -> h = h0) rest
    | [] -> true
  in
  let ratio =
    if ps.Repro_hub.Hub_stats.flat2_bytes = 0 then 0.
    else
      float_of_int ps.Repro_hub.Hub_stats.flat1_bytes
      /. float_of_int ps.Repro_hub.Hub_stats.flat2_bytes
  in
  let per_entry bytes =
    if ps.Repro_hub.Hub_stats.entries = 0 then 0.
    else float_of_int bytes /. float_of_int ps.Repro_hub.Hub_stats.entries
  in
  let json_map l =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf {|"%s": %.1f|} k v) l)
  in
  let oc = open_out "BENCH_compress.json" in
  Printf.fprintf oc
    {|{
  "bench": "compress",
  "mode": "%s",
  "seed": %d,
  "jobs": %d,
  "store": "compact",
  "graph": { "n": %d, "m": %d },
  "label_entries": %d,
  "avg_label_size": %.2f,
  "max_label_size": %d,
  "packed_bytes": { "flat1": %d, "flat2": %d },
  "bytes_per_entry": { "flat1": %.2f, "flat2": %.2f },
  "bits_per_entry": { "flat1": %.2f, "flat2": %.2f },
  "compression_ratio": %.2f,
  "queries": %d,
  "iters": %d,
  "cold_start_best_of": %d,
  "cold_start_ms": { "heap_parse": %.3f, "mmap_open": %.3f, "compact_open": %.3f },
  "ns_per_query_point": { %s },
  "ns_per_query_batch": { %s },
  "ns_per_op_eccentricity": { %s },
  "answers_sha256": { %s },
  "answers_identical": %b
}
|}
    mode !seed
    (Repro_par.Pool.default_jobs ())
    z.sparse_n z.sparse_m ps.Repro_hub.Hub_stats.entries
    ps.Repro_hub.Hub_stats.avg_size ps.Repro_hub.Hub_stats.max_size
    ps.Repro_hub.Hub_stats.flat1_bytes ps.Repro_hub.Hub_stats.flat2_bytes
    (per_entry ps.Repro_hub.Hub_stats.flat1_bytes)
    (per_entry ps.Repro_hub.Hub_stats.flat2_bytes)
    ps.Repro_hub.Hub_stats.flat1_bits_per_entry
    ps.Repro_hub.Hub_stats.flat2_bits_per_entry ratio z.pairs iters open_iters
    parse_ms mmap_ms compact_ms (json_map point) (json_map batch)
    (json_map ops)
    (String.concat ", "
       (List.map (fun (bn, h) -> Printf.sprintf {|"%s": "%s"|} bn h) shas))
    identical;
  close_out oc;
  let ns_of l name =
    match List.assoc_opt name l with Some t -> t | None -> 0.
  in
  Printf.printf
    "compress (%s, %d entries): %d -> %d bytes (%.2fx, %.2f vs %.2f \
     bits/entry); point %.1f ns/q (flat %.1f); answers identical across \
     assoc/flat/mmap/compact: %b -> BENCH_compress.json\n%!"
    mode ps.Repro_hub.Hub_stats.entries ps.Repro_hub.Hub_stats.flat1_bytes
    ps.Repro_hub.Hub_stats.flat2_bytes ratio
    ps.Repro_hub.Hub_stats.flat1_bits_per_entry
    ps.Repro_hub.Hub_stats.flat2_bits_per_entry (ns_of point "compact")
    (ns_of point "flat") identical

(* ------------------------------------------------------------------ *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (results, raw_results)

let () = Bechamel_notty.Unit.add Instance.monotonic_clock "ns"

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

open Notty_unix

let run_smoke () =
  (* Parts 7 and 10 first: the router forks, so they must precede any
     domain pool. *)
  run_shard ~mode:"smoke" smoke_sizes;
  run_trace ~mode:"smoke" smoke_sizes;
  List.iter
    (fun (name, body) ->
      body ();
      Printf.printf "smoke ok: %s\n%!" name)
    (make_entries smoke_sizes);
  flat_vs_assoc ~mode:"smoke" smoke_sizes ~iters:2;
  serve_metrics ~mode:"smoke" smoke_sizes ~rounds:2;
  build_profile ~mode:"smoke" smoke_sizes;
  run_parallel ~mode:"smoke" smoke_sizes;
  run_mmap ~mode:"smoke" smoke_sizes;
  run_ops ~mode:"smoke" smoke_sizes;
  run_compress ~mode:"smoke" smoke_sizes;
  print_endline "bench smoke: all entries ran"

let run_full () =
  (* Parts 7 and 10 first: the router forks, so they must precede any
     domain pool (Parts 1 and 6 both spawn them). *)
  run_shard ~mode:"full" full_sizes;
  print_newline ();
  run_trace ~mode:"full" full_sizes;
  print_newline ();
  (* Part 1: paper-artifact experiment reports. *)
  Repro_experiments.Experiments.run_all ();
  (* Part 2: micro-benchmarks. *)
  print_newline ();
  print_endline "=== Bechamel micro-benchmarks (monotonic clock) ===";
  let tests =
    Test.make_grouped ~name:"hubhard" ~fmt:"%s %s"
      (List.map
         (fun (name, body) -> Test.make ~name (Staged.stage body))
         (make_entries full_sizes))
  in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results, _ = benchmark tests in
  img (window, results) |> eol |> output_image;
  (* Part 3: the flat-vs-assoc query comparison. *)
  print_newline ();
  flat_vs_assoc ~mode:"full" full_sizes ~iters:200;
  (* Part 4: per-backend latency percentiles from the metrics registry. *)
  print_newline ();
  serve_metrics ~mode:"full" full_sizes ~rounds:50;
  (* Part 5: per-phase construction profiles. *)
  print_newline ();
  build_profile ~mode:"full" full_sizes;
  (* Part 6: multicore scaling + determinism. *)
  print_newline ();
  run_parallel ~mode:"full" full_sizes;
  (* Part 8: the zero-copy mmap store. *)
  print_newline ();
  run_mmap ~mode:"full" full_sizes;
  (* Part 9: the ops query surface. *)
  print_newline ();
  run_ops ~mode:"full" full_sizes;
  (* Part 11: the compressed HUBFLAT2 store. *)
  print_newline ();
  run_compress ~mode:"full" full_sizes

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then run_smoke ()
  else if Array.exists (( = ) "--flat-json") Sys.argv then
    (* just the flat-vs-assoc comparison at full size *)
    flat_vs_assoc ~mode:"full" full_sizes ~iters:200
  else if Array.exists (( = ) "--serve-metrics") Sys.argv then
    serve_metrics ~mode:"full" full_sizes ~rounds:50
  else if Array.exists (( = ) "--build-profile") Sys.argv then
    build_profile ~mode:"full" full_sizes
  else if Array.exists (( = ) "--parallel") Sys.argv then
    run_parallel ~mode:"full" full_sizes
  else if Array.exists (( = ) "--shard") Sys.argv then
    run_shard ~mode:"full" full_sizes
  else if Array.exists (( = ) "--mmap-json") Sys.argv then
    run_mmap ~mode:"full" full_sizes
  else if Array.exists (( = ) "--ops-json") Sys.argv then
    run_ops ~mode:"full" full_sizes
  else if Array.exists (( = ) "--trace-json") Sys.argv then
    run_trace ~mode:"full" full_sizes
  else if Array.exists (( = ) "--compress-json") Sys.argv then
    run_compress ~mode:"full" full_sizes
  else run_full ()
