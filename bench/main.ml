(* Benchmark harness.

   Part 1 regenerates every paper artifact (the experiment reports
   E-FIG1 .. E-BASE of DESIGN.md — this theory paper has no numbered
   tables, so experiments are indexed by theorem/figure).

   Part 2 runs Bechamel micro-benchmarks over the core operations, one
   Test.make per operation, grouped in a single executable as required
   by the project layout. *)

open Bechamel
open Toolkit
open Repro_graph
open Repro_hub
open Repro_core

let rng () = Random.State.make [| 20190721 |]

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures (built once, outside the timed region).    *)

let grid16 = Generators.grid ~rows:16 ~cols:16
let sparse2000 = Generators.random_connected (rng ()) ~n:2000 ~m:4000
let wsparse2000 = Wgraph.of_unweighted sparse2000
let path128 = Generators.path 128
let labels_grid16 = Pll.build grid16
let labels_sparse = Pll.build sparse2000

let query_pairs =
  let r = rng () in
  Array.init 1024 (fun _ ->
      (Random.State.int r 2000, Random.State.int r 2000))

let bipartite_instance =
  let r = rng () in
  Repro_matching.Bipartite.create ~left:200 ~right:200
    (Generators.random_bipartite r ~left:200 ~right:200 ~m:600)

let tree4095 = Generators.balanced_binary_tree ~depth:11

(* Serving-layer fixtures: the direct hub path ("pll-query" above) vs.
   the resilient wrapper in its three regimes — trusting primary,
   spot-checked primary, and the pure fallback chain (no labels, so
   every query runs the budgeted bidirectional search). *)
let serve_primary =
  Repro_serve.Resilient_oracle.create ~spot_check_every:0 ~labels:labels_sparse
    sparse2000

let serve_checked =
  Repro_serve.Resilient_oracle.create ~spot_check_every:8 ~labels:labels_sparse
    sparse2000

let serve_fallback = Repro_serve.Resilient_oracle.create sparse2000

let tests =
  Test.make_grouped ~name:"hubhard" ~fmt:"%s %s"
    [
      Test.make ~name:"bfs sparse-2000"
        (Staged.stage (fun () -> ignore (Traversal.bfs sparse2000 0)));
      Test.make ~name:"dijkstra sparse-2000"
        (Staged.stage (fun () -> ignore (Dijkstra.distances wsparse2000 0)));
      Test.make ~name:"pll-build grid-16x16"
        (Staged.stage (fun () -> ignore (Pll.build grid16)));
      Test.make ~name:"pll-query x1024 sparse-2000"
        (Staged.stage (fun () ->
             Array.iter
               (fun (u, v) -> ignore (Hub_label.query labels_sparse u v))
               query_pairs));
      Test.make ~name:"encode labels grid-16x16"
        (Staged.stage (fun () ->
             ignore (Repro_labeling.Encoder.encode labels_grid16)));
      Test.make ~name:"hopcroft-karp 200x200x600"
        (Staged.stage (fun () ->
             ignore (Repro_matching.Hopcroft_karp.solve bipartite_instance)));
      Test.make ~name:"behrend n=10000"
        (Staged.stage (fun () -> ignore (Repro_rs.Behrend.construct 10_000)));
      Test.make ~name:"rs-graph c=4 d=4"
        (Staged.stage (fun () -> ignore (Repro_rs.Rs_graph.build ~c:4 ~d:4)));
      Test.make ~name:"grid-graph b=2 l=2"
        (Staged.stage (fun () -> ignore (Grid_graph.create ~b:2 ~l:2 ())));
      Test.make ~name:"gadget b=2 l=1"
        (Staged.stage (fun () ->
             ignore (Degree_gadget.build (Grid_graph.create ~b:2 ~l:1 ()))));
      Test.make ~name:"rs-hub d=4 path-128"
        (Staged.stage (fun () ->
             ignore (Rs_hub.build ~rng:(rng ()) ~d:4 path128)));
      Test.make ~name:"tree-label n=4095"
        (Staged.stage (fun () ->
             ignore (Repro_labeling.Tree_label.build tree4095)));
      Test.make ~name:"random-hitting d=6 grid-16x16"
        (Staged.stage (fun () ->
             ignore (Random_hitting.build ~rng:(rng ()) ~d:6 grid16)));
      Test.make ~name:"serve-query primary x1024 sparse-2000"
        (Staged.stage (fun () ->
             Array.iter
               (fun (u, v) ->
                 ignore (Repro_serve.Resilient_oracle.query serve_primary u v))
               query_pairs));
      Test.make ~name:"serve-query checked-1/8 x1024 sparse-2000"
        (Staged.stage (fun () ->
             Array.iter
               (fun (u, v) ->
                 ignore (Repro_serve.Resilient_oracle.query serve_checked u v))
               query_pairs));
      Test.make ~name:"serve-query fallback x1024 sparse-2000"
        (Staged.stage (fun () ->
             Array.iter
               (fun (u, v) ->
                 ignore (Repro_serve.Resilient_oracle.query serve_fallback u v))
               query_pairs));
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (results, raw_results)

let () = Bechamel_notty.Unit.add Instance.monotonic_clock "ns"

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

open Notty_unix

let () =
  (* Part 1: paper-artifact experiment reports. *)
  Repro_experiments.Experiments.run_all ();
  (* Part 2: micro-benchmarks. *)
  print_newline ();
  print_endline "=== Bechamel micro-benchmarks (monotonic clock) ===";
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results, _ = benchmark () in
  img (window, results) |> eol |> output_image
