(* Command-line driver for the reproduction: run experiments, check the
   paper's lemmas on chosen parameters, build labelings over generated
   graphs, and exercise the Sum-Index protocol. *)

open Cmdliner
open Repro_graph
open Repro_hub
open Repro_core

(* ---------------------------------------------------------------- *)
(* shared arguments                                                   *)

let seed_arg =
  let doc = "Random seed (all commands are deterministic given the seed)." in
  Arg.(value & opt int 20190721 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel phases (construction distance rows, \
     König covers, batched queries). Defaults to $(b,HUBHARD_JOBS) or the \
     machine's recommended domain count. Outputs are identical for any \
     value."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"J" ~doc)

let apply_jobs = function
  | None -> ()
  | Some j ->
      if j < 1 then begin
        Printf.eprintf "hubhard: --jobs must be positive\n";
        exit 124
      end;
      Repro_par.Pool.set_default_jobs j

let b_arg =
  let doc = "Side-length parameter b (s = 2^b)." in
  Arg.(value & opt int 2 & info [ "b" ] ~docv:"B" ~doc)

let l_arg =
  let doc = "Level parameter l." in
  Arg.(value & opt int 1 & info [ "l" ] ~docv:"L" ~doc)

let rng_of seed = Random.State.make [| seed |]

(* ---------------------------------------------------------------- *)
(* exp                                                                *)

let exp_cmd =
  let id =
    let doc =
      "Experiment id (E-FIG1, E-THM21, E-THM11, E-THM41, E-THM16, E-RS, \
       E-BASE, E-ORACLE, E-ABL, E-HWY) or 'all'."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id =
    if String.lowercase_ascii id = "all" then begin
      Repro_experiments.Experiments.run_all ();
      `Ok ()
    end
    else
      match Repro_experiments.Experiments.find id with
      | Some f ->
          f ();
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; known ids: %s" id
                (String.concat ", "
                   (List.map
                      (fun (i, _, _) -> i)
                      Repro_experiments.Experiments.all)) )
  in
  let doc = "Run a reproduction experiment (or all of them)." in
  Cmd.v (Cmd.info "exp" ~doc) Term.(ret (const run $ id))

(* ---------------------------------------------------------------- *)
(* lemma                                                              *)

let lemma_cmd =
  let gadget =
    let doc = "Also check the unweighted degree-3 gadget G_{b,l} (slower)." in
    Arg.(value & flag & info [ "gadget" ] ~doc)
  in
  let run b l with_gadget =
    let grid = Grid_graph.create ~b ~l () in
    let report name (c : Lower_bound.lemma_check) =
      Printf.printf
        "%s: %d valid pairs; failures: uniqueness=%d midpoint=%d distance=%d\n"
        name c.Lower_bound.pairs_checked c.Lower_bound.unique_failures
        c.Lower_bound.midpoint_failures c.Lower_bound.distance_failures
    in
    Printf.printf "H_{%d,%d}: %d vertices, %d edges, A=%d\n" b l
      (Grid_graph.n grid)
      (Wgraph.m grid.Grid_graph.graph)
      grid.Grid_graph.a_weight;
    report "Lemma 2.2 on H" (Lower_bound.check_lemma22_grid grid);
    if with_gadget then begin
      let gadget = Degree_gadget.build grid in
      Printf.printf "G_{%d,%d}: %d vertices, max degree %d (bound %d)\n" b l
        (Degree_gadget.n gadget)
        (Graph.max_degree gadget.Degree_gadget.graph)
        (Degree_gadget.theorem21_node_bound gadget);
      report "Lemma 2.2 on G" (Lower_bound.check_lemma22_gadget gadget);
      Printf.printf "counting bound s^l(s/2)^l = %d; certified avg-hub LB = %g\n"
        (Lower_bound.counting_bound grid)
        (Lower_bound.avg_hub_size_lower_bound_measured gadget)
    end
  in
  let doc = "Exhaustively verify Lemma 2.2 on H_{b,l} (and optionally G_{b,l})." in
  Cmd.v (Cmd.info "lemma" ~doc) Term.(const run $ b_arg $ l_arg $ gadget)

(* ---------------------------------------------------------------- *)
(* label                                                              *)

let graph_of_kind rng kind n =
  match kind with
  | "path" -> Generators.path n
  | "cycle" -> Generators.cycle n
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Generators.grid ~rows:side ~cols:side
  | "tree" -> Generators.random_tree rng n
  | "sparse" -> Generators.random_connected rng ~n ~m:(2 * n)
  | "deg3" -> Generators.random_bounded_degree rng ~n ~d:3
  | "road" ->
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      Generators.grid_with_shortcuts rng ~rows:side ~cols:side
        ~shortcuts:(side * 2)
  | other -> invalid_arg (Printf.sprintf "unknown graph kind %S" other)

let label_cmd =
  let kind =
    let doc = "Graph kind: path, cycle, grid, tree, sparse, deg3, road." in
    Arg.(value & opt string "sparse" & info [ "graph" ] ~docv:"KIND" ~doc)
  in
  let n =
    let doc = "Number of vertices (approximate for grid/road)." in
    Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc)
  in
  let scheme =
    let doc =
      "Labeling scheme: pll, greedy, randhit, rshub, rshub-sparse, tree, sep, \
       approx (additive error <= 2)."
    in
    Arg.(value & opt string "pll" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let d =
    let doc = "Threshold parameter D for randhit / rshub." in
    Arg.(value & opt int 6 & info [ "d" ] ~docv:"D" ~doc)
  in
  let verify =
    let doc = "Exhaustively verify the labeling is an exact cover." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let out =
    let doc =
      "Write the labeling in Hub_io format to $(docv) ('-' for stdout), and \
       the graph next to it as $(docv).graph (for 'hubhard serve')."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let pack =
    let doc =
      "Write the labeling in the binary packed Flat_hub form to $(docv), and \
       the graph next to it as $(docv).graph (see docs/PERFORMANCE.md)."
    in
    Arg.(value & opt (some string) None & info [ "pack" ] ~docv:"FILE" ~doc)
  in
  let compress =
    let doc =
      "With --pack: write the compressed HUBFLAT2 form (delta/varint hubs, \
       zigzag-varint distances, per-block skip pointers) instead of the \
       word-per-field HUBFLAT1 form. Every consumer (--labels-file, \
       --compact, serve worker/router) auto-detects either."
    in
    Arg.(value & flag & info [ "compress" ] ~doc)
  in
  let stats =
    let doc =
      "Report measured on-disk label sizes: entry counts, avg/max hubset \
       size, and bits per entry under both binary formats (HUBFLAT1 vs \
       HUBFLAT2)."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run kind n scheme d verify out pack compress stats profile seed jobs =
    apply_jobs jobs;
    if compress && pack = None then begin
      Printf.eprintf "hubhard: --compress requires --pack\n";
      exit 124
    end;
    let rng = rng_of seed in
    match
      let construct () =
        let g = graph_of_kind rng kind n in
        let labels =
          match scheme with
          | "pll" -> Pll.build g
          | "greedy" -> Greedy_landmark.build g
          | "randhit" -> fst (Random_hitting.build ~rng ~d g)
          | "rshub" -> fst (Rs_hub.build ~rng ~d g)
          | "rshub-sparse" -> fst (Rs_hub.build_sparse ~rng ~d g)
          | "tree" -> Repro_labeling.Tree_label.build g
          | "sep" -> Separator_label.build g
          | "approx" -> (Approx_hub.build g).Approx_hub.labels
          | other -> invalid_arg (Printf.sprintf "unknown scheme %S" other)
        in
        (g, labels)
      in
      if profile then
        let r, span = Repro_obs.Span.profile ~name:"label.build" construct in
        (r, Some span)
      else (construct (), None)
    with
    | (g, labels), span_opt ->
        Printf.printf "graph: n=%d m=%d maxdeg=%d\n" (Graph.n g) (Graph.m g)
          (Graph.max_degree g);
        print_endline (Hub_stats.report labels);
        Option.iter
          (fun span ->
            Format.printf "construction profile:@.%a@?" Repro_obs.Span.pp_flame
              span)
          span_opt;
        if verify then
          Printf.printf "exact cover: %b\n" (Cover.verify g labels);
        let write p s =
          let oc = open_out_bin p in
          output_string oc s;
          close_out oc
        in
        (match out with
        | None -> ()
        | Some "-" -> print_string (Hub_io.to_string labels)
        | Some path ->
            write path (Hub_io.to_string labels);
            write (path ^ ".graph") (Graph_io.to_string g);
            Printf.printf "wrote %s and %s.graph\n" path path);
        if stats then
          print_endline
            (Hub_stats.packed_report
               (Hub_stats.packed_sizes (Flat_hub.of_labels labels)));
        (match pack with
        | None -> ()
        | Some path ->
            let flat = Flat_hub.of_labels labels in
            let packed =
              if compress then Hub_io.compact_to_bytes flat
              else Hub_io.flat_to_bytes flat
            in
            write path packed;
            write (path ^ ".graph") (Graph_io.to_string g);
            let entries = Flat_hub.total_size flat in
            Printf.printf
              "packed %d bytes (%s, %d entries, %.2f bytes/entry) into %s \
               (and %s.graph)\n"
              (String.length packed)
              (if compress then "HUBFLAT2" else "HUBFLAT1")
              entries
              (if entries = 0 then 0.
               else float_of_int (String.length packed) /. float_of_int entries)
              path path);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let profile =
    let doc =
      "Profile the construction: wrap it in a Span tree and print the \
       flame-style per-phase report (see docs/OBSERVABILITY.md)."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let doc = "Build a hub labeling over a generated graph and report sizes." in
  Cmd.v
    (Cmd.info "label" ~doc)
    Term.(
      ret
        (const run $ kind $ n $ scheme $ d $ verify $ out $ pack $ compress
       $ stats $ profile $ seed_arg $ jobs_arg))

(* ---------------------------------------------------------------- *)
(* sumindex                                                           *)

let sumindex_cmd =
  let string_arg =
    let doc =
      "Shared bit string (e.g. 0110). Must have length (2^(b-1))^l; random \
       if omitted."
    in
    Arg.(value & opt (some string) None & info [ "string" ] ~docv:"BITS" ~doc)
  in
  let run b l s_opt seed =
    match Si_reduction.params ~b ~l with
    | p ->
        let m = p.Si_reduction.m in
        let s =
          match s_opt with
          | None -> Sum_index.random_instance (rng_of seed) m
          | Some str ->
              if String.length str <> m then
                invalid_arg
                  (Printf.sprintf "string must have length m = %d" m)
              else Array.init m (fun i -> str.[i] = '1')
        in
        Printf.printf "Sum-Index universe m = %d, string = %s\n" m
          (String.concat ""
             (List.map (fun b -> if b then "1" else "0") (Array.to_list s)));
        let proto = Si_reduction.protocol p in
        let ok = Sum_index.correct_on proto s in
        let ma, mb = Sum_index.max_message_bits proto s in
        let tr = Sum_index.trivial ~n:m in
        let ta, tb = Sum_index.max_message_bits tr s in
        Printf.printf
          "Theorem 1.6 protocol: correct on all %d index pairs: %b\n" (m * m)
          ok;
        Printf.printf "message bits: alice=%d bob=%d (trivial: %d+%d)\n" ma mb
          ta tb;
        Printf.printf "SUMINDEX lower bound sqrt(m) = %.2f bits\n"
          (Sum_index.sqrt_lower_bound_bits m);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc = "Run the Theorem 1.6 Sum-Index protocol end to end." in
  Cmd.v
    (Cmd.info "sumindex" ~doc)
    Term.(ret (const run $ b_arg $ l_arg $ string_arg $ seed_arg))

(* ---------------------------------------------------------------- *)
(* gen                                                                *)

let gen_cmd =
  let kind =
    let doc = "Graph kind: path, cycle, grid, tree, sparse, deg3, road." in
    Arg.(value & pos 0 string "sparse" & info [] ~docv:"KIND" ~doc)
  in
  let n =
    let doc = "Number of vertices." in
    Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run kind n seed =
    match graph_of_kind (rng_of seed) kind n with
    | g ->
        print_string (Graph_io.to_string g);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc = "Generate a graph and print it in edge-list format." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(ret (const run $ kind $ n $ seed_arg))

(* ---------------------------------------------------------------- *)
(* check                                                              *)

let check_cmd =
  let run seed jobs =
    apply_jobs jobs;
    let verdicts = Theorems.check_all ~seed in
    List.iter
      (fun vd -> Format.printf "%a@." Theorems.pp_verdict vd)
      verdicts;
    let failures =
      List.length (List.filter (fun vd -> not vd.Theorems.holds) verdicts)
    in
    if failures = 0 then begin
      Printf.printf "all %d theorem checks passed\n" (List.length verdicts);
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d theorem checks FAILED" failures)
  in
  let doc = "Run the consolidated theorem-certificate battery." in
  Cmd.v (Cmd.info "check" ~doc) Term.(ret (const run $ seed_arg $ jobs_arg))

(* ---------------------------------------------------------------- *)
(* serve                                                              *)

(* The resilient serving path. Distinct exit codes so callers can
   script against the failure taxonomy (see docs/ROBUSTNESS.md):
   10 = input did not parse, 11 = input parsed but failed validation,
   12 = all answers served but some came from a degraded (fallback)
   path or the primary was quarantined. *)

module Resilient_oracle = Repro_serve.Resilient_oracle
module Fault_injector = Repro_serve.Fault_injector
module Wire = Repro_shard.Wire
module Worker = Repro_shard.Worker
module Router = Repro_shard.Router
module Supervisor = Repro_shard.Supervisor
module Backend = Repro_obs.Backend
module Ops = Repro_obs.Ops
module Metrics = Repro_obs.Metrics
module Obs = Repro_obs.Obs
module Trace = Repro_obs.Trace
module Clock = Repro_obs.Clock
module Span = Repro_obs.Span
module Events = Repro_obs.Events

let exit_parse_failure = 10
let exit_validation_failure = 11
let exit_degraded = 12

let read_input = function
  | "-" ->
      (* chunked binary read: packed label files may arrive on stdin *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec loop () =
        let k = input stdin chunk 0 (Bytes.length chunk) in
        if k > 0 then begin
          Buffer.add_subbytes buf chunk 0 k;
          loop ()
        end
      in
      loop ();
      Buffer.contents buf
  | path -> (
      match open_in_bin path with
      | ic ->
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
      | exception Sys_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit exit_parse_failure)

let parse_graph_exit path =
  match Graph_io.of_string_res (read_input path) with
  | Ok g -> g
  | Error e ->
      Printf.eprintf "%s: parse failure: %s\n" path
        (Graph_io.string_of_parse_error e);
      exit exit_parse_failure

(* Label files are auto-detected: the binary packed form, the
   compressed binary form (both by magic) or the plain-text Hub_io
   format. Returns the assoc labeling for the validation paths plus
   the packed store when one was loaded. *)
let parse_labels_exit path =
  let s = read_input path in
  if Hub_io.is_packed s then
    match Hub_io.flat_of_bytes_res s with
    | Ok flat -> (Flat_hub.to_labels flat, Some flat)
    | Error e ->
        Printf.eprintf "%s: parse failure: %s\n" path
          (Graph_io.string_of_parse_error e);
        exit exit_parse_failure
  else if Hub_io.is_compact s then
    match Hub_io.compact_of_bytes_res s with
    | Ok store ->
        let flat = Compact_hub.to_flat store in
        (Flat_hub.to_labels flat, Some flat)
    | Error e ->
        Printf.eprintf "%s: parse failure: %s\n" path
          (Graph_io.string_of_parse_error e);
        exit exit_parse_failure
  else
    match Hub_io.of_string_res s with
    | Ok l -> (l, None)
    | Error e ->
        Printf.eprintf "%s: parse failure: %s\n" path
          (Graph_io.string_of_parse_error e);
        exit exit_parse_failure

let structural_exit g labels =
  match Hub_verify.structural g labels with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "validation failure: %s\n" msg;
      exit exit_validation_failure

(* Zero-copy path: map the packed file instead of parsing it. The O(n)
   header/offset validation is done by the loader; the O(total)
   structural check is deliberately skipped — that is the whole point
   of --mmap (run 'serve check' offline when provenance is in doubt).
   Malformed files exit 10 like every other parse failure; a store
   whose n disagrees with the graph exits 11. *)
let load_mmap_exit ~graph path =
  if path = "-" then begin
    Printf.eprintf "hubhard: --mmap requires a regular file, not stdin\n";
    exit 124
  end;
  match Mmap_hub.load_res path with
  | Error e ->
      Printf.eprintf "%s: parse failure: %s\n" path (Mmap_hub.error_to_string e);
      exit exit_parse_failure
  | Ok store ->
      if Mmap_hub.n store <> Graph.n graph then begin
        Printf.eprintf
          "validation failure: mmap store has n=%d but graph has n=%d\n"
          (Mmap_hub.n store) (Graph.n graph);
        exit exit_validation_failure
      end;
      store

let mmap_arg =
  let doc =
    "Serve from a zero-copy memory-mapped store: --labels-file must name a \
     binary packed file (hubhard label --pack) on disk, not stdin. Cold \
     start is O(1) in the label size and every process mapping the file \
     shares one page-cache copy. Mutually exclusive with --flat and \
     --compact; skips the startup structural re-validation (run 'serve \
     check' offline instead)."
  in
  Arg.(value & flag & info [ "mmap" ] ~doc)

let compact_arg =
  let doc =
    "Serve from a zero-copy compressed store: --labels-file must name a \
     binary compressed file (hubhard label --pack --compress) on disk, not \
     stdin. Same page-cache sharing and O(1)-in-label-size cold start as \
     --mmap at a fraction of the bytes (delta-varint HUBFLAT2 encoding, see \
     docs/PERFORMANCE.md). Mutually exclusive with --flat and --mmap."
  in
  Arg.(value & flag & info [ "compact" ] ~doc)

(* Compressed zero-copy path: the HUBFLAT2 mirror of load_mmap_exit.
   Shallow O(n) validation on open; malformed files exit 10, an
   n-mismatch exits 11. *)
let load_compact_exit ~graph path =
  if path = "-" then begin
    Printf.eprintf "hubhard: --compact requires a regular file, not stdin\n";
    exit 124
  end;
  match Compact_hub.load_res path with
  | Error e ->
      Printf.eprintf "%s: parse failure: %s\n" path
        (Compact_hub.error_to_string e);
      exit exit_parse_failure
  | Ok store ->
      if Compact_hub.n store <> Graph.n graph then begin
        Printf.eprintf
          "validation failure: compact store has n=%d but graph has n=%d\n"
          (Compact_hub.n store) (Graph.n graph);
        exit exit_validation_failure
      end;
      store

(* One shared resolver for the serving-store kind; every serve
   subcommand (query | stats | loop | worker | router | trace) routes
   its --mmap/--compact/--flat/--labels-file combination through here,
   so the rejected combinations — and their exit-124 contract — live
   in exactly one place. *)
type store_kind = Store_assoc | Store_flat | Store_mmap | Store_compact

let resolve_store_kind ?(flat = false) ~mmap ~compact ~labels_file () =
  if (mmap && flat) || (compact && flat) || (mmap && compact) then begin
    Printf.eprintf
      "hubhard: --mmap, --compact and --flat are mutually exclusive\n";
    exit 124
  end;
  if mmap && labels_file = None then begin
    Printf.eprintf "hubhard: --mmap requires --labels-file\n";
    exit 124
  end;
  if compact && labels_file = None then begin
    Printf.eprintf "hubhard: --compact requires --labels-file\n";
    exit 124
  end;
  if mmap then Store_mmap
  else if compact then Store_compact
  else if flat then Store_flat
  else Store_assoc

let store_kind_name ~labels = function
  | Store_mmap -> "mmap"
  | Store_compact -> "compact"
  | Store_flat -> "flat"
  | Store_assoc -> if labels then "assoc" else "search"

let graph_file_arg =
  let doc = "Graph file in Graph_io format ('-' for stdin)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "graph-file" ] ~docv:"FILE" ~doc)

let labels_file_req_arg =
  let doc = "Hub labeling file in Hub_io format ('-' for stdin)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "labels-file" ] ~docv:"FILE" ~doc)

let serve_check_cmd =
  let samples =
    let doc = "Number of BFS sources sampled for the cover check." in
    Arg.(value & opt int 8 & info [ "samples" ] ~docv:"K" ~doc)
  in
  let run graph_file labels_file samples seed jobs =
    apply_jobs jobs;
    let g = parse_graph_exit graph_file in
    let labels, _ = parse_labels_exit labels_file in
    structural_exit g labels;
    let report = Hub_verify.verify ~samples ~rng:(rng_of seed) g labels in
    Format.printf "%a@." Hub_verify.pp_report report;
    if Hub_verify.ok report then
      print_endline "labeling validated: structural + sampled cover checks ok"
    else begin
      Printf.eprintf
        "validation failure: %d stored mismatches, %d cover violations on \
         sampled pairs\n"
        report.Hub_verify.stored_mismatches report.Hub_verify.cover_violations;
      exit exit_validation_failure
    end
  in
  let doc =
    "Validate a graph + labeling pair (text or binary packed labels): parse \
     with precise errors (exit 10), then run structural and sampled \
     cover-property checks (exit 11 on failure)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_req_arg $ samples $ seed_arg
      $ jobs_arg)

(* Build the serving oracle for `serve query` / `serve stats`: one
   unified Resilient_oracle.create over a uniform primary backend,
   every layer instrumented into [registry]. Returns the oracle plus a
   cache-stats thunk for whichever store is in play. [mmap] / [compact]
   (already loaded and n-checked) take the primary slot when present;
   [labels] feeds the assoc or heap-flat primaries otherwise. *)
let build_serving_oracle ?clock ?(instrument_primary = true) ~registry ~labels
    ~flat ~mmap ~compact ~cache_slots ~step_budget ~spot_check
    ~quarantine_after ~inject_fraction ~inject_mode ~seed g =
  let wrap_primary base =
    let base =
      if inject_fraction <= 0.0 then base
      else
        let inj =
          Fault_injector.create ~seed ~fraction:inject_fraction inject_mode
        in
        Backend.make
          ~name:(Backend.name base ^ "+faults")
          ~space_words:(Backend.space_words base)
          (Fault_injector.wrap inj (Backend.query base))
    in
    (* batched serving skips the per-call primary instrumentation:
       the wrapper mutates the registry and reads the clock on every
       call, which is neither domain-safe nor clock-deterministic
       when primary answers are precomputed in parallel *)
    if instrument_primary then Obs.instrument ?clock registry base else base
  in
  (* the third slot is the native aggregate-op implementation riding
     the same store: the assoc labeling has none (the oracle lifts its
     point query over Ops.brute instead) *)
  let primary_and_cache =
    match (mmap, compact, labels) with
    | Some m, _, _ ->
        let store =
          if cache_slots > 0 then Mmap_hub.with_cache ~cache_slots m else m
        in
        Some
          ( wrap_primary (Resilient_oracle.mmap_primary ?step_budget store),
            (fun () -> Mmap_hub.cache_stats store),
            Some (Mmap_hub.ops store) )
    | None, Some c, _ ->
        let store =
          if cache_slots > 0 then Compact_hub.with_cache ~cache_slots c else c
        in
        Some
          ( wrap_primary (Resilient_oracle.compact_primary ?step_budget store),
            (fun () -> Compact_hub.cache_stats store),
            Some (Compact_hub.ops store) )
    | None, None, Some (l, packed) ->
        let store =
          if not flat then None
          else
            let s = Option.value packed ~default:(Flat_hub.of_labels l) in
            Some
              (if cache_slots > 0 then Flat_hub.with_cache ~cache_slots s
               else s)
        in
        let base =
          match store with
          | Some s -> Resilient_oracle.flat_primary ?step_budget s
          | None -> Resilient_oracle.hub_primary ?step_budget l
        in
        Some
          ( wrap_primary base,
            (fun () -> Option.bind store Flat_hub.cache_stats),
            Option.map (fun s -> Flat_hub.ops s) store )
    | None, None, None -> None
  in
  let primary = Option.map (fun (p, _, _) -> p) primary_and_cache in
  let primary_ops =
    Option.bind primary_and_cache (fun (_, _, o) -> o)
  in
  let cache_stats =
    match primary_and_cache with
    | Some (_, f, _) -> f
    | None -> fun () -> None
  in
  let oracle =
    Resilient_oracle.create ?step_budget ~spot_check_every:spot_check
      ~quarantine_after ~metrics:registry ?primary ?primary_ops g
  in
  (oracle, cache_stats)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let metrics_out_arg =
  let doc =
    "Write the full metrics registry (counters, gauges, latency histograms \
     with p50/p90/p99/max) as JSON to $(docv) — see docs/OBSERVABILITY.md \
     for the schema."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let labels_file_opt_arg =
  let doc =
    "Optional hub labeling file; without it queries are served by the \
     search chain only."
  in
  Arg.(
    value & opt (some string) None & info [ "labels-file" ] ~docv:"FILE" ~doc)

let serve_query_cmd =
  let labels_file = labels_file_opt_arg in
  let pairs =
    let doc = "Query pair 'u,v' (repeatable)." in
    Arg.(
      value & opt_all (pair ~sep:',' int int) [] & info [ "pair" ] ~docv:"U,V" ~doc)
  in
  let ops =
    let doc =
      "Aggregate operation (repeatable): 'dist:U,V', 'batch:U,V;U,V', \
       'one-to-many:S:T1,T2', 'many-to-many:S1,S2:T1,T2', 'top-k:S,K', \
       'ecc:V', 'farthest:V' or 'diam'. Served through the resilient \
       per-op degradation path and instrumented under ops.<name>.*."
    in
    Arg.(value & opt_all string [] & info [ "op" ] ~docv:"OP" ~doc)
  in
  let num =
    let doc = "Number of random query pairs when no --pair is given." in
    Arg.(value & opt int 16 & info [ "num" ] ~docv:"N" ~doc)
  in
  let budget =
    let doc =
      "Per-query step budget (label scan / bidirectional expansions); 0 \
       means unlimited."
    in
    Arg.(value & opt int 0 & info [ "budget" ] ~docv:"B" ~doc)
  in
  let spot_check =
    let doc = "Spot-check every K-th primary answer (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let quarantine_after =
    let doc = "Quarantine the primary after this many strikes." in
    Arg.(value & opt int 3 & info [ "quarantine-after" ] ~docv:"Q" ~doc)
  in
  let flat =
    let doc =
      "Serve from the packed flat-array store (Flat_hub) instead of the \
       per-vertex assoc labeling. Text label files are packed on load; \
       binary packed files (hubhard label --pack) already are."
    in
    Arg.(value & flag & info [ "flat" ] ~doc)
  in
  let cache_slots =
    let doc =
      "With --flat: direct-mapped distance-cache slots (0 disables the \
       cache)."
    in
    Arg.(value & opt int 0 & info [ "cache-slots" ] ~docv:"SLOTS" ~doc)
  in
  let inject_fraction =
    let doc =
      "Deterministically inject faults into this fraction of primary calls \
       (demonstration/testing)."
    in
    Arg.(value & opt float 0.0 & info [ "inject-fraction" ] ~docv:"F" ~doc)
  in
  let inject_mode =
    let doc = "Injected fault kind: $(docv) is corrupt, drop or fail." in
    Arg.(
      value
      & opt
          (enum
             [
               ("corrupt", Fault_injector.Corrupt);
               ("drop", Fault_injector.Drop);
               ("fail", Fault_injector.Fail);
             ])
          Fault_injector.Corrupt
      & info [ "inject-mode" ] ~docv:"MODE" ~doc)
  in
  let run graph_file labels_file pairs ops num budget spot_check
      quarantine_after flat mmap compact cache_slots inject_fraction
      inject_mode metrics_out seed jobs =
    apply_jobs jobs;
    if inject_fraction < 0.0 || inject_fraction > 1.0 then begin
      Printf.eprintf "hubhard: --inject-fraction must lie in [0, 1]\n";
      exit 124
    end;
    if cache_slots < 0 then begin
      Printf.eprintf "hubhard: --cache-slots must be non-negative\n";
      exit 124
    end;
    let kind = resolve_store_kind ~flat ~mmap ~compact ~labels_file () in
    let op_reqs =
      List.map
        (fun s ->
          match Ops.request_of_string s with
          | Ok r -> r
          | Error msg ->
              Printf.eprintf "hubhard: --op %S: %s\n" s msg;
              exit 124)
        ops
    in
    let g = parse_graph_exit graph_file in
    let n = Graph.n g in
    if n = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    List.iter
      (fun r ->
        match Ops.validate ~n r with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "validation failure: %s\n" msg;
            exit exit_validation_failure)
      op_reqs;
    let mmap =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap <> None || compact <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    let step_budget = if budget > 0 then Some budget else None in
    let registry = Metrics.create () in
    let oracle, _cache_stats =
      build_serving_oracle ~registry ~labels ~flat ~mmap ~compact ~cache_slots
        ~step_budget ~spot_check ~quarantine_after ~inject_fraction
        ~inject_mode ~seed g
    in
    let backend =
      Obs.instrument ~prefix:"serve" registry (Resilient_oracle.backend oracle)
    in
    let pairs =
      if pairs <> [] then pairs
      else if op_reqs <> [] then []
        (* --op alone: don't pad the run with random point queries *)
      else
        let rng = rng_of seed in
        List.init num (fun _ ->
            (Random.State.int rng n, Random.State.int rng n))
    in
    List.iter
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then begin
          Printf.eprintf "validation failure: pair (%d, %d) out of range\n" u v;
          exit exit_validation_failure
        end)
      pairs;
    List.iter
      (fun (u, v) ->
        let d, tr = Backend.query_detailed backend u v in
        Format.printf "%d %d %a %s@." u v Dist.pp d tr.Trace.source)
      pairs;
    let serve_op = Obs.instrument_op registry (Resilient_oracle.op oracle) in
    List.iter
      (fun req ->
        let resp, src = serve_op req in
        Format.printf "%s -> %s %s@."
          (Ops.request_to_string req)
          (Ops.response_to_string resp)
          (Resilient_oracle.source_name src))
      op_reqs;
    let s = Resilient_oracle.stats oracle in
    Format.printf "stats: %a@." Resilient_oracle.pp_stats s;
    if Resilient_oracle.quarantined oracle then
      Format.printf "quarantined: %s@."
        (Option.value ~default:"primary"
           (Resilient_oracle.primary_name oracle));
    (match metrics_out with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json (Metrics.snapshot registry));
        Format.printf "metrics: wrote %s@." path);
    if
      s.Resilient_oracle.fallback_answers > 0
      || s.Resilient_oracle.quarantines > 0
      || s.Resilient_oracle.faults > 0
    then exit exit_degraded
  in
  let doc =
    "Answer distance queries — point pairs (--pair) and aggregate \
     operations (--op: eccentricity, top-k, one-to-many, diameter…) — \
     through the resilient serving path (exit 12 when any answer came from \
     a degraded/fallback path). With --metrics-out, dump the instrumented \
     query counters and latency percentiles as JSON."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file $ pairs $ ops $ num $ budget
      $ spot_check $ quarantine_after $ flat $ mmap_arg $ compact_arg
      $ cache_slots $ inject_fraction $ inject_mode $ metrics_out_arg
      $ seed_arg $ jobs_arg)

let serve_stats_cmd =
  let num =
    let doc = "Number of random query pairs to drive through the stack." in
    Arg.(value & opt int 256 & info [ "num" ] ~docv:"N" ~doc)
  in
  let budget =
    let doc =
      "Per-query step budget (label scan / bidirectional expansions); 0 \
       means unlimited."
    in
    Arg.(value & opt int 0 & info [ "budget" ] ~docv:"B" ~doc)
  in
  let spot_check =
    let doc = "Spot-check every K-th primary answer (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let flat =
    let doc = "Serve from the packed flat-array store (see 'serve query')." in
    Arg.(value & flag & info [ "flat" ] ~doc)
  in
  let cache_slots =
    let doc = "With --flat: direct-mapped distance-cache slots." in
    Arg.(value & opt int 0 & info [ "cache-slots" ] ~docv:"SLOTS" ~doc)
  in
  let json =
    let doc = "Print the metrics registry as JSON instead of the text report." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let format =
    let doc =
      "Output format: $(b,text) (human-readable report), $(b,json) (the \
       docs/OBSERVABILITY.md schema) or $(b,prom) (Prometheus text \
       exposition with cumulative _bucket/_sum/_count histogram series)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("prom", `Prom) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let traces =
    let doc = "Number of most recent per-query trace records to show." in
    Arg.(value & opt int 5 & info [ "traces" ] ~docv:"K" ~doc)
  in
  let run graph_file labels_file num budget spot_check flat mmap compact
      cache_slots json format traces metrics_out seed jobs =
    apply_jobs jobs;
    if cache_slots < 0 then begin
      Printf.eprintf "hubhard: --cache-slots must be non-negative\n";
      exit 124
    end;
    let kind = resolve_store_kind ~flat ~mmap ~compact ~labels_file () in
    let g = parse_graph_exit graph_file in
    let n = Graph.n g in
    if n = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    let mmap =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap <> None || compact <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    let step_budget = if budget > 0 then Some budget else None in
    let registry = Metrics.create () in
    let oracle, cache_stats =
      build_serving_oracle ~registry ~labels ~flat ~mmap ~compact ~cache_slots
        ~step_budget ~spot_check ~quarantine_after:3 ~inject_fraction:0.0
        ~inject_mode:Fault_injector.Corrupt ~seed g
    in
    let recorder = Trace.recorder ~capacity:(max 1 traces) in
    let backend =
      Obs.instrument ~recorder ~prefix:"serve" registry
        (Resilient_oracle.backend oracle)
    in
    let rng = rng_of seed in
    for _ = 1 to num do
      ignore (Backend.query backend (Random.State.int rng n)
                (Random.State.int rng n))
    done;
    Metrics.sample_runtime_gauges registry;
    let snap = Metrics.snapshot registry in
    let format = if json then `Json else format in
    (match format with
    | `Json -> print_string (Metrics.to_json snap)
    | `Prom -> print_string (Metrics.to_prometheus registry)
    | `Text ->
        Format.printf "backend: %s (%d words)@." (Backend.name backend)
          (Backend.space_words backend);
        Option.iter
          (fun (h, m) -> Format.printf "store cache: %d hits, %d misses@." h m)
          (cache_stats ());
        Format.printf "%a" Metrics.pp snap;
        if traces > 0 then begin
          Format.printf "recent traces (%d of %d):@."
            (List.length (Trace.records recorder))
            (Trace.seen recorder);
          List.iter
            (fun tr -> Format.printf "  %a@." Trace.pp tr)
            (Trace.records recorder)
        end);
    match metrics_out with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json snap);
        Format.eprintf "metrics: wrote %s@." path
  in
  let doc =
    "Drive random queries through the instrumented serving stack and report \
     the metrics registry: query/source counters, cache hit/miss, latency \
     percentiles (deterministic fixed-bucket histograms) and recent \
     per-query traces."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_opt_arg $ num $ budget
      $ spot_check $ flat $ mmap_arg $ compact_arg $ cache_slots $ json
      $ format $ traces $ metrics_out_arg $ seed_arg $ jobs_arg)

(* serve loop: a long-lived query loop over a file or stdin, flushing
   periodic observability snapshots (metrics registry + recent traces +
   event log) to --metrics-out via atomic write-then-rename. Closes the
   ROADMAP item about wiring the metrics registry into a periodic
   exporter. Under --clock-step the whole run — snapshot bytes
   included — is a pure function of the inputs. *)

let serve_loop_cmd =
  let queries_file =
    let doc =
      "Query stream: one 'u v' pair per line ('-' for stdin; blank lines \
       and '#' comments skipped). Malformed or out-of-range lines are \
       counted and logged, not fatal."
    in
    Arg.(value & opt string "-" & info [ "queries" ] ~docv:"FILE" ~doc)
  in
  let flush_every =
    let doc =
      "Write a snapshot every $(docv) served queries (0 disables \
       count-based flushing)."
    in
    Arg.(value & opt int 1000 & info [ "flush-every" ] ~docv:"N" ~doc)
  in
  let flush_ticks =
    let doc =
      "Write a snapshot whenever the clock advanced $(docv) ns since the \
       last one (0 disables tick-based flushing; pairs naturally with \
       --clock-step)."
    in
    Arg.(value & opt int 0 & info [ "flush-ticks" ] ~docv:"NS" ~doc)
  in
  let clock_step =
    let doc =
      "Use a manual clock advancing $(docv) ns per reading instead of the \
       process clock; two runs with the same inputs and seed then produce \
       byte-identical snapshots (0 = monotonic wall clock)."
    in
    Arg.(value & opt int 0 & info [ "clock-step" ] ~docv:"NS" ~doc)
  in
  let traces =
    let doc = "Ring capacity for recent per-query traces in snapshots." in
    Arg.(value & opt int 16 & info [ "traces" ] ~docv:"K" ~doc)
  in
  let events_cap =
    let doc = "Ring capacity for the structured event log in snapshots." in
    Arg.(value & opt int 64 & info [ "events" ] ~docv:"K" ~doc)
  in
  let budget =
    let doc =
      "Per-query step budget (label scan / bidirectional expansions); 0 \
       means unlimited."
    in
    Arg.(value & opt int 0 & info [ "budget" ] ~docv:"B" ~doc)
  in
  let spot_check =
    let doc = "Spot-check every K-th primary answer (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let quarantine_after =
    let doc = "Quarantine the primary after this many strikes." in
    Arg.(value & opt int 3 & info [ "quarantine-after" ] ~docv:"Q" ~doc)
  in
  let flat =
    let doc = "Serve from the packed flat-array store (see 'serve query')." in
    Arg.(value & flag & info [ "flat" ] ~doc)
  in
  let cache_slots =
    let doc = "With --flat: direct-mapped distance-cache slots." in
    Arg.(value & opt int 0 & info [ "cache-slots" ] ~docv:"SLOTS" ~doc)
  in
  let inject_fraction =
    let doc =
      "Deterministically inject faults into this fraction of primary calls \
       (demonstration/testing)."
    in
    Arg.(value & opt float 0.0 & info [ "inject-fraction" ] ~docv:"F" ~doc)
  in
  let inject_mode =
    let doc = "Injected fault kind: $(docv) is corrupt, drop or fail." in
    Arg.(
      value
      & opt
          (enum
             [
               ("corrupt", Fault_injector.Corrupt);
               ("drop", Fault_injector.Drop);
               ("fail", Fault_injector.Fail);
             ])
          Fault_injector.Corrupt
      & info [ "inject-mode" ] ~docv:"MODE" ~doc)
  in
  let echo =
    let doc = "Print each answer as 'u v dist source' (off by default)." in
    Arg.(value & flag & info [ "echo" ] ~doc)
  in
  let batch =
    let doc =
      "Serve queries in batches of $(docv): primary answers are precomputed \
       across the worker domains (see --jobs), then accounted in input \
       order, so answers, stats and exit codes match --batch 1 exactly. \
       Batching skips the per-call primary latency instrumentation; \
       snapshots may only flush on batch boundaries. 1 = per-query path."
    in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let run graph_file labels_file queries_file flush_every flush_ticks
      clock_step traces events_cap budget spot_check quarantine_after flat
      mmap compact cache_slots inject_fraction inject_mode echo batch
      metrics_out seed jobs =
    apply_jobs jobs;
    if batch < 1 then begin
      Printf.eprintf "hubhard: --batch must be positive\n";
      exit 124
    end;
    if inject_fraction < 0.0 || inject_fraction > 1.0 then begin
      Printf.eprintf "hubhard: --inject-fraction must lie in [0, 1]\n";
      exit 124
    end;
    let kind = resolve_store_kind ~flat ~mmap ~compact ~labels_file () in
    if cache_slots < 0 || flush_every < 0 || flush_ticks < 0 || clock_step < 0
       || traces < 1 || events_cap < 1
    then begin
      Printf.eprintf
        "hubhard: --cache-slots/--flush-every/--flush-ticks/--clock-step \
         must be non-negative; --traces/--events must be positive\n";
      exit 124
    end;
    let clock =
      if clock_step > 0 then
        Clock.read (Clock.manual ~auto_step:(Int64.of_int clock_step) ())
      else Clock.monotonic
    in
    let event_log =
      Events.create ~clock (Events.ring ~capacity:events_cap)
    in
    Events.install event_log;
    let g = parse_graph_exit graph_file in
    let n = Graph.n g in
    if n = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    let mmap =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap <> None || compact <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    (* the store kind recorded in every snapshot, next to the metrics *)
    let store_kind = store_kind_name ~labels:(labels <> None) kind in
    let step_budget = if budget > 0 then Some budget else None in
    let registry = Metrics.create () in
    let oracle, _cache_stats =
      build_serving_oracle ~clock ~instrument_primary:(batch = 1) ~registry
        ~labels ~flat ~mmap ~compact ~cache_slots ~step_budget ~spot_check
        ~quarantine_after ~inject_fraction ~inject_mode ~seed g
    in
    let recorder = Trace.recorder ~capacity:traces in
    let backend =
      Obs.instrument ~clock ~recorder ~prefix:"serve" registry
        (Resilient_oracle.backend oracle)
    in
    (* Fan a batch's primary answers across domains only when the
       primary is a pure function of the pair: fault injectors and the
       flat store's distance cache mutate shared state per call. *)
    let batch_pool =
      if batch > 1 && inject_fraction = 0.0 && cache_slots = 0 then
        Some (Repro_par.Pool.default ())
      else None
    in
    Events.emit event_log "serve_loop.start"
      [
        ("n", Events.Int n);
        ("backend", Events.Str (Backend.name backend));
        ( "clock",
          Events.Str (if clock_step > 0 then "manual" else "monotonic") );
        ("seed", Events.Int seed);
      ];
    let served = ref 0 and malformed = ref 0 and out_of_range = ref 0 in
    let snapshots = ref 0 in
    let last_flush_clock = ref (if flush_ticks > 0 then clock () else 0L) in
    let snapshot_json ~final () =
      let buf = Buffer.create 4096 in
      Printf.bprintf buf "{\n";
      Printf.bprintf buf "  \"snapshot\": %d,\n" !snapshots;
      Printf.bprintf buf "  \"final\": %b,\n" final;
      Printf.bprintf buf "  \"store\": %S,\n" store_kind;
      Printf.bprintf buf "  \"queries\": %d,\n" !served;
      Printf.bprintf buf "  \"malformed_lines\": %d,\n" !malformed;
      Printf.bprintf buf "  \"out_of_range\": %d,\n" !out_of_range;
      Printf.bprintf buf "  \"clock_ns\": %Ld,\n" (clock ());
      Metrics.sample_runtime_gauges registry;
      Printf.bprintf buf "  \"metrics\": %s,\n"
        (String.trim (Metrics.to_json (Metrics.snapshot registry)));
      let add_array key to_json items close =
        Printf.bprintf buf "  %S: [" key;
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\n    %s" (to_json x))
          items;
        if items <> [] then Buffer.add_string buf "\n  ";
        Printf.bprintf buf "]%s\n" close
      in
      add_array "traces" Trace.to_json (Trace.records recorder) ",";
      add_array "events" Events.to_json (Events.recent event_log) "";
      Printf.bprintf buf "}\n";
      Buffer.contents buf
    in
    let write_atomic path s =
      let tmp = path ^ ".tmp" in
      write_file tmp s;
      Sys.rename tmp path
    in
    let flush_snapshot ~final () =
      match metrics_out with
      | None -> ()
      | Some path ->
          incr snapshots;
          let target =
            if final then path else Printf.sprintf "%s.%d" path !snapshots
          in
          write_atomic target (snapshot_json ~final ());
          Events.emit event_log "serve_loop.flush"
            [
              ("snapshot", Events.Int !snapshots); ("path", Events.Str target);
            ]
    in
    let maybe_flush () =
      let due_count = flush_every > 0 && !served mod flush_every = 0 in
      let due_ticks =
        if flush_ticks = 0 then false
        else
          let now = clock () in
          if Int64.sub now !last_flush_clock >= Int64.of_int flush_ticks then begin
            last_flush_clock := now;
            true
          end
          else false
      in
      if due_count || due_ticks then flush_snapshot ~final:false ()
    in
    (* batched path: buffer valid pairs, answer them in one
       query_many_detailed call, then echo/account in input order *)
    let pending = ref [] and pending_n = ref 0 in
    let flush_batch () =
      if !pending_n > 0 then begin
        let arr = Array.of_list (List.rev !pending) in
        pending := [];
        pending_n := 0;
        let answers =
          Resilient_oracle.query_many_detailed ?pool:batch_pool oracle arr
        in
        Array.iteri
          (fun i (d, src) ->
            let u, v = arr.(i) in
            incr served;
            if echo then
              Format.printf "%d %d %a %s@." u v Dist.pp d
                (Resilient_oracle.source_name src);
            maybe_flush ())
          answers
      end
    in
    let ic =
      if queries_file = "-" then stdin
      else
        match open_in queries_file with
        | ic -> ic
        | exception Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit exit_parse_failure
    in
    let stop = ref false in
    let drain_reason = ref "signal" in
    (* SIGTERM is what process supervisors (and the shard router) send;
       it gets the same graceful drain as an interactive ^C: finish the
       current line, flush the batch, write the final snapshot. *)
    let install_stop signal =
      try
        Some (Sys.signal signal (Sys.Signal_handle (fun _ -> stop := true)))
      with Invalid_argument _ | Sys_error _ -> None
    in
    let prev_sigint = install_stop Sys.sigint in
    let prev_sigterm = install_stop Sys.sigterm in
    let line_no = ref 0 in
    while not !stop do
      match input_line ic with
      | exception End_of_file ->
          (* a SIGINT that lands mid-read surfaces as EOF after the
             handler runs; attribute it to the signal *)
          drain_reason := (if !stop then "signal" else "eof");
          stop := true
      | exception Sys_error _ ->
          (* interrupted read (e.g. SIGINT mid-read on a tty) *)
          drain_reason := "read-error";
          stop := true
      | line ->
          incr line_no;
          let line = String.trim line in
          if line <> "" && line.[0] <> '#' then begin
            match Scanf.sscanf line " %d %d" (fun u v -> (u, v)) with
            | exception _ ->
                incr malformed;
                Events.emit event_log ~level:Events.Warn "serve_loop.malformed"
                  [ ("line", Events.Int !line_no) ]
            | u, v ->
                if u < 0 || u >= n || v < 0 || v >= n then begin
                  incr out_of_range;
                  Events.emit event_log ~level:Events.Warn
                    "serve_loop.out_of_range"
                    [
                      ("line", Events.Int !line_no);
                      ("u", Events.Int u);
                      ("v", Events.Int v);
                    ]
                end
                else if batch > 1 then begin
                  pending := (u, v) :: !pending;
                  incr pending_n;
                  if !pending_n >= batch then flush_batch ()
                end
                else begin
                  let d, tr = Backend.query_detailed backend u v in
                  incr served;
                  if echo then
                    Format.printf "%d %d %a %s@." u v Dist.pp d tr.Trace.source;
                  maybe_flush ()
                end
          end
    done;
    if ic != stdin then close_in ic;
    Option.iter (fun b -> Sys.set_signal Sys.sigint b) prev_sigint;
    Option.iter (fun b -> Sys.set_signal Sys.sigterm b) prev_sigterm;
    flush_batch ();
    Events.emit event_log "serve_loop.drain"
      [ ("reason", Events.Str !drain_reason); ("served", Events.Int !served) ];
    flush_snapshot ~final:true ();
    Events.uninstall ();
    let s = Resilient_oracle.stats oracle in
    Format.printf
      "served %d queries (%d malformed, %d out-of-range lines skipped), \
       drained on %s; wrote %d snapshot(s)%s@."
      !served !malformed !out_of_range !drain_reason !snapshots
      (match metrics_out with None -> "" | Some p -> " under " ^ p);
    Format.printf "stats: %a@." Resilient_oracle.pp_stats s;
    if Resilient_oracle.quarantined oracle then
      Format.printf "quarantined: %s@."
        (Option.value ~default:"primary"
           (Resilient_oracle.primary_name oracle));
    if
      s.Resilient_oracle.fallback_answers > 0
      || s.Resilient_oracle.quarantines > 0
      || s.Resilient_oracle.faults > 0
    then exit exit_degraded
  in
  let doc =
    "Run a long-lived query loop over a file or stdin through the resilient \
     serving path, periodically flushing an observability snapshot (metrics \
     registry + recent traces + structured event log, one JSON object) to \
     --metrics-out.<seq> by atomic write-then-rename, with a final snapshot \
     at --metrics-out on EOF/SIGINT/SIGTERM drain. With --clock-step the \
     snapshots are byte-identical across runs. Exit 12 when any answer came \
     from a degraded path."
  in
  Cmd.v (Cmd.info "loop" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_opt_arg $ queries_file
      $ flush_every $ flush_ticks $ clock_step $ traces $ events_cap $ budget
      $ spot_check $ quarantine_after $ flat $ mmap_arg $ compact_arg
      $ cache_slots $ inject_fraction $ inject_mode $ echo $ batch
      $ metrics_out_arg $ seed_arg $ jobs_arg)

(* serve worker / serve router: the supervised sharded tier. A worker
   speaks the Wire protocol over stdin/stdout and owns one partition
   slice; the router forks (or execs) a fleet of them, fans queries
   out, and survives their deaths. See docs/ROBUSTNESS.md. *)

let shards_arg ~default =
  let doc = "Number of shards the vertex set is split into." in
  Arg.(value & opt int default & info [ "shards" ] ~docv:"S" ~doc)

let partition_arg =
  let doc = "Partition scheme: $(docv) is range or hash." in
  Arg.(
    value
    & opt
        (enum
           [
             ("range", Repro_hub.Partition.Range);
             ("hash", Repro_hub.Partition.Hash);
           ])
        Repro_hub.Partition.Range
    & info [ "partition" ] ~docv:"SCHEME" ~doc)

let clock_step_arg =
  let doc =
    "Manual clock step in ns per reading (0 = monotonic wall clock); with \
     it, metrics snapshots are byte-identical across same-seed runs."
  in
  Arg.(value & opt int 0 & info [ "clock-step" ] ~docv:"NS" ~doc)

let serve_worker_cmd =
  let shard =
    let doc = "This worker's shard index (in [0, shards))." in
    Arg.(value & opt int 0 & info [ "shard" ] ~docv:"I" ~doc)
  in
  let chaos =
    let doc =
      "Chaos plan '<fault>@<frames>' (kill, hang, truncate, corrupt, slow): \
       misbehave exactly once, just before writing the $(i,frames)-th \
       response frame."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"PLAN" ~doc)
  in
  let budget =
    let doc = "Per-query step budget; 0 means unlimited." in
    Arg.(value & opt int 0 & info [ "budget" ] ~docv:"B" ~doc)
  in
  let spot_check =
    let doc = "Spot-check every K-th primary answer (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let quarantine_after =
    let doc = "Quarantine the primary after this many strikes." in
    Arg.(value & opt int 3 & info [ "quarantine-after" ] ~docv:"Q" ~doc)
  in
  let run graph_file labels_file shards shard partition chaos budget spot_check
      quarantine_after clock_step mmap compact seed =
    if shards < 1 || shard < 0 || shard >= shards then begin
      Printf.eprintf "hubhard: need 0 <= --shard < --shards\n";
      exit 124
    end;
    let kind = resolve_store_kind ~mmap ~compact ~labels_file () in
    let chaos =
      match chaos with
      | None -> None
      | Some s -> (
          match Fault_injector.chaos_of_string s with
          | Ok c -> Some c
          | Error msg ->
              Printf.eprintf "hubhard: %s\n" msg;
              exit 124)
    in
    let g = parse_graph_exit graph_file in
    if Graph.n g = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    let mmap =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap <> None || compact <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    let cfg =
      {
        Worker.graph = g;
        labels = Option.map fst labels;
        mmap;
        compact;
        shards;
        shard;
        partition;
        spot_check_every = spot_check;
        quarantine_after;
        step_budget = (if budget > 0 then Some budget else None);
        chaos;
        clock_step =
          (if clock_step > 0 then Some (Int64.of_int clock_step) else None);
        seed;
      }
    in
    Worker.run ~input:Unix.stdin ~output:Unix.stdout cfg
  in
  let doc =
    "Run one shard worker: serve Wire-protocol frames (length-prefixed \
     binary) over stdin/stdout for the partition slice this shard owns, \
     behind the full resilient degradation chain. Normally spawned by \
     'serve router', not by hand."
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_opt_arg $ shards_arg ~default:1
      $ shard $ partition_arg $ chaos $ budget $ spot_check $ quarantine_after
      $ clock_step_arg $ mmap_arg $ compact_arg $ seed_arg)

let serve_router_cmd =
  let queries_file =
    let doc =
      "Query stream: one 'u v' pair per line ('-' for stdin; blank lines and \
       '#' comments skipped). With --op and no explicit --queries, the \
       stream is skipped entirely."
    in
    Arg.(value & opt string "-" & info [ "queries" ] ~docv:"FILE" ~doc)
  in
  let ops =
    let doc =
      "Aggregate operation (repeatable, same forms as 'serve query --op'), \
       fanned out to the owning shards and merged; a dead shard's share is \
       served exactly by the router's local fallback (marked degraded)."
    in
    Arg.(value & opt_all string [] & info [ "op" ] ~docv:"OP" ~doc)
  in
  let chaos =
    let doc =
      "Per-shard chaos plan '<shard>:<fault>@<frames>' (repeatable), applied \
       to that shard's initial worker."
    in
    Arg.(value & opt_all string [] & info [ "chaos" ] ~docv:"S:PLAN" ~doc)
  in
  let batch =
    let doc =
      "Pairs per router batch; restarts happen only at batch boundaries, so \
       a mid-batch crash degrades at most one batch of its partition."
    in
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let deadline_ms =
    let doc = "Per-request deadline in milliseconds." in
    Arg.(value & opt int 2000 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_restarts =
    let doc = "Restart budget per shard before quarantine." in
    Arg.(value & opt int 3 & info [ "max-restarts" ] ~docv:"R" ~doc)
  in
  let backoff_ms =
    let doc = "Base restart backoff in milliseconds (doubles per restart)." in
    Arg.(value & opt int 50 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let worker_exe =
    let doc =
      "Spawn workers by exec'ing $(docv) ('serve worker' is appended) \
       instead of forking in-process."
    in
    Arg.(value & opt (some string) None & info [ "worker-exe" ] ~docv:"EXE" ~doc)
  in
  let echo =
    let doc = "Print each answer as 'u v dist source' (off by default)." in
    Arg.(value & flag & info [ "echo" ] ~doc)
  in
  let spot_check =
    let doc = "Per-worker spot-check cadence (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let run graph_file labels_file queries_file ops shards partition chaos batch
      deadline_ms max_restarts backoff_ms worker_exe echo spot_check clock_step
      mmap compact metrics_out seed =
    if shards < 1 || batch < 1 || deadline_ms < 1 || max_restarts < 0
       || backoff_ms < 0 || clock_step < 0
    then begin
      Printf.eprintf
        "hubhard: need --shards/--batch/--deadline-ms positive, \
         --max-restarts/--backoff-ms/--clock-step non-negative\n";
      exit 124
    end;
    let kind = resolve_store_kind ~mmap ~compact ~labels_file () in
    let op_reqs =
      List.map
        (fun s ->
          match Ops.request_of_string s with
          | Ok r -> r
          | Error msg ->
              Printf.eprintf "hubhard: --op %S: %s\n" s msg;
              exit 124)
        ops
    in
    let chaos =
      List.map
        (fun s ->
          match String.index_opt s ':' with
          | None ->
              Printf.eprintf
                "hubhard: --chaos %S: expected <shard>:<fault>@<frames>\n" s;
              exit 124
          | Some i -> (
              let shard = String.sub s 0 i
              and plan = String.sub s (i + 1) (String.length s - i - 1) in
              match
                (int_of_string_opt shard, Fault_injector.chaos_of_string plan)
              with
              | Some sh, Ok c when sh >= 0 && sh < shards -> (sh, c)
              | Some _, Ok _ ->
                  Printf.eprintf "hubhard: --chaos %S: shard out of range\n" s;
                  exit 124
              | None, _ ->
                  Printf.eprintf "hubhard: --chaos %S: bad shard index\n" s;
                  exit 124
              | _, Error msg ->
                  Printf.eprintf "hubhard: %s\n" msg;
                  exit 124))
        chaos
    in
    let g = parse_graph_exit graph_file in
    let n = Graph.n g in
    if n = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    List.iter
      (fun r ->
        match Ops.validate ~n r with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "validation failure: %s\n" msg;
            exit exit_validation_failure)
      op_reqs;
    let mmap_store =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact_store =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap_store <> None || compact_store <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    let event_log = Events.create (Events.ring ~capacity:64) in
    Events.install event_log;
    let spawn =
      match worker_exe with
      | None -> Router.Fork
      | Some exe ->
          Router.Exec
            (fun ~shard ->
              let base =
                [
                  exe; "serve"; "worker"; "--graph-file"; graph_file;
                  "--shards"; string_of_int shards;
                  "--shard"; string_of_int shard;
                  "--partition"; Repro_hub.Partition.string_of_spec partition;
                  "--spot-check-every"; string_of_int spot_check;
                  "--clock-step"; string_of_int clock_step;
                  "--seed"; string_of_int seed;
                ]
              in
              let base =
                match labels_file with
                | Some f -> base @ [ "--labels-file"; f ]
                | None -> base
              in
              (* exec'd workers map the packed file themselves; the OS
                 page cache still keeps one physical copy fleet-wide *)
              let base = if mmap then base @ [ "--mmap" ] else base in
              let base = if compact then base @ [ "--compact" ] else base in
              let base =
                match List.assoc_opt shard chaos with
                | Some c ->
                    base @ [ "--chaos"; Fault_injector.chaos_to_string c ]
                | None -> base
              in
              Array.of_list base)
    in
    let cfg =
      {
        (Router.default_config g) with
        labels = Option.map fst labels;
        mmap = mmap_store;
        compact = compact_store;
        shards;
        partition;
        supervisor =
          {
            Supervisor.default_config with
            deadline_ns = Int64.of_int (deadline_ms * 1_000_000);
            max_restarts;
            base_backoff_ns = Int64.of_int (backoff_ms * 1_000_000);
          };
        spot_check_every = spot_check;
        chaos;
        clock_step =
          (if clock_step > 0 then Some (Int64.of_int clock_step) else None);
        seed;
        spawn;
      }
    in
    let router, spawn_span =
      Span.profile ~name:"router.spawn" (fun () -> Router.create cfg)
    in
    let ic =
      if queries_file = "-" then
        if op_reqs <> [] then None (* --op alone: no query stream *)
        else Some stdin
      else
        match open_in queries_file with
        | ic -> Some ic
        | exception Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit exit_parse_failure
    in
    let served = ref 0 and degraded = ref 0 and skipped = ref 0 in
    let pending = ref [] and pending_n = ref 0 in
    let flush_batch () =
      if !pending_n > 0 then begin
        let arr = Array.of_list (List.rev !pending) in
        pending := [];
        pending_n := 0;
        let answers = Router.query_batch router arr in
        Array.iteri
          (fun i (a : Router.answer) ->
            let u, v = arr.(i) in
            incr served;
            if a.Router.degraded then incr degraded;
            if echo then
              Format.printf "%d %d %a %s%s@." u v Dist.pp a.Router.dist
                (Wire.name_of_source_code a.Router.source)
                (if a.Router.degraded then " degraded" else ""))
          answers
      end
    in
    Option.iter
      (fun ic ->
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then
               match Scanf.sscanf line " %d %d" (fun u v -> (u, v)) with
               | exception _ -> incr skipped
               | u, v ->
                   if u < 0 || u >= n || v < 0 || v >= n then incr skipped
                   else begin
                     pending := (u, v) :: !pending;
                     incr pending_n;
                     if !pending_n >= batch then flush_batch ()
                   end
           done
         with End_of_file -> ());
        if ic != stdin then close_in ic)
      ic;
    flush_batch ();
    List.iter
      (fun req ->
        let r = Router.op router req in
        incr served;
        if r.Router.degraded then incr degraded;
        Format.printf "%s -> %s %s%s@."
          (Ops.request_to_string req)
          (Ops.response_to_string r.Router.response)
          (Wire.name_of_source_code r.Router.source)
          (if r.Router.degraded then " degraded" else ""))
      op_reqs;
    (match metrics_out with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json (Router.merged_snapshot router)));
    let sup = Router.supervisor router in
    Format.printf
      "served %d queries over %d shard(s) (%d degraded, %d lines skipped); \
       spawn took %Ldns@."
      !served shards !degraded !skipped
      (Span.total_ns spawn_span);
    for s = 0 to shards - 1 do
      Format.printf "shard %d: %s, %d restart(s)@." s
        (Supervisor.state_name (Supervisor.state sup s))
        (Supervisor.restarts_used sup s)
    done;
    Router.shutdown router;
    Events.uninstall ();
    if !degraded > 0 then exit exit_degraded
  in
  let doc =
    "Route queries across a supervised fleet of forked (or exec'd) shard \
     workers: per-request deadlines, bounded exponential-backoff restarts, \
     quarantine of flapping shards, and local exact fallback for a dead \
     shard's partition. With --metrics-out, write the merged metrics \
     snapshot (router counters plus each worker's registry under \
     'shard<i>.'). Exit 12 when any answer was degraded."
  in
  Cmd.v (Cmd.info "router" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_opt_arg $ queries_file $ ops
      $ shards_arg ~default:2 $ partition_arg $ chaos $ batch $ deadline_ms
      $ max_restarts $ backoff_ms $ worker_exe $ echo $ spot_check
      $ clock_step_arg $ mmap_arg $ compact_arg $ metrics_out_arg $ seed_arg)

let serve_trace_cmd =
  let queries_file =
    let doc =
      "Query stream: one 'u v' pair per line ('-' for stdin; blank lines and \
       '#' comments skipped). With --op and no explicit --queries, the \
       stream is skipped entirely."
    in
    Arg.(value & opt string "-" & info [ "queries" ] ~docv:"FILE" ~doc)
  in
  let ops =
    let doc =
      "Aggregate operation (repeatable, same forms as 'serve query --op'), \
       fanned out and traced like any query."
    in
    Arg.(value & opt_all string [] & info [ "op" ] ~docv:"OP" ~doc)
  in
  let chaos =
    let doc =
      "Per-shard chaos plan '<shard>:<fault>@<frames>' (repeatable), applied \
       to that shard's initial worker — chaos paths (retries, backoff, \
       degraded recomputes) are exactly what the trace trees make visible."
    in
    Arg.(value & opt_all string [] & info [ "chaos" ] ~docv:"S:PLAN" ~doc)
  in
  let batch =
    let doc = "Pairs per router batch (one trace tree per batch)." in
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let deadline_ms =
    let doc = "Per-request deadline in milliseconds." in
    Arg.(value & opt int 2000 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_restarts =
    let doc = "Restart budget per shard before quarantine." in
    Arg.(value & opt int 3 & info [ "max-restarts" ] ~docv:"R" ~doc)
  in
  let backoff_ms =
    let doc = "Base restart backoff in milliseconds (doubles per restart)." in
    Arg.(value & opt int 50 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let worker_exe =
    let doc =
      "Spawn workers by exec'ing $(docv) ('serve worker' is appended) \
       instead of forking in-process."
    in
    Arg.(value & opt (some string) None & info [ "worker-exe" ] ~docv:"EXE" ~doc)
  in
  let spot_check =
    let doc = "Per-worker spot-check cadence (0 disables)." in
    Arg.(value & opt int 1 & info [ "spot-check-every" ] ~docv:"K" ~doc)
  in
  let trace_sample =
    let doc =
      "Head-sample 1 in $(docv) traces (deterministic hash of the trace \
       id); 1 records every query. Retried, degraded and slow queries are \
       force-recorded regardless."
    in
    Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let slow_ms =
    let doc =
      "Also force-record any query at least this slow (milliseconds; 0 \
       disables the threshold)."
    in
    Arg.(value & opt int 0 & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let trace_format =
    let doc =
      "Trace rendering: 'text' (flame-style tree per trace) or 'jsonl' (one \
       JSON object per trace: {\"trace_id\": ..., \"root\": <span tree>})."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("jsonl", `Jsonl) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let trace_out =
    let doc =
      "Also write the rendered traces to $(docv) (atomic write-then-rename; \
       byte-identical across same-seed runs under --clock-step)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run graph_file labels_file queries_file ops shards partition chaos batch
      deadline_ms max_restarts backoff_ms worker_exe spot_check trace_sample
      slow_ms trace_format trace_out clock_step mmap compact metrics_out seed =
    if shards < 1 || batch < 1 || deadline_ms < 1 || max_restarts < 0
       || backoff_ms < 0 || clock_step < 0 || trace_sample < 1 || slow_ms < 0
    then begin
      Printf.eprintf
        "hubhard: need --shards/--batch/--deadline-ms/--trace-sample \
         positive, --max-restarts/--backoff-ms/--clock-step/--slow-ms \
         non-negative\n";
      exit 124
    end;
    let kind = resolve_store_kind ~mmap ~compact ~labels_file () in
    let op_reqs =
      List.map
        (fun s ->
          match Ops.request_of_string s with
          | Ok r -> r
          | Error msg ->
              Printf.eprintf "hubhard: --op %S: %s\n" s msg;
              exit 124)
        ops
    in
    let chaos =
      List.map
        (fun s ->
          match String.index_opt s ':' with
          | None ->
              Printf.eprintf
                "hubhard: --chaos %S: expected <shard>:<fault>@<frames>\n" s;
              exit 124
          | Some i -> (
              let shard = String.sub s 0 i
              and plan = String.sub s (i + 1) (String.length s - i - 1) in
              match
                (int_of_string_opt shard, Fault_injector.chaos_of_string plan)
              with
              | Some sh, Ok c when sh >= 0 && sh < shards -> (sh, c)
              | Some _, Ok _ ->
                  Printf.eprintf "hubhard: --chaos %S: shard out of range\n" s;
                  exit 124
              | None, _ ->
                  Printf.eprintf "hubhard: --chaos %S: bad shard index\n" s;
                  exit 124
              | _, Error msg ->
                  Printf.eprintf "hubhard: %s\n" msg;
                  exit 124))
        chaos
    in
    let g = parse_graph_exit graph_file in
    let n = Graph.n g in
    if n = 0 then begin
      Printf.eprintf "validation failure: empty graph\n";
      exit exit_validation_failure
    end;
    List.iter
      (fun r ->
        match Ops.validate ~n r with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "validation failure: %s\n" msg;
            exit exit_validation_failure)
      op_reqs;
    let mmap_store =
      if kind = Store_mmap then Option.map (load_mmap_exit ~graph:g) labels_file
      else None
    in
    let compact_store =
      if kind = Store_compact then
        Option.map (load_compact_exit ~graph:g) labels_file
      else None
    in
    let labels =
      if mmap_store <> None || compact_store <> None then None
      else Option.map parse_labels_exit labels_file
    in
    Option.iter (fun (l, _) -> structural_exit g l) labels;
    let event_log = Events.create (Events.ring ~capacity:64) in
    Events.install event_log;
    let spawn =
      match worker_exe with
      | None -> Router.Fork
      | Some exe ->
          Router.Exec
            (fun ~shard ->
              let base =
                [
                  exe; "serve"; "worker"; "--graph-file"; graph_file;
                  "--shards"; string_of_int shards;
                  "--shard"; string_of_int shard;
                  "--partition"; Repro_hub.Partition.string_of_spec partition;
                  "--spot-check-every"; string_of_int spot_check;
                  "--clock-step"; string_of_int clock_step;
                  "--seed"; string_of_int seed;
                ]
              in
              let base =
                match labels_file with
                | Some f -> base @ [ "--labels-file"; f ]
                | None -> base
              in
              let base = if mmap then base @ [ "--mmap" ] else base in
              let base = if compact then base @ [ "--compact" ] else base in
              let base =
                match List.assoc_opt shard chaos with
                | Some c ->
                    base @ [ "--chaos"; Fault_injector.chaos_to_string c ]
                | None -> base
              in
              Array.of_list base)
    in
    let cfg =
      {
        (Router.default_config g) with
        labels = Option.map fst labels;
        mmap = mmap_store;
        compact = compact_store;
        shards;
        partition;
        supervisor =
          {
            Supervisor.default_config with
            deadline_ns = Int64.of_int (deadline_ms * 1_000_000);
            max_restarts;
            base_backoff_ns = Int64.of_int (backoff_ms * 1_000_000);
          };
        spot_check_every = spot_check;
        chaos;
        clock_step =
          (if clock_step > 0 then Some (Int64.of_int clock_step) else None);
        seed;
        spawn;
        trace =
          Some
            {
              Router.sample_every = trace_sample;
              slow_ns = Int64.of_int (slow_ms * 1_000_000);
              capacity = 4096;
            };
      }
    in
    let router = Router.create cfg in
    let ic =
      if queries_file = "-" then
        if op_reqs <> [] then None
        else Some stdin
      else
        match open_in queries_file with
        | ic -> Some ic
        | exception Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit exit_parse_failure
    in
    let served = ref 0 and degraded = ref 0 and skipped = ref 0 in
    let pending = ref [] and pending_n = ref 0 in
    let flush_batch () =
      if !pending_n > 0 then begin
        let arr = Array.of_list (List.rev !pending) in
        pending := [];
        pending_n := 0;
        let answers = Router.query_batch router arr in
        Array.iter
          (fun (a : Router.answer) ->
            incr served;
            if a.Router.degraded then incr degraded)
          answers
      end
    in
    Option.iter
      (fun ic ->
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then
               match Scanf.sscanf line " %d %d" (fun u v -> (u, v)) with
               | exception _ -> incr skipped
               | u, v ->
                   if u < 0 || u >= n || v < 0 || v >= n then incr skipped
                   else begin
                     pending := (u, v) :: !pending;
                     incr pending_n;
                     if !pending_n >= batch then flush_batch ()
                   end
           done
         with End_of_file -> ());
        if ic != stdin then close_in ic)
      ic;
    flush_batch ();
    List.iter
      (fun req ->
        let r = Router.op router req in
        incr served;
        if r.Router.degraded then incr degraded)
      op_reqs;
    let trees = Router.trace_trees router in
    let rendered =
      let buf = Buffer.create 4096 in
      (match trace_format with
      | `Text ->
          List.iter
            (fun (id, node) ->
              Buffer.add_string buf (Printf.sprintf "trace %s\n" id);
              Buffer.add_string buf
                (Format.asprintf "%a" Span.pp_flame node))
            trees
      | `Jsonl ->
          List.iter
            (fun (id, node) ->
              Buffer.add_string buf
                (Printf.sprintf "{\"trace_id\": \"%s\", \"root\": %s}\n" id
                   (Span.to_json node)))
            trees);
      Buffer.contents buf
    in
    print_string rendered;
    (match trace_out with
    | None -> ()
    | Some path -> write_file path rendered);
    (match metrics_out with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json (Router.merged_snapshot router)));
    Format.printf
      "traced %d queries over %d shard(s): %d trace tree(s) (%d degraded, \
       %d lines skipped)@."
      !served shards (List.length trees) !degraded !skipped;
    Router.shutdown router;
    Events.uninstall ();
    if !degraded > 0 then exit exit_degraded
  in
  let doc =
    "Route queries across the supervised sharded tier with distributed \
     tracing on: each query mints a deterministic trace context, \
     propagates it to the workers over the wire, and the router \
     reassembles one end-to-end trace tree per query — router span, \
     per-shard RPC spans, worker spans, and the retry / backoff / \
     degraded-recompute spans of the unlucky paths. Deterministic given \
     --seed and --clock-step: the rendered traces are byte-identical \
     across same-seed runs. Exit 12 when any answer was degraded."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ graph_file_arg $ labels_file_opt_arg $ queries_file $ ops
      $ shards_arg ~default:3 $ partition_arg $ chaos $ batch $ deadline_ms
      $ max_restarts $ backoff_ms $ worker_exe $ spot_check $ trace_sample
      $ slow_ms $ trace_format $ trace_out $ clock_step_arg $ mmap_arg
      $ compact_arg $ metrics_out_arg $ seed_arg)

let serve_cmd =
  let doc =
    "Resilient serving path: validated inputs, spot-checked answers, \
     graceful degradation (hub labels -> bidirectional search -> BFS), and \
     the supervised sharded tier (worker/router) with end-to-end \
     distributed tracing. Exit codes: 10 parse failure, 11 validation \
     failure, 12 degraded-mode answers."
  in
  Cmd.group (Cmd.info "serve" ~doc)
    [
      serve_check_cmd; serve_query_cmd; serve_stats_cmd; serve_loop_cmd;
      serve_worker_cmd; serve_router_cmd; serve_trace_cmd;
    ]

(* ---------------------------------------------------------------- *)

let default =
  let doc =
    "Reproduction of 'Hardness of exact distance queries in sparse graphs \
     through hub labeling' (PODC 2019)."
  in
  let info = Cmd.info "hubhard" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ exp_cmd; lemma_cmd; label_cmd; sumindex_cmd; gen_cmd; check_cmd; serve_cmd ]

let () = exit (Cmd.eval default)
