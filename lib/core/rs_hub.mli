(** The Theorem 4.1 hub-labeling construction, end to end.

    Given a graph of constant maximum degree and a threshold [D], the
    hubset of every vertex is assembled from four components, exactly
    following the proof:

    - [S]: a random global hubset of size [⌈(n/D) ln(D+1)⌉] meant to
      hit a valid hub of every pair with at least [D] valid hubs;
    - [Q_v]: the far pairs the random draw missed, patched by storing
      the partner directly (the probabilistic method made
      constructive);
    - [R_v]: pairs whose valid-hub set [H_uv] (at most [D] vertices)
      received a colour collision under a uniform [D³]-colouring;
    - [N(F_v)]: for every remaining pair and every valid hub
      [h ∈ H_uv] at split distances [(a, b)], the pair becomes an edge
      of the bipartite graph [E^h_{a,b}]; a minimum vertex cover
      (König, from Hopcroft–Karp) decides whether [h] joins [F_u] or
      [F_v], and the closed neighbourhoods [N[F_v]] enter the hubsets.
      The induction along a shortest path in the proof guarantees a
      common hub in [N[F_u]] ∩ N[F_v]] (or an endpoint itself).

    The resulting labeling is an exact cover by construction; tests
    verify it with {!Repro_hub.Cover.verify}. The per-colour unions of
    the matchings [MM^h_{a,b}] are the Ruzsa–Szemerédi graphs
    [G^c_{a,b}] of Lemma 4.2, and their measured densities are reported
    by the stats.

    Everything is quadratic-to-cubic in [n] (it materialises [H_uv]
    for all pairs), so intended for instances up to a few thousand
    vertices. *)

open Repro_graph
open Repro_hub

type stats = {
  d : int;  (** the threshold actually used *)
  n : int;
  global_size : int;  (** |S| *)
  q_total : int;  (** Σ_v |Q_v| *)
  r_total : int;  (** Σ_v |R_v| *)
  f_total : int;  (** Σ_v |F_v| *)
  bucket_count : int;  (** number of non-empty [E^h_{a,b}] *)
  matching_edge_total : int;  (** Σ |MM^h_{a,b}| over all buckets *)
  total_hubs : int;  (** Σ_v |S(v)| of the final labeling *)
}

val default_d : int -> int
(** [max 2 ⌈RS(n)^{1/6}⌉] with the Behrend-shape estimate of RS —
    the [D = RS(n)^{1/6}] choice concluding the proof. *)

type lemma42_data = {
  colour_of : int array;  (** the colouring actually drawn *)
  bucket_matchings : (int * int * int * (int * int) list) list;
      (** per bucket [(h, a, b)], the maximum matching of [E^h_{a,b}]
          as original-vertex pairs *)
}

val build :
  rng:Random.State.t ->
  ?d:int ->
  ?colors:int ->
  ?s_size:int ->
  ?pool:Repro_par.Pool.t ->
  Graph.t ->
  Hub_label.t * stats
(** Unweighted graphs. The optional [colors] (default [d³]) and
    [s_size] (default [⌈(n/d) ln(d+1)⌉]) override the proof's parameter
    choices — ablation knobs for the [E-ABL] experiment; the output is
    an exact cover for any values.

    The heavy phases — distance rows, pair classification, per-bucket
    König covers, hubset assembly — fan out across [pool] (default
    {!Repro_par.Pool.default}). All random draws happen on the calling
    domain and parallel results merge in a fixed order, so for a given
    [rng] seed the labeling, the stats and the span counters are
    identical for any job count. *)

val build_checked :
  rng:Random.State.t ->
  ?d:int ->
  ?colors:int ->
  ?s_size:int ->
  ?pool:Repro_par.Pool.t ->
  Graph.t ->
  Hub_label.t * stats * lemma42_data
(** Like {!build} but also returns the data needed by
    {!lemma42_holds}. *)

val lemma42_holds : n:int -> lemma42_data -> bool
(** The Lemma 4.2 structure check: within every [(a, b, colour)] group,
    the per-hub maximum matchings are pairwise edge-disjoint and each
    is an induced matching of their union — i.e. the union is a
    Ruzsa–Szemerédi-style graph, which is what bounds [Σ|F_v|] by
    [O(D⁵ n²/RS(n))] in the proof. *)

val build_w :
  rng:Random.State.t ->
  ?d:int ->
  ?pool:Repro_par.Pool.t ->
  Wgraph.t ->
  Hub_label.t * stats
(** Graphs with 0/1 weights (the generalisation noted after the proof
    of Theorem 4.1, needed by {!build_sparse}).
    @raise Invalid_argument if some weight exceeds 1. *)

val build_sparse :
  rng:Random.State.t ->
  ?d:int ->
  ?pool:Repro_par.Pool.t ->
  Graph.t ->
  Hub_label.t * stats
(** Theorem 1.4: reduce a constant *average* degree graph to bounded
    maximum degree by vertex subdivision with weight-0 links
    ({!Repro_graph.Subdivide.split_high_degree} with [k = ⌈2m/n⌉]),
    label the subdivided graph with {!build_w}, then project hubs back
    through their originating vertices. Exact on the input graph. *)
