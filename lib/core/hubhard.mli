(** One-stop public API for the reproduction.

    [Hubhard] re-exports the substrate libraries under stable aliases
    so that applications can [open Repro_core.Hubhard] (or use
    qualified paths) without depending on each substrate library
    individually. The paper-specific modules ({!Grid_graph},
    {!Degree_gadget}, {!Lower_bound}, {!Rs_hub}, {!Sum_index},
    {!Si_reduction}) live alongside this module in [Repro_core]. *)

module Graph = Repro_graph.Graph
module Wgraph = Repro_graph.Wgraph
module Dist = Repro_graph.Dist
module Traversal = Repro_graph.Traversal
module Dijkstra = Repro_graph.Dijkstra
module Apsp = Repro_graph.Apsp
module Path = Repro_graph.Path
module Generators = Repro_graph.Generators
module Subdivide = Repro_graph.Subdivide
module Graph_io = Repro_graph.Graph_io
module Graph_ops = Repro_graph.Graph_ops

module Bipartite = Repro_matching.Bipartite
module Hopcroft_karp = Repro_matching.Hopcroft_karp
module Koenig = Repro_matching.Koenig

module Bidirectional = Repro_route.Bidirectional
module Contraction = Repro_route.Contraction
module Arc_flags = Repro_route.Arc_flags

module Behrend = Repro_rs.Behrend
module Ap_free = Repro_rs.Ap_free
module Rs_graph = Repro_rs.Rs_graph
module Induced_matching = Repro_rs.Induced_matching
module Rs_bounds = Repro_rs.Rs_bounds

module Hub_label = Repro_hub.Hub_label
module Cover = Repro_hub.Cover
module Pll = Repro_hub.Pll
module Order = Repro_hub.Order
module Random_hitting = Repro_hub.Random_hitting
module Greedy_landmark = Repro_hub.Greedy_landmark
module Monotone = Repro_hub.Monotone
module Hub_stats = Repro_hub.Hub_stats
module Hub_prune = Repro_hub.Hub_prune
module Approx_hub = Repro_hub.Approx_hub
module Separator_label = Repro_hub.Separator_label
module Spc = Repro_hub.Spc
module Canonical_hhl = Repro_hub.Canonical_hhl
module Hub_io = Repro_hub.Hub_io
module Hub_verify = Repro_hub.Hub_verify

module Bitvec = Repro_labeling.Bitvec
module Bit_io = Repro_labeling.Bit_io
module Encoder = Repro_labeling.Encoder
module Tree_label = Repro_labeling.Tree_label
module Flat_label = Repro_labeling.Flat_label
module Sparse_label = Repro_labeling.Sparse_label
module Distance_label = Repro_labeling.Distance_label

val version : string
