open Repro_graph

type t = {
  n : int;
  sample : int array;  (** the set A *)
  sample_index : int array;  (** vertex -> index in [sample], or -1 *)
  to_sample : int array array;  (** d(a, v) for each a in A *)
  nearest : int array;  (** p(v), or -1 if A is empty / unreachable *)
  d_nearest : int array;  (** d(v, A) *)
  bunch : (int * int) array array;  (** sorted (w, d(v,w)) with d < d(v,A) *)
}

let build ~rng g =
  let n = Graph.n g in
  let p =
    if n <= 1 then 1.0
    else sqrt (log (float_of_int n) /. float_of_int n)
  in
  let sample_list = ref [] in
  for v = n - 1 downto 0 do
    if Random.State.float rng 1.0 < p then sample_list := v :: !sample_list
  done;
  (* never leave A empty on a non-empty graph: it would make bunches
     the whole graph, which is correct but defeats the structure *)
  if !sample_list = [] && n > 0 then sample_list := [ Random.State.int rng n ];
  let sample = Array.of_list !sample_list in
  let sample_index = Array.make n (-1) in
  Array.iteri (fun i a -> sample_index.(a) <- i) sample;
  let to_sample = Array.map (fun a -> Traversal.bfs g a) sample in
  let nearest = Array.make n (-1) in
  let d_nearest = Array.make n Dist.inf in
  for v = 0 to n - 1 do
    Array.iteri
      (fun i a ->
        let d = to_sample.(i).(v) in
        if d < d_nearest.(v) then begin
          d_nearest.(v) <- d;
          nearest.(v) <- a
        end)
      sample
  done;
  let bunch =
    Array.init n (fun v ->
        if d_nearest.(v) = 0 then [||]
        else begin
          let radius =
            if Dist.is_finite d_nearest.(v) then d_nearest.(v) - 1
            else Graph.n g (* unreachable from A: bunch = component *)
          in
          Traversal.bfs_limited g v ~radius
          |> List.filter (fun (w, _) -> w <> v)
          |> List.sort compare |> Array.of_list
        end)
  in
  { n; sample; sample_index; to_sample; nearest; d_nearest; bunch }

let bunch_find t v w =
  let arr = t.bunch.(v) in
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  let res = ref None in
  while !res = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x, d = arr.(mid) in
    if x = w then res := Some d
    else if x < w then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let query t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Tz_oracle.query";
  if u = v then 0
  else begin
    let direct =
      match bunch_find t u v with
      | Some d -> Some d
      | None -> bunch_find t v u
    in
    match direct with
    | Some d -> d
    | None ->
        (* sampled vertices have empty bunches but exact rows *)
        let via_sample x y =
          if t.sample_index.(x) >= 0 then
            Some t.to_sample.(t.sample_index.(x)).(y)
          else None
        in
        (match (via_sample u v, via_sample v u) with
        | Some d, _ | _, Some d -> d
        | None, None ->
            (* d(x, A) + d(p(x), y): the stretch-3 estimate, both ways *)
            let side w dx y =
              if w < 0 then Dist.inf
              else Dist.add dx t.to_sample.(t.sample_index.(w)).(y)
            in
            Dist.min
              (side t.nearest.(u) t.d_nearest.(u) v)
              (side t.nearest.(v) t.d_nearest.(v) u))
  end

let space_words t =
  let bunch_total =
    Array.fold_left (fun acc b -> acc + (2 * Array.length b)) 0 t.bunch
  in
  bunch_total + (Array.length t.sample * t.n) + (2 * t.n)

let sample_size t = Array.length t.sample

let avg_bunch_size t =
  if t.n = 0 then 0.0
  else
    float_of_int
      (Array.fold_left (fun acc b -> acc + Array.length b) 0 t.bunch)
    /. float_of_int t.n

let backend t =
  let detailed u v =
    let d = query t u v in
    (* both bunches are probed; sampled rows are O(1) lookups *)
    let scanned = Array.length t.bunch.(u) + Array.length t.bunch.(v) in
    ( d,
      Repro_obs.Trace.make ~entries_scanned:scanned ~source:"tz-stretch3" ~u
        ~v ~dist:d () )
  in
  Repro_obs.Backend.make ~name:"tz-stretch3" ~space_words:(space_words t)
    ~detailed (query t)

let max_stretch g t =
  let n = Graph.n g in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    let dist = Traversal.bfs g u in
    for v = u + 1 to n - 1 do
      if Dist.is_finite dist.(v) then begin
        let est = query t u v in
        if est < dist.(v) then
          invalid_arg "Tz_oracle.max_stretch: underestimate";
        let r = float_of_int est /. float_of_int (max dist.(v) 1) in
        if r > !worst then worst := r
      end
    done
  done;
  !worst
