open Repro_graph

type t = { grid : Grid_graph.t; graph : Graph.t; anchor : int array }

(* A fresh-vertex allocator over a growing edge list. *)
type builder = { mutable next : int; mutable edges : (int * int) list }

let fresh bld =
  let v = bld.next in
  bld.next <- v + 1;
  v

let link bld u v = bld.edges <- (u, v) :: bld.edges

(* Build a perfectly balanced binary tree with [leaves = 2^depth]
   leaves below [root]; returns the leaf ids in left-to-right order. *)
let rec grow_tree bld root depth =
  if depth = 0 then [ root ]
  else begin
    let left = fresh bld in
    let right = fresh bld in
    link bld root left;
    link bld root right;
    grow_tree bld left (depth - 1) @ grow_tree bld right (depth - 1)
  end

let build (grid : Grid_graph.t) =
  Repro_obs.Span.run ~name:"degree-gadget.build" (fun () ->
  let open Grid_graph in
  let hb = grid.graph in
  let nh = Wgraph.n hb in
  let bld = { next = 0; edges = [] } in
  let anchor = Array.make nh (-1) in
  (* in_leaf.(v).(value) / out_leaf.(v).(value): the leaf of T_in(v) /
     T_out(v) indexed by the changing coordinate's value. *)
  let in_leaf = Array.make nh [||] in
  let out_leaf = Array.make nh [||] in
  let two_l = 2 * grid.l in
  Repro_obs.Span.run ~name:"anchor-trees" (fun () ->
  for v = 0 to nh - 1 do
    let level, _ = Grid_graph.coords grid v in
    if not (Grid_graph.is_removed grid v) then begin
      let a = fresh bld in
      anchor.(v) <- a;
      if level > 0 then begin
        let root = fresh bld in
        link bld a root;
        in_leaf.(v) <- Array.of_list (grow_tree bld root grid.b)
      end;
      if level < two_l then begin
        let root = fresh bld in
        link bld a root;
        out_leaf.(v) <- Array.of_list (grow_tree bld root grid.b)
      end
    end
  done);
  (* Connect leaves by subdivided paths of length w - 2b - 2. *)
  Repro_obs.Span.run ~name:"edge-paths" (fun () ->
  List.iter
    (fun (u, v, w) ->
      (* orient the edge from the lower level to the higher one *)
      let lu, _ = Grid_graph.coords grid u in
      let lv, _ = Grid_graph.coords grid v in
      let u, v = if lu < lv then (u, v) else (v, u) in
      let _, vec_u = Grid_graph.coords grid u in
      let _, vec_v = Grid_graph.coords grid v in
      let i, _ = Grid_graph.coords grid u in
      let c = Grid_graph.edge_coordinate grid i in
      let path_len = w - (2 * grid.b) - 2 in
      assert (path_len >= 1);
      let start = out_leaf.(u).(vec_v.(c)) in
      let stop = in_leaf.(v).(vec_u.(c)) in
      let prev = ref start in
      for _ = 1 to path_len - 1 do
        let x = fresh bld in
        link bld !prev x;
        prev := x
      done;
      link bld !prev stop)
    (Wgraph.edges hb));
  Repro_obs.Span.count "gadget_vertices" bld.next;
  let graph =
    Repro_obs.Span.run ~name:"adjacency" (fun () ->
        Graph.of_edges ~n:bld.next bld.edges)
  in
  { grid; graph; anchor })

let anchor_of t v =
  let a = t.anchor.(v) in
  if a < 0 then invalid_arg "Degree_gadget.anchor_of: removed grid vertex";
  a

let is_anchor t g =
  let found = ref None in
  Array.iteri (fun v a -> if a = g then found := Some v) t.anchor;
  !found

let n t = Graph.n t.graph

let theorem21_node_bound t =
  let open Grid_graph in
  let s = t.grid.s in
  let l = t.grid.l in
  let sl = t.grid.per_level in
  (4 * s * sl * ((2 * l) + 1)) + (((3 * l) + 1) * s * s * sl * 2 * l * s)
