open Repro_graph

type t = {
  b : int;
  l : int;
  s : int;
  per_level : int;
  a_weight : int;
  graph : Wgraph.t;
  removed_mid : bool array;
}

let ipow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let code_vec ~s ~l vec =
  if Array.length vec <> l then invalid_arg "Grid_graph: bad vector length";
  let acc = ref 0 in
  for k = l - 1 downto 0 do
    if vec.(k) < 0 || vec.(k) >= s then
      invalid_arg "Grid_graph: coordinate out of range";
    acc := (!acc * s) + vec.(k)
  done;
  !acc

let decode_vec ~s ~l idx =
  let v = Array.make l 0 in
  let rest = ref idx in
  for k = 0 to l - 1 do
    v.(k) <- !rest mod s;
    rest := !rest / s
  done;
  v

let edge_coordinate_raw ~l i =
  (* paper (1-indexed): c = i+1 for i < l, c = 2l - i for i >= l *)
  if i < l then i else (2 * l) - i - 1

let create ?remove_mid ~b ~l () =
  Repro_obs.Span.run ~name:"grid-graph.create" (fun () ->
  if b < 1 || l < 1 then invalid_arg "Grid_graph.create: need b, l >= 1";
  let s = 1 lsl b in
  let per_level = ipow s l in
  if per_level > 1_000_000 then
    invalid_arg "Grid_graph.create: s^l too large for experiment scale";
  let a_weight = 3 * l * s * s in
  let removed_mid = Array.make per_level false in
  (match remove_mid with
  | None -> ()
  | Some pred ->
      for idx = 0 to per_level - 1 do
        removed_mid.(idx) <- pred (decode_vec ~s ~l idx)
      done);
  let vertex_id level idx = (level * per_level) + idx in
  let is_removed_id level idx = level = l && removed_mid.(idx) in
  let edges = ref [] in
  Repro_obs.Span.run ~name:"level-edges" (fun () ->
  for i = 0 to (2 * l) - 1 do
    let c = edge_coordinate_raw ~l i in
    let stride = ipow s c in
    for idx = 0 to per_level - 1 do
      if not (is_removed_id i idx) then begin
        let jc = idx / stride mod s in
        for jc' = 0 to s - 1 do
          (* change coordinate c from jc to jc' *)
          let idx' = idx + ((jc' - jc) * stride) in
          if not (is_removed_id (i + 1) idx') then begin
            let diff = jc - jc' in
            let w = a_weight + (diff * diff) in
            Repro_obs.Span.count "edges" 1;
            edges := (vertex_id i idx, vertex_id (i + 1) idx', w) :: !edges
          end
        done
      end
    done
  done);
  let n = ((2 * l) + 1) * per_level in
  Repro_obs.Span.count "vertices" n;
  let graph =
    Repro_obs.Span.run ~name:"adjacency" (fun () -> Wgraph.of_edges ~n !edges)
  in
  { b; l; s; per_level; a_weight; graph; removed_mid })

let n t = Wgraph.n t.graph
let code t vec = code_vec ~s:t.s ~l:t.l vec
let decode t idx = decode_vec ~s:t.s ~l:t.l idx

let vertex t ~level vec =
  if level < 0 || level > 2 * t.l then invalid_arg "Grid_graph.vertex: level";
  (level * t.per_level) + code t vec

let coords t id =
  if id < 0 || id >= n t then invalid_arg "Grid_graph.coords";
  (id / t.per_level, decode t (id mod t.per_level))

let is_removed t id =
  let level, vec = coords t id in
  level = t.l && t.removed_mid.(code t vec)

let edge_coordinate t i =
  if i < 0 || i >= 2 * t.l then invalid_arg "Grid_graph.edge_coordinate";
  edge_coordinate_raw ~l:t.l i

let midpoint x z =
  Array.init (Array.length x) (fun k ->
      let d = z.(k) - x.(k) in
      if d land 1 <> 0 then invalid_arg "Grid_graph.midpoint: odd difference";
      x.(k) + (d / 2))

let valid_pair t x z =
  Array.length x = t.l
  && Array.length z = t.l
  &&
  let ok = ref true in
  for k = 0 to t.l - 1 do
    if (z.(k) - x.(k)) land 1 <> 0 then ok := false
  done;
  !ok

let expected_distance t x z =
  if not (valid_pair t x z) then
    invalid_arg "Grid_graph.expected_distance: invalid pair";
  let sq = ref 0 in
  for k = 0 to t.l - 1 do
    let d = z.(k) - x.(k) in
    sq := !sq + (d * d)
  done;
  (2 * t.l * t.a_weight) + (!sq / 2)

let bottom t x = vertex t ~level:0 x
let top t z = vertex t ~level:(2 * t.l) z
let middle t y = vertex t ~level:t.l y

let iter_vectors t f =
  for idx = 0 to t.per_level - 1 do
    f (decode t idx)
  done

let iter_even_vectors t f =
  let half = t.s / 2 in
  let count = ipow half t.l in
  for idx = 0 to count - 1 do
    let v = decode_vec ~s:half ~l:t.l idx in
    f (Array.map (fun x -> 2 * x) v)
  done
