open Repro_graph
open Repro_hub

type kind =
  | Full of Apsp.t
  | Hub of Hub_label.t
  | Flat of Flat_hub.t
  | On_demand of Graph.t
  | Ext of Repro_obs.Backend.t

type t = { kind : kind; space : int; label : string }

let full g =
  let apsp = Apsp.of_graph g in
  let n = Graph.n g in
  { kind = Full apsp; space = n * n; label = "full-matrix" }

let hub g labels =
  ignore g;
  {
    kind = Hub labels;
    space = 2 * Hub_label.total_size labels;
    label = "hub-labeling";
  }

let flat g store =
  ignore g;
  {
    kind = Flat store;
    space = Flat_hub.space_words store;
    label = "flat-hub-labeling";
  }

let on_demand g =
  {
    kind = On_demand g;
    space = (2 * Graph.m g) + Graph.n g;
    label = "bfs-on-demand";
  }

let of_backend b =
  {
    kind = Ext b;
    space = Repro_obs.Backend.space_words b;
    label = Repro_obs.Backend.name b;
  }

let query t u v =
  match t.kind with
  | Full apsp -> Apsp.dist apsp u v
  | Hub labels -> Hub_label.query labels u v
  | Flat store -> Flat_hub.query store u v
  | On_demand g -> (Traversal.bfs g u).(v)
  | Ext b -> Repro_obs.Backend.query b u v

let name t = t.label
let space_words t = t.space

let backend t =
  match t.kind with
  | Ext b -> b
  | Hub labels -> Hub_label.backend labels
  | Flat store -> Flat_hub.backend store
  | Full _ | On_demand _ ->
      Repro_obs.Backend.make ~name:t.label ~space_words:t.space (query t)
