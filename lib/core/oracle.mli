(** Centralised distance oracles — the space/time tradeoff discussion
    of the introduction ("a natural objective ... data structures using
    space S and resolving exact distance queries in time T, with
    ST = Õ(n²)").

    Four endpoints of the tradeoff, all exact:
    - [full]: the precomputed n×n matrix — S = Θ(n²), T = O(1);
    - [hub]: a hub labeling — S = Θ(Σ|S_v|), T = O(|S_u| + |S_v|);
    - [flat]: the packed {!Flat_hub} form of the same labeling — the
      serving-grade layout, same asymptotics, measurably faster;
    - [on_demand]: store only the graph and BFS per query —
      S = Θ(n + m), T = O(n + m).

    [of_backend] admits any {!Repro_obs.Backend.S} (e.g. the
    Thorup–Zwick stretch-3 oracle, or an instrumented backend), so the
    E-ORACLE experiment, the examples and the CLI query every oracle
    through this one surface; [backend] goes the other way, exposing
    any oracle behind the uniform signature.

    The [E-ORACLE] experiment measures all of these on sparse
    instances, exhibiting the tradeoff curve the paper's lower bound
    constrains (hub-based oracles cannot beat [n/2^Θ(√log n)] space on
    the construction of Section 2). *)

open Repro_graph
open Repro_hub

type t

val full : Graph.t -> t
val hub : Graph.t -> Hub_label.t -> t

val flat : Graph.t -> Flat_hub.t -> t
(** The packed flat-array store as an oracle (name
    ["flat-hub-labeling"]); [space_words] counts the CSR offsets and
    the interleaved data words. *)

val on_demand : Graph.t -> t

val of_backend : Repro_obs.Backend.t -> t
(** Wrap any uniform backend; [name] and [space_words] are taken from
    the backend. *)

val query : t -> int -> int -> int
val name : t -> string

val space_words : t -> int
(** Machine words of the query structure: [n²] for [full], twice the
    total hub count for [hub], [(n + 1) + 2·total] for [flat], [2m + n]
    for [on_demand], the backend's own accounting for [of_backend]. *)

val backend : t -> Repro_obs.Backend.t
(** The oracle behind the uniform signature — hub and flat oracles
    reuse their native backends (with per-query traces); matrix and
    on-demand oracles get a plain wrapper. *)
