open Repro_graph
open Repro_hub

type lemma42_data = {
  colour_of : int array;
  bucket_matchings : (int * int * int * (int * int) list) list;
      (* (h, a, b, maximum-matching pairs (u, v) of the bucket E^h_{a,b}) *)
}

type stats = {
  d : int;
  n : int;
  global_size : int;
  q_total : int;
  r_total : int;
  f_total : int;
  bucket_count : int;
  matching_edge_total : int;
  total_hubs : int;
}

let default_d n =
  let rs = Repro_rs.Rs_bounds.behrend_upper n in
  max 2 (int_of_float (ceil (rs ** (1.0 /. 6.0))))

(* Per-chunk tallies of the pair-classification sweep. Workers fill
   these privately; the submitting domain merges them in chunk order so
   every observable — span counters, Q/R totals, bucket contents — is
   independent of the job count. *)
type conflict_chunk = {
  mutable cc_pairs : int;
  mutable cc_qpatch : int;
  mutable cc_rconf : int;
  mutable cc_charged : int;
  mutable cc_q : int;
  mutable cc_r : int;
  cc_buckets : (int * int * int, (int * int) list ref) Hashtbl.t;
      (* edge lists accumulate reversed; the merge restores scan order *)
}

(* The construction, abstracted over the distance matrix [rows] and an
   adjacency iterator (used only for the closed neighbourhoods
   N[F_v]). *)
let build_on ~rng ~d ?colors ?s_size ?pool ~n ~rows ~iter_adj () =
  let pool = match pool with Some p -> p | None -> Repro_par.Pool.default () in
  let bucket_matchings = ref [] in
  if d < 1 then invalid_arg "Rs_hub.build: need d >= 1";
  let dist u v = rows.(u).(v) in
  (* --- component S: random global hubset ------------------------- *)
  let in_s, s_list =
    Repro_obs.Span.run ~name:"hitting-set" (fun () ->
  let s_target =
    match s_size with
    | Some s -> min n (max 1 s)
    | None ->
        min n
          (max 1
             (int_of_float
                (ceil
                   (float_of_int n /. float_of_int d
                   *. log (float_of_int (d + 1))))))
  in
  let in_s = Array.make n false in
  let s_count = ref 0 in
  while !s_count < s_target do
    let v = Random.State.int rng n in
    if not in_s.(v) then begin
      in_s.(v) <- true;
      incr s_count
    end
  done;
  let s_list = ref [] in
  for v = n - 1 downto 0 do
    if in_s.(v) then s_list := v :: !s_list
  done;
  Repro_obs.Span.count "s_size" !s_count;
  (in_s, s_list))
  in
  (* --- colouring with d^3 colours (overridable for ablations) ---- *)
  let colour =
    Repro_obs.Span.run ~name:"d3-colouring" (fun () ->
        let colour_count =
          match colors with Some c -> max 1 c | None -> d * d * d
        in
        Repro_obs.Span.count "colours" colour_count;
        Array.init n (fun _ -> Random.State.int rng colour_count))
  in
  (* --- classify every pair ---------------------------------------- *)
  let q : (int * int) list array = Array.make n [] in
  let q_total = ref 0 in
  let r : (int * int) list array = Array.make n [] in
  let r_total = ref 0 in
  (* buckets: (h, a, b) -> edge list (u, v) with u < v *)
  let buckets : (int * int * int, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Repro_obs.Span.run ~name:"conflict-sets" (fun () ->
  (* Chunks partition the [u] range, so [q.(u)]/[r.(u)] have a single
     writer each; everything else a worker touches is chunk-private.
     Workers never call into Span/Metrics — the tallies merge below. *)
  let chunk_results =
    Repro_par.Pool.map_chunks pool ~n (fun ~slot:_ lo hi ->
        let hubs_scratch = Array.make n 0 in
        let cc =
          {
            cc_pairs = 0;
            cc_qpatch = 0;
            cc_rconf = 0;
            cc_charged = 0;
            cc_q = 0;
            cc_r = 0;
            cc_buckets = Hashtbl.create 64;
          }
        in
        for u = lo to hi - 1 do
          for v = u + 1 to n - 1 do
            let duv = dist u v in
            if Dist.is_finite duv then begin
              cc.cc_pairs <- cc.cc_pairs + 1;
              (* valid hubs H_uv *)
              let count = ref 0 in
              for x = 0 to n - 1 do
                if Dist.add rows.(u).(x) rows.(x).(v) = duv then begin
                  hubs_scratch.(!count) <- x;
                  incr count
                end
              done;
              let hcount = !count in
              if hcount >= d then begin
                (* case 1: far/popular pair; covered by S or patched
                   into Q *)
                let covered = ref false in
                for k = 0 to hcount - 1 do
                  if in_s.(hubs_scratch.(k)) then covered := true
                done;
                if not !covered then begin
                  cc.cc_qpatch <- cc.cc_qpatch + 1;
                  q.(u) <- (v, duv) :: q.(u);
                  cc.cc_q <- cc.cc_q + 1
                end
              end
              else begin
                (* case 2/3: small H_uv; check colour collisions *)
                let conflict = ref false in
                for i = 0 to hcount - 1 do
                  for j = i + 1 to hcount - 1 do
                    if colour.(hubs_scratch.(i)) = colour.(hubs_scratch.(j))
                    then conflict := true
                  done
                done;
                if !conflict then begin
                  cc.cc_rconf <- cc.cc_rconf + 1;
                  r.(u) <- (v, duv) :: r.(u);
                  cc.cc_r <- cc.cc_r + 1
                end
                else
                  for k = 0 to hcount - 1 do
                    cc.cc_charged <- cc.cc_charged + 1;
                    let h = hubs_scratch.(k) in
                    let a = rows.(u).(h) in
                    let b = duv - a in
                    let key = (h, a, b) in
                    match Hashtbl.find_opt cc.cc_buckets key with
                    | Some l -> l := (u, v) :: !l
                    | None -> Hashtbl.replace cc.cc_buckets key (ref [ (u, v) ])
                  done
              end
            end
          done
        done;
        cc)
  in
  (* Merge in chunk order: bucket edge lists come out in scan order
     (first by u, then by v), whatever the chunk boundaries were. *)
  Array.iter
    (fun cc ->
      Repro_obs.Span.count "pairs_classified" cc.cc_pairs;
      Repro_obs.Span.count "q_patched" cc.cc_qpatch;
      Repro_obs.Span.count "r_conflicts" cc.cc_rconf;
      Repro_obs.Span.count "pairs_charged" cc.cc_charged;
      q_total := !q_total + cc.cc_q;
      r_total := !r_total + cc.cc_r;
      Hashtbl.iter
        (fun key l ->
          let segment = List.rev !l in
          match Hashtbl.find_opt buckets key with
          | Some acc -> acc := !acc @ segment
          | None -> Hashtbl.replace buckets key (ref segment))
        cc.cc_buckets)
    chunk_results);
  (* --- per-bucket vertex covers -> F_v ---------------------------- *)
  let f : (int, unit) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let f_total = ref 0 in
  let bucket_count = Hashtbl.length buckets in
  let matching_edge_total = ref 0 in
  let add_f v h =
    if not (Hashtbl.mem f.(v) h) then begin
      Hashtbl.replace f.(v) h ();
      incr f_total
    end
  in
  Repro_obs.Span.run ~name:"koenig-covers" (fun () ->
  (* Buckets in sorted (h, a, b) order — a total order independent of
     hash-table internals and chunking — then one pure matching+cover
     computation per bucket, fanned out across the pool. *)
  let bucket_arr =
    let l = Hashtbl.fold (fun key l acc -> (key, !l) :: acc) buckets [] in
    Array.of_list (List.sort compare l)
  in
  let per_bucket =
    Repro_par.Pool.init pool (Array.length bucket_arr) (fun k ->
        let (_, _, _), edges = bucket_arr.(k) in
        (* compress endpoints *)
        let left_ids = Hashtbl.create 16 and right_ids = Hashtbl.create 16 in
        let left_back = ref [] and right_back = ref [] in
        let nl = ref 0 and nr = ref 0 in
        let lid u =
          match Hashtbl.find_opt left_ids u with
          | Some i -> i
          | None ->
              let i = !nl in
              incr nl;
              Hashtbl.replace left_ids u i;
              left_back := u :: !left_back;
              i
        in
        let rid v =
          match Hashtbl.find_opt right_ids v with
          | Some i -> i
          | None ->
              let i = !nr in
              incr nr;
              Hashtbl.replace right_ids v i;
              right_back := v :: !right_back;
              i
        in
        let compressed = List.map (fun (u, v) -> (lid u, rid v)) edges in
        let left_arr = Array.of_list (List.rev !left_back) in
        let right_arr = Array.of_list (List.rev !right_back) in
        let bg =
          Repro_matching.Bipartite.create ~left:!nl ~right:!nr compressed
        in
        let matching = Repro_matching.Hopcroft_karp.solve bg in
        let matched_pairs = ref [] in
        Array.iteri
          (fun i j ->
            if j >= 0 then
              matched_pairs := (left_arr.(i), right_arr.(j)) :: !matched_pairs)
          matching.Repro_matching.Hopcroft_karp.mate_left;
        let cover = Repro_matching.Koenig.of_matching bg matching in
        let cover_vertices =
          List.map (fun i -> left_arr.(i)) cover.Repro_matching.Koenig.left_cover
          @ List.map
              (fun i -> right_arr.(i))
              cover.Repro_matching.Koenig.right_cover
        in
        ( matching.Repro_matching.Hopcroft_karp.size,
          !matched_pairs,
          cover_vertices ))
  in
  (* merge sequentially in sorted-bucket order *)
  Array.iteri
    (fun k (size, matched_pairs, cover_vertices) ->
      let (h, a, b), _ = bucket_arr.(k) in
      Repro_obs.Span.count "matching_augmentations" size;
      matching_edge_total := !matching_edge_total + size;
      bucket_matchings := (h, a, b, matched_pairs) :: !bucket_matchings;
      List.iter (fun v -> add_f v h) cover_vertices)
    per_bucket;
  Repro_obs.Span.count "buckets" bucket_count;
  Repro_obs.Span.count "cover_size" !f_total);
  (* --- assemble hubsets ------------------------------------------- *)
  let final =
    Repro_obs.Span.run ~name:"hubsets" (fun () ->
  let labels : (int * int) list array = Array.make n [] in
  (* one writer per vertex; Hub_label.make sorts and dedups, so the
     accumulation order (including f's hash order) never shows *)
  Repro_par.Pool.parallel_for pool ~n (fun ~slot:_ lo hi ->
      for v = lo to hi - 1 do
        let add x =
          if Dist.is_finite rows.(v).(x) then
            labels.(v) <- (x, rows.(v).(x)) :: labels.(v)
        in
        add v;
        List.iter add !s_list;
        List.iter (fun (x, dvx) -> labels.(v) <- (x, dvx) :: labels.(v)) q.(v);
        List.iter (fun (x, dvx) -> labels.(v) <- (x, dvx) :: labels.(v)) r.(v);
        Hashtbl.iter
          (fun h () ->
            add h;
            iter_adj h (fun nb -> add nb))
          f.(v)
      done);
  let final = Hub_label.make ~n labels in
  Repro_obs.Span.count "total_hubs" (Hub_label.total_size final);
  final)
  in
  ( final,
    {
      d;
      n;
      global_size = List.length !s_list;
      q_total = !q_total;
      r_total = !r_total;
      f_total = !f_total;
      bucket_count;
      matching_edge_total = !matching_edge_total;
      total_hubs = Hub_label.total_size final;
    },
    { colour_of = colour; bucket_matchings = !bucket_matchings } )

let build_checked ~rng ?d ?colors ?s_size ?pool g =
  Repro_obs.Span.run ~name:"rs-hub.build" (fun () ->
      let n = Graph.n g in
      let d = match d with Some d -> d | None -> default_d n in
      let rows =
        Repro_obs.Span.run ~name:"distance-rows" (fun () ->
            Traversal.bfs_rows ?pool g)
      in
      let result =
        build_on ~rng ~d ?colors ?s_size ?pool ~n ~rows
          ~iter_adj:(fun v f -> Graph.iter_neighbors g v f)
          ()
      in
      let _, stats, _ = result in
      Repro_obs.Events.emit_ambient "rs_hub.build.done"
        [
          ("n", Repro_obs.Events.Int n);
          ("d", Repro_obs.Events.Int d);
          ("total_hubs", Repro_obs.Events.Int stats.total_hubs);
        ];
      result)

let build ~rng ?d ?colors ?s_size ?pool g =
  let labels, stats, _ = build_checked ~rng ?d ?colors ?s_size ?pool g in
  (labels, stats)

let build_w ~rng ?d ?pool g =
  List.iter
    (fun (_, _, w) ->
      if w > 1 then invalid_arg "Rs_hub.build_w: weights must be 0/1")
    (Wgraph.edges g);
  Repro_obs.Span.run ~name:"rs-hub.build" (fun () ->
      let n = Wgraph.n g in
      let d = match d with Some d -> d | None -> default_d n in
      let rows =
        Repro_obs.Span.run ~name:"distance-rows" (fun () ->
            Dijkstra.distance_rows ?pool g)
      in
      let labels, stats, _ =
        build_on ~rng ~d ?pool ~n ~rows
          ~iter_adj:(fun v f -> Wgraph.iter_neighbors g v (fun u _ -> f u))
          ()
      in
      (labels, stats))

let build_sparse ~rng ?d ?pool g =
  let n = Graph.n g in
  let m = Graph.m g in
  let k = max 1 ((2 * m + n - 1) / max n 1) in
  let split = Subdivide.split_unweighted g ~k in
  let labels', stats = build_w ~rng ?d ?pool split.Subdivide.graph in
  (* project back: hubs of the representative copy, hub vertices mapped
     to their originating vertex *)
  let labels =
    Array.init n (fun v ->
        let rep = split.Subdivide.representative.(v) in
        List.map
          (fun (h, dist) -> (split.Subdivide.origin.(h), dist))
          (Hub_label.hub_list labels' rep))
  in
  (* distances are preserved by the weight-0 links, but two distinct
     copies of one original vertex may both appear as hubs with the
     same distance; Hub_label.make merges them *)
  (Hub_label.make ~n labels, stats)

(* Lemma 4.2 verification: for each (a, b) and colour c, the union
   G^c_{a,b} of the per-hub maximum matchings MM^h_{a,b} (over hubs h
   of colour c) must be edge-partitioned into those matchings, each of
   which is *induced* in the union — the Ruzsa–Szemerédi structure the
   proof charges against RS(2n). Pairs live in a bipartite universe, so
   we realise the union on 2n vertices (left u, right n + v). *)
let lemma42_holds ~n data =
  let groups : (int * int * int, (int * int) list list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (h, a, b, pairs) ->
      if pairs <> [] then begin
        let key = (a, b, data.colour_of.(h)) in
        let shifted = List.map (fun (u, v) -> (u, n + v)) pairs in
        match Hashtbl.find_opt groups key with
        | Some l -> l := shifted :: !l
        | None -> Hashtbl.replace groups key (ref [ shifted ])
      end)
    data.bucket_matchings;
  let ok = ref true in
  Hashtbl.iter
    (fun _ matchings ->
      let edges = List.concat !matchings in
      match Repro_graph.Graph.of_edges ~n:(2 * n) edges with
      | g ->
          if
            not
              (List.for_all
                 (Repro_rs.Induced_matching.is_induced g)
                 !matchings)
          then ok := false
      | exception Invalid_argument _ ->
          (* duplicate edge across two matchings of one group: the
             partition property itself failed *)
          ok := false)
    groups;
  !ok
