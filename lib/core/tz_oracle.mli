(** Thorup–Zwick approximate distance oracle for [k = 2] (stretch 3) —
    the classical point on the approximate side of the sparse-graph
    oracle tradeoff the introduction discusses ([SVY09], [CP10] study
    exactly when such oracles can be made exact).

    Structure: a random sample [A] of expected size [√(n ln n)]; every
    vertex stores its distances to all of [A], its nearest sampled
    vertex [p(v)], and its *bunch* [B(v) = {w : d(v,w) < d(v,A)}].
    Query: exact when [v ∈ B(u)] or [u ∈ B(v)]; otherwise
    [d(u,p(u)) + d(p(u),v)], which is at most [3·d(u,v)].

    Space is [O(Σ|B(v)| + |A|·n) = Õ(n^{3/2})] words in expectation —
    between the hub labeling and the full matrix of {!Oracle}. *)

open Repro_graph

type t

val build : rng:Random.State.t -> Graph.t -> t

val query : t -> int -> int -> int
(** Estimated distance: never below the true distance, at most 3× it
    (for connected pairs; {!Dist.inf} when provably disconnected). *)

val space_words : t -> int
val sample_size : t -> int
val avg_bunch_size : t -> float

val backend : t -> Repro_obs.Backend.t
(** The oracle as a uniform serving backend (name ["tz-stretch3"]) —
    the one approximate backend behind {!Repro_obs.Backend.S}. Traces
    report [|B(u)| + |B(v)|] as [entries_scanned]. *)

val max_stretch : Graph.t -> t -> float
(** Exhaustive maximum ratio estimate/true over connected pairs
    (test-scale). *)
