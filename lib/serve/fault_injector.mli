(** Deterministic (seeded) fault injection for hardening tests.

    Wraps an oracle function and corrupts, drops or fails a
    configurable fraction of calls, or perturbs label entries
    wholesale. Given the seed and the call sequence, the injected
    faults are fully reproducible, so tests against
    {!Resilient_oracle} are deterministic. *)

open Repro_hub

exception Injected_failure

type mode =
  | Corrupt  (** return a wrong finite distance (off by a few, either way) *)
  | Drop  (** claim the pair is disconnected *)
  | Fail  (** raise {!Injected_failure} *)

type t

val create : seed:int -> fraction:float -> mode -> t
(** @raise Invalid_argument unless [0 <= fraction <= 1]. *)

val wrap : t -> (int -> int -> int) -> int -> int -> int
(** [wrap t f] behaves as [f] except on the injected fraction of
    calls. *)

val calls : t -> int
val injected : t -> int

val corrupt_labels : seed:int -> fraction:float -> Hub_label.t -> Hub_label.t
(** Off-by-one perturbation of a fraction of stored distances; the
    result is structurally valid but no longer exact — what a
    bit-rotted label file looks like to {!Hub_verify}. *)
