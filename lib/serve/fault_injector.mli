(** Deterministic (seeded) fault injection for hardening tests.

    Wraps an oracle function and corrupts, drops or fails a
    configurable fraction of calls, or perturbs label entries
    wholesale. Given the seed and the call sequence, the injected
    faults are fully reproducible, so tests against
    {!Resilient_oracle} are deterministic. *)

open Repro_hub

exception Injected_failure

type mode =
  | Corrupt  (** return a wrong finite distance (off by a few, either way) *)
  | Drop  (** claim the pair is disconnected *)
  | Fail  (** raise {!Injected_failure} *)

type t

val create : seed:int -> fraction:float -> mode -> t
(** @raise Invalid_argument unless [0 <= fraction <= 1]. *)

val wrap : t -> (int -> int -> int) -> int -> int -> int
(** [wrap t f] behaves as [f] except on the injected fraction of
    calls. *)

val calls : t -> int
val injected : t -> int

val corrupt_labels : seed:int -> fraction:float -> Hub_label.t -> Hub_label.t
(** Off-by-one perturbation of a fraction of stored distances; the
    result is structurally valid but no longer exact — what a
    bit-rotted label file looks like to {!Hub_verify}. *)

(** {1 Process-level chaos}

    Deterministic chaos plans for the sharded serving tier: a shard
    worker carrying a plan misbehaves exactly once, just before writing
    its [after_frames]-th response frame. Triggering on a frame count
    (not on time) keeps kill/restart scenarios reproducible run to run;
    the supervisor's reaction is what the [@shard-smoke] chaos suite
    locks in. The plan is pure data — applying it (exiting, hanging,
    mangling bytes) is the worker loop's job, since only it holds the
    file descriptors. *)

type proc_fault =
  | Kill  (** exit abruptly, as if OOM-killed — no reply, EOF on the pipe *)
  | Hang  (** stop reading and writing; only a deadline can detect it *)
  | Truncate_frame  (** write half a response frame, then die mid-write *)
  | Corrupt_frame  (** flip payload bytes; the frame arrives but won't parse *)
  | Slow_write  (** dribble the response a byte at a time (slow-loris) *)

type chaos = { after_frames : int; fault : proc_fault }

val chaos : after_frames:int -> proc_fault -> chaos
(** @raise Invalid_argument unless [after_frames >= 1]. *)

val chaos_of_string : string -> (chaos, string) result
(** Parse ["<fault>@<frames>"], e.g. ["kill@8"], ["slow@3"]; faults are
    [kill], [hang], [truncate], [corrupt], [slow]. *)

val chaos_to_string : chaos -> string
