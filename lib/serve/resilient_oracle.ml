open Repro_graph
open Repro_hub
module Backend = Repro_obs.Backend
module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Ops = Repro_obs.Ops

type source = Primary | Bidirectional | Bfs

let source_name = function
  | Primary -> "primary"
  | Bidirectional -> "bidirectional"
  | Bfs -> "bfs"

type stats = {
  queries : int;
  primary_answers : int;
  fallback_answers : int;
  spot_checks : int;
  disagreements : int;
  faults : int;
  budget_exhausted : int;
  validation_failures : int;
  quarantines : int;
}

exception Over_budget

(* Live counter handles into a caller-supplied registry, mirroring the
   mutable stats fields one for one (see [stats] / the differential
   test in test_obs.ml). *)
type emitters = {
  e_queries : Metrics.counter;
  e_primary_answers : Metrics.counter;
  e_fallback_answers : Metrics.counter;
  e_spot_checks : Metrics.counter;
  e_disagreements : Metrics.counter;
  e_faults : Metrics.counter;
  e_budget_exhausted : Metrics.counter;
  e_validation_failures : Metrics.counter;
  e_quarantines : Metrics.counter;
}

let emitters_of registry =
  let c name = Metrics.counter registry ("resilient." ^ name) in
  {
    e_queries = c "queries";
    e_primary_answers = c "primary_answers";
    e_fallback_answers = c "fallback_answers";
    e_spot_checks = c "spot_checks";
    e_disagreements = c "disagreements";
    e_faults = c "faults";
    e_budget_exhausted = c "budget_exhausted";
    e_validation_failures = c "validation_failures";
    e_quarantines = c "quarantines";
  }

type t = {
  graph : Graph.t;
  primary : Backend.t option;
  primary_ops : Backend.ops option;
  emit : emitters option;
  step_budget : int;
  spot_check_every : int;
  quarantine_after : int;
  mutable strikes : int;
  mutable is_quarantined : bool;
  mutable queries : int;
  mutable primary_attempts : int;
  mutable primary_answers : int;
  mutable fallback_answers : int;
  mutable spot_checks : int;
  mutable disagreements : int;
  mutable faults : int;
  mutable budget_exhausted : int;
  mutable validation_failures : int;
  mutable quarantines : int;
}

let note t sel = match t.emit with Some e -> Metrics.incr (sel e) | None -> ()

let make ?(step_budget = max_int) ?(spot_check_every = 1)
    ?(quarantine_after = 3) ?metrics ?primary_ops ~primary graph =
  if step_budget <= 0 then
    invalid_arg "Resilient_oracle: step_budget must be positive";
  if quarantine_after <= 0 then
    invalid_arg "Resilient_oracle: quarantine_after must be positive";
  let primary_ops =
    match (primary_ops, primary) with
    | (Some _ as o), _ -> o
    | None, Some p -> Some (Backend.lift ~n:(Graph.n graph) p)
    | None, None -> None
  in
  {
    graph;
    primary;
    primary_ops;
    emit = Option.map emitters_of metrics;
    step_budget;
    spot_check_every;
    quarantine_after;
    strikes = 0;
    is_quarantined = false;
    queries = 0;
    primary_attempts = 0;
    primary_answers = 0;
    fallback_answers = 0;
    spot_checks = 0;
    disagreements = 0;
    faults = 0;
    budget_exhausted = 0;
    validation_failures = 0;
    quarantines = 0;
  }

(* Budget-capped primaries over the two label stores. The scan budget
   caps |S(u)| + |S(v)|; exceeding it raises [Over_budget], which the
   serving loop treats as a clean skip (no strike). *)

let budget_capped base scan_cost = function
  | None -> base
  | Some budget ->
      let guard u v = if scan_cost u v > budget then raise Over_budget in
      let detailed u v =
        guard u v;
        Backend.query_detailed base u v
      in
      Backend.make ~name:(Backend.name base)
        ~space_words:(Backend.space_words base) ~detailed
        (fun u v ->
          guard u v;
          Backend.query base u v)

let hub_primary ?step_budget labels =
  budget_capped (Hub_label.backend labels)
    (fun u v -> Hub_label.size labels u + Hub_label.size labels v)
    step_budget

let flat_primary ?step_budget store =
  budget_capped (Flat_hub.backend store)
    (fun u v -> Flat_hub.size store u + Flat_hub.size store v)
    step_budget

let mmap_primary ?step_budget store =
  budget_capped (Mmap_hub.backend store)
    (fun u v -> Mmap_hub.size store u + Mmap_hub.size store v)
    step_budget

let compact_primary ?step_budget store =
  budget_capped (Compact_hub.backend store)
    (fun u v -> Compact_hub.size store u + Compact_hub.size store v)
    step_budget

let create ?step_budget ?spot_check_every ?quarantine_after ?metrics ?labels
    ?primary ?primary_ops g =
  let primary =
    match (primary, labels) with
    | Some _, Some _ ->
        invalid_arg "Resilient_oracle.create: pass ~labels or ~primary, not both"
    | Some b, None -> Some b
    | None, Some l ->
        if Hub_label.n l <> Graph.n g then
          invalid_arg
            "Resilient_oracle.create: labeling and graph disagree on n";
        Some (hub_primary ?step_budget l)
    | None, None -> None
  in
  make ?step_budget ?spot_check_every ?quarantine_after ?metrics ?primary_ops
    ~primary g

let strike t =
  t.strikes <- t.strikes + 1;
  if (not t.is_quarantined) && t.strikes >= t.quarantine_after then begin
    t.is_quarantined <- true;
    t.quarantines <- t.quarantines + 1;
    note t (fun e -> e.e_quarantines)
  end

(* The chain below the primary. Plain BFS is the unbudgeted final
   authority: it always terminates with the exact answer. *)
let compute_fallback t u v =
  match Budget_search.bidirectional t.graph ~budget:t.step_budget u v with
  | Some d -> (d, Bidirectional)
  | None ->
      t.budget_exhausted <- t.budget_exhausted + 1;
      note t (fun e -> e.e_budget_exhausted);
      ((Traversal.bfs t.graph u).(v), Bfs)

let serve_fallback t u v =
  let d, src = compute_fallback t u v in
  t.fallback_answers <- t.fallback_answers + 1;
  note t (fun e -> e.e_fallback_answers);
  (d, src)

let query_detailed t u v =
  let n = Graph.n t.graph in
  if u < 0 || u >= n || v < 0 || v >= n then begin
    t.validation_failures <- t.validation_failures + 1;
    note t (fun e -> e.e_validation_failures);
    invalid_arg "Resilient_oracle.query: vertex out of range"
  end;
  t.queries <- t.queries + 1;
  note t (fun e -> e.e_queries);
  match t.primary with
  | Some p when not t.is_quarantined -> (
      t.primary_attempts <- t.primary_attempts + 1;
      match Backend.query p u v with
      | exception Over_budget ->
          t.budget_exhausted <- t.budget_exhausted + 1;
          note t (fun e -> e.e_budget_exhausted);
          serve_fallback t u v
      | exception _ ->
          t.faults <- t.faults + 1;
          note t (fun e -> e.e_faults);
          strike t;
          serve_fallback t u v
      | d ->
          let checked =
            t.spot_check_every > 0
            && t.primary_attempts mod t.spot_check_every = 0
          in
          if not checked then begin
            t.primary_answers <- t.primary_answers + 1;
            note t (fun e -> e.e_primary_answers);
            (d, Primary)
          end
          else begin
            t.spot_checks <- t.spot_checks + 1;
            note t (fun e -> e.e_spot_checks);
            let truth, src = compute_fallback t u v in
            if truth = d then begin
              t.primary_answers <- t.primary_answers + 1;
              note t (fun e -> e.e_primary_answers);
              (d, Primary)
            end
            else begin
              t.disagreements <- t.disagreements + 1;
              note t (fun e -> e.e_disagreements);
              strike t;
              t.fallback_answers <- t.fallback_answers + 1;
              note t (fun e -> e.e_fallback_answers);
              (truth, src)
            end
          end)
  | _ -> serve_fallback t u v

let query t u v = fst (query_detailed t u v)

(* Batched queries. The primary's answers are pure given an honest
   backend, so they can be precomputed in parallel; every piece of
   accounting — counters, strikes, quarantine flips, fallback and
   spot-check work — then replays sequentially in pair order, making
   the stats trajectory indistinguishable from a [query_detailed]
   loop. *)

type primary_outcome = P_ans of int | P_over | P_exn

let query_many_detailed ?pool t pairs =
  match pool with
  | None -> Array.map (fun (u, v) -> query_detailed t u v) pairs
  | Some pool ->
      let m = Array.length pairs in
      let n = Graph.n t.graph in
      (* quarantine is permanent, so the primary is live for the whole
         batch iff it is live now; mid-batch strikes are honoured by
         the replay below *)
      let pre =
        match t.primary with
        | Some p when not t.is_quarantined ->
            let out = Array.make m P_exn in
            Repro_par.Pool.parallel_for pool ~n:m (fun ~slot:_ lo hi ->
                for k = lo to hi - 1 do
                  let u, v = pairs.(k) in
                  if u >= 0 && u < n && v >= 0 && v < n then
                    out.(k) <-
                      (match Backend.query p u v with
                      | d -> P_ans d
                      | exception Over_budget -> P_over
                      | exception _ -> P_exn)
                done);
            Some out
        | _ -> None
      in
      Array.mapi
        (fun k (u, v) ->
          if u < 0 || u >= n || v < 0 || v >= n then begin
            t.validation_failures <- t.validation_failures + 1;
            note t (fun e -> e.e_validation_failures);
            invalid_arg "Resilient_oracle.query: vertex out of range"
          end;
          t.queries <- t.queries + 1;
          note t (fun e -> e.e_queries);
          match pre with
          | Some out when not t.is_quarantined -> (
              t.primary_attempts <- t.primary_attempts + 1;
              match out.(k) with
              | P_over ->
                  t.budget_exhausted <- t.budget_exhausted + 1;
                  note t (fun e -> e.e_budget_exhausted);
                  serve_fallback t u v
              | P_exn ->
                  t.faults <- t.faults + 1;
                  note t (fun e -> e.e_faults);
                  strike t;
                  serve_fallback t u v
              | P_ans d ->
                  let checked =
                    t.spot_check_every > 0
                    && t.primary_attempts mod t.spot_check_every = 0
                  in
                  if not checked then begin
                    t.primary_answers <- t.primary_answers + 1;
                    note t (fun e -> e.e_primary_answers);
                    (d, Primary)
                  end
                  else begin
                    t.spot_checks <- t.spot_checks + 1;
                    note t (fun e -> e.e_spot_checks);
                    let truth, src = compute_fallback t u v in
                    if truth = d then begin
                      t.primary_answers <- t.primary_answers + 1;
                      note t (fun e -> e.e_primary_answers);
                      (d, Primary)
                    end
                    else begin
                      t.disagreements <- t.disagreements + 1;
                      note t (fun e -> e.e_disagreements);
                      strike t;
                      t.fallback_answers <- t.fallback_answers + 1;
                      note t (fun e -> e.e_fallback_answers);
                      (truth, src)
                    end
                  end)
          | _ -> serve_fallback t u v)
        pairs

let query_many ?pool t pairs =
  Array.map fst (query_many_detailed ?pool t pairs)

let fallback_hops = function Primary -> 0 | Bidirectional -> 1 | Bfs -> 2

(* The aggregate-ops fallback: exact BFS rows reduced with the shared
   Ops helpers, so its tie-breaking matches every fast path. Aggregates
   skip the bidirectional stage — they need whole rows, which is
   exactly what one BFS per source yields. *)
let fallback_response t req =
  let row s = Traversal.bfs t.graph s in
  let pairs s = Ops.row_pairs (row s) in
  let ecc_of s =
    match Ops.farthest_of (pairs s) with Some (_, d) -> d | None -> 0
  in
  match req with
  | Ops.Dist { u; v } -> Ops.R_dist (row u).(v)
  | Ops.Batch ps ->
      Ops.R_dists (Array.map (fun (u, v) -> (row u).(v)) ps)
  | Ops.One_to_many { source; targets } ->
      let r = row source in
      Ops.R_dists (Array.map (fun w -> r.(w)) targets)
  | Ops.Many_to_many { sources; targets } ->
      Ops.R_matrix
        (Array.map
           (fun s ->
             let r = row s in
             Array.map (fun w -> r.(w)) targets)
           sources)
  | Ops.Top_k_nearest { source; k } ->
      Ops.R_nearest (Ops.k_nearest ~k (pairs source))
  | Ops.Eccentricity v -> Ops.R_ecc (ecc_of v)
  | Ops.Farthest v -> (
      match Ops.farthest_of (pairs v) with
      | Some (vertex, dist) -> Ops.R_farthest { vertex; dist }
      | None -> Ops.R_farthest { vertex = v; dist = 0 })
  | Ops.Diameter_radius ->
      let n = Graph.n t.graph in
      if n = 0 then Ops.R_diam_rad { diameter = 0; radius = 0 }
      else begin
        let dia = ref 0 and rad = ref max_int in
        for v = 0 to n - 1 do
          let e = ecc_of v in
          if e > !dia then dia := e;
          if e < !rad then rad := e
        done;
        Ops.R_diam_rad { diameter = !dia; radius = !rad }
      end

let serve_fallback_op t req =
  let resp = fallback_response t req in
  t.fallback_answers <- t.fallback_answers + 1;
  note t (fun e -> e.e_fallback_answers);
  (resp, Bfs)

let op t req =
  (match Ops.validate ~n:(Graph.n t.graph) req with
  | Ok () -> ()
  | Error msg ->
      t.validation_failures <- t.validation_failures + 1;
      note t (fun e -> e.e_validation_failures);
      invalid_arg ("Resilient_oracle.op: " ^ msg));
  match req with
  | Ops.Dist { u; v } ->
      let d, src = query_detailed t u v in
      (Ops.R_dist d, src)
  | Ops.Batch pairs ->
      (* point queries keep their per-pair accounting (budgets, spot
         checks, strikes); the reported source is the deepest stage
         any pair degraded to *)
      let src = ref Primary in
      let ds =
        Array.map
          (fun (u, v) ->
            let d, s = query_detailed t u v in
            if fallback_hops s > fallback_hops !src then src := s;
            d)
          pairs
      in
      (Ops.R_dists ds, !src)
  | _ -> (
      (* an aggregate counts as one accepted query; degradation is
         all-or-nothing per request *)
      t.queries <- t.queries + 1;
      note t (fun e -> e.e_queries);
      match t.primary_ops with
      | Some o when not t.is_quarantined -> (
          t.primary_attempts <- t.primary_attempts + 1;
          match Backend.op o req with
          | exception Over_budget ->
              t.budget_exhausted <- t.budget_exhausted + 1;
              note t (fun e -> e.e_budget_exhausted);
              serve_fallback_op t req
          | exception _ ->
              t.faults <- t.faults + 1;
              note t (fun e -> e.e_faults);
              strike t;
              serve_fallback_op t req
          | resp ->
              let checked =
                t.spot_check_every > 0
                && t.primary_attempts mod t.spot_check_every = 0
              in
              if not checked then begin
                t.primary_answers <- t.primary_answers + 1;
                note t (fun e -> e.e_primary_answers);
                (resp, Primary)
              end
              else begin
                t.spot_checks <- t.spot_checks + 1;
                note t (fun e -> e.e_spot_checks);
                let truth = fallback_response t req in
                if Ops.equal_response truth resp then begin
                  t.primary_answers <- t.primary_answers + 1;
                  note t (fun e -> e.e_primary_answers);
                  (resp, Primary)
                end
                else begin
                  t.disagreements <- t.disagreements + 1;
                  note t (fun e -> e.e_disagreements);
                  strike t;
                  t.fallback_answers <- t.fallback_answers + 1;
                  note t (fun e -> e.e_fallback_answers);
                  (truth, Bfs)
                end
              end)
      | _ -> serve_fallback_op t req)

let stats t =
  {
    queries = t.queries;
    primary_answers = t.primary_answers;
    fallback_answers = t.fallback_answers;
    spot_checks = t.spot_checks;
    disagreements = t.disagreements;
    faults = t.faults;
    budget_exhausted = t.budget_exhausted;
    validation_failures = t.validation_failures;
    quarantines = t.quarantines;
  }

let quarantined t = t.is_quarantined
let primary_name t = Option.map Backend.name t.primary

let backend t =
  let name =
    match primary_name t with
    | Some p -> "resilient(" ^ p ^ ")"
    | None -> "resilient(search)"
  in
  let space =
    (2 * Graph.m t.graph) + Graph.n t.graph
    + (match t.primary with Some p -> Backend.space_words p | None -> 0)
  in
  let detailed u v =
    let d, src = query_detailed t u v in
    ( d,
      Trace.make ~fallback_hops:(fallback_hops src) ~source:(source_name src)
        ~u ~v ~dist:d () )
  in
  Backend.make ~name ~space_words:space ~detailed (query t)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "queries=%d primary=%d fallback=%d spot_checks=%d disagreements=%d \
     faults=%d budget_exhausted=%d validation_failures=%d quarantines=%d"
    s.queries s.primary_answers s.fallback_answers s.spot_checks
    s.disagreements s.faults s.budget_exhausted s.validation_failures
    s.quarantines
