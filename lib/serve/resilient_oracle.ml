open Repro_graph
open Repro_hub

type source = Primary | Bidirectional | Bfs

let source_name = function
  | Primary -> "primary"
  | Bidirectional -> "bidirectional"
  | Bfs -> "bfs"

type stats = {
  queries : int;
  primary_answers : int;
  fallback_answers : int;
  spot_checks : int;
  disagreements : int;
  faults : int;
  budget_exhausted : int;
  validation_failures : int;
  quarantines : int;
}

exception Over_budget

type t = {
  graph : Graph.t;
  prim_name : string option;
  primary : (int -> int -> int) option;
  step_budget : int;
  spot_check_every : int;
  quarantine_after : int;
  mutable strikes : int;
  mutable is_quarantined : bool;
  mutable queries : int;
  mutable primary_attempts : int;
  mutable primary_answers : int;
  mutable fallback_answers : int;
  mutable spot_checks : int;
  mutable disagreements : int;
  mutable faults : int;
  mutable budget_exhausted : int;
  mutable validation_failures : int;
  mutable quarantines : int;
}

let make ?(step_budget = max_int) ?(spot_check_every = 1)
    ?(quarantine_after = 3) ~prim_name ~primary graph =
  if step_budget <= 0 then
    invalid_arg "Resilient_oracle: step_budget must be positive";
  if quarantine_after <= 0 then
    invalid_arg "Resilient_oracle: quarantine_after must be positive";
  {
    graph;
    prim_name;
    primary;
    step_budget;
    spot_check_every;
    quarantine_after;
    strikes = 0;
    is_quarantined = false;
    queries = 0;
    primary_attempts = 0;
    primary_answers = 0;
    fallback_answers = 0;
    spot_checks = 0;
    disagreements = 0;
    faults = 0;
    budget_exhausted = 0;
    validation_failures = 0;
    quarantines = 0;
  }

let create ?step_budget ?spot_check_every ?quarantine_after ?labels g =
  match labels with
  | None ->
      make ?step_budget ?spot_check_every ?quarantine_after ~prim_name:None
        ~primary:None g
  | Some l ->
      if Hub_label.n l <> Graph.n g then
        invalid_arg "Resilient_oracle.create: labeling and graph disagree on n";
      let budget = Option.value step_budget ~default:max_int in
      let q u v =
        if Hub_label.size l u + Hub_label.size l v > budget then
          raise Over_budget;
        Hub_label.query l u v
      in
      make ?step_budget ?spot_check_every ?quarantine_after
        ~prim_name:(Some "hub-labeling") ~primary:(Some q) g

let create_flat ?step_budget ?spot_check_every ?quarantine_after ~flat g =
  if Flat_hub.n flat <> Graph.n g then
    invalid_arg "Resilient_oracle.create_flat: store and graph disagree on n";
  let budget = Option.value step_budget ~default:max_int in
  let q u v =
    if Flat_hub.size flat u + Flat_hub.size flat v > budget then
      raise Over_budget;
    Flat_hub.query flat u v
  in
  make ?step_budget ?spot_check_every ?quarantine_after
    ~prim_name:(Some "flat-hub-labeling") ~primary:(Some q) g

let with_primary ?step_budget ?spot_check_every ?quarantine_after ~name f g =
  make ?step_budget ?spot_check_every ?quarantine_after ~prim_name:(Some name)
    ~primary:(Some f) g

let strike t =
  t.strikes <- t.strikes + 1;
  if (not t.is_quarantined) && t.strikes >= t.quarantine_after then begin
    t.is_quarantined <- true;
    t.quarantines <- t.quarantines + 1
  end

(* The chain below the primary. Plain BFS is the unbudgeted final
   authority: it always terminates with the exact answer. *)
let compute_fallback t u v =
  match Budget_search.bidirectional t.graph ~budget:t.step_budget u v with
  | Some d -> (d, Bidirectional)
  | None ->
      t.budget_exhausted <- t.budget_exhausted + 1;
      ((Traversal.bfs t.graph u).(v), Bfs)

let serve_fallback t u v =
  let d, src = compute_fallback t u v in
  t.fallback_answers <- t.fallback_answers + 1;
  (d, src)

let query_detailed t u v =
  let n = Graph.n t.graph in
  if u < 0 || u >= n || v < 0 || v >= n then begin
    t.validation_failures <- t.validation_failures + 1;
    invalid_arg "Resilient_oracle.query: vertex out of range"
  end;
  t.queries <- t.queries + 1;
  match t.primary with
  | Some p when not t.is_quarantined -> (
      t.primary_attempts <- t.primary_attempts + 1;
      match p u v with
      | exception Over_budget ->
          t.budget_exhausted <- t.budget_exhausted + 1;
          serve_fallback t u v
      | exception _ ->
          t.faults <- t.faults + 1;
          strike t;
          serve_fallback t u v
      | d ->
          let checked =
            t.spot_check_every > 0
            && t.primary_attempts mod t.spot_check_every = 0
          in
          if not checked then begin
            t.primary_answers <- t.primary_answers + 1;
            (d, Primary)
          end
          else begin
            t.spot_checks <- t.spot_checks + 1;
            let truth, src = compute_fallback t u v in
            if truth = d then begin
              t.primary_answers <- t.primary_answers + 1;
              (d, Primary)
            end
            else begin
              t.disagreements <- t.disagreements + 1;
              strike t;
              t.fallback_answers <- t.fallback_answers + 1;
              (truth, src)
            end
          end)
  | _ -> serve_fallback t u v

let query t u v = fst (query_detailed t u v)

let stats t =
  {
    queries = t.queries;
    primary_answers = t.primary_answers;
    fallback_answers = t.fallback_answers;
    spot_checks = t.spot_checks;
    disagreements = t.disagreements;
    faults = t.faults;
    budget_exhausted = t.budget_exhausted;
    validation_failures = t.validation_failures;
    quarantines = t.quarantines;
  }

let quarantined t = t.is_quarantined
let primary_name t = t.prim_name

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "queries=%d primary=%d fallback=%d spot_checks=%d disagreements=%d \
     faults=%d budget_exhausted=%d validation_failures=%d quarantines=%d"
    s.queries s.primary_answers s.fallback_answers s.spot_checks
    s.disagreements s.faults s.budget_exhausted s.validation_failures
    s.quarantines
