open Repro_graph

let bidirectional g ~budget s t =
  let n = Graph.n g in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Budget_search.bidirectional";
  if s = t then Some 0
  else begin
    let dist_f = Array.make n (-1) and dist_b = Array.make n (-1) in
    dist_f.(s) <- 0;
    dist_b.(t) <- 0;
    let frontier_f = ref [ s ] and frontier_b = ref [ t ] in
    let df = ref 0 and db = ref 0 in
    let steps = ref 0 in
    let best = ref Dist.inf in
    (* Expand one full BFS level of one side. Levels are completed in
       order, so [dist] holds exact distances for every labeled vertex;
       once [df + db >= best] no undiscovered s-t path can be shorter
       than [best] (any such path of length L <= df + db has a vertex
       labeled by both sides, whose label sum L was already folded into
       [best] when the later of the two labelings happened). *)
    let expand frontier dist other depth =
      let next = ref [] in
      List.iter
        (fun u ->
          incr steps;
          if !steps > budget then raise Exit;
          Graph.iter_neighbors g u (fun v ->
              if dist.(v) < 0 then begin
                dist.(v) <- !depth + 1;
                if other.(v) >= 0 then
                  best := min !best (dist.(v) + other.(v));
                next := v :: !next
              end))
        !frontier;
      frontier := !next;
      incr depth
    in
    match
      while !frontier_f <> [] && !frontier_b <> [] && !df + !db < !best do
        if List.length !frontier_f <= List.length !frontier_b then
          expand frontier_f dist_f dist_b df
        else expand frontier_b dist_b dist_f db
      done
    with
    | () -> Some (if Dist.is_finite !best then !best else Dist.inf)
    | exception Exit -> None
  end
