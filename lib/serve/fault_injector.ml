open Repro_graph
open Repro_hub

exception Injected_failure

type mode = Corrupt | Drop | Fail

type t = {
  rng : Random.State.t;
  fraction : float;
  mode : mode;
  mutable calls : int;
  mutable injected : int;
}

let create ~seed ~fraction mode =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault_injector.create: fraction must lie in [0, 1]";
  {
    rng = Random.State.make [| seed; 0x0FA17 |];
    fraction;
    mode;
    calls = 0;
    injected = 0;
  }

let calls t = t.calls
let injected t = t.injected

let wrap t f u v =
  t.calls <- t.calls + 1;
  if Random.State.float t.rng 1.0 >= t.fraction then f u v
  else begin
    t.injected <- t.injected + 1;
    match t.mode with
    | Fail -> raise Injected_failure
    | Drop -> Dist.inf
    | Corrupt ->
        let delta = 1 + Random.State.int t.rng 3 in
        let d = f u v in
        if not (Dist.is_finite d) then delta
        else if d > delta && Random.State.bool t.rng then d - delta
        else d + delta
  end

let corrupt_labels ~seed ~fraction labels =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault_injector.corrupt_labels: fraction must lie in [0, 1]";
  let rng = Random.State.make [| seed; 0xC0B0 |] in
  let n = Hub_label.n labels in
  let sets =
    Array.init n (fun v ->
        List.map
          (fun (h, d) ->
            if Random.State.float rng 1.0 < fraction then (h, d + 1) else (h, d))
          (Hub_label.hub_list labels v))
  in
  Hub_label.make ~n sets
