open Repro_graph
open Repro_hub

exception Injected_failure

type mode = Corrupt | Drop | Fail

type t = {
  rng : Random.State.t;
  fraction : float;
  mode : mode;
  mutable calls : int;
  mutable injected : int;
}

let create ~seed ~fraction mode =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault_injector.create: fraction must lie in [0, 1]";
  {
    rng = Random.State.make [| seed; 0x0FA17 |];
    fraction;
    mode;
    calls = 0;
    injected = 0;
  }

let calls t = t.calls
let injected t = t.injected

let wrap t f u v =
  t.calls <- t.calls + 1;
  if Random.State.float t.rng 1.0 >= t.fraction then f u v
  else begin
    t.injected <- t.injected + 1;
    match t.mode with
    | Fail -> raise Injected_failure
    | Drop -> Dist.inf
    | Corrupt ->
        let delta = 1 + Random.State.int t.rng 3 in
        let d = f u v in
        if not (Dist.is_finite d) then delta
        else if d > delta && Random.State.bool t.rng then d - delta
        else d + delta
  end

type proc_fault = Kill | Hang | Truncate_frame | Corrupt_frame | Slow_write
type chaos = { after_frames : int; fault : proc_fault }

let chaos ~after_frames fault =
  if after_frames < 1 then
    invalid_arg "Fault_injector.chaos: after_frames must be >= 1";
  { after_frames; fault }

let fault_name = function
  | Kill -> "kill"
  | Hang -> "hang"
  | Truncate_frame -> "truncate"
  | Corrupt_frame -> "corrupt"
  | Slow_write -> "slow"

let chaos_to_string c =
  Printf.sprintf "%s@%d" (fault_name c.fault) c.after_frames

let chaos_of_string s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "chaos plan %S: expected <fault>@<frames>" s)
  | Some i -> (
      let fault = String.sub s 0 i
      and frames = String.sub s (i + 1) (String.length s - i - 1) in
      let fault =
        match fault with
        | "kill" -> Ok Kill
        | "hang" -> Ok Hang
        | "truncate" -> Ok Truncate_frame
        | "corrupt" -> Ok Corrupt_frame
        | "slow" -> Ok Slow_write
        | other -> Error (Printf.sprintf "chaos plan: unknown fault %S" other)
      in
      match (fault, int_of_string_opt frames) with
      | Error e, _ -> Error e
      | Ok f, Some n when n >= 1 -> Ok { after_frames = n; fault = f }
      | Ok _, _ ->
          Error (Printf.sprintf "chaos plan %S: frame count must be >= 1" s))

let corrupt_labels ~seed ~fraction labels =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault_injector.corrupt_labels: fraction must lie in [0, 1]";
  let rng = Random.State.make [| seed; 0xC0B0 |] in
  let n = Hub_label.n labels in
  let sets =
    Array.init n (fun v ->
        List.map
          (fun (h, d) ->
            if Random.State.float rng 1.0 < fraction then (h, d + 1) else (h, d))
          (Hub_label.hub_list labels v))
  in
  Hub_label.make ~n sets
