(** Budget-bounded point-to-point search — the middle stage of the
    degradation chain in {!Resilient_oracle}.

    The budget counts vertex expansions; exceeding it aborts the
    search rather than serving a possibly-wrong partial answer. *)

open Repro_graph

val bidirectional : Graph.t -> budget:int -> int -> int -> int option
(** Bidirectional BFS expanding the smaller frontier level by level.
    [Some d] is a certified exact distance ([Some Dist.inf] certifies
    disconnection); [None] means the budget ran out first.
    @raise Invalid_argument on out-of-range endpoints. *)
