(** Resilient distance serving.

    Wraps a fast-but-untrusted primary backend (typically hub labels,
    possibly loaded from disk) with:

    - {b input validation}: out-of-range endpoints are rejected and
      counted, never forwarded to a backend;
    - {b spot checks}: a configurable fraction of primary answers is
      re-derived through the fallback chain, and the chain's answer is
      the one served on disagreement;
    - {b graceful degradation}: primary → budgeted bidirectional BFS →
      plain BFS. Plain BFS on the stored graph is the unbudgeted final
      authority, so every query terminates with the exact distance as
      long as the graph itself is sound;
    - {b quarantine}: after a configurable number of strikes
      (disagreements or raised exceptions) the primary is taken out of
      rotation for good;
    - {b an incident log}: the {!stats} record counts everything the
      degradation machinery did.

    With [spot_check_every = 1] every served answer is exact whatever
    the primary returns — the configuration the fault-injection suite
    locks in (see {!Fault_injector}). *)

open Repro_graph
open Repro_hub

type source = Primary | Bidirectional | Bfs

val source_name : source -> string

type stats = {
  queries : int;  (** accepted queries (validation failures excluded) *)
  primary_answers : int;  (** served by the primary (spot-checked or not) *)
  fallback_answers : int;  (** served by the fallback chain *)
  spot_checks : int;
  disagreements : int;  (** spot check contradicted the primary *)
  faults : int;  (** primary raised an exception *)
  budget_exhausted : int;  (** a stage gave up on its step budget *)
  validation_failures : int;  (** rejected out-of-range queries *)
  quarantines : int;  (** 0 or 1: the primary was taken out of rotation *)
}

type t

val create :
  ?step_budget:int ->
  ?spot_check_every:int ->
  ?quarantine_after:int ->
  ?labels:Hub_label.t ->
  Graph.t ->
  t
(** [create g] builds a resilient oracle over [g]; [labels] is the
    primary hub-label backend (omit it for a search-only oracle).

    [spot_check_every k]: every [k]-th successful primary answer is
    re-derived through the fallback chain; [k = 1] (default) verifies
    every answer, [k <= 0] disables spot checks. [quarantine_after q]
    (default 3): after [q] strikes the primary is never consulted
    again. [step_budget] (default: effectively unlimited) caps both
    the primary's label-scan length ([|S(u)| + |S(v)|]) and the
    bidirectional stage's vertex expansions before degrading to plain
    BFS.

    @raise Invalid_argument if [labels] disagree with [g] on [n], or
    on a non-positive [step_budget]/[quarantine_after]. *)

val create_flat :
  ?step_budget:int ->
  ?spot_check_every:int ->
  ?quarantine_after:int ->
  flat:Flat_hub.t ->
  Graph.t ->
  t
(** Like {!create} with labels, but the primary is a packed
    {!Flat_hub} store (primary name ["flat-hub-labeling"]). The same
    [step_budget] cap on [|S(u)| + |S(v)|] applies.
    @raise Invalid_argument if [flat] disagrees with [g] on [n]. *)

val with_primary :
  ?step_budget:int ->
  ?spot_check_every:int ->
  ?quarantine_after:int ->
  name:string ->
  (int -> int -> int) ->
  Graph.t ->
  t
(** Arbitrary primary backend; exceptions it raises are contained and
    count as faults/strikes. This is the hook the fault-injection
    harness uses. *)

val query : t -> int -> int -> int
(** Exact distance ({!Dist.inf} when disconnected) whenever spot
    checks are exhaustive or the primary is honest.
    @raise Invalid_argument on out-of-range endpoints (counted in
    [validation_failures]). *)

val query_detailed : t -> int -> int -> int * source
(** Like {!query}, also reporting which stage produced the served
    answer — the CLI uses it to flag degraded-mode responses. *)

val stats : t -> stats
val quarantined : t -> bool
val primary_name : t -> string option
val pp_stats : Format.formatter -> stats -> unit
