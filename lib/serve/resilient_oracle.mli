(** Resilient distance serving.

    Wraps a fast-but-untrusted primary backend (any
    {!Repro_obs.Backend.S}, typically hub labels, possibly loaded from
    disk) with:

    - {b input validation}: out-of-range endpoints are rejected and
      counted, never forwarded to a backend;
    - {b spot checks}: a configurable fraction of primary answers is
      re-derived through the fallback chain, and the chain's answer is
      the one served on disagreement;
    - {b graceful degradation}: primary → budgeted bidirectional BFS →
      plain BFS. Plain BFS on the stored graph is the unbudgeted final
      authority, so every query terminates with the exact distance as
      long as the graph itself is sound;
    - {b quarantine}: after a configurable number of strikes
      (disagreements or raised exceptions) the primary is taken out of
      rotation for good;
    - {b an incident log}: the {!stats} record counts everything the
      degradation machinery did, and the same events stream live into a
      {!Repro_obs.Metrics} registry when one is attached at creation
      ([resilient.queries], [resilient.faults], [resilient.quarantines]
      and friends — one counter per {!stats} field).

    With [spot_check_every = 1] every served answer is exact whatever
    the primary returns — the configuration the fault-injection suite
    locks in (see {!Fault_injector}). *)

open Repro_graph
open Repro_hub

type source = Primary | Bidirectional | Bfs

val source_name : source -> string

type stats = {
  queries : int;  (** accepted queries (validation failures excluded) *)
  primary_answers : int;  (** served by the primary (spot-checked or not) *)
  fallback_answers : int;  (** served by the fallback chain *)
  spot_checks : int;
  disagreements : int;  (** spot check contradicted the primary *)
  faults : int;  (** primary raised an exception *)
  budget_exhausted : int;  (** a stage gave up on its step budget *)
  validation_failures : int;  (** rejected out-of-range queries *)
  quarantines : int;  (** 0 or 1: the primary was taken out of rotation *)
}

exception Over_budget
(** Raised by a budget-capped primary when a query's label scan would
    exceed the step budget. The serving loop treats it as a clean skip
    (fall back, no strike); custom primaries may raise it for the same
    effect. *)

type t

val create :
  ?step_budget:int ->
  ?spot_check_every:int ->
  ?quarantine_after:int ->
  ?metrics:Repro_obs.Metrics.t ->
  ?labels:Hub_label.t ->
  ?primary:Repro_obs.Backend.t ->
  ?primary_ops:Repro_obs.Backend.ops ->
  Graph.t ->
  t
(** [create g] builds a resilient oracle over [g]. The single unified
    entry point: [primary] is any uniform backend (build budget-capped
    label backends with {!hub_primary} / {!flat_primary}); omit it for
    a search-only oracle. [labels] is the legacy spelling of
    [~primary:(hub_primary ?step_budget labels)] kept so existing
    callers compile unchanged — pass one of the two, not both.

    [primary_ops] is the fast evaluator behind {!op} (typically
    {!Repro_hub.Flat_hub.ops} / {!Repro_hub.Mmap_hub.ops} over the
    same store as [primary]). When omitted, aggregate requests run
    through {!Repro_obs.Backend.lift} over [primary] — point queries
    only, budget caps included — or straight through the fallback
    chain when there is no primary at all.

    [spot_check_every k]: every [k]-th successful primary answer is
    re-derived through the fallback chain; [k = 1] (default) verifies
    every answer, [k <= 0] disables spot checks. [quarantine_after q]
    (default 3): after [q] strikes the primary is never consulted
    again. [step_budget] (default: effectively unlimited) caps both
    the label-scan length of the [labels] primary and the
    bidirectional stage's vertex expansions before degrading to plain
    BFS. [metrics]: a registry that receives every incident counter
    live, under the [resilient.] prefix.

    @raise Invalid_argument if both [labels] and [primary] are given,
    if [labels] disagree with [g] on [n], or on a non-positive
    [step_budget]/[quarantine_after]. *)

val hub_primary : ?step_budget:int -> Hub_label.t -> Repro_obs.Backend.t
(** {!Hub_label.backend}, additionally raising {!Over_budget} when
    [|S(u)| + |S(v)|] exceeds [step_budget]. *)

val flat_primary : ?step_budget:int -> Flat_hub.t -> Repro_obs.Backend.t
(** {!Flat_hub.backend} with the same scan-budget cap. *)

val mmap_primary : ?step_budget:int -> Mmap_hub.t -> Repro_obs.Backend.t
(** {!Mmap_hub.backend} with the same scan-budget cap — the zero-copy
    store slots into the identical degradation chain. *)

val compact_primary : ?step_budget:int -> Compact_hub.t -> Repro_obs.Backend.t
(** {!Compact_hub.backend} with the same scan-budget cap — the
    compressed store slots into the identical degradation chain. *)

val query : t -> int -> int -> int
(** Exact distance ({!Dist.inf} when disconnected) whenever spot
    checks are exhaustive or the primary is honest.
    @raise Invalid_argument on out-of-range endpoints (counted in
    [validation_failures]). *)

val query_detailed : t -> int -> int -> int * source
(** Like {!query}, also reporting which stage produced the served
    answer — the CLI uses it to flag degraded-mode responses. *)

val query_many : ?pool:Repro_par.Pool.t -> t -> (int * int) array -> int array
(** Batched {!query}. Without [pool] this is exactly a sequential
    [query] loop. With [pool] the primary's answers are precomputed in
    parallel across domains and all accounting (counters, strikes,
    quarantine, spot checks, fallback searches) replays sequentially in
    pair order, so answers and {!stats} match the sequential loop for
    any job count.

    Pass [pool] only when the primary backend is domain-safe: pure
    functions of [(u, v)], e.g. {!hub_primary} or {!flat_primary} over
    a {e cache-free} store. Instrumented, cached or fault-injecting
    primaries mutate shared state per call — batch those without a
    pool.
    @raise Invalid_argument when a pair is out of range (pairs before
    it have already been served and counted, as in the loop). *)

val query_many_detailed :
  ?pool:Repro_par.Pool.t -> t -> (int * int) array -> (int * source) array
(** {!query_many}, also reporting each answer's serving stage. *)

val op : t -> Repro_obs.Ops.request -> Repro_obs.Ops.response * source
(** Evaluate any {!Repro_obs.Ops.request} with the same resilience
    contract as point queries. [Dist] routes through {!query_detailed}
    and [Batch] through a sequential per-pair loop (each pair keeps
    its own budget/spot-check accounting; the reported source is the
    deepest stage any pair degraded to). Every other request counts as
    {e one} accepted query and degrades all-or-nothing: the primary
    ops evaluator is tried first ({!Over_budget} → clean skip, any
    other exception → fault + strike), its successful answers are
    spot-checked every [spot_check_every]-th primary attempt against
    the BFS fallback via full-response comparison (disagreement →
    strike + serve the truth), and quarantine removes it from rotation
    exactly as for points. The fallback evaluates aggregates with one
    exact BFS row per source ([source = Bfs]; the bidirectional stage
    only applies to point queries), so on the unweighted serving
    graphs every degraded answer is still exact.
    @raise Invalid_argument on an invalid request (counted in
    [validation_failures]). *)

val stats : t -> stats
val quarantined : t -> bool

val primary_name : t -> string option
(** The primary backend's [name], if a primary was configured. *)

val backend : t -> Repro_obs.Backend.t
(** The whole resilient oracle behind the uniform signature (name
    ["resilient(<primary>)"] or ["resilient(search)"]). Traces carry
    the serving stage as [source] and the chain depth as
    [fallback_hops] (primary 0, bidirectional 1, BFS 2);
    [space_words] adds the stored graph to the primary's accounting. *)

val pp_stats : Format.formatter -> stats -> unit
