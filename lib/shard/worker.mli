(** One shard worker: a single-threaded frame loop over a label slice.

    A worker owns the {!Repro_hub.Partition.slice} of the labeling for
    its shard, packed into a {!Repro_hub.Flat_hub} store behind the
    full {!Repro_serve.Resilient_oracle} degradation chain, and serves
    {!Wire} requests read from [input] until [Shutdown], EOF, or an
    unrecoverable stream error. Point queries and the aggregate ops
    ([Op_row], [Op_ecc], [Op_topk], [Op_diam]) all route through the
    oracle's per-op degradation ({!Repro_serve.Resilient_oracle.op});
    aggregates read label rows only at the shard's {e owned} vertices
    (or from owned sources), which {!Repro_hub.Partition.slice} keeps
    exact, and are instrumented under [worker.ops.<op>.*]. Per-frame
    errors ([Bad_opcode],
    [Bad_payload]) get an in-band [Error_frame] and the loop continues
    — framing keeps the stream in sync; desynchronising errors
    (truncation, oversized length) end the process, and the router's
    supervisor handles the fallout.

    The same [run] serves both deployments: the router forks and calls
    it directly over a socketpair, and [hubhard serve worker] execs a
    fresh process with the pipe on stdin/stdout.

    With [clock_step] set, all latency metrics come from a manual
    clock stepping that many ns per read, so a worker's metrics
    snapshot — and therefore the router's merged snapshot — is
    byte-identical across same-seed runs. A {!Repro_serve.Fault_injector.chaos}
    plan makes the worker misbehave exactly once, just before writing
    its [after_frames]-th response frame. *)

open Repro_graph
open Repro_hub
open Repro_serve

type config = {
  graph : Graph.t;
  labels : Hub_label.t option;
      (** [None] builds a search-only worker (BFS fallback chain only) *)
  mmap : Mmap_hub.t option;
      (** zero-copy primary: serve the {e whole} mapped store (no heap
          slice — the router's partition routing confines which pairs
          arrive; the OS page cache keeps one physical copy across all
          workers mapping the same file). Mutually exclusive with
          [labels]. *)
  compact : Compact_hub.t option;
      (** compressed zero-copy primary: the whole mapped [HUBFLAT2]
          store, with the same one-page-cache-copy sharing as [mmap]
          at a fraction of the bytes. Mutually exclusive with [labels]
          and [mmap]. *)
  shards : int;
  shard : int;
  partition : Partition.spec;
  spot_check_every : int;
  quarantine_after : int;
  step_budget : int option;
  chaos : Fault_injector.chaos option;
  clock_step : int64 option;
      (** manual-clock step per query; [None] = monotonic clock *)
  seed : int;  (** reserved for future stochastic faults; recorded only *)
}

val default_config : Graph.t -> config
(** Search-only single-shard worker: [shards = 1], [shard = 0],
    [Range] partition, [spot_check_every = 1], [quarantine_after = 3],
    no budget, no chaos, manual clock off, seed 0. *)

val run : input:Unix.file_descr -> output:Unix.file_descr -> config -> unit
(** Blocks serving frames until [Shutdown] or EOF. Never raises on
    malformed input; raises [Invalid_argument] only on a bad [config]
    (shard out of range, labels/graph size mismatch). *)
