type state = Healthy | Suspect | Restarting | Quarantined

let state_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Restarting -> "restarting"
  | Quarantined -> "quarantined"

type config = {
  suspect_after : int;
  max_restarts : int;
  base_backoff_ns : int64;
  max_backoff_ns : int64;
  jitter_frac : float;
  deadline_ns : int64;
  ping_every_ns : int64;
}

let default_config =
  {
    suspect_after = 2;
    max_restarts = 3;
    base_backoff_ns = 50_000_000L;
    max_backoff_ns = 2_000_000_000L;
    jitter_frac = 0.1;
    deadline_ns = 2_000_000_000L;
    ping_every_ns = 1_000_000_000L;
  }

type verdict = Keep | Restart_after of int64 | Quarantined_now

type cell = {
  mutable state : state;
  mutable streak : int;  (* consecutive soft failures *)
  mutable restarts : int;
}

type t = { cfg : config; rng : Random.State.t; cells : cell array }

let create ~seed ~shards cfg =
  if shards < 1 then invalid_arg "Supervisor.create: shards must be >= 1";
  if cfg.suspect_after < 1 then
    invalid_arg "Supervisor.create: suspect_after must be >= 1";
  if cfg.max_restarts < 0 then
    invalid_arg "Supervisor.create: max_restarts must be >= 0";
  if cfg.jitter_frac < 0.0 || cfg.jitter_frac > 1.0 then
    invalid_arg "Supervisor.create: jitter_frac must lie in [0, 1]";
  {
    cfg;
    rng = Random.State.make [| seed; 0x5AD |];
    cells =
      Array.init shards (fun _ -> { state = Healthy; streak = 0; restarts = 0 });
  }

let config t = t.cfg
let cell t shard = t.cells.(shard)
let state t shard = (cell t shard).state
let restarts_used t shard = (cell t shard).restarts

let backoff t k =
  let shifted =
    if k >= 62 then t.cfg.max_backoff_ns
    else Int64.shift_left t.cfg.base_backoff_ns k
  in
  let capped =
    if Int64.compare shifted t.cfg.max_backoff_ns > 0 || Int64.compare shifted 0L < 0
    then t.cfg.max_backoff_ns
    else shifted
  in
  let jitter =
    Int64.of_float
      (Random.State.float t.rng 1.0 *. t.cfg.jitter_frac *. Int64.to_float capped)
  in
  Int64.add capped jitter

let on_success t shard =
  let c = cell t shard in
  match c.state with
  | Quarantined | Restarting -> ()
  | Healthy | Suspect ->
      c.streak <- 0;
      c.state <- Healthy

let escalate t c =
  if c.state = Quarantined then Quarantined_now
  else if c.restarts >= t.cfg.max_restarts then begin
    c.state <- Quarantined;
    Quarantined_now
  end
  else begin
    let k = c.restarts in
    c.restarts <- c.restarts + 1;
    c.state <- Restarting;
    c.streak <- 0;
    Restart_after (backoff t k)
  end

let on_crash t shard = escalate t (cell t shard)

let on_soft_failure t shard =
  let c = cell t shard in
  match c.state with
  | Quarantined -> Quarantined_now
  | Restarting -> Keep
  | Healthy | Suspect ->
      c.streak <- c.streak + 1;
      c.state <- Suspect;
      if c.streak >= t.cfg.suspect_after then escalate t c else Keep

let on_restarted t shard =
  let c = cell t shard in
  if c.state = Restarting then begin
    c.state <- Healthy;
    c.streak <- 0
  end
