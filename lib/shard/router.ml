open Repro_graph
open Repro_hub
open Repro_serve
module Obs = Repro_obs

type spawn = Fork | Exec of (shard:int -> string array)

type trace_config = {
  sample_every : int;  (* head-sample 1 in N traces; 1 = everything *)
  slow_ns : int64;  (* force-record traces at least this slow; 0 = off *)
  capacity : int;  (* bound on the router-side span store *)
}

let default_trace_config = { sample_every = 1; slow_ns = 0L; capacity = 4096 }

type config = {
  graph : Graph.t;
  labels : Hub_label.t option;
  mmap : Mmap_hub.t option;
  compact : Compact_hub.t option;
  shards : int;
  partition : Partition.spec;
  supervisor : Supervisor.config;
  spot_check_every : int;
  quarantine_after : int;
  step_budget : int option;
  chaos : (int * Fault_injector.chaos) list;
  clock_step : int64 option;
  seed : int;
  spawn : spawn;
  trace : trace_config option;
}

let default_config graph =
  {
    graph;
    labels = None;
    mmap = None;
    compact = None;
    shards = 2;
    partition = Partition.Range;
    supervisor = Supervisor.default_config;
    spot_check_every = 1;
    quarantine_after = 3;
    step_budget = None;
    chaos = [];
    clock_step = None;
    seed = 0;
    spawn = Fork;
    trace = None;
  }

type answer = { dist : int; source : int; degraded : bool }

type conn = {
  c_pid : int;
  c_fd : Unix.file_descr;
  mutable c_buf : string;  (* bytes read but not yet framed *)
  c_stash : (int, Wire.response) Hashtbl.t;  (* out-of-order responses *)
}

type counters = {
  m_queries : Obs.Metrics.counter;
  m_degraded : Obs.Metrics.counter;
  m_restarts : Obs.Metrics.counter;
  m_timeouts : Obs.Metrics.counter;
  m_retries : Obs.Metrics.counter;
  m_bad_frames : Obs.Metrics.counter;
  m_crashes : Obs.Metrics.counter;
  m_quarantined : Obs.Metrics.gauge;
  m_latency : Obs.Metrics.histogram;
}

(* The one trace in flight. The router serves queries one at a time, so
   a single mutable slot suffices; completed child spans accumulate in
   [a_spans] (reversed) and are committed to the store only when the
   trace turns out to be sampled, forced, or slow. *)
type active = {
  mutable a_ctx : Obs.Trace_ctx.t;  (* flags updated by force *)
  mutable a_spans : Obs.Trace_ctx.span list;
  mutable a_next : int;  (* child-span sequence counter *)
  a_start : int64;
  a_name : string;
  mutable a_parent : int64;  (* parent id for newly minted child spans *)
}

type t = {
  cfg : config;
  sup : Supervisor.t;
  reg : Obs.Metrics.t;
  ctr : counters;
  clock : Obs.Clock.t;
  manual : Obs.Clock.manual option;  (* backoff waits advance this *)
  conns : conn option array;
  pending : int64 option array;  (* backoff still owed before respawn *)
  fallback : Resilient_oracle.t Lazy.t;
  next_id : int ref;
  tstore : Obs.Trace_ctx.store option;
  tseq : int ref;
  mutable cur : active option;
  mutable down : bool;
}

(* router-side failure taxonomy; the supervisor decides what it costs *)
type rerr = Timeout | Wire_err of Wire.error

let is_soft = function
  | Timeout -> true
  | Wire_err (Wire.Bad_opcode _ | Wire.Bad_payload _) -> true
  | Wire_err _ -> false  (* EOF / truncation / transport: the peer is gone *)

let event name fields = Obs.Events.emit_ambient ~level:Obs.Events.Warn name fields

(* ----- frame transport with deadlines ------------------------------- *)

let deadline_s t = Int64.to_float t.cfg.supervisor.Supervisor.deadline_ns /. 1e9

let rec recv_frame conn ~until =
  match Wire.decode_frame conn.c_buf ~pos:0 with
  | Ok (payload, next) ->
      conn.c_buf <-
        String.sub conn.c_buf next (String.length conn.c_buf - next);
      Ok payload
  | Error (Wire.Eof | Wire.Truncated _) -> (
      (* not enough buffered bytes: wait for the descriptor *)
      let remaining = until -. Unix.gettimeofday () in
      if remaining <= 0.0 then Error Timeout
      else
        match Unix.select [ conn.c_fd ] [] [] remaining with
        | [], _, _ -> Error Timeout
        | _ -> (
            let chunk = Bytes.create 65536 in
            match Unix.read conn.c_fd chunk 0 65536 with
            | 0 ->
                Error
                  (Wire_err
                     (if conn.c_buf = "" then Wire.Eof
                      else
                        Wire.Truncated
                          { wanted = 4; got = String.length conn.c_buf }))
            | k ->
                conn.c_buf <- conn.c_buf ^ Bytes.sub_string chunk 0 k;
                recv_frame conn ~until
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                recv_frame conn ~until
            | exception Unix.Unix_error (e, _, _) ->
                Error (Wire_err (Wire.Io (Unix.error_message e))))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_frame conn ~until)
  | Error e -> Error (Wire_err e)

let response_id = function
  | Wire.Answer { id; _ }
  | Wire.Pong { id }
  | Wire.Stats_payload { id; _ }
  | Wire.Error_frame { id; _ }
  | Wire.Row_payload { id; _ }
  | Wire.Ecc_payload { id; _ }
  | Wire.Topk_payload { id; _ }
  | Wire.Diam_payload { id; _ }
  | Wire.Trace_payload { id; _ } ->
      id

(* Wait for the response with this [id]; responses to other requests
   (late answers after a timeout, pipelined batch items) are stashed,
   never dropped. *)
let rec recv_matching conn ~id ~until =
  match Hashtbl.find_opt conn.c_stash id with
  | Some resp ->
      Hashtbl.remove conn.c_stash id;
      Ok resp
  | None -> (
      match recv_frame conn ~until with
      | Error _ as e -> e
      | Ok payload -> (
          match Wire.response_of_payload payload with
          | Error e -> Error (Wire_err e)
          | Ok resp ->
              let rid = response_id resp in
              if rid = id then Ok resp
              else begin
                Hashtbl.replace conn.c_stash rid resp;
                recv_matching conn ~id ~until
              end))

let send_frame conn frame =
  match Wire.write_frame conn.c_fd frame with
  | Ok () -> Ok ()
  | Error e -> Error (Wire_err e)

let fresh_id t =
  incr t.next_id;
  !(t.next_id)

(* ----- trace lifecycle ----------------------------------------------- *)

let ctx_span_id (c : Obs.Trace_ctx.t) = c.span_id

(* Open a trace for this query if none is active. Nested entry points
   (op Dist -> query_batch) leave the outer trace in place; the caller
   that began the trace ends it. *)
let trace_begin t name =
  match (t.tstore, t.cur, t.cfg.trace) with
  | Some _, None, Some tc ->
      let seq = !(t.tseq) in
      incr t.tseq;
      let ctx =
        Obs.Trace_ctx.head_sample ~every:tc.sample_every
          (Obs.Trace_ctx.root ~seed:t.cfg.seed ~seq)
      in
      t.cur <-
        Some
          {
            a_ctx = ctx;
            a_spans = [];
            a_next = 0;
            a_start = t.clock ();
            a_name = name;
            a_parent = ctx_span_id ctx;
          };
      true
  | _ -> false

let force_cur t =
  match t.cur with
  | Some a -> a.a_ctx <- Obs.Trace_ctx.force a.a_ctx
  | None -> ()

(* Mint a child context under the current parent span: sent on the wire
   so worker spans nest in the right place, and used as the span id of
   router-side child spans. *)
let mint_child t =
  match t.cur with
  | None -> None
  | Some a ->
      let c =
        Obs.Trace_ctx.child
          { a.a_ctx with span_id = a.a_parent }
          ~seq:a.a_next
      in
      a.a_next <- a.a_next + 1;
      Some c

let trace_span t name ~span_id ~start =
  match t.cur with
  | None -> ()
  | Some a ->
      a.a_spans <-
        {
          Obs.Trace_ctx.trace_hi = a.a_ctx.hi;
          trace_lo = a.a_ctx.lo;
          span_id;
          parent_id = a.a_parent;
          name;
          start_ns = start;
          elapsed_ns = Int64.sub (t.clock ()) start;
        }
        :: a.a_spans

(* Close the active trace; commit its spans iff it was head-sampled,
   force-sampled along the way, or slower than the configured
   threshold. *)
let trace_end t =
  match (t.cur, t.tstore, t.cfg.trace) with
  | Some a, Some store, Some tc ->
      t.cur <- None;
      let elapsed = Int64.sub (t.clock ()) a.a_start in
      let slow =
        Int64.compare tc.slow_ns 0L > 0 && Int64.compare elapsed tc.slow_ns >= 0
      in
      if Obs.Trace_ctx.recorded a.a_ctx || slow then begin
        Obs.Trace_ctx.record store
          {
            Obs.Trace_ctx.trace_hi = a.a_ctx.hi;
            trace_lo = a.a_ctx.lo;
            span_id = ctx_span_id a.a_ctx;
            parent_id = 0L;
            name = a.a_name;
            start_ns = a.a_start;
            elapsed_ns = elapsed;
          };
        List.iter (Obs.Trace_ctx.record store) (List.rev a.a_spans)
      end
  | _ -> t.cur <- None

(* Exemplar thunk for the router's histograms: the current trace id,
   when its spans will be recorded. Evaluated after the timed work, so
   forcing during the work is visible. *)
let trace_exemplar t () =
  match t.cur with
  | Some a when Obs.Trace_ctx.recorded a.a_ctx ->
      Some (Obs.Trace_ctx.id_string a.a_ctx)
  | _ -> None

(* ----- worker lifecycle --------------------------------------------- *)

let worker_config cfg ~shard ~with_chaos =
  {
    Worker.graph = cfg.graph;
    labels = cfg.labels;
    mmap = cfg.mmap;
    compact = cfg.compact;
    shards = cfg.shards;
    shard;
    partition = cfg.partition;
    spot_check_every = cfg.spot_check_every;
    quarantine_after = cfg.quarantine_after;
    step_budget = cfg.step_budget;
    chaos = (if with_chaos then List.assoc_opt shard cfg.chaos else None);
    clock_step = cfg.clock_step;
    seed = cfg.seed;
  }

let spawn_conn t shard ~with_chaos =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match t.cfg.spawn with
  | Fork -> (
      match Unix.fork () with
      | 0 ->
          Unix.close parent_fd;
          Array.iter
            (function Some c -> (try Unix.close c.c_fd with _ -> ()) | None -> ())
            t.conns;
          (try
             Worker.run ~input:child_fd ~output:child_fd
               (worker_config t.cfg ~shard ~with_chaos)
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close child_fd;
          Some { c_pid = pid; c_fd = parent_fd; c_buf = ""; c_stash = Hashtbl.create 16 }
      | exception Unix.Unix_error _ ->
          Unix.close parent_fd;
          Unix.close child_fd;
          None)
  | Exec argv_of -> (
      let argv = argv_of ~shard in
      Unix.set_close_on_exec parent_fd;
      match Unix.create_process argv.(0) argv child_fd child_fd Unix.stderr with
      | pid ->
          Unix.close child_fd;
          Some { c_pid = pid; c_fd = parent_fd; c_buf = ""; c_stash = Hashtbl.create 16 }
      | exception Unix.Unix_error _ ->
          Unix.close parent_fd;
          Unix.close child_fd;
          None)

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let demote t shard =
  match t.conns.(shard) with
  | None -> ()
  | Some c ->
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
      (try Unix.kill c.c_pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap c.c_pid;
      t.conns.(shard) <- None

let ping t conn =
  let id = fresh_id t in
  match send_frame conn (Wire.encode_request (Wire.Ping { id })) with
  | Error _ -> false
  | Ok () -> (
      match
        recv_matching conn ~id ~until:(Unix.gettimeofday () +. deadline_s t)
      with
      | Ok (Wire.Pong { id = _ }) -> true
      | Ok _ | Error _ -> false)

let update_quarantine_gauge t =
  let q = ref 0 in
  for s = 0 to t.cfg.shards - 1 do
    if Supervisor.state t.sup s = Supervisor.Quarantined then incr q
  done;
  Obs.Metrics.set_gauge t.ctr.m_quarantined !q

(* Honour a Restart_after backoff. Under a manual clock the wait is a
   clock advance — no wall time passes, the nanoseconds are still
   accounted — which is what keeps the chaos suite fast AND
   byte-reproducible. *)
let wait_backoff t ns =
  match t.manual with
  | Some m -> Obs.Clock.advance m ns
  | None -> Unix.sleepf (Int64.to_float ns /. 1e9)

let apply_verdict t shard = function
  | Supervisor.Keep -> ()
  | Supervisor.Restart_after ns ->
      demote t shard;
      t.pending.(shard) <- Some ns;
      event "router.restart_scheduled"
        [ ("shard", Obs.Events.Int shard);
          ("backoff_ns", Obs.Events.Int (Int64.to_int ns)) ]
  | Supervisor.Quarantined_now ->
      demote t shard;
      t.pending.(shard) <- None;
      update_quarantine_gauge t;
      event "router.quarantine" [ ("shard", Obs.Events.Int shard) ]

let crash t shard =
  Obs.Metrics.incr t.ctr.m_crashes;
  event "router.crash" [ ("shard", Obs.Events.Int shard) ];
  apply_verdict t shard (Supervisor.on_crash t.sup shard)

let rec heal_shard t shard =
  match t.pending.(shard) with
  | None -> ()
  | Some ns -> (
      let b0 = t.clock () in
      wait_backoff t ns;
      (match mint_child t with
      | Some c ->
          trace_span t
            (Printf.sprintf "backoff.shard%d" shard)
            ~span_id:(ctx_span_id c) ~start:b0
      | None -> ());
      t.pending.(shard) <- None;
      Obs.Metrics.incr t.ctr.m_restarts;
      let conn = spawn_conn t shard ~with_chaos:false in
      t.conns.(shard) <- conn;
      match conn with
      | Some c when ping t c ->
          Supervisor.on_restarted t.sup shard;
          event "router.restarted"
            [ ("shard", Obs.Events.Int shard); ("pid", Obs.Events.Int c.c_pid) ]
      | Some _ | None ->
          demote t shard;
          apply_verdict t shard (Supervisor.on_crash t.sup shard);
          heal_shard t shard)

let heal t =
  for s = 0 to t.cfg.shards - 1 do
    heal_shard t s
  done

(* ----- construction -------------------------------------------------- *)

let create cfg =
  if cfg.shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  (match cfg.labels with
  | Some l when Hub_label.n l <> Graph.n cfg.graph ->
      invalid_arg "Router.create: labels and graph disagree on n"
  | _ -> ());
  (match (cfg.mmap, cfg.compact, cfg.labels) with
  | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
      invalid_arg "Router.create: pass at most one of ~labels/~mmap/~compact"
  | Some m, None, None when Mmap_hub.n m <> Graph.n cfg.graph ->
      invalid_arg "Router.create: mmap store and graph disagree on n"
  | None, Some c, None when Compact_hub.n c <> Graph.n cfg.graph ->
      invalid_arg "Router.create: compact store and graph disagree on n"
  | _ -> ());
  (match cfg.trace with
  | Some tc ->
      if tc.sample_every < 1 then
        invalid_arg "Router.create: trace sample_every must be >= 1";
      if Int64.compare tc.slow_ns 0L < 0 then
        invalid_arg "Router.create: trace slow_ns must be >= 0";
      if tc.capacity < 1 then
        invalid_arg "Router.create: trace capacity must be >= 1"
  | None -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let reg = Obs.Metrics.create () in
  let manual =
    Option.map (fun step -> Obs.Clock.manual ~auto_step:step ()) cfg.clock_step
  in
  let clock =
    match manual with Some m -> Obs.Clock.read m | None -> Obs.Clock.monotonic
  in
  let ctr =
    {
      m_queries = Obs.Metrics.counter reg "router.queries";
      m_degraded = Obs.Metrics.counter reg "router.degraded";
      m_restarts = Obs.Metrics.counter reg "router.restarts";
      m_timeouts = Obs.Metrics.counter reg "router.timeouts";
      m_retries = Obs.Metrics.counter reg "router.retries";
      m_bad_frames = Obs.Metrics.counter reg "router.bad_frames";
      m_crashes = Obs.Metrics.counter reg "router.crashes";
      m_quarantined = Obs.Metrics.gauge reg "router.quarantined";
      m_latency = Obs.Metrics.histogram reg "router.latency_ns";
    }
  in
  let t =
    {
      cfg;
      sup = Supervisor.create ~seed:cfg.seed ~shards:cfg.shards cfg.supervisor;
      reg;
      ctr;
      clock;
      manual;
      conns = Array.make cfg.shards None;
      pending = Array.make cfg.shards None;
      fallback = lazy (Resilient_oracle.create ~metrics:reg cfg.graph);
      next_id = ref 0;
      tstore =
        Option.map
          (fun tc -> Obs.Trace_ctx.store ~capacity:tc.capacity)
          cfg.trace;
      tseq = ref 0;
      cur = None;
      down = false;
    }
  in
  for s = 0 to cfg.shards - 1 do
    let conn = spawn_conn t s ~with_chaos:true in
    t.conns.(s) <- conn;
    (match conn with
    | Some c ->
        event "router.spawn"
          [ ("shard", Obs.Events.Int s); ("pid", Obs.Events.Int c.c_pid) ]
    | None -> ());
    match conn with
    | Some c when ping t c -> Supervisor.on_success t.sup s
    | Some _ | None ->
        demote t s;
        apply_verdict t s (Supervisor.on_crash t.sup s)
  done;
  heal t;
  t

(* ----- serving ------------------------------------------------------- *)

(* A router-local degraded recompute is real serving work, not just an
   incident counter: time it and count it under
   [router.ops.<op>.degraded_local.*], force-sample the active trace,
   and nest a [recompute.shard<i>.<op>] span in the tree. *)
let degraded_local t ~opname ~shard f =
  Obs.Metrics.incr t.ctr.m_degraded;
  force_cur t;
  let base = "router.ops." ^ opname ^ ".degraded_local" in
  let h = Obs.Metrics.histogram t.reg (base ^ ".latency_ns") in
  let c = Obs.Metrics.counter t.reg (base ^ ".count") in
  let t0 = t.clock () in
  let res = f () in
  let elapsed = Int64.sub (t.clock ()) t0 in
  Obs.Metrics.observe ?exemplar:(trace_exemplar t ()) h (Int64.to_int elapsed);
  Obs.Metrics.incr c;
  (match (t.cur, mint_child t) with
  | Some a, Some cc ->
      a.a_spans <-
        {
          Obs.Trace_ctx.trace_hi = a.a_ctx.hi;
          trace_lo = a.a_ctx.lo;
          span_id = ctx_span_id cc;
          parent_id = a.a_parent;
          name = Printf.sprintf "recompute.shard%d.%s" shard opname;
          start_ns = t0;
          elapsed_ns = elapsed;
        }
        :: a.a_spans
  | _ -> ());
  res

let fallback_answer t ~opname ~shard u v =
  degraded_local t ~opname ~shard (fun () ->
      let dist, _ =
        Resilient_oracle.query_detailed (Lazy.force t.fallback) u v
      in
      { dist; source = Wire.source_router; degraded = true })

let answer_of_response resp =
  match resp with
  | Wire.Answer { dist; source; degraded; _ } -> Some { dist; source; degraded }
  | _ -> None

(* One batch window on one shard: send every request, then collect in
   order. A soft failure burns one bounded retry for its item; once the
   supervisor escalates (restart or quarantine) the remaining items of
   the window degrade to the local fallback — restarts wait for the
   batch boundary. Returns [false] when the shard was demoted. *)
let window_size = 256

let run_window t shard conn ~opname ~wctx items out =
  let fallback_answer t u v = fallback_answer t ~opname ~shard u v in
  let encode_query id u v =
    Wire.encode_request_ctx ?ctx:wctx (Wire.Query { id; u; v })
  in
  let ids = Array.map (fun _ -> 0) items in
  let sent = ref 0 in
  (try
     Array.iteri
       (fun i (_, u, v) ->
         let id = fresh_id t in
         ids.(i) <- id;
         match send_frame conn (encode_query id u v) with
         | Ok () -> sent := i + 1
         | Error _ -> raise Exit)
       items
   with Exit -> ());
  let alive = ref true in
  let crash_now () =
    alive := false;
    crash t shard
  in
  let soft_now () =
    match Supervisor.on_soft_failure t.sup shard with
    | Supervisor.Keep -> ()
    | v ->
        alive := false;
        apply_verdict t shard v
  in
  Array.iteri
    (fun i (idx, u, v) ->
      if not !alive then out.(idx) <- fallback_answer t u v
      else if i >= !sent then begin
        (* the send failed before this item went out *)
        crash_now ();
        out.(idx) <- fallback_answer t u v
      end
      else
        let rec attempt ~id ~retried =
          let until = Unix.gettimeofday () +. deadline_s t in
          match recv_matching conn ~id ~until with
          | Ok resp -> (
              match answer_of_response resp with
              | Some a ->
                  Supervisor.on_success t.sup shard;
                  out.(idx) <- a
              | None ->
                  (* Error_frame or a mismatched kind: soft *)
                  Obs.Metrics.incr t.ctr.m_bad_frames;
                  soft_now ();
                  out.(idx) <- fallback_answer t u v)
          | Error e when is_soft e -> (
              (match e with
              | Timeout -> Obs.Metrics.incr t.ctr.m_timeouts
              | Wire_err _ -> Obs.Metrics.incr t.ctr.m_bad_frames);
              match Supervisor.on_soft_failure t.sup shard with
              | Supervisor.Keep when not retried ->
                  Obs.Metrics.incr t.ctr.m_retries;
                  (* a retry is exactly the unlucky path tracing exists
                     for: force the trace and nest a retry span *)
                  force_cur t;
                  let rt0 = t.clock () in
                  let id' = fresh_id t in
                  (match send_frame conn (encode_query id' u v) with
                  | Ok () ->
                      attempt ~id:id' ~retried:true;
                      (match mint_child t with
                      | Some c ->
                          trace_span t
                            (Printf.sprintf "retry.shard%d" shard)
                            ~span_id:(ctx_span_id c) ~start:rt0
                      | None -> ())
                  | Error _ ->
                      crash_now ();
                      out.(idx) <- fallback_answer t u v)
              | Supervisor.Keep -> out.(idx) <- fallback_answer t u v
              | verdict ->
                  alive := false;
                  apply_verdict t shard verdict;
                  out.(idx) <- fallback_answer t u v)
          | Error _ ->
              crash_now ();
              out.(idx) <- fallback_answer t u v
        in
        attempt ~id:ids.(i) ~retried:false)
    items;
  !alive

let query_batch_named t ~opname pairs =
  if t.down then invalid_arg "Router.query_batch: router is shut down";
  let began = trace_begin t ("router." ^ opname) in
  Fun.protect
    ~finally:(fun () -> if began then trace_end t)
    (fun () ->
      let n = Graph.n t.cfg.graph in
      let owners =
        Array.map
          (fun (u, v) ->
            Partition.owner_of_pair t.cfg.partition ~shards:t.cfg.shards ~n u v)
          pairs
      in
      heal t;
      let out =
        Array.make (Array.length pairs)
          { dist = 0; source = 0; degraded = false }
      in
      let per_shard = Array.make t.cfg.shards [] in
      Array.iteri
        (fun idx (u, v) ->
          per_shard.(owners.(idx)) <- (idx, u, v) :: per_shard.(owners.(idx)))
        pairs;
      for s = 0 to t.cfg.shards - 1 do
        let items = Array.of_list (List.rev per_shard.(s)) in
        if Array.length items > 0 then begin
          Obs.Metrics.incr ~by:(Array.length items) t.ctr.m_queries;
          Obs.Metrics.observe_span ~clock:t.clock
            ~exemplar:(fun () -> trace_exemplar t ())
            t.ctr.m_latency
            (fun () ->
              match t.conns.(s) with
              | None ->
                  Array.iter
                    (fun (idx, u, v) ->
                      out.(idx) <- fallback_answer t ~opname ~shard:s u v)
                    items
              | Some conn ->
                  Hashtbl.reset conn.c_stash;
                  let k = ref 0 in
                  let wj = ref 0 in
                  let continue = ref true in
                  while !continue && !k < Array.length items do
                    let stop = min (Array.length items) (!k + window_size) in
                    let window = Array.sub items !k (stop - !k) in
                    (match t.conns.(s) with
                    | Some c ->
                        (* one rpc span per shard window; retries and
                           recomputes inside the window nest under it *)
                        let wctx = mint_child t in
                        let w0 = t.clock () in
                        let saved =
                          Option.map (fun a -> a.a_parent) t.cur
                        in
                        (match (t.cur, wctx) with
                        | Some a, Some c -> a.a_parent <- ctx_span_id c
                        | _ -> ());
                        continue :=
                          run_window t s c ~opname ~wctx window out;
                        (match (t.cur, saved) with
                        | Some a, Some p -> a.a_parent <- p
                        | _ -> ());
                        (match wctx with
                        | Some c ->
                            trace_span t
                              (Printf.sprintf "rpc.shard%d.w%d" s !wj)
                              ~span_id:(ctx_span_id c) ~start:w0
                        | None -> ())
                    | None -> continue := false);
                    incr wj;
                    if not !continue then
                      (* degrade the unsent remainder of this shard's
                         batch *)
                      for j = stop to Array.length items - 1 do
                        let idx, u, v = items.(j) in
                        out.(idx) <- fallback_answer t ~opname ~shard:s u v
                      done;
                    k := stop
                  done)
        end
      done;
      out)

let query_batch t pairs = query_batch_named t ~opname:"batch" pairs
let query t u v = (query_batch_named t ~opname:"dist" [| (u, v) |]).(0)

(* ----- aggregate operations ------------------------------------------ *)

type op_result = { response : Obs.Ops.response; source : int; degraded : bool }

(* One aggregate request to one shard, with the same failure taxonomy
   as run_window: one bounded retry on a soft failure, supervisor
   verdicts applied, crash on transport death. [extract] both matches
   the expected payload kind and rejects malformed ones (a mismatch is
   a soft failure). [None] means the caller must serve this shard's
   share locally. *)
let shard_call t shard ~extract make_req =
  match t.conns.(shard) with
  | None -> None
  | Some conn ->
      (* one rpc span per aggregate call; the context rides the frame
         so the worker's own span nests under it *)
      let wctx = mint_child t in
      let t0 = t.clock () in
      let saved = Option.map (fun a -> a.a_parent) t.cur in
      (match (t.cur, wctx) with
      | Some a, Some c -> a.a_parent <- ctx_span_id c
      | _ -> ());
      let finish res =
        (match (t.cur, saved) with
        | Some a, Some p -> a.a_parent <- p
        | _ -> ());
        (match wctx with
        | Some c ->
            trace_span t
              (Printf.sprintf "rpc.shard%d" shard)
              ~span_id:(ctx_span_id c) ~start:t0
        | None -> ());
        res
      in
      let rec attempt ~retried =
        let id = fresh_id t in
        match send_frame conn (Wire.encode_request_ctx ?ctx:wctx (make_req id))
        with
        | Error _ ->
            crash t shard;
            None
        | Ok () -> (
            let until = Unix.gettimeofday () +. deadline_s t in
            match recv_matching conn ~id ~until with
            | Ok resp -> (
                match extract resp with
                | Some x ->
                    Supervisor.on_success t.sup shard;
                    Some x
                | None -> (
                    Obs.Metrics.incr t.ctr.m_bad_frames;
                    match Supervisor.on_soft_failure t.sup shard with
                    | Supervisor.Keep -> None
                    | v ->
                        apply_verdict t shard v;
                        None))
            | Error e when is_soft e -> (
                (match e with
                | Timeout -> Obs.Metrics.incr t.ctr.m_timeouts
                | Wire_err _ -> Obs.Metrics.incr t.ctr.m_bad_frames);
                match Supervisor.on_soft_failure t.sup shard with
                | Supervisor.Keep when not retried ->
                    Obs.Metrics.incr t.ctr.m_retries;
                    force_cur t;
                    let rt0 = t.clock () in
                    let res = attempt ~retried:true in
                    (match mint_child t with
                    | Some c ->
                        trace_span t
                          (Printf.sprintf "retry.shard%d" shard)
                          ~span_id:(ctx_span_id c) ~start:rt0
                    | None -> ());
                    res
                | Supervisor.Keep -> None
                | v ->
                    apply_verdict t shard v;
                    None)
            | Error _ ->
                crash t shard;
                None)
      in
      finish (attempt ~retried:false)

let owned_by_shard t =
  let n = Graph.n t.cfg.graph in
  let buckets = Array.make t.cfg.shards [] in
  for v = n - 1 downto 0 do
    let s = Partition.owner t.cfg.partition ~shards:t.cfg.shards ~n v in
    buckets.(s) <- v :: buckets.(s)
  done;
  Array.map Array.of_list buckets

(* Local fallback for one shard's share of an aggregate: the search-only
   oracle answers the same restricted request exactly. *)
let fb_row t ~opname ~shard ~source ~targets =
  degraded_local t ~opname ~shard (fun () ->
      match
        Resilient_oracle.op (Lazy.force t.fallback)
          (Obs.Ops.One_to_many { source; targets })
      with
      | Obs.Ops.R_dists ds, _ -> ds
      | _ -> assert false (* One_to_many always yields R_dists *))

let fb_ecc t ~opname ~shard w =
  degraded_local t ~opname ~shard (fun () ->
      match
        Resilient_oracle.op (Lazy.force t.fallback) (Obs.Ops.Eccentricity w)
      with
      | Obs.Ops.R_ecc e, _ -> e
      | _ -> assert false (* Eccentricity always yields R_ecc *))

type merge_acc = { mutable code : int; mutable dg : bool }

let bump acc ~code ~degraded =
  if code > acc.code then acc.code <- code;
  if degraded then acc.dg <- true

let degrade acc =
  bump acc ~code:Wire.source_router ~degraded:true

(* Distances from [source] to every target, each target served by its
   owning shard (slice rows are exact at owned entries). *)
let row_op t acc ~opname ~source ~targets =
  let n = Graph.n t.cfg.graph in
  let out = Array.make (Array.length targets) 0 in
  let per_shard = Array.make t.cfg.shards [] in
  Array.iteri
    (fun i w ->
      let s = Partition.owner t.cfg.partition ~shards:t.cfg.shards ~n w in
      per_shard.(s) <- i :: per_shard.(s))
    targets;
  for s = 0 to t.cfg.shards - 1 do
    let idxs = Array.of_list (List.rev per_shard.(s)) in
    if Array.length idxs > 0 then begin
      let ts = Array.map (fun i -> targets.(i)) idxs in
      let result =
        shard_call t s
          ~extract:(function
            | Wire.Row_payload { dists; source; degraded; _ }
              when Array.length dists = Array.length ts ->
                Some (dists, source, degraded)
            | _ -> None)
          (fun id -> Wire.Op_row { id; source; targets = ts })
      in
      match result with
      | Some (dists, code, degraded) ->
          Array.iteri (fun j i -> out.(i) <- dists.(j)) idxs;
          bump acc ~code ~degraded
      | None ->
          let ds = fb_row t ~opname ~shard:s ~source ~targets:ts in
          Array.iteri (fun j i -> out.(i) <- ds.(j)) idxs;
          degrade acc
    end
  done;
  out

(* The farthest owned (vertex, dist) witness of [v] per shard; the
   global farthest is then farthest_of over the per-shard witnesses
   (each already the smallest-id in its shard, so the shared reducer
   reconstructs the global tie-break). *)
let ecc_candidates t acc ~opname v =
  let owned = owned_by_shard t in
  let cands = ref [] in
  for s = t.cfg.shards - 1 downto 0 do
    let ow = owned.(s) in
    if Array.length ow > 0 then begin
      let result =
        shard_call t s
          ~extract:(function
            | Wire.Ecc_payload { vertex; dist; source; degraded; _ }
              when vertex >= 0 ->
                Some (vertex, dist, source, degraded)
            | _ -> None)
          (fun id -> Wire.Op_ecc { id; v })
      in
      match result with
      | Some (vertex, dist, code, degraded) ->
          cands := (vertex, dist) :: !cands;
          bump acc ~code ~degraded
      | None ->
          let ds = fb_row t ~opname ~shard:s ~source:v ~targets:ow in
          (match Obs.Ops.farthest_of (Array.mapi (fun i d -> (ow.(i), d)) ds)
           with
          | Some c -> cands := c :: !cands
          | None -> ());
          degrade acc
    end
  done;
  Array.of_list !cands

let op_uninstrumented t req =
  let opname = Obs.Ops.name req in
  let acc = { code = Wire.source_primary; dg = false } in
  let finish response = { response; source = acc.code; degraded = acc.dg } in
  match req with
  | Obs.Ops.Dist { u; v } ->
      let (a : answer) = (query_batch_named t ~opname [| (u, v) |]).(0) in
      { response = Obs.Ops.R_dist a.dist; source = a.source;
        degraded = a.degraded }
  | Obs.Ops.Batch pairs ->
      let answers = query_batch_named t ~opname pairs in
      Array.iter
        (fun (a : answer) -> bump acc ~code:a.source ~degraded:a.degraded)
        answers;
      finish (Obs.Ops.R_dists (Array.map (fun (a : answer) -> a.dist) answers))
  | Obs.Ops.One_to_many { source; targets } ->
      finish (Obs.Ops.R_dists (row_op t acc ~opname ~source ~targets))
  | Obs.Ops.Many_to_many { sources; targets } ->
      finish
        (Obs.Ops.R_matrix
           (Array.map
              (fun source -> row_op t acc ~opname ~source ~targets)
              sources))
  | Obs.Ops.Top_k_nearest { source; k } ->
      let owned = owned_by_shard t in
      let cands = ref [] in
      for s = t.cfg.shards - 1 downto 0 do
        let ow = owned.(s) in
        if Array.length ow > 0 then begin
          let result =
            shard_call t s
              ~extract:(function
                | Wire.Topk_payload { pairs; source; degraded; _ } ->
                    Some (pairs, source, degraded)
                | _ -> None)
              (fun id -> Wire.Op_topk { id; source; k })
          in
          match result with
          | Some (pairs, code, degraded) ->
              cands := pairs :: !cands;
              bump acc ~code ~degraded
          | None ->
              let ds = fb_row t ~opname ~shard:s ~source ~targets:ow in
              cands := Array.mapi (fun i d -> (ow.(i), d)) ds :: !cands;
              degrade acc
        end
      done;
      (* the global k smallest live in the union of per-shard k
         smallest *)
      finish (Obs.Ops.R_nearest (Obs.Ops.k_nearest ~k (Array.concat !cands)))
  | Obs.Ops.Eccentricity v -> (
      match Obs.Ops.farthest_of (ecc_candidates t acc ~opname v) with
      | Some (_, d) -> finish (Obs.Ops.R_ecc d)
      | None -> finish (Obs.Ops.R_ecc 0))
  | Obs.Ops.Farthest v -> (
      match Obs.Ops.farthest_of (ecc_candidates t acc ~opname v) with
      | Some (vertex, dist) -> finish (Obs.Ops.R_farthest { vertex; dist })
      | None -> finish (Obs.Ops.R_farthest { vertex = v; dist = 0 }))
  | Obs.Ops.Diameter_radius ->
      let owned = owned_by_shard t in
      let dia = ref 0 and rad = ref max_int and saw = ref false in
      for s = 0 to t.cfg.shards - 1 do
        let ow = owned.(s) in
        if Array.length ow > 0 then begin
          saw := true;
          let result =
            shard_call t s
              ~extract:(function
                | Wire.Diam_payload
                    { diameter; radius; vertices; source; degraded; _ }
                  when vertices > 0 ->
                    Some (diameter, radius, source, degraded)
                | _ -> None)
              (fun id -> Wire.Op_diam { id })
          in
          match result with
          | Some (d, r, code, degraded) ->
              if d > !dia then dia := d;
              if r < !rad then rad := r;
              bump acc ~code ~degraded
          | None ->
              Array.iter
                (fun w ->
                  let e = fb_ecc t ~opname ~shard:s w in
                  if e > !dia then dia := e;
                  if e < !rad then rad := e)
                ow;
              degrade acc
        end
      done;
      if not !saw then finish (Obs.Ops.R_diam_rad { diameter = 0; radius = 0 })
      else finish (Obs.Ops.R_diam_rad { diameter = !dia; radius = !rad })

let op t req =
  if t.down then invalid_arg "Router.op: router is shut down";
  (match Obs.Ops.validate ~n:(Graph.n t.cfg.graph) req with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Router.op: " ^ msg));
  (* trace first, then heal: backoff waits spent healing show up as
     spans under this query's root, while the instrumented window below
     keeps its historical meaning (serve time only) *)
  let began = trace_begin t ("router." ^ Obs.Ops.name req) in
  Fun.protect
    ~finally:(fun () -> if began then trace_end t)
    (fun () ->
      heal t;
      Obs.Obs.instrument_op ~clock:t.clock
        ~exemplar:(fun () -> trace_exemplar t ())
        ~prefix:"router.ops" t.reg (op_uninstrumented t) req)

(* ----- introspection ------------------------------------------------- *)

let supervisor t = t.sup
let metrics t = t.reg
let pid t shard = Option.map (fun c -> c.c_pid) t.conns.(shard)

let merged_snapshot t =
  heal t;
  let snaps = ref [] in
  for s = t.cfg.shards - 1 downto 0 do
    match t.conns.(s) with
    | None -> ()
    | Some conn -> (
        let id = fresh_id t in
        match send_frame conn (Wire.encode_request (Wire.Stats { id })) with
        | Error _ -> crash t s
        | Ok () -> (
            match
              recv_matching conn ~id
                ~until:(Unix.gettimeofday () +. deadline_s t)
            with
            | Ok (Wire.Stats_payload { data; _ }) -> (
                match Obs.Metrics.snapshot_of_wire data with
                | Ok snap ->
                    Supervisor.on_success t.sup s;
                    snaps :=
                      Obs.Metrics.prefix_snapshot (Printf.sprintf "shard%d." s)
                        snap
                      :: !snaps
                | Error _ ->
                    Obs.Metrics.incr t.ctr.m_bad_frames;
                    apply_verdict t s (Supervisor.on_soft_failure t.sup s))
            | Ok _ | Error (Wire_err (Wire.Bad_opcode _ | Wire.Bad_payload _))
              ->
                Obs.Metrics.incr t.ctr.m_bad_frames;
                apply_verdict t s (Supervisor.on_soft_failure t.sup s)
            | Error Timeout ->
                Obs.Metrics.incr t.ctr.m_timeouts;
                apply_verdict t s (Supervisor.on_soft_failure t.sup s)
            | Error (Wire_err _) -> crash t s))
  done;
  Obs.Metrics.union_snapshots (Obs.Metrics.snapshot t.reg :: !snaps)

(* Pull every live worker's span store, merge with the router's own,
   and reassemble into one tree per trace. Failures follow the same
   soft taxonomy as [merged_snapshot]: a shard that cannot report its
   spans degrades the fetch, never the caller. *)
let trace_trees t =
  match t.tstore with
  | None -> []
  | Some store ->
      heal t;
      let spans = ref (Obs.Trace_ctx.spans store) in
      for s = t.cfg.shards - 1 downto 0 do
        match t.conns.(s) with
        | None -> ()
        | Some conn -> (
            let id = fresh_id t in
            match
              send_frame conn (Wire.encode_request (Wire.Trace_fetch { id }))
            with
            | Error _ -> crash t s
            | Ok () -> (
                match
                  recv_matching conn ~id
                    ~until:(Unix.gettimeofday () +. deadline_s t)
                with
                | Ok (Wire.Trace_payload { data; _ }) -> (
                    match Obs.Trace_ctx.spans_of_wire data with
                    | Ok sps ->
                        Supervisor.on_success t.sup s;
                        spans := !spans @ sps
                    | Error _ ->
                        Obs.Metrics.incr t.ctr.m_bad_frames;
                        apply_verdict t s (Supervisor.on_soft_failure t.sup s))
                | Ok _
                | Error (Wire_err (Wire.Bad_opcode _ | Wire.Bad_payload _)) ->
                    Obs.Metrics.incr t.ctr.m_bad_frames;
                    apply_verdict t s (Supervisor.on_soft_failure t.sup s)
                | Error Timeout ->
                    Obs.Metrics.incr t.ctr.m_timeouts;
                    apply_verdict t s (Supervisor.on_soft_failure t.sup s)
                | Error (Wire_err _) -> crash t s))
      done;
      Obs.Trace_ctx.tree !spans

let shutdown t =
  if not t.down then begin
    t.down <- true;
    Array.iteri
      (fun s conn ->
        match conn with
        | None -> ()
        | Some c ->
            (try
               ignore (Wire.write_frame c.c_fd (Wire.encode_request Wire.Shutdown))
             with _ -> ());
            (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
            (try Unix.kill c.c_pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap c.c_pid;
            t.conns.(s) <- None)
      t.conns
  end
