open Repro_graph
open Repro_hub
open Repro_serve
module Obs = Repro_obs

type config = {
  graph : Graph.t;
  labels : Hub_label.t option;
  mmap : Mmap_hub.t option;
  compact : Compact_hub.t option;
  shards : int;
  shard : int;
  partition : Partition.spec;
  spot_check_every : int;
  quarantine_after : int;
  step_budget : int option;
  chaos : Fault_injector.chaos option;
  clock_step : int64 option;
  seed : int;
}

let default_config graph =
  {
    graph;
    labels = None;
    mmap = None;
    compact = None;
    shards = 1;
    shard = 0;
    partition = Partition.Range;
    spot_check_every = 1;
    quarantine_after = 3;
    step_budget = None;
    chaos = None;
    clock_step = None;
    seed = 0;
  }

(* Applying a chaos plan is the only non-obvious part of the loop: the
   fault fires exactly once, in place of (or around) the write of the
   [after_frames]-th response frame. Kill-class faults use
   [Unix._exit] so no at_exit machinery (channel flushing in the
   forked parent image) runs in the doomed child. *)
let write_response ~chaos ~frames_written output resp =
  let frame = Wire.encode_response resp in
  incr frames_written;
  let fire =
    match chaos with
    | Some (c : Fault_injector.chaos) -> !frames_written = c.after_frames
    | None -> false
  in
  if not fire then Wire.write_frame output frame
  else
    match (Option.get chaos).fault with
    | Fault_injector.Kill -> Unix._exit 137
    | Fault_injector.Hang ->
        while true do
          Unix.sleep 3600
        done;
        assert false
    | Fault_injector.Truncate_frame ->
        let half = max 1 (String.length frame / 2) in
        let b = Bytes.unsafe_of_string frame in
        let rec go off len =
          if len > 0 then
            match Unix.write output b off len with
            | k -> go (off + k) (len - k)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
            | exception Unix.Unix_error (_, _, _) -> ()
        in
        go 0 half;
        Unix._exit 137
    | Fault_injector.Corrupt_frame ->
        let b = Bytes.of_string frame in
        for i = 4 to Bytes.length b - 1 do
          Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0xff)
        done;
        Wire.write_frame output (Bytes.unsafe_to_string b)
    | Fault_injector.Slow_write ->
        let rec dribble i =
          if i >= String.length frame then Ok ()
          else begin
            Unix.sleepf 0.05;
            match Wire.write_frame output (String.sub frame i 1) with
            | Ok () -> dribble (i + 1)
            | Error _ as e -> e
          end
        in
        dribble 0

let build_backend cfg metrics clock =
  let primary, primary_ops =
    match (cfg.mmap, cfg.compact, cfg.labels) with
    | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
        invalid_arg "Worker.run: pass at most one of ~labels/~mmap/~compact"
    | Some store, None, None ->
        (* Zero-copy mode: every worker maps the same whole file (one
           page-cache copy fleet-wide), so there is no heap slice to
           cut — partition routing at the router already confines which
           pairs reach this shard. *)
        if Mmap_hub.n store <> Graph.n cfg.graph then
          invalid_arg "Worker.run: mmap store and graph disagree on n";
        ( Some (Resilient_oracle.mmap_primary ?step_budget:cfg.step_budget store),
          Some (Mmap_hub.ops store) )
    | None, Some store, None ->
        (* Compressed mode: like mmap mode, every worker maps the same
           whole HUBFLAT2 file through the page cache — now ~6x fewer
           resident bytes per fleet. *)
        if Compact_hub.n store <> Graph.n cfg.graph then
          invalid_arg "Worker.run: compact store and graph disagree on n";
        ( Some
            (Resilient_oracle.compact_primary ?step_budget:cfg.step_budget
               store),
          Some (Compact_hub.ops store) )
    | None, None, Some labels ->
        let slice =
          Partition.slice cfg.partition ~shards:cfg.shards ~shard:cfg.shard
            labels
        in
        let flat = Flat_hub.of_labels slice in
        ( Some (Resilient_oracle.flat_primary ?step_budget:cfg.step_budget flat),
          Some (Flat_hub.ops flat) )
    | None, None, None -> (None, None)
  in
  let oracle =
    Resilient_oracle.create ?step_budget:cfg.step_budget
      ~spot_check_every:cfg.spot_check_every
      ~quarantine_after:cfg.quarantine_after ~metrics ?primary ?primary_ops
      cfg.graph
  in
  ( oracle,
    Obs.Obs.instrument ?clock ~prefix:"worker" metrics
      (Resilient_oracle.backend oracle) )

let run ~input ~output cfg =
  if cfg.shard < 0 || cfg.shard >= cfg.shards then
    invalid_arg "Worker.run: shard out of range";
  let metrics = Obs.Metrics.create () in
  let clock =
    Option.map
      (fun step -> Obs.Clock.read (Obs.Clock.manual ~auto_step:step ()))
      cfg.clock_step
  in
  let oracle, backend = build_backend cfg metrics clock in
  (* the shard's owned vertices, ascending — every aggregate op reads
     label rows only at these entries, which Partition.slice keeps
     exact for any source *)
  let owned =
    let n = Graph.n cfg.graph in
    let buf = Array.make n 0 and k = ref 0 in
    for v = 0 to n - 1 do
      if Partition.owner cfg.partition ~shards:cfg.shards ~n v = cfg.shard
      then begin
        buf.(!k) <- v;
        incr k
      end
    done;
    Array.sub buf 0 !k
  in
  (* Trace recording: spans are timed on the worker's own clock domain
     and kept in a bounded store the router drains via Trace_fetch. The
     current request's trace id doubles as the exemplar for the
     worker.ops.* latency histograms. *)
  let wclk =
    match clock with Some c -> c | None -> Obs.Clock.monotonic
  in
  let tstore = Obs.Trace_ctx.store ~capacity:1024 in
  let tseq = ref 0 in
  let cur_exemplar = ref None in
  let serve_op =
    Obs.Obs.instrument_op ?clock
      ~exemplar:(fun () -> !cur_exemplar)
      ~prefix:"worker.ops" metrics
      (Resilient_oracle.op oracle)
  in
  let resp_degraded = function
    | Wire.Answer { degraded; _ }
    | Wire.Row_payload { degraded; _ }
    | Wire.Ecc_payload { degraded; _ }
    | Wire.Topk_payload { degraded; _ }
    | Wire.Diam_payload { degraded; _ } ->
        degraded
    | Wire.Error_frame _ -> true
    | Wire.Pong _ | Wire.Stats_payload _ | Wire.Trace_payload _ -> false
  in
  (* Wrap one request's handler in a child span of [ctx]. The span is
     recorded when the context was (force-)sampled upstream, or when
     this worker itself served a degraded/failed answer — the local
     evidence for a trace the router will force-sample on its side. *)
  let with_trace ctx opname compute =
    match ctx with
    | None ->
        cur_exemplar := None;
        compute ()
    | Some (c : Obs.Trace_ctx.t) ->
        cur_exemplar :=
          (if Obs.Trace_ctx.recorded c then Some (Obs.Trace_ctx.id_string c)
           else None);
        let t0 = wclk () in
        let resp = compute () in
        if Obs.Trace_ctx.recorded c || resp_degraded resp then begin
          let seq = !tseq in
          incr tseq;
          let child = Obs.Trace_ctx.child c ~seq in
          Obs.Trace_ctx.record tstore
            {
              Obs.Trace_ctx.trace_hi = c.hi;
              trace_lo = c.lo;
              span_id = child.span_id;
              parent_id = c.span_id;
              name = Printf.sprintf "shard%d.%s" cfg.shard opname;
              start_ns = t0;
              elapsed_ns = Int64.sub (wclk ()) t0;
            }
        end;
        resp
  in
  let source_code src =
    Wire.source_code_of_name (Resilient_oracle.source_name src)
  in
  let shard_gauge = Obs.Metrics.gauge metrics "worker.shard" in
  Obs.Metrics.set_gauge shard_gauge cfg.shard;
  let seed_gauge = Obs.Metrics.gauge metrics "worker.seed" in
  Obs.Metrics.set_gauge seed_gauge cfg.seed;
  let bad_frames = Obs.Metrics.counter metrics "worker.bad_frames" in
  let frames_written = ref 0 in
  let send resp =
    match write_response ~chaos:cfg.chaos ~frames_written output resp with
    | Ok () -> true
    | Error _ -> false (* router hung up; stop serving *)
  in
  let rec loop () =
    match Wire.read_request_ctx input with
    | Ok (Wire.Query { id; u; v }, ctx) ->
        let resp =
          with_trace ctx "dist" (fun () ->
              match Obs.Backend.query_detailed backend u v with
              | dist, trace ->
                  let source =
                    Wire.source_code_of_name trace.Obs.Trace.source
                  in
                  Wire.Answer
                    {
                      id;
                      dist;
                      source;
                      degraded = source <> Wire.source_primary;
                    }
              | exception Invalid_argument msg ->
                  Wire.Error_frame { id; code = Wire.err_bad_request; msg })
        in
        if send resp then loop ()
    | Ok (Wire.Op_row { id; source; targets }, ctx) ->
        let resp =
          with_trace ctx "one_to_many" (fun () ->
          match serve_op (Obs.Ops.One_to_many { source; targets }) with
          | Obs.Ops.R_dists dists, src ->
              let source = source_code src in
              Wire.Row_payload
                { id; dists; source; degraded = source <> Wire.source_primary }
          | _ ->
              Wire.Error_frame
                {
                  id;
                  code = Wire.err_unavailable;
                  msg = "unexpected response shape";
                }
          | exception Invalid_argument msg ->
              Wire.Error_frame { id; code = Wire.err_bad_request; msg })
        in
        if send resp then loop ()
    | Ok (Wire.Op_ecc { id; v }, ctx) ->
        let resp =
          with_trace ctx "eccentricity" (fun () ->
          if Array.length owned = 0 then
            Wire.Ecc_payload
              {
                id;
                vertex = -1;
                dist = 0;
                source = Wire.source_primary;
                degraded = false;
              }
          else
            match serve_op (Obs.Ops.One_to_many { source = v; targets = owned })
            with
            | Obs.Ops.R_dists ds, src -> (
                match
                  Obs.Ops.farthest_of (Array.mapi (fun i d -> (owned.(i), d)) ds)
                with
                | Some (vertex, dist) ->
                    let source = source_code src in
                    Wire.Ecc_payload
                      {
                        id;
                        vertex;
                        dist;
                        source;
                        degraded = source <> Wire.source_primary;
                      }
                | None ->
                    Wire.Error_frame
                      {
                        id;
                        code = Wire.err_unavailable;
                        msg = "empty reduction";
                      })
            | _ ->
                Wire.Error_frame
                  {
                    id;
                    code = Wire.err_unavailable;
                    msg = "unexpected response shape";
                  }
            | exception Invalid_argument msg ->
                Wire.Error_frame { id; code = Wire.err_bad_request; msg })
        in
        if send resp then loop ()
    | Ok (Wire.Op_topk { id; source = s; k }, ctx) ->
        let resp =
          with_trace ctx "top_k_nearest" (fun () ->
          if k < 0 then
            Wire.Error_frame
              {
                id;
                code = Wire.err_bad_request;
                msg = "top-k: k must be non-negative";
              }
          else if Array.length owned = 0 then
            Wire.Topk_payload
              { id; pairs = [||]; source = Wire.source_primary; degraded = false }
          else
            match serve_op (Obs.Ops.One_to_many { source = s; targets = owned })
            with
            | Obs.Ops.R_dists ds, src ->
                let pairs =
                  Obs.Ops.k_nearest ~k
                    (Array.mapi (fun i d -> (owned.(i), d)) ds)
                in
                let source = source_code src in
                Wire.Topk_payload
                  { id; pairs; source; degraded = source <> Wire.source_primary }
            | _ ->
                Wire.Error_frame
                  {
                    id;
                    code = Wire.err_unavailable;
                    msg = "unexpected response shape";
                  }
            | exception Invalid_argument msg ->
                Wire.Error_frame { id; code = Wire.err_bad_request; msg })
        in
        if send resp then loop ()
    | Ok (Wire.Op_diam { id }, ctx) ->
        let resp =
          with_trace ctx "diameter_radius" (fun () ->
          if Array.length owned = 0 then
            Wire.Diam_payload
              {
                id;
                diameter = 0;
                radius = 0;
                vertices = 0;
                source = Wire.source_primary;
                degraded = false;
              }
          else begin
            (* one global eccentricity per owned vertex — exact on a
               slice because the source is owned *)
            let dia = ref 0
            and rad = ref max_int
            and code = ref Wire.source_primary
            and bad = ref None in
            Array.iter
              (fun w ->
                if !bad = None then
                  match serve_op (Obs.Ops.Eccentricity w) with
                  | Obs.Ops.R_ecc e, src ->
                      if e > !dia then dia := e;
                      if e < !rad then rad := e;
                      let c = source_code src in
                      if c > !code then code := c
                  | _ ->
                      bad :=
                        Some
                          (Wire.Error_frame
                             {
                               id;
                               code = Wire.err_unavailable;
                               msg = "unexpected response shape";
                             })
                  | exception Invalid_argument msg ->
                      bad :=
                        Some
                          (Wire.Error_frame
                             { id; code = Wire.err_bad_request; msg }))
              owned;
            match !bad with
            | Some e -> e
            | None ->
                Wire.Diam_payload
                  {
                    id;
                    diameter = !dia;
                    radius = !rad;
                    vertices = Array.length owned;
                    source = !code;
                    degraded = !code <> Wire.source_primary;
                  }
          end)
        in
        if send resp then loop ()
    | Ok (Wire.Ping { id }, _) -> if send (Wire.Pong { id }) then loop ()
    | Ok (Wire.Stats { id }, _) ->
        (* no runtime-gauge sampling here: GC counters depend on the
           process's whole allocation history, and a forked worker's
           differs run to run — the merged snapshot must stay
           byte-identical across same-seed chaos runs *)
        let data = Obs.Metrics.(snapshot_to_wire (snapshot metrics)) in
        if send (Wire.Stats_payload { id; data }) then loop ()
    | Ok (Wire.Trace_fetch { id }, _) ->
        let data = Obs.Trace_ctx.spans_to_wire (Obs.Trace_ctx.spans tstore) in
        if send (Wire.Trace_payload { id; data }) then loop ()
    | Ok (Wire.Shutdown, _) -> ()
    | Error ((Wire.Bad_opcode _ | Wire.Bad_payload _) as e) ->
        (* the frame was read in full; the stream is still in sync *)
        Obs.Metrics.incr bad_frames;
        let resp =
          Wire.Error_frame
            {
              id = 0;
              code = Wire.err_bad_request;
              msg = Wire.error_to_string e;
            }
        in
        if send resp then loop ()
    | Error (Wire.Eof | Wire.Truncated _ | Wire.Negative_length _
            | Wire.Oversized _ | Wire.Io _) ->
        (* EOF or a desynchronised stream: nothing sane can follow *)
        ()
  in
  loop ()
