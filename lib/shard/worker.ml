open Repro_graph
open Repro_hub
open Repro_serve
module Obs = Repro_obs

type config = {
  graph : Graph.t;
  labels : Hub_label.t option;
  mmap : Mmap_hub.t option;
  shards : int;
  shard : int;
  partition : Partition.spec;
  spot_check_every : int;
  quarantine_after : int;
  step_budget : int option;
  chaos : Fault_injector.chaos option;
  clock_step : int64 option;
  seed : int;
}

let default_config graph =
  {
    graph;
    labels = None;
    mmap = None;
    shards = 1;
    shard = 0;
    partition = Partition.Range;
    spot_check_every = 1;
    quarantine_after = 3;
    step_budget = None;
    chaos = None;
    clock_step = None;
    seed = 0;
  }

(* Applying a chaos plan is the only non-obvious part of the loop: the
   fault fires exactly once, in place of (or around) the write of the
   [after_frames]-th response frame. Kill-class faults use
   [Unix._exit] so no at_exit machinery (channel flushing in the
   forked parent image) runs in the doomed child. *)
let write_response ~chaos ~frames_written output resp =
  let frame = Wire.encode_response resp in
  incr frames_written;
  let fire =
    match chaos with
    | Some (c : Fault_injector.chaos) -> !frames_written = c.after_frames
    | None -> false
  in
  if not fire then Wire.write_frame output frame
  else
    match (Option.get chaos).fault with
    | Fault_injector.Kill -> Unix._exit 137
    | Fault_injector.Hang ->
        while true do
          Unix.sleep 3600
        done;
        assert false
    | Fault_injector.Truncate_frame ->
        let half = max 1 (String.length frame / 2) in
        let b = Bytes.unsafe_of_string frame in
        let rec go off len =
          if len > 0 then
            match Unix.write output b off len with
            | k -> go (off + k) (len - k)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
            | exception Unix.Unix_error (_, _, _) -> ()
        in
        go 0 half;
        Unix._exit 137
    | Fault_injector.Corrupt_frame ->
        let b = Bytes.of_string frame in
        for i = 4 to Bytes.length b - 1 do
          Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0xff)
        done;
        Wire.write_frame output (Bytes.unsafe_to_string b)
    | Fault_injector.Slow_write ->
        let rec dribble i =
          if i >= String.length frame then Ok ()
          else begin
            Unix.sleepf 0.05;
            match Wire.write_frame output (String.sub frame i 1) with
            | Ok () -> dribble (i + 1)
            | Error _ as e -> e
          end
        in
        dribble 0

let build_backend cfg metrics clock =
  let primary =
    match (cfg.mmap, cfg.labels) with
    | Some _, Some _ ->
        invalid_arg "Worker.run: pass ~labels or ~mmap, not both"
    | Some store, None ->
        (* Zero-copy mode: every worker maps the same whole file (one
           page-cache copy fleet-wide), so there is no heap slice to
           cut — partition routing at the router already confines which
           pairs reach this shard. *)
        if Mmap_hub.n store <> Graph.n cfg.graph then
          invalid_arg "Worker.run: mmap store and graph disagree on n";
        Some (Resilient_oracle.mmap_primary ?step_budget:cfg.step_budget store)
    | None, Some labels ->
        let slice =
          Partition.slice cfg.partition ~shards:cfg.shards ~shard:cfg.shard
            labels
        in
        let flat = Flat_hub.of_labels slice in
        Some (Resilient_oracle.flat_primary ?step_budget:cfg.step_budget flat)
    | None, None -> None
  in
  let oracle =
    Resilient_oracle.create ?step_budget:cfg.step_budget
      ~spot_check_every:cfg.spot_check_every
      ~quarantine_after:cfg.quarantine_after ~metrics ?primary cfg.graph
  in
  Obs.Obs.instrument ?clock ~prefix:"worker" metrics
    (Resilient_oracle.backend oracle)

let run ~input ~output cfg =
  if cfg.shard < 0 || cfg.shard >= cfg.shards then
    invalid_arg "Worker.run: shard out of range";
  let metrics = Obs.Metrics.create () in
  let clock =
    Option.map
      (fun step -> Obs.Clock.read (Obs.Clock.manual ~auto_step:step ()))
      cfg.clock_step
  in
  let backend = build_backend cfg metrics clock in
  let shard_gauge = Obs.Metrics.gauge metrics "worker.shard" in
  Obs.Metrics.set_gauge shard_gauge cfg.shard;
  let seed_gauge = Obs.Metrics.gauge metrics "worker.seed" in
  Obs.Metrics.set_gauge seed_gauge cfg.seed;
  let bad_frames = Obs.Metrics.counter metrics "worker.bad_frames" in
  let frames_written = ref 0 in
  let send resp =
    match write_response ~chaos:cfg.chaos ~frames_written output resp with
    | Ok () -> true
    | Error _ -> false (* router hung up; stop serving *)
  in
  let rec loop () =
    match Wire.read_request input with
    | Ok (Wire.Query { id; u; v }) ->
        let resp =
          match Obs.Backend.query_detailed backend u v with
          | dist, trace ->
              let source = Wire.source_code_of_name trace.Obs.Trace.source in
              Wire.Answer
                { id; dist; source; degraded = source <> Wire.source_primary }
          | exception Invalid_argument msg ->
              Wire.Error_frame { id; code = Wire.err_bad_request; msg }
        in
        if send resp then loop ()
    | Ok (Wire.Ping { id }) -> if send (Wire.Pong { id }) then loop ()
    | Ok (Wire.Stats { id }) ->
        let data = Obs.Metrics.(snapshot_to_wire (snapshot metrics)) in
        if send (Wire.Stats_payload { id; data }) then loop ()
    | Ok Wire.Shutdown -> ()
    | Error ((Wire.Bad_opcode _ | Wire.Bad_payload _) as e) ->
        (* the frame was read in full; the stream is still in sync *)
        Obs.Metrics.incr bad_frames;
        let resp =
          Wire.Error_frame
            {
              id = 0;
              code = Wire.err_bad_request;
              msg = Wire.error_to_string e;
            }
        in
        if send resp then loop ()
    | Error (Wire.Eof | Wire.Truncated _ | Wire.Negative_length _
            | Wire.Oversized _ | Wire.Io _) ->
        (* EOF or a desynchronised stream: nothing sane can follow *)
        ()
  in
  loop ()
