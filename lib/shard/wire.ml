(* Length-prefixed binary frames. See wire.mli for the layout; the
   invariants that matter here:
   - decoding is total: every branch returns a typed error, and body
     reads are bounds-checked before any Bytes access;
   - encoding and decoding agree byte for byte (round-trip property in
     test_shard.ml);
   - the signed-length check runs before any allocation sized by
     attacker-controlled input. *)

type request =
  | Query of { id : int; u : int; v : int }
  | Ping of { id : int }
  | Stats of { id : int }
  | Shutdown
  | Op_row of { id : int; source : int; targets : int array }
  | Op_ecc of { id : int; v : int }
  | Op_topk of { id : int; source : int; k : int }
  | Op_diam of { id : int }
  | Trace_fetch of { id : int }

type response =
  | Answer of { id : int; dist : int; source : int; degraded : bool }
  | Pong of { id : int }
  | Stats_payload of { id : int; data : string }
  | Error_frame of { id : int; code : int; msg : string }
  | Row_payload of { id : int; dists : int array; source : int; degraded : bool }
  | Ecc_payload of {
      id : int;
      vertex : int;
      dist : int;
      source : int;
      degraded : bool;
    }
  | Topk_payload of {
      id : int;
      pairs : (int * int) array;
      source : int;
      degraded : bool;
    }
  | Diam_payload of {
      id : int;
      diameter : int;
      radius : int;
      vertices : int;
      source : int;
      degraded : bool;
    }
  | Trace_payload of { id : int; data : string }

let source_primary = 0
let source_bidirectional = 1
let source_bfs = 2
let source_router = 3
let source_other = 255

let source_code_of_name = function
  | "primary" -> source_primary
  | "bidirectional" -> source_bidirectional
  | "bfs" -> source_bfs
  | "router" -> source_router
  | _ -> source_other

let name_of_source_code c =
  if c = source_primary then "primary"
  else if c = source_bidirectional then "bidirectional"
  else if c = source_bfs then "bfs"
  else if c = source_router then "router"
  else "other"

let err_bad_request = 1
let err_unavailable = 2

type error =
  | Eof
  | Truncated of { wanted : int; got : int }
  | Negative_length of int
  | Oversized of int
  | Bad_opcode of int
  | Bad_payload of string
  | Io of string

let error_to_string = function
  | Eof -> "end of stream"
  | Truncated { wanted; got } ->
      Printf.sprintf "truncated frame: wanted %d bytes, got %d" wanted got
  | Negative_length l -> Printf.sprintf "negative frame length %d" l
  | Oversized l -> Printf.sprintf "oversized frame length %d" l
  | Bad_opcode op -> Printf.sprintf "unknown opcode 0x%02x" op
  | Bad_payload msg -> "bad payload: " ^ msg
  | Io msg -> "io error: " ^ msg

let max_frame_len = 1 lsl 20

(* opcodes: requests in 0x01..0x7f, responses in 0x81..0xff *)
let op_query = 0x01
let op_ping = 0x02
let op_stats = 0x03
let op_shutdown = 0x04
let op_op_row = 0x05
let op_op_ecc = 0x06
let op_op_topk = 0x07
let op_op_diam = 0x08
let op_trace_fetch = 0x09

(* 0x0f wraps another request with a versioned trace-context block; a
   dedicated opcode keeps every pre-context payload byte-identical and
   lets an old peer reject it cleanly as Bad_opcode without losing
   stream sync. *)
let op_ctx = 0x0f
let ctx_version = 1
let op_answer = 0x81
let op_pong = 0x82
let op_stats_payload = 0x83
let op_error = 0x84
let op_row_payload = 0x85
let op_ecc_payload = 0x86
let op_topk_payload = 0x87
let op_diam_payload = 0x88
let op_trace_payload = 0x89

(* ----- encoding ---------------------------------------------------- *)

let frame payload_len fill =
  let b = Bytes.create (4 + payload_len) in
  Bytes.set_int32_le b 0 (Int32.of_int payload_len);
  fill b;
  Bytes.unsafe_to_string b

let put_i64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let encode_request = function
  | Query { id; u; v } ->
      frame 25 (fun b ->
          Bytes.set_uint8 b 4 op_query;
          put_i64 b 5 id;
          put_i64 b 13 u;
          put_i64 b 21 v)
  | Ping { id } ->
      frame 9 (fun b ->
          Bytes.set_uint8 b 4 op_ping;
          put_i64 b 5 id)
  | Stats { id } ->
      frame 9 (fun b ->
          Bytes.set_uint8 b 4 op_stats;
          put_i64 b 5 id)
  | Shutdown -> frame 1 (fun b -> Bytes.set_uint8 b 4 op_shutdown)
  | Op_row { id; source; targets } ->
      let len = 17 + (8 * Array.length targets) in
      if len > max_frame_len then
        invalid_arg "Wire.encode_request: target list too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_op_row;
          put_i64 b 5 id;
          put_i64 b 13 source;
          Array.iteri (fun i w -> put_i64 b (21 + (8 * i)) w) targets)
  | Op_ecc { id; v } ->
      frame 17 (fun b ->
          Bytes.set_uint8 b 4 op_op_ecc;
          put_i64 b 5 id;
          put_i64 b 13 v)
  | Op_topk { id; source; k } ->
      frame 25 (fun b ->
          Bytes.set_uint8 b 4 op_op_topk;
          put_i64 b 5 id;
          put_i64 b 13 source;
          put_i64 b 21 k)
  | Op_diam { id } ->
      frame 9 (fun b ->
          Bytes.set_uint8 b 4 op_op_diam;
          put_i64 b 5 id)
  | Trace_fetch { id } ->
      frame 9 (fun b ->
          Bytes.set_uint8 b 4 op_trace_fetch;
          put_i64 b 5 id)

(* ctx payload: 0x0f | version | ctx length | ctx bytes | inner payload *)
let encode_request_ctx ?ctx req =
  match ctx with
  | None -> encode_request req
  | Some c ->
      let inner = encode_request req in
      let inner_len = String.length inner - 4 in
      let block = Repro_obs.Trace_ctx.encode c in
      let block_len = String.length block in
      let len = 3 + block_len + inner_len in
      if len > max_frame_len then
        invalid_arg "Wire.encode_request_ctx: frame too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_ctx;
          Bytes.set_uint8 b 5 ctx_version;
          Bytes.set_uint8 b 6 block_len;
          Bytes.blit_string block 0 b 7 block_len;
          Bytes.blit_string inner 4 b (7 + block_len) inner_len)

let encode_response = function
  | Answer { id; dist; source; degraded } ->
      frame 19 (fun b ->
          Bytes.set_uint8 b 4 op_answer;
          put_i64 b 5 id;
          put_i64 b 13 dist;
          Bytes.set_uint8 b 21 (source land 0xff);
          Bytes.set_uint8 b 22 (if degraded then 1 else 0))
  | Pong { id } ->
      frame 9 (fun b ->
          Bytes.set_uint8 b 4 op_pong;
          put_i64 b 5 id)
  | Stats_payload { id; data } ->
      let len = 9 + String.length data in
      if len > max_frame_len then
        invalid_arg "Wire.encode_response: stats payload too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_stats_payload;
          put_i64 b 5 id;
          Bytes.blit_string data 0 b 13 (String.length data))
  | Error_frame { id; code; msg } ->
      let len = 10 + String.length msg in
      if len > max_frame_len then
        invalid_arg "Wire.encode_response: error message too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_error;
          put_i64 b 5 id;
          Bytes.set_uint8 b 13 (code land 0xff);
          Bytes.blit_string msg 0 b 14 (String.length msg))
  | Row_payload { id; dists; source; degraded } ->
      let len = 11 + (8 * Array.length dists) in
      if len > max_frame_len then
        invalid_arg "Wire.encode_response: distance row too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_row_payload;
          put_i64 b 5 id;
          Bytes.set_uint8 b 13 (source land 0xff);
          Bytes.set_uint8 b 14 (if degraded then 1 else 0);
          Array.iteri (fun i d -> put_i64 b (15 + (8 * i)) d) dists)
  | Ecc_payload { id; vertex; dist; source; degraded } ->
      frame 27 (fun b ->
          Bytes.set_uint8 b 4 op_ecc_payload;
          put_i64 b 5 id;
          put_i64 b 13 vertex;
          put_i64 b 21 dist;
          Bytes.set_uint8 b 29 (source land 0xff);
          Bytes.set_uint8 b 30 (if degraded then 1 else 0))
  | Topk_payload { id; pairs; source; degraded } ->
      let len = 11 + (16 * Array.length pairs) in
      if len > max_frame_len then
        invalid_arg "Wire.encode_response: top-k payload too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_topk_payload;
          put_i64 b 5 id;
          Bytes.set_uint8 b 13 (source land 0xff);
          Bytes.set_uint8 b 14 (if degraded then 1 else 0);
          Array.iteri
            (fun i (v, d) ->
              put_i64 b (15 + (16 * i)) v;
              put_i64 b (23 + (16 * i)) d)
            pairs)
  | Diam_payload { id; diameter; radius; vertices; source; degraded } ->
      frame 35 (fun b ->
          Bytes.set_uint8 b 4 op_diam_payload;
          put_i64 b 5 id;
          put_i64 b 13 diameter;
          put_i64 b 21 radius;
          put_i64 b 29 vertices;
          Bytes.set_uint8 b 37 (source land 0xff);
          Bytes.set_uint8 b 38 (if degraded then 1 else 0))
  | Trace_payload { id; data } ->
      let len = 9 + String.length data in
      if len > max_frame_len then
        invalid_arg "Wire.encode_response: trace payload too large";
      frame len (fun b ->
          Bytes.set_uint8 b 4 op_trace_payload;
          put_i64 b 5 id;
          Bytes.blit_string data 0 b 13 (String.length data))

(* ----- pure decoding ------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_len s ~pos wanted =
  let got = String.length s - pos in
  if got >= wanted then Ok () else Error (Truncated { wanted; got })

let decode_frame s ~pos =
  if pos < 0 || pos > String.length s then
    Error (Bad_payload "position out of range")
  else if pos = String.length s then Error Eof
  else
    let* () = check_len s ~pos 4 in
    let len = Int32.to_int (String.get_int32_le s pos) in
    if len < 0 then Error (Negative_length len)
    else if len > max_frame_len then Error (Oversized len)
    else if len = 0 then Error (Bad_payload "empty frame: no opcode")
    else
      let* () = check_len s ~pos:(pos + 4) len in
      Ok (String.sub s (pos + 4) len, pos + 4 + len)

let get_i64 p off = Int64.to_int (String.get_int64_le p off)

let body_exact p wanted =
  let got = String.length p in
  if got = wanted then Ok ()
  else if got < wanted then Error (Truncated { wanted; got })
  else Error (Bad_payload (Printf.sprintf "%d trailing bytes" (got - wanted)))

let check_payload_min p wanted =
  let got = String.length p in
  if got >= wanted then Ok () else Error (Truncated { wanted; got })

let request_of_payload p =
  if String.length p = 0 then Error (Bad_payload "empty frame: no opcode")
  else
    let op = Char.code p.[0] in
    if op = op_query then
      let* () = body_exact p 25 in
      Ok (Query { id = get_i64 p 1; u = get_i64 p 9; v = get_i64 p 17 })
    else if op = op_ping then
      let* () = body_exact p 9 in
      Ok (Ping { id = get_i64 p 1 })
    else if op = op_stats then
      let* () = body_exact p 9 in
      Ok (Stats { id = get_i64 p 1 })
    else if op = op_shutdown then
      let* () = body_exact p 1 in
      Ok Shutdown
    else if op = op_op_row then
      let* () = check_payload_min p 17 in
      let rest = String.length p - 17 in
      if rest mod 8 <> 0 then
        Error (Bad_payload "op_row: target bytes not a multiple of 8")
      else
        Ok
          (Op_row
             {
               id = get_i64 p 1;
               source = get_i64 p 9;
               targets = Array.init (rest / 8) (fun i -> get_i64 p (17 + (8 * i)));
             })
    else if op = op_op_ecc then
      let* () = body_exact p 17 in
      Ok (Op_ecc { id = get_i64 p 1; v = get_i64 p 9 })
    else if op = op_op_topk then
      let* () = body_exact p 25 in
      Ok (Op_topk { id = get_i64 p 1; source = get_i64 p 9; k = get_i64 p 17 })
    else if op = op_op_diam then
      let* () = body_exact p 9 in
      Ok (Op_diam { id = get_i64 p 1 })
    else if op = op_trace_fetch then
      let* () = body_exact p 9 in
      Ok (Trace_fetch { id = get_i64 p 1 })
    else Error (Bad_opcode op)

(* Context-aware request decoding: 0x0f unwraps to (request, Some ctx);
   everything else falls through to the plain decoder with ctx = None.
   The inner payload is decoded by [request_of_payload] itself, so a
   nested 0x0f is rejected as Bad_opcode rather than recursed into. *)
let request_of_payload_ctx p =
  if String.length p > 0 && Char.code p.[0] = op_ctx then
    let* () = check_payload_min p 3 in
    let version = Char.code p.[1] in
    let block_len = Char.code p.[2] in
    let* () = check_payload_min p (3 + block_len) in
    let* ctx =
      if version <> ctx_version then
        (* forward compatibility: an unknown context version is skipped,
           not fatal — the inner request still decodes *)
        Ok None
      else if block_len <> Repro_obs.Trace_ctx.encoded_len then
        Error
          (Bad_payload
             (Printf.sprintf "trace context v1: bad length %d" block_len))
      else
        match Repro_obs.Trace_ctx.decode p ~pos:3 with
        | Ok ctx -> Ok (Some ctx)
        | Error msg -> Error (Bad_payload msg)
    in
    let inner = String.sub p (3 + block_len) (String.length p - 3 - block_len) in
    let* req = request_of_payload inner in
    Ok (req, ctx)
  else
    let* req = request_of_payload p in
    Ok (req, None)

let response_of_payload p =
  if String.length p = 0 then Error (Bad_payload "empty frame: no opcode")
  else
    let op = Char.code p.[0] in
    if op = op_answer then
      let* () = body_exact p 19 in
      Ok
        (Answer
           {
             id = get_i64 p 1;
             dist = get_i64 p 9;
             source = Char.code p.[17];
             degraded = Char.code p.[18] <> 0;
           })
    else if op = op_pong then
      let* () = body_exact p 9 in
      Ok (Pong { id = get_i64 p 1 })
    else if op = op_stats_payload then
      let* () = check_payload_min p 9 in
      Ok
        (Stats_payload
           { id = get_i64 p 1; data = String.sub p 9 (String.length p - 9) })
    else if op = op_error then
      let* () = check_payload_min p 10 in
      Ok
        (Error_frame
           {
             id = get_i64 p 1;
             code = Char.code p.[9];
             msg = String.sub p 10 (String.length p - 10);
           })
    else if op = op_row_payload then
      let* () = check_payload_min p 11 in
      let rest = String.length p - 11 in
      if rest mod 8 <> 0 then
        Error (Bad_payload "row_payload: distance bytes not a multiple of 8")
      else
        Ok
          (Row_payload
             {
               id = get_i64 p 1;
               source = Char.code p.[9];
               degraded = Char.code p.[10] <> 0;
               dists = Array.init (rest / 8) (fun i -> get_i64 p (11 + (8 * i)));
             })
    else if op = op_ecc_payload then
      let* () = body_exact p 27 in
      Ok
        (Ecc_payload
           {
             id = get_i64 p 1;
             vertex = get_i64 p 9;
             dist = get_i64 p 17;
             source = Char.code p.[25];
             degraded = Char.code p.[26] <> 0;
           })
    else if op = op_topk_payload then
      let* () = check_payload_min p 11 in
      let rest = String.length p - 11 in
      if rest mod 16 <> 0 then
        Error (Bad_payload "topk_payload: pair bytes not a multiple of 16")
      else
        Ok
          (Topk_payload
             {
               id = get_i64 p 1;
               source = Char.code p.[9];
               degraded = Char.code p.[10] <> 0;
               pairs =
                 Array.init (rest / 16) (fun i ->
                     (get_i64 p (11 + (16 * i)), get_i64 p (19 + (16 * i))));
             })
    else if op = op_diam_payload then
      let* () = body_exact p 35 in
      Ok
        (Diam_payload
           {
             id = get_i64 p 1;
             diameter = get_i64 p 9;
             radius = get_i64 p 17;
             vertices = get_i64 p 25;
             source = Char.code p.[33];
             degraded = Char.code p.[34] <> 0;
           })
    else if op = op_trace_payload then
      let* () = check_payload_min p 9 in
      Ok
        (Trace_payload
           { id = get_i64 p 1; data = String.sub p 9 (String.length p - 9) })
    else Error (Bad_opcode op)

(* ----- descriptor-level transport ----------------------------------- *)

let rec read_exact fd buf off len =
  if len = 0 then Ok ()
  else
    match Unix.read fd buf off len with
    | 0 -> Error (Truncated { wanted = off + len; got = off })
    | k -> read_exact fd buf (off + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len
    | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

let decode_after_header fd header =
  let len = Int32.to_int (Bytes.get_int32_le header 0) in
  if len < 0 then Error (Negative_length len)
  else if len > max_frame_len then Error (Oversized len)
  else if len = 0 then Error (Bad_payload "empty frame: no opcode")
  else
    let body = Bytes.create len in
    match read_exact fd body 0 len with
    | Error _ as e -> e
    | Ok () -> Ok (Bytes.unsafe_to_string body)

let rec read_frame fd =
  let header = Bytes.create 4 in
  match Unix.read fd header 0 4 with
  | 0 -> Error Eof
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* nothing was consumed; retry the whole frame read *)
      read_frame fd
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | k -> (
      match read_exact fd header k (4 - k) with
      | Error _ as e -> e
      | Ok () -> decode_after_header fd header)

let read_request fd =
  match read_frame fd with
  | Error _ as e -> e
  | Ok p -> request_of_payload p

let read_request_ctx fd =
  match read_frame fd with
  | Error _ as e -> e
  | Ok p -> request_of_payload_ctx p

let read_response fd =
  match read_frame fd with
  | Error _ as e -> e
  | Ok p -> response_of_payload p

let write_frame fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.write fd b off len with
      | k -> go (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0 (String.length s)
