(** Restart policy for shard workers — the router's brain.

    The supervisor is deliberately pure policy: it owns no file
    descriptors and never sleeps. The router reports what it observed
    ({!on_success}, {!on_soft_failure}, {!on_crash}) and the supervisor
    answers with a {!verdict}; how a backoff delay is honoured (advance
    the manual clock in tests, [sleepf] in production) is the caller's
    business. That split is what makes the chaos suite deterministic:
    the whole state machine can be driven from a unit test without a
    single process in sight.

    Per-shard state machine:

    {v
    Healthy --soft failure x suspect_after--> Suspect
    Healthy/Suspect --crash or suspect overflow--> Restarting
    Restarting --on_restarted--> Healthy
    Restarting --restart budget exhausted--> Quarantined (terminal)
    v}

    Soft failures are recoverable per-request anomalies — a deadline
    miss, a frame that would not parse. Crashes are EOF/EPIPE on the
    pipe or a failed health ping. Each restart costs one unit of the
    per-shard budget; the backoff before restart [k] is
    [base * 2^k] capped at [max_backoff_ns], plus a seeded jitter of up
    to [jitter_frac] of that value, so same-seed runs wait the same
    nanoseconds. *)

type state = Healthy | Suspect | Restarting | Quarantined

val state_name : state -> string

type config = {
  suspect_after : int;
      (** consecutive soft failures before the shard is treated as
          crashed; the first failure already marks it [Suspect] *)
  max_restarts : int;  (** restart budget per shard; 0 = never restart *)
  base_backoff_ns : int64;
  max_backoff_ns : int64;
  jitter_frac : float;  (** in [0, 1]; fraction of the backoff added *)
  deadline_ns : int64;  (** per-request deadline, for the router *)
  ping_every_ns : int64;  (** health-check cadence, for the router *)
}

val default_config : config
(** 2 soft failures to suspect, 3 restarts, 50ms base / 2s cap backoff,
    10% jitter, 2s deadline, 1s pings. *)

type verdict =
  | Keep  (** shard stays up; no action *)
  | Restart_after of int64  (** respawn after this many nanoseconds *)
  | Quarantined_now  (** budget exhausted — stop trying, degrade forever *)

type t

val create : seed:int -> shards:int -> config -> t
val config : t -> config
val state : t -> int -> state
val restarts_used : t -> int -> int

val on_success : t -> int -> unit
(** A good answer: clears the consecutive-failure streak, and a
    [Suspect] shard returns to [Healthy]. *)

val on_soft_failure : t -> int -> verdict
(** Timeout or unparseable frame. Marks the shard [Suspect]; once the
    streak reaches [suspect_after], escalates exactly like
    {!on_crash}. *)

val on_crash : t -> int -> verdict
(** EOF, EPIPE or failed ping. Spends one restart from the budget and
    answers [Restart_after backoff], or [Quarantined_now] when the
    budget is gone. Idempotent on quarantined shards. *)

val on_restarted : t -> int -> unit
(** The router respawned the worker and it answered a ping. *)
