(** The length-prefixed binary request/response codec of the sharded
    serving tier.

    One protocol drives every transport — a worker's stdin/stdout
    ([hubhard serve worker]), the router's [Unix] socketpairs, and any
    future TCP listener — because frames are self-delimiting:

    {v
    +----------------+---------+-------------------+
    | length (i32 LE)| opcode  | body (length - 1) |
    +----------------+---------+-------------------+
    v}

    [length] counts the payload (opcode byte included), is signed so a
    hostile prefix like [0xFFFFFFFF] surfaces as {!Negative_length}
    rather than a giant allocation, and is capped at {!max_frame_len}
    ({!Oversized}). Integers in bodies are 64-bit little-endian;
    strings are raw bytes running to the end of the frame.

    Every decoding entry point is total: malformed input yields a typed
    {!error}, never an exception and never a hang — the adversarial
    suite in [test_io_adversarial.ml] locks that in. The aggregate
    operations of the {!Repro_obs.Ops} algebra (eccentricity, top-k,
    one-to-many rows — see PAPERS.md/Ducoffe) ride the same framing as
    fresh opcodes ([0x05..0x08] requests, [0x85..0x88] responses); an
    unknown opcode is a per-frame {!Bad_opcode} error that leaves the
    stream in sync. *)

(** {1 Messages} *)

type request =
  | Query of { id : int; u : int; v : int }
      (** point-to-point distance; [id] is echoed in the response *)
  | Ping of { id : int }  (** health check *)
  | Stats of { id : int }  (** request the worker's metrics snapshot *)
  | Shutdown  (** drain and exit; no response *)
  | Op_row of { id : int; source : int; targets : int array }
      (** one-to-many: distances from [source] to each target, in
          order. The target count is derived from the frame length, so
          a list may hold at most [(max_frame_len - 17) / 8] ids. *)
  | Op_ecc of { id : int; v : int }
      (** eccentricity of [v] restricted to the worker's {e owned}
          vertices, with the farthest owned witness *)
  | Op_topk of { id : int; source : int; k : int }
      (** the k nearest {e owned} vertices to [source] *)
  | Op_diam of { id : int }
      (** diameter/radius of the owned-eccentricity set: max and min
          over owned [w] of ecc(w) (the router reduces shard maxima) *)
  | Trace_fetch of { id : int }
      (** request the worker's recorded trace spans (drains nothing;
          the worker's span store is bounded) *)

type response =
  | Answer of { id : int; dist : int; source : int; degraded : bool }
      (** [dist] uses the {!Repro_graph.Dist} convention; [source] is a
          {!source_code}; [degraded] marks answers not served by the
          healthy primary path *)
  | Pong of { id : int }
  | Stats_payload of { id : int; data : string }
      (** [data] is {!Repro_obs.Metrics.snapshot_to_wire} output *)
  | Error_frame of { id : int; code : int; msg : string }
      (** explicit in-band failure: the peer could not serve [id] *)
  | Row_payload of { id : int; dists : int array; source : int; degraded : bool }
      (** answer to [Op_row], distances in request-target order *)
  | Ecc_payload of {
      id : int;
      vertex : int;
      dist : int;
      source : int;
      degraded : bool;
    }
      (** answer to [Op_ecc]: the farthest owned vertex and its
          distance; [vertex = -1] when the shard owns no vertices *)
  | Topk_payload of {
      id : int;
      pairs : (int * int) array;
      source : int;
      degraded : bool;
    }
      (** answer to [Op_topk]: [(vertex, dist)] sorted by
          [(dist, vertex)] ascending *)
  | Diam_payload of {
      id : int;
      diameter : int;
      radius : int;
      vertices : int;
      source : int;
      degraded : bool;
    }
      (** answer to [Op_diam]; [vertices] is the owned count (0 means
          the shard contributed nothing and the router skips it) *)
  | Trace_payload of { id : int; data : string }
      (** [data] is {!Repro_obs.Trace_ctx.spans_to_wire} output *)

(** {1 Source and error codes} *)

val source_primary : int
val source_bidirectional : int
val source_bfs : int
val source_router : int
(** Answers synthesised by the router's local fallback oracle while the
    owning shard is down. *)

val source_code_of_name : string -> int
(** Maps the {!Repro_obs.Trace.t} [source] strings emitted by the
    resilient chain; unknown strings map to a reserved [other] code. *)

val name_of_source_code : int -> string

val err_bad_request : int
val err_unavailable : int

(** {1 Errors} *)

type error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated of { wanted : int; got : int }
      (** stream ended inside a header or body *)
  | Negative_length of int
  | Oversized of int
  | Bad_opcode of int
  | Bad_payload of string
  | Io of string  (** transport-level [Unix] error *)

val error_to_string : error -> string

val max_frame_len : int
(** Upper bound on the payload length accepted or produced (1 MiB). *)

(** {1 Pure string-level codec} *)

val encode_request : request -> string
(** Full frame, header included. *)

val encode_response : response -> string

val decode_frame : string -> pos:int -> (string * int, error) result
(** [(payload, next_pos)] of the frame starting at [pos]; [Eof] when
    [pos] is exactly the end of the buffer. *)

val request_of_payload : string -> (request, error) result
val response_of_payload : string -> (response, error) result

(** {1 Trace-context propagation}

    A request may be wrapped with a trace context: opcode [0x0f], then a
    version byte, a context-length byte, the context block
    ({!Repro_obs.Trace_ctx.encode}, 25 bytes in version 1) and the
    unmodified inner request payload. The wrapper is a {e separate}
    opcode so that a peer that predates it rejects the frame as
    {!Bad_opcode} (stream stays in sync, the caller sees an in-band
    error) and so that context-free frames stay byte-identical to the
    historical encoding. An unknown context {e version} is skipped —
    the inner request still decodes, with no context. Responses never
    carry a context; [0x0f] in a response payload is {!Bad_opcode}. *)

val encode_request_ctx :
  ?ctx:Repro_obs.Trace_ctx.t -> request -> string
(** With [ctx] absent this is exactly {!encode_request}. *)

val request_of_payload_ctx :
  string -> (request * Repro_obs.Trace_ctx.t option, error) result
(** Total, like {!request_of_payload} (which handles every non-[0x0f]
    payload, returning no context). A nested [0x0f] inner payload is
    {!Bad_opcode}. *)

(** {1 Descriptor-level transport} *)

val read_frame : Unix.file_descr -> (string, error) result
(** Blocking read of one payload. [Eof] on a clean end of stream,
    [Truncated] when the peer died mid-frame, [Io] on transport
    errors; retries [EINTR]. *)

val read_request : Unix.file_descr -> (request, error) result

val read_request_ctx :
  Unix.file_descr ->
  (request * Repro_obs.Trace_ctx.t option, error) result
(** {!read_frame} + {!request_of_payload_ctx}. *)

val read_response : Unix.file_descr -> (response, error) result

val write_frame : Unix.file_descr -> string -> (unit, error) result
(** Write a pre-encoded frame (from {!encode_request} /
    {!encode_response}), retrying short writes and [EINTR]; [Io] on a
    broken pipe. *)
