(** The router: owns the worker fleet, fans queries out, merges
    metrics, survives its workers.

    A router spawns [shards] workers (by {!Fork}ing and calling
    {!Worker.run} directly over a [Unix] socketpair, or by {!Exec}ing
    [hubhard serve worker] with the socket on stdin/stdout), routes
    each query pair to the shard owning it
    ({!Repro_hub.Partition.owner_of_pair}) and speaks {!Wire} over the
    pipes. Batches are pipelined per shard: all requests are written
    first, responses collected in id order, stale or reordered frames
    discarded by id.

    Failure handling is delegated to a {!Supervisor}: deadline misses
    and unparseable frames are soft failures, EOF/EPIPE are crashes.
    When the supervisor orders a restart the router waits out the
    backoff ({b advancing the manual clock} instead of sleeping when
    [clock_step] is set — that is what makes the chaos suite both fast
    and deterministic), SIGKILLs and reaps the old process, respawns,
    and confirms with a ping. Restarts happen {e between} batches; a
    shard that dies mid-batch degrades only its own partition for the
    rest of that batch, with the router's local search-only
    {!Repro_serve.Resilient_oracle} answering those pairs exactly —
    marked [source = source_router], [degraded = true]. A quarantined
    shard degrades its partition forever.

    All router-side accounting lands in a {!Repro_obs.Metrics} registry
    ([router.queries], [router.degraded], [router.restarts],
    [router.timeouts], [router.retries], [router.bad_frames],
    [router.latency_ns]); {!merged_snapshot} unions it with each live
    worker's snapshot under a [shard<i>.] prefix. Structured events
    ([router.spawn], [router.crash], [router.restart],
    [router.quarantine], …) go to the ambient
    {!Repro_obs.Events} sink when one is installed. *)

open Repro_graph
open Repro_hub
open Repro_serve

type spawn =
  | Fork  (** fork(2) before any domain pool exists — OCaml 5 forbids
              forking once domains run *)
  | Exec of (shard:int -> string array)
      (** argv for shard [i]; argv.(0) is the executable path *)

type trace_config = {
  sample_every : int;
      (** head-sample 1 in N traces (a deterministic hash of the trace
          id); [1] records everything *)
  slow_ns : int64;
      (** additionally force-record any query at least this slow;
          [0L] disables the threshold *)
  capacity : int;  (** bound on the router-side span store *)
}

val default_trace_config : trace_config
(** Sample everything, no slow threshold, 4096 spans. *)

type config = {
  graph : Graph.t;
  labels : Hub_label.t option;
  mmap : Mmap_hub.t option;
      (** zero-copy worker primaries: forked workers inherit the
          parent's mapping (one page-cache copy across the fleet);
          exec-mode spawn functions must arrange for the child to map
          the same file itself (the CLI appends [--mmap]). Mutually
          exclusive with [labels]. *)
  compact : Compact_hub.t option;
      (** compressed zero-copy worker primaries: the same spawn
          contract as [mmap] over a [HUBFLAT2] store (the CLI appends
          [--compact]). Mutually exclusive with [labels] and [mmap]. *)
  shards : int;
  partition : Partition.spec;
  supervisor : Supervisor.config;
  spot_check_every : int;
  quarantine_after : int;
  step_budget : int option;
  chaos : (int * Fault_injector.chaos) list;
      (** per-shard chaos plans, applied to the {e initial} spawn only
          — a restarted worker comes back clean *)
  clock_step : int64 option;
      (** manual clocks everywhere (workers' latency histograms, the
          router's, and backoff waits) for byte-stable snapshots *)
  seed : int;
  spawn : spawn;
  trace : trace_config option;
      (** distributed tracing: when set, every query mints a
          deterministic trace context from [(seed, sequence)],
          propagates it to the workers on the wire, and records spans
          for sampled, forced (retried/degraded) and slow traces.
          [None] (the default) sends context-free frames, byte-identical
          to the pre-tracing protocol. *)
}

val default_config : Graph.t -> config
(** Fork spawn, 2 shards, [Range] partition,
    {!Supervisor.default_config}, exhaustive spot checks, no chaos,
    monotonic clocks, seed 0, no tracing. *)

type answer = { dist : int; source : int; degraded : bool }
(** [source] is a {!Wire} source code; [degraded] is set on any answer
    not served by a healthy worker's primary path. *)

type t

val create : config -> t
(** Spawns and pings every worker. A worker that cannot be spawned or
    never answers its first ping goes straight through the supervisor's
    crash path (so a hopeless shard ends up quarantined, not fatal).
    Ignores [SIGPIPE] process-wide — dead workers must surface as
    [EPIPE], not kill the router. *)

val query : t -> int -> int -> answer
(** Routed single query; heals due restarts first.
    @raise Invalid_argument on out-of-range endpoints. *)

val query_batch : t -> (int * int) array -> answer array
(** Pipelined batch, one answer per pair, in order. Restarts are
    healed before the batch and never during it. *)

type op_result = {
  response : Repro_obs.Ops.response;
  source : int;
  degraded : bool;
}
(** [source] is the deepest {!Wire} source code that contributed to the
    merged answer (codes are ordered primary < bidirectional < bfs <
    router); [degraded] is set if {e any} contributing shard answered
    off its primary path or the router's local fallback served a dead
    shard's share. *)

val op : t -> Repro_obs.Ops.request -> op_result
(** Fan an {!Repro_obs.Ops} aggregate out to the owning shards and
    merge: one-to-many rows are scattered by target owner ([Op_row]),
    eccentricity/farthest take the per-shard farthest owned witness
    ([Op_ecc]) and reduce with the shared max-dist-min-vertex
    tie-break, top-k concatenates per-shard k-nearest candidate sets
    ([Op_topk]) and re-reduces, and diameter/radius take max/min over
    shard eccentricity extrema ([Op_diam]). [Dist]/[Batch] ride the
    existing {!query_batch} path. Heals due restarts first; a shard
    that fails mid-op (after one soft retry) has its share served
    exactly by the router's local search-only oracle with
    [source = source_router]. Responses are byte-identical to the
    in-process backends for every partition and shard count.
    Instrumented under [router.ops.<op>.*] in {!metrics}.
    @raise Invalid_argument on a request that fails
    {!Repro_obs.Ops.validate} or after {!shutdown}. *)

val supervisor : t -> Supervisor.t
val metrics : t -> Repro_obs.Metrics.t
(** The router's own registry (no worker content). *)

val pid : t -> int -> int option
(** The shard's live worker pid, if it has one ([None] while down). *)

val heal : t -> unit
(** Perform any due restarts now (normally implicit at batch start). *)

val merged_snapshot : t -> Repro_obs.Metrics.snapshot
(** Router registry ∪ each live worker's snapshot under [shard<i>.];
    workers that are down or quarantined contribute nothing. *)

val trace_trees : t -> (string * Repro_obs.Span.node) list
(** The end-to-end trace trees recorded so far, keyed and sorted by
    32-hex trace id: the router's span store merged with every live
    worker's (fetched over the wire), reassembled per trace. Each tree
    roots at the query's [router.<op>] span with [rpc.shard<i>[.w<j>]]
    child spans per shard call, [retry.shard<i>] /
    [recompute.shard<i>.<op>] / [backoff.shard<i>] spans on the unlucky
    paths, and the workers' own [shard<i>.<op>] spans nested under the
    rpc that carried their context. [[]] when tracing is off. A worker
    that cannot report its spans follows the same soft-failure taxonomy
    as {!merged_snapshot} — the tree is then partial, never an error.
    Span timestamps are raw per-process clock readings: offsets are
    comparable within one process's spans only. *)

val shutdown : t -> unit
(** Send [Shutdown] to every live worker, close the pipes, reap every
    child (SIGKILL stragglers). Idempotent. *)
