(** Zero-copy memory-mapped hub-label store.

    {!Flat_hub} answers queries from heap CSR arrays, which means every
    worker that serves a packed label file first reads and re-validates
    the whole thing into its own copy. This module instead maps the
    canonical [HUBFLAT1] file (see {!Hub_io}) read-only via
    [Unix.map_file] and answers the same two-pointer merge queries
    straight out of the mapping:

    - {e cold start is O(1)} in the label size — opening a store costs
      one [mmap] plus an O(n) header/offset validation, never an
      O(total) copy;
    - {e one physical copy}: every process mapping the same file shares
      the OS page cache, so a fleet of shard workers pays for the label
      bytes once;
    - {e larger-than-RAM} label sets stay servable — pages are demand
      -faulted and evictable.

    The price of skipping the copy is that validation must be explicit:
    {!load_res} turns {e every} malformed file — truncated at any byte,
    hostile header words, offsets that walk out of bounds — into a
    typed {!error}, never a segfault, [Invalid_argument] or torn read.
    The default validation is O(n) (header + the full offset table);
    since every data index the query path touches is bounded by a
    validated offset, unsafe reads are in-bounds even when the entry
    words themselves are garbage. Pass [~deep:true] (or call
    {!validate_entries}) to also scan all [2*total] entry words —
    sorted strictly-increasing hubs in [[0, n)], non-negative
    native-int distances — which restores the exact guarantees of
    {!Flat_hub.of_raw} at heap-parse cost.

    The mapping lives until the store is garbage-collected; unlinking
    the file after a successful load is safe (POSIX keeps mapped pages
    alive). The same optional direct-mapped cache as {!Flat_hub} is
    available; a cached store mutates heap-side cache arrays only — the
    mapping itself is never written. *)

type t

type error =
  | Io of string  (** open/stat/map failed (missing file, EACCES, ...) *)
  | Not_regular of string  (** not a regular file (directory, device, socket) *)
  | Too_short of { bytes : int }  (** smaller than magic + header *)
  | Misaligned of { bytes : int }  (** size not a whole number of 8-byte words *)
  | Bad_magic  (** first 8 bytes are not ["HUBFLAT1"] *)
  | Bad_header of { word : int; msg : string }
      (** [n]/[total] negative or overflowing a native int;
          [word] is the byte offset of the offending word *)
  | Length_mismatch of { expected_words : int; actual_words : int }
      (** file length disagrees with the header's [n]/[total] *)
  | Bad_offsets of { vertex : int; msg : string }
      (** offset table not monotone from 0 to [total] *)
  | Bad_entry of { vertex : int; entry : int; msg : string }
      (** deep scan only: hub out of range / unsorted, or bad distance *)

val error_to_string : error -> string

val load_res : ?cache_slots:int -> ?deep:bool -> string -> (t, error) result
(** Map a [HUBFLAT1] file read-only and validate it. [cache_slots]
    (default 0) configures the direct-mapped distance cache; [deep]
    (default [false]) additionally scans every entry word (see the
    module preamble for the exact contract). Never raises on malformed
    input; the file descriptor is closed before returning in every
    case (the mapping survives the close).
    @raise Invalid_argument if [cache_slots < 0]. *)

val validate_entries : t -> (unit, error) result
(** The O(total) entry scan of [~deep:true], runnable after the fact:
    checks every hubset is sorted by strictly increasing hub id in
    [[0, n)] with distances that are non-negative native ints. *)

val with_cache : cache_slots:int -> t -> t
(** The same mapping with a fresh cache ([0] removes it).
    @raise Invalid_argument if [cache_slots < 0]. *)

val n : t -> int
val total_size : t -> int

val size : t -> int -> int
(** Hubset size of a vertex.
    @raise Invalid_argument on an out-of-range vertex. *)

val hubs : t -> int -> (int * int) array
(** The hubset of a vertex as fresh [(hub, dist)] pairs (tests and
    debugging, not the hot path).
    @raise Invalid_argument on an out-of-range vertex. *)

val path : t -> string
(** The file this store was mapped from (informational — the mapping
    stays valid even if the path is unlinked afterwards). *)

val bytes : t -> int
(** Size in bytes of the mapping. *)

val to_flat : t -> Flat_hub.t
(** Materialise into a heap {!Flat_hub.t} (re-validating every entry
    via {!Flat_hub.of_raw}).
    @raise Invalid_argument if the mapped entries are malformed — a
    shallow-loaded mapping can hold garbage entry words. *)

val query : t -> int -> int -> int
(** Two-pointer merge intersection over the mapped words;
    {!Repro_graph.Dist.inf} when the hubsets are disjoint. Consults and
    fills the cache when one was configured.
    @raise Invalid_argument on out-of-range endpoints. *)

val query_many : ?pool:Repro_par.Pool.t -> t -> (int * int) array -> int array
(** Batched queries with the same contract as {!Flat_hub.query_many}:
    equals the query loop for any job count; cache-free stores fan out
    across the pool (the mapping is read-only), cached stores stay on
    the calling domain and merge hit/miss counts once per batch.
    @raise Invalid_argument if any endpoint is out of range. *)

val cache_stats : t -> (int * int) option
(** [Some (hits, misses)] for a cached store, [None] otherwise. *)

val space_words : t -> int
(** Words of the mapped label structure: [(n + 1) + 2 * total] — the
    same figure {!Flat_hub.space_words} reports for the equivalent heap
    store. The heap footprint of [t] itself is O(1) + cache. *)

val pp : Format.formatter -> t -> unit

val backend : t -> Repro_obs.Backend.t
(** The store as a uniform serving backend (name
    ["mmap-hub-labeling"]). Traces mirror {!Flat_hub.backend}:
    [entries_scanned = |S(u)| + |S(v)|], cache hit/miss flags on a
    cached store with [entries_scanned = 0] on a hit. *)

val ops : ?pool:Repro_par.Pool.t -> t -> Repro_obs.Backend.ops
(** The store as an ops backend, mirroring {!Flat_hub.ops}: [Dist] /
    [Batch] stay on the mapped words; aggregates run over a lazily
    built shared {!Hub_index} (which lives on the heap — the one
    departure from the zero-copy budget, paid only when an aggregate
    is first asked for). Byte-identical answers for any job count. *)
