(** Size accounting and reporting for hub labelings. *)

val sizes : Hub_label.t -> int array

val histogram : Hub_label.t -> (int * int) list
(** [(size, how many vertices)] pairs, sorted by size. *)

val quantile : Hub_label.t -> float -> int
(** [quantile t 0.5] is the median hubset size. *)

val bits_naive : Hub_label.t -> int
(** Bits of the naive binary encoding: each pair costs
    [⌈log₂ n⌉ + ⌈log₂ (1 + max stored distance)⌉] bits. This is the
    "log n overhead" encoding the related-work section contrasts with
    the compressed encodings of [GKU16]/[AGHP16a]. *)

val bits_per_vertex : Hub_label.t -> float

val report : Hub_label.t -> string
(** Multi-line human-readable summary. *)

(** {1 Measured on-disk cost}

    The paper's headline quantity is label {e bits}; these helpers
    measure what the two binary stores actually pay, rather than the
    information-theoretic [bits_naive] estimate. *)

type packed_sizes = {
  entries : int;  (** total label entries across all vertices *)
  avg_size : float;  (** average hubset size *)
  max_size : int;  (** largest hubset *)
  flat1_bytes : int;  (** whole [HUBFLAT1] image ({!Hub_io.flat_to_bytes}) *)
  flat2_bytes : int;  (** whole [HUBFLAT2] image ({!Compact_hub.to_bytes}) *)
  flat1_bits_per_entry : float;  (** [8 * flat1_bytes / entries] *)
  flat2_bits_per_entry : float;  (** [8 * flat2_bytes / entries] *)
}

val packed_sizes : Flat_hub.t -> packed_sizes
(** Encode the store both ways and measure ([0.] ratios on an empty
    store). *)

val packed_report : packed_sizes -> string
(** Multi-line human-readable summary, including the
    [flat1 / flat2] compression ratio. *)
