(** Packed flat-array hub-label store — the serving-grade layout.

    {!Hub_label.t} keeps one [(hub, dist)] tuple array per vertex; every
    access chases a pointer per pair. This module freezes a labeling
    into two flat int arrays in CSR style, the layout production hub
    labelings use (cf. the sorted contiguous label arrays of [AIY13] and
    the space-conscious encodings of Gawrychowski–Kosowski–Uznański,
    arXiv:1507.06240):

    - [offsets]: [n + 1] ints; the hubset of vertex [v] occupies entry
      indices [offsets.(v) .. offsets.(v+1) - 1];
    - [data]: [2 * total] ints, entry [i] stored interleaved as
      [data.(2i) = hub] and [data.(2i+1) = dist], entries of each
      vertex sorted by strictly increasing hub id.

    The graphs of this reproduction are undirected, so one direction
    serves both sides of a query (a directed variant would carry one
    such array pair per direction). Queries are the same two-pointer
    sorted merge intersection as {!Hub_label.query}, but over
    contiguous unboxed ints.

    An optional {e direct-mapped cache} memoises recently answered
    pairs: [cache_slots] slots, keyed by the unordered pair, each new
    answer evicting whatever previously hashed to its slot. Queries on
    a cached store mutate the cache, so a cached [t] must not be shared
    across threads without synchronisation. *)

type t

val of_labels : ?cache_slots:int -> Hub_label.t -> t
(** Freeze a labeling. [cache_slots] (default 0 = no cache) enables a
    direct-mapped distance cache with that many slots.
    @raise Invalid_argument if [cache_slots < 0]. *)

val of_raw : n:int -> offsets:int array -> data:int array -> t
(** Rebuild from raw CSR arrays (the deserialisation entry point),
    without a cache — see {!with_cache}.
    Validates every structural invariant: [offsets] has length [n+1],
    starts at 0, is non-decreasing and ends at [length data / 2];
    [data] has even length; hub ids are strictly increasing within a
    vertex and lie in [0, n); distances are non-negative. The arrays
    are owned by the result afterwards — do not mutate them.
    @raise Invalid_argument on any violation. *)

val with_cache : cache_slots:int -> t -> t
(** The same store with a fresh direct-mapped cache of [cache_slots]
    slots ([0] removes the cache). The packed arrays are shared, not
    copied.
    @raise Invalid_argument if [cache_slots < 0]. *)

val raw : t -> int array * int array
(** [(offsets, data)] backing arrays (not copies — do not mutate). *)

val to_labels : t -> Hub_label.t
(** Thaw back into the per-vertex representation (for verification and
    interop). [to_labels (of_labels l)] is semantically equal to [l]. *)

val n : t -> int
val size : t -> int -> int
(** Hubset size of a vertex. *)

val total_size : t -> int

val hubs : t -> int -> (int * int) array
(** The hubset of a vertex as fresh [(hub, dist)] pairs, sorted by hub
    id (materialised from the flat arrays; intended for tests and
    debugging, not the hot path). *)

val query : t -> int -> int -> int
(** Two-pointer merge intersection over the packed arrays;
    {!Repro_graph.Dist.inf} when the hubsets are disjoint. Consults and
    fills the cache when one was configured.
    @raise Invalid_argument on out-of-range endpoints. *)

val query_many : ?pool:Repro_par.Pool.t -> t -> (int * int) array -> int array
(** Batched queries: validates all endpoints up front, then answers
    with the per-call overhead amortised away. [query_many t ps] equals
    [Array.map (fun (u, v) -> query t u v) ps] for any job count.

    On a cache-free store the batch fans out across the pool (default
    {!Repro_par.Pool.default}) — the packed arrays are read-only. A
    cached store answers on the calling domain (the direct-mapped cache
    is not domain-safe), accumulating hit/miss counts locally and
    merging them into {!cache_stats} once at the end, so the counters
    advance atomically per batch.
    @raise Invalid_argument if any endpoint is out of range. *)

val cache_stats : t -> (int * int) option
(** [Some (hits, misses)] for a cached store, [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality of the packed arrays (ignores the cache). *)

val pp : Format.formatter -> t -> unit

val space_words : t -> int
(** Machine words of the packed arrays: [(n + 1) + 2 * total]. *)

val backend : t -> Repro_obs.Backend.t
(** The store as a uniform serving backend (name
    ["flat-hub-labeling"]). Traces report [|S(u)| + |S(v)|] as
    [entries_scanned] and, on a cached store, whether the distance
    cache hit ([entries_scanned = 0] on a hit — the packed arrays were
    never touched). *)

val ops : ?pool:Repro_par.Pool.t -> t -> Repro_obs.Backend.ops
(** The store as an ops backend: [Dist] / [Batch] go through the
    two-pointer point query; every aggregate request runs over a
    shared {!Hub_index} built lazily on first aggregate use and
    reused for the backend's lifetime. [Many_to_many] and
    [Diameter_radius] fan out across [pool] (default
    {!Repro_par.Pool.default}); answers are byte-identical for any
    job count. *)
