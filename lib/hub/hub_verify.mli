(** Trust-establishing checks for a {e loaded} hub labeling.

    The constructions in this repository build exact labelings by
    design, but a serving layer that reads a labeling from disk must
    verify the cover assumption instead of silently returning wrong
    distances when it fails ({!Cover} does the exhaustive version;
    this module is the cheap screen the serving path runs at load
    time). *)

open Repro_graph

type report = {
  n : int;
  entries : int;  (** total stored pairs *)
  missing_self : int;  (** vertices [v] without [(v, 0) ∈ S(v)] *)
  sources_checked : int;
  stored_mismatches : int;
      (** stored pairs [(h, d) ∈ S(u)] with [d ≠ dist(u, h)], over the
          sampled sources [u] *)
  pairs_checked : int;
  cover_violations : int;
      (** sampled pairs where the labeling answer differs from BFS *)
}

val structural : Graph.t -> Hub_label.t -> (unit, string) result
(** O(total label size) sanity: the labeling and graph agree on [n],
    and no stored distance exceeds [n - 1] (impossible in an
    unweighted graph). *)

val verify :
  ?samples:int ->
  ?pool:Repro_par.Pool.t ->
  rng:Random.State.t ->
  Graph.t ->
  Hub_label.t ->
  report
(** [verify ~samples ~rng g labels] BFSes from [samples] random
    sources (default 8) and checks, for each source, every stored
    distance of its hubset and the cover property against every other
    vertex. Sources are drawn from [rng] up front and checked in
    parallel across the pool (default {!Repro_par.Pool.default});
    the report is identical for any job count. [missing_self] is
    informational and does not affect {!ok} — a labeling can be exact
    without explicit self-hubs. *)

val ok : report -> bool
(** No stored mismatches and no cover violations. *)

val pp_report : Format.formatter -> report -> unit
