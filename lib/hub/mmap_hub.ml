open Repro_graph
module A1 = Bigarray.Array1

(* Word layout of the whole file viewed as little-endian int64s:
     word 0           magic "HUBFLAT1"
     word 1           n
     word 2           total entry count
     words 3 .. 3+n   the n+1 CSR offsets
     words 4+n ..     2*total interleaved (hub, dist)
   This is exactly the Hub_io packed form; the magic happens to be
   8 bytes, so the whole file is word-aligned. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

type error =
  | Io of string
  | Not_regular of string
  | Too_short of { bytes : int }
  | Misaligned of { bytes : int }
  | Bad_magic
  | Bad_header of { word : int; msg : string }
  | Length_mismatch of { expected_words : int; actual_words : int }
  | Bad_offsets of { vertex : int; msg : string }
  | Bad_entry of { vertex : int; entry : int; msg : string }

let error_to_string = function
  | Io msg -> "Mmap_hub: " ^ msg
  | Not_regular path -> "Mmap_hub: not a regular file: " ^ path
  | Too_short { bytes } ->
      Printf.sprintf "Mmap_hub: %d bytes is too short for magic + header" bytes
  | Misaligned { bytes } ->
      Printf.sprintf "Mmap_hub: %d bytes is not a whole number of words" bytes
  | Bad_magic -> "Mmap_hub: bad magic"
  | Bad_header { word; msg } ->
      Printf.sprintf "Mmap_hub: header word at byte %d: %s" word msg
  | Length_mismatch { expected_words; actual_words } ->
      Printf.sprintf
        "Mmap_hub: length disagrees with header (expected %d words, file has %d)"
        expected_words actual_words
  | Bad_offsets { vertex; msg } ->
      Printf.sprintf "Mmap_hub: offset of vertex %d: %s" vertex msg
  | Bad_entry { vertex; entry; msg } ->
      Printf.sprintf "Mmap_hub: entry %d of vertex %d: %s" entry vertex msg

exception Bad of error

type cache = {
  slots : int;
  keys : int array; (* packed unordered pair, or -1 for an empty slot *)
  values : int array;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  n : int;
  total : int;
  words : words;
  path : string;
  bytes : int;
  cache : cache option;
}

let make_cache = function
  | 0 -> None
  | s when s < 0 -> invalid_arg "Mmap_hub: cache_slots must be non-negative"
  | s ->
      Some
        { slots = s; keys = Array.make s (-1); values = Array.make s 0;
          hits = 0; misses = 0 }

let fits_int x = Int64.of_int (Int64.to_int x) = x
let magic_word = String.get_int64_le Hub_io.packed_magic 0
let min_bytes = 8 * 3 (* magic + n + total *)

(* open → fstat → map → close, every failure mode funnelled into a
   typed error; the fd is closed on all paths (the mapping survives). *)
let open_and_map path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Io (path ^ ": " ^ Unix.error_message err))
  | fd ->
      let close () = try Unix.close fd with Unix.Unix_error _ -> () in
      let finish r = close (); r in
      (match Unix.fstat fd with
      | exception Unix.Unix_error (err, _, _) ->
          finish (Error (Io (path ^ ": fstat: " ^ Unix.error_message err)))
      | st ->
          if st.Unix.st_kind <> Unix.S_REG then finish (Error (Not_regular path))
          else
            let bytes = st.Unix.st_size in
            if bytes < min_bytes then finish (Error (Too_short { bytes }))
            else if bytes mod 8 <> 0 then finish (Error (Misaligned { bytes }))
            else
              match
                Bigarray.array1_of_genarray
                  (Unix.map_file fd Bigarray.int64 Bigarray.c_layout false
                     [| bytes / 8 |])
              with
              | words -> finish (Ok (words, bytes))
              | exception Unix.Unix_error (err, _, _) ->
                  finish (Error (Io (path ^ ": map: " ^ Unix.error_message err)))
              | exception Sys_error msg -> finish (Error (Io msg)))

let header_word (words : words) ~index =
  let x = A1.get words index in
  let byte = 8 * index in
  if not (fits_int x) then
    Error (Bad_header { word = byte; msg = "overflows native int" })
  else
    let v = Int64.to_int x in
    if v < 0 then Error (Bad_header { word = byte; msg = "negative" })
    else Ok v

(* O(n): monotone from 0 to [total]. Every data index the query path
   derives is [2 * offset] for a validated offset, so this check alone
   bounds all subsequent unsafe reads inside the mapping. *)
let validate_offsets (words : words) ~n ~total =
  let total64 = Int64.of_int total in
  try
    if A1.unsafe_get words 3 <> 0L then
      raise (Bad (Bad_offsets { vertex = 0; msg = "must start at 0" }));
    let prev = ref 0L in
    for v = 1 to n do
      let x = A1.unsafe_get words (3 + v) in
      if x < !prev then
        raise (Bad (Bad_offsets { vertex = v; msg = "must be non-decreasing" }));
      if x > total64 then
        raise
          (Bad (Bad_offsets { vertex = v; msg = "exceeds the entry count" }));
      prev := x
    done;
    if !prev <> total64 then
      raise
        (Bad (Bad_offsets { vertex = n; msg = "must end at the entry count" }));
    Ok ()
  with Bad e -> Error e

let off t v = Int64.to_int (A1.unsafe_get t.words (3 + v))

(* O(total): the full per-entry contract of Flat_hub.of_raw. *)
let validate_entries t =
  let base = 4 + t.n in
  let n64 = Int64.of_int t.n in
  try
    for v = 0 to t.n - 1 do
      let prev = ref (-1) in
      for e = off t v to off t (v + 1) - 1 do
        let h64 = A1.unsafe_get t.words (base + (2 * e)) in
        if h64 < 0L || h64 >= n64 then
          raise (Bad (Bad_entry { vertex = v; entry = e; msg = "hub out of range" }));
        let h = Int64.to_int h64 in
        if h <= !prev then
          raise
            (Bad
               (Bad_entry
                  { vertex = v; entry = e;
                    msg = "hubs must be strictly increasing" }));
        prev := h;
        let d64 = A1.unsafe_get t.words (base + (2 * e) + 1) in
        if d64 < 0L || not (fits_int d64) then
          raise
            (Bad (Bad_entry { vertex = v; entry = e; msg = "bad distance" }))
      done
    done;
    Ok ()
  with Bad e -> Error e

let load_res ?(cache_slots = 0) ?(deep = false) path =
  let cache = make_cache cache_slots in
  Repro_obs.Span.run ~name:"mmap-hub.load" (fun () ->
      let ( let* ) = Result.bind in
      let res =
        let* words, bytes = open_and_map path in
        Repro_obs.Span.count "bytes" bytes;
        if A1.get words 0 <> magic_word then Error Bad_magic
        else
          let* n = header_word words ~index:1 in
          let* total = header_word words ~index:2 in
          let actual_words = bytes / 8 in
          (* saturate so 3 + (n+1) + 2*total cannot overflow: any
             n/total beyond the word count already disagrees with the
             length *)
          let expected_words =
            if n > actual_words || total > actual_words then max_int
            else 3 + (n + 1) + (2 * total)
          in
          if expected_words <> actual_words then
            Error (Length_mismatch { expected_words; actual_words })
          else
            let* () = validate_offsets words ~n ~total in
            let t = { n; total; words; path; bytes; cache } in
            let* () = if deep then validate_entries t else Ok () in
            Ok t
      in
      (match res with
      | Ok _ -> ()
      | Error e ->
          Repro_obs.Events.emit_ambient ~level:Repro_obs.Events.Warn
            "mmap_hub.load_failure"
            [ ("path", Repro_obs.Events.Str path);
              ("msg", Repro_obs.Events.Str (error_to_string e)) ]);
      res)

let with_cache ~cache_slots t = { t with cache = make_cache cache_slots }
let n t = t.n
let total_size t = t.total
let path t = t.path
let bytes t = t.bytes

let size t v =
  if v < 0 || v >= t.n then invalid_arg "Mmap_hub.size";
  off t (v + 1) - off t v

let hubs t v =
  if v < 0 || v >= t.n then invalid_arg "Mmap_hub.hubs";
  let base = 4 + t.n in
  Array.init
    (off t (v + 1) - off t v)
    (fun k ->
      let e = off t v + k in
      ( Int64.to_int (A1.get t.words (base + (2 * e))),
        Int64.to_int (A1.get t.words (base + (2 * e) + 1)) ))

let to_flat t =
  let offsets = Array.init (t.n + 1) (off t) in
  let base = 4 + t.n in
  let data =
    Array.init (2 * t.total) (fun j ->
        Int64.to_int (A1.get t.words (base + j)))
  in
  Flat_hub.of_raw ~n:t.n ~offsets ~data

(* The hot path: the same two-pointer merge as Flat_hub.raw_query, with
   the interleaved run walked directly in the mapping. Indices are in
   mapping words; validated offsets bound them, so unsafe gets are
   sound even on a shallow-validated file. *)
let raw_query t u v =
  let words = t.words in
  let base = 4 + t.n in
  let i = ref (base + (2 * off t u))
  and iend = base + (2 * off t (u + 1))
  and j = ref (base + (2 * off t v))
  and jend = base + (2 * off t (v + 1)) in
  let best = ref Dist.inf in
  while !i < iend && !j < jend do
    let ha = Int64.to_int (A1.unsafe_get words !i)
    and hb = Int64.to_int (A1.unsafe_get words !j) in
    if ha = hb then begin
      let d =
        Dist.add
          (Int64.to_int (A1.unsafe_get words (!i + 1)))
          (Int64.to_int (A1.unsafe_get words (!j + 1)))
      in
      if d < !best then best := d;
      i := !i + 2;
      j := !j + 2
    end
    else if ha < hb then i := !i + 2
    else j := !j + 2
  done;
  !best

let cached_query t c u v =
  let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
  let slot = key mod c.slots in
  if Array.unsafe_get c.keys slot = key then begin
    c.hits <- c.hits + 1;
    Array.unsafe_get c.values slot
  end
  else begin
    c.misses <- c.misses + 1;
    let d = raw_query t u v in
    Array.unsafe_set c.keys slot key;
    Array.unsafe_set c.values slot d;
    d
  end

let dispatch t u v =
  match t.cache with None -> raw_query t u v | Some c -> cached_query t c u v

let query t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Mmap_hub.query";
  dispatch t u v

let query_many ?pool t pairs =
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= t.n || v < 0 || v >= t.n then
        invalid_arg "Mmap_hub.query_many")
    pairs;
  let m = Array.length pairs in
  let out = Array.make m 0 in
  (match t.cache with
  | Some c ->
      (* Same contract as Flat_hub.query_many: the direct-mapped cache
         is not domain-safe, so cached batches stay on the calling
         domain with hit/miss merged once at the end. *)
      let hits = ref 0 and misses = ref 0 in
      for k = 0 to m - 1 do
        let u, v = Array.unsafe_get pairs k in
        let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
        let slot = key mod c.slots in
        let d =
          if Array.unsafe_get c.keys slot = key then begin
            incr hits;
            Array.unsafe_get c.values slot
          end
          else begin
            incr misses;
            let d = raw_query t u v in
            Array.unsafe_set c.keys slot key;
            Array.unsafe_set c.values slot d;
            d
          end
        in
        Array.unsafe_set out k d
      done;
      c.hits <- c.hits + !hits;
      c.misses <- c.misses + !misses
  | None ->
      (* the mapping is read-only: fan the batch out *)
      let pool =
        match pool with Some p -> p | None -> Repro_par.Pool.default ()
      in
      Repro_par.Pool.parallel_for pool ~n:m (fun ~slot:_ lo hi ->
          for k = lo to hi - 1 do
            let u, v = Array.unsafe_get pairs k in
            Array.unsafe_set out k (raw_query t u v)
          done));
  out

let cache_stats t =
  match t.cache with None -> None | Some c -> Some (c.hits, c.misses)

let space_words t = t.n + 1 + (2 * t.total)

let pp ppf t =
  Format.fprintf ppf "mmap_hub(%s, n=%d, total=%d, cache=%s)" t.path t.n
    t.total
    (match t.cache with
    | None -> "none"
    | Some c -> string_of_int c.slots ^ " slots")

let backend_name = "mmap-hub-labeling"

let backend t =
  let detailed u v =
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg "Mmap_hub.query";
    match t.cache with
    | None ->
        let d = raw_query t u v in
        ( d,
          Repro_obs.Trace.make
            ~entries_scanned:(size t u + size t v)
            ~source:backend_name ~u ~v ~dist:d () )
    | Some c ->
        let hits0 = c.hits in
        let d = cached_query t c u v in
        let cache =
          if c.hits > hits0 then Repro_obs.Trace.Hit else Repro_obs.Trace.Miss
        in
        let scanned =
          match cache with
          | Repro_obs.Trace.Hit -> 0
          | _ -> size t u + size t v
        in
        ( d,
          Repro_obs.Trace.make ~entries_scanned:scanned ~cache
            ~source:backend_name ~u ~v ~dist:d () )
  in
  Repro_obs.Backend.make ~name:backend_name ~space_words:(space_words t)
    ~detailed (query t)

let ops ?pool t =
  let module Base = (val backend t : Repro_obs.Backend.S) in
  let q = query t and h = hubs t and nn = t.n in
  let idx = lazy (Hub_index.build ~n:nn ~hubs:h) in
  let module B = struct
    include Base

    let op req =
      match req with
      | Repro_obs.Ops.Dist _ | Repro_obs.Ops.Batch _ ->
          (* point queries read the mapping directly and never force
             the inverted index *)
          Repro_obs.Ops.brute ~n:nn ~query:q req
      | _ -> Hub_index.eval ?pool (Lazy.force idx) ~hubs:h ~query:q req
  end in
  (module B : Repro_obs.Backend.S_ops)
