let sizes t = Array.init (Hub_label.n t) (fun v -> Hub_label.size t v)

let histogram t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      Hashtbl.replace counts s
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    (sizes t);
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) counts []
  |> List.sort compare

let quantile t q =
  let s = sizes t in
  if Array.length s = 0 then 0
  else begin
    Array.sort compare s;
    let idx =
      int_of_float (q *. float_of_int (Array.length s - 1) +. 0.5)
    in
    s.(max 0 (min (Array.length s - 1) idx))
  end

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  if x <= 1 then 0 else go 0 1

let bits_naive t =
  let n = Hub_label.n t in
  let maxd = ref 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun (_, d) -> if d > !maxd then maxd := d)
      (Hub_label.hubs t v)
  done;
  let per_pair = ceil_log2 (max n 2) + ceil_log2 (!maxd + 2) in
  Hub_label.total_size t * per_pair

let bits_per_vertex t =
  let n = Hub_label.n t in
  if n = 0 then 0.0 else float_of_int (bits_naive t) /. float_of_int n

type packed_sizes = {
  entries : int;
  avg_size : float;
  max_size : int;
  flat1_bytes : int;
  flat2_bytes : int;
  flat1_bits_per_entry : float;
  flat2_bits_per_entry : float;
}

let packed_sizes flat =
  let n = Flat_hub.n flat in
  let entries = Flat_hub.total_size flat in
  let max_size = ref 0 in
  for v = 0 to n - 1 do
    let s = Flat_hub.size flat v in
    if s > !max_size then max_size := s
  done;
  let flat1_bytes = String.length (Hub_io.flat_to_bytes flat) in
  let flat2_bytes = String.length (Compact_hub.to_bytes flat) in
  let per b = if entries = 0 then 0. else 8. *. float_of_int b /. float_of_int entries in
  { entries;
    avg_size = (if n = 0 then 0. else float_of_int entries /. float_of_int n);
    max_size = !max_size;
    flat1_bytes;
    flat2_bytes;
    flat1_bits_per_entry = per flat1_bytes;
    flat2_bits_per_entry = per flat2_bytes }

let packed_report p =
  Printf.sprintf
    "entries: %d\navg hubs/vertex: %.2f\nmax hubs: %d\n\
     HUBFLAT1: %d bytes (%.1f bits/entry)\n\
     HUBFLAT2: %d bytes (%.1f bits/entry)\ncompression: %.2fx"
    p.entries p.avg_size p.max_size p.flat1_bytes p.flat1_bits_per_entry
    p.flat2_bytes p.flat2_bits_per_entry
    (if p.flat2_bytes = 0 then 0.
     else float_of_int p.flat1_bytes /. float_of_int p.flat2_bytes)

let report t =
  let n = Hub_label.n t in
  Printf.sprintf
    "vertices: %d\ntotal hubs: %d\navg hubs/vertex: %.2f\nmax hubs: %d\n\
     median hubs: %d\nnaive label bits/vertex: %.1f"
    n (Hub_label.total_size t) (Hub_label.avg_size t) (Hub_label.max_size t)
    (quantile t 0.5) (bits_per_vertex t)
