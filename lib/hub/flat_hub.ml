open Repro_graph

type cache = {
  slots : int;
  keys : int array; (* packed unordered pair, or -1 for an empty slot *)
  values : int array;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  n : int;
  offsets : int array; (* length n + 1 *)
  data : int array; (* length 2 * offsets.(n); entry i = (data.(2i), data.(2i+1)) *)
  cache : cache option;
}

let make_cache = function
  | 0 -> None
  | s when s < 0 -> invalid_arg "Flat_hub: cache_slots must be non-negative"
  | s ->
      Some
        { slots = s; keys = Array.make s (-1); values = Array.make s 0;
          hits = 0; misses = 0 }

let of_labels ?(cache_slots = 0) labels =
  Repro_obs.Span.run ~name:"flat-hub.pack" (fun () ->
      let n = Hub_label.n labels in
      let offsets = Array.make (n + 1) 0 in
      for v = 0 to n - 1 do
        offsets.(v + 1) <- offsets.(v) + Hub_label.size labels v
      done;
      let data = Array.make (2 * offsets.(n)) 0 in
      for v = 0 to n - 1 do
        let base = ref (2 * offsets.(v)) in
        Array.iter
          (fun (h, d) ->
            data.(!base) <- h;
            data.(!base + 1) <- d;
            base := !base + 2)
          (Hub_label.hubs labels v)
      done;
      Repro_obs.Span.count "vertices" n;
      Repro_obs.Span.count "entries" offsets.(n);
      { n; offsets; data; cache = make_cache cache_slots })

let of_raw ~n ~offsets ~data =
  let fail msg = invalid_arg ("Flat_hub.of_raw: " ^ msg) in
  if n < 0 then fail "negative n";
  if Array.length offsets <> n + 1 then fail "offsets length must be n + 1";
  if Array.length data mod 2 <> 0 then fail "data length must be even";
  if offsets.(0) <> 0 then fail "offsets must start at 0";
  for v = 0 to n - 1 do
    if offsets.(v + 1) < offsets.(v) then fail "offsets must be non-decreasing"
  done;
  if 2 * offsets.(n) <> Array.length data then
    fail "offsets must end at the entry count";
  for v = 0 to n - 1 do
    for e = offsets.(v) to offsets.(v + 1) - 1 do
      let h = data.(2 * e) and d = data.((2 * e) + 1) in
      if h < 0 || h >= n then fail "hub out of range";
      if d < 0 then fail "negative distance";
      if e > offsets.(v) && data.(2 * (e - 1)) >= h then
        fail "hubs must be strictly increasing within a vertex"
    done
  done;
  { n; offsets; data; cache = None }

let with_cache ~cache_slots t = { t with cache = make_cache cache_slots }
let raw t = (t.offsets, t.data)
let n t = t.n

let size t v =
  if v < 0 || v >= t.n then invalid_arg "Flat_hub.size";
  t.offsets.(v + 1) - t.offsets.(v)

let total_size t = t.offsets.(t.n)

let hubs t v =
  if v < 0 || v >= t.n then invalid_arg "Flat_hub.hubs";
  Array.init
    (t.offsets.(v + 1) - t.offsets.(v))
    (fun k ->
      let e = t.offsets.(v) + k in
      (t.data.(2 * e), t.data.((2 * e) + 1)))

let to_labels t = Hub_label.of_arrays ~n:t.n (Array.init t.n (hubs t))

(* The hot path. Walk the two interleaved runs with raw indices into
   [data]; bounds are established by the CSR invariants, so unsafe
   accesses are sound. *)
let raw_query t u v =
  let data = t.data in
  let i = ref (2 * Array.unsafe_get t.offsets u)
  and iend = 2 * Array.unsafe_get t.offsets (u + 1)
  and j = ref (2 * Array.unsafe_get t.offsets v)
  and jend = 2 * Array.unsafe_get t.offsets (v + 1) in
  let best = ref Dist.inf in
  while !i < iend && !j < jend do
    let ha = Array.unsafe_get data !i and hb = Array.unsafe_get data !j in
    if ha = hb then begin
      let d =
        Dist.add (Array.unsafe_get data (!i + 1)) (Array.unsafe_get data (!j + 1))
      in
      if d < !best then best := d;
      i := !i + 2;
      j := !j + 2
    end
    else if ha < hb then i := !i + 2
    else j := !j + 2
  done;
  !best

let cached_query t c u v =
  let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
  let slot = key mod c.slots in
  if Array.unsafe_get c.keys slot = key then begin
    c.hits <- c.hits + 1;
    Array.unsafe_get c.values slot
  end
  else begin
    c.misses <- c.misses + 1;
    let d = raw_query t u v in
    Array.unsafe_set c.keys slot key;
    Array.unsafe_set c.values slot d;
    d
  end

let dispatch t u v =
  match t.cache with None -> raw_query t u v | Some c -> cached_query t c u v

let query t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Flat_hub.query";
  dispatch t u v

let query_many ?pool t pairs =
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= t.n || v < 0 || v >= t.n then
        invalid_arg "Flat_hub.query_many")
    pairs;
  let m = Array.length pairs in
  let out = Array.make m 0 in
  (match t.cache with
  | Some c ->
      (* The direct-mapped cache is not domain-safe — concurrent writes
         could tear a key/value pair — so cached batches stay on the
         calling domain. Hits and misses accumulate in locals and merge
         once at the end: the stats counters see a batch as one atomic
         update even if another domain reads them mid-batch. *)
      let hits = ref 0 and misses = ref 0 in
      for k = 0 to m - 1 do
        let u, v = Array.unsafe_get pairs k in
        let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
        let slot = key mod c.slots in
        let d =
          if Array.unsafe_get c.keys slot = key then begin
            incr hits;
            Array.unsafe_get c.values slot
          end
          else begin
            incr misses;
            let d = raw_query t u v in
            Array.unsafe_set c.keys slot key;
            Array.unsafe_set c.values slot d;
            d
          end
        in
        Array.unsafe_set out k d
      done;
      c.hits <- c.hits + !hits;
      c.misses <- c.misses + !misses
  | None ->
      (* cache-free stores are immutable: fan the batch out *)
      let pool =
        match pool with Some p -> p | None -> Repro_par.Pool.default ()
      in
      Repro_par.Pool.parallel_for pool ~n:m (fun ~slot:_ lo hi ->
          for k = lo to hi - 1 do
            let u, v = Array.unsafe_get pairs k in
            Array.unsafe_set out k (raw_query t u v)
          done));
  out

let cache_stats t =
  match t.cache with None -> None | Some c -> Some (c.hits, c.misses)

let equal a b = a.n = b.n && a.offsets = b.offsets && a.data = b.data

let pp ppf t =
  Format.fprintf ppf "flat_hub(n=%d, total=%d, cache=%s)" t.n (total_size t)
    (match t.cache with
    | None -> "none"
    | Some c -> string_of_int c.slots ^ " slots")

let backend_name = "flat-hub-labeling"
let space_words t = Array.length t.offsets + Array.length t.data

let backend t =
  let detailed u v =
    if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Flat_hub.query";
    match t.cache with
    | None ->
        let d = raw_query t u v in
        ( d,
          Repro_obs.Trace.make
            ~entries_scanned:(size t u + size t v)
            ~source:backend_name ~u ~v ~dist:d () )
    | Some c ->
        let hits0 = c.hits in
        let d = cached_query t c u v in
        let cache =
          if c.hits > hits0 then Repro_obs.Trace.Hit else Repro_obs.Trace.Miss
        in
        let scanned =
          match cache with
          | Repro_obs.Trace.Hit -> 0
          | _ -> size t u + size t v
        in
        ( d,
          Repro_obs.Trace.make ~entries_scanned:scanned ~cache
            ~source:backend_name ~u ~v ~dist:d () )
  in
  Repro_obs.Backend.make ~name:backend_name ~space_words:(space_words t)
    ~detailed (query t)

let ops ?pool t =
  let module Base = (val backend t : Repro_obs.Backend.S) in
  let q = query t and h = hubs t and nn = t.n in
  let idx = lazy (Hub_index.build ~n:nn ~hubs:h) in
  let module B = struct
    include Base

    let op req =
      match req with
      | Repro_obs.Ops.Dist _ | Repro_obs.Ops.Batch _ ->
          (* point queries use the two-pointer merge directly and never
             force the inverted index *)
          Repro_obs.Ops.brute ~n:nn ~query:q req
      | _ -> Hub_index.eval ?pool (Lazy.force idx) ~hubs:h ~query:q req
  end in
  (module B : Repro_obs.Backend.S_ops)
