(** Vertex partitions and partitioned label slicing for the sharded
    serving tier.

    A fleet of [shards] workers splits the vertex set by contiguous
    {!Range} blocks or by a deterministic multiplicative {!Hash}; the
    router sends the query [(u, v)] to the shard {e owning}
    [min u v] (see {!owner_of_pair}).

    {!slice} cuts a full labeling down to what one shard needs to stay
    {b exact on every query it owns}: the owned vertices keep their
    hubsets in full, and every foreign vertex keeps only the entries
    whose hub appears in some owned hubset. Correctness: for a query
    [(u, v)] with [u] owned, every meeting hub
    [w ∈ S(u) ∩ S(v)] lies in [S(u)], hence in the shard's hub
    universe, hence survives the filter in [S(v)] — the minimisation
    runs over exactly the same set as on the full labeling. Queries the
    shard does not own may come back inflated or [Dist.inf]; the router
    never asks it those. *)

type spec = Range | Hash

val spec_of_string : string -> (spec, string) result
(** ["range"] or ["hash"]. *)

val string_of_spec : spec -> string

val owner : spec -> shards:int -> n:int -> int -> int
(** Shard owning vertex [v] (in [[0, shards)]). [Range] splits
    [[0, n)] into [shards] contiguous blocks of near-equal size; [Hash]
    mixes [v] through a fixed multiplicative hash, so renumbering-
    adjacent vertices land on different shards.
    @raise Invalid_argument unless [0 < shards], [0 <= v < n]. *)

val owner_of_pair : spec -> shards:int -> n:int -> int -> int -> int
(** [owner] of [min u v] — the canonical routing key of an unordered
    query pair. *)

val slice : spec -> shards:int -> shard:int -> Hub_label.t -> Hub_label.t
(** The shard's label slice (same [n]): full hubsets on owned vertices,
    hub-universe-filtered hubsets elsewhere. Exact for every owned
    query (see above).
    @raise Invalid_argument unless [0 <= shard < shards]. *)
