open Repro_graph

(* Shared driver: [labels] accumulate as reversed lists; [root_dist]
   caches the current label of the BFS root for O(1) prune queries. *)

let finalise ~n labels = Hub_label.make ~n labels

let prune_query ~root_dist ~label_of u du =
  (* distance via hubs common to the processed root and u, using the
     root's current label loaded in [root_dist] *)
  let best = ref Dist.inf in
  List.iter
    (fun (h, d) ->
      let dr = root_dist.(h) in
      if Dist.is_finite dr then begin
        let cand = Dist.add dr d in
        if cand < !best then best := cand
      end)
    (label_of u);
  !best <= du

let build ?order g =
  Repro_obs.Span.run ~name:"pll.build" (fun () ->
  let n = Graph.n g in
  let order =
    Repro_obs.Span.run ~name:"order" (fun () ->
        match order with Some o -> o | None -> Order.by_degree g)
  in
  if Array.length order <> n then invalid_arg "Pll.build: bad order length";
  let labels : (int * int) list array = Array.make n [] in
  let root_dist = Array.make n Dist.inf in
  let dist = Array.make n Dist.inf in
  let touched = ref [] in
  let q = Queue.create () in
  Repro_obs.Span.run ~name:"pruned-sweep" (fun () ->
  Array.iter
    (fun root ->
      (* Load the root's current label for pruning. *)
      List.iter (fun (h, d) -> root_dist.(h) <- d) labels.(root);
      root_dist.(root) <- 0;
      dist.(root) <- 0;
      touched := [ root ];
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let du = dist.(u) in
        let pruned =
          u <> root
          && prune_query ~root_dist ~label_of:(fun x -> labels.(x)) u du
        in
        if pruned then Repro_obs.Span.count "pruned" 1
        else begin
          Repro_obs.Span.count "labels_added" 1;
          labels.(u) <- (root, du) :: labels.(u);
          Graph.iter_neighbors g u (fun v ->
              if dist.(v) = Dist.inf then begin
                dist.(v) <- du + 1;
                touched := v :: !touched;
                Queue.add v q
              end)
        end
      done;
      (* Reset scratch arrays. *)
      List.iter (fun v -> dist.(v) <- Dist.inf) !touched;
      List.iter (fun (h, _) -> root_dist.(h) <- Dist.inf) labels.(root);
      root_dist.(root) <- Dist.inf)
    order);
  Repro_obs.Events.emit_ambient "pll.build.done"
    [ ("n", Repro_obs.Events.Int n) ];
  finalise ~n labels)

let build_w ?order g =
  Repro_obs.Span.run ~name:"pll.build_w" (fun () ->
  let n = Wgraph.n g in
  let order =
    Repro_obs.Span.run ~name:"order" (fun () ->
        match order with Some o -> o | None -> Order.by_wdegree g)
  in
  if Array.length order <> n then invalid_arg "Pll.build_w: bad order length";
  let labels : (int * int) list array = Array.make n [] in
  let root_dist = Array.make n Dist.inf in
  let dist = Array.make n Dist.inf in
  let settled = Array.make n false in
  let touched = ref [] in
  (* drained every sweep, so one queue serves all roots *)
  let pq = Pqueue.create n in
  Repro_obs.Span.run ~name:"pruned-sweep" (fun () ->
  Array.iter
    (fun root ->
      List.iter (fun (h, d) -> root_dist.(h) <- d) labels.(root);
      root_dist.(root) <- 0;
      dist.(root) <- 0;
      touched := [ root ];
      Pqueue.insert pq root 0;
      while not (Pqueue.is_empty pq) do
        let u, du = Pqueue.pop_min pq in
        settled.(u) <- true;
        let pruned =
          u <> root
          && prune_query ~root_dist ~label_of:(fun x -> labels.(x)) u du
        in
        if pruned then Repro_obs.Span.count "pruned" 1
        else begin
          Repro_obs.Span.count "labels_added" 1;
          labels.(u) <- (root, du) :: labels.(u);
          Wgraph.iter_neighbors g u (fun v w ->
              if not settled.(v) then begin
                let d = du + w in
                if d < dist.(v) then begin
                  if dist.(v) = Dist.inf then touched := v :: !touched;
                  dist.(v) <- d;
                  Pqueue.insert_or_decrease pq v d
                end
              end)
        end
      done;
      List.iter
        (fun v ->
          dist.(v) <- Dist.inf;
          settled.(v) <- false)
        !touched;
      List.iter (fun (h, _) -> root_dist.(h) <- Dist.inf) labels.(root);
      root_dist.(root) <- Dist.inf)
    order);
  Repro_obs.Events.emit_ambient "pll.build_w.done"
    [ ("n", Repro_obs.Events.Int n) ];
  finalise ~n labels)
