open Repro_graph

type t = { n : int; labels : (int * int) array array }

let normalise ~n v pairs =
  ignore v;
  let sorted = List.sort compare pairs in
  let rec dedup = function
    | (h1, d1) :: (h2, d2) :: _ when h1 = h2 && d1 <> d2 ->
        invalid_arg "Hub_label.make: conflicting distances for a hub"
    | (h1, _) :: ((h2, _) :: _ as rest) when h1 = h2 -> dedup rest
    | p :: rest -> p :: dedup rest
    | [] -> []
  in
  let clean = dedup sorted in
  List.iter
    (fun (h, d) ->
      if h < 0 || h >= n then invalid_arg "Hub_label.make: hub out of range";
      if d < 0 then invalid_arg "Hub_label.make: negative distance")
    clean;
  Array.of_list clean

let make ~n per_vertex =
  if Array.length per_vertex <> n then
    invalid_arg "Hub_label.make: array length mismatch";
  { n; labels = Array.mapi (fun v pairs -> normalise ~n v pairs) per_vertex }

let of_arrays ~n arrays =
  make ~n (Array.map Array.to_list arrays)

let n t = t.n

let hubs t v =
  if v < 0 || v >= t.n then invalid_arg "Hub_label.hubs";
  t.labels.(v)

let hub_list t v = Array.to_list (hubs t v)

let find_hub pairs h =
  let lo = ref 0 and hi = ref (Array.length pairs - 1) in
  let res = ref None in
  while !res = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let hub, d = pairs.(mid) in
    if hub = h then res := Some d
    else if hub < h then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem t v ~hub = find_hub (hubs t v) hub <> None
let dist_to_hub t v ~hub = find_hub (hubs t v) hub

let query_meet t u v =
  let a = hubs t u and b = hubs t v in
  let best = ref None in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let ha, da = a.(!i) and hb, db = b.(!j) in
    if ha = hb then begin
      let d = Dist.add da db in
      (match !best with
      | Some (_, d0) when d0 <= d -> ()
      | _ -> best := Some (ha, d));
      incr i;
      incr j
    end
    else if ha < hb then incr i
    else incr j
  done;
  !best

let query t u v =
  match query_meet t u v with None -> Dist.inf | Some (_, d) -> d

let size t v = Array.length (hubs t v)

let total_size t =
  Array.fold_left (fun acc l -> acc + Array.length l) 0 t.labels

let avg_size t = if t.n = 0 then 0.0 else float_of_int (total_size t) /. float_of_int t.n

let max_size t = Array.fold_left (fun acc l -> max acc (Array.length l)) 0 t.labels

let map_union a b =
  if a.n <> b.n then invalid_arg "Hub_label.map_union: size mismatch";
  make ~n:a.n
    (Array.init a.n (fun v ->
         Array.to_list a.labels.(v) @ Array.to_list b.labels.(v)))

let add_self t =
  make ~n:t.n
    (Array.init t.n (fun v -> (v, 0) :: Array.to_list t.labels.(v)))

let restrict t ~keep =
  make ~n:t.n
    (Array.init t.n (fun v ->
         List.filter (fun (h, _) -> keep v h) (Array.to_list t.labels.(v))))

let pp ppf t =
  Format.fprintf ppf "hub_label(n=%d, total=%d, avg=%.2f, max=%d)" t.n
    (total_size t) (avg_size t) (max_size t)

let backend_name = "hub-labeling"

let backend t =
  let detailed u v =
    let d = query t u v in
    (* the sorted merge touches at most |S(u)| + |S(v)| entries *)
    ( d,
      Repro_obs.Trace.make
        ~entries_scanned:(size t u + size t v)
        ~source:backend_name ~u ~v ~dist:d () )
  in
  Repro_obs.Backend.make ~name:backend_name
    ~space_words:(2 * total_size t) ~detailed (query t)
