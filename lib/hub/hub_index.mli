(** Inverted hub → vertices index: the shared fast path behind every
    aggregate operation of the {!Repro_obs.Ops} algebra.

    A hub labeling stores, per vertex [v], the sorted hubset
    [S(v) = {(h, d(v, h))}]. This module transposes it once into CSR
    form over {e hubs}: for each hub [h], the list of [(w, d(w, h))]
    entries that contain it, vertices ascending. One pass over the
    transposed arrays then yields the full distance row of a source
    [s]:

    [row(w) = min over (h, d_sh) in S(s) of d_sh + d(w, h)]

    in O(sum of the touched hubs' inverted lists) — the technique of
    Ducoffe, "Eccentricity queries and beyond using Hub Labels"
    (PAPERS.md). Eccentricity, farthest vertex, top-k nearest,
    one-to-many and many-to-many all reduce over such rows; diameter
    and radius fan the per-vertex rows out across the PR 5 domain
    pool with per-index writes only, so answers are byte-identical
    for any job count.

    Correctness needs exactly the 2-hop cover property, so the index
    serves sliced labelings too ({!Partition.slice}): a row from
    source [s] is exact at every [w] for which the slice covers the
    pair [(s, w)] — in particular at every owned [w], which is all
    the sharded tier ever reads (see worker/router). *)

type t

val build : n:int -> hubs:(int -> (int * int) array) -> t
(** Transpose [n] hubsets ([hubs v] = sorted [(hub, dist)] pairs of
    vertex [v]) into the inverted index. O(total label size) time and
    space, done once and reused across every subsequent operation.
    The [hubs] accessor works for every store ({!Hub_label.hubs},
    {!Flat_hub.hubs}, {!Mmap_hub.hubs}); the stores wrap this module
    into their own [ops] backends.
    @raise Invalid_argument if a hub id falls outside [[0, n)]. *)

val n : t -> int

val total_size : t -> int
(** Number of inverted entries = total label size. *)

val space_words : t -> int

val row : t -> (int * int) array -> int array
(** [row t s_hubs] is the full distance row of the source whose
    hubset is [s_hubs]: entry [w] is the label distance from the
    source to [w] ({!Repro_graph.Dist.inf} when the labels never meet).
    @raise Invalid_argument if a hub id falls outside [[0, n)]. *)

val eval :
  ?pool:Repro_par.Pool.t ->
  t ->
  hubs:(int -> (int * int) array) ->
  query:(int -> int -> int) ->
  Repro_obs.Ops.request ->
  Repro_obs.Ops.response
(** Evaluate any request. [hubs] fetches a source's hubset from the
    owning store and [query] is that store's two-pointer point query
    (used for [Dist] / [Batch], which never touch the index).
    [Many_to_many] and [Diameter_radius] fan their independent rows
    out across [pool] (default {!Repro_par.Pool.default}); all other
    requests run on the calling domain. Responses follow the
    {!Repro_obs.Ops} conventions and are byte-identical for any job
    count.
    @raise Invalid_argument on an invalid request
    ({!Repro_obs.Ops.validate}). *)
