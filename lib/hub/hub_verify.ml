open Repro_graph

type report = {
  n : int;
  entries : int;
  missing_self : int;
  sources_checked : int;
  stored_mismatches : int;
  pairs_checked : int;
  cover_violations : int;
}

let ok r = r.stored_mismatches = 0 && r.cover_violations = 0

let pp_report ppf r =
  Format.fprintf ppf
    "hub_verify(n=%d, entries=%d, missing_self=%d, sources=%d, \
     stored_mismatches=%d, pairs=%d, cover_violations=%d)"
    r.n r.entries r.missing_self r.sources_checked r.stored_mismatches
    r.pairs_checked r.cover_violations

let structural g labels =
  let n = Graph.n g in
  if Hub_label.n labels <> n then
    Error
      (Printf.sprintf
         "Hub_verify.structural: labeling is over %d vertices but the graph \
          has %d"
         (Hub_label.n labels) n)
  else begin
    (* Hub_label.make already guarantees per-vertex sortedness, hub
       range and non-negative distances; what remains is a bound no
       unweighted distance can exceed. *)
    let bad = ref None in
    for v = 0 to n - 1 do
      Array.iter
        (fun (h, d) -> if !bad = None && d > n - 1 then bad := Some (v, h, d))
        (Hub_label.hubs labels v)
    done;
    match !bad with
    | Some (v, h, d) ->
        Error
          (Printf.sprintf
             "Hub_verify.structural: S(%d) stores impossible distance %d to \
              hub %d (n = %d)"
             v d h n)
    | None -> Ok ()
  end

let verify ?(samples = 8) ?pool ~rng g labels =
  let n = Graph.n g in
  let missing_self = ref 0 in
  for v = 0 to n - 1 do
    if Hub_label.dist_to_hub labels v ~hub:v <> Some 0 then incr missing_self
  done;
  let sources = if n = 0 then 0 else min samples n in
  (* Draw every source up front — the rng advances exactly as it did
     when sources were drawn inside the loop — then check them in
     parallel and sum the per-source tallies in source order. *)
  let srcs = Array.init sources (fun _ -> Random.State.int rng n) in
  let pool = match pool with Some p -> p | None -> Repro_par.Pool.default () in
  let per_source =
    Repro_par.Pool.init pool sources (fun k ->
        let u = srcs.(k) in
        let dist = Traversal.bfs g u in
        let mism = ref 0 and viol = ref 0 in
        Array.iter
          (fun (h, d) -> if dist.(h) <> d then incr mism)
          (Hub_label.hubs labels u);
        for v = 0 to n - 1 do
          if Hub_label.query labels u v <> dist.(v) then incr viol
        done;
        (!mism, !viol))
  in
  let stored_mismatches =
    Array.fold_left (fun acc (m, _) -> acc + m) 0 per_source
  and violations = Array.fold_left (fun acc (_, v) -> acc + v) 0 per_source in
  {
    n;
    entries = Hub_label.total_size labels;
    missing_self = !missing_self;
    sources_checked = sources;
    stored_mismatches;
    pairs_checked = sources * n;
    cover_violations = violations;
  }
