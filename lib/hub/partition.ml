type spec = Range | Hash

let spec_of_string = function
  | "range" -> Ok Range
  | "hash" -> Ok Hash
  | other -> Error (Printf.sprintf "unknown partition spec %S" other)

let string_of_spec = function Range -> "range" | Hash -> "hash"

(* Knuth's multiplicative constant, truncated to keep the product in
   the positive int range on 64-bit; stable across runs and platforms
   (unlike Hashtbl.hash, which is version-dependent in principle). *)
let mix v = v * 2654435761 land max_int

let owner spec ~shards ~n v =
  if shards <= 0 then invalid_arg "Partition.owner: shards must be positive";
  if v < 0 || v >= n then invalid_arg "Partition.owner: vertex out of range";
  match spec with
  | Hash -> mix v mod shards
  | Range ->
      (* blocks of ceil(n / shards); the last block may run short *)
      let block = (n + shards - 1) / shards in
      min (v / block) (shards - 1)

let owner_of_pair spec ~shards ~n u v = owner spec ~shards ~n (min u v)

let slice spec ~shards ~shard labels =
  if shard < 0 || shard >= shards then
    invalid_arg "Partition.slice: shard out of range";
  let n = Hub_label.n labels in
  let owned v = owner spec ~shards ~n v = shard in
  (* the shard's hub universe: every hub of an owned vertex *)
  let in_universe = Array.make n false in
  for v = 0 to n - 1 do
    if owned v then
      Array.iter (fun (h, _) -> in_universe.(h) <- true) (Hub_label.hubs labels v)
  done;
  Hub_label.restrict labels ~keep:(fun v h -> owned v || in_universe.(h))
