type parse_error = Repro_graph.Graph_io.parse_error = { line : int; msg : string }

exception Parse of parse_error

let fail line msg = raise (Parse { line; msg })

let to_string labels =
  let buf = Buffer.create 4096 in
  let n = Hub_label.n labels in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" n (Hub_label.total_size labels));
  for v = 0 to n - 1 do
    let hubs = Hub_label.hubs labels v in
    Buffer.add_string buf (Printf.sprintf "%d %d" v (Array.length hubs));
    Array.iter
      (fun (h, d) -> Buffer.add_string buf (Printf.sprintf " %d %d" h d))
      hubs;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let ints ln line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> fail ln ("Hub_io.of_string: bad token " ^ t))

let of_string_res s =
  let what = "Hub_io.of_string" in
  try
    match numbered_lines s with
    | [] -> fail 0 (what ^ ": empty input")
    | (hln, header) :: rest -> (
        match ints hln header with
        | [ n; total ] ->
            if n < 0 then fail hln (what ^ ": negative vertex count");
            if total < 0 then fail hln (what ^ ": negative total size");
            if List.length rest <> n then
              fail hln (what ^ ": vertex count mismatch");
            let sets = Array.make n [] in
            let seen = Array.make n false in
            let declared = ref 0 in
            List.iter
              (fun (ln, line) ->
                match ints ln line with
                | v :: k :: pairs ->
                    if v < 0 || v >= n then
                      fail ln (what ^ ": vertex out of range");
                    if seen.(v) then
                      fail ln (what ^ ": duplicate vertex line");
                    seen.(v) <- true;
                    if k < 0 then fail ln (what ^ ": negative hub count");
                    if List.length pairs <> 2 * k then
                      fail ln (what ^ ": pair count mismatch");
                    declared := !declared + k;
                    let rec collect = function
                      | [] -> []
                      | h :: d :: tl ->
                          if h < 0 || h >= n then
                            fail ln (what ^ ": hub out of range");
                          if d < 0 then
                            fail ln (what ^ ": negative distance");
                          (h, d) :: collect tl
                      | [ _ ] ->
                          (* unreachable: [pairs] has even length 2k *)
                          fail ln (what ^ ": odd pair list")
                    in
                    sets.(v) <- collect pairs
                | _ -> fail ln (what ^ ": bad vertex line"))
              rest;
            if !declared <> total then
              fail hln (what ^ ": total size mismatch");
            (match Hub_label.make ~n sets with
            | labels -> Ok labels
            | exception Invalid_argument msg -> fail 0 msg)
        | _ -> fail hln (what ^ ": bad header"))
  with Parse e -> Error e

let of_string s =
  match of_string_res s with Ok l -> l | Error e -> invalid_arg e.msg
