type parse_error = Repro_graph.Graph_io.parse_error = { line : int; msg : string }

exception Parse of parse_error

let fail line msg = raise (Parse { line; msg })

let to_string labels =
  Repro_obs.Span.run ~name:"hub-io.save-text" (fun () ->
  let buf = Buffer.create 4096 in
  let n = Hub_label.n labels in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" n (Hub_label.total_size labels));
  for v = 0 to n - 1 do
    let hubs = Hub_label.hubs labels v in
    Buffer.add_string buf (Printf.sprintf "%d %d" v (Array.length hubs));
    Array.iter
      (fun (h, d) -> Buffer.add_string buf (Printf.sprintf " %d %d" h d))
      hubs;
    Buffer.add_char buf '\n'
  done;
  Repro_obs.Span.count "bytes" (Buffer.length buf);
  Buffer.contents buf)

let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let ints ln line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> fail ln ("Hub_io.of_string: bad token " ^ t))

let of_string_res s =
  Repro_obs.Span.run ~name:"hub-io.load-text" (fun () ->
  Repro_obs.Span.count "bytes" (String.length s);
  let what = "Hub_io.of_string" in
  try
    match numbered_lines s with
    | [] -> fail 0 (what ^ ": empty input")
    | (hln, header) :: rest -> (
        match ints hln header with
        | [ n; total ] ->
            if n < 0 then fail hln (what ^ ": negative vertex count");
            if total < 0 then fail hln (what ^ ": negative total size");
            if List.length rest <> n then
              fail hln (what ^ ": vertex count mismatch");
            let sets = Array.make n [] in
            let seen = Array.make n false in
            let declared = ref 0 in
            List.iter
              (fun (ln, line) ->
                match ints ln line with
                | v :: k :: pairs ->
                    if v < 0 || v >= n then
                      fail ln (what ^ ": vertex out of range");
                    if seen.(v) then
                      fail ln (what ^ ": duplicate vertex line");
                    seen.(v) <- true;
                    if k < 0 then fail ln (what ^ ": negative hub count");
                    if List.length pairs <> 2 * k then
                      fail ln (what ^ ": pair count mismatch");
                    declared := !declared + k;
                    let rec collect = function
                      | [] -> []
                      | h :: d :: tl ->
                          if h < 0 || h >= n then
                            fail ln (what ^ ": hub out of range");
                          if d < 0 then
                            fail ln (what ^ ": negative distance");
                          (h, d) :: collect tl
                      | [ _ ] ->
                          (* unreachable: [pairs] has even length 2k *)
                          fail ln (what ^ ": odd pair list")
                    in
                    sets.(v) <- collect pairs
                | _ -> fail ln (what ^ ": bad vertex line"))
              rest;
            if !declared <> total then
              fail hln (what ^ ": total size mismatch");
            (match Hub_label.make ~n sets with
            | labels -> Ok labels
            | exception Invalid_argument msg -> fail 0 msg)
        | _ -> fail hln (what ^ ": bad header"))
  with Parse e ->
    Repro_obs.Events.emit_ambient ~level:Repro_obs.Events.Warn
      "hub_io.parse_failure"
      [ ("line", Repro_obs.Events.Int e.line);
        ("msg", Repro_obs.Events.Str e.msg) ];
    Error e)

(* ---------------------------------------------------------------- *)
(* Binary serialisation of the packed flat form.

   Layout (all words little-endian int64):
     bytes 0..7    magic "HUBFLAT1"
     word  0       n
     word  1       total entry count
     words 2..     n+1 offsets, then 2*total interleaved (hub, dist)

   The encoding of a given store is canonical, so save -> load -> save
   is byte-for-byte stable (the flat arrays themselves are canonical:
   offsets are determined by the hubset sizes and entries are sorted by
   hub id). *)

let packed_magic = "HUBFLAT1"

let is_packed s =
  String.length s >= String.length packed_magic
  && String.sub s 0 (String.length packed_magic) = packed_magic

let flat_to_bytes flat =
  Repro_obs.Span.run ~name:"hub-io.save-packed" (fun () ->
  let offsets, data = Flat_hub.raw flat in
  let n = Flat_hub.n flat in
  let words = 2 + (n + 1) + Array.length data in
  let b = Bytes.create (String.length packed_magic + (8 * words)) in
  Bytes.blit_string packed_magic 0 b 0 (String.length packed_magic);
  let pos = ref (String.length packed_magic) in
  let put x =
    Bytes.set_int64_le b !pos (Int64.of_int x);
    pos := !pos + 8
  in
  put n;
  put (Flat_hub.total_size flat);
  Array.iter put offsets;
  Array.iter put data;
  Repro_obs.Span.count "bytes" (Bytes.length b);
  Bytes.unsafe_to_string b)

let flat_of_bytes_res s =
  Repro_obs.Span.run ~name:"hub-io.load-packed" (fun () ->
  Repro_obs.Span.count "bytes" (String.length s);
  let what = "Hub_io.flat_of_bytes" in
  (* [line] reports the byte offset of the offending word for the
     binary format. *)
  let fail pos msg = raise (Parse { line = pos; msg = what ^ ": " ^ msg }) in
  try
    let mlen = String.length packed_magic in
    if not (is_packed s) then fail 0 "bad magic";
    if (String.length s - mlen) mod 8 <> 0 then
      fail (String.length s) "truncated word";
    let words = (String.length s - mlen) / 8 in
    if words < 2 then fail mlen "missing header";
    let get i =
      let x = Int64.to_int (String.get_int64_le s (mlen + (8 * i))) in
      if Int64.of_int x <> String.get_int64_le s (mlen + (8 * i)) then
        fail (mlen + (8 * i)) "word overflows native int";
      x
    in
    let n = get 0 and total = get 1 in
    if n < 0 then fail mlen "negative vertex count";
    if total < 0 then fail (mlen + 8) "negative total size";
    if words <> 2 + (n + 1) + (2 * total) then
      fail (String.length s) "length disagrees with header";
    let offsets = Array.init (n + 1) (fun i -> get (2 + i)) in
    let data = Array.init (2 * total) (fun i -> get (2 + (n + 1) + i)) in
    match Flat_hub.of_raw ~n ~offsets ~data with
    | flat -> Ok flat
    | exception Invalid_argument msg -> fail 0 msg
  with Parse e ->
    Repro_obs.Events.emit_ambient ~level:Repro_obs.Events.Warn
      "hub_io.parse_failure"
      [ ("byte", Repro_obs.Events.Int e.line);
        ("msg", Repro_obs.Events.Str e.msg) ];
    Error e)

(* ---------------------------------------------------------------- *)
(* Compressed packed form: the HUBFLAT2 encoding of Compact_hub. *)

let compact_magic = Compact_hub.magic

let is_compact s =
  String.length s >= String.length compact_magic
  && String.sub s 0 (String.length compact_magic) = compact_magic

let compact_to_bytes ?block flat = Compact_hub.to_bytes ?block flat

let compact_of_bytes_res s =
  (* the heap parse path validates in full, like flat_of_bytes_res;
     shallow opens are the mmap path's business (Compact_hub.load_res) *)
  match Compact_hub.of_bytes_res ~deep:true s with
  | Ok t -> Ok t
  | Error e ->
      let err = { line = 0; msg = Compact_hub.error_to_string e } in
      Repro_obs.Events.emit_ambient ~level:Repro_obs.Events.Warn
        "hub_io.parse_failure"
        [ ("byte", Repro_obs.Events.Int err.line);
          ("msg", Repro_obs.Events.Str err.msg) ];
      Error err

